// sthist command-line tool: generate datasets, run clustering, and run
// initialized/uninitialized histogram experiments without writing C++.
//
//   sthist_cli generate --dataset sky --tuples 100000 --out sky.csv
//   sthist_cli cluster --dataset gauss --alpha 0.02
//   sthist_cli cluster --data my.csv --alpha 0.05 --beta 0.25 --width 0.05
//   sthist_cli experiment --dataset cross --buckets 100 --init
//   sthist_cli experiment --data my.csv --buckets 200 --train 1000 --sim 1000
//   sthist_cli experiment --dataset gauss --fault-rate 0.05 --fault-seed 7
//   sthist_cli sweep --dataset cross --buckets 50,100,250 --seeds 21,22
//       --both --threads 8
//   sthist_cli inspect --dataset cross --buckets 20 --train 100
//
// Exit codes: 0 success; 1 runtime failure (unreadable/malformed input,
// failed write — the Status message is printed to stderr); 2 usage error
// (unknown subcommand or flag).

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clustering/clique.h"
#include "clustering/clusterer.h"
#include "clustering/doc.h"
#include "clustering/mineclus.h"
#include "core/binfmt.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "data/csv.h"
#include "data/generators.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "histogram/census.h"
#include "histogram/registry.h"
#include "histogram/stholes.h"
#include "histogram/trivial.h"
#include "init/initializer.h"
#include "obs/metrics.h"
#include "serve/histogram_service.h"
#include "serve/service_fleet.h"
#include "serve/snapshot_io.h"
#include "testing/fault_injection.h"
#include "workload/drift.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace {

using namespace sthist;

// Exit codes (documented in README.md).
constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;

// ---------------------------------------------------------------------------
// Tiny flag parser: --name value and boolean --name.
// ---------------------------------------------------------------------------

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        error_ = Status::InvalidArgument("unexpected argument: " + arg);
        return;
      }
      std::string name = arg.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[name] = argv[++i];
      } else {
        values_[name] = "";  // Boolean flag.
      }
    }
  }

  const Status& error() const { return error_; }

  /// Rejects any flag not in `allowed`, so typos fail loudly instead of
  /// silently falling back to defaults.
  Status CheckAllowed(std::initializer_list<const char*> allowed) const {
    for (const auto& [name, unused_value] : values_) {
      bool known = false;
      for (const char* candidate : allowed) {
        if (name == candidate) {
          known = true;
          break;
        }
      }
      if (!known) {
        return Status::InvalidArgument("unknown flag: --" + name);
      }
    }
    return Status::Ok();
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string Str(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  double Num(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(),
                                                        nullptr);
  }

  size_t Size(const std::string& name, size_t fallback) const {
    return static_cast<size_t>(Num(name, static_cast<double>(fallback)));
  }

 private:
  std::map<std::string, std::string> values_;
  Status error_;
};

// Flag groups shared by several subcommands. Every subcommand accepts
// --metrics-json <path>: main() installs a process-wide MetricsRegistry
// before dispatching and exports its JSON snapshot afterwards (DESIGN.md
// §13), so whatever layers the command exercised show up in the file.
#define STHIST_COMMON_FLAGS "metrics-json"
#define STHIST_DATASET_FLAGS "data", "dataset", "tuples", "dim", "seed"
#define STHIST_CLUSTER_FLAGS                                          \
  "clusterer", "alpha", "beta", "width", "max-clusters", "xi", "tau", \
      "max-dims"
#define STHIST_FAULT_FLAGS \
  "fault-rate", "fault-seed", "fault-noise", "fault-data"
#define STHIST_DRIFT_FLAGS                                             \
  "drift", "drift-phases", "drift-seed", "drift-tuples", "drift-span", \
      "pace"
#define STHIST_REINIT_FLAGS                                              \
  "no-reinit", "reinit-window", "reinit-trigger", "reinit-rearm",        \
      "reinit-cooldown", "reinit-backstop", "reinit-reservoir",          \
      "reinit-buckets", "reinit-sync", "fault-reinit-rate",              \
      "fault-reinit-seed"

// ---------------------------------------------------------------------------
// Dataset resolution: either a named generator or a CSV file.
// ---------------------------------------------------------------------------

StatusOr<GeneratedData> ResolveDataset(const Flags& flags) {
  if (flags.Has("data")) {
    StatusOr<Dataset> data = ReadCsv(flags.Str("data", ""));
    if (!data.ok()) return data.status();
    GeneratedData g{*std::move(data), Box(), {}};
    g.domain = g.data.Bounds();
    if (g.domain.Volume() <= 0.0) {
      return Status::InvalidArgument(
          flags.Str("data", "") +
          ": dataset has zero volume (all tuples equal in some attribute)");
    }
    return g;
  }

  std::string name = flags.Str("dataset", "cross");
  uint64_t seed = static_cast<uint64_t>(flags.Num("seed", 0));
  if (name == "cross" || name == "crossnd") {
    CrossConfig config;
    config.dim = flags.Size("dim", 2);
    config.tuples_per_cluster = flags.Size("tuples", 10000 * config.dim) /
                                std::max<size_t>(config.dim, 1);
    config.noise_tuples = config.tuples_per_cluster * config.dim / 10;
    if (seed != 0) config.seed = seed;
    STHIST_RETURN_IF_ERROR(Validate(config));
    return MakeCross(config);
  }
  if (name == "gauss") {
    GaussConfig config;
    config.dim = flags.Size("dim", 6);
    config.cluster_tuples = flags.Size("tuples", 110000) * 10 / 11;
    config.noise_tuples = flags.Size("tuples", 110000) / 11;
    if (seed != 0) config.seed = seed;
    STHIST_RETURN_IF_ERROR(Validate(config));
    return MakeGauss(config);
  }
  if (name == "sky") {
    SkyConfig config;
    config.tuples = flags.Size("tuples", 200000);
    if (seed != 0) config.seed = seed;
    STHIST_RETURN_IF_ERROR(Validate(config));
    return MakeSky(config);
  }
  if (name == "particle") {
    ParticleConfig config;
    size_t tuples = flags.Size("tuples", 100000);
    config.cluster_tuples = tuples * 4 / 5;
    config.noise_tuples = tuples / 5;
    if (seed != 0) config.seed = seed;
    STHIST_RETURN_IF_ERROR(Validate(config));
    return MakeParticle(config);
  }
  return Status::NotFound("unknown dataset: " + name +
                          " (try cross, gauss, sky, particle, or "
                          "--data file.csv)");
}

FaultConfig FaultsFromFlags(const Flags& flags) {
  FaultConfig faults;
  faults.rate = flags.Num("fault-rate", 0.0);
  faults.seed = static_cast<uint64_t>(flags.Num("fault-seed", 99));
  faults.noise_factor = flags.Num("fault-noise", faults.noise_factor);
  return faults;
}

// Applies --fault-data: corrupts ~rate of the tuples, then repairs the
// dataset the way a service ingesting it would (drop non-finite tuples).
Status MaybeInjectDataFaults(const Flags& flags, GeneratedData* g) {
  if (!flags.Has("fault-data")) return Status::Ok();
  FaultConfig faults = FaultsFromFlags(flags);
  if (faults.rate <= 0.0) {
    return Status::InvalidArgument("--fault-data needs --fault-rate > 0");
  }
  g->data = CorruptDataset(g->data, g->domain, faults);
  Status validation = g->data.Validate();
  std::fprintf(stderr, "fault-data: %s\n", validation.ToString().c_str());
  size_t dropped = 0;
  g->data = DropNonFiniteTuples(g->data, &dropped);
  std::fprintf(stderr, "fault-data: dropped %zu corrupted tuples, %zu kept\n",
               dropped, g->data.size());
  if (g->data.size() == 0) {
    return Status::InvalidArgument("all tuples corrupted away");
  }
  return Status::Ok();
}

MineClusConfig MineClusFromFlags(const Flags& flags) {
  MineClusConfig config;
  config.alpha = flags.Num("alpha", config.alpha);
  config.beta = flags.Num("beta", config.beta);
  config.width_fraction = flags.Num("width", config.width_fraction);
  config.max_clusters = flags.Size("max-clusters", config.max_clusters);
  return config;
}

// Builds the clusterer selected by --clusterer (mineclus | clique | doc).
StatusOr<std::unique_ptr<SubspaceClusterer>> ClustererFromFlags(
    const Flags& flags) {
  std::string name = flags.Str("clusterer", "mineclus");
  if (name == "mineclus") {
    return std::unique_ptr<SubspaceClusterer>(
        std::make_unique<MineClusClusterer>(MineClusFromFlags(flags)));
  }
  if (name == "clique") {
    CliqueConfig config;
    config.xi = flags.Size("xi", config.xi);
    config.tau = flags.Num("tau", config.tau);
    config.max_dims = flags.Size("max-dims", config.max_dims);
    return std::unique_ptr<SubspaceClusterer>(
        std::make_unique<CliqueClusterer>(config));
  }
  if (name == "doc") {
    DocConfig config;
    config.alpha = flags.Num("alpha", config.alpha);
    config.beta = flags.Num("beta", config.beta);
    config.width_fraction = flags.Num("width", config.width_fraction);
    return std::unique_ptr<SubspaceClusterer>(
        std::make_unique<DocClusterer>(config));
  }
  return Status::NotFound("unknown clusterer: " + name +
                          " (try mineclus, clique, doc)");
}

// Parses a comma-separated list of non-negative integers ("50,100,250").
StatusOr<std::vector<size_t>> ParseSizeList(const std::string& text) {
  std::vector<size_t> values;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    char* end = nullptr;
    unsigned long value = std::strtoul(item.c_str(), &end, 10);
    if (item.empty() || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("malformed list item: '" + item + "'");
    }
    values.push_back(static_cast<size_t>(value));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return values;
}

// Folds the little-endian bytes of `value` into an FNV-1a digest.
void FoldDigest(uint64_t value, uint64_t* digest) {
  for (int byte = 0; byte < 8; ++byte) {
    *digest ^= (value >> (8 * byte)) & 0xffu;
    *digest *= 1099511628211ULL;
  }
}

constexpr uint64_t kDigestSeed = 1469598103934665603ULL;  // FNV offset basis.

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

Status RunGenerate(const Flags& flags) {
  STHIST_RETURN_IF_ERROR(
      flags.CheckAllowed({STHIST_COMMON_FLAGS, STHIST_DATASET_FLAGS, "out"}));
  StatusOr<GeneratedData> g = ResolveDataset(flags);
  if (!g.ok()) return g.status();
  std::string out = flags.Str("out", "");
  if (out.empty()) {
    return Status::InvalidArgument("generate requires --out <file.csv>");
  }
  STHIST_RETURN_IF_ERROR(WriteCsv(g->data, out));
  std::printf("wrote %zu tuples x %zu dims to %s\n", g->data.size(),
              g->data.dim(), out.c_str());
  return Status::Ok();
}

Status RunCluster(const Flags& flags) {
  STHIST_RETURN_IF_ERROR(
      flags.CheckAllowed(
          {STHIST_COMMON_FLAGS, STHIST_DATASET_FLAGS, STHIST_CLUSTER_FLAGS}));
  StatusOr<GeneratedData> g = ResolveDataset(flags);
  if (!g.ok()) return g.status();
  StatusOr<std::unique_ptr<SubspaceClusterer>> clusterer =
      ClustererFromFlags(flags);
  if (!clusterer.ok()) return clusterer.status();
  std::vector<SubspaceCluster> clusters =
      (*clusterer)->Cluster(g->data, g->domain);
  std::printf("clusterer: %s\n", (*clusterer)->name().c_str());

  TablePrinter table({"cluster", "relevant dims", "members", "score"});
  for (size_t i = 0; i < clusters.size(); ++i) {
    std::string dims;
    for (size_t d : clusters[i].relevant_dims) {
      if (!dims.empty()) dims += ",";
      dims += std::to_string(d);
    }
    table.AddRow({"C" + std::to_string(i), dims,
                  FormatSize(clusters[i].members.size()),
                  FormatDouble(clusters[i].score, 0)});
  }
  table.Print();
  std::printf("%zu clusters over %zu tuples\n", clusters.size(),
              g->data.size());
  return Status::Ok();
}

/// Validates --estimator against the registry so a typo is a flag error
/// naming the registered estimators, not a crash deep in the runner.
StatusOr<std::string> EstimatorFromFlags(const Flags& flags) {
  std::string name = flags.Str("estimator", "stholes");
  for (const std::string& known : RegisteredNames()) {
    if (known == name) return name;
  }
  std::string known_list;
  for (const std::string& known : RegisteredNames()) {
    if (!known_list.empty()) known_list += ", ";
    known_list += known;
  }
  return StatusF(StatusCode::kNotFound,
                 "--estimator %s is not registered (choose from: %s)",
                 name.c_str(), known_list.c_str());
}

Status RunExperiment(const Flags& flags) {
  STHIST_RETURN_IF_ERROR(flags.CheckAllowed(
      {STHIST_COMMON_FLAGS, STHIST_DATASET_FLAGS, STHIST_CLUSTER_FLAGS,
       STHIST_FAULT_FLAGS, "buckets", "train", "sim", "volume", "init",
       "reversed", "freeze", "data-centers", "batch", "estimator"}));
  StatusOr<GeneratedData> g = ResolveDataset(flags);
  if (!g.ok()) return g.status();
  STHIST_RETURN_IF_ERROR(MaybeInjectDataFaults(flags, &*g));
  Experiment experiment(*std::move(g));

  ExperimentConfig config;
  StatusOr<std::string> estimator = EstimatorFromFlags(flags);
  if (!estimator.ok()) return estimator.status();
  config.estimator = *std::move(estimator);
  config.buckets = flags.Size("buckets", 100);
  config.train_queries = flags.Size("train", 400);
  config.sim_queries = flags.Size("sim", 400);
  config.volume_fraction = flags.Num("volume", 0.01);
  config.initialize = flags.Has("init");
  config.initializer.reversed = flags.Has("reversed");
  config.learn_during_sim = !flags.Has("freeze");
  config.mineclus = MineClusFromFlags(flags);
  config.faults = FaultsFromFlags(flags);
  if (flags.Has("data-centers")) {
    config.centers = CenterDistribution::kData;
  }
  // Batched estimation for the measurement passes. Bare --batch means
  // hardware concurrency (0); --batch N pins the worker count. Estimates are
  // bitwise-identical at any value — this is purely a throughput knob.
  if (flags.Has("batch")) {
    config.estimate_threads = flags.Size("batch", 0);
  }
  if (config.faults.rate < 0.0 || config.faults.rate > 1.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "--fault-rate must be in [0,1], got %g",
                   config.faults.rate);
  }

  ExperimentResult result = experiment.Run(config);
  TablePrinter table({"metric", "value"});
  table.AddRow({"MAE", FormatDouble(result.mae, 3)});
  table.AddRow({"trivial MAE", FormatDouble(result.trivial_mae, 3)});
  table.AddRow({"NAE", FormatDouble(result.nae, 4)});
  table.AddRow({"final buckets", FormatSize(result.final_buckets)});
  table.AddRow({"subspace buckets", FormatSize(result.subspace_buckets)});
  table.AddRow({"clusters found", FormatSize(result.clusters_found)});
  table.AddRow({"clusters fed", FormatSize(result.clusters_fed)});
  table.AddRow({"clustering s", FormatDouble(result.clustering_seconds, 2)});
  table.AddRow({"train s", FormatDouble(result.train_seconds, 2)});
  table.AddRow({"sim s", FormatDouble(result.sim_seconds, 2)});
  if (config.faults.rate > 0.0 || result.robustness.total() > 0) {
    table.AddRow({"faults injected", FormatSize(result.faults_injected)});
    table.AddRow(
        {"rejected queries", FormatSize(result.robustness.rejected_queries)});
    table.AddRow({"sanitized queries",
                  FormatSize(result.robustness.sanitized_queries)});
    table.AddRow(
        {"clamped feedback", FormatSize(result.robustness.clamped_feedback)});
    table.AddRow(
        {"repaired buckets", FormatSize(result.robustness.repaired_buckets)});
  }
  table.Print();
  return Status::Ok();
}

// Runs a grid of experiment cells (bucket budgets x workload seeds x
// variants) concurrently via RunSweep and prints one row per cell. The
// variants are uninitialized by default, initialized with --init, or both
// with --both.
Status RunSweepCommand(const Flags& flags) {
  STHIST_RETURN_IF_ERROR(flags.CheckAllowed(
      {STHIST_COMMON_FLAGS, STHIST_DATASET_FLAGS, STHIST_CLUSTER_FLAGS,
       STHIST_FAULT_FLAGS, "buckets", "seeds", "train", "sim", "volume",
       "init", "both", "reversed", "freeze", "data-centers", "threads",
       "estimator"}));
  StatusOr<GeneratedData> g = ResolveDataset(flags);
  if (!g.ok()) return g.status();
  STHIST_RETURN_IF_ERROR(MaybeInjectDataFaults(flags, &*g));
  Experiment experiment(*std::move(g));

  StatusOr<std::vector<size_t>> buckets =
      ParseSizeList(flags.Str("buckets", "50,100,250"));
  if (!buckets.ok()) return buckets.status();
  StatusOr<std::vector<size_t>> seeds =
      ParseSizeList(flags.Str("seeds", "21"));
  if (!seeds.ok()) return seeds.status();
  if (buckets->empty() || seeds->empty()) {
    return Status::InvalidArgument("--buckets and --seeds must be non-empty");
  }

  size_t threads = flags.Size("threads", 0);  // 0 = hardware concurrency.

  ExperimentConfig base;
  StatusOr<std::string> estimator = EstimatorFromFlags(flags);
  if (!estimator.ok()) return estimator.status();
  base.estimator = *std::move(estimator);
  base.train_queries = flags.Size("train", 400);
  base.sim_queries = flags.Size("sim", 400);
  base.volume_fraction = flags.Num("volume", 0.01);
  base.initializer.reversed = flags.Has("reversed");
  base.learn_during_sim = !flags.Has("freeze");
  base.mineclus = MineClusFromFlags(flags);
  base.faults = FaultsFromFlags(flags);
  if (flags.Has("data-centers")) base.centers = CenterDistribution::kData;
  if (base.faults.rate < 0.0 || base.faults.rate > 1.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "--fault-rate must be in [0,1], got %g", base.faults.rate);
  }

  std::vector<bool> variants;
  if (flags.Has("both")) {
    variants = {false, true};
  } else {
    variants = {flags.Has("init")};
  }

  std::vector<ExperimentConfig> configs;
  for (size_t seed : *seeds) {
    for (size_t b : *buckets) {
      for (bool init : variants) {
        ExperimentConfig config = base;
        config.workload_seed = seed;
        config.buckets = b;
        config.initialize = init;
        configs.push_back(config);
      }
    }
  }

  auto start = std::chrono::steady_clock::now();
  std::vector<ExperimentResult> results =
      RunSweep(experiment, configs, threads);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  TablePrinter table({"seed", "buckets", "init", "NAE", "final buckets",
                      "subspace", "clusters fed"});
  for (size_t i = 0; i < configs.size(); ++i) {
    table.AddRow({FormatSize(configs[i].workload_seed),
                  FormatSize(configs[i].buckets),
                  configs[i].initialize ? "yes" : "no",
                  FormatDouble(results[i].nae, 4),
                  FormatSize(results[i].final_buckets),
                  FormatSize(results[i].subspace_buckets),
                  FormatSize(results[i].clusters_fed)});
  }
  table.Print();
  std::printf("%zu cells in %.2f s (threads=%zu)\n", configs.size(), seconds,
              threads == 0 ? DefaultThreadCount() : threads);
  return Status::Ok();
}

Status RunInspect(const Flags& flags) {
  STHIST_RETURN_IF_ERROR(flags.CheckAllowed(
      {STHIST_COMMON_FLAGS, STHIST_DATASET_FLAGS, STHIST_CLUSTER_FLAGS,
       "buckets", "train", "volume", "init", "out"}));
  StatusOr<GeneratedData> g = ResolveDataset(flags);
  if (!g.ok()) return g.status();
  Experiment experiment(*std::move(g));

  STHolesConfig hc;
  hc.max_buckets = flags.Size("buckets", 20);
  STHoles hist(experiment.domain(), experiment.total_tuples(), hc);

  if (flags.Has("init")) {
    InitializeHistogram(experiment.Clusters(MineClusFromFlags(flags)),
                        experiment.domain(), experiment.executor(),
                        InitializerConfig{}, &hist);
  }
  ExperimentConfig wc_config;
  wc_config.train_queries = flags.Size("train", 100);
  wc_config.sim_queries = 1;
  wc_config.volume_fraction = flags.Num("volume", 0.01);
  auto [train, sim] = experiment.MakeWorkloads(wc_config);
  for (const Box& q : train) hist.Refine(q, experiment.executor());

  std::fputs(FormatBucketTree(hist).c_str(), stdout);
  CensusResult census = CensusSubspaceBuckets(hist);
  std::printf("%zu buckets, %zu subspace\n", hist.bucket_count(),
              census.subspace_buckets);
  if (flags.Has("out")) {
    std::string path = flags.Str("out", "");
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return Status::IoError("cannot write " + path);
    }
    std::string text = hist.Serialize();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("serialized histogram to %s\n", path.c_str());
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// snapshot save/load/verify: versioned binary snapshot files (DESIGN.md §17).
// ---------------------------------------------------------------------------

// `snapshot save`: train an estimator (--estimator, default stholes) exactly
// like `inspect` does, then persist its versioned binary blob ("STHB",
// "STHK", ...) atomically. The printed digest is FNV-1a over the file bytes,
// so two saves agree iff the files do.
Status RunSnapshotSave(const Flags& flags) {
  STHIST_RETURN_IF_ERROR(flags.CheckAllowed(
      {STHIST_COMMON_FLAGS, STHIST_DATASET_FLAGS, STHIST_CLUSTER_FLAGS,
       "buckets", "train", "volume", "init", "out", "estimator"}));
  std::string out = flags.Str("out", "");
  if (out.empty()) {
    return Status::InvalidArgument("snapshot save requires --out <file>");
  }
  StatusOr<std::string> estimator = EstimatorFromFlags(flags);
  if (!estimator.ok()) return estimator.status();
  StatusOr<GeneratedData> g = ResolveDataset(flags);
  if (!g.ok()) return g.status();
  Experiment experiment(*std::move(g));

  HistogramConfig hc;
  hc.domain = experiment.domain();
  hc.total_tuples = experiment.total_tuples();
  hc.data = &experiment.data();
  hc.buckets = flags.Size("buckets", 100);
  StatusOr<std::unique_ptr<Histogram>> made = MakeHistogram(*estimator, hc);
  if (!made.ok()) return made.status();
  Histogram& hist = **made;
  if (flags.Has("init")) {
    InitializeHistogram(experiment.Clusters(MineClusFromFlags(flags)),
                        experiment.domain(), experiment.executor(),
                        InitializerConfig{}, &hist);
  }
  ExperimentConfig wc_config;
  wc_config.train_queries = flags.Size("train", 200);
  wc_config.sim_queries = 1;
  wc_config.volume_fraction = flags.Num("volume", 0.01);
  auto [train, sim] = experiment.MakeWorkloads(wc_config);
  for (const Box& q : train) hist.Refine(q, experiment.executor());

  const std::string blob = hist.SerializeBinary();
  if (blob.empty()) {
    return StatusF(StatusCode::kInvalidArgument,
                   "estimator %s does not support binary snapshots",
                   estimator->c_str());
  }
  STHIST_RETURN_IF_ERROR(snapshot_io::WriteFileAtomic(out, blob));
  std::printf("wrote %s: %s, %zu buckets, %zu bytes, digest %016llx\n",
              out.c_str(), estimator->c_str(), hist.bucket_count(),
              blob.size(),
              static_cast<unsigned long long>(binfmt::Fnv1a(blob)));
  return Status::Ok();
}

// `snapshot load` / `snapshot verify`: decode a snapshot file through every
// layer it contains, dispatching on the magic ("STHB" histogram blob, "STHS"
// service container, "STHF" fleet container). Any framing or payload
// violation surfaces as the decoder's Status (exit 1) — this is the
// command-line face of the fail-closed contract the fuzz tests hold. load
// prints a table of the contents; verify prints one OK line for scripts.
Status RunSnapshotLoad(const Flags& flags, bool verify_only) {
  STHIST_RETURN_IF_ERROR(
      flags.CheckAllowed({STHIST_COMMON_FLAGS, "in", "buckets"}));
  std::string path = flags.Str("in", "");
  if (path.empty()) {
    return Status::InvalidArgument(
        std::string("snapshot ") + (verify_only ? "verify" : "load") +
        " requires --in <file>");
  }
  StatusOr<std::string> bytes = snapshot_io::ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() < 4) {
    return StatusF(StatusCode::kInvalidArgument,
                   "%s: %zu bytes is too short to hold a snapshot magic",
                   path.c_str(), bytes->size());
  }
  // The bucket budget only matters if the loaded histogram is refined
  // further; decoding never merges, so any value is safe here. Histogram
  // blobs are self-describing (registry.h): RestoreHistogram dispatches on
  // the blob's own magic, so the file works regardless of which estimator
  // wrote it.
  HistogramConfig hc;
  hc.buckets = flags.Size("buckets", 100);
  const unsigned long long file_digest =
      static_cast<unsigned long long>(binfmt::Fnv1a(*bytes));

  std::string kind(bytes->data(), 4);
  if (kind == "STHB" || kind == "STHK") {
    const std::string estimator(EstimatorNameForBlob(*bytes));
    StatusOr<std::unique_ptr<Histogram>> hist = RestoreHistogram(*bytes, hc);
    if (!hist.ok()) return hist.status();
    if (verify_only) {
      std::printf("snapshot OK: %s histogram, %zu buckets, digest %016llx\n",
                  estimator.c_str(), (*hist)->bucket_count(), file_digest);
      return Status::Ok();
    }
    TablePrinter table({"field", "value"});
    table.AddRow({"kind", "histogram (" + kind + ")"});
    table.AddRow({"estimator", estimator});
    table.AddRow({"buckets", FormatSize((*hist)->bucket_count())});
    table.AddRow({"file bytes", FormatSize(bytes->size())});
    table.Print();
  } else if (kind == "STHS") {
    StatusOr<snapshot_io::ServiceSnapshot> snap =
        snapshot_io::DecodeServiceSnapshot(*bytes);
    if (!snap.ok()) return snap.status();
    StatusOr<std::unique_ptr<Histogram>> hist =
        RestoreHistogram(snap->histogram, hc);
    if (!hist.ok()) return hist.status();
    if (verify_only) {
      std::printf(
          "snapshot OK: service (%s), %zu buckets, %llu feedback applied, "
          "digest %016llx\n",
          snap->estimator.c_str(), (*hist)->bucket_count(),
          static_cast<unsigned long long>(snap->applied_feedback),
          file_digest);
      return Status::Ok();
    }
    TablePrinter table({"field", "value"});
    table.AddRow({"kind", "service (STHS)"});
    table.AddRow({"estimator", snap->estimator});
    table.AddRow({"buckets", FormatSize((*hist)->bucket_count())});
    table.AddRow({"feedback applied",
                  FormatSize(static_cast<size_t>(snap->applied_feedback))});
    table.AddRow({"file bytes", FormatSize(bytes->size())});
    table.Print();
  } else if (kind == "STHF") {
    StatusOr<snapshot_io::FleetSnapshot> snap =
        snapshot_io::DecodeFleetSnapshot(*bytes);
    if (!snap.ok()) return snap.status();
    size_t total_buckets = 0;
    for (const snapshot_io::FleetTenant& tenant : snap->tenants) {
      StatusOr<std::unique_ptr<Histogram>> hist =
          RestoreHistogram(tenant.histogram, hc);
      if (!hist.ok()) {
        return StatusF(StatusCode::kInvalidArgument, "tenant '%s': %s",
                       tenant.key.c_str(), hist.status().message().c_str());
      }
      total_buckets += (*hist)->bucket_count();
    }
    if (verify_only) {
      std::printf(
          "snapshot OK: fleet, %zu tenants, %zu buckets, digest %016llx\n",
          snap->tenants.size(), total_buckets, file_digest);
      return Status::Ok();
    }
    TablePrinter table({"field", "value"});
    table.AddRow({"kind", "fleet (STHF)"});
    table.AddRow({"tenants", FormatSize(snap->tenants.size())});
    table.AddRow({"total buckets", FormatSize(total_buckets)});
    table.AddRow({"seed", FormatSize(static_cast<size_t>(snap->seed))});
    table.AddRow({"file bytes", FormatSize(bytes->size())});
    table.Print();
  } else {
    return StatusF(StatusCode::kInvalidArgument,
                   "%s: unrecognized snapshot magic \"%.4s\"", path.c_str(),
                   bytes->data());
  }
  std::printf("digest %016llx\n", file_digest);
  return Status::Ok();
}

// Drift-mode serving simulation (`serve-sim --drift <scenario>`): a
// deterministic replay driver streams a DriftSchedule's phases through the
// service (estimate, then feedback) while optional read-only probe threads
// hammer the published snapshot, and — unless --no-reinit — the stagnation
// detector + reservoir re-initialization recover from the drift online
// (DESIGN.md §14). The driver Drains at phase boundaries and on queue-full,
// so the run is replayable: same flags, same trigger/swap sequence.
Status RunServeSimDrift(const Flags& flags) {
  StatusOr<DriftScenario> scenario =
      ParseDriftScenario(flags.Str("drift", "cross-move"));
  if (!scenario.ok()) return scenario.status();

  DriftConfig dc;
  dc.scenario = *scenario;
  dc.phases = flags.Size("drift-phases", 4);
  dc.seed = static_cast<uint64_t>(flags.Num("drift-seed", 17));
  dc.dim = flags.Size("dim", 2);
  dc.tuples = flags.Size("drift-tuples", 22000);
  dc.move_span = flags.Num("drift-span", 0.6);

  const size_t total_queries = flags.Size("queries", 20000);
  if (total_queries == 0) {
    return Status::InvalidArgument("--queries must be > 0");
  }
  WorkloadConfig wc;
  wc.num_queries =
      std::max<size_t>(total_queries / std::max<size_t>(dc.phases, 1), 1);
  wc.volume_fraction = flags.Num("volume", 0.01);

  StatusOr<DriftSchedule> schedule = MakeDriftSchedule(dc, wc);
  if (!schedule.ok()) return schedule.status();
  PhasedOracle oracle(*schedule);
  const Box& domain = schedule->domain();

  // The service starts on a histogram trained for phase 0 (with --init, the
  // paper's MineClus-seeded initialization over the phase-0 snapshot), so
  // the drift — not a cold start — is what degrades it.
  STHolesConfig hc;
  hc.max_buckets = flags.Size("buckets", 100);
  auto hist = std::make_unique<STHoles>(domain, oracle.Count(domain), hc);
  if (flags.Has("init")) {
    std::vector<SubspaceCluster> clusters = RunMineClus(
        schedule->phase(0).data.data, domain, MineClusFromFlags(flags));
    InitializeHistogram(clusters, domain, oracle, InitializerConfig{},
                        hist.get());
  }
  WorkloadConfig train_wc = wc;
  train_wc.num_queries = flags.Size("train", 200);
  train_wc.centers = CenterDistribution::kData;
  train_wc.seed = DeriveSeed(dc.seed, 0x7A);
  StatusOr<Workload> train =
      MakeWorkloadChecked(domain, train_wc, &schedule->phase(0).data.data);
  if (!train.ok()) return train.status();
  for (const Box& q : *train) hist->Refine(q, oracle);

  ServiceConfig sc;
  sc.queue_capacity = flags.Size("queue-cap", sc.queue_capacity);
  sc.publish_batch = flags.Size("publish-batch", sc.publish_batch);
  if (sc.queue_capacity == 0 || sc.publish_batch == 0) {
    return Status::InvalidArgument(
        "--queue-cap and --publish-batch must be > 0");
  }
  sc.metrics = obs::GlobalMetrics();
  sc.faults = FaultsFromFlags(flags);

  ReinitConfig& reinit = sc.reinit;
  reinit.enabled = !flags.Has("no-reinit");
  reinit.domain = domain;
  reinit.detector.window = flags.Size("reinit-window", 128);
  reinit.detector.trigger_nae =
      flags.Num("reinit-trigger", reinit.detector.trigger_nae);
  reinit.detector.rearm_nae =
      flags.Num("reinit-rearm", reinit.detector.rearm_nae);
  reinit.detector.cooldown = flags.Size("reinit-cooldown", 256);
  reinit.detector.retrigger_backstop =
      flags.Size("reinit-backstop", reinit.detector.retrigger_backstop);
  reinit.reservoir.capacity =
      flags.Size("reinit-reservoir", reinit.reservoir.capacity);
  reinit.mineclus = MineClusFromFlags(flags);
  reinit.max_buckets = flags.Size("reinit-buckets", hc.max_buckets);
  reinit.background = !flags.Has("reinit-sync");
  reinit.rebuild_faults.rate = flags.Num("fault-reinit-rate", 0.0);
  reinit.rebuild_faults.seed =
      static_cast<uint64_t>(flags.Num("fault-reinit-seed", 99));
  if (reinit.enabled) {
    // Validate before construction: the service CHECK-aborts on bad knobs,
    // the CLI reports them.
    STHIST_RETURN_IF_ERROR(Validate(reinit.detector));
    STHIST_RETURN_IF_ERROR(Validate(reinit.reservoir));
  }
  HistogramService service(std::move(hist), oracle, sc);

  // Read-only probe threads: they measure that the snapshot stays servable
  // through rebuilds but never submit feedback, so they cannot perturb the
  // deterministic replay below.
  const size_t readers = flags.Size("readers", 2);
  std::atomic<bool> probes_stop{false};
  std::vector<std::thread> probes;
  probes.reserve(readers);
  std::atomic<double> sink{0.0};
  for (size_t r = 0; r < readers; ++r) {
    probes.emplace_back([&, r] {
      const Workload& queries = schedule->phase(0).queries;
      double local = 0.0;
      for (size_t i = 0; !probes_stop.load(std::memory_order_relaxed); ++i) {
        local += service.Estimate(queries[(r * 31 + i) % queries.size()]);
      }
      sink.fetch_add(local);
    });
  }

  // The replay driver: one thread, FIFO feedback, Drain at every phase
  // boundary (the oracle must not change phase under queued feedback) and
  // on backpressure.
  // Pacing: Drain every `pace` submissions. A free-running driver outraces
  // the refiner by a whole queue, so every served estimate in a phase would
  // come from the previous phase's histogram no matter how well re-init
  // works; draining at a bounded cadence emulates a production arrival rate
  // the refiner can keep up with, without giving up replayability.
  const size_t pace = std::max<size_t>(flags.Size("pace", sc.publish_batch),
                                       1);
  struct PhaseRow {
    double mae = 0.0;
    double trivial_mae = 0.0;
    size_t queries = 0;
    size_t triggers = 0;
    size_t swaps = 0;
    double rolling_nae = 0.0;
  };
  std::vector<PhaseRow> rows(schedule->phase_count());
  auto t0 = std::chrono::steady_clock::now();
  size_t since_drain = 0;
  for (size_t p = 0; p < schedule->phase_count(); ++p) {
    oracle.SetPhase(p);
    TrivialHistogram trivial(domain, oracle.Count(domain));
    PhaseRow& row = rows[p];
    for (const Box& q : schedule->phase(p).queries) {
      const double est = service.Estimate(q);
      const double actual = oracle.Count(q);
      row.mae += std::abs(est - actual);
      row.trivial_mae += std::abs(trivial.Estimate(q) - actual);
      ++row.queries;
      if (service.SubmitFeedback(q, est) == FeedbackOutcome::kQueueFull) {
        STHIST_RETURN_IF_ERROR(service.Drain());
        (void)service.SubmitFeedback(q, est);
      }
      if (++since_drain >= pace) {
        since_drain = 0;
        STHIST_RETURN_IF_ERROR(service.Drain());
      }
    }
    STHIST_RETURN_IF_ERROR(service.Drain());
    ServiceStats at_phase_end = service.stats();
    row.triggers = at_phase_end.reinit_triggers;
    row.swaps = at_phase_end.reinit_swaps_completed;
    row.rolling_nae = at_phase_end.rolling_nae;
  }
  double drive_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  probes_stop.store(true);
  for (std::thread& t : probes) t.join();
  service.Stop();

  std::printf("drift scenario: %s (%zu phases, %zu queries/phase)\n",
              DriftScenarioName(schedule->scenario()),
              schedule->phase_count(), wc.num_queries);
  TablePrinter phases({"phase", "queries", "MAE", "NAE", "NAE(roll)",
                       "triggers", "swaps"});
  for (size_t p = 0; p < rows.size(); ++p) {
    const PhaseRow& row = rows[p];
    const double n = static_cast<double>(std::max<size_t>(row.queries, 1));
    const double nae =
        row.trivial_mae > 0.0 ? row.mae / row.trivial_mae : 0.0;
    phases.AddRow({FormatSize(p), FormatSize(row.queries),
                   FormatDouble(row.mae / n, 1), FormatDouble(nae, 4),
                   FormatDouble(row.rolling_nae, 4), FormatSize(row.triggers),
                   FormatSize(row.swaps)});
  }
  phases.Print();

  ServiceStats stats = service.stats();
  TablePrinter table({"metric", "value"});
  table.AddRow({"probe readers", FormatSize(readers)});
  table.AddRow({"reads served", FormatSize(stats.reads_served)});
  table.AddRow({"feedback accepted", FormatSize(stats.feedback_accepted)});
  table.AddRow({"feedback dropped", FormatSize(stats.feedback_dropped())});
  table.AddRow({"feedback applied", FormatSize(stats.feedback_applied)});
  table.AddRow({"snapshot epoch", FormatSize(stats.snapshot_epoch)});
  table.AddRow({"reinit triggers", FormatSize(stats.reinit_triggers)});
  table.AddRow({"swaps completed", FormatSize(stats.reinit_swaps_completed)});
  table.AddRow({"swaps aborted", FormatSize(stats.reinit_swaps_aborted)});
  table.AddRow({"replayed feedback", FormatSize(stats.reinit_replayed)});
  table.AddRow({"reservoir size", FormatSize(stats.reservoir_size)});
  table.AddRow({"rolling NAE", FormatDouble(stats.rolling_nae, 4)});
  table.AddRow({"drive s", FormatDouble(drive_seconds, 2)});
  table.Print();

  const Histogram& snapshot = *service.snapshot();
  std::printf("final snapshot: %zu buckets, robustness events %zu\n",
              snapshot.bucket_count(), snapshot.robustness().total());
  std::printf("--- metrics ---\n%s", obs::GlobalMetrics()->ToText().c_str());
  return Status::Ok();
}

// Deterministic serve-sim replay (`serve-sim --pace P`, `--snapshot FILE`,
// `--snapshot-every N`, `--restore FILE`): a single driver thread streams the
// simulation workload through the service in FIFO order, draining every
// `pace` submissions, so the final snapshot — and the "serve digest" printed
// at the end — is a pure function of the flags. `--snapshot-every N` cuts a
// Drain-barriered STHS snapshot every N queries; `--restore FILE` starts
// from such a snapshot instead of pre-training and skips the queries its
// watermark says were already applied. Because refinement consumes only the
// executed queries (never the served estimates), a restored run replays to
// the bit-identical digest of the uninterrupted run — the warm-restart
// contract CI's crash-recovery smoke and tests/snapshot_persist_test.cc
// hold. The restored run must use the same dataset/workload/bucket flags as
// the saved one; only --restore and the snapshot flags may differ.
Status RunServeSimReplay(const Flags& flags) {
  StatusOr<GeneratedData> g = ResolveDataset(flags);
  if (!g.ok()) return g.status();
  Experiment experiment(*std::move(g));

  const size_t total_queries = flags.Size("queries", 20000);
  if (total_queries == 0) {
    return Status::InvalidArgument("--queries must be > 0");
  }

  STHolesConfig hc;
  hc.max_buckets = flags.Size("buckets", 100);
  std::unique_ptr<Histogram> hist;
  size_t skip = 0;  // Queries already baked into the restored histogram.
  if (flags.Has("restore")) {
    const std::string from = flags.Str("restore", "");
    StatusOr<std::string> bytes = snapshot_io::ReadFile(from);
    if (!bytes.ok()) return bytes.status();
    StatusOr<snapshot_io::ServiceSnapshot> snap =
        snapshot_io::DecodeServiceSnapshot(*bytes);
    if (!snap.ok()) return snap.status();
    // Registry dispatch on the blob's own magic: the replay restores
    // whichever estimator family the snapshot was saved from.
    HistogramConfig rc;
    rc.buckets = hc.max_buckets;
    StatusOr<std::unique_ptr<Histogram>> restored =
        RestoreHistogram(snap->histogram, rc);
    if (!restored.ok()) return restored.status();
    hist = *std::move(restored);
    skip = static_cast<size_t>(snap->applied_feedback);
    std::fprintf(stderr,
                 "restored %s (%s): %zu buckets, resuming after %zu queries\n",
                 from.c_str(), snap->estimator.c_str(), hist->bucket_count(),
                 skip);
  } else {
    hist = std::make_unique<STHoles>(experiment.domain(),
                                     experiment.total_tuples(), hc);
    if (flags.Has("init")) {
      InitializeHistogram(experiment.Clusters(MineClusFromFlags(flags)),
                          experiment.domain(), experiment.executor(),
                          InitializerConfig{}, hist.get());
    }
  }

  // Both runs build identical workloads; the restored one just skips the
  // pre-train refines (they are part of the snapshot) and the first `skip`
  // simulation queries (the watermark says the refiner already applied them).
  ExperimentConfig wc_config;
  wc_config.train_queries = flags.Size("train", 200);
  wc_config.sim_queries = total_queries;
  wc_config.volume_fraction = flags.Num("volume", 0.01);
  auto [train, sim] = experiment.MakeWorkloads(wc_config);
  if (!flags.Has("restore")) {
    for (const Box& q : train) hist->Refine(q, experiment.executor());
  }
  if (skip > sim.size()) {
    return StatusF(StatusCode::kInvalidArgument,
                   "snapshot watermark %zu exceeds --queries %zu "
                   "(was the snapshot saved by a longer run?)",
                   skip, sim.size());
  }

  ServiceConfig sc;
  sc.queue_capacity = flags.Size("queue-cap", sc.queue_capacity);
  sc.publish_batch = flags.Size("publish-batch", sc.publish_batch);
  if (sc.queue_capacity == 0 || sc.publish_batch == 0) {
    return Status::InvalidArgument(
        "--queue-cap and --publish-batch must be > 0");
  }
  sc.clone_publish = flags.Has("clone-publish");
  sc.restored_feedback = skip;
  sc.metrics = obs::GlobalMetrics();
  HistogramService service(std::move(hist), experiment.executor(), sc);

  const size_t pace = std::max<size_t>(flags.Size("pace", 1), 1);
  const size_t snapshot_every = flags.Size("snapshot-every", 0);
  const std::string snapshot_path = flags.Str("snapshot", "serve.snap");
  if (snapshot_every > 0 && !flags.Has("snapshot")) {
    return Status::InvalidArgument("--snapshot-every needs --snapshot <file>");
  }

  auto t0 = std::chrono::steady_clock::now();
  double sink = 0.0;
  size_t saves = 0;
  for (size_t i = skip; i < sim.size(); ++i) {
    const Box& q = sim[i];
    sink += service.Estimate(q);
    if (service.SubmitFeedback(q) == FeedbackOutcome::kQueueFull) {
      // Drain-and-resubmit instead of shedding: the replay must apply every
      // query or the watermark would no longer count queries.
      STHIST_RETURN_IF_ERROR(service.Drain());
      (void)service.SubmitFeedback(q);
    }
    if ((i + 1 - skip) % pace == 0) {
      STHIST_RETURN_IF_ERROR(service.Drain());
    }
    if (snapshot_every > 0 && (i + 1) % snapshot_every == 0) {
      STHIST_RETURN_IF_ERROR(service.Drain());
      STHIST_RETURN_IF_ERROR(service.SaveSnapshot(snapshot_path));
      ++saves;
    }
  }
  STHIST_RETURN_IF_ERROR(service.Drain());
  if (flags.Has("snapshot")) {
    STHIST_RETURN_IF_ERROR(service.SaveSnapshot(snapshot_path));
    ++saves;
  }
  double drive_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  service.Stop();

  ServiceStats stats = service.stats();
  TablePrinter table({"metric", "value"});
  table.AddRow({"queries replayed", FormatSize(sim.size() - skip)});
  table.AddRow({"queries skipped", FormatSize(skip)});
  table.AddRow({"feedback applied", FormatSize(stats.feedback_applied)});
  table.AddRow({"snapshot epoch", FormatSize(stats.snapshot_epoch)});
  table.AddRow({"snapshot saves", FormatSize(saves)});
  table.AddRow({"drive s", FormatDouble(drive_seconds, 2)});
  table.Print();

  // The determinism digest: FNV-1a over the final snapshot's estimates on
  // the full simulation workload (skipped prefix included, so interrupted
  // and uninterrupted runs fold the same probes).
  std::shared_ptr<const Histogram> snapshot = service.snapshot();
  uint64_t digest = kDigestSeed;
  for (const Box& probe : sim) {
    FoldDigest(std::bit_cast<uint64_t>(snapshot->Estimate(probe)), &digest);
  }
  std::printf("final snapshot: %zu buckets\n", snapshot->bucket_count());
  std::printf("serve digest: %016llx\n",
              static_cast<unsigned long long>(digest));
  std::printf("--- metrics ---\n%s", obs::GlobalMetrics()->ToText().c_str());
  return Status::Ok();
}

// Simulates production serving: R reader threads issue estimates against
// the published snapshot while every executed query's feedback streams back
// through the service's bounded queue into the single refiner. Prints the
// ServiceStats counters plus read throughput.
Status RunServeSim(const Flags& flags) {
  STHIST_RETURN_IF_ERROR(flags.CheckAllowed(
      {STHIST_COMMON_FLAGS, STHIST_DATASET_FLAGS, STHIST_CLUSTER_FLAGS,
       STHIST_FAULT_FLAGS, STHIST_DRIFT_FLAGS, STHIST_REINIT_FLAGS,
       "buckets", "train", "queries", "readers", "volume", "init",
       "queue-cap", "publish-batch", "batch", "snapshot", "snapshot-every",
       "restore", "clone-publish"}));
  if (flags.Has("drift")) return RunServeSimDrift(flags);
  if (flags.Has("pace") || flags.Has("snapshot") ||
      flags.Has("snapshot-every") || flags.Has("restore")) {
    return RunServeSimReplay(flags);
  }
  StatusOr<GeneratedData> g = ResolveDataset(flags);
  if (!g.ok()) return g.status();
  Experiment experiment(*std::move(g));

  const size_t readers = flags.Size("readers", 4);
  const size_t total_queries = flags.Size("queries", 20000);
  if (readers == 0 || total_queries == 0) {
    return Status::InvalidArgument("--readers and --queries must be > 0");
  }

  // Pre-train the histogram the service starts from.
  STHolesConfig hc;
  hc.max_buckets = flags.Size("buckets", 100);
  auto hist = std::make_unique<STHoles>(experiment.domain(),
                                        experiment.total_tuples(), hc);
  if (flags.Has("init")) {
    InitializeHistogram(experiment.Clusters(MineClusFromFlags(flags)),
                        experiment.domain(), experiment.executor(),
                        InitializerConfig{}, hist.get());
  }
  ExperimentConfig wc_config;
  wc_config.train_queries = flags.Size("train", 200);
  wc_config.sim_queries = std::max<size_t>(total_queries / readers, 1);
  wc_config.volume_fraction = flags.Num("volume", 0.01);
  auto [train, sim] = experiment.MakeWorkloads(wc_config);
  for (const Box& q : train) hist->Refine(q, experiment.executor());

  ServiceConfig sc;
  sc.queue_capacity = flags.Size("queue-cap", sc.queue_capacity);
  sc.publish_batch = flags.Size("publish-batch", sc.publish_batch);
  // Batched estimation threads for the final pass below. Defaults to a
  // small pool (not hardware concurrency) so the pool layer shows up in the
  // metrics dump even on a single-core box; results are bitwise-identical
  // at any value, so oversubscription only costs wall clock. --batch N
  // overrides; --batch 0 (or bare --batch) = hardware concurrency.
  sc.estimate_threads = flags.Has("batch") ? flags.Size("batch", 0) : 4;
  if (sc.queue_capacity == 0 || sc.publish_batch == 0) {
    return Status::InvalidArgument(
        "--queue-cap and --publish-batch must be > 0");
  }
  // --fault-* applies to the serving loop too: the refiner's oracle answers
  // (detector observations and Refine feedback counts) flow through a
  // deterministic FaultyOracle. Readers never consult the oracle.
  sc.faults = FaultsFromFlags(flags);
  // The service's serve.service.* counters land in the same process-wide
  // registry as everything else, so the final /metrics dump is one document.
  sc.metrics = obs::GlobalMetrics();
  HistogramService service(std::move(hist), experiment.executor(), sc);

  // Readers: estimate, then feed the executed query back — the full online
  // loop, except reads never wait for the refiner.
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(readers);
  std::atomic<double> sink{0.0};
  const size_t per_reader = std::max<size_t>(total_queries / readers, 1);
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      while (!start.load()) std::this_thread::yield();
      double local = 0.0;
      for (size_t i = 0; i < per_reader; ++i) {
        const Box& q = sim[(r * 17 + i) % sim.size()];
        local += service.Estimate(q);
        (void)service.SubmitFeedback(q);
      }
      sink.fetch_add(local);
    });
  }
  auto t0 = std::chrono::steady_clock::now();
  start.store(true);
  for (std::thread& t : threads) t.join();
  double read_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  service.Stop();  // Drain the backlog and publish the final snapshot.
  double total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // One batched pass over the simulation workload against the final
  // snapshot: exercises the EstimateBatch fan-out (and with it the thread
  // pool) on the exact histogram the readers ended on.
  std::vector<double> batched = service.EstimateBatch(sim);
  double batched_sum = 0.0;
  for (double est : batched) batched_sum += est;

  ServiceStats stats = service.stats();
  TablePrinter table({"metric", "value"});
  table.AddRow({"reader threads", FormatSize(readers)});
  table.AddRow({"reads served", FormatSize(stats.reads_served)});
  table.AddRow(
      {"reads/s", FormatDouble(static_cast<double>(stats.reads_served) /
                                   read_seconds,
                               0)});
  table.AddRow({"feedback accepted", FormatSize(stats.feedback_accepted)});
  table.AddRow({"feedback dropped", FormatSize(stats.feedback_dropped())});
  table.AddRow({"feedback applied", FormatSize(stats.feedback_applied)});
  table.AddRow({"snapshot epoch", FormatSize(stats.snapshot_epoch)});
  table.AddRow({"final staleness", FormatSize(stats.staleness)});
  table.AddRow({"last publish ms",
                FormatDouble(stats.last_publish_seconds * 1e3, 2)});
  table.AddRow({"max publish ms",
                FormatDouble(stats.max_publish_seconds * 1e3, 2)});
  table.AddRow({"drain+total s", FormatDouble(total_seconds, 2)});
  table.AddRow({"batched queries", FormatSize(batched.size())});
  table.AddRow({"batched mean est",
                FormatDouble(batched.empty()
                                 ? 0.0
                                 : batched_sum /
                                       static_cast<double>(batched.size()),
                             1)});
  table.Print();

  const Histogram& snapshot = *service.snapshot();
  std::printf("final snapshot: %zu buckets, robustness events %zu\n",
              snapshot.bucket_count(), snapshot.robustness().total());

  // The /metrics-style dump: every layer the simulation touched, one line
  // per metric (DESIGN.md §13).
  std::printf("--- metrics ---\n%s", obs::GlobalMetrics()->ToText().c_str());
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// fleet-sim: sharded multi-tenant serving through a shared refiner pool.
// ---------------------------------------------------------------------------

Status RunFleetSim(const Flags& flags) {
  STHIST_RETURN_IF_ERROR(flags.CheckAllowed(
      {STHIST_COMMON_FLAGS, "tenants", "refiners", "queries", "buckets",
       "readers", "pace", "seed", "queue-cap", "publish-batch", "snapshot",
       "restore", "clone-publish"}));

  size_t tenants = flags.Size("tenants", 16);
  const size_t per_tenant = flags.Size("queries", 64);
  const size_t buckets = flags.Size("buckets", 24);
  const size_t readers = flags.Size("readers", 0);
  const size_t pace = flags.Size("pace", 0);
  uint64_t seed = static_cast<uint64_t>(flags.Num("seed", 1));

  // --restore hands the fleet off from an "STHF" snapshot: tenant count,
  // keys, seed, and per-tenant histograms all come from the file (so the
  // digest of a `--queries 0` restore matches the digest the saving run
  // printed); --tenants/--seed are ignored. The keys must be fleet-sim's own
  // tenant_<index> keys — the index recovers which data variant the tenant
  // serves.
  snapshot_io::FleetSnapshot restored;
  const bool restoring = flags.Has("restore");
  if (restoring) {
    StatusOr<std::string> bytes =
        snapshot_io::ReadFile(flags.Str("restore", ""));
    if (!bytes.ok()) return bytes.status();
    StatusOr<snapshot_io::FleetSnapshot> snap =
        snapshot_io::DecodeFleetSnapshot(*bytes);
    if (!snap.ok()) return snap.status();
    restored = *std::move(snap);
    tenants = restored.tenants.size();
    seed = restored.seed;
    std::fprintf(stderr, "restored %s: %zu tenants, seed %llu\n",
                 flags.Str("restore", "").c_str(), tenants,
                 static_cast<unsigned long long>(seed));
  }
  if (tenants == 0 || buckets == 0 || (per_tenant == 0 && !restoring)) {
    return Status::InvalidArgument(
        "--tenants, --queries, and --buckets must be > 0");
  }

  FleetConfig fc;
  fc.refiners = flags.Size("refiners", fc.refiners);
  fc.queue_capacity = flags.Size("queue-cap", fc.queue_capacity);
  fc.publish_batch = flags.Size("publish-batch", fc.publish_batch);
  fc.seed = seed;
  fc.clone_publish = flags.Has("clone-publish");
  fc.metrics = obs::GlobalMetrics();
  if (fc.refiners == 0 || fc.queue_capacity == 0 || fc.publish_batch == 0) {
    return Status::InvalidArgument(
        "--refiners, --queue-cap, and --publish-batch must be > 0");
  }

  // Shared data variants: tenants alternate over two small cross datasets —
  // a fleet of many histograms over few underlying tables, the multi-tenant
  // shape DESIGN.md §16 targets. Dataset seeds derive from --seed so the
  // whole simulation is one seed away from reproducible.
  struct Variant {
    explicit Variant(GeneratedData generated) : g(std::move(generated)) {}
    GeneratedData g;
    std::unique_ptr<Executor> executor;
  };
  std::vector<std::unique_ptr<Variant>> variants;
  for (size_t v = 0; v < std::min<size_t>(tenants, 2); ++v) {
    CrossConfig config;
    config.tuples_per_cluster = 600 - 200 * v;
    config.noise_tuples = config.tuples_per_cluster / 5;
    config.seed = DeriveSeed(seed, 101 + v);
    STHIST_RETURN_IF_ERROR(Validate(config));
    auto variant = std::make_unique<Variant>(MakeCross(config));
    variant->executor = std::make_unique<Executor>(variant->g.data);
    variants.push_back(std::move(variant));
  }

  ServiceFleet fleet(fc);
  std::vector<std::string> keys;
  std::vector<Workload> streams;
  keys.reserve(tenants);
  streams.reserve(tenants);
  for (size_t t = 0; t < tenants; ++t) {
    size_t variant_index = t;
    STHolesConfig hc;
    hc.max_buckets = buckets;
    std::unique_ptr<Histogram> hist;
    if (restoring) {
      const snapshot_io::FleetTenant& tenant = restored.tenants[t];
      const std::string& key = tenant.key;
      keys.push_back(key);
      const size_t underscore = key.rfind('_');
      char* end = nullptr;
      variant_index = underscore == std::string::npos
                          ? 0
                          : std::strtoul(key.c_str() + underscore + 1, &end,
                                         10);
      if (underscore == std::string::npos || end == nullptr || *end != '\0') {
        return StatusF(StatusCode::kInvalidArgument,
                       "tenant key '%s' is not a fleet-sim tenant_<index> "
                       "key; cannot map it to a data variant",
                       key.c_str());
      }
      // Self-describing tenant blobs: the registry restores whichever
      // estimator family each tenant was saved from.
      HistogramConfig rc;
      rc.buckets = buckets;
      StatusOr<std::unique_ptr<Histogram>> decoded =
          RestoreHistogram(tenant.histogram, rc);
      if (!decoded.ok()) return decoded.status();
      hist = *std::move(decoded);
    } else {
      keys.push_back("tenant_" + std::to_string(t));
      Variant& v = *variants[t % variants.size()];
      hist = std::make_unique<STHoles>(
          v.g.domain, static_cast<double>(v.g.data.size()), hc);
    }
    Variant& v = *variants[variant_index % variants.size()];
    STHIST_RETURN_IF_ERROR(
        fleet.AddTenant(keys.back(), std::move(hist), *v.executor));
    // Each tenant's feedback stream is seeded from its fleet identity:
    // pure in (--seed, key), so the streams — and with --pace 1 the final
    // snapshots — replay bit-identically at any --refiners.
    WorkloadConfig wc;
    wc.num_queries = per_tenant;
    wc.volume_fraction = 0.01;
    wc.seed = fleet.TenantId(keys.back());
    streams.push_back(MakeWorkload(v.g.domain, wc));
  }

  // Optional background readers: pure snapshot traffic across the fleet
  // while the driver below writes. CI's determinism smoke runs --readers 0;
  // interactive runs use readers to put load on the shared-lock map path.
  std::atomic<bool> readers_stop{false};
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(readers);
  for (size_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      size_t i = 0;
      while (!readers_stop.load(std::memory_order_relaxed)) {
        size_t t = (r * 7 + i) % tenants;
        (void)fleet.Estimate(keys[t], streams[t][i % streams[t].size()]);
        ++i;
      }
    });
  }

  // Deterministic driver: tenant-major round-robin, estimate + feed back.
  // --pace P drains the whole fleet every P submissions; --pace 1 is the
  // fully serialized replay the determinism smoke diffs.
  auto t0 = std::chrono::steady_clock::now();
  double sink = 0.0;
  size_t submitted = 0;
  size_t shed = 0;
  // A restored fleet serves the handed-off histograms as-is: the driver is
  // skipped so the digest below can be diffed against the one the saving
  // run printed (same --queries, zero new feedback).
  for (size_t i = 0; !restoring && i < per_tenant; ++i) {
    for (size_t t = 0; t < tenants; ++t) {
      const Box& q = streams[t][i];
      StatusOr<double> est = fleet.Estimate(keys[t], q);
      if (!est.ok()) return est.status();
      sink += *est;
      StatusOr<FleetFeedbackOutcome> outcome = fleet.SubmitFeedback(keys[t], q);
      if (!outcome.ok()) return outcome.status();
      if (*outcome != FleetFeedbackOutcome::kAccepted) ++shed;
      ++submitted;
      if (pace != 0 && submitted % pace == 0) {
        STHIST_RETURN_IF_ERROR(fleet.Drain());
      }
    }
  }
  STHIST_RETURN_IF_ERROR(fleet.Drain());
  if (flags.Has("snapshot")) {
    const std::string path = flags.Str("snapshot", "");
    if (path.empty()) return Status::InvalidArgument("--snapshot needs a path");
    STHIST_RETURN_IF_ERROR(fleet.SaveSnapshot(path));
    std::fprintf(stderr, "saved fleet snapshot to %s\n", path.c_str());
  }
  double drive_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  readers_stop.store(true);
  for (std::thread& rt : reader_threads) rt.join();
  fleet.Stop();

  // Determinism digest: FNV-1a over every tenant's identity and its final
  // snapshot's probe estimates (the tenant's own stream), in sorted key
  // order. Identical digests across runs/refiner counts == identical
  // published histograms, bit for bit.
  uint64_t digest = kDigestSeed;
  std::vector<std::string> sorted_keys = fleet.TenantKeys();
  for (const std::string& key : sorted_keys) {
    FoldDigest(fleet.TenantId(key), &digest);
    std::shared_ptr<const Histogram> snap = fleet.Snapshot(key);
    if (snap == nullptr) return Status::NotFound("lost snapshot: " + key);
    size_t t = 0;
    while (t < tenants && keys[t] != key) ++t;
    for (const Box& probe : streams[t]) {
      FoldDigest(std::bit_cast<uint64_t>(snap->Estimate(probe)), &digest);
    }
  }

  FleetStats stats = fleet.stats();
  TablePrinter table({"metric", "value"});
  table.AddRow({"tenants", FormatSize(stats.tenants)});
  table.AddRow({"refiners", FormatSize(fc.refiners)});
  table.AddRow({"reader threads", FormatSize(readers)});
  table.AddRow({"reads served", FormatSize(stats.reads_served)});
  table.AddRow({"feedback accepted", FormatSize(stats.feedback_accepted)});
  table.AddRow({"feedback shed", FormatSize(stats.feedback_dropped())});
  table.AddRow({"feedback applied", FormatSize(stats.feedback_applied)});
  table.AddRow({"publishes", FormatSize(stats.publishes)});
  table.AddRow({"shard runs", FormatSize(stats.shard_runs)});
  table.AddRow({"driver shed", FormatSize(shed)});
  table.AddRow({"drive s", FormatDouble(drive_seconds, 2)});
  table.AddRow(
      {"mean estimate",
       FormatDouble(
           submitted == 0 ? 0.0 : sink / static_cast<double>(submitted), 1)});
  table.Print();

  std::printf("fleet digest: %016llx\n",
              static_cast<unsigned long long>(digest));
  std::printf("--- metrics ---\n%s", obs::GlobalMetrics()->ToText().c_str());
  return Status::Ok();
}

void PrintUsage() {
  std::fputs(
      "usage: sthist_cli <command> [--flag value ...]\n"
      "\n"
      "commands:\n"
      "  generate    write a synthetic dataset to CSV\n"
      "              --dataset cross|gauss|sky|particle --tuples N --dim D\n"
      "              --seed S --out file.csv\n"
      "  cluster     run subspace clustering and print the clusters\n"
      "              --dataset ...|--data file.csv\n"
      "              --clusterer mineclus|clique|doc\n"
      "              mineclus/doc: --alpha A --beta B --width W\n"
      "              clique: --xi N --tau T --max-dims K\n"
      "  experiment  train/simulate an estimator and report errors\n"
      "              --estimator NAME picks the family (default stholes;\n"
      "              trivial|equiwidth|avi|sampling|mhist|stgrid|isomer|\n"
      "              stholes|kde — see histogram/registry.h)\n"
      "              --buckets N --train N --sim N --volume F [--init]\n"
      "              [--reversed] [--freeze] [--data-centers] + cluster "
      "flags\n"
      "              [--batch [N]] batch measurement estimates over N\n"
      "              threads (bare --batch = all cores); same results,\n"
      "              faster measurement\n"
      "              fault injection: --fault-rate R --fault-seed S\n"
      "              --fault-noise F [--fault-data]\n"
      "  sweep       run a grid of experiment cells across threads\n"
      "              --buckets 50,100,250 --seeds 21,22 [--init|--both]\n"
      "              --threads N (0 = all cores) [--estimator NAME]\n"
      "              + experiment flags\n"
      "  inspect     print the bucket tree after training\n"
      "              --buckets N --train N [--init] [--out hist.txt]\n"
      "  snapshot    versioned binary snapshot files (DESIGN.md §17)\n"
      "              save:   train a histogram and persist it\n"
      "                      --out file.snap [--estimator NAME]\n"
      "                      + inspect's training flags\n"
      "              load:   decode a .snap file and print its contents\n"
      "              verify: decode, fail closed on any corruption\n"
      "                      --in file.snap (histogram, service, or fleet\n"
      "                      snapshots are auto-detected by magic)\n"
      "  serve-sim   concurrent serving simulation: reader threads estimate\n"
      "              against published snapshots while the refiner drains\n"
      "              their feedback; ends with a /metrics-style dump\n"
      "              --readers N --queries N --buckets N --train N [--init]\n"
      "              --queue-cap N --publish-batch N [--batch [N]]\n"
      "              + cluster flags; --fault-rate R injects faults into\n"
      "              the refiner's oracle answers\n"
      "              drift mode: --drift cross-move|churn|hotspot|adversarial\n"
      "              --drift-phases N --drift-seed S --drift-tuples N\n"
      "              --drift-span F --dim D; stagnation re-init is on by\n"
      "              default (--no-reinit disables): --reinit-window N\n"
      "              --reinit-trigger F --reinit-rearm F --reinit-cooldown N\n"
      "              --reinit-backstop N --reinit-reservoir N\n"
      "              --reinit-buckets N [--reinit-sync]\n"
      "              --fault-reinit-rate R --fault-reinit-seed S inject\n"
      "              faults into the rebuild path (aborted swaps keep the\n"
      "              incumbent serving)\n"
      "              replay mode (--pace, --snapshot, --snapshot-every, or\n"
      "              --restore without --drift): one deterministic driver\n"
      "              thread, drains every --pace P queries, prints a\n"
      "              'serve digest' that is a pure function of the flags;\n"
      "              --snapshot f.snap [--snapshot-every N] saves\n"
      "              Drain-barriered snapshots, --restore f.snap warm-starts\n"
      "              from one and replays to the uninterrupted run's digest\n"
      "              (same dataset/workload flags required);\n"
      "              --clone-publish uses deep-clone publishes instead of\n"
      "              copy-on-write snapshots (identical estimates)\n"
      "  fleet-sim   sharded multi-tenant serving: N tenant histograms share\n"
      "              K pooled refiner threads; ends with a determinism\n"
      "              digest over the final snapshots and a metrics dump\n"
      "              --tenants N --refiners K --queries N --buckets N\n"
      "              --readers N --seed S --queue-cap N --publish-batch N\n"
      "              --pace P drains the fleet every P submissions\n"
      "              (--pace 1 = serialized replay: the digest is invariant\n"
      "              across runs and --refiners values)\n"
      "              --snapshot f.snap saves the drained fleet as an STHF\n"
      "              snapshot; --restore f.snap hands the fleet off from one\n"
      "              (tenants/seed come from the file, the driver is skipped,\n"
      "              and with the saving run's --queries the digest matches\n"
      "              it); --clone-publish uses deep-clone publishes\n"
      "\n"
      "every command accepts --metrics-json <path>: export the run's\n"
      "metrics registry (counters, gauges, latency histograms) as JSON\n"
      "\n"
      "exit codes: 0 ok, 1 runtime failure, 2 usage error\n",
      stderr);
}

// Writes the registry's JSON snapshot to the --metrics-json path, if given.
Status MaybeWriteMetricsJson(const Flags& flags,
                             const obs::MetricsRegistry& registry) {
  if (!flags.Has("metrics-json")) return Status::Ok();
  std::string path = flags.Str("metrics-json", "");
  if (path.empty()) {
    return Status::InvalidArgument("--metrics-json needs a file path");
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot write " + path);
  std::string json = registry.ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_error = std::fclose(f);
  if (written != json.size() || close_error != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return kExitUsage;
  }
  std::string command = argv[1];
  // `snapshot` takes a mode word (save/load/verify) before its flags.
  std::string mode;
  int first_flag = 2;
  if (command == "snapshot") {
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
      std::fprintf(stderr, "snapshot requires a mode: save, load, verify\n");
      PrintUsage();
      return kExitUsage;
    }
    mode = argv[2];
    first_flag = 3;
  }
  Flags flags(argc, argv, first_flag);
  if (!flags.error().ok()) {
    std::fprintf(stderr, "%s\n", flags.error().ToString().c_str());
    PrintUsage();
    return kExitUsage;
  }

  // Process-wide metrics: installed before any instrumented component is
  // constructed, exported after the command finishes (--metrics-json).
  obs::MetricsRegistry registry;
  registry.EnableTracing();
  obs::SetGlobalMetrics(&registry);

  Status status;
  if (command == "generate") {
    status = RunGenerate(flags);
  } else if (command == "cluster") {
    status = RunCluster(flags);
  } else if (command == "experiment") {
    status = RunExperiment(flags);
  } else if (command == "sweep") {
    status = RunSweepCommand(flags);
  } else if (command == "inspect") {
    status = RunInspect(flags);
  } else if (command == "snapshot") {
    if (mode == "save") {
      status = RunSnapshotSave(flags);
    } else if (mode == "load") {
      status = RunSnapshotLoad(flags, /*verify_only=*/false);
    } else if (mode == "verify") {
      status = RunSnapshotLoad(flags, /*verify_only=*/true);
    } else {
      std::fprintf(stderr, "unknown snapshot mode: %s\n", mode.c_str());
      PrintUsage();
      return kExitUsage;
    }
  } else if (command == "serve-sim") {
    status = RunServeSim(flags);
  } else if (command == "fleet-sim") {
    status = RunFleetSim(flags);
  } else {
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    PrintUsage();
    return kExitUsage;
  }

  // Export metrics even when the command failed — a partial run's counters
  // are exactly what post-mortems want — but never mask the command's error.
  Status metrics_status = MaybeWriteMetricsJson(flags, registry);

  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    if (status.code() == StatusCode::kInvalidArgument &&
        status.message().rfind("unknown flag:", 0) == 0) {
      PrintUsage();
      return kExitUsage;
    }
    return kExitFailure;
  }
  if (!metrics_status.ok()) {
    std::fprintf(stderr, "%s\n", metrics_status.ToString().c_str());
    return kExitFailure;
  }
  return kExitOk;
}

#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/rng.h"

namespace sthist {

Workload MakeWorkload(const Box& domain, const WorkloadConfig& config,
                      const Dataset* data) {
  STHIST_CHECK(config.volume_fraction > 0.0 && config.volume_fraction <= 1.0);
  if (config.centers == CenterDistribution::kData) {
    STHIST_CHECK_MSG(data != nullptr && data->size() > 0,
                     "data-following centers need a non-empty dataset");
  }

  const size_t dim = domain.dim();
  const double side_fraction =
      std::pow(config.volume_fraction, 1.0 / static_cast<double>(dim));

  Rng rng(config.seed);
  Workload workload;
  workload.reserve(config.num_queries);

  std::vector<double> lo(dim), hi(dim);
  for (size_t q = 0; q < config.num_queries; ++q) {
    for (size_t d = 0; d < dim; ++d) {
      double extent = domain.Extent(d);
      double side = side_fraction * extent;
      double center;
      if (config.centers == CenterDistribution::kUniform) {
        center = rng.Uniform(domain.lo(d), domain.hi(d));
      } else {
        center = data->value(rng.Index(data->size()), d);
      }
      // Shift the query inside the domain so its volume is exact.
      double start = center - 0.5 * side;
      start = std::clamp(start, domain.lo(d), domain.hi(d) - side);
      lo[d] = start;
      hi[d] = start + side;
    }
    workload.push_back(Box(lo, hi));
  }
  return workload;
}

Workload Permuted(const Workload& workload, uint64_t seed) {
  Workload out = workload;
  Rng rng(seed);
  rng.Shuffle(&out);
  return out;
}

Status ValidateQueryBox(const Box& domain, const Box& query) {
  if (query.dim() != domain.dim()) {
    return StatusF(StatusCode::kInvalidArgument,
                   "query has %zu dimensions, domain has %zu", query.dim(),
                   domain.dim());
  }
  for (size_t d = 0; d < query.dim(); ++d) {
    if (!std::isfinite(query.lo(d)) || !std::isfinite(query.hi(d))) {
      return StatusF(StatusCode::kInvalidArgument,
                     "query bound in dimension %zu is non-finite", d);
    }
    if (query.lo(d) > query.hi(d)) {
      return StatusF(StatusCode::kInvalidArgument,
                     "query interval in dimension %zu is inverted: [%g,%g]", d,
                     query.lo(d), query.hi(d));
    }
    if (query.lo(d) == query.hi(d)) {
      return StatusF(StatusCode::kInvalidArgument,
                     "query has zero extent in dimension %zu", d);
    }
  }
  if (domain.IntersectionVolume(query) <= 0.0) {
    return Status::InvalidArgument("query " + query.ToString() +
                                   " lies outside the domain " +
                                   domain.ToString());
  }
  return Status::Ok();
}

StatusOr<Box> SanitizeQueryBox(const Box& domain, const Box& query) {
  if (query.dim() != domain.dim()) {
    return StatusF(StatusCode::kInvalidArgument,
                   "query has %zu dimensions, domain has %zu", query.dim(),
                   domain.dim());
  }
  std::vector<double> lo(query.dim()), hi(query.dim());
  for (size_t d = 0; d < query.dim(); ++d) {
    if (!std::isfinite(query.lo(d)) || !std::isfinite(query.hi(d))) {
      return StatusF(StatusCode::kInvalidArgument,
                     "query bound in dimension %zu is non-finite", d);
    }
    lo[d] = std::min(query.lo(d), query.hi(d));
    hi[d] = std::max(query.lo(d), query.hi(d));
    lo[d] = std::clamp(lo[d], domain.lo(d), domain.hi(d));
    hi[d] = std::clamp(hi[d], domain.lo(d), domain.hi(d));
  }
  Box repaired(std::move(lo), std::move(hi));
  if (repaired.Volume() <= 0.0) {
    return Status::InvalidArgument(
        "query " + query.ToString() +
        " has zero volume inside the domain after repair");
  }
  return repaired;
}

StatusOr<Workload> MakeWorkloadChecked(const Box& domain,
                                       const WorkloadConfig& config,
                                       const Dataset* data) {
  if (domain.dim() == 0) {
    return Status::InvalidArgument("workload domain has zero dimensions");
  }
  for (size_t d = 0; d < domain.dim(); ++d) {
    if (!std::isfinite(domain.lo(d)) || !std::isfinite(domain.hi(d))) {
      return StatusF(StatusCode::kInvalidArgument,
                     "domain bound in dimension %zu is non-finite", d);
    }
  }
  if (domain.Volume() <= 0.0) {
    return Status::InvalidArgument("workload domain " + domain.ToString() +
                                   " has zero volume");
  }
  if (!std::isfinite(config.volume_fraction) ||
      config.volume_fraction <= 0.0 || config.volume_fraction > 1.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "volume_fraction must be in (0,1], got %g",
                   config.volume_fraction);
  }
  if (config.centers == CenterDistribution::kData &&
      (data == nullptr || data->size() == 0)) {
    return Status::InvalidArgument(
        "data-following centers need a non-empty dataset");
  }
  return MakeWorkload(domain, config, data);
}

Workload MakeGridWorkload(const Box& domain, size_t cells_per_dim,
                          uint64_t seed) {
  STHIST_CHECK(cells_per_dim >= 1);
  const size_t dim = domain.dim();
  size_t total = 1;
  for (size_t d = 0; d < dim; ++d) {
    STHIST_CHECK_MSG(total <= 10'000'000 / cells_per_dim,
                     "grid workload too large");
    total *= cells_per_dim;
  }

  Workload workload;
  workload.reserve(total);
  std::vector<size_t> cell(dim, 0);
  std::vector<double> lo(dim), hi(dim);
  for (size_t index = 0; index < total; ++index) {
    size_t rest = index;
    for (size_t d = 0; d < dim; ++d) {
      cell[d] = rest % cells_per_dim;
      rest /= cells_per_dim;
    }
    for (size_t d = 0; d < dim; ++d) {
      double step = domain.Extent(d) / static_cast<double>(cells_per_dim);
      lo[d] = domain.lo(d) + step * static_cast<double>(cell[d]);
      hi[d] = lo[d] + step;
    }
    workload.push_back(Box(lo, hi));
  }

  Rng rng(seed);
  rng.Shuffle(&workload);
  return workload;
}

}  // namespace sthist

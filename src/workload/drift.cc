#include "workload/drift.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/check.h"
#include "core/rng.h"

namespace sthist {

namespace {

// DeriveSeed roles for the schedule's independent random streams (never
// seed+k — see core/rng.h).
constexpr uint64_t kRoleData = 0xD0;
constexpr uint64_t kRoleQueries = 0xD1;
constexpr uint64_t kRoleNoise = 0xD2;
constexpr uint64_t kRoleHotspot = 0xD3;

constexpr double kDomainLo = 0.0;
constexpr double kDomainHi = 1000.0;
constexpr double kBandHalfwidth = 25.0;

// Per-phase seed for one named stream: double derivation keeps every
// (seed, role, phase) triple far from every other in seed space.
uint64_t PhaseSeed(uint64_t seed, uint64_t role, size_t phase) {
  return DeriveSeed(DeriveSeed(seed, role), static_cast<uint64_t>(phase));
}

// Band-center offset of phase p: a linear sweep across [-span/2, +span/2]
// of the domain extent, 0 for a single-phase schedule.
double PhaseOffsetFraction(const DriftConfig& config, size_t phase) {
  if (config.phases <= 1) return 0.0;
  double t = static_cast<double>(phase) /
             static_cast<double>(config.phases - 1);
  return (t - 0.5) * config.move_span;
}

// The Cross generator with a translated band center: identical to MakeCross
// except the narrow bands sit at center + offset instead of the domain
// center. Using the same seed for every phase makes the phases the *same*
// tuple draws at shifted positions — the clusters genuinely move.
GeneratedData MakeOffsetCross(size_t dim, size_t tuples_per_cluster,
                              size_t noise_tuples, uint64_t seed,
                              double offset_fraction) {
  const Box domain = Box::Cube(dim, kDomainLo, kDomainHi);
  const double extent = kDomainHi - kDomainLo;
  double center = 0.5 * (kDomainLo + kDomainHi) + offset_fraction * extent;
  // Keep the band inside the domain whatever the sweep asks for.
  center = std::clamp(center, kDomainLo + kBandHalfwidth,
                      kDomainHi - kBandHalfwidth);
  const double band_lo = center - kBandHalfwidth;
  const double band_hi = center + kBandHalfwidth;

  Rng rng(seed);
  GeneratedData out{Dataset(dim), domain, {}};
  out.data.Reserve(dim * tuples_per_cluster + noise_tuples);

  Point p(dim);
  for (size_t axis = 0; axis < dim; ++axis) {
    for (size_t i = 0; i < tuples_per_cluster; ++i) {
      for (size_t d = 0; d < dim; ++d) {
        p[d] = (d == axis) ? rng.Uniform(kDomainLo, kDomainHi)
                           : rng.Uniform(band_lo, band_hi);
      }
      out.data.Append(p);
    }
    std::vector<double> lo(dim, band_lo), hi(dim, band_hi);
    lo[axis] = kDomainLo;
    hi[axis] = kDomainHi;
    PlantedCluster cluster;
    cluster.extent = Box(std::move(lo), std::move(hi));
    for (size_t d = 0; d < dim; ++d) {
      if (d != axis) cluster.relevant_dims.push_back(d);
    }
    cluster.tuples = tuples_per_cluster;
    out.truth.push_back(std::move(cluster));
  }

  Point noise(dim);
  for (size_t i = 0; i < noise_tuples; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      noise[d] = rng.Uniform(kDomainLo, kDomainHi);
    }
    out.data.Append(noise);
  }
  return out;
}

// Queries whose centers are uniform inside `hotspot` but whose side lengths
// come from the volume fraction of the *full* domain, so per-query
// selectivity stays comparable to the non-drifting workloads. Queries are
// shifted (not clipped) into the domain, like MakeWorkload.
Workload MakeHotspotWorkload(const Box& domain, const Box& hotspot,
                             const WorkloadConfig& config, uint64_t seed) {
  const size_t dim = domain.dim();
  const double side_fraction =
      std::pow(config.volume_fraction, 1.0 / static_cast<double>(dim));
  Rng rng(seed);
  Workload workload;
  workload.reserve(config.num_queries);
  std::vector<double> lo(dim), hi(dim);
  for (size_t q = 0; q < config.num_queries; ++q) {
    for (size_t d = 0; d < dim; ++d) {
      double side = side_fraction * domain.Extent(d);
      double center = rng.Uniform(hotspot.lo(d), hotspot.hi(d));
      double start = center - 0.5 * side;
      start = std::clamp(start, domain.lo(d), domain.hi(d) - side);
      lo[d] = start;
      hi[d] = start + side;
    }
    workload.push_back(Box(lo, hi));
  }
  return workload;
}

// A random sub-box of `domain` with `volume_fraction` of its volume, the
// hotspot of one phase.
Box MakeHotspotBox(const Box& domain, double volume_fraction, uint64_t seed) {
  const size_t dim = domain.dim();
  const double side_fraction =
      std::pow(volume_fraction, 1.0 / static_cast<double>(dim));
  Rng rng(seed);
  std::vector<double> lo(dim), hi(dim);
  for (size_t d = 0; d < dim; ++d) {
    double side = side_fraction * domain.Extent(d);
    double start = rng.Uniform(domain.lo(d), domain.hi(d) - side);
    lo[d] = start;
    hi[d] = start + side;
  }
  return Box(std::move(lo), std::move(hi));
}

// Sorts `queries` into the adversarial sweep order of phase p: lexicographic
// on the lower bounds starting from a phase-rotated axis, direction
// alternating with phase parity. A fully deterministic, maximally
// autocorrelated learning order — the opposite of the shuffled workloads the
// histogram is robust to.
void SortAdversarial(size_t phase, Workload* queries) {
  if (queries->empty()) return;
  const size_t dim = queries->front().dim();
  const size_t axis = phase % dim;
  const bool descending = (phase % 2) == 1;
  std::sort(queries->begin(), queries->end(),
            [dim, axis, descending](const Box& a, const Box& b) {
              for (size_t k = 0; k < dim; ++k) {
                size_t d = (axis + k) % dim;
                if (a.lo(d) != b.lo(d)) {
                  return descending ? a.lo(d) > b.lo(d) : a.lo(d) < b.lo(d);
                }
              }
              for (size_t k = 0; k < dim; ++k) {
                size_t d = (axis + k) % dim;
                if (a.hi(d) != b.hi(d)) {
                  return descending ? a.hi(d) > b.hi(d) : a.hi(d) < b.hi(d);
                }
              }
              return false;
            });
}

}  // namespace

StatusOr<DriftScenario> ParseDriftScenario(std::string_view name) {
  if (name == "cross-move") return DriftScenario::kMovingCross;
  if (name == "churn") return DriftScenario::kClusterChurn;
  if (name == "hotspot") return DriftScenario::kHotspot;
  if (name == "adversarial") return DriftScenario::kAdversarial;
  return Status::NotFound("unknown drift scenario: " + std::string(name) +
                          " (try cross-move, churn, hotspot, adversarial)");
}

const char* DriftScenarioName(DriftScenario scenario) {
  switch (scenario) {
    case DriftScenario::kMovingCross:
      return "cross-move";
    case DriftScenario::kClusterChurn:
      return "churn";
    case DriftScenario::kHotspot:
      return "hotspot";
    case DriftScenario::kAdversarial:
      return "adversarial";
  }
  return "unknown";
}

Status Validate(const DriftConfig& config) {
  if (config.phases == 0) {
    return Status::InvalidArgument("drift schedule needs at least one phase");
  }
  if (config.dim < 2) {
    return Status::InvalidArgument("drift datasets need dim >= 2");
  }
  if (config.tuples < 100) {
    return StatusF(StatusCode::kInvalidArgument,
                   "drift phases need >= 100 tuples, got %zu", config.tuples);
  }
  if (!std::isfinite(config.move_span) || config.move_span < 0.0 ||
      config.move_span >= 1.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "move_span must be in [0,1), got %g", config.move_span);
  }
  if (config.churn_active == 0 || config.churn_active > config.churn_pool) {
    return StatusF(StatusCode::kInvalidArgument,
                   "churn needs 1 <= active (%zu) <= pool (%zu)",
                   config.churn_active, config.churn_pool);
  }
  if (!std::isfinite(config.hotspot_volume_fraction) ||
      config.hotspot_volume_fraction <= 0.0 ||
      config.hotspot_volume_fraction > 1.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "hotspot_volume_fraction must be in (0,1], got %g",
                   config.hotspot_volume_fraction);
  }
  return Status::Ok();
}

size_t DriftSchedule::total_queries() const {
  size_t total = 0;
  for (const DriftPhase& p : phases_) total += p.queries.size();
  return total;
}

StatusOr<DriftSchedule> MakeDriftSchedule(const DriftConfig& drift,
                                          const WorkloadConfig& workload) {
  STHIST_RETURN_IF_ERROR(Validate(drift));

  DriftSchedule schedule;
  schedule.scenario_ = drift.scenario;
  schedule.domain_ = Box::Cube(drift.dim, kDomainLo, kDomainHi);
  schedule.phases_.reserve(drift.phases);

  const size_t cluster_tuples = drift.tuples * 10 / 11;
  const size_t noise_tuples = drift.tuples - cluster_tuples;

  switch (drift.scenario) {
    case DriftScenario::kMovingCross: {
      // One seed for every phase: the same draws at shifted band centers.
      const uint64_t data_seed = DeriveSeed(drift.seed, kRoleData);
      const size_t per_cluster =
          std::max<size_t>(cluster_tuples / drift.dim, 1);
      for (size_t p = 0; p < drift.phases; ++p) {
        DriftPhase phase;
        phase.data =
            MakeOffsetCross(drift.dim, per_cluster, noise_tuples, data_seed,
                            PhaseOffsetFraction(drift, p));
        WorkloadConfig wc = workload;
        wc.centers = CenterDistribution::kData;  // Queries follow the move.
        wc.seed = PhaseSeed(drift.seed, kRoleQueries, p);
        StatusOr<Workload> queries =
            MakeWorkloadChecked(schedule.domain_, wc, &phase.data.data);
        if (!queries.ok()) return queries.status();
        phase.queries = *std::move(queries);
        schedule.phases_.push_back(std::move(phase));
      }
      break;
    }

    case DriftScenario::kClusterChurn: {
      // A fixed pool of single-cluster Gauss snapshots; each phase activates
      // a sliding window over the pool, so clusters appear and vanish.
      std::vector<GeneratedData> pool;
      pool.reserve(drift.churn_pool);
      const size_t per_cluster =
          std::max<size_t>(cluster_tuples / drift.churn_active, 1);
      for (size_t c = 0; c < drift.churn_pool; ++c) {
        GaussConfig gc;
        gc.dim = drift.dim;
        gc.num_clusters = 1;
        gc.cluster_tuples = per_cluster;
        gc.noise_tuples = 0;
        gc.min_subspace_dims = std::min<size_t>(2, drift.dim);
        gc.max_subspace_dims = std::min<size_t>(5, drift.dim);
        gc.seed = PhaseSeed(drift.seed, kRoleData, c);
        STHIST_RETURN_IF_ERROR(Validate(gc));
        pool.push_back(MakeGauss(gc));
      }
      // Shared noise: identical in every phase, so only the clusters churn.
      Rng noise_rng(DeriveSeed(drift.seed, kRoleNoise));
      Dataset noise(drift.dim);
      noise.Reserve(noise_tuples);
      Point p(drift.dim);
      for (size_t i = 0; i < noise_tuples; ++i) {
        for (size_t d = 0; d < drift.dim; ++d) {
          p[d] = noise_rng.Uniform(kDomainLo, kDomainHi);
        }
        noise.Append(p);
      }
      for (size_t ph = 0; ph < drift.phases; ++ph) {
        DriftPhase phase;
        phase.data.domain = schedule.domain_;
        Dataset data(drift.dim);
        for (size_t j = 0; j < drift.churn_active; ++j) {
          const GeneratedData& member =
              pool[(ph + j) % drift.churn_pool];
          for (size_t i = 0; i < member.data.size(); ++i) {
            data.Append(member.data.row(i));
          }
          for (const PlantedCluster& truth : member.truth) {
            phase.data.truth.push_back(truth);
          }
        }
        for (size_t i = 0; i < noise.size(); ++i) data.Append(noise.row(i));
        phase.data.data = std::move(data);
        WorkloadConfig wc = workload;
        wc.centers = CenterDistribution::kData;  // Queries track the churn.
        wc.seed = PhaseSeed(drift.seed, kRoleQueries, ph);
        StatusOr<Workload> queries =
            MakeWorkloadChecked(schedule.domain_, wc, &phase.data.data);
        if (!queries.ok()) return queries.status();
        phase.queries = *std::move(queries);
        schedule.phases_.push_back(std::move(phase));
      }
      break;
    }

    case DriftScenario::kHotspot: {
      // Data never changes; only where the queries concentrate does.
      const size_t per_cluster =
          std::max<size_t>(cluster_tuples / drift.dim, 1);
      GeneratedData base =
          MakeOffsetCross(drift.dim, per_cluster, noise_tuples,
                          DeriveSeed(drift.seed, kRoleData), 0.0);
      for (size_t p = 0; p < drift.phases; ++p) {
        DriftPhase phase;
        phase.data = base;
        Box hotspot =
            MakeHotspotBox(schedule.domain_, drift.hotspot_volume_fraction,
                           PhaseSeed(drift.seed, kRoleHotspot, p));
        phase.queries =
            MakeHotspotWorkload(schedule.domain_, hotspot, workload,
                                PhaseSeed(drift.seed, kRoleQueries, p));
        schedule.phases_.push_back(std::move(phase));
      }
      break;
    }

    case DriftScenario::kAdversarial: {
      // Fixed data; each phase replays a fresh query draw in a pathological
      // sweep order. The workload's own center distribution is honored.
      const size_t per_cluster =
          std::max<size_t>(cluster_tuples / drift.dim, 1);
      GeneratedData base =
          MakeOffsetCross(drift.dim, per_cluster, noise_tuples,
                          DeriveSeed(drift.seed, kRoleData), 0.0);
      for (size_t p = 0; p < drift.phases; ++p) {
        DriftPhase phase;
        phase.data = base;
        WorkloadConfig wc = workload;
        wc.seed = PhaseSeed(drift.seed, kRoleQueries, p);
        StatusOr<Workload> queries =
            MakeWorkloadChecked(schedule.domain_, wc, &phase.data.data);
        if (!queries.ok()) return queries.status();
        phase.queries = *std::move(queries);
        SortAdversarial(p, &phase.queries);
        schedule.phases_.push_back(std::move(phase));
      }
      break;
    }
  }

  return schedule;
}

PhasedOracle::PhasedOracle(const DriftSchedule& schedule) {
  STHIST_CHECK(schedule.phase_count() > 0);
  executors_.reserve(schedule.phase_count());
  for (size_t p = 0; p < schedule.phase_count(); ++p) {
    executors_.push_back(
        std::make_unique<Executor>(schedule.phase(p).data.data));
  }
}

double PhasedOracle::Count(const Box& box) const {
  return executors_[phase_.load(std::memory_order_acquire)]->Count(box);
}

void PhasedOracle::SetPhase(size_t p) {
  STHIST_CHECK(p < executors_.size());
  phase_.store(p, std::memory_order_release);
}

}  // namespace sthist

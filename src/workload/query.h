#ifndef STHIST_WORKLOAD_QUERY_H_
#define STHIST_WORKLOAD_QUERY_H_

#include "core/box.h"
#include "data/dataset.h"
#include "histogram/histogram.h"
#include "index/kdtree.h"

namespace sthist {

/// Execution engine over one dataset: answers range queries exactly via a
/// counting k-d tree and doubles as the query-feedback oracle that STHoles
/// refines against. The dataset must outlive the executor.
class Executor : public CardinalityOracle {
 public:
  explicit Executor(const Dataset& data);

  /// Exact number of tuples in `box`.
  double Count(const Box& box) const override;

  /// Alias of Count, named for call sites that read as query execution.
  double Execute(const Box& query) const { return Count(query); }

  const KdTree& index() const { return index_; }

 private:
  KdTree index_;
};

}  // namespace sthist

#endif  // STHIST_WORKLOAD_QUERY_H_

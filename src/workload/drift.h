#ifndef STHIST_WORKLOAD_DRIFT_H_
#define STHIST_WORKLOAD_DRIFT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/box.h"
#include "core/status.h"
#include "data/generators.h"
#include "histogram/histogram.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {

/// \file
/// Drifting workload generation (DESIGN.md §14).
///
/// The paper's contribution is *initial-state* quality: a MineClus-seeded
/// STHoles resists the stagnation of Lemmas 1–3 for the distribution it was
/// initialized on. Production data drifts, so a deployed service regresses
/// to exactly the stuck states the paper fixes offline. These generators
/// produce the drifting streams that provoke the regression — each scenario
/// is a sequence of *phases*, every phase pairing a data snapshot (the
/// ground truth active while the phase plays) with the query workload issued
/// against it. Everything is derived from the schedule seed through
/// DeriveSeed, so a schedule is bitwise-reproducible and replayable
/// (tests/drift_test.cc pins determinism and golden trajectories).

/// The drift scenario families (ROADMAP item 4).
enum class DriftScenario {
  /// The Cross dataset's bands translate across the domain phase by phase:
  /// the same tuple draws, shifted band centers — clusters *move*, queries
  /// follow the data.
  kMovingCross,
  /// A fixed pool of subspace Gaussian clusters; each phase activates a
  /// sliding subset, so clusters appear and vanish between phases.
  kClusterChurn,
  /// Fixed data; the query distribution concentrates inside a small hotspot
  /// box that jumps to a new location every phase (selectivity hotspots).
  kHotspot,
  /// Fixed data and query set; each phase replays the queries in an
  /// adversarial order (lexicographic position sweeps, alternating axis and
  /// direction) — the pathological learning orders of Definition 1.
  kAdversarial,
};

/// Parses a scenario name as spelled on the CLI: "cross-move", "churn",
/// "hotspot", "adversarial".
StatusOr<DriftScenario> ParseDriftScenario(std::string_view name);

/// Printable scenario name (the CLI spelling).
const char* DriftScenarioName(DriftScenario scenario);

/// Shape of a drifting stream. Composes with WorkloadConfig: the workload
/// config supplies the per-phase query count, volume fraction, and (where a
/// scenario does not dictate its own placement) the center distribution;
/// DriftConfig supplies the drift structure on top.
struct DriftConfig {
  DriftScenario scenario = DriftScenario::kMovingCross;

  /// Number of distribution phases. Phase boundaries are where the ground
  /// truth changes under the serving layer.
  size_t phases = 4;

  /// Master seed; every phase's data and query streams are derived from it
  /// via DeriveSeed (never seed+k — see core/rng.h).
  uint64_t seed = 17;

  /// Data dimensionality (cross/adversarial/hotspot; churn clamps its
  /// Gaussian subspace sizes into this).
  size_t dim = 2;

  /// Approximate tuples per phase snapshot (split ~10:1 cluster:noise the
  /// way the paper's Cross is).
  size_t tuples = 22000;

  /// kMovingCross: total band-center travel across all phases, as a
  /// fraction of the domain extent (phase p sits at
  /// (p/(phases-1) - 0.5) * move_span, clamped so bands stay inside).
  double move_span = 0.6;

  /// kClusterChurn: size of the cluster pool and how many are active per
  /// phase (a sliding window over the pool).
  size_t churn_pool = 6;
  size_t churn_active = 3;

  /// kHotspot: hotspot volume as a fraction of the domain volume.
  double hotspot_volume_fraction = 0.02;
};

/// Validates a DriftConfig from an untrusted source (CLI flags).
Status Validate(const DriftConfig& config);

/// One phase of a drifting run.
struct DriftPhase {
  /// The ground truth active while this phase plays (data + planted truth).
  /// (The member initializer is a placeholder — Dataset has no empty state —
  /// and is always overwritten by MakeDriftSchedule.)
  GeneratedData data{Dataset(1), Box(), {}};
  /// The queries issued during the phase, in replay order.
  Workload queries;
};

/// A fully materialized drifting stream: an ordered sequence of phases over
/// one shared domain (the histogram's domain never changes; only the mass
/// inside it moves). Immutable after construction.
class DriftSchedule {
 public:
  DriftScenario scenario() const { return scenario_; }
  const Box& domain() const { return domain_; }
  size_t phase_count() const { return phases_.size(); }
  const DriftPhase& phase(size_t i) const { return phases_[i]; }
  size_t total_queries() const;

 private:
  friend StatusOr<DriftSchedule> MakeDriftSchedule(const DriftConfig&,
                                                   const WorkloadConfig&);
  DriftScenario scenario_ = DriftScenario::kMovingCross;
  Box domain_;
  std::vector<DriftPhase> phases_;
};

/// Builds the drifting stream for `drift`, taking the per-phase query count,
/// query volume, and center preference from `workload` (WorkloadConfig::seed
/// is ignored — the schedule's streams derive from DriftConfig::seed so one
/// knob replays the whole run). Deterministic: equal configs produce
/// bitwise-identical schedules regardless of caller threading.
StatusOr<DriftSchedule> MakeDriftSchedule(const DriftConfig& drift,
                                          const WorkloadConfig& workload);

/// CardinalityOracle over a DriftSchedule: answers from the active phase's
/// executor (one counting k-d tree per phase, built up front). The replay
/// driver advances the phase at phase boundaries; Count is safe from any
/// thread concurrently with SetPhase (the phase index is atomic), though a
/// deterministic replay drains in-flight feedback before advancing. The
/// schedule must outlive the oracle.
class PhasedOracle : public CardinalityOracle {
 public:
  explicit PhasedOracle(const DriftSchedule& schedule);

  double Count(const Box& box) const override;

  /// Activates phase `p` (< phase_count). Subsequent Counts answer from it.
  void SetPhase(size_t p);
  size_t phase() const { return phase_.load(std::memory_order_acquire); }
  size_t phase_count() const { return executors_.size(); }

 private:
  std::vector<std::unique_ptr<Executor>> executors_;
  std::atomic<size_t> phase_{0};
};

}  // namespace sthist

#endif  // STHIST_WORKLOAD_DRIFT_H_

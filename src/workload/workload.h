#ifndef STHIST_WORKLOAD_WORKLOAD_H_
#define STHIST_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/box.h"
#include "core/status.h"
#include "data/dataset.h"

namespace sthist {

/// A workload is an ordered sequence of range queries.
using Workload = std::vector<Box>;

/// Where query centers are drawn from (paper §5.1).
enum class CenterDistribution {
  /// Uniform over the domain — the paper's default pattern.
  kUniform,
  /// Sampled from the data tuples, so queries follow the data distribution.
  kData,
};

/// Configuration for workload generation.
struct WorkloadConfig {
  size_t num_queries = 1000;
  /// Query volume as a fraction of the domain volume; the paper's "X[1%]"
  /// setting is volume_fraction = 0.01. Queries are hypercubes with side
  /// (volume_fraction)^(1/d) of the domain extent per dimension.
  double volume_fraction = 0.01;
  CenterDistribution centers = CenterDistribution::kUniform;
  uint64_t seed = 7;
};

/// Generates fixed-volume hypercube queries with random centers. Queries are
/// shifted (not clipped) to fit inside the domain, so every query has exactly
/// the configured volume — keeping results comparable across experiments.
/// `data` is required only for CenterDistribution::kData.
Workload MakeWorkload(const Box& domain, const WorkloadConfig& config,
                      const Dataset* data = nullptr);

/// Returns a permutation of `workload` (same queries, shuffled order) — the
/// π(W) of Definition 1 used by the sensitivity experiments.
Workload Permuted(const Workload& workload, uint64_t seed);

/// Validates one range query arriving from an untrusted source against the
/// data domain. Rejects (with a reason) dimension mismatches, non-finite
/// bounds, inverted intervals (lo > hi, constructible via the Box mutators),
/// zero-volume boxes, and queries entirely outside the domain. Boxes that
/// pass are safe for every histogram's Estimate/Refine.
Status ValidateQueryBox(const Box& domain, const Box& query);

/// Repairing variant of ValidateQueryBox: swaps inverted bounds and clamps
/// the box into the domain, returning the sanitized query. Still rejects
/// what cannot be repaired — non-finite bounds, dimension mismatches, and
/// boxes whose domain intersection has zero volume.
StatusOr<Box> SanitizeQueryBox(const Box& domain, const Box& query);

/// Checked wrapper over MakeWorkload for configurations from untrusted
/// sources: validates the domain, volume fraction, and center distribution
/// requirements, returning a reason instead of tripping internal CHECKs.
StatusOr<Workload> MakeWorkloadChecked(const Box& domain,
                                       const WorkloadConfig& config,
                                       const Dataset* data = nullptr);

/// All axis-aligned unit cells [i, i+1] x [j, j+1] x ... of the integer grid
/// covering `domain`, in random order. This is the homogeneous grid-aligned
/// workload of the stagnation analysis (§3.2): unit-volume queries against
/// larger clusters. `cells_per_dim` controls the grid resolution.
Workload MakeGridWorkload(const Box& domain, size_t cells_per_dim,
                          uint64_t seed);

}  // namespace sthist

#endif  // STHIST_WORKLOAD_WORKLOAD_H_

#include "workload/query.h"

namespace sthist {

Executor::Executor(const Dataset& data) : index_(data) {}

double Executor::Count(const Box& box) const {
  return static_cast<double>(index_.Count(box));
}

}  // namespace sthist

#ifndef STHIST_OBS_TRACE_H_
#define STHIST_OBS_TRACE_H_

#include <chrono>

#include "obs/metrics.h"

namespace sthist::obs {

/// \file
/// Stage tracing (DESIGN.md §13): RAII timers that record a code region's
/// wall-clock duration into a LatencyHistogram, optionally also appending a
/// span to the owning registry's TraceRing. When the target histogram handle
/// is disabled the timer never reads the clock, so a fully disabled build
/// path costs one branch per region.

/// Seconds since an arbitrary process-stable origin, used to timestamp span
/// starts in the ring.
double MonotonicSeconds();

/// Times one scope into a latency histogram.
///
///   obs::ScopedTimer timer(refine_seconds_);
///   ...           // region under measurement
///   // ~ScopedTimer records the elapsed seconds.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram target) : target_(target) {
    if (target_.enabled()) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Stops the timer early and records; subsequent destruction is a no-op.
  /// Returns the elapsed seconds (0 when disabled).
  double Stop() {
    if (!target_.enabled() || stopped_) return 0.0;
    stopped_ = true;
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    target_.Observe(seconds);
    return seconds;
  }

  ~ScopedTimer() { Stop(); }

 private:
  LatencyHistogram target_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

/// ScopedTimer plus a ring entry: names the span and, when `ring` is
/// non-null, appends (name, start, duration) to it on completion. `name`
/// must point at static storage (string literals) — the ring keeps the
/// pointer, not a copy.
class TraceSpan {
 public:
  TraceSpan(const char* name, LatencyHistogram target, TraceRing* ring)
      : name_(name), target_(target), ring_(ring) {
    if (target_.enabled() || ring_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
      start_seconds_ = MonotonicSeconds();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (!target_.enabled() && ring_ == nullptr) return;
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    target_.Observe(seconds);
    if (ring_ != nullptr) ring_->Record(name_, start_seconds_, seconds);
  }

 private:
  const char* name_;
  LatencyHistogram target_;
  TraceRing* ring_;
  std::chrono::steady_clock::time_point start_;
  double start_seconds_ = 0.0;
};

}  // namespace sthist::obs

#endif  // STHIST_OBS_TRACE_H_

#ifndef STHIST_OBS_METRICS_H_
#define STHIST_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sthist::obs {

/// \file
/// Structured observability: a registry of named metrics updated through
/// lock-free atomic cells (DESIGN.md §13).
///
/// Design constraints, in order:
///  1. *Never* perturb the instrumented computation. Metrics are counters,
///     gauges, and latency observations — no instrumentation point feeds back
///     into an estimate or a refinement decision, so the bitwise-determinism
///     contracts of DESIGN.md §9–§11 are untouched (tests/obs_test.cc holds
///     an instrumented STHoles to bit-identity against an uninstrumented
///     twin).
///  2. Near-zero cost when disabled. A disabled registry (the null object
///     returned by MetricsRegistry::Disabled(), also the process-wide default
///     of GlobalMetrics()) hands out handles whose cell pointer is null; an
///     update through such a handle is one predictable branch, with no
///     allocation, no lock, and no clock read (ScopedTimer checks
///     enabled() before touching the clock).
///  3. Lock-cheap when enabled. Registration (name → cell lookup) takes the
///     registry mutex once per handle, typically at component construction;
///     every subsequent update is a relaxed atomic on the metric's own cell.
///
/// Metric names follow `layer.component.name` (e.g.
/// "histogram.stholes.drills", "serve.service.publish_seconds"); see
/// DESIGN.md §13 for the naming and cardinality rules.

class MetricsRegistry;

/// Monotonic counter handle. Copyable, trivially destructible; a
/// default-constructed handle is disabled and ignores updates.
class Counter {
 public:
  Counter() = default;

  void Inc(uint64_t n = 1) const {
    if (cell_ != nullptr) cell_->fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }

  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<uint64_t>* cell) : cell_(cell) {}

  std::atomic<uint64_t>* cell_ = nullptr;
};

/// Point-in-time gauge handle (queue depth, staleness, epoch). Same handle
/// semantics as Counter.
class Gauge {
 public:
  Gauge() = default;

  void Set(double v) const {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }

  void Add(double d) const {
    if (cell_ != nullptr) cell_->fetch_add(d, std::memory_order_relaxed);
  }

  double value() const {
    return cell_ == nullptr ? 0.0 : cell_->load(std::memory_order_relaxed);
  }

  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}

  std::atomic<double>* cell_ = nullptr;
};

/// Fixed bucket layout shared by every latency histogram: upper bounds in
/// seconds, powers of 4 from 1µs, plus one overflow bucket. Fixed buckets
/// keep Observe() allocation-free and make cross-run artifacts comparable.
inline constexpr size_t kLatencyBuckets = 14;
inline constexpr std::array<double, kLatencyBuckets - 1> kLatencyBounds = {
    1e-6,       4e-6,       1.6e-5,    6.4e-5,   2.56e-4,  1.024e-3, 4.096e-3,
    1.6384e-2,  6.5536e-2,  0.262144,  1.048576, 4.194304, 16.777216};

/// Latency histogram handle: fixed log-scale buckets plus count / sum / max.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;

  /// Records one observation of `seconds`. Non-finite or negative
  /// observations land in the first bucket (they indicate a broken clock,
  /// not a fast operation, but must never throw off the instrumented code).
  void Observe(double seconds) const;

  uint64_t count() const;
  double sum_seconds() const;
  double max_seconds() const;
  /// Per-bucket counts, index-aligned with kLatencyBounds (+ overflow last).
  std::array<uint64_t, kLatencyBuckets> bucket_counts() const;

  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  struct Cell {
    std::array<std::atomic<uint64_t>, kLatencyBuckets> counts{};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum_seconds{0.0};
    std::atomic<double> max_seconds{0.0};
  };
  explicit LatencyHistogram(Cell* cell) : cell_(cell) {}

  Cell* cell_ = nullptr;
};

/// One completed span captured by the trace ring (see obs/trace.h).
struct SpanRecord {
  const char* name = "";  // Must point at static storage.
  double start_seconds = 0.0;  // Relative to the ring's creation.
  double duration_seconds = 0.0;
};

/// Fixed-capacity ring of the most recent spans, for post-hoc "what did the
/// refiner spend its last second on" debugging. Mutex-guarded: spans are
/// recorded at stage granularity (refine, publish, build), not per-estimate,
/// so the lock is cold.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Record(const char* name, double start_seconds, double duration_seconds);

  /// The retained spans, oldest first.
  std::vector<SpanRecord> Recent() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;  // Ring storage.
  size_t next_ = 0;                // Insertion cursor.
  bool wrapped_ = false;
};

/// Value snapshot of one registry, for programmatic inspection and export.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct LatencyValue {
    std::string name;
    uint64_t count = 0;
    double sum_seconds = 0.0;
    double max_seconds = 0.0;
    std::array<uint64_t, kLatencyBuckets> buckets{};
  };
  // Each list is sorted by name, so exports are deterministic.
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<LatencyValue> latencies;

  size_t total_metrics() const {
    return counters.size() + gauges.size() + latencies.size();
  }

  /// JSON object {"counters":{...},"gauges":{...},"latencies":{...}}.
  /// Latency buckets serialize as [[upper_bound_or_null, count], ...] with
  /// null marking the overflow bucket. This is the schema `--metrics-json`
  /// files and BENCH_*.json artifacts carry (checked by CI's perf-smoke job).
  std::string ToJson() const;

  /// Prometheus-flavoured plain text ("name value" lines, histograms
  /// expanded to _count/_sum/_max/_bucket{le=...}), the `/metrics`-style dump
  /// `sthist_cli serve-sim` prints.
  std::string ToText() const;
};

/// Registry of named metrics. One registry per observability domain — a CLI
/// invocation, a service instance, a test — with components receiving a
/// `MetricsRegistry*` (or defaulting to GlobalMetrics()).
///
/// Thread safety: handle registration and snapshots are mutex-guarded;
/// updates through handles are lock-free relaxed atomics. Cells live in
/// deques and are never moved or freed before the registry dies, so handles
/// stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The shared null object: a disabled registry whose handles ignore
  /// updates. Requesting a handle from it performs no allocation and takes
  /// no lock (tests/obs_test.cc checks the zero-allocation property).
  static MetricsRegistry* Disabled();

  bool enabled() const { return enabled_; }

  /// Finds or creates the named metric and returns a lock-free handle.
  /// Repeated requests for one name return handles onto the same cell, which
  /// is also how clones of an instrumented histogram aggregate into their
  /// source's metrics. Requesting a name already registered as a different
  /// metric kind aborts.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  LatencyHistogram latency(std::string_view name);

  /// Enables the span ring (idempotent; capacity applies on first call).
  void EnableTracing(size_t capacity = 256);

  /// The span ring, or nullptr when tracing is off / registry disabled.
  TraceRing* ring() const { return ring_.get(); }

  /// Consistent-enough value snapshot: each cell is read atomically, the set
  /// of metrics is read under the registry mutex. Counters racing with the
  /// snapshot can be one event apart, exactly like ServiceStats.
  MetricsSnapshot Snapshot() const;

  /// Snapshot().ToJson() / Snapshot().ToText() conveniences.
  std::string ToJson() const { return Snapshot().ToJson(); }
  std::string ToText() const { return Snapshot().ToText(); }

 private:
  struct Named {
    std::string name;
  };
  struct CounterEntry : Named {
    std::atomic<uint64_t> cell{0};
  };
  struct GaugeEntry : Named {
    std::atomic<double> cell{0.0};
  };
  struct LatencyEntry : Named {
    LatencyHistogram::Cell cell;
  };

  explicit MetricsRegistry(bool enabled) : enabled_(enabled) {}

  const bool enabled_ = true;
  mutable std::mutex mutex_;
  // Deques: entries never relocate, so handles handed out earlier survive
  // later registrations.
  std::deque<CounterEntry> counters_;
  std::deque<GaugeEntry> gauges_;
  std::deque<LatencyEntry> latencies_;
  std::unique_ptr<TraceRing> ring_;
};

/// Process-wide default registry, used by components not handed an explicit
/// one. Starts as the disabled null object, so an unconfigured process pays
/// only the null-handle branch; entry points that want metrics (the CLI's
/// --metrics-json, the bench harnesses) install a real registry once at
/// startup. Never returns nullptr.
MetricsRegistry* GlobalMetrics();

/// Installs `registry` as the process-wide default (nullptr restores the
/// disabled null object). Handles already resolved keep pointing at their
/// original registry; install before constructing instrumented components.
/// Not synchronized against concurrent GlobalMetrics() users — call during
/// single-threaded startup.
void SetGlobalMetrics(MetricsRegistry* registry);

}  // namespace sthist::obs

#endif  // STHIST_OBS_METRICS_H_

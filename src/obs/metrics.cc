#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/check.h"

namespace sthist::obs {

namespace {

// Shortest round-trippable formatting for doubles in JSON/text exports.
std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Minimal JSON string escaping; metric names are dotted identifiers, so this
// is belt-and-braces for the characters that would break the document.
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

void LatencyHistogram::Observe(double seconds) const {
  if (cell_ == nullptr) return;
  if (!std::isfinite(seconds) || seconds < 0.0) seconds = 0.0;
  size_t bucket = 0;
  while (bucket < kLatencyBounds.size() && seconds > kLatencyBounds[bucket]) {
    ++bucket;
  }
  cell_->counts[bucket].fetch_add(1, std::memory_order_relaxed);
  cell_->count.fetch_add(1, std::memory_order_relaxed);
  cell_->sum_seconds.fetch_add(seconds, std::memory_order_relaxed);
  double seen = cell_->max_seconds.load(std::memory_order_relaxed);
  while (seconds > seen && !cell_->max_seconds.compare_exchange_weak(
                               seen, seconds, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::count() const {
  return cell_ == nullptr ? 0 : cell_->count.load(std::memory_order_relaxed);
}

double LatencyHistogram::sum_seconds() const {
  return cell_ == nullptr ? 0.0
                          : cell_->sum_seconds.load(std::memory_order_relaxed);
}

double LatencyHistogram::max_seconds() const {
  return cell_ == nullptr ? 0.0
                          : cell_->max_seconds.load(std::memory_order_relaxed);
}

std::array<uint64_t, kLatencyBuckets> LatencyHistogram::bucket_counts() const {
  std::array<uint64_t, kLatencyBuckets> out{};
  if (cell_ == nullptr) return out;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    out[i] = cell_->counts[i].load(std::memory_order_relaxed);
  }
  return out;
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TraceRing::TraceRing(size_t capacity) : capacity_(capacity) {
  STHIST_CHECK(capacity > 0);
  spans_.resize(capacity);
}

void TraceRing::Record(const char* name, double start_seconds,
                       double duration_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_[next_] = {name, start_seconds, duration_seconds};
  next_ = (next_ + 1) % capacity_;
  if (next_ == 0) wrapped_ = true;
}

std::vector<SpanRecord> TraceRing::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  if (wrapped_) {
    out.reserve(capacity_);
    out.insert(out.end(), spans_.begin() + static_cast<ptrdiff_t>(next_),
               spans_.end());
  }
  out.insert(out.end(), spans_.begin(),
             spans_.begin() + static_cast<ptrdiff_t>(next_));
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry* MetricsRegistry::Disabled() {
  static MetricsRegistry disabled(false);
  return &disabled;
}

Counter MetricsRegistry::counter(std::string_view name) {
  if (!enabled_) return Counter();
  std::lock_guard<std::mutex> lock(mutex_);
  for (CounterEntry& entry : counters_) {
    if (entry.name == name) return Counter(&entry.cell);
  }
  CounterEntry& entry = counters_.emplace_back();
  entry.name = std::string(name);
  return Counter(&entry.cell);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  if (!enabled_) return Gauge();
  std::lock_guard<std::mutex> lock(mutex_);
  for (GaugeEntry& entry : gauges_) {
    if (entry.name == name) return Gauge(&entry.cell);
  }
  GaugeEntry& entry = gauges_.emplace_back();
  entry.name = std::string(name);
  return Gauge(&entry.cell);
}

LatencyHistogram MetricsRegistry::latency(std::string_view name) {
  if (!enabled_) return LatencyHistogram();
  std::lock_guard<std::mutex> lock(mutex_);
  for (LatencyEntry& entry : latencies_) {
    if (entry.name == name) return LatencyHistogram(&entry.cell);
  }
  LatencyEntry& entry = latencies_.emplace_back();
  entry.name = std::string(name);
  return LatencyHistogram(&entry.cell);
}

void MetricsRegistry::EnableTracing(size_t capacity) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_ == nullptr) ring_ = std::make_unique<TraceRing>(capacity);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const CounterEntry& entry : counters_) {
    snap.counters.push_back(
        {entry.name, entry.cell.load(std::memory_order_relaxed)});
  }
  snap.gauges.reserve(gauges_.size());
  for (const GaugeEntry& entry : gauges_) {
    snap.gauges.push_back(
        {entry.name, entry.cell.load(std::memory_order_relaxed)});
  }
  snap.latencies.reserve(latencies_.size());
  for (const LatencyEntry& entry : latencies_) {
    MetricsSnapshot::LatencyValue value;
    value.name = entry.name;
    value.count = entry.cell.count.load(std::memory_order_relaxed);
    value.sum_seconds = entry.cell.sum_seconds.load(std::memory_order_relaxed);
    value.max_seconds = entry.cell.max_seconds.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kLatencyBuckets; ++i) {
      value.buckets[i] = entry.cell.counts[i].load(std::memory_order_relaxed);
    }
    snap.latencies.push_back(std::move(value));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.latencies.begin(), snap.latencies.end(), by_name);
  return snap;
}

// ---------------------------------------------------------------------------
// Snapshot export
// ---------------------------------------------------------------------------

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterValue& c : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(c.name) + ": " + std::to_string(c.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const GaugeValue& g : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(g.name) + ": " + FormatNumber(g.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"latencies\": {";
  first = true;
  for (const LatencyValue& l : latencies) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(l.name) + ": {\"count\": " +
           std::to_string(l.count) +
           ", \"sum_seconds\": " + FormatNumber(l.sum_seconds) +
           ", \"max_seconds\": " + FormatNumber(l.max_seconds) +
           ", \"buckets\": [";
    for (size_t i = 0; i < kLatencyBuckets; ++i) {
      if (i > 0) out += ", ";
      out += "[";
      out += i < kLatencyBounds.size() ? FormatNumber(kLatencyBounds[i])
                                       : std::string("null");
      out += ", " + std::to_string(l.buckets[i]) + "]";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const CounterValue& c : counters) {
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeValue& g : gauges) {
    out += g.name + " " + FormatNumber(g.value) + "\n";
  }
  for (const LatencyValue& l : latencies) {
    out += l.name + "_count " + std::to_string(l.count) + "\n";
    out += l.name + "_sum " + FormatNumber(l.sum_seconds) + "\n";
    out += l.name + "_max " + FormatNumber(l.max_seconds) + "\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kLatencyBuckets; ++i) {
      cumulative += l.buckets[i];
      std::string bound = i < kLatencyBounds.size()
                              ? FormatNumber(kLatencyBounds[i])
                              : std::string("+Inf");
      out += l.name + "_bucket{le=\"" + bound + "\"} " +
             std::to_string(cumulative) + "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Global default registry
// ---------------------------------------------------------------------------

namespace {
std::atomic<MetricsRegistry*> g_global{nullptr};
}  // namespace

MetricsRegistry* GlobalMetrics() {
  MetricsRegistry* r = g_global.load(std::memory_order_acquire);
  return r == nullptr ? MetricsRegistry::Disabled() : r;
}

void SetGlobalMetrics(MetricsRegistry* registry) {
  g_global.store(registry, std::memory_order_release);
}

}  // namespace sthist::obs

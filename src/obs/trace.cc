#include "obs/trace.h"

namespace sthist::obs {

double MonotonicSeconds() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin)
      .count();
}

}  // namespace sthist::obs

#include "histogram/census.h"

#include <cstdio>

namespace sthist {

CensusResult CensusSubspaceBuckets(const STHoles& hist, double tolerance) {
  CensusResult result;
  const Box& domain = hist.domain();
  std::vector<STHoles::BucketInfo> buckets = hist.Dump();

  for (const STHoles::BucketInfo& b : buckets) {
    if (b.depth == 0) continue;  // Skip the root.
    ++result.total_buckets;
    size_t unused = 0;
    for (size_t d = 0; d < domain.dim(); ++d) {
      double full = domain.Extent(d);
      if (full <= 0.0) continue;
      if (b.box.Extent(d) >= (1.0 - tolerance) * full) ++unused;
    }
    result.unused_dims_per_bucket.push_back(unused);
    if (unused > 0) ++result.subspace_buckets;
    result.max_unused_dims = std::max(result.max_unused_dims, unused);
  }
  return result;
}

std::string FormatBucketTree(const STHoles& hist) {
  std::string out;
  char buf[64];
  for (const STHoles::BucketInfo& b : hist.Dump()) {
    out.append(2 * b.depth, ' ');
    out += b.box.ToString();
    std::snprintf(buf, sizeof(buf), "  f=%.1f\n", b.frequency);
    out += buf;
  }
  return out;
}

}  // namespace sthist

#ifndef STHIST_HISTOGRAM_ROBUSTNESS_H_
#define STHIST_HISTOGRAM_ROBUSTNESS_H_

#include <optional>

#include "core/box.h"
#include "histogram/histogram.h"

namespace sthist {

/// Wraps an untrusted CardinalityOracle so the tuning loops can consume its
/// counts without poisoning bucket frequencies: non-finite counts become 0
/// and negative counts are clamped to 0, each repair bumping
/// `clamped_feedback` on the attached stats.
///
/// The self-tuning histograms route *all* feedback counts through this
/// wrapper — it is the single choke point between an external engine's
/// answers and the bucket arithmetic.
class SanitizingOracle : public CardinalityOracle {
 public:
  /// Neither pointer is owned; both must outlive the wrapper.
  SanitizingOracle(const CardinalityOracle& inner, RobustnessStats* stats)
      : inner_(inner), stats_(stats) {}

  double Count(const Box& box) const override;

 private:
  const CardinalityOracle& inner_;
  RobustnessStats* stats_;
};

/// Repairs one feedback query box against the histogram domain: inverted
/// intervals are swapped, out-of-domain boxes clamped into the domain.
/// Returns std::nullopt — and bumps `rejected_queries` — when the box is
/// unusable (non-finite bounds, dimension mismatch, zero volume inside the
/// domain). A successful repair that changed the box bumps
/// `sanitized_queries`; an already-clean box bumps nothing.
std::optional<Box> SanitizeFeedbackQuery(const Box& domain, const Box& query,
                                         RobustnessStats* stats);

/// True when `query` is safe to estimate against `domain`: matching
/// dimensionality, finite bounds, no inverted interval. The estimation path
/// needs no repair — an unusable query simply estimates to zero.
bool IsEstimableQuery(const Box& domain, const Box& query);

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_ROBUSTNESS_H_

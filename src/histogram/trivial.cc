#include "histogram/trivial.h"

#include "core/check.h"

namespace sthist {

TrivialHistogram::TrivialHistogram(const Box& domain, double total_tuples)
    : domain_(domain),
      total_tuples_(total_tuples),
      domain_volume_(domain.Volume()) {
  STHIST_CHECK(total_tuples >= 0);
  STHIST_CHECK(domain_volume_ > 0);
}

double TrivialHistogram::Estimate(const Box& query) const {
  return total_tuples_ * domain_.IntersectionVolume(query) / domain_volume_;
}

void TrivialHistogram::Refine(const Box& /*query*/,
                              const CardinalityOracle& /*oracle*/) {}

}  // namespace sthist

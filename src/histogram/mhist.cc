#include "histogram/mhist.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sthist {

void MHistHistogram::ScoreBucket(const Dataset& data,
                                 BuildBucket* bucket) const {
  bucket->max_diff = -1.0;
  if (bucket->rows.size() < 2) return;

  const size_t bins = config_.marginal_bins;
  std::vector<double> marginal(bins);
  for (size_t d = 0; d < data.dim(); ++d) {
    double lo = bucket->box.lo(d);
    double extent = bucket->box.Extent(d);
    if (extent <= 0.0) continue;

    std::fill(marginal.begin(), marginal.end(), 0.0);
    for (size_t row : bucket->rows) {
      double frac = (data.value(row, d) - lo) / extent;
      auto bin = static_cast<size_t>(frac * static_cast<double>(bins));
      marginal[std::min(bin, bins - 1)] += 1.0;
    }

    for (size_t b = 0; b + 1 < bins; ++b) {
      double diff = std::abs(marginal[b] - marginal[b + 1]);
      if (diff > bucket->max_diff) {
        // Split between bin b and b+1.
        double at = lo + extent * static_cast<double>(b + 1) /
                             static_cast<double>(bins);
        // A split at the bucket border would not partition anything.
        if (at <= bucket->box.lo(d) || at >= bucket->box.hi(d)) continue;
        bucket->max_diff = diff;
        bucket->split_dim = d;
        bucket->split_at = at;
      }
    }
  }
}

MHistHistogram::MHistHistogram(const Dataset& data, const Box& domain,
                               const MHistConfig& config)
    : config_(config) {
  STHIST_CHECK(config.max_buckets >= 1);
  STHIST_CHECK(config.marginal_bins >= 2);
  STHIST_CHECK(data.dim() == domain.dim());

  std::vector<BuildBucket> building;
  {
    BuildBucket root;
    root.box = domain;
    root.rows.resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) root.rows[i] = i;
    ScoreBucket(data, &root);
    building.push_back(std::move(root));
  }

  while (building.size() < config.max_buckets) {
    // The bucket with the largest MaxDiff is the most non-uniform one.
    size_t victim = building.size();
    double best = 0.0;
    for (size_t i = 0; i < building.size(); ++i) {
      if (building[i].max_diff > best) {
        best = building[i].max_diff;
        victim = i;
      }
    }
    if (victim == building.size()) break;  // Everything is uniform.

    BuildBucket& splitting = building[victim];
    size_t d = splitting.split_dim;
    double at = splitting.split_at;

    BuildBucket low, high;
    low.box = splitting.box;
    low.box.set_hi(d, at);
    high.box = splitting.box;
    high.box.set_lo(d, at);
    for (size_t row : splitting.rows) {
      (data.value(row, d) < at ? low : high).rows.push_back(row);
    }
    ScoreBucket(data, &low);
    ScoreBucket(data, &high);
    building[victim] = std::move(low);
    building.push_back(std::move(high));
  }

  buckets_.reserve(building.size());
  for (BuildBucket& bucket : building) {
    buckets_.push_back(
        {bucket.box, static_cast<double>(bucket.rows.size())});
  }

  std::vector<FlatBoxIndex::Entry> entries;
  entries.reserve(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    entries.push_back({buckets_[i].box, i});
  }
  index_.Bulk(std::move(entries));
}

double MHistHistogram::Estimate(const Box& query) const {
  // Closed-overlap probe: a degenerate bucket inside the query shares no
  // open interior with it but must still contribute its mass. Buckets the
  // probe skips contribute an exact 0.0 term (disjoint => zero intersection
  // volume) or no term (degenerate, not contained) in the linear scan, and
  // sorting restores bucket order, so the sum below is bitwise-identical to
  // EstimateLinear.
  // Thread-local scratch so concurrent EstimateBatch readers never share a
  // buffer and the steady-state probe never allocates.
  static thread_local std::vector<uint64_t> hits;
  hits.clear();
  index_.Probe(query, BoxOverlap::kClosed, &hits);
  std::sort(hits.begin(), hits.end());
  double estimate = 0.0;
  for (uint64_t id : hits) {
    const BucketInfo& bucket = buckets_[id];
    double volume = bucket.box.Volume();
    if (volume <= 0.0) {
      // Degenerate bucket: counts fully when the query covers it.
      if (query.Contains(bucket.box)) estimate += bucket.frequency;
      continue;
    }
    estimate +=
        bucket.frequency * bucket.box.IntersectionVolume(query) / volume;
  }
  return estimate;
}

double MHistHistogram::EstimateLinear(const Box& query) const {
  double estimate = 0.0;
  for (const BucketInfo& bucket : buckets_) {
    double volume = bucket.box.Volume();
    if (volume <= 0.0) {
      if (query.Contains(bucket.box)) estimate += bucket.frequency;
      continue;
    }
    estimate +=
        bucket.frequency * bucket.box.IntersectionVolume(query) / volume;
  }
  return estimate;
}

void MHistHistogram::Refine(const Box& /*query*/,
                            const CardinalityOracle& /*oracle*/) {}

std::vector<MHistHistogram::BucketInfo> MHistHistogram::Dump() const {
  return buckets_;
}

}  // namespace sthist

#ifndef STHIST_HISTOGRAM_EQUIWIDTH_H_
#define STHIST_HISTOGRAM_EQUIWIDTH_H_

#include <vector>

#include "data/dataset.h"
#include "histogram/histogram.h"

namespace sthist {

/// A static multidimensional equi-width grid histogram.
///
/// The classic scan-the-whole-table baseline: the domain is cut into
/// `cells_per_dim^d` equal cells, each storing an exact tuple count.
/// Estimation assumes uniformity within each cell. Included as the static
/// counterpart to the self-tuning histograms (the paper's §1 background);
/// it needs a full data scan to build and must be rebuilt on data change.
class EquiWidthHistogram : public Histogram {
 public:
  /// Builds the grid by scanning `data`. The total cell count
  /// cells_per_dim^d must not exceed 2^26 (memory guard).
  EquiWidthHistogram(const Dataset& data, const Box& domain,
                     size_t cells_per_dim);

  double Estimate(const Box& query) const override;

  /// Static histograms ignore feedback.
  void Refine(const Box& query, const CardinalityOracle& oracle) override;

  size_t bucket_count() const override { return counts_.size(); }

  /// Grid resolution per dimension.
  size_t cells_per_dim() const { return cells_per_dim_; }

 private:
  // The cell containing coordinate x in dimension d.
  size_t CellIndex(size_t d, double x) const;

  Box domain_;
  size_t cells_per_dim_;
  std::vector<double> counts_;  // Row-major over the d-dimensional grid.
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_EQUIWIDTH_H_

#ifndef STHIST_HISTOGRAM_KDE_H_
#define STHIST_HISTOGRAM_KDE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/box.h"
#include "core/reservoir.h"
#include "core/rng.h"
#include "core/status.h"
#include "histogram/histogram.h"
#include "obs/metrics.h"

namespace sthist {

/// Tuning knobs for the feedback-driven KDE estimator (DESIGN.md §18).
struct KdeConfig {
  /// Sample points retained — the estimator's "bucket" budget. Estimation
  /// cost is O(sample * dim) per query, so this is the accuracy/speed dial.
  size_t sample_capacity = 1024;

  /// Each feedback box contributes m = clamp(ceil(actual / tuples_per_point),
  /// 1, max_points_per_feedback) synthetic points drawn uniformly inside it —
  /// the same count-weighting rule as the serving layer's FeedbackReservoir,
  /// so denser regions weigh more in the sample.
  size_t max_points_per_feedback = 8;
  double tuples_per_point = 64.0;

  /// Recency bias: every age_interval feedback items the reservoir's virtual
  /// stream length is halved (0 disables ageing).
  size_t age_interval = 4096;

  /// Online per-dimension bandwidth adaptation from feedback error. When
  /// false the bandwidths stay at Scott's rule (still tracking sample growth)
  /// — the fixed-bandwidth baseline tests/kde_test.cc compares against.
  bool adapt_bandwidth = true;

  /// Per-feedback multiplicative step on a bandwidth: h *= exp(±step) with
  /// step = learn_rate * min(|relative error|, 1), in the direction that
  /// shrinks the error (sign of the analytic gradient — see kde.cc). Capped
  /// at max_log_step per feedback.
  double learn_rate = 0.05;
  double max_log_step = 0.25;

  /// Adapted bandwidths are clamped to [min, max] × the Scott's-rule
  /// reference, so feedback can never collapse a kernel to a delta or smear
  /// it across the domain.
  double min_bandwidth_factor = 0.05;
  double max_bandwidth_factor = 20.0;

  uint64_t seed = 4242;

  /// Registry receiving the histogram.kde.* metrics (DESIGN.md §13); nullptr
  /// means the process-wide GlobalMetrics().
  obs::MetricsRegistry* metrics = nullptr;
};

/// Validates a KdeConfig from an untrusted source (CLI flags).
Status Validate(const KdeConfig& config);

/// Sample-backed adaptive-bandwidth KDE cardinality estimator — the
/// feedback-kde-style alternative estimator family (ROADMAP item 1,
/// DESIGN.md §18).
///
/// The model: a seed-deterministic reservoir sample of mass-weighted points
/// synthesized from query feedback (uniform inside each feedback box, each
/// point carrying μ_i = actual / points_drawn tuples of the observed count —
/// the estimator never sees tuples, same as STHoles), with an axis-aligned
/// product-Gaussian kernel on every sample point, truncated to the domain.
/// A range query's estimate is the self-normalized weighted kernel mass
/// inside the box,
///
///   est(q) = N · Σ_i μ_i · w_i · Π_d [ Φ((hi_d − x_id)/h_d)
///                                      − Φ((lo_d − x_id)/h_d) ] / Σ_i μ_i
///
/// (N total tuples, Φ the standard normal CDF via erf), where
/// w_i = 1 / (kernel i's mass inside the domain box) renormalizes each
/// truncated kernel so no probability leaks past the domain boundary. The
/// mass weights are what make the model sharper than the feedback-box
/// density itself: a band observation carrying 400 tuples outweighs an
/// empty-corner observation carrying 5 by 80:1, where unweighted points
/// could differ at most by the per-feedback point cap. Self-normalization
/// makes the full-domain estimate recover N exactly however wide the
/// bandwidths adapt. Per-dimension CDF differences, so estimation is
/// O(m·dim) with no numerical integration. Bandwidths h_d start at Scott's rule
/// (σ_d · m^(−1/(dim+4)), re-anchored as the sample evolves) and adapt
/// online: each feedback moves each h_d multiplicatively in the direction
/// that shrinks the observed relative error, using the analytic gradient of
/// the estimate w.r.t. h_d, clamped to sane bounds.
///
/// Determinism: construction seed fixes the reservoir and point-synthesis
/// streams; estimation is pure; refinement is a deterministic function of
/// the feedback sequence — so the §9 bitwise-replay contract holds, and
/// Serialize/Deserialize round-trips the full state (sample, bandwidths,
/// RNG engines) bit-exactly for warm restarts.
class KdeHistogram : public Histogram {
 public:
  /// Creates an estimator over `domain` for a relation of `total_tuples`
  /// rows. Until feedback arrives the sample is empty and estimates fall
  /// back to the uniform (trivial) model.
  KdeHistogram(const Box& domain, double total_tuples, const KdeConfig& config);

  KdeHistogram& operator=(const KdeHistogram&) = delete;

  /// Estimated cardinality of `query`, served from the SoA plane layout
  /// (built lazily, amortized across a batch by PrepareForBatch). Malformed
  /// queries (dimension mismatch, non-finite bounds) estimate to 0 and bump
  /// the robustness counters instead of aborting.
  double Estimate(const Box& query) const override;

  /// The row-major reference scan over the AoS sample — the differential
  /// twin of the SoA Estimate (tests/index_differential_test.cc holds the
  /// two to bit-identity; see §10).
  double EstimateLinear(const Box& query) const override;

  /// Learns from one executed query: adapts the per-dimension bandwidths
  /// against the observed error (before the sample moves), then folds
  /// mass-weighted synthetic points into the reservoir and re-anchors the
  /// Scott reference on the updated sample.
  void Refine(const Box& query, const CardinalityOracle& oracle) override;

  /// Deep copy: sample, bandwidths, RNG engines, counters. The clone's
  /// estimates are bitwise-identical to the source's; its SoA cache starts
  /// cold.
  std::unique_ptr<Histogram> Clone() const override;

  /// Sample points currently held — the synopsis "bucket" count.
  size_t bucket_count() const override { return sample_.size(); }

  RobustnessStats robustness() const override;

  /// Versioned binary snapshot ("STHK" frame, DESIGN.md §17/§18): domain,
  /// totals, bandwidth state, the full sample, and both RNG engine states,
  /// so a restored estimator replays bit-identically.
  std::string SerializeBinary() const override;

  static constexpr uint32_t kBinaryFormatVersion = 1;

  /// Reconstructs an estimator from SerializeBinary output. `config`
  /// supplies the tuning knobs (adaptation rate, ageing); the sample and
  /// all replay-relevant state come from the snapshot. The restored
  /// capacity is max(config.sample_capacity, snapshot sample size) —
  /// decoding never drops points. Fails closed on any framing, bounds, or
  /// finiteness violation.
  static StatusOr<std::unique_ptr<KdeHistogram>> DeserializeBinary(
      std::string_view bytes, const KdeConfig& config);

  const Box& domain() const { return domain_; }
  double total_tuples() const { return total_tuples_; }
  size_t sample_size() const { return sample_.size(); }
  size_t feedbacks_seen() const { return feedbacks_; }

  /// Current per-dimension bandwidths (adapted) and the Scott's-rule
  /// reference they are anchored to. Exposed for tests and inspection.
  const std::vector<double>& bandwidths() const { return bandwidth_; }
  const std::vector<double>& scott_reference() const { return scott_; }

 protected:
  /// Builds the dim-major SoA plane layout once per batch (DESIGN.md §15
  /// discipline: workers only probe).
  void PrepareForBatch() const override { EnsurePlanes(); }

 private:
  struct Metrics {
    obs::Counter estimates;
    obs::Counter refines;
    obs::Counter adaptations;
    obs::Gauge sample_points;
    obs::Gauge bandwidth_geomean;
    obs::LatencyHistogram refine_seconds;
  };

  KdeHistogram(const KdeHistogram& other);

  /// Shared query validation: true when the box is usable for estimation
  /// (matching dim, finite bounds). Inverted boxes are usable — they simply
  /// contain nothing.
  bool UsableQuery(const Box& query) const;

  /// Uniform fallback while the sample is empty.
  double TrivialEstimate(const Box& query) const;

  /// Row-major estimate that simultaneously accumulates the per-dimension
  /// bandwidth gradient Σ_i (Π_{d'≠d} F_id') · ∂F_id/∂log h_d into `grad`
  /// (sized dim). The estimate value is bitwise-identical to
  /// EstimateLinear's.
  double EstimateAndGrad(const Box& query, std::vector<double>* grad) const;

  /// Re-derives scott_ from the current sample and bandwidth_ from
  /// scott_ × exp(log_factor_), then refreshes coeff_.
  void RecomputeBandwidths();

  /// Rebuilds the per-point estimation coefficients
  /// c_i = (N / Σ_j μ_j) · μ_i · w_i from the current sample and bandwidths
  /// (derived state — never serialized).
  void ComputeCoefficients();

  void EnsurePlanes() const;

  const Box domain_;
  const double total_tuples_;
  const size_t dim_;
  const KdeConfig config_;

  /// Sample rows are dim_+1 doubles: the point coordinates followed by the
  /// tuple mass μ_i the point carries. The slot-selection RNG lives inside.
  Reservoir<Point> sample_;
  Rng synth_rng_;  // Coordinate-synthesis stream.

  std::vector<double> log_factor_;  // Adapted log multiplier per dim.
  std::vector<double> scott_;       // Scott's-rule reference per dim.
  std::vector<double> bandwidth_;   // scott_ × exp(log_factor_), clamped.
  std::vector<double> coeff_;       // Per-point coefficient c_i (see above).

  size_t feedbacks_ = 0;
  RobustnessStats refine_robustness_;
  mutable std::atomic<uint64_t> rejected_estimates_{0};

  // Lazily built dim-major plane copy of the sample (plane d occupies
  // [d*m, (d+1)*m)); rebuilt after every Refine. Guarded for concurrent
  // const readers (EstimateBatch workers may race to build it).
  mutable std::mutex planes_mutex_;
  mutable std::atomic<bool> planes_ready_{false};
  mutable std::vector<double> planes_;

  // Refiner-thread scratch for EstimateAndGrad (Refine is single-threaded
  // by contract).
  mutable std::vector<double> factor_scratch_;
  mutable std::vector<double> dfactor_scratch_;
  mutable std::vector<double> prefix_scratch_;
  mutable std::vector<double> suffix_scratch_;

  Metrics metrics_;
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_KDE_H_

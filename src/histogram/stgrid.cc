#include "histogram/stgrid.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "histogram/robustness.h"

namespace sthist {

STGridHistogram::STGridHistogram(const Box& domain, double total_tuples,
                                 const STGridConfig& config)
    : domain_(domain), config_(config) {
  STHIST_CHECK(domain.dim() > 0);
  STHIST_CHECK(config.cells_per_dim >= 2);
  STHIST_CHECK(config.learning_rate > 0.0 && config.learning_rate <= 1.0);

  const size_t k = config.cells_per_dim;
  size_t cells = 1;
  for (size_t d = 0; d < domain.dim(); ++d) {
    STHIST_CHECK_MSG(cells <= (1u << 24) / k, "grid too large: %zu^%zu", k,
                     domain.dim());
    cells *= k;
  }

  boundaries_.resize(domain.dim());
  for (size_t d = 0; d < domain.dim(); ++d) {
    boundaries_[d].resize(k + 1);
    for (size_t i = 0; i <= k; ++i) {
      boundaries_[d][i] =
          domain.lo(d) + domain.Extent(d) * static_cast<double>(i) /
                             static_cast<double>(k);
    }
  }
  frequencies_.assign(cells, total_tuples / static_cast<double>(cells));
}

size_t STGridHistogram::IntervalIndex(size_t d, double x) const {
  const std::vector<double>& bounds = boundaries_[d];
  // First boundary strictly greater than x, minus one.
  auto it = std::upper_bound(bounds.begin(), bounds.end(), x);
  size_t index = it == bounds.begin()
                     ? 0
                     : static_cast<size_t>(it - bounds.begin()) - 1;
  return std::min(index, bounds.size() - 2);
}

size_t STGridHistogram::FlatIndex(const std::vector<size_t>& cell) const {
  size_t index = 0;
  for (size_t d = 0; d < dim(); ++d) {
    index = index * config_.cells_per_dim + cell[d];
  }
  return index;
}

template <typename Fn>
void STGridHistogram::ForEachOverlap(const Box& query, Fn&& fn) const {
  std::vector<size_t> first(dim()), last(dim());
  for (size_t d = 0; d < dim(); ++d) {
    if (query.hi(d) < domain_.lo(d) || query.lo(d) > domain_.hi(d)) return;
    first[d] = IntervalIndex(d, std::max(query.lo(d), domain_.lo(d)));
    last[d] = IntervalIndex(d, std::min(query.hi(d), domain_.hi(d)));
  }

  std::vector<size_t> cell = first;
  while (true) {
    double fraction = 1.0;
    for (size_t d = 0; d < dim(); ++d) {
      double lo = boundaries_[d][cell[d]];
      double hi = boundaries_[d][cell[d] + 1];
      double width = hi - lo;
      double overlap = std::min(hi, query.hi(d)) - std::max(lo, query.lo(d));
      fraction *= width > 0.0 ? std::clamp(overlap / width, 0.0, 1.0) : 0.0;
    }
    fn(FlatIndex(cell), fraction);

    size_t d = dim() - 1;
    while (true) {
      if (cell[d] < last[d]) {
        ++cell[d];
        break;
      }
      cell[d] = first[d];
      if (d == 0) return;
      --d;
    }
  }
}

double STGridHistogram::Estimate(const Box& query) const {
  if (!IsEstimableQuery(domain_, query)) {
    rejected_estimates_.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  double estimate = 0.0;
  ForEachOverlap(query, [&](size_t index, double fraction) {
    estimate += frequencies_[index] * fraction;
  });
  return estimate;
}

double STGridHistogram::EstimateLinear(const Box& query) const {
  if (!IsEstimableQuery(domain_, query)) {
    rejected_estimates_.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  // Visit every cell of the tensor in flat (row-major) order — the same
  // order ForEachOverlap walks its sub-range — computing each cell's volume
  // fraction from scratch. Cells outside the query clamp to an exact 0.0
  // fraction and contribute +0.0, so this sums bitwise-identically to the
  // grid-probed Estimate.
  double estimate = 0.0;
  std::vector<size_t> cell(dim(), 0);
  for (size_t index = 0; index < frequencies_.size(); ++index) {
    double fraction = 1.0;
    for (size_t d = 0; d < dim(); ++d) {
      double lo = boundaries_[d][cell[d]];
      double hi = boundaries_[d][cell[d] + 1];
      double width = hi - lo;
      double overlap = std::min(hi, query.hi(d)) - std::max(lo, query.lo(d));
      fraction *= width > 0.0 ? std::clamp(overlap / width, 0.0, 1.0) : 0.0;
    }
    estimate += frequencies_[index] * fraction;

    for (size_t d = dim(); d-- > 0;) {
      if (++cell[d] < config_.cells_per_dim) break;
      cell[d] = 0;
    }
  }
  return estimate;
}

RobustnessStats STGridHistogram::robustness() const {
  RobustnessStats stats = stats_;
  stats.rejected_queries +=
      rejected_estimates_.load(std::memory_order_relaxed);
  return stats;
}

void STGridHistogram::Refine(const Box& query,
                             const CardinalityOracle& oracle) {
  // Query boxes and oracle counts are untrusted: repair what is repairable,
  // drop what is not, and never abort.
  std::optional<Box> sanitized = SanitizeFeedbackQuery(domain_, query, &stats_);
  if (!sanitized.has_value()) return;
  const Box q = std::move(*sanitized);

  // STGrid's feedback model: only the query's total true cardinality.
  // The sanitizing wrapper clamps non-finite and negative counts to 0.
  SanitizingOracle safe(oracle, &stats_);
  double actual = safe.Count(q);

  // Collect overlaps once; reuse for the weighted update.
  std::vector<std::pair<size_t, double>> overlaps;
  double estimate = 0.0;
  ForEachOverlap(q, [&](size_t index, double fraction) {
    overlaps.push_back({index, fraction});
    estimate += frequencies_[index] * fraction;
  });
  if (overlaps.empty()) return;

  double error = actual - estimate;
  if (estimate > 1e-12) {
    // Distribute the error proportionally to each cell's contribution.
    for (auto& [index, fraction] : overlaps) {
      double weight = frequencies_[index] * fraction / estimate;
      frequencies_[index] = std::max(
          0.0, frequencies_[index] + config_.learning_rate * error * weight);
    }
  } else {
    // Nothing to scale against: spread evenly over the overlapped portions.
    double total_fraction = 0.0;
    for (auto& [index, fraction] : overlaps) total_fraction += fraction;
    if (total_fraction <= 0.0) return;
    for (auto& [index, fraction] : overlaps) {
      frequencies_[index] = std::max(
          0.0, frequencies_[index] + config_.learning_rate * error *
                                         fraction / total_fraction);
    }
  }

  ++queries_seen_;
  if (config_.restructure_interval > 0 &&
      queries_seen_ % config_.restructure_interval == 0) {
    Restructure();
  }
}

double STGridHistogram::TotalFrequency() const {
  double total = 0.0;
  for (double f : frequencies_) total += f;
  return total;
}

void STGridHistogram::Restructure() {
  const size_t k = config_.cells_per_dim;
  size_t moves = std::max<size_t>(
      1, static_cast<size_t>(config_.restructure_fraction *
                             static_cast<double>(k)));

  for (size_t d = 0; d < dim(); ++d) {
    for (size_t move = 0; move < moves; ++move) {
      // Marginal frequency per interval of dimension d.
      std::vector<double> marginal(k, 0.0);
      size_t stride = 1;
      for (size_t d2 = d + 1; d2 < dim(); ++d2) stride *= k;
      for (size_t index = 0; index < frequencies_.size(); ++index) {
        marginal[(index / stride) % k] += frequencies_[index];
      }

      // Split the heaviest interval; merge the lightest adjacent pair not
      // touching it. Skip the move when it would not change anything.
      size_t split =
          static_cast<size_t>(std::max_element(marginal.begin(),
                                               marginal.end()) -
                              marginal.begin());
      double best_pair = -1.0;
      size_t merge = k;  // Invalid.
      for (size_t i = 0; i + 1 < k; ++i) {
        if (i == split || i + 1 == split) continue;
        double pair = marginal[i] + marginal[i + 1];
        if (merge == k || pair < best_pair) {
          best_pair = pair;
          merge = i;
        }
      }
      if (merge == k || best_pair >= marginal[split]) break;

      // New boundary list: drop the boundary between merge and merge+1, add
      // the midpoint of the split interval.
      std::vector<double> old_bounds = boundaries_[d];
      std::vector<double> next;
      next.reserve(k + 1);
      double mid =
          0.5 * (old_bounds[split] + old_bounds[split + 1]);
      for (size_t i = 0; i <= k; ++i) {
        if (i == merge + 1) continue;  // Merged away.
        next.push_back(old_bounds[i]);
        if (i == split) next.push_back(mid);
      }
      STHIST_DCHECK(next.size() == k + 1);
      std::sort(next.begin(), next.end());
      boundaries_[d] = std::move(next);
      RemapDimension(d, old_bounds);
    }
  }
}

void STGridHistogram::RemapDimension(size_t d,
                                     const std::vector<double>& old_bounds) {
  const size_t k = config_.cells_per_dim;
  size_t inner = 1;  // Stride of dimension d.
  for (size_t d2 = d + 1; d2 < dim(); ++d2) inner *= k;
  size_t outer = frequencies_.size() / (inner * k);

  const std::vector<double>& new_bounds = boundaries_[d];
  std::vector<double> next(frequencies_.size(), 0.0);

  // Mass moves proportionally to interval overlap between old and new
  // partitions of dimension d; other dimensions are untouched.
  for (size_t old_i = 0; old_i < k; ++old_i) {
    double old_lo = old_bounds[old_i];
    double old_hi = old_bounds[old_i + 1];
    double old_len = old_hi - old_lo;
    if (old_len <= 0.0) continue;
    for (size_t new_i = 0; new_i < k; ++new_i) {
      double overlap = std::min(old_hi, new_bounds[new_i + 1]) -
                       std::max(old_lo, new_bounds[new_i]);
      if (overlap <= 0.0) continue;
      double share = overlap / old_len;
      for (size_t o = 0; o < outer; ++o) {
        for (size_t i = 0; i < inner; ++i) {
          next[(o * k + new_i) * inner + i] +=
              share * frequencies_[(o * k + old_i) * inner + i];
        }
      }
    }
  }
  frequencies_ = std::move(next);
}

}  // namespace sthist

#ifndef STHIST_HISTOGRAM_SAMPLING_H_
#define STHIST_HISTOGRAM_SAMPLING_H_

#include <cstdint>

#include "data/dataset.h"
#include "histogram/histogram.h"
#include "index/kdtree.h"

#include <memory>

namespace sthist {

/// Uniform-sampling selectivity estimator (the synopses-survey baseline):
/// keep a uniform random sample of the relation; estimate a range count as
/// the sample count scaled by n/|sample|.
///
/// Unbiased for every query, but the variance on selective queries is what
/// histograms exist to beat — another axis of comparison in
/// `bench_baselines`.
class SamplingEstimator : public Histogram {
 public:
  /// Draws a sample of `sample_size` tuples (without replacement) from
  /// `data` via the shared core Reservoir (Algorithm R over the row stream,
  /// DESIGN.md §18) and indexes it for counting. When `sample_size` covers
  /// the whole relation the sample is the relation itself, row order
  /// preserved.
  SamplingEstimator(const Dataset& data, size_t sample_size, uint64_t seed);

  double Estimate(const Box& query) const override;

  /// Static; ignores feedback.
  void Refine(const Box& query, const CardinalityOracle& oracle) override;

  /// Each sampled tuple is one "bucket" of the synopsis.
  size_t bucket_count() const override { return sample_.size(); }

 private:
  double scale_;  // n / sample_size.
  Dataset sample_;
  std::unique_ptr<KdTree> index_;
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_SAMPLING_H_

#include "histogram/registry.h"

#include <cmath>
#include <string>
#include <utility>

#include "core/rng.h"
#include "histogram/avi.h"
#include "histogram/equiwidth.h"
#include "histogram/sampling.h"
#include "histogram/trivial.h"

namespace sthist {
namespace {

// Seed roles for the sampled families (DeriveSeed keeps one experiment seed
// from aliasing streams across estimators and with the workload streams).
constexpr uint64_t kSamplingSeedRole = 0x73616D70;  // "samp"
constexpr uint64_t kKdeSeedRole = 0x6B646500;       // "kde"

Status RequireDomain(const HistogramConfig& config) {
  if (config.domain.dim() == 0) {
    return Status::InvalidArgument("estimator config: domain is required");
  }
  return Status::Ok();
}

Status RequireData(std::string_view name, const HistogramConfig& config) {
  STHIST_RETURN_IF_ERROR(RequireDomain(config));
  if (config.data == nullptr) {
    return StatusF(StatusCode::kInvalidArgument,
                   "estimator '%.*s' needs a dataset (config.data is null)",
                   static_cast<int>(name.size()), name.data());
  }
  return Status::Ok();
}

/// Derived per-dimension resolution: round(buckets^(1/dim)), floored at 2
/// so a grid family always has at least one split per dimension.
size_t DerivedCellsPerDim(const HistogramConfig& config) {
  if (config.cells_per_dim > 0) return config.cells_per_dim;
  const double dim = static_cast<double>(config.domain.dim());
  const double cells =
      std::round(std::pow(static_cast<double>(config.buckets), 1.0 / dim));
  return cells < 2.0 ? 2 : static_cast<size_t>(cells);
}

size_t DerivedBucketsPerDim(const HistogramConfig& config) {
  if (config.buckets_per_dim > 0) return config.buckets_per_dim;
  const size_t dim = config.domain.dim();
  const size_t per_dim = config.buckets / (dim == 0 ? 1 : dim);
  return per_dim == 0 ? 1 : per_dim;
}

}  // namespace

const std::vector<std::string>& RegisteredNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "trivial", "equiwidth", "avi",    "sampling", "mhist",
      "stgrid",  "isomer",    "stholes", "kde",
  };
  return *names;
}

StatusOr<std::unique_ptr<Histogram>> MakeHistogram(
    std::string_view name, const HistogramConfig& config) {
  if (name == "trivial") {
    STHIST_RETURN_IF_ERROR(RequireDomain(config));
    return std::unique_ptr<Histogram>(
        new TrivialHistogram(config.domain, config.total_tuples));
  }
  if (name == "equiwidth") {
    STHIST_RETURN_IF_ERROR(RequireData(name, config));
    return std::unique_ptr<Histogram>(new EquiWidthHistogram(
        *config.data, config.domain, DerivedCellsPerDim(config)));
  }
  if (name == "avi") {
    STHIST_RETURN_IF_ERROR(RequireData(name, config));
    return std::unique_ptr<Histogram>(new AviHistogram(
        *config.data, config.domain, DerivedBucketsPerDim(config)));
  }
  if (name == "sampling") {
    STHIST_RETURN_IF_ERROR(RequireData(name, config));
    if (config.data->size() == 0) {
      return Status::InvalidArgument(
          "estimator 'sampling' needs a non-empty dataset");
    }
    if (config.buckets == 0) {
      return Status::InvalidArgument(
          "estimator 'sampling' needs a positive bucket (sample) budget");
    }
    return std::unique_ptr<Histogram>(new SamplingEstimator(
        *config.data, config.buckets,
        DeriveSeed(config.seed, kSamplingSeedRole)));
  }
  if (name == "mhist") {
    STHIST_RETURN_IF_ERROR(RequireData(name, config));
    MHistConfig mhist = config.mhist;
    mhist.max_buckets = config.buckets;
    return std::unique_ptr<Histogram>(
        new MHistHistogram(*config.data, config.domain, mhist));
  }
  if (name == "stgrid") {
    STHIST_RETURN_IF_ERROR(RequireDomain(config));
    STGridConfig stgrid = config.stgrid;
    stgrid.cells_per_dim = DerivedCellsPerDim(config);
    return std::unique_ptr<Histogram>(
        new STGridHistogram(config.domain, config.total_tuples, stgrid));
  }
  if (name == "isomer") {
    STHIST_RETURN_IF_ERROR(RequireDomain(config));
    IsomerConfig isomer = config.isomer;
    isomer.max_buckets = config.buckets;
    return std::unique_ptr<Histogram>(
        new IsomerHistogram(config.domain, config.total_tuples, isomer));
  }
  if (name == "stholes") {
    STHIST_RETURN_IF_ERROR(RequireDomain(config));
    STHolesConfig stholes = config.stholes;
    stholes.max_buckets = config.buckets;
    if (config.metrics != nullptr) stholes.metrics = config.metrics;
    return std::unique_ptr<Histogram>(
        new STHoles(config.domain, config.total_tuples, stholes));
  }
  if (name == "kde") {
    STHIST_RETURN_IF_ERROR(RequireDomain(config));
    KdeConfig kde = config.kde;
    kde.sample_capacity = config.buckets;
    kde.seed = DeriveSeed(config.seed, kKdeSeedRole);
    if (config.metrics != nullptr) kde.metrics = config.metrics;
    STHIST_RETURN_IF_ERROR(Validate(kde));
    return std::unique_ptr<Histogram>(
        new KdeHistogram(config.domain, config.total_tuples, kde));
  }

  std::string known;
  for (const std::string& n : RegisteredNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return StatusF(StatusCode::kNotFound,
                 "unknown estimator '%.*s' (registered: %s)",
                 static_cast<int>(name.size()), name.data(), known.c_str());
}

std::string_view EstimatorNameForBlob(std::string_view blob) {
  if (blob.size() < 4) return {};
  const std::string_view magic = blob.substr(0, 4);
  if (magic == "STHB") return "stholes";
  if (magic == "STHK") return "kde";
  return {};
}

StatusOr<std::unique_ptr<Histogram>> RestoreHistogram(
    std::string_view blob, const HistogramConfig& config) {
  const std::string_view name = EstimatorNameForBlob(blob);
  if (name == "stholes") {
    STHolesConfig stholes = config.stholes;
    stholes.max_buckets = config.buckets;
    if (config.metrics != nullptr) stholes.metrics = config.metrics;
    auto restored = STHoles::DeserializeBinary(blob, stholes);
    if (!restored.ok()) return restored.status();
    return std::unique_ptr<Histogram>(std::move(restored.value()));
  }
  if (name == "kde") {
    KdeConfig kde = config.kde;
    kde.sample_capacity = config.buckets == 0 ? kde.sample_capacity
                                              : config.buckets;
    kde.seed = DeriveSeed(config.seed, kKdeSeedRole);
    if (config.metrics != nullptr) kde.metrics = config.metrics;
    auto restored = KdeHistogram::DeserializeBinary(blob, kde);
    if (!restored.ok()) return restored.status();
    return std::unique_ptr<Histogram>(std::move(restored.value()));
  }
  return Status::InvalidArgument(
      "unrecognized histogram snapshot magic (not a serialized estimator)");
}

}  // namespace sthist

#include "histogram/kde.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/binfmt.h"
#include "core/check.h"
#include "obs/trace.h"

namespace sthist {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;
constexpr double kInvSqrtPi = 0.56418958354775628695;

/// Kernel mass of a standard-normal kernel centered at `x` inside [lo, hi]:
/// Φ((hi−x)/h) − Φ((lo−x)/h) with Φ(z) = (1 + erf(z/√2))/2, folded so the
/// √2 lives in inv_h = 1/(h·√2). Shared by the SoA and row-major estimation
/// paths — one function, one floating-point expression, so the two paths
/// are bitwise identical (§10).
inline double GaussBoxFactor(double x, double lo, double hi, double inv_h) {
  const double a = (lo - x) * inv_h;
  const double b = (hi - x) * inv_h;
  return 0.5 * (std::erf(b) - std::erf(a));
}

/// ∂F/∂log h of the factor above: (a·e^{−a²} − b·e^{−b²})/√π with the same
/// scaled a, b. Only its sign feeds the adaptation step, but the analytic
/// form keeps the direction exact even for far-off kernels.
inline double GaussBoxFactorGrad(double x, double lo, double hi,
                                 double inv_h) {
  const double a = (lo - x) * inv_h;
  const double b = (hi - x) * inv_h;
  return (a * std::exp(-a * a) - b * std::exp(-b * b)) * kInvSqrtPi;
}

bool ReadU64Checked(const char** p, const char* end, uint64_t* v) {
  if (end - *p < 8) return false;
  *v = binfmt::ReadU64(*p);
  *p += 8;
  return true;
}

bool ReadF64Checked(const char** p, const char* end, double* v) {
  if (end - *p < 8) return false;
  *v = binfmt::ReadF64(*p);
  *p += 8;
  return true;
}

std::string EngineText(const std::mt19937_64& engine) {
  std::ostringstream os;
  os << engine;
  return os.str();
}

bool RestoreEngine(const std::string& text, std::mt19937_64* engine) {
  std::istringstream is(text);
  is >> *engine;
  return !is.fail();
}

}  // namespace

Status Validate(const KdeConfig& config) {
  if (config.sample_capacity == 0) {
    return Status::InvalidArgument("kde sample_capacity must be positive");
  }
  if (config.max_points_per_feedback == 0) {
    return Status::InvalidArgument(
        "kde max_points_per_feedback must be positive");
  }
  if (!std::isfinite(config.tuples_per_point) ||
      config.tuples_per_point <= 0.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "kde tuples_per_point must be positive, got %g",
                   config.tuples_per_point);
  }
  if (!std::isfinite(config.learn_rate) || config.learn_rate < 0.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "kde learn_rate must be non-negative, got %g",
                   config.learn_rate);
  }
  if (!std::isfinite(config.max_log_step) || config.max_log_step <= 0.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "kde max_log_step must be positive, got %g",
                   config.max_log_step);
  }
  if (!std::isfinite(config.min_bandwidth_factor) ||
      config.min_bandwidth_factor <= 0.0 ||
      !std::isfinite(config.max_bandwidth_factor) ||
      config.max_bandwidth_factor < config.min_bandwidth_factor) {
    return StatusF(StatusCode::kInvalidArgument,
                   "kde bandwidth factors must satisfy 0 < min <= max, "
                   "got [%g, %g]",
                   config.min_bandwidth_factor, config.max_bandwidth_factor);
  }
  return Status::Ok();
}

KdeHistogram::KdeHistogram(const Box& domain, double total_tuples,
                           const KdeConfig& config)
    : domain_(domain),
      total_tuples_(total_tuples),
      dim_(domain.dim()),
      config_(config),
      sample_(config.sample_capacity, DeriveSeed(config.seed, /*role=*/2)),
      synth_rng_(DeriveSeed(config.seed, /*role=*/1)),
      log_factor_(domain.dim(), 0.0),
      scott_(domain.dim(), 0.0),
      bandwidth_(domain.dim(), 0.0) {
  STHIST_CHECK(dim_ > 0);
  STHIST_CHECK(std::isfinite(total_tuples) && total_tuples >= 0.0);
  STHIST_CHECK(Validate(config).ok());

  obs::MetricsRegistry* reg =
      config.metrics != nullptr ? config.metrics : obs::GlobalMetrics();
  metrics_.estimates = reg->counter("histogram.kde.estimates");
  metrics_.refines = reg->counter("histogram.kde.refines");
  metrics_.adaptations = reg->counter("histogram.kde.adaptations");
  metrics_.sample_points = reg->gauge("histogram.kde.sample_points");
  metrics_.bandwidth_geomean = reg->gauge("histogram.kde.bandwidth_geomean");
  metrics_.refine_seconds = reg->latency("histogram.kde.refine_seconds");

  RecomputeBandwidths();
}

KdeHistogram::KdeHistogram(const KdeHistogram& other)
    : domain_(other.domain_),
      total_tuples_(other.total_tuples_),
      dim_(other.dim_),
      config_(other.config_),
      sample_(other.sample_),
      synth_rng_(other.synth_rng_),
      log_factor_(other.log_factor_),
      scott_(other.scott_),
      bandwidth_(other.bandwidth_),
      coeff_(other.coeff_),
      feedbacks_(other.feedbacks_),
      refine_robustness_(other.refine_robustness_),
      metrics_(other.metrics_) {
  rejected_estimates_.store(
      other.rejected_estimates_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

std::unique_ptr<Histogram> KdeHistogram::Clone() const {
  return std::unique_ptr<Histogram>(new KdeHistogram(*this));
}

bool KdeHistogram::UsableQuery(const Box& query) const {
  if (query.dim() != dim_) return false;
  for (size_t d = 0; d < dim_; ++d) {
    if (!std::isfinite(query.lo(d)) || !std::isfinite(query.hi(d))) {
      return false;
    }
  }
  return true;
}

double KdeHistogram::TrivialEstimate(const Box& query) const {
  const double domain_volume = domain_.Volume();
  if (!(domain_volume > 0.0)) return 0.0;
  return total_tuples_ * (domain_.IntersectionVolume(query) / domain_volume);
}

void KdeHistogram::EnsurePlanes() const {
  if (planes_ready_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(planes_mutex_);
  if (planes_ready_.load(std::memory_order_relaxed)) return;
  const size_t m = sample_.size();
  planes_.resize(m * dim_);
  const std::vector<Point>& rows = sample_.items();
  for (size_t d = 0; d < dim_; ++d) {
    double* plane = planes_.data() + d * m;
    for (size_t i = 0; i < m; ++i) plane[i] = rows[i][d];
  }
  planes_ready_.store(true, std::memory_order_release);
}

double KdeHistogram::Estimate(const Box& query) const {
  metrics_.estimates.Inc();
  if (!UsableQuery(query)) {
    rejected_estimates_.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  const size_t m = sample_.size();
  if (m == 0) return TrivialEstimate(query);
  EnsurePlanes();

  // Dim-major plane sweep over the SoA layout; the per-point factor chain
  // multiplies in ascending dimension order, the truncation weight last,
  // exactly as the row-major reference path does, so the two are bitwise
  // identical. Thread-local scratch keeps the probe path allocation-free in
  // steady state (§15).
  thread_local std::vector<double> product;
  if (product.size() < m) product.resize(m);
  for (size_t d = 0; d < dim_; ++d) {
    const double inv_h = kInvSqrt2 / bandwidth_[d];
    const double lo = query.lo(d);
    const double hi = query.hi(d);
    const double* plane = planes_.data() + d * m;
    if (d == 0) {
      for (size_t i = 0; i < m; ++i) {
        product[i] = GaussBoxFactor(plane[i], lo, hi, inv_h);
      }
    } else {
      for (size_t i = 0; i < m; ++i) {
        product[i] *= GaussBoxFactor(plane[i], lo, hi, inv_h);
      }
    }
  }
  double sum = 0.0;
  for (size_t i = 0; i < m; ++i) sum += product[i] * coeff_[i];
  return sum < 0.0 ? 0.0 : sum;
}

double KdeHistogram::EstimateLinear(const Box& query) const {
  if (!UsableQuery(query)) {
    rejected_estimates_.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  const size_t m = sample_.size();
  if (m == 0) return TrivialEstimate(query);

  double sum = 0.0;
  const std::vector<Point>& rows = sample_.items();
  for (size_t i = 0; i < m; ++i) {
    const Point& x = rows[i];
    double p = 1.0;
    for (size_t d = 0; d < dim_; ++d) {
      const double inv_h = kInvSqrt2 / bandwidth_[d];
      p *= GaussBoxFactor(x[d], query.lo(d), query.hi(d), inv_h);
    }
    sum += p * coeff_[i];
  }
  return sum < 0.0 ? 0.0 : sum;
}

double KdeHistogram::EstimateAndGrad(const Box& query,
                                     std::vector<double>* grad) const {
  const size_t m = sample_.size();
  if (m == 0) return TrivialEstimate(query);

  factor_scratch_.resize(dim_);
  dfactor_scratch_.resize(dim_);
  prefix_scratch_.resize(dim_ + 1);
  suffix_scratch_.resize(dim_ + 1);

  double sum = 0.0;
  const std::vector<Point>& rows = sample_.items();
  for (size_t i = 0; i < m; ++i) {
    const Point& x = rows[i];
    for (size_t d = 0; d < dim_; ++d) {
      const double inv_h = kInvSqrt2 / bandwidth_[d];
      factor_scratch_[d] =
          GaussBoxFactor(x[d], query.lo(d), query.hi(d), inv_h);
      dfactor_scratch_[d] =
          GaussBoxFactorGrad(x[d], query.lo(d), query.hi(d), inv_h);
    }
    // Leave-one-out products via prefix/suffix chains — no division, so a
    // zero factor in one dimension cannot poison the others' gradients.
    prefix_scratch_[0] = 1.0;
    for (size_t d = 0; d < dim_; ++d) {
      prefix_scratch_[d + 1] = prefix_scratch_[d] * factor_scratch_[d];
    }
    suffix_scratch_[dim_] = 1.0;
    for (size_t d = dim_; d > 0; --d) {
      suffix_scratch_[d - 1] = suffix_scratch_[d] * factor_scratch_[d - 1];
    }
    sum += prefix_scratch_[dim_] * coeff_[i];
    // The coefficient (mass × truncation weight × normalization) is held
    // constant for the gradient — its own bandwidth dependence is dropped:
    // the sign-based step only needs a descent direction, and freezing c_i
    // keeps the chains division-free.
    for (size_t d = 0; d < dim_; ++d) {
      (*grad)[d] += prefix_scratch_[d] * suffix_scratch_[d + 1] *
                    dfactor_scratch_[d] * coeff_[i];
    }
  }
  return sum;
}

void KdeHistogram::RecomputeBandwidths() {
  const size_t m = sample_.size();
  const double m_power =
      m > 0 ? std::pow(static_cast<double>(m),
                       -1.0 / (4.0 + static_cast<double>(dim_)))
            : 1.0;
  const std::vector<Point>& rows = sample_.items();
  double log_sum = 0.0;
  for (size_t d = 0; d < dim_; ++d) {
    double extent = domain_.Extent(d);
    if (!(extent > 0.0) || !std::isfinite(extent)) extent = 1.0;

    double sigma = 0.0;
    if (m > 1) {
      double mean = 0.0;
      for (const Point& x : rows) mean += x[d];
      mean /= static_cast<double>(m);
      double var = 0.0;
      for (const Point& x : rows) {
        const double delta = x[d] - mean;
        var += delta * delta;
      }
      sigma = std::sqrt(var / static_cast<double>(m));
    }
    // Collapsed or near-empty samples fall back to a domain-scaled spread
    // so the kernel never degenerates to a delta.
    if (!(sigma > 0.0) || !std::isfinite(sigma)) sigma = 0.1 * extent;

    double scott = sigma * m_power;
    const double floor = 1e-9 * extent;
    if (!(scott > floor)) scott = floor;
    scott_[d] = scott;
    bandwidth_[d] = scott * std::exp(log_factor_[d]);
    log_sum += std::log(bandwidth_[d]);
  }
  metrics_.bandwidth_geomean.Set(
      std::exp(log_sum / static_cast<double>(dim_)));
  ComputeCoefficients();
}

void KdeHistogram::ComputeCoefficients() {
  const size_t m = sample_.size();
  const std::vector<Point>& rows = sample_.items();
  coeff_.resize(m);
  double mass_sum = 0.0;
  for (const Point& x : rows) mass_sum += x[dim_];
  const double scale = mass_sum > 0.0 ? total_tuples_ / mass_sum : 0.0;
  for (size_t i = 0; i < m; ++i) {
    // Truncation weight: the same factor function, inv_h expression, and
    // ascending-dimension multiplication order as the estimation paths, so
    // the full-domain query's product cancels it to 1 within rounding.
    double p = 1.0;
    for (size_t d = 0; d < dim_; ++d) {
      const double inv_h = kInvSqrt2 / bandwidth_[d];
      p *= GaussBoxFactor(rows[i][d], domain_.lo(d), domain_.hi(d), inv_h);
    }
    // Sample points live inside the domain, so p can only underflow to 0
    // for degenerate bandwidths; fall back to the untruncated kernel rather
    // than divide by zero.
    const double mass = rows[i][dim_];
    coeff_[i] = p > 0.0 ? (mass / p) * scale : mass * scale;
  }
}

void KdeHistogram::Refine(const Box& query, const CardinalityOracle& oracle) {
  metrics_.refines.Inc();
  obs::ScopedTimer timer(metrics_.refine_seconds);

  if (query.dim() != dim_) {
    ++refine_robustness_.rejected_queries;
    return;
  }
  Box box = query;
  bool repaired = false;
  for (size_t d = 0; d < dim_; ++d) {
    if (!std::isfinite(box.lo(d)) || !std::isfinite(box.hi(d))) {
      ++refine_robustness_.rejected_queries;
      return;
    }
    if (box.lo(d) > box.hi(d)) {
      const double lo = box.hi(d);
      const double hi = box.lo(d);
      box.set_lo(d, lo);
      box.set_hi(d, hi);
      repaired = true;
    }
    const double lo = std::max(box.lo(d), domain_.lo(d));
    const double hi = std::min(box.hi(d), domain_.hi(d));
    if (lo > hi) {
      ++refine_robustness_.rejected_queries;
      return;
    }
    if (lo != box.lo(d) || hi != box.hi(d)) repaired = true;
    box.set_lo(d, lo);
    box.set_hi(d, hi);
  }
  if (repaired) ++refine_robustness_.sanitized_queries;

  double actual = oracle.Count(box);
  if (!std::isfinite(actual) || actual < 0.0) {
    actual = 0.0;
    ++refine_robustness_.clamped_feedback;
  }

  // Bandwidth adaptation against the error this feedback exposed, computed
  // BEFORE the sample absorbs the feedback (the estimate the system would
  // have served). Sign-of-gradient with an error-proportional step: robust
  // to the wild magnitude swings of the raw gradient, deterministic, and
  // multiplicative so bandwidths stay positive.
  const size_t m_before = sample_.size();
  if (config_.adapt_bandwidth && config_.learn_rate > 0.0 && m_before > 0) {
    std::vector<double> grad(dim_, 0.0);
    const double est = EstimateAndGrad(box, &grad);
    const double rel = (est - actual) / (1.0 + actual);
    if (rel != 0.0 && std::isfinite(rel)) {
      const double step =
          std::min(config_.learn_rate * std::min(std::abs(rel), 1.0),
                   config_.max_log_step);
      const double lo_log = std::log(config_.min_bandwidth_factor);
      const double hi_log = std::log(config_.max_bandwidth_factor);
      bool moved = false;
      for (size_t d = 0; d < dim_; ++d) {
        const double direction = rel * grad[d];
        if (direction == 0.0 || !std::isfinite(direction)) continue;
        const double delta = direction > 0.0 ? -step : step;
        const double next =
            std::clamp(log_factor_[d] + delta, lo_log, hi_log);
        if (next != log_factor_[d]) {
          log_factor_[d] = next;
          moved = true;
        }
      }
      if (moved) metrics_.adaptations.Inc();
    }
  }

  // Fold mass-weighted synthetic points into the shared reservoir: the
  // count-weighted point budget follows the serving layer's
  // FeedbackReservoir rule, and the observed count is split evenly across
  // the points so each carries the tuple mass it represents.
  ++feedbacks_;
  if (actual > 0.0) {
    const size_t points = std::clamp<size_t>(
        static_cast<size_t>(std::ceil(actual / config_.tuples_per_point)), 1,
        config_.max_points_per_feedback);
    Point synth(dim_ + 1);
    synth[dim_] = actual / static_cast<double>(points);
    for (size_t k = 0; k < points; ++k) {
      for (size_t d = 0; d < dim_; ++d) {
        synth[d] = synth_rng_.Uniform(box.lo(d), box.hi(d));
      }
      sample_.Offer(synth);
    }
  }
  if (config_.age_interval > 0 && feedbacks_ % config_.age_interval == 0) {
    sample_.AgeHalve();
  }

  RecomputeBandwidths();
  planes_ready_.store(false, std::memory_order_release);
  metrics_.sample_points.Set(static_cast<double>(sample_.size()));
}

RobustnessStats KdeHistogram::robustness() const {
  RobustnessStats stats = refine_robustness_;
  stats.rejected_queries +=
      rejected_estimates_.load(std::memory_order_relaxed);
  return stats;
}

std::string KdeHistogram::SerializeBinary() const {
  std::string payload;
  binfmt::AppendU64(&payload, dim_);
  binfmt::AppendF64(&payload, total_tuples_);
  for (size_t d = 0; d < dim_; ++d) binfmt::AppendF64(&payload, domain_.lo(d));
  for (size_t d = 0; d < dim_; ++d) binfmt::AppendF64(&payload, domain_.hi(d));
  for (size_t d = 0; d < dim_; ++d) {
    binfmt::AppendF64(&payload, log_factor_[d]);
  }
  for (size_t d = 0; d < dim_; ++d) binfmt::AppendF64(&payload, scott_[d]);
  for (size_t d = 0; d < dim_; ++d) binfmt::AppendF64(&payload, bandwidth_[d]);

  // Sample rows are dim_+1 wide: coordinates plus the point's tuple mass.
  binfmt::AppendU64(&payload, sample_.size());
  for (const Point& x : sample_.items()) {
    for (size_t d = 0; d <= dim_; ++d) binfmt::AppendF64(&payload, x[d]);
  }
  binfmt::AppendU64(&payload, sample_.stream_length());
  binfmt::AppendU64(&payload, feedbacks_);

  binfmt::AppendU64(&payload, refine_robustness_.rejected_queries);
  binfmt::AppendU64(&payload, refine_robustness_.sanitized_queries);
  binfmt::AppendU64(&payload, refine_robustness_.clamped_feedback);
  binfmt::AppendU64(&payload, refine_robustness_.repaired_buckets);
  binfmt::AppendU64(&payload,
                    rejected_estimates_.load(std::memory_order_relaxed));

  const std::string synth_state = EngineText(synth_rng_.engine());
  const std::string slot_state = EngineText(sample_.rng().engine());
  binfmt::AppendU64(&payload, synth_state.size());
  payload.append(synth_state);
  binfmt::AppendU64(&payload, slot_state.size());
  payload.append(slot_state);

  return binfmt::Frame("STHK", kBinaryFormatVersion, payload);
}

StatusOr<std::unique_ptr<KdeHistogram>> KdeHistogram::DeserializeBinary(
    std::string_view bytes, const KdeConfig& config) {
  STHIST_RETURN_IF_ERROR(Validate(config));
  auto payload_or = binfmt::Unframe("STHK", kBinaryFormatVersion, bytes);
  if (!payload_or.ok()) return payload_or.status();
  const std::string_view payload = payload_or.value();
  const char* p = payload.data();
  const char* end = payload.data() + payload.size();

  const auto truncated = [] {
    return Status::InvalidArgument("kde snapshot: truncated payload");
  };

  uint64_t dim_u64 = 0;
  if (!ReadU64Checked(&p, end, &dim_u64)) return truncated();
  if (dim_u64 == 0 || dim_u64 > 1024) {
    return StatusF(StatusCode::kInvalidArgument,
                   "kde snapshot: implausible dimension %llu",
                   static_cast<unsigned long long>(dim_u64));
  }
  const size_t dim = static_cast<size_t>(dim_u64);

  double total = 0.0;
  if (!ReadF64Checked(&p, end, &total)) return truncated();
  if (!std::isfinite(total) || total < 0.0) {
    return Status::InvalidArgument("kde snapshot: bad total_tuples");
  }

  std::vector<double> lo(dim), hi(dim);
  for (size_t d = 0; d < dim; ++d) {
    if (!ReadF64Checked(&p, end, &lo[d])) return truncated();
  }
  for (size_t d = 0; d < dim; ++d) {
    if (!ReadF64Checked(&p, end, &hi[d])) return truncated();
  }
  for (size_t d = 0; d < dim; ++d) {
    if (!std::isfinite(lo[d]) || !std::isfinite(hi[d]) || lo[d] > hi[d]) {
      return Status::InvalidArgument("kde snapshot: bad domain bounds");
    }
  }

  std::vector<double> log_factor(dim), scott(dim), bandwidth(dim);
  for (size_t d = 0; d < dim; ++d) {
    if (!ReadF64Checked(&p, end, &log_factor[d])) return truncated();
  }
  for (size_t d = 0; d < dim; ++d) {
    if (!ReadF64Checked(&p, end, &scott[d])) return truncated();
  }
  for (size_t d = 0; d < dim; ++d) {
    if (!ReadF64Checked(&p, end, &bandwidth[d])) return truncated();
  }
  for (size_t d = 0; d < dim; ++d) {
    if (!std::isfinite(log_factor[d]) || !std::isfinite(scott[d]) ||
        scott[d] <= 0.0 || !std::isfinite(bandwidth[d]) ||
        bandwidth[d] <= 0.0) {
      return Status::InvalidArgument("kde snapshot: bad bandwidth state");
    }
  }

  uint64_t m_u64 = 0;
  if (!ReadU64Checked(&p, end, &m_u64)) return truncated();
  const uint64_t remaining = static_cast<uint64_t>(end - p);
  if (m_u64 > remaining / (8 * (dim + 1))) return truncated();
  const size_t m = static_cast<size_t>(m_u64);

  // Rows are dim+1 wide: coordinates followed by the point's tuple mass.
  std::vector<Point> rows(m, Point(dim + 1));
  for (size_t i = 0; i < m; ++i) {
    for (size_t d = 0; d <= dim; ++d) {
      if (!ReadF64Checked(&p, end, &rows[i][d])) return truncated();
      if (!std::isfinite(rows[i][d])) {
        return Status::InvalidArgument("kde snapshot: non-finite sample");
      }
    }
    if (rows[i][dim] < 0.0) {
      return Status::InvalidArgument("kde snapshot: negative sample mass");
    }
  }

  uint64_t stream_length = 0;
  uint64_t feedbacks = 0;
  if (!ReadU64Checked(&p, end, &stream_length)) return truncated();
  if (!ReadU64Checked(&p, end, &feedbacks)) return truncated();

  uint64_t robust[5] = {0, 0, 0, 0, 0};
  for (uint64_t& r : robust) {
    if (!ReadU64Checked(&p, end, &r)) return truncated();
  }

  std::string engine_texts[2];
  for (std::string& text : engine_texts) {
    uint64_t len = 0;
    if (!ReadU64Checked(&p, end, &len)) return truncated();
    if (len > static_cast<uint64_t>(end - p)) return truncated();
    text.assign(p, static_cast<size_t>(len));
    p += len;
  }
  if (p != end) {
    return Status::InvalidArgument("kde snapshot: trailing bytes");
  }

  KdeConfig restored_config = config;
  restored_config.sample_capacity = std::max(config.sample_capacity, m);
  auto hist = std::unique_ptr<KdeHistogram>(
      new KdeHistogram(Box(std::move(lo), std::move(hi)), total,
                       restored_config));
  hist->log_factor_ = std::move(log_factor);
  hist->scott_ = std::move(scott);
  hist->bandwidth_ = std::move(bandwidth);
  hist->sample_.Restore(std::move(rows), stream_length);
  // coeff_ is derived state: rebuilt from the restored sample + bandwidths
  // (bitwise-reproducible — same inputs, same expression).
  hist->ComputeCoefficients();
  hist->feedbacks_ = static_cast<size_t>(feedbacks);
  hist->refine_robustness_.rejected_queries = static_cast<size_t>(robust[0]);
  hist->refine_robustness_.sanitized_queries = static_cast<size_t>(robust[1]);
  hist->refine_robustness_.clamped_feedback = static_cast<size_t>(robust[2]);
  hist->refine_robustness_.repaired_buckets = static_cast<size_t>(robust[3]);
  hist->rejected_estimates_.store(robust[4], std::memory_order_relaxed);
  if (!RestoreEngine(engine_texts[0], &hist->synth_rng_.engine()) ||
      !RestoreEngine(engine_texts[1], &hist->sample_.rng().engine())) {
    return Status::InvalidArgument("kde snapshot: bad RNG engine state");
  }
  hist->metrics_.sample_points.Set(static_cast<double>(hist->sample_.size()));
  return hist;
}

}  // namespace sthist

#ifndef STHIST_HISTOGRAM_CENSUS_H_
#define STHIST_HISTOGRAM_CENSUS_H_

#include <string>
#include <vector>

#include "histogram/stholes.h"

namespace sthist {

/// Summary of the subspace structure of an STHoles bucket tree, used for the
/// paper's §5.3 dimensionality analysis ("the uninitialized histogram has not
/// created a single subspace bucket").
struct CensusResult {
  /// Buckets inspected, excluding the root.
  size_t total_buckets = 0;
  /// Buckets that span (within tolerance) the full domain extent in at least
  /// one dimension — i.e., buckets that effectively live in a projection.
  size_t subspace_buckets = 0;
  /// The largest number of spanned ("unused") dimensions over all buckets.
  size_t max_unused_dims = 0;
  /// Per-bucket count of spanned dimensions, for distribution analysis.
  std::vector<size_t> unused_dims_per_bucket;
};

/// Scans the bucket tree of `hist` and classifies buckets as subspace
/// buckets. A dimension counts as spanned when the bucket covers at least
/// (1 - tolerance) of the domain extent in it. The root is excluded.
CensusResult CensusSubspaceBuckets(const STHoles& hist,
                                   double tolerance = 1e-9);

/// Renders the bucket tree as an indented text listing (one bucket per line:
/// depth, box, frequency), for debugging and the order-sensitivity example.
std::string FormatBucketTree(const STHoles& hist);

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_CENSUS_H_

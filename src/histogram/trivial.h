#ifndef STHIST_HISTOGRAM_TRIVIAL_H_
#define STHIST_HISTOGRAM_TRIVIAL_H_

#include "histogram/histogram.h"

namespace sthist {

/// The trivial one-bucket histogram H0 used to normalize error rates
/// (paper eq. 10): it stores only the total tuple count and assumes a
/// uniform distribution over the entire domain.
class TrivialHistogram : public Histogram {
 public:
  /// `domain` is the attribute-value space D; `total_tuples` the relation
  /// cardinality.
  TrivialHistogram(const Box& domain, double total_tuples);

  double Estimate(const Box& query) const override;

  /// H0 never refines.
  void Refine(const Box& query, const CardinalityOracle& oracle) override;

  size_t bucket_count() const override { return 1; }

 private:
  Box domain_;
  double total_tuples_;
  double domain_volume_;
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_TRIVIAL_H_

#ifndef STHIST_HISTOGRAM_STGRID_H_
#define STHIST_HISTOGRAM_STGRID_H_

#include <atomic>
#include <vector>

#include "histogram/histogram.h"

namespace sthist {

/// STGrid parameters.
struct STGridConfig {
  /// Initial (and maintained) number of intervals per dimension. The bucket
  /// count is cells_per_dim^d.
  size_t cells_per_dim = 8;

  /// Delta-rule damping factor for frequency refinement (the paper's alpha).
  double learning_rate = 0.5;

  /// Queries between grid restructurings (0 disables restructuring).
  size_t restructure_interval = 200;

  /// Fraction of intervals per dimension split (and merged) at each
  /// restructuring.
  double restructure_fraction = 0.15;
};

/// Grid-based self-tuning histogram in the spirit of STGrid
/// (Aboulnaga & Chaudhuri, SIGMOD'99): the classic precursor to STHoles and
/// the weakest-feedback self-tuning baseline.
///
/// The data space is partitioned into a (non-uniform) grid of per-dimension
/// intervals. Unlike STHoles, refinement sees only the query's *total* true
/// cardinality: the estimation error is distributed over the overlapping
/// cells with a damped delta rule, weighted by each cell's current share of
/// the estimate. Periodic restructuring splits high-frequency intervals and
/// merges adjacent low-frequency ones, holding the budget constant.
///
/// Included as a baseline: it shows what self-tuning achieves without
/// STHoles' per-region feedback, and by extension how much further the
/// subspace-clustering initialization reaches.
class STGridHistogram : public Histogram {
 public:
  /// Creates a uniform grid over `domain` holding `total_tuples` spread
  /// evenly.
  STGridHistogram(const Box& domain, double total_tuples,
                  const STGridConfig& config);

  /// Estimated cardinality of `query`. Malformed queries estimate to 0 and
  /// bump the robustness counters instead of aborting.
  ///
  /// The grid is its own spatial index: per-dimension binary search finds
  /// the overlapped cell ranges directly, so only those cells are visited
  /// (see DESIGN.md §10 on why no R-tree is layered on top).
  double Estimate(const Box& query) const override;

  /// Naive full-tensor scan over every cell, retained as the differential
  /// reference for the grid-probed Estimate (cells outside the query
  /// contribute an exact 0.0 fraction, so the two sum bitwise-identically).
  double EstimateLinear(const Box& query) const override;

  /// Delta-rule refinement from the query's true total cardinality only.
  /// Untrusted feedback degrades gracefully: unusable query boxes are
  /// dropped, repairable ones sanitized, and non-finite or negative counts
  /// clamped — each bumping robustness().
  void Refine(const Box& query, const CardinalityOracle& oracle) override;

  size_t bucket_count() const override { return frequencies_.size(); }

  /// Degradation counters accumulated since construction.
  RobustnessStats robustness() const override;

  /// Sum of all cell frequencies.
  double TotalFrequency() const;

  /// Interval boundaries of one dimension (size cells_per_dim + 1).
  const std::vector<double>& boundaries(size_t d) const {
    return boundaries_[d];
  }

 private:
  size_t dim() const { return boundaries_.size(); }

  // Index of the interval of dimension d containing x (clamped).
  size_t IntervalIndex(size_t d, double x) const;

  // Flat index from per-dimension interval indices.
  size_t FlatIndex(const std::vector<size_t>& cell) const;

  // Iterates all cells overlapping `query`; calls fn(flat_index, fraction)
  // where fraction is the volume fraction of the cell inside the query.
  template <typename Fn>
  void ForEachOverlap(const Box& query, Fn&& fn) const;

  // Splits the highest-marginal intervals and merges the lowest-marginal
  // adjacent pairs in every dimension, keeping cells_per_dim constant.
  void Restructure();

  // Rebuilds the frequency tensor after dimension d's boundaries changed
  // from `old_bounds` to boundaries_[d], redistributing cell mass by
  // interval overlap.
  void RemapDimension(size_t d, const std::vector<double>& old_bounds);

  Box domain_;
  STGridConfig config_;
  std::vector<std::vector<double>> boundaries_;  // Per dim, sorted.
  std::vector<double> frequencies_;              // Row-major tensor.
  size_t queries_seen_ = 0;
  // Refine-path degradation counters (Refine is exclusive by contract).
  RobustnessStats stats_;
  // Estimate-path rejections; atomic because EstimateBatch runs the const
  // Estimate concurrently. Merged into robustness().
  mutable std::atomic<size_t> rejected_estimates_{0};
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_STGRID_H_

#ifndef STHIST_HISTOGRAM_ISOMER_H_
#define STHIST_HISTOGRAM_ISOMER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/box.h"
#include "histogram/histogram.h"
#include "obs/metrics.h"

namespace sthist {

/// ISOMER parameters.
struct IsomerConfig {
  /// Bucket budget, excluding the fixed root (STHoles counting convention).
  size_t max_buckets = 100;

  /// Sliding window of retained query-feedback constraints. Older
  /// constraints age out, which is how ISOMER follows changing data.
  size_t max_constraints = 128;

  /// Iterative-scaling rounds per refinement.
  size_t scaling_rounds = 40;

  /// Stop scaling early when every retained constraint is satisfied within
  /// this relative error.
  double tolerance = 1e-3;

  /// After solving, constraints still violated by more than this relative
  /// error are discarded (ISOMER's inconsistency handling: under a tight
  /// bucket budget, merges can make old constraints unrepresentable, and
  /// keeping them makes the scaling fight itself).
  double inconsistency_threshold = 0.5;

  /// Registry receiving the histogram.isomer.* / index.bucket_tree.* metrics
  /// (DESIGN.md §13); nullptr means the process-wide GlobalMetrics().
  obs::MetricsRegistry* metrics = nullptr;
};

/// ISOMER-style self-tuning histogram (Srivastava, Haas, Markl, Kutsch,
/// Tran — ICDE'06), the paper's reference [27]: the same STHoles bucket-tree
/// *structure*, but frequencies chosen as the maximum-entropy distribution
/// consistent with a sliding window of query-feedback constraints.
///
/// Differences to STHoles in this implementation:
///  * every observed count is *retained* as a constraint in a sliding
///    window, and after each refinement an iterative proportional scaling
///    pass reconciles the whole histogram with all retained constraints at
///    once (STHoles only ever applies the newest feedback); constraints the
///    budgeted structure can no longer satisfy are discarded, mirroring
///    ISOMER's inconsistency elimination;
///  * the budget is enforced with parent–child merges only (a simplification
///    of ISOMER's multiplier-based bucket elimination; the merge victim is
///    the child whose density is closest to its parent's).
class IsomerHistogram : public Histogram {
 public:
  IsomerHistogram(const Box& domain, double total_tuples,
                  const IsomerConfig& config);

  IsomerHistogram(const IsomerHistogram&) = delete;
  IsomerHistogram& operator=(const IsomerHistogram&) = delete;
  ~IsomerHistogram() override;

  /// Estimated cardinality of `query`. Malformed queries estimate to 0 and
  /// bump the robustness counters instead of aborting.
  ///
  /// Served through the lazily built bucket index (DESIGN.md §10);
  /// bitwise-identical to EstimateLinear by construction.
  double Estimate(const Box& query) const override;

  /// The original full-tree linear scan, retained as the reference path for
  /// differential testing against the indexed Estimate.
  double EstimateLinear(const Box& query) const override;

  /// Records the query's true cardinality as a constraint, drills structure
  /// for it, and re-solves the frequencies by iterative scaling.
  ///
  /// Untrusted feedback degrades gracefully: unusable query boxes are
  /// dropped, repairable ones sanitized, and non-finite or negative counts
  /// clamped before they become constraints — each bumping robustness().
  void Refine(const Box& query, const CardinalityOracle& oracle) override;

  /// Degradation counters accumulated since construction.
  RobustnessStats robustness() const override;

  size_t bucket_count() const override;

  /// Number of retained feedback constraints.
  size_t constraint_count() const { return constraints_.size(); }

  /// Sum of all bucket frequencies.
  double TotalFrequency() const;

  /// Worst relative violation of the retained constraints (0 = perfectly
  /// consistent).
  double MaxConstraintViolation() const;

  /// Structural invariants (nesting, disjoint siblings, non-negative
  /// frequencies); aborts on violation.
  void CheckInvariants() const;

 protected:
  /// Batch amortization (base-class hook): builds the bucket index once up
  /// front so the fanned-out per-query estimates only ever probe.
  void PrepareForBatch() const override { EnsureIndex(); }

 private:
  struct Bucket;

  // Metric handles (DESIGN.md §13), resolved once at construction from
  // config.metrics (or GlobalMetrics()); updates never feed back into any
  // estimate or scaling decision.
  struct Metrics {
    obs::Counter estimates;
    obs::Counter refines;
    obs::Gauge constraints;
    obs::LatencyHistogram refine_seconds;
    obs::LatencyHistogram solve_seconds;
    obs::Counter index_builds;
    obs::Counter index_invalidations;
    obs::Counter index_probes;
    obs::Counter index_node_visits;
    // Flat-index probe work (DESIGN.md §15); see STHoles::Metrics.
    obs::Counter flat_probes;
    obs::Counter flat_entry_blocks;
    obs::Gauge flat_simd_level;
    obs::TraceRing* ring = nullptr;
  };

  /// Cached geometry of one bucket against one constraint box, valid while
  /// the bucket structure is unchanged (scaling only moves frequencies).
  /// Region and riv are bitwise-identical to fresh RegionVolume /
  /// RegionIntersectionVolume computations by construction, so replaying a
  /// plan reproduces the uncached per-round loops bit for bit — this is the
  /// hoisting of the invariant Estimate/geometry work out of ScaleOnce and
  /// Solve (guarded by tests/index_differential_test.cc).
  struct PlanNode {
    Bucket* bucket = nullptr;
    double region = 0.0;     // RegionVolume at plan-build time.
    double riv = 0.0;        // RegionIntersectionVolume(bucket, box).
    uint32_t subtree = 1;    // Plan nodes in this bucket's subtree, incl. self.
    bool usable = false;     // region > MinVolume(): participates in scaling.
    bool contained = false;  // box contains bucket->box (degenerate term).
  };

  struct Constraint {
    Box box;
    double count = 0.0;
    /// structure_epoch_ the plan below was built against; 0 = never built.
    uint64_t plan_epoch = 0;
    /// Pre-order plan over the buckets intersecting `box`.
    std::vector<PlanNode> plan;
    bool plan_estimable = true;  // IsEstimableQuery(domain, box) at build.
  };

  static double RegionVolume(const Bucket& b);
  static double RegionIntersectionVolume(const Bucket& b, const Box& query);

  double EstimateNode(const Bucket& b, const Box& query) const;

  void CollectIntersecting(Bucket* b, const Box& query,
                           std::vector<Bucket*>* out);
  Box ShrinkCandidate(const Bucket& b, const Box& query) const;
  // Carves `candidate` out of b, seeded with the observed count (ISOMER's
  // add-hole step); scaling reconciles the rest of the tree.
  void DrillHole(Bucket* b, const Box& candidate,
                 const CardinalityOracle& oracle);

  // One pass of iterative proportional scaling over all constraints.
  // Returns the worst relative violation seen before adjustment.
  double ScaleOnce();
  void Solve();

  void EnforceBudget();

  // --- Constraint plans + bucket index (DESIGN.md §10) ---
  // Rebuilds constraint->plan via an index probe if its epoch is stale.
  void EnsurePlan(Constraint* constraint);
  // Replays the estimation recursion over a (fresh) plan; bitwise-identical
  // to Estimate(constraint.box) under the current frequencies.
  double PlanEstimate(const Constraint& constraint) const;
  void EnsureIndex() const;
  void InvalidateIndex();
  // Records a structural change: bumps the epoch so constraint plans rebuild.
  void NoteStructureChange();

  double MinVolume() const;
  void CheckNode(const Bucket& b) const;

  IsomerConfig config_;
  Metrics metrics_;
  std::unique_ptr<Bucket> root_;
  size_t bucket_count_ = 0;  // Including root.
  std::deque<Constraint> constraints_;
  double total_tuples_;
  // Refine-path degradation counters; Estimate-path rejections live in
  // IndexState as an atomic and are merged in robustness().
  RobustnessStats stats_;
  /// Incremented on every drill/merge; constraint plans cache geometry
  /// keyed by this, so stale Bucket pointers in plans are never followed.
  uint64_t structure_epoch_ = 1;
  // Spatial index over the bucket tree; defined in the .cc.
  struct IndexState;
  std::unique_ptr<IndexState> index_;
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_ISOMER_H_

#ifndef STHIST_HISTOGRAM_STHOLES_H_
#define STHIST_HISTOGRAM_STHOLES_H_

#include <memory>
#include <vector>

#include "core/box.h"
#include "histogram/histogram.h"
#include "obs/metrics.h"

namespace sthist {

/// Tuning knobs for STHoles.
struct STHolesConfig {
  /// Bucket budget, excluding the fixed root bucket (matching the paper's
  /// convention that "a limit of one bucket" means one bucket plus the root).
  size_t max_buckets = 100;

  /// Volumes at or below this fraction of the root volume are treated as
  /// zero when deciding whether a candidate hole is worth drilling.
  double min_volume_fraction = 1e-12;

  /// Registry receiving the histogram.stholes.* / index.bucket_tree.* metrics
  /// (DESIGN.md §13); nullptr means the process-wide GlobalMetrics(). Handles
  /// are resolved once at construction, so install the registry first. Clones
  /// inherit the config and therefore aggregate into the same cells.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The STHoles multidimensional self-tuning histogram
/// (Bruno, Chaudhuri, Gravano — SIGMOD 2001), the self-tuning baseline and
/// refinement engine of the reproduced paper.
///
/// The histogram partitions the data space into a tree of rectangular
/// buckets. A bucket's *region* is its box minus the boxes of its children
/// (the "holes" drilled into it); its frequency counts only tuples in the
/// region. Estimation applies the uniformity assumption per region (paper
/// eq. 1). Refinement drills a candidate hole into every bucket a query
/// intersects, using exact feedback counts, then merges the two most similar
/// buckets until the budget is met again (paper eq. 2 penalties, in closed
/// form).
class STHoles : public Histogram {
 public:
  /// Creates a histogram whose fixed root bucket spans `domain` and initially
  /// holds all `total_tuples` tuples.
  STHoles(const Box& domain, double total_tuples, const STHolesConfig& config);

  STHoles(const STHoles&) = delete;
  STHoles& operator=(const STHoles&) = delete;
  ~STHoles() override;

  /// Estimated cardinality of `query`. Malformed queries (dimension
  /// mismatch, non-finite or inverted bounds) estimate to 0 and bump the
  /// robustness counters instead of aborting.
  ///
  /// Served through the lazily built bucket index (DESIGN.md §10);
  /// bitwise-identical to EstimateLinear by construction, which
  /// tests/index_differential_test.cc enforces.
  double Estimate(const Box& query) const override;

  /// The original full-tree linear scan, retained as the reference path for
  /// differential testing against the indexed Estimate.
  double EstimateLinear(const Box& query) const override;

  /// Learns from the feedback of one executed query: drills shrunken
  /// candidate holes with exact counts into every intersected bucket, then
  /// compacts back to the bucket budget.
  ///
  /// Pathological feedback degrades gracefully instead of aborting: unusable
  /// query boxes are dropped, repairable ones (inverted/out-of-domain) are
  /// sanitized, and non-finite or negative oracle counts are clamped — each
  /// bumping the corresponding robustness() counter.
  void Refine(const Box& query, const CardinalityOracle& oracle) override;

  /// Deep copy of the bucket tree, configuration, and degradation counters.
  /// Estimates of the clone are bitwise-identical to the source's (same
  /// frequencies, boxes, and child order, so the same floating-point
  /// expressions evaluate); the clone's bucket index starts cold and is
  /// rebuilt lazily on its own estimates. This is the snapshot hook the
  /// serving layer publishes through (DESIGN.md §11).
  std::unique_ptr<Histogram> Clone() const override;

  /// Degradation counters accumulated since construction.
  RobustnessStats robustness() const override;

  /// Buckets excluding the fixed root (the paper's counting convention).
  size_t bucket_count() const override { return bucket_count_ - 1; }

  /// Buckets including the root.
  size_t total_bucket_count() const { return bucket_count_; }

  /// The domain (root bucket box).
  const Box& domain() const;

  /// Sum of all bucket frequencies (total tuple mass tracked).
  double TotalFrequency() const;

  /// Flattened view of one bucket, for inspection, dumping and tests.
  struct BucketInfo {
    Box box;
    double frequency = 0.0;
    size_t depth = 0;    // Root has depth 0.
    size_t children = 0;
  };

  /// Pre-order dump of the bucket tree (root first).
  std::vector<BucketInfo> Dump() const;

  /// Serializes the bucket tree to a portable text form (version header +
  /// one line per bucket: depth, bounds, frequency). Round-trips through
  /// Deserialize with bit-exact estimates.
  std::string Serialize() const;

  /// Reconstructs a histogram from Serialize() output. Returns nullptr when
  /// the text is malformed or violates the bucket-tree invariants.
  static std::unique_ptr<STHoles> Deserialize(const std::string& text,
                                              const STHolesConfig& config);

  /// Validates structural invariants (children nested in parents, sibling
  /// interiors disjoint, non-negative frequencies). Aborts on violation;
  /// used by tests and fuzzing.
  void CheckInvariants() const;

 protected:
  /// Batch amortization (base-class hook): builds the bucket index once up
  /// front so the fanned-out per-query estimates only ever probe.
  void PrepareForBatch() const override { EnsureIndex(); }

 private:
  struct Bucket;

  // Metric handles (DESIGN.md §13), resolved once at construction from
  // config.metrics (or GlobalMetrics()). Updates are relaxed atomics — or a
  // single branch when the registry is disabled — and never feed back into
  // any estimate or refinement decision, preserving the §9–§11 determinism
  // contracts (tests/obs_test.cc holds an instrumented histogram to
  // bit-identity against an uninstrumented twin).
  struct Metrics {
    obs::Counter estimates;
    obs::Counter refines;
    obs::Counter drills;
    obs::Counter merges;
    obs::Counter migrated_children;
    obs::Gauge buckets;
    obs::LatencyHistogram refine_seconds;
    obs::LatencyHistogram drill_seconds;
    obs::LatencyHistogram merge_seconds;
    obs::Counter index_builds;
    obs::Counter index_appends;
    obs::Counter index_invalidations;
    obs::Counter index_probes;
    obs::Counter index_node_visits;
    // Flat-index probe work (DESIGN.md §15): probes served through the SoA
    // path, SIMD-width entry blocks tested, and the dispatched kernel level
    // (0 scalar, 1 AVX2, 2 NEON) as a gauge.
    obs::Counter flat_probes;
    obs::Counter flat_entry_blocks;
    obs::Gauge flat_simd_level;
    obs::TraceRing* ring = nullptr;
  };

  // Deep copy of a bucket subtree, preserving child order (estimation sums
  // in child order, so order preservation is what makes clone estimates
  // bitwise equal to the source's).
  static std::unique_ptr<Bucket> CopySubtree(const Bucket& b);

  // --- Geometry over the bucket tree ---
  // Volume of the bucket's region (box minus child boxes).
  static double RegionVolume(const Bucket& b);
  // Volume of `query` ∩ region(b).
  static double RegionIntersectionVolume(const Bucket& b, const Box& query);

  // --- Estimation ---
  double EstimateNode(const Bucket& b, const Box& query) const;

  // --- Refinement ---
  // Collects every bucket whose box has positive-volume intersection with
  // `query`, in pre-order.
  void CollectIntersecting(Bucket* b, const Box& query,
                           std::vector<Bucket*>* out);
  // Shrinks candidate = query ∩ box(b) until no child of b partially
  // intersects it (STHoles §4.2). Returns the shrunken candidate.
  Box ShrinkCandidate(const Bucket& b, const Box& query) const;
  // Drills `candidate` into bucket b with exact feedback from `oracle`.
  void DrillHole(Bucket* b, const Box& candidate,
                 const CardinalityOracle& oracle);
  // Sets b's frequency to the exact count of its region.
  void SetExactFrequency(Bucket* b, const CardinalityOracle& oracle);

  // --- Merging ---
  struct MergeCandidate {
    Bucket* parent = nullptr;  // Parent-child: parent; sibling: common parent.
    Bucket* first = nullptr;   // Parent-child: the child. Sibling: b1.
    Bucket* second = nullptr;  // Sibling: b2; null for parent-child.
    double penalty = 0.0;
    Box merged_box;            // Sibling merges: the grown enclosure.
  };
  // Enumerates all merges and returns the cheapest, or nullopt-like result
  // with parent == nullptr when no merge exists (single root).
  MergeCandidate FindBestMerge() const;
  void ComputeSiblingMerge(Bucket* parent, Bucket* b1, Bucket* b2,
                           MergeCandidate* out) const;
  void ApplyMerge(const MergeCandidate& merge);
  void EnforceBudget();

  double MinVolume() const;

  void CheckNode(const Bucket& b) const;

  // --- Bucket index maintenance (DESIGN.md §10) ---
  // Builds the spatial index if it is not ready (thread-safe, idempotent).
  void EnsureIndex() const;
  // Marks the index stale after a structural change that moved buckets.
  void InvalidateIndex();

  STHolesConfig config_;
  Metrics metrics_;
  std::unique_ptr<Bucket> root_;
  size_t bucket_count_ = 0;  // Including root.
  // Refine-path degradation counters; Estimate-path rejections live in
  // IndexState as an atomic (Estimate may run concurrently via
  // EstimateBatch) and are merged in robustness().
  RobustnessStats stats_;
  // Spatial index over the bucket tree plus its build/validity state;
  // defined in the .cc to keep the index machinery out of this header.
  struct IndexState;
  std::unique_ptr<IndexState> index_;
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_STHOLES_H_

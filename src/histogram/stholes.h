#ifndef STHIST_HISTOGRAM_STHOLES_H_
#define STHIST_HISTOGRAM_STHOLES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/box.h"
#include "core/status.h"
#include "histogram/histogram.h"
#include "obs/metrics.h"

namespace sthist {

/// Tuning knobs for STHoles.
struct STHolesConfig {
  /// Bucket budget, excluding the fixed root bucket (matching the paper's
  /// convention that "a limit of one bucket" means one bucket plus the root).
  size_t max_buckets = 100;

  /// Volumes at or below this fraction of the root volume are treated as
  /// zero when deciding whether a candidate hole is worth drilling.
  double min_volume_fraction = 1e-12;

  /// Registry receiving the histogram.stholes.* / index.bucket_tree.* metrics
  /// (DESIGN.md §13); nullptr means the process-wide GlobalMetrics(). Handles
  /// are resolved once at construction, so install the registry first. Clones
  /// inherit the config and therefore aggregate into the same cells.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The STHoles multidimensional self-tuning histogram
/// (Bruno, Chaudhuri, Gravano — SIGMOD 2001), the self-tuning baseline and
/// refinement engine of the reproduced paper.
///
/// The histogram partitions the data space into a tree of rectangular
/// buckets. A bucket's *region* is its box minus the boxes of its children
/// (the "holes" drilled into it); its frequency counts only tuples in the
/// region. Estimation applies the uniformity assumption per region (paper
/// eq. 1). Refinement drills a candidate hole into every bucket a query
/// intersects, using exact feedback counts, then merges the two most similar
/// buckets until the budget is met again (paper eq. 2 penalties, in closed
/// form).
class STHoles : public Histogram {
 public:
  /// Creates a histogram whose fixed root bucket spans `domain` and initially
  /// holds all `total_tuples` tuples.
  STHoles(const Box& domain, double total_tuples, const STHolesConfig& config);

  STHoles(const STHoles&) = delete;
  STHoles& operator=(const STHoles&) = delete;
  ~STHoles() override;

  /// Estimated cardinality of `query`. Malformed queries (dimension
  /// mismatch, non-finite or inverted bounds) estimate to 0 and bump the
  /// robustness counters instead of aborting.
  ///
  /// Served through the lazily built bucket index (DESIGN.md §10);
  /// bitwise-identical to EstimateLinear by construction, which
  /// tests/index_differential_test.cc enforces.
  double Estimate(const Box& query) const override;

  /// The original full-tree linear scan, retained as the reference path for
  /// differential testing against the indexed Estimate.
  double EstimateLinear(const Box& query) const override;

  /// Learns from the feedback of one executed query: drills shrunken
  /// candidate holes with exact counts into every intersected bucket, then
  /// compacts back to the bucket budget.
  ///
  /// Pathological feedback degrades gracefully instead of aborting: unusable
  /// query boxes are dropped, repairable ones (inverted/out-of-domain) are
  /// sanitized, and non-finite or negative oracle counts are clamped — each
  /// bumping the corresponding robustness() counter.
  void Refine(const Box& query, const CardinalityOracle& oracle) override;

  /// Deep copy of the bucket tree, configuration, and degradation counters.
  /// Estimates of the clone are bitwise-identical to the source's (same
  /// frequencies, boxes, and child order, so the same floating-point
  /// expressions evaluate); the clone's bucket index starts cold and is
  /// rebuilt lazily on its own estimates. Shares no structure with the
  /// source — the fully independent copy, as opposed to Snapshot().
  std::unique_ptr<Histogram> Clone() const override;

  /// O(1) copy-on-write snapshot (DESIGN.md §17): the snapshot shares the
  /// entire bucket tree with this histogram, and subsequent Refine calls
  /// path-copy only the buckets they touch (checking each node's reference
  /// count on the way down), so the snapshot keeps answering exactly what
  /// this histogram answered at the moment of the call — bitwise-identical
  /// to a deep Clone() taken at the same moment, which
  /// tests/cow_tree_test.cc enforces. This is the publish primitive the
  /// serving layer uses; publish cost no longer scales with bucket count.
  std::shared_ptr<const Histogram> Snapshot() const override;

  /// Degradation counters accumulated since construction.
  RobustnessStats robustness() const override;

  /// Buckets excluding the fixed root (the paper's counting convention).
  size_t bucket_count() const override { return bucket_count_ - 1; }

  /// Buckets including the root.
  size_t total_bucket_count() const { return bucket_count_; }

  /// The domain (root bucket box).
  const Box& domain() const;

  /// Sum of all bucket frequencies (total tuple mass tracked).
  double TotalFrequency() const;

  /// Flattened view of one bucket, for inspection, dumping and tests.
  struct BucketInfo {
    Box box;
    double frequency = 0.0;
    size_t depth = 0;    // Root has depth 0.
    size_t children = 0;
  };

  /// Pre-order dump of the bucket tree (root first).
  std::vector<BucketInfo> Dump() const;

  /// Serializes the bucket tree to a portable text form (version header +
  /// one line per bucket: depth, bounds, frequency). Round-trips through
  /// Deserialize with bit-exact estimates.
  std::string Serialize() const;

  /// Reconstructs a histogram from Serialize() output. Returns nullptr when
  /// the text is malformed or violates the bucket-tree invariants.
  static std::unique_ptr<STHoles> Deserialize(const std::string& text,
                                              const STHolesConfig& config);

  /// Version of the binary snapshot format SerializeBinary emits.
  /// DeserializeBinary accepts exactly this version and rejects everything
  /// else with a diagnostic naming both versions (DESIGN.md §17 spells out
  /// the version-evolution policy: bump on any layout change, never reuse).
  static constexpr uint32_t kBinaryFormatVersion = 1;

  /// Serializes the bucket tree to the versioned binary snapshot format:
  /// a 24-byte header (magic "STHB", format version, payload size, FNV-1a
  /// payload checksum) followed by the pre-order bucket records with raw
  /// IEEE-754 doubles, so estimates round-trip bit-exactly. This is the
  /// persistence layer behind warm restarts (DESIGN.md §17).
  std::string SerializeBinary() const override;

  /// Reconstructs a histogram from SerializeBinary() output, failing closed:
  /// every framing violation (bad magic, wrong version, size mismatch,
  /// checksum mismatch, truncation) and every payload violation (non-finite
  /// bounds or frequencies, children escaping parents, overlapping siblings,
  /// trailing bytes) returns an error Status — never a crash, never a
  /// histogram that only partially decoded (tests/serialize_fuzz_test.cc
  /// holds this under corpus + mutation fuzz).
  static StatusOr<std::unique_ptr<STHoles>> DeserializeBinary(
      std::string_view bytes, const STHolesConfig& config);

  /// Validates structural invariants (children nested in parents, sibling
  /// interiors disjoint, non-negative frequencies). Aborts on violation;
  /// used by tests and fuzzing.
  void CheckInvariants() const;

  /// TEST-ONLY introspection of the COW machinery (tests/cow_tree_test.cc).
  /// Nodes of this tree (root included) physically shared with at least one
  /// outstanding snapshot: a node counts when its owning handle has
  /// use_count > 1 or any ancestor's does (a path copy duplicates only the
  /// subtree root's handle, so sharing is transitive). O(n).
  size_t SharedNodeCount() const;
  /// Cumulative nodes path-copied by refinement since construction; the
  /// delta across one Refine is bounded by the buckets the query intersected
  /// (the touched path), which the test battery checks independently.
  size_t CowCopiedNodes() const { return cow_copied_total_; }

 protected:
  /// Batch amortization (base-class hook): builds the bucket index once up
  /// front so the fanned-out per-query estimates only ever probe.
  void PrepareForBatch() const override { EnsureIndex(); }

 private:
  struct Bucket;

  // Metric handles (DESIGN.md §13), resolved once at construction from
  // config.metrics (or GlobalMetrics()). Updates are relaxed atomics — or a
  // single branch when the registry is disabled — and never feed back into
  // any estimate or refinement decision, preserving the §9–§11 determinism
  // contracts (tests/obs_test.cc holds an instrumented histogram to
  // bit-identity against an uninstrumented twin).
  struct Metrics {
    obs::Counter estimates;
    obs::Counter refines;
    obs::Counter drills;
    obs::Counter merges;
    obs::Counter migrated_children;
    obs::Gauge buckets;
    obs::LatencyHistogram refine_seconds;
    obs::LatencyHistogram drill_seconds;
    obs::LatencyHistogram merge_seconds;
    obs::Counter index_builds;
    obs::Counter index_appends;
    obs::Counter index_invalidations;
    obs::Counter index_probes;
    obs::Counter index_node_visits;
    // Flat-index probe work (DESIGN.md §15): probes served through the SoA
    // path, SIMD-width entry blocks tested, and the dispatched kernel level
    // (0 scalar, 1 AVX2, 2 NEON) as a gauge.
    obs::Counter flat_probes;
    obs::Counter flat_entry_blocks;
    obs::Gauge flat_simd_level;
    // COW publish accounting (DESIGN.md §17): nodes path-copied by refines,
    // snapshots taken, and how much of the tree the latest snapshot shares
    // with its predecessor (total nodes minus nodes copied in between).
    obs::Counter cow_copied;
    obs::Counter cow_snapshots;
    obs::Gauge cow_shared;
    obs::TraceRing* ring = nullptr;
  };

  // Deep copy of a bucket subtree, preserving child order (estimation sums
  // in child order, so order preservation is what makes clone estimates
  // bitwise equal to the source's).
  static std::shared_ptr<Bucket> CopySubtree(const Bucket& b);

  // --- Copy-on-write plumbing (DESIGN.md §17) ---
  // One-level copy: duplicates the node's scalar state and its *handles* to
  // the children (bumping their reference counts), leaving every child
  // subtree shared. The building block of path copying.
  static std::shared_ptr<Bucket> ShallowCopy(const Bucket& b);
  // Replace a shared root / child handle with an exclusive shallow copy;
  // no-ops (returning the existing node) when the handle is already
  // exclusive. Any actual copy stales the bucket index (its refs point at
  // the superseded nodes) and counts toward the cow metrics.
  Bucket* EnsureExclusiveRoot();
  Bucket* EnsureExclusiveChild(Bucket* parent, size_t slot);
  // Unshares the whole spine from the root down to `target` (found by
  // pointer identity) and returns target's possibly-copied successor.
  // Precondition: target is a node of this tree.
  Bucket* UnsharePathTo(Bucket* target);
  static bool FindPath(const Bucket* node, const Bucket* target,
                       std::vector<size_t>* slots);

  // --- Geometry over the bucket tree ---
  // Volume of the bucket's region (box minus child boxes).
  static double RegionVolume(const Bucket& b);
  // Volume of `query` ∩ region(b).
  static double RegionIntersectionVolume(const Bucket& b, const Box& query);

  // --- Estimation ---
  double EstimateNode(const Bucket& b, const Box& query) const;

  // --- Refinement ---
  // Collects every bucket whose box has positive-volume intersection with
  // `query`, in pre-order, unsharing each collected node on the way down
  // (the intersecting set is upward-closed — a child's box is nested in its
  // parent's — so this descent is exactly the touched spine COW must copy,
  // and every pointer returned is exclusively owned by this tree).
  void CollectIntersecting(Bucket* b, const Box& query,
                           std::vector<Bucket*>* out);
  // Shrinks candidate = query ∩ box(b) until no child of b partially
  // intersects it (STHoles §4.2). Returns the shrunken candidate.
  Box ShrinkCandidate(const Bucket& b, const Box& query) const;
  // Drills `candidate` into bucket b with exact feedback from `oracle`.
  void DrillHole(Bucket* b, const Box& candidate,
                 const CardinalityOracle& oracle);
  // Sets b's frequency to the exact count of its region.
  void SetExactFrequency(Bucket* b, const CardinalityOracle& oracle);

  // --- Merging ---
  struct MergeCandidate {
    Bucket* parent = nullptr;  // Parent-child: parent; sibling: common parent.
    Bucket* first = nullptr;   // Parent-child: the child. Sibling: b1.
    Bucket* second = nullptr;  // Sibling: b2; null for parent-child.
    double penalty = 0.0;
    Box merged_box;            // Sibling merges: the grown enclosure.
  };
  // Enumerates all merges and returns the cheapest, or nullopt-like result
  // with parent == nullptr when no merge exists (single root).
  MergeCandidate FindBestMerge() const;
  void ComputeSiblingMerge(Bucket* parent, Bucket* b1, Bucket* b2,
                           MergeCandidate* out) const;
  void ApplyMerge(const MergeCandidate& merge);
  void EnforceBudget();

  double MinVolume() const;

  void CheckNode(const Bucket& b) const;

  // --- Bucket index maintenance (DESIGN.md §10) ---
  // Builds the spatial index if it is not ready (thread-safe, idempotent).
  void EnsureIndex() const;
  // Marks the index stale after a structural change that moved buckets.
  void InvalidateIndex();

  STHolesConfig config_;
  Metrics metrics_;
  // Owning handle of the bucket tree. shared_ptr because Snapshot() shares
  // the whole tree with published snapshots; refinement re-establishes
  // exclusive ownership of whatever it touches via path copying, checking
  // use_count() per node. That check can race only with snapshot
  // *destruction* (other threads never add references to interior nodes), so
  // a stale read over-copies at worst — never mutates a shared node.
  std::shared_ptr<Bucket> root_;
  size_t bucket_count_ = 0;  // Including root.
  // COW accounting: lifetime path-copies, and nodes materialized since the
  // last Snapshot() — path copies plus freshly drilled/merged buckets, i.e.
  // everything the next snapshot will NOT share with its predecessor (what
  // the cow_shared gauge derives from). Mutable because Snapshot() is const
  // yet closes the per-publish window; both are touched only under the
  // refiner's exclusive-Refine contract.
  size_t cow_copied_total_ = 0;
  mutable size_t fresh_since_snapshot_ = 0;
  // Refine-path degradation counters; Estimate-path rejections live in
  // IndexState as an atomic (Estimate may run concurrently via
  // EstimateBatch) and are merged in robustness().
  RobustnessStats stats_;
  // Spatial index over the bucket tree plus its build/validity state;
  // defined in the .cc to keep the index machinery out of this header.
  struct IndexState;
  std::unique_ptr<IndexState> index_;
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_STHOLES_H_

#include "histogram/histogram.h"

#include "core/thread_pool.h"

namespace sthist {

namespace {

// Below this many queries a transient thread pool costs more than the
// estimates themselves; run inline regardless of the requested thread count.
constexpr size_t kSerialBatchCutoff = 32;

}  // namespace

std::vector<double> Histogram::EstimateBatch(std::span<const Box> queries,
                                             size_t threads) const {
  PrepareForBatch();
  std::vector<double> out(queries.size());
  if (threads == 1 || queries.size() < kSerialBatchCutoff) {
    for (size_t i = 0; i < queries.size(); ++i) out[i] = Estimate(queries[i]);
    return out;
  }
  // Slot i is written only by iteration i, so the output is bitwise
  // independent of scheduling.
  ParallelFor(queries.size(), threads,
              [&](size_t i) { out[i] = Estimate(queries[i]); });
  return out;
}

}  // namespace sthist

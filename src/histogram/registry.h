#ifndef STHIST_HISTOGRAM_REGISTRY_H_
#define STHIST_HISTOGRAM_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/box.h"
#include "core/status.h"
#include "data/dataset.h"
#include "histogram/histogram.h"
#include "histogram/isomer.h"
#include "histogram/kde.h"
#include "histogram/mhist.h"
#include "histogram/stgrid.h"
#include "histogram/stholes.h"
#include "obs/metrics.h"

namespace sthist {

/// \file
/// The estimator registry (DESIGN.md §18): every Histogram implementation is
/// constructible by name from one config, so the CLI, the experiment runner,
/// the snapshot-restore paths, and the test batteries enumerate
/// RegisteredNames() instead of hard-coding per-implementation switches — a
/// new estimator registered here joins every harness automatically.

/// One construction config covering every registered estimator family.
/// The generic knobs (buckets, seed, metrics) are applied onto the family
/// configs at construction; the per-family sub-configs carry the knobs that
/// have no generic analogue.
struct HistogramConfig {
  /// The data domain (root box) — required by every family.
  Box domain;

  /// Total relation cardinality — required by the self-tuning families
  /// (trivial, stgrid, isomer, stholes, kde).
  double total_tuples = 0.0;

  /// The relation itself — required by the statically built families
  /// (equiwidth, avi, sampling, mhist); may be nullptr otherwise.
  const Dataset* data = nullptr;

  /// Generic synopsis budget: bucket budget for mhist/isomer/stholes, the
  /// sample size for sampling/kde, and the source of the derived per-dim
  /// resolutions below when they are 0.
  size_t buckets = 100;

  /// Base seed for the sampled families (sampling, kde). Derived per family
  /// role, so one experiment seed never aliases streams across estimators.
  uint64_t seed = 5;

  /// Registry receiving the estimator's metrics; nullptr means
  /// GlobalMetrics(). Applied to the families that are instrumented.
  obs::MetricsRegistry* metrics = nullptr;

  /// Per-dimension grid resolution for equiwidth and stgrid; 0 derives
  /// round(buckets^(1/dim)) (floored at 2).
  size_t cells_per_dim = 0;

  /// Per-dimension bucket count for avi; 0 derives max(1, buckets / dim).
  size_t buckets_per_dim = 0;

  /// Family-specific knobs. The generic fields above override the
  /// corresponding members (max_buckets, sample_capacity, seed, metrics) at
  /// construction.
  STHolesConfig stholes;
  IsomerConfig isomer;
  STGridConfig stgrid;
  MHistConfig mhist;
  KdeConfig kde;
};

/// Names accepted by MakeHistogram, in canonical (stable) order.
const std::vector<std::string>& RegisteredNames();

/// Constructs the estimator registered under `name`. Unknown names return
/// kNotFound listing the registered names; a family whose inputs are missing
/// (no dataset for a statically built family, empty dataset for sampling)
/// returns kInvalidArgument.
StatusOr<std::unique_ptr<Histogram>> MakeHistogram(
    std::string_view name, const HistogramConfig& config);

/// Registry name of the estimator that produced a binary snapshot blob
/// (dispatch on the 4-byte magic: "STHB" → stholes, "STHK" → kde), or the
/// empty string for an unrecognized blob.
std::string_view EstimatorNameForBlob(std::string_view blob);

/// Reconstructs a histogram from a SerializeBinary blob, dispatching on the
/// blob's magic to the owning implementation's DeserializeBinary. `config`
/// supplies the tuning knobs exactly as it does for MakeHistogram; all
/// replayed state comes from the blob. Fails closed on unrecognized magics
/// and on any framing violation.
StatusOr<std::unique_ptr<Histogram>> RestoreHistogram(
    std::string_view blob, const HistogramConfig& config);

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_REGISTRY_H_

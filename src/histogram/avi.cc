#include "histogram/avi.h"

#include <algorithm>

#include "core/check.h"

namespace sthist {

AviHistogram::AviHistogram(const Dataset& data, const Box& domain,
                           size_t buckets_per_dim)
    : domain_(domain), total_tuples_(static_cast<double>(data.size())) {
  STHIST_CHECK(buckets_per_dim >= 1);
  STHIST_CHECK(data.dim() == domain.dim());
  STHIST_CHECK(data.size() > 0);

  const size_t n = data.size();
  boundaries_.resize(domain.dim());
  std::vector<double> column(n);
  for (size_t d = 0; d < domain.dim(); ++d) {
    for (size_t i = 0; i < n; ++i) column[i] = data.value(i, d);
    std::sort(column.begin(), column.end());

    std::vector<double>& bounds = boundaries_[d];
    bounds.resize(buckets_per_dim + 1);
    bounds.front() = std::min(domain.lo(d), column.front());
    bounds.back() = std::max(domain.hi(d), column.back());
    for (size_t b = 1; b < buckets_per_dim; ++b) {
      // The value below which a b/buckets fraction of the column lies.
      size_t rank = b * n / buckets_per_dim;
      bounds[b] = column[std::min(rank, n - 1)];
    }
    // Quantiles of heavily duplicated values may coincide; keep boundaries
    // non-decreasing (zero-width buckets simply carry their depth share).
    for (size_t b = 1; b < bounds.size(); ++b) {
      bounds[b] = std::max(bounds[b], bounds[b - 1]);
    }
  }
}

double AviHistogram::Selectivity(size_t d, double lo, double hi) const {
  const std::vector<double>& bounds = boundaries_[d];
  const size_t buckets = bounds.size() - 1;
  const double depth = 1.0 / static_cast<double>(buckets);

  if (hi <= bounds.front() || lo >= bounds.back()) return 0.0;

  double selectivity = 0.0;
  for (size_t b = 0; b < buckets; ++b) {
    double b_lo = bounds[b];
    double b_hi = bounds[b + 1];
    if (b_hi <= lo || b_lo >= hi) continue;
    if (b_hi == b_lo) {
      // Zero-width bucket (duplicated quantile): all of its depth counts
      // when the point lies inside the query.
      if (b_lo >= lo && b_lo <= hi) selectivity += depth;
      continue;
    }
    double overlap = std::min(hi, b_hi) - std::max(lo, b_lo);
    selectivity += depth * std::clamp(overlap / (b_hi - b_lo), 0.0, 1.0);
  }
  return std::min(selectivity, 1.0);
}

double AviHistogram::Estimate(const Box& query) const {
  STHIST_CHECK(query.dim() == domain_.dim());
  double selectivity = 1.0;
  for (size_t d = 0; d < domain_.dim(); ++d) {
    selectivity *= Selectivity(d, query.lo(d), query.hi(d));
    if (selectivity == 0.0) break;
  }
  return total_tuples_ * selectivity;
}

void AviHistogram::Refine(const Box& /*query*/,
                          const CardinalityOracle& /*oracle*/) {}

size_t AviHistogram::bucket_count() const {
  size_t total = 0;
  for (const std::vector<double>& bounds : boundaries_) {
    total += bounds.size() - 1;
  }
  return total;
}

}  // namespace sthist

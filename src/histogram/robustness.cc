#include "histogram/robustness.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace sthist {

double SanitizingOracle::Count(const Box& box) const {
  double count = inner_.Count(box);
  if (!std::isfinite(count) || count < 0.0) {
    ++stats_->clamped_feedback;
    return 0.0;
  }
  return count;
}

std::optional<Box> SanitizeFeedbackQuery(const Box& domain, const Box& query,
                                         RobustnessStats* stats) {
  if (query.dim() != domain.dim()) {
    ++stats->rejected_queries;
    return std::nullopt;
  }
  bool repaired = false;
  std::vector<double> lo(query.dim()), hi(query.dim());
  for (size_t d = 0; d < query.dim(); ++d) {
    if (!std::isfinite(query.lo(d)) || !std::isfinite(query.hi(d))) {
      ++stats->rejected_queries;
      return std::nullopt;
    }
    lo[d] = std::min(query.lo(d), query.hi(d));
    hi[d] = std::max(query.lo(d), query.hi(d));
    if (lo[d] != query.lo(d) || hi[d] != query.hi(d)) repaired = true;
    double clamped_lo = std::clamp(lo[d], domain.lo(d), domain.hi(d));
    double clamped_hi = std::clamp(hi[d], domain.lo(d), domain.hi(d));
    if (clamped_lo != lo[d] || clamped_hi != hi[d]) repaired = true;
    lo[d] = clamped_lo;
    hi[d] = clamped_hi;
  }
  Box result(std::move(lo), std::move(hi));
  if (result.Volume() <= 0.0) {
    ++stats->rejected_queries;
    return std::nullopt;
  }
  if (repaired) ++stats->sanitized_queries;
  return result;
}

bool IsEstimableQuery(const Box& domain, const Box& query) {
  if (query.dim() != domain.dim()) return false;
  for (size_t d = 0; d < query.dim(); ++d) {
    if (!std::isfinite(query.lo(d)) || !std::isfinite(query.hi(d))) {
      return false;
    }
    if (query.lo(d) > query.hi(d)) return false;
  }
  return true;
}

}  // namespace sthist

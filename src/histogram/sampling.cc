#include "histogram/sampling.h"

#include <algorithm>

#include "core/check.h"
#include "core/reservoir.h"

namespace sthist {

SamplingEstimator::SamplingEstimator(const Dataset& data, size_t sample_size,
                                     uint64_t seed)
    : scale_(1.0), sample_(data.dim()) {
  STHIST_CHECK(data.size() > 0);
  sample_size = std::min(sample_size, data.size());
  STHIST_CHECK(sample_size > 0);
  scale_ = static_cast<double>(data.size()) /
           static_cast<double>(sample_size);

  // Shared reservoir over the row stream: uniform without replacement, and
  // when the reservoir covers the relation it keeps every row in order.
  Reservoir<size_t> rows(sample_size, seed);
  for (size_t row = 0; row < data.size(); ++row) rows.Offer(row);
  sample_.Reserve(sample_size);
  for (size_t row : rows.items()) sample_.Append(data.row(row));
  index_ = std::make_unique<KdTree>(sample_);
}

double SamplingEstimator::Estimate(const Box& query) const {
  return scale_ * static_cast<double>(index_->Count(query));
}

void SamplingEstimator::Refine(const Box& /*query*/,
                               const CardinalityOracle& /*oracle*/) {}

}  // namespace sthist

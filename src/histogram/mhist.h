#ifndef STHIST_HISTOGRAM_MHIST_H_
#define STHIST_HISTOGRAM_MHIST_H_

#include <vector>

#include "data/dataset.h"
#include "histogram/histogram.h"
#include "index/flat_index.h"

namespace sthist {

/// MHist parameters.
struct MHistConfig {
  /// Number of buckets to build.
  size_t max_buckets = 100;

  /// Resolution of the per-dimension marginal used to locate the MaxDiff
  /// split point inside a bucket.
  size_t marginal_bins = 64;
};

/// MHIST-2: the static multidimensional MaxDiff histogram
/// (Poosala & Ioannidis, VLDB'97) — the paper's reference [23] for
/// conventional multidimensional histogram construction (and the structure
/// SASH builds on).
///
/// Construction greedily splits the bucket whose marginal frequency
/// distribution contains the largest difference between adjacent bins
/// ("MaxDiff"), at that boundary, until the budget is reached. Estimation
/// assumes uniformity inside each bucket. Static: it scans the data at build
/// time and ignores query feedback.
class MHistHistogram : public Histogram {
 public:
  MHistHistogram(const Dataset& data, const Box& domain,
                 const MHistConfig& config);

  /// Served through a flat SoA bucket index built at construction
  /// (closed-overlap probes, so degenerate buckets swallowed by the query
  /// still count); bitwise-identical to EstimateLinear — skipped buckets
  /// contribute an exact 0.0 to the linear sum, and hits are visited in
  /// bucket order.
  double Estimate(const Box& query) const override;

  /// The original flat bucket scan, retained as the differential-test
  /// reference for the indexed Estimate.
  double EstimateLinear(const Box& query) const override;

  /// Static; ignores feedback.
  void Refine(const Box& query, const CardinalityOracle& oracle) override;

  size_t bucket_count() const override { return buckets_.size(); }

  /// Flattened bucket view for inspection and tests.
  struct BucketInfo {
    Box box;
    double frequency = 0.0;
  };
  std::vector<BucketInfo> Dump() const;

 private:
  struct BuildBucket {
    Box box;
    std::vector<size_t> rows;  // Tuples inside; dropped after construction.
    // Best split found for this bucket.
    double max_diff = -1.0;
    size_t split_dim = 0;
    double split_at = 0.0;
  };

  // Computes the bucket's MaxDiff split candidate over all dimensions.
  void ScoreBucket(const Dataset& data, BuildBucket* bucket) const;

  MHistConfig config_;
  std::vector<BucketInfo> buckets_;
  /// Spatial index over buckets_ (entry id = bucket position). Built once at
  /// construction; the histogram is static, so it never goes stale.
  FlatBoxIndex index_;
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_MHIST_H_

#include "histogram/equiwidth.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sthist {

EquiWidthHistogram::EquiWidthHistogram(const Dataset& data, const Box& domain,
                                       size_t cells_per_dim)
    : domain_(domain), cells_per_dim_(cells_per_dim) {
  STHIST_CHECK(cells_per_dim >= 1);
  STHIST_CHECK(data.dim() == domain.dim());
  size_t total_cells = 1;
  for (size_t d = 0; d < domain.dim(); ++d) {
    STHIST_CHECK_MSG(total_cells <= (1u << 26) / cells_per_dim,
                     "equi-width grid too large: %zu^%zu cells",
                     cells_per_dim, domain.dim());
    total_cells *= cells_per_dim;
  }
  counts_.assign(total_cells, 0.0);

  for (size_t i = 0; i < data.size(); ++i) {
    std::span<const double> p = data.row(i);
    size_t index = 0;
    bool inside = true;
    for (size_t d = 0; d < domain.dim(); ++d) {
      if (p[d] < domain.lo(d) || p[d] > domain.hi(d)) {
        inside = false;
        break;
      }
      index = index * cells_per_dim_ + CellIndex(d, p[d]);
    }
    if (inside) counts_[index] += 1.0;
  }
}

size_t EquiWidthHistogram::CellIndex(size_t d, double x) const {
  double extent = domain_.Extent(d);
  if (extent <= 0.0) return 0;
  double frac = (x - domain_.lo(d)) / extent;
  auto cell = static_cast<size_t>(frac * static_cast<double>(cells_per_dim_));
  return std::min(cell, cells_per_dim_ - 1);
}

double EquiWidthHistogram::Estimate(const Box& query) const {
  STHIST_CHECK(query.dim() == domain_.dim());
  const size_t dim = domain_.dim();

  // Per-dimension cell ranges touched by the query, then a product walk over
  // the touched sub-grid accumulating overlap fractions.
  std::vector<size_t> first(dim), last(dim);
  for (size_t d = 0; d < dim; ++d) {
    if (query.hi(d) < domain_.lo(d) || query.lo(d) > domain_.hi(d)) {
      return 0.0;
    }
    first[d] = CellIndex(d, std::max(query.lo(d), domain_.lo(d)));
    last[d] = CellIndex(d, std::min(query.hi(d), domain_.hi(d)));
  }

  std::vector<size_t> cell = first;
  double estimate = 0.0;
  while (true) {
    // Fraction of this cell covered by the query.
    double fraction = 1.0;
    size_t index = 0;
    for (size_t d = 0; d < dim; ++d) {
      double step = domain_.Extent(d) / static_cast<double>(cells_per_dim_);
      double cell_lo = domain_.lo(d) + step * static_cast<double>(cell[d]);
      double cell_hi = cell_lo + step;
      double overlap = std::min(cell_hi, query.hi(d)) -
                       std::max(cell_lo, query.lo(d));
      if (step > 0.0) fraction *= std::clamp(overlap / step, 0.0, 1.0);
      index = index * cells_per_dim_ + cell[d];
    }
    estimate += fraction * counts_[index];

    // Advance the odometer over the touched sub-grid.
    size_t d = dim - 1;
    while (true) {
      if (cell[d] < last[d]) {
        ++cell[d];
        break;
      }
      cell[d] = first[d];
      if (d == 0) return estimate;
      --d;
    }
  }
}

void EquiWidthHistogram::Refine(const Box& /*query*/,
                                const CardinalityOracle& /*oracle*/) {}

}  // namespace sthist

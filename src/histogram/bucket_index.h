#ifndef STHIST_HISTOGRAM_BUCKET_INDEX_H_
#define STHIST_HISTOGRAM_BUCKET_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/box.h"
#include "core/check.h"
#include "index/flat_index.h"

namespace sthist {

/// \file
/// Adapter between a bucket-tree histogram (STHoles, ISOMER) and the flat
/// SoA spatial index, plus the indexed replay of their shared estimation
/// recursion. The probe layer is FlatBoxIndex (DESIGN.md §15); the
/// maintenance rules below are unchanged from the pointer-based R-tree it
/// replaced (§10).
///
/// The bitwise-equivalence contract (DESIGN.md §10) rests on one IEEE-754
/// identity: for the non-negative terms these estimators produce, adding or
/// subtracting an exact 0.0 never changes a double. A bucket whose box does
/// not open-intersect the query contributes exactly 0.0 to every sum in the
/// linear path — Box::IntersectionVolume returns exact 0.0 for disjoint
/// boxes, and EstimateNode returns 0.0 at its top guard — so skipping those
/// buckets, while visiting the survivors in the same nesting and order,
/// reproduces the linear result bit for bit.

/// Relaxed-atomic cell for a bucket's cached region volume.
///
/// With COW snapshot publishing (DESIGN.md §17) a bucket node can belong to
/// several trees at once — the refiner's working tree and any number of
/// published snapshots share untouched subtrees. Each tree builds its own
/// index lazily, and every build writes the node's region volume; the values
/// are bitwise-identical (a shared node is immutable, so the same boxes feed
/// the same expression), but concurrent plain-double stores would still be a
/// data race. The relaxed atomic makes the same-value overlap benign without
/// adding any ordering cost to the probe path.
class RegionCache {
 public:
  RegionCache() = default;
  RegionCache(const RegionCache& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  RegionCache& operator=(const RegionCache& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Reference to one bucket as a child of its parent: the probe result
/// currency. `slot` is the index into `parent->children`.
template <typename BucketT>
struct BucketChildRef {
  BucketT* parent = nullptr;
  uint32_t slot = 0;
};

/// Probe result: all buckets open-intersecting a query, grouped by parent
/// and ordered by child slot within each group — i.e. exactly the
/// sub-sequence of each node's child loop the linear scan would have found
/// intersecting, in the order it would have found them.
template <typename BucketT>
class BucketGroups {
 public:
  /// The intersecting children of `parent`, in ascending slot order.
  std::span<const BucketChildRef<BucketT>> Of(const BucketT* parent) const {
    auto less_parent = [](const BucketChildRef<BucketT>& ref,
                          const BucketT* p) {
      return std::less<const BucketT*>()(ref.parent, p);
    };
    auto first = std::lower_bound(hits_.begin(), hits_.end(), parent,
                                  less_parent);
    auto last = first;
    while (last != hits_.end() && last->parent == parent) ++last;
    if (first == last) return {};
    return {&*first, static_cast<size_t>(last - first)};
  }

  bool empty() const { return hits_.empty(); }
  size_t size() const { return hits_.size(); }

 private:
  template <typename T>
  friend class BucketTreeIndex;

  std::vector<BucketChildRef<BucketT>> hits_;
  // Probe scratch, reused across calls so a steady-state probe through a
  // long-lived BucketGroups (the estimators hold one per thread) never
  // allocates.
  std::vector<uint64_t> scratch_ids_;
};

/// Spatial index over every non-root bucket of one histogram's bucket tree.
///
/// BucketT must expose `Box box`, `double frequency`, a vector of owning
/// child pointers named `children` (unique_ptr for exclusive trees,
/// shared_ptr for COW trees), and a writable `RegionCache cached_region` the
/// index refreshes with the bucket's region volume (box volume minus child
/// box volumes, clamped at 0 — computed by the same loop as the linear
/// RegionVolume, so the cached value is bitwise-identical to a fresh
/// computation).
///
/// Lifecycle: `Rebuild` after structural changes (or lazily before the next
/// probe); `AppendChild` is the incremental fast-path for a drill that only
/// appended a hole; anything that moves or removes buckets invalidates the
/// whole index (see the maintenance table in DESIGN.md §10). Probes are
/// const and safe to run concurrently once built.
template <typename BucketT>
class BucketTreeIndex {
 public:
  /// Rebuilds from scratch over the tree rooted at `root`, refreshing every
  /// bucket's cached region volume. O(n log n) in the bucket count.
  void Rebuild(BucketT* root) {
    refs_.clear();
    std::vector<FlatBoxIndex::Entry> entries;
    std::vector<BucketT*> pending = {root};
    while (!pending.empty()) {
      BucketT* bucket = pending.back();
      pending.pop_back();
      CacheRegion(bucket);
      for (uint32_t slot = 0;
           slot < static_cast<uint32_t>(bucket->children.size()); ++slot) {
        BucketT* child = bucket->children[slot].get();
        entries.push_back({child->box, refs_.size()});
        refs_.push_back({bucket, slot});
        pending.push_back(child);
      }
    }
    tree_.Bulk(std::move(entries));
  }

  /// Registers the child just appended to `parent->children` and refreshes
  /// the two affected region caches. Only valid when the index was built and
  /// the drill moved no other bucket.
  void AppendChild(BucketT* parent) {
    STHIST_DCHECK(!parent->children.empty());
    const uint32_t slot = static_cast<uint32_t>(parent->children.size()) - 1;
    BucketT* child = parent->children[slot].get();
    tree_.Insert(child->box, refs_.size());
    refs_.push_back({parent, slot});
    CacheRegion(parent);
    CacheRegion(child);
  }

  /// Fills `out` with the buckets open-intersecting `query`, grouped for
  /// BucketGroups::Of. Thread-safe against concurrent Probe calls. Returns
  /// the probe's work (flat-index nodes and entry blocks, for metrics).
  /// Allocation-free once `out`'s buffers have reached steady-state
  /// capacity — the hot read path reuses the scratch inside BucketGroups
  /// instead of allocating per query.
  FlatBoxIndex::ProbeStats Probe(const Box& query,
                                 BucketGroups<BucketT>* out) const {
    out->hits_.clear();
    std::vector<uint64_t>& ids = out->scratch_ids_;
    ids.clear();
    const FlatBoxIndex::ProbeStats stats =
        tree_.Probe(query, BoxOverlap::kOpenInterior, &ids);
    out->hits_.reserve(ids.size());
    for (uint64_t id : ids) out->hits_.push_back(refs_[id]);
    std::sort(out->hits_.begin(), out->hits_.end(),
              [](const BucketChildRef<BucketT>& a,
                 const BucketChildRef<BucketT>& b) {
                if (a.parent != b.parent) {
                  return std::less<const BucketT*>()(a.parent, b.parent);
                }
                return a.slot < b.slot;
              });
    return stats;
  }

  size_t size() const { return tree_.size(); }

 private:
  // Same expression, same order as the linear RegionVolume: box volume minus
  // each child's box volume in child order, clamped at zero.
  static void CacheRegion(BucketT* bucket) {
    double volume = bucket->box.Volume();
    for (const auto& child : bucket->children) {
      volume -= child->box.Volume();
    }
    bucket->cached_region.Set(std::max(volume, 0.0));
  }

  FlatBoxIndex tree_;
  // Entry id -> (parent, slot); rebuilt with the tree, appended by
  // AppendChild. Holds raw parent pointers, so any structural change that
  // moves buckets must invalidate the index before the next probe.
  std::vector<BucketChildRef<BucketT>> refs_;
};

/// Indexed replay of the STHoles/ISOMER estimation recursion (paper eq. 1)
/// over only the probed buckets. Bitwise-identical to the linear
/// EstimateNode: the region term uses the cached region volume (identical to
/// a fresh computation by construction), the region-intersection subtracts
/// only the children that actually intersect (the rest subtract exact 0.0 in
/// the linear path), and recursion descends only into intersecting children
/// (the rest return exact 0.0) in the same child order.
template <typename BucketT>
double EstimateIndexed(const BucketT& bucket, const Box& query,
                       const BucketGroups<BucketT>& groups,
                       double min_volume) {
  if (!bucket.box.Intersects(query)) return 0.0;
  const auto kids = groups.Of(&bucket);
  double est = 0.0;
  const double region = bucket.cached_region.Get();
  if (region > min_volume) {
    double overlap = bucket.box.IntersectionVolume(query);
    for (const BucketChildRef<BucketT>& ref : kids) {
      overlap -= bucket.children[ref.slot]->box.IntersectionVolume(query);
    }
    overlap = std::max(overlap, 0.0);
    est += bucket.frequency * (std::min(overlap, region) / region);
  } else if (query.Contains(bucket.box)) {
    est += bucket.frequency;
  }
  for (const BucketChildRef<BucketT>& ref : kids) {
    est += EstimateIndexed(*bucket.children[ref.slot], query, groups,
                           min_volume);
  }
  return est;
}

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_BUCKET_INDEX_H_

#include "histogram/stholes.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>

#include "core/binfmt.h"
#include "core/check.h"
#include "core/simd.h"
#include "histogram/bucket_index.h"
#include "histogram/robustness.h"
#include "obs/trace.h"

namespace sthist {

/// One node of the bucket tree. The bucket's region is `box` minus the boxes
/// of `children`; `frequency` counts tuples in the region only.
///
/// Children are shared_ptr handles because snapshots share subtrees with the
/// working tree (DESIGN.md §17): a node is mutated only after refinement has
/// established exclusive ownership of it (use_count == 1) via path copying,
/// so a shared node — reachable from any published snapshot — is immutable.
struct STHoles::Bucket {
  Box box;
  double frequency = 0.0;
  std::vector<std::shared_ptr<Bucket>> children;
  /// Region volume as of the last index (re)build; only read on the indexed
  /// estimation path, which guarantees it is fresh (bitwise equal to
  /// RegionVolume) whenever IndexState::ready holds. A relaxed-atomic cell
  /// because the working tree and each snapshot build their own index, and
  /// those builds write bitwise-identical values into shared nodes.
  RegionCache cached_region;
};

/// Spatial index over the bucket tree plus its build/validity state.
struct STHoles::IndexState {
  // Serializes builds; probes run lock-free once `ready` is observed true
  // (acquire) after the builder's release store.
  std::mutex mutex;
  BucketTreeIndex<Bucket> index;
  std::atomic<bool> ready{false};
  // Estimates served since the last structural change. The lazy build waits
  // for a few of them so a lone estimate inside an Estimate/Refine interleave
  // (learn-during-sim) doesn't pay an O(n log n) rebuild per query.
  std::atomic<uint32_t> estimates_since_change{0};
  // Estimate-path rejections; atomic because EstimateBatch runs Estimate
  // concurrently. Refine-path counters stay in stats_ (Refine is exclusive).
  std::atomic<size_t> rejected_estimates{0};
};

namespace {

// Relative tolerance for box-equality decisions during drilling.
constexpr double kBoxEps = 1e-9;

// Estimates that must repeat on an unchanged bucket tree before the lazy
// index build triggers (see IndexState::estimates_since_change).
constexpr uint32_t kIndexBuildAfter = 2;

}  // namespace

STHoles::STHoles(const Box& domain, double total_tuples,
                 const STHolesConfig& config)
    : config_(config) {
  STHIST_CHECK(domain.dim() > 0);
  STHIST_CHECK(domain.Volume() > 0);
  STHIST_CHECK(total_tuples >= 0);
  root_ = std::make_shared<Bucket>();
  root_->box = domain;
  root_->frequency = total_tuples;
  bucket_count_ = 1;
  index_ = std::make_unique<IndexState>();

  obs::MetricsRegistry* reg =
      config.metrics != nullptr ? config.metrics : obs::GlobalMetrics();
  metrics_.estimates = reg->counter("histogram.stholes.estimates");
  metrics_.refines = reg->counter("histogram.stholes.refines");
  metrics_.drills = reg->counter("histogram.stholes.drills");
  metrics_.merges = reg->counter("histogram.stholes.merges");
  metrics_.migrated_children =
      reg->counter("histogram.stholes.migrated_children");
  metrics_.buckets = reg->gauge("histogram.stholes.buckets");
  metrics_.refine_seconds = reg->latency("histogram.stholes.refine_seconds");
  metrics_.drill_seconds = reg->latency("histogram.stholes.drill_seconds");
  metrics_.merge_seconds = reg->latency("histogram.stholes.merge_seconds");
  metrics_.index_builds = reg->counter("index.bucket_tree.builds");
  metrics_.index_appends = reg->counter("index.bucket_tree.appends");
  metrics_.index_invalidations = reg->counter("index.bucket_tree.invalidations");
  metrics_.index_probes = reg->counter("index.bucket_tree.probes");
  metrics_.index_node_visits = reg->counter("index.bucket_tree.node_visits");
  metrics_.flat_probes = reg->counter("index.flat.probes");
  metrics_.flat_entry_blocks = reg->counter("index.flat.entry_blocks");
  metrics_.flat_simd_level = reg->gauge("index.flat.simd_level");
  metrics_.flat_simd_level.Set(static_cast<double>(simd::ActiveLevel()));
  metrics_.cow_copied = reg->counter("histogram.cow.copied_nodes");
  metrics_.cow_snapshots = reg->counter("histogram.cow.snapshots");
  metrics_.cow_shared = reg->gauge("histogram.cow.shared_nodes");
  metrics_.ring = reg->ring();
}

STHoles::~STHoles() = default;

const Box& STHoles::domain() const { return root_->box; }

double STHoles::MinVolume() const {
  return config_.min_volume_fraction * root_->box.Volume();
}

// ---------------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------------

double STHoles::RegionVolume(const Bucket& b) {
  double v = b.box.Volume();
  for (const auto& child : b.children) v -= child->box.Volume();
  return std::max(v, 0.0);
}

double STHoles::RegionIntersectionVolume(const Bucket& b, const Box& query) {
  double v = b.box.IntersectionVolume(query);
  for (const auto& child : b.children) {
    v -= child->box.IntersectionVolume(query);
  }
  return std::max(v, 0.0);
}

// ---------------------------------------------------------------------------
// Estimation (paper eq. 1)
// ---------------------------------------------------------------------------

double STHoles::Estimate(const Box& query) const {
  metrics_.estimates.Inc();
  if (!IsEstimableQuery(root_->box, query)) {
    index_->rejected_estimates.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  if (!index_->ready.load(std::memory_order_acquire)) {
    // Cold index: serve linearly until estimates repeat on this structure,
    // then build. Both paths return bitwise-identical values, so the policy
    // is observable only as wall-clock time.
    const uint32_t repeats = index_->estimates_since_change.fetch_add(
                                 1, std::memory_order_relaxed) +
                             1;
    if (repeats < kIndexBuildAfter) return EstimateNode(*root_, query);
    EnsureIndex();
  }
  // Thread-local scratch: probe buffers reach steady-state capacity after a
  // few queries and the hottest read path in the system stops allocating
  // (asserted by tests/flat_index_test.cc via an operator-new hook).
  static thread_local BucketGroups<Bucket> groups;
  const FlatBoxIndex::ProbeStats stats = index_->index.Probe(query, &groups);
  metrics_.index_probes.Inc();
  metrics_.index_node_visits.Inc(stats.node_visits);
  metrics_.flat_probes.Inc();
  metrics_.flat_entry_blocks.Inc(stats.entry_blocks);
  return EstimateIndexed(*root_, query, groups, MinVolume());
}

double STHoles::EstimateLinear(const Box& query) const {
  if (!IsEstimableQuery(root_->box, query)) {
    index_->rejected_estimates.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  return EstimateNode(*root_, query);
}

void STHoles::EnsureIndex() const {
  std::lock_guard<std::mutex> lock(index_->mutex);
  if (index_->ready.load(std::memory_order_relaxed)) return;
  index_->index.Rebuild(root_.get());
  metrics_.index_builds.Inc();
  index_->ready.store(true, std::memory_order_release);
}

void STHoles::InvalidateIndex() {
  if (index_->ready.load(std::memory_order_relaxed)) {
    metrics_.index_invalidations.Inc();
  }
  index_->ready.store(false, std::memory_order_relaxed);
  index_->estimates_since_change.store(0, std::memory_order_relaxed);
}

RobustnessStats STHoles::robustness() const {
  RobustnessStats stats = stats_;
  stats.rejected_queries +=
      index_->rejected_estimates.load(std::memory_order_relaxed);
  return stats;
}

double STHoles::EstimateNode(const Bucket& b, const Box& query) const {
  if (!b.box.Intersects(query)) return 0.0;
  double est = 0.0;
  double region = RegionVolume(b);
  if (region > MinVolume()) {
    double overlap = std::min(RegionIntersectionVolume(b, query), region);
    est += b.frequency * (overlap / region);
  } else if (query.Contains(b.box)) {
    // Degenerate region fully swallowed by the query: all its mass matches.
    est += b.frequency;
  }
  for (const auto& child : b.children) {
    est += EstimateNode(*child, query);
  }
  return est;
}

double STHoles::TotalFrequency() const {
  double total = 0.0;
  std::vector<const Bucket*> stack = {root_.get()};
  while (!stack.empty()) {
    const Bucket* b = stack.back();
    stack.pop_back();
    total += b->frequency;
    for (const auto& child : b->children) stack.push_back(child.get());
  }
  return total;
}

// ---------------------------------------------------------------------------
// Refinement: drilling candidate holes (paper §2, STHoles §4.2)
// ---------------------------------------------------------------------------

void STHoles::Refine(const Box& query, const CardinalityOracle& oracle) {
  metrics_.refines.Inc();
  obs::TraceSpan span("stholes.refine", metrics_.refine_seconds,
                      metrics_.ring);
  // Query boxes and oracle counts are untrusted: repair what is repairable,
  // drop what is not, and never abort.
  std::optional<Box> sanitized =
      SanitizeFeedbackQuery(root_->box, query, &stats_);
  if (!sanitized.has_value()) return;
  Box q = std::move(*sanitized);
  if (q.Volume() <= MinVolume()) {
    ++stats_.rejected_queries;
    return;
  }
  SanitizingOracle safe(oracle, &stats_);

  // Snapshot the buckets the query intersects before mutating the tree: holes
  // drilled by this very query must not be drilled into again. The collection
  // descent also re-establishes exclusive ownership of exactly those buckets
  // (the touched spine), so everything drilled or frequency-corrected below
  // is guaranteed unshared from any published snapshot.
  std::vector<Bucket*> intersecting;
  CollectIntersecting(EnsureExclusiveRoot(), q, &intersecting);

  for (Bucket* b : intersecting) {
    Box candidate = ShrinkCandidate(*b, q);
    if (candidate.Volume() <= MinVolume()) continue;
    DrillHole(b, candidate, safe);
  }

  EnforceBudget();
  metrics_.buckets.Set(static_cast<double>(bucket_count()));
}

void STHoles::CollectIntersecting(Bucket* b, const Box& query,
                                  std::vector<Bucket*>* out) {
  // Precondition: b is exclusively owned (the caller unshared it). Children
  // are unshared right before descending, and only the intersecting ones —
  // the intersecting set is upward-closed (a child's box nests inside its
  // parent's), so this copies exactly the touched spine and nothing else.
  out->push_back(b);
  for (size_t slot = 0; slot < b->children.size(); ++slot) {
    if (b->children[slot]->box.IntersectionVolume(query) <= 0.0) continue;
    CollectIntersecting(EnsureExclusiveChild(b, slot), query, out);
  }
}

Box STHoles::ShrinkCandidate(const Bucket& b, const Box& query) const {
  Box c = b.box.Intersection(query);
  const size_t dim = c.dim();

  while (true) {
    // A child that swallows the whole candidate means the queried region
    // belongs to that hole, not to b: nothing to drill here.
    const Bucket* participant = nullptr;
    for (const auto& child : b.children) {
      if (!child->box.Intersects(c)) continue;
      if (child->box.Contains(c)) {
        return Box::Cube(dim, c.lo(0), c.lo(0));  // Degenerate: volume 0.
      }
      if (!c.Contains(child->box)) {
        participant = child.get();
        break;
      }
    }
    if (participant == nullptr) return c;

    // Exclude some participant along the single dimension that preserves the
    // most candidate volume (the STHoles greedy shrink). Re-scan all
    // participants for the globally best cut.
    double best_volume = -1.0;
    size_t best_dim = 0;
    bool best_cut_low = false;  // true: raise c.lo, false: lower c.hi.
    double best_value = 0.0;
    for (const auto& child : b.children) {
      if (!child->box.Intersects(c) || c.Contains(child->box) ||
          child->box.Contains(c)) {
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        // Raise the low edge to the participant's high edge.
        if (child->box.hi(d) > c.lo(d) && child->box.hi(d) < c.hi(d)) {
          double v = c.Volume() / c.Extent(d) * (c.hi(d) - child->box.hi(d));
          if (v > best_volume) {
            best_volume = v;
            best_dim = d;
            best_cut_low = true;
            best_value = child->box.hi(d);
          }
        }
        // Lower the high edge to the participant's low edge.
        if (child->box.lo(d) < c.hi(d) && child->box.lo(d) > c.lo(d)) {
          double v = c.Volume() / c.Extent(d) * (child->box.lo(d) - c.lo(d));
          if (v > best_volume) {
            best_volume = v;
            best_dim = d;
            best_cut_low = false;
            best_value = child->box.lo(d);
          }
        }
      }
    }
    if (best_volume < 0.0) {
      // No admissible cut (participants cover the candidate's extent in every
      // cuttable dimension). Give up on this bucket.
      return Box::Cube(dim, c.lo(0), c.lo(0));
    }
    if (best_cut_low) {
      c.set_lo(best_dim, best_value);
    } else {
      c.set_hi(best_dim, best_value);
    }
  }
}

void STHoles::SetExactFrequency(Bucket* b, const CardinalityOracle& oracle) {
  double f = oracle.Count(b->box);
  for (const auto& child : b->children) {
    f -= oracle.Count(child->box);
  }
  if (!std::isfinite(f)) {
    ++stats_.repaired_buckets;
    f = 0.0;
  }
  b->frequency = std::max(f, 0.0);
}

void STHoles::DrillHole(Bucket* b, const Box& candidate,
                        const CardinalityOracle& oracle) {
  // Times the whole call, including the frequency-correction shortcuts; the
  // drills counter moves only when a hole bucket is actually created.
  obs::ScopedTimer drill_timer(metrics_.drill_seconds);
  // Coordinate tolerance for box equality, relative to the domain scale.
  double max_extent = 0.0;
  for (size_t d = 0; d < root_->box.dim(); ++d) {
    max_extent = std::max(max_extent, root_->box.Extent(d));
  }
  const double eps = kBoxEps * (1.0 + max_extent);

  if (candidate.ApproxEquals(b->box, eps)) {
    // The query feedback covers b entirely: correct its frequency in place.
    SetExactFrequency(b, oracle);
    return;
  }

  // Children fully contained in the candidate migrate into the new hole.
  // A child whose box *is* the candidate just gets its frequency corrected —
  // unshared explicitly, because the tolerance can match a child the
  // collection descent skipped (zero-volume intersection under eps).
  for (size_t slot = 0; slot < b->children.size(); ++slot) {
    if (b->children[slot]->box.ApproxEquals(candidate, eps)) {
      SetExactFrequency(EnsureExclusiveChild(b, slot), oracle);
      return;
    }
  }

  auto hole = std::make_shared<Bucket>();
  hole->box = candidate;

  // Moving child *handles* between the exclusively-owned b and the fresh
  // hole never mutates the children themselves, so migrated subtrees may
  // stay shared with snapshots.
  double moved_mass = 0.0;
  std::vector<std::shared_ptr<Bucket>> kept;
  kept.reserve(b->children.size());
  for (auto& child : b->children) {
    if (candidate.Contains(child->box)) {
      moved_mass += oracle.Count(child->box);
      hole->children.push_back(std::move(child));
    } else {
      kept.push_back(std::move(child));
    }
  }
  b->children = std::move(kept);

  hole->frequency = std::max(oracle.Count(candidate) - moved_mass, 0.0);
  if (!std::isfinite(hole->frequency)) {
    ++stats_.repaired_buckets;
    hole->frequency = 0.0;
  }
  b->frequency = std::max(b->frequency - hole->frequency, 0.0);
  const size_t migrated_children = hole->children.size();
  b->children.push_back(std::move(hole));
  ++bucket_count_;
  ++fresh_since_snapshot_;
  metrics_.drills.Inc();
  metrics_.migrated_children.Inc(migrated_children);

  if (migrated_children > 0) {
    // Children moved under the hole: slots shifted, the index is stale.
    InvalidateIndex();
  } else if (index_->ready.load(std::memory_order_relaxed)) {
    // Pure append: existing slots are untouched, so the index follows
    // incrementally instead of rebuilding.
    index_->index.AppendChild(b);
    metrics_.index_appends.Inc();
  } else {
    index_->estimates_since_change.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Merging (paper §2 "Removing buckets", STHoles §4.3)
// ---------------------------------------------------------------------------

void STHoles::EnforceBudget() {
  while (bucket_count() > config_.max_buckets) {
    MergeCandidate merge = FindBestMerge();
    if (merge.parent == nullptr) {
      // Budget exhaustion with nothing mergeable: keep the extra buckets
      // rather than aborting, and make the degradation observable.
      ++stats_.repaired_buckets;
      return;
    }
    // The merge mutates the parent node (frequency, children list), which
    // FindBestMerge may have picked outside the spine this Refine already
    // unshared. Re-establish exclusive ownership down to it first; the
    // children handles survive a parent copy, so merge.first/second stay
    // valid either way.
    merge.parent = UnsharePathTo(merge.parent);
    ApplyMerge(merge);
  }
}

STHoles::MergeCandidate STHoles::FindBestMerge() const {
  MergeCandidate best;
  best.penalty = std::numeric_limits<double>::infinity();

  // Sibling merges are ranked by a cheap penalty proxy first (the enclosure
  // without the grow-to-swallow-participants step), and only the most
  // promising pairs get the exact evaluation. This turns the O(k^3) exact
  // scan over k siblings into O(k^2) + a constant number of exact checks,
  // which dominates refinement cost at large bucket budgets.
  struct CheapSibling {
    Bucket* parent;
    Bucket* b1;
    Bucket* b2;
    double cheap_penalty;
  };
  std::vector<CheapSibling> sibling_candidates;

  std::vector<Bucket*> stack = {root_.get()};
  std::vector<double> child_region;  // Scratch: per-child region volumes.
  while (!stack.empty()) {
    Bucket* parent = stack.back();
    stack.pop_back();
    const double vp = RegionVolume(*parent);
    const size_t k = parent->children.size();

    child_region.resize(k);
    for (size_t i = 0; i < k; ++i) {
      Bucket* child = parent->children[i].get();
      stack.push_back(child);
      child_region[i] = RegionVolume(*child);

      // Parent-child merge (bp, bc) -> bn with box(bn) = box(bp); the exact
      // penalty is already O(1) given the region volumes.
      double vn = vp + child_region[i];
      double penalty = 0.0;
      if (vn > 0.0) {
        double dn = (parent->frequency + child->frequency) / vn;
        penalty = std::abs(parent->frequency - dn * vp) +
                  std::abs(child->frequency - dn * child_region[i]);
      }
      if (penalty < best.penalty) {
        best.parent = parent;
        best.first = child;
        best.second = nullptr;
        best.penalty = penalty;
      }
    }

    for (size_t i = 0; i < k; ++i) {
      Bucket* b1 = parent->children[i].get();
      for (size_t j = i + 1; j < k; ++j) {
        Bucket* b2 = parent->children[j].get();
        Box enc = Box::Enclosure(b1->box, b2->box);
        double vold = std::max(
            enc.Volume() - b1->box.Volume() - b2->box.Volume(), 0.0);
        double from_parent =
            vp > 0.0 ? parent->frequency * std::min(vold / vp, 1.0) : 0.0;
        double fn = b1->frequency + b2->frequency + from_parent;
        double vn = child_region[i] + child_region[j] + vold;
        double penalty = 0.0;
        if (vn > 0.0) {
          double dn = fn / vn;
          penalty = std::abs(b1->frequency - dn * child_region[i]) +
                    std::abs(b2->frequency - dn * child_region[j]) +
                    std::abs(from_parent - dn * vold);
        }
        sibling_candidates.push_back({parent, b1, b2, penalty});
      }
    }
  }

  // Exact evaluation of the most promising sibling pairs.
  constexpr size_t kExactEvaluations = 32;
  size_t exact = std::min(kExactEvaluations, sibling_candidates.size());
  std::partial_sort(sibling_candidates.begin(),
                    sibling_candidates.begin() + exact,
                    sibling_candidates.end(),
                    [](const CheapSibling& a, const CheapSibling& b) {
                      return a.cheap_penalty < b.cheap_penalty;
                    });
  for (size_t i = 0; i < exact; ++i) {
    MergeCandidate sibling;
    ComputeSiblingMerge(sibling_candidates[i].parent,
                        sibling_candidates[i].b1, sibling_candidates[i].b2,
                        &sibling);
    if (sibling.penalty < best.penalty) best = sibling;
  }
  return best;
}

void STHoles::ComputeSiblingMerge(Bucket* parent, Bucket* b1, Bucket* b2,
                                  MergeCandidate* out) const {
  // Grow the enclosure until it cleanly contains or excludes every sibling
  // (paper Figure 3).
  Box bn = Box::Enclosure(b1->box, b2->box);
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& sibling : parent->children) {
      Bucket* s = sibling.get();
      if (s == b1 || s == b2) continue;
      if (bn.Intersects(s->box) && !bn.Contains(s->box)) {
        bn.ExtendToContain(s->box);
        grew = true;
      }
    }
  }

  // vold: the slice of the parent's own region swallowed by bn.
  double enclosed_boxes = b1->box.Volume() + b2->box.Volume();
  for (const auto& sibling : parent->children) {
    Bucket* s = sibling.get();
    if (s == b1 || s == b2) continue;
    if (bn.Contains(s->box)) enclosed_boxes += s->box.Volume();
  }
  double vold = std::max(bn.Volume() - enclosed_boxes, 0.0);

  double vp = RegionVolume(*parent);
  double from_parent =
      vp > 0.0 ? parent->frequency * std::min(vold / vp, 1.0) : 0.0;
  double v1 = RegionVolume(*b1);
  double v2 = RegionVolume(*b2);
  double fn = b1->frequency + b2->frequency + from_parent;
  double vn = v1 + v2 + vold;

  double penalty = 0.0;
  if (vn > 0.0) {
    double dn = fn / vn;
    penalty = std::abs(b1->frequency - dn * v1) +
              std::abs(b2->frequency - dn * v2) +
              std::abs(from_parent - dn * vold);
  }

  out->parent = parent;
  out->first = b1;
  out->second = b2;
  out->penalty = penalty;
  out->merged_box = bn;
}

void STHoles::ApplyMerge(const MergeCandidate& merge) {
  obs::ScopedTimer merge_timer(metrics_.merge_seconds);
  metrics_.merges.Inc();
  // Every merge moves buckets between children lists; the index's
  // (parent, slot) references are stale either way.
  InvalidateIndex();
  Bucket* parent = merge.parent;

  if (merge.second == nullptr) {
    // Parent-child: the child's mass and holes float up into the parent.
    // The dying child may still be shared with a snapshot, so its grandchild
    // handles are *copied* up, never moved out — moving would gut a node a
    // snapshot is still reading.
    Bucket* child = merge.first;
    parent->frequency += child->frequency;
    auto it = std::find_if(
        parent->children.begin(), parent->children.end(),
        [child](const std::shared_ptr<Bucket>& b) { return b.get() == child; });
    STHIST_CHECK(it != parent->children.end());
    std::shared_ptr<Bucket> owned = *it;  // Keep alive across the erase.
    parent->children.erase(it);
    for (const auto& grandchild : owned->children) {
      parent->children.push_back(grandchild);
    }
    --bucket_count_;
    return;
  }

  // Sibling-sibling.
  const Box& bn = merge.merged_box;
  double vp = RegionVolume(*parent);
  double enclosed_boxes = 0.0;
  for (const auto& sibling : parent->children) {
    if (bn.Contains(sibling->box)) enclosed_boxes += sibling->box.Volume();
  }
  double vold = std::max(bn.Volume() - enclosed_boxes, 0.0);
  double from_parent =
      vp > 0.0 ? parent->frequency * std::min(vold / vp, 1.0) : 0.0;

  auto merged = std::make_shared<Bucket>();
  merged->box = bn;
  merged->frequency =
      merge.first->frequency + merge.second->frequency + from_parent;
  parent->frequency = std::max(parent->frequency - from_parent, 0.0);

  std::vector<std::shared_ptr<Bucket>> kept;
  kept.reserve(parent->children.size());
  for (auto& sibling : parent->children) {
    Bucket* s = sibling.get();
    if (s == merge.first || s == merge.second) {
      // Their holes live on inside the merged bucket — grandchild handles
      // are copied, not moved: the dying siblings may be shared with a
      // snapshot that is still reading them.
      for (const auto& grandchild : s->children) {
        merged->children.push_back(grandchild);
      }
    } else if (bn.Contains(s->box)) {
      // Participants become children of the merged bucket, intact; only the
      // handle moves (from the exclusively-owned parent), never the node.
      merged->children.push_back(std::move(sibling));
    } else {
      kept.push_back(std::move(sibling));
    }
  }
  parent->children = std::move(kept);
  parent->children.push_back(std::move(merged));
  ++fresh_since_snapshot_;
  --bucket_count_;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::vector<STHoles::BucketInfo> STHoles::Dump() const {
  std::vector<BucketInfo> out;
  out.reserve(bucket_count_);
  // Pre-order with explicit depth tracking.
  std::vector<std::pair<const Bucket*, size_t>> stack = {{root_.get(), 0}};
  while (!stack.empty()) {
    auto [b, depth] = stack.back();
    stack.pop_back();
    BucketInfo info;
    info.box = b->box;
    info.frequency = b->frequency;
    info.depth = depth;
    info.children = b->children.size();
    out.push_back(std::move(info));
    for (auto it = b->children.rbegin(); it != b->children.rend(); ++it) {
      stack.push_back({it->get(), depth + 1});
    }
  }
  return out;
}

std::shared_ptr<STHoles::Bucket> STHoles::CopySubtree(const Bucket& b) {
  auto copy = std::make_shared<Bucket>();
  copy->box = b.box;
  copy->frequency = b.frequency;
  copy->children.reserve(b.children.size());
  for (const auto& child : b.children) {
    copy->children.push_back(CopySubtree(*child));
  }
  return copy;
}

std::unique_ptr<Histogram> STHoles::Clone() const {
  auto clone = std::unique_ptr<STHoles>(
      new STHoles(root_->box, root_->frequency, config_));
  clone->root_ = CopySubtree(*root_);
  clone->bucket_count_ = bucket_count_;
  // Fold the estimate-path rejections (held as an atomic in IndexState) into
  // the clone's plain counters so its robustness() totals match the source's
  // at the moment of cloning; the clone's own IndexState starts at zero.
  clone->stats_ = robustness();
  return clone;
}

std::shared_ptr<const Histogram> STHoles::Snapshot() const {
  // Shares the whole tree: the snapshot holds a second reference to root_,
  // and refinement of this histogram path-copies away from every node it
  // touches before mutating (CollectIntersecting / UnsharePathTo), so what
  // the snapshot answers is frozen at this moment. The snapshot itself never
  // refines — it is published as const — so its tree never diverges.
  auto snap = std::unique_ptr<STHoles>(
      new STHoles(root_->box, root_->frequency, config_));
  snap->root_ = root_;
  snap->bucket_count_ = bucket_count_;
  snap->stats_ = robustness();
  metrics_.cow_snapshots.Inc();
  // Everything materialized since the previous snapshot (path copies plus
  // drilled/merged buckets) is what this snapshot does NOT share with it.
  const size_t fresh = std::min(fresh_since_snapshot_, bucket_count_);
  metrics_.cow_shared.Set(static_cast<double>(bucket_count_ - fresh));
  fresh_since_snapshot_ = 0;
  return std::shared_ptr<const Histogram>(std::move(snap));
}

// ---------------------------------------------------------------------------
// Copy-on-write plumbing (DESIGN.md §17)
// ---------------------------------------------------------------------------

std::shared_ptr<STHoles::Bucket> STHoles::ShallowCopy(const Bucket& b) {
  auto copy = std::make_shared<Bucket>();
  copy->box = b.box;
  copy->frequency = b.frequency;
  copy->children = b.children;  // Handle copies: child subtrees stay shared.
  copy->cached_region = b.cached_region;
  return copy;
}

STHoles::Bucket* STHoles::EnsureExclusiveRoot() {
  if (root_.use_count() > 1) {
    root_ = ShallowCopy(*root_);
    ++cow_copied_total_;
    ++fresh_since_snapshot_;
    metrics_.cow_copied.Inc();
    // The index holds raw pointers into the superseded node.
    InvalidateIndex();
  }
  return root_.get();
}

STHoles::Bucket* STHoles::EnsureExclusiveChild(Bucket* parent, size_t slot) {
  // An exclusively-owned parent does NOT imply exclusively-owned children: a
  // snapshot's copied ancestor still holds handles to the same child nodes,
  // so the reference count is checked at every level of the descent.
  std::shared_ptr<Bucket>& child = parent->children[slot];
  if (child.use_count() > 1) {
    child = ShallowCopy(*child);
    ++cow_copied_total_;
    ++fresh_since_snapshot_;
    metrics_.cow_copied.Inc();
    InvalidateIndex();
  }
  return child.get();
}

bool STHoles::FindPath(const Bucket* node, const Bucket* target,
                       std::vector<size_t>* slots) {
  if (node == target) return true;
  for (size_t slot = 0; slot < node->children.size(); ++slot) {
    slots->push_back(slot);
    if (FindPath(node->children[slot].get(), target, slots)) return true;
    slots->pop_back();
  }
  return false;
}

STHoles::Bucket* STHoles::UnsharePathTo(Bucket* target) {
  std::vector<size_t> slots;
  STHIST_CHECK_MSG(FindPath(root_.get(), target, &slots),
                   "UnsharePathTo target is not a node of this tree");
  Bucket* node = EnsureExclusiveRoot();
  for (size_t slot : slots) node = EnsureExclusiveChild(node, slot);
  return node;
}

size_t STHoles::SharedNodeCount() const {
  // Sharing is transitive: every node below a multiply-referenced handle is
  // physically shared with some snapshot even though its own handle count
  // is 1 (only the subtree root's handle is duplicated by a path copy).
  size_t shared = 0;
  std::vector<std::pair<const Bucket*, bool>> stack;
  stack.emplace_back(root_.get(), root_.use_count() > 1);
  while (!stack.empty()) {
    const auto [b, inherited] = stack.back();
    stack.pop_back();
    if (inherited) ++shared;
    for (const auto& child : b->children) {
      stack.emplace_back(child.get(), inherited || child.use_count() > 1);
    }
  }
  return shared;
}

std::string STHoles::Serialize() const {
  std::string out = "STHoles v1 dim=" + std::to_string(root_->box.dim()) +
                    " buckets=" + std::to_string(bucket_count_) + "\n";
  char buf[64];
  std::vector<std::pair<const Bucket*, size_t>> stack = {{root_.get(), 0}};
  while (!stack.empty()) {
    auto [b, depth] = stack.back();
    stack.pop_back();
    out += std::to_string(depth);
    for (size_t d = 0; d < b->box.dim(); ++d) {
      std::snprintf(buf, sizeof(buf), " %.17g %.17g", b->box.lo(d),
                    b->box.hi(d));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), " %.17g\n", b->frequency);
    out += buf;
    for (auto it = b->children.rbegin(); it != b->children.rend(); ++it) {
      stack.push_back({it->get(), depth + 1});
    }
  }
  return out;
}

std::unique_ptr<STHoles> STHoles::Deserialize(const std::string& text,
                                              const STHolesConfig& config) {
  size_t dim = 0, buckets = 0;
  int header_len = 0;
  if (std::sscanf(text.c_str(), "STHoles v1 dim=%zu buckets=%zu\n%n", &dim,
                  &buckets, &header_len) != 2 ||
      dim == 0 || buckets == 0) {
    return nullptr;
  }
  // Size sanity before any allocation scales with the header's claims: every
  // bucket line carries at least 2*dim numbers separated by spaces (>= 4
  // characters per dimension) plus a depth, so headers promising more than
  // the text could possibly hold are corrupt — reject them instead of
  // attempting a multi-gigabyte reserve.
  if (dim > text.size() / 4 || buckets > text.size()) return nullptr;

  const char* cursor = text.c_str() + header_len;
  std::unique_ptr<STHoles> hist;
  std::vector<Bucket*> path;  // path[i] = last bucket seen at depth i.

  for (size_t line = 0; line < buckets; ++line) {
    int consumed = 0;
    size_t depth = 0;
    if (std::sscanf(cursor, "%zu%n", &depth, &consumed) != 1) return nullptr;
    cursor += consumed;

    std::vector<double> lo(dim), hi(dim);
    for (size_t d = 0; d < dim; ++d) {
      if (std::sscanf(cursor, "%lf %lf%n", &lo[d], &hi[d], &consumed) != 2) {
        return nullptr;
      }
      // Explicit finiteness checks: scanf happily parses "nan" and "inf",
      // and NaN slips through ordering comparisons (NaN > x is false), so
      // `lo > hi` alone would admit poisoned bounds.
      if (!std::isfinite(lo[d]) || !std::isfinite(hi[d]) || lo[d] > hi[d]) {
        return nullptr;
      }
      cursor += consumed;
    }
    double frequency = 0.0;
    if (std::sscanf(cursor, "%lf%n", &frequency, &consumed) != 1) {
      return nullptr;
    }
    cursor += consumed;
    if (!std::isfinite(frequency) || frequency < 0.0) return nullptr;

    if (line == 0) {
      if (depth != 0) return nullptr;
      Box domain(std::move(lo), std::move(hi));
      if (domain.Volume() <= 0.0) return nullptr;
      hist = std::unique_ptr<STHoles>(
          new STHoles(domain, frequency, config));
      path = {hist->root_.get()};
      continue;
    }
    if (depth == 0 || depth > path.size()) return nullptr;

    auto bucket = std::make_shared<Bucket>();
    bucket->box = Box(std::move(lo), std::move(hi));
    bucket->frequency = frequency;
    Bucket* parent = path[depth - 1];
    if (!parent->box.Contains(bucket->box)) return nullptr;
    for (const auto& sibling : parent->children) {
      if (sibling->box.Intersects(bucket->box)) return nullptr;
    }
    Bucket* raw = bucket.get();
    parent->children.push_back(std::move(bucket));
    ++hist->bucket_count_;
    path.resize(depth);
    path.push_back(raw);
  }
  // The header's bucket count is the whole payload; anything besides
  // trailing whitespace after the last bucket line is corruption.
  cursor += std::strspn(cursor, " \t\r\n");
  if (*cursor != '\0') return nullptr;
  return hist;
}

// ---------------------------------------------------------------------------
// Binary snapshot format (DESIGN.md §17)
// ---------------------------------------------------------------------------
//
// Layout (all integers little-endian, doubles as raw IEEE-754 bit patterns):
//   header (24 bytes): magic "STHB" | u32 version | u64 payload_size
//                      | u64 FNV-1a checksum of the payload
//   payload: u32 dim | u64 bucket_count
//            | bucket_count pre-order records of
//              u32 depth | dim x (f64 lo, f64 hi) | f64 frequency
// Records are fixed-size given dim, so payload_size is an exact function of
// (dim, bucket_count) and any truncation or padding is a framing error.

namespace {
constexpr char kBinaryMagic[] = "STHB";
}  // namespace

std::string STHoles::SerializeBinary() const {
  using binfmt::AppendF64;
  using binfmt::AppendU32;
  using binfmt::AppendU64;
  const size_t dim = root_->box.dim();
  std::string payload;
  payload.reserve(12 + bucket_count_ * (4 + dim * 16 + 8));
  AppendU32(&payload, static_cast<uint32_t>(dim));
  AppendU64(&payload, bucket_count_);
  std::vector<std::pair<const Bucket*, uint32_t>> stack = {{root_.get(), 0}};
  while (!stack.empty()) {
    auto [b, depth] = stack.back();
    stack.pop_back();
    AppendU32(&payload, depth);
    for (size_t d = 0; d < dim; ++d) {
      AppendF64(&payload, b->box.lo(d));
      AppendF64(&payload, b->box.hi(d));
    }
    AppendF64(&payload, b->frequency);
    for (auto it = b->children.rbegin(); it != b->children.rend(); ++it) {
      stack.push_back({it->get(), depth + 1});
    }
  }
  return binfmt::Frame(kBinaryMagic, kBinaryFormatVersion, payload);
}

StatusOr<std::unique_ptr<STHoles>> STHoles::DeserializeBinary(
    std::string_view bytes, const STHolesConfig& config) {
  using binfmt::ReadF64;
  using binfmt::ReadU32;
  using binfmt::ReadU64;
  // Framing: every check fails closed before any payload byte is trusted.
  StatusOr<std::string_view> framed =
      binfmt::Unframe(kBinaryMagic, kBinaryFormatVersion, bytes);
  if (!framed.ok()) return framed.status();
  const std::string_view payload = *framed;
  const uint64_t payload_size = payload.size();
  if (payload_size < 12) {
    return Status::InvalidArgument("snapshot payload shorter than its "
                                   "dim/bucket-count preamble");
  }
  const uint32_t dim = ReadU32(payload.data());
  const uint64_t buckets = ReadU64(payload.data() + 4);
  if (dim == 0 || buckets == 0) {
    return Status::InvalidArgument(
        "snapshot declares zero dimensions or zero buckets");
  }
  // Records are fixed-size, so the payload length must match exactly; this
  // also rejects headers whose claimed counts could not possibly fit,
  // before anything allocates proportionally to them. record <= 2^36 + 12,
  // and buckets is bounded by payload_size / record before the multiply, so
  // nothing here can overflow.
  const uint64_t record = 4ull + 16ull * dim + 8ull;
  if (buckets > (payload_size - 12) / record ||
      12 + buckets * record != payload_size) {
    return StatusF(StatusCode::kInvalidArgument,
                   "snapshot payload size inconsistent with dim=%u "
                   "buckets=%llu",
                   dim, static_cast<unsigned long long>(buckets));
  }

  const char* cursor = payload.data() + 12;
  std::unique_ptr<STHoles> hist;
  std::vector<Bucket*> path;  // path[i] = last bucket seen at depth i.
  for (uint64_t line = 0; line < buckets; ++line) {
    const uint32_t depth = ReadU32(cursor);
    cursor += 4;
    std::vector<double> lo(dim), hi(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      lo[d] = ReadF64(cursor);
      hi[d] = ReadF64(cursor + 8);
      cursor += 16;
      if (!std::isfinite(lo[d]) || !std::isfinite(hi[d]) || lo[d] > hi[d]) {
        return StatusF(StatusCode::kInvalidArgument,
                       "snapshot bucket %llu has a non-finite or inverted "
                       "bound in dimension %u",
                       static_cast<unsigned long long>(line), d);
      }
    }
    const double frequency = ReadF64(cursor);
    cursor += 8;
    if (!std::isfinite(frequency) || frequency < 0.0) {
      return StatusF(StatusCode::kInvalidArgument,
                     "snapshot bucket %llu has a non-finite or negative "
                     "frequency",
                     static_cast<unsigned long long>(line));
    }

    if (line == 0) {
      if (depth != 0) {
        return Status::InvalidArgument("snapshot root bucket is not depth 0");
      }
      Box domain(std::move(lo), std::move(hi));
      if (domain.Volume() <= 0.0) {
        return Status::InvalidArgument("snapshot domain has zero volume");
      }
      hist = std::unique_ptr<STHoles>(new STHoles(domain, frequency, config));
      path = {hist->root_.get()};
      continue;
    }
    if (depth == 0 || depth > path.size()) {
      return StatusF(StatusCode::kInvalidArgument,
                     "snapshot bucket %llu has out-of-order depth %u",
                     static_cast<unsigned long long>(line), depth);
    }
    auto bucket = std::make_shared<Bucket>();
    bucket->box = Box(std::move(lo), std::move(hi));
    bucket->frequency = frequency;
    Bucket* parent = path[depth - 1];
    if (!parent->box.Contains(bucket->box)) {
      return StatusF(StatusCode::kInvalidArgument,
                     "snapshot bucket %llu escapes its parent",
                     static_cast<unsigned long long>(line));
    }
    for (const auto& sibling : parent->children) {
      if (sibling->box.Intersects(bucket->box)) {
        return StatusF(StatusCode::kInvalidArgument,
                       "snapshot bucket %llu overlaps a sibling",
                       static_cast<unsigned long long>(line));
      }
    }
    Bucket* raw = bucket.get();
    parent->children.push_back(std::move(bucket));
    ++hist->bucket_count_;
    path.resize(depth);
    path.push_back(raw);
  }
  // The exact-size check above means the cursor lands precisely on the end;
  // nothing can trail.
  STHIST_DCHECK(cursor == payload.data() + payload.size());
  return hist;
}

void STHoles::CheckInvariants() const {
  size_t counted = 0;
  std::vector<const Bucket*> stack = {root_.get()};
  while (!stack.empty()) {
    const Bucket* b = stack.back();
    stack.pop_back();
    ++counted;
    CheckNode(*b);
    for (const auto& child : b->children) stack.push_back(child.get());
  }
  STHIST_CHECK(counted == bucket_count_);
}

void STHoles::CheckNode(const Bucket& b) const {
  STHIST_CHECK(b.frequency >= 0.0);
  for (size_t i = 0; i < b.children.size(); ++i) {
    STHIST_CHECK_MSG(b.box.Contains(b.children[i]->box),
                     "child %s escapes parent %s",
                     b.children[i]->box.ToString().c_str(),
                     b.box.ToString().c_str());
    for (size_t j = i + 1; j < b.children.size(); ++j) {
      STHIST_CHECK_MSG(!b.children[i]->box.Intersects(b.children[j]->box),
                       "siblings %s and %s overlap",
                       b.children[i]->box.ToString().c_str(),
                       b.children[j]->box.ToString().c_str());
    }
  }
}

}  // namespace sthist

#ifndef STHIST_HISTOGRAM_AVI_H_
#define STHIST_HISTOGRAM_AVI_H_

#include <vector>

#include "data/dataset.h"
#include "histogram/histogram.h"

namespace sthist {

/// The attribute-value-independence (AVI) estimator: one equi-depth
/// histogram per attribute, multidimensional selectivities estimated as the
/// product of per-attribute selectivities.
///
/// This is what practical optimizers do when no multidimensional statistics
/// exist — and precisely the baseline the paper's motivating argument
/// attacks: under (local) attribute correlations the independence assumption
/// collapses. Building it makes that collapse measurable
/// (`bench_baselines`).
class AviHistogram : public Histogram {
 public:
  /// Builds `buckets_per_dim` equi-depth buckets per attribute by scanning
  /// (and per-dimension sorting of) `data`.
  AviHistogram(const Dataset& data, const Box& domain,
               size_t buckets_per_dim);

  double Estimate(const Box& query) const override;

  /// Static; ignores feedback.
  void Refine(const Box& query, const CardinalityOracle& oracle) override;

  /// Total 1-d buckets held (buckets_per_dim per dimension).
  size_t bucket_count() const override;

  /// Estimated fraction of tuples with attribute d inside [lo, hi].
  double Selectivity(size_t d, double lo, double hi) const;

 private:
  Box domain_;
  double total_tuples_;
  // Per dimension: bucket boundaries (buckets_per_dim + 1 ascending values,
  // equi-depth) — each bucket holds ~1/buckets_per_dim of the tuples.
  std::vector<std::vector<double>> boundaries_;
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_AVI_H_

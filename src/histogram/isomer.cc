#include "histogram/isomer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"
#include "histogram/robustness.h"

namespace sthist {

struct IsomerHistogram::Bucket {
  Box box;
  double frequency = 0.0;
  std::vector<std::unique_ptr<Bucket>> children;
};

IsomerHistogram::IsomerHistogram(const Box& domain, double total_tuples,
                                 const IsomerConfig& config)
    : config_(config), total_tuples_(total_tuples) {
  STHIST_CHECK(domain.dim() > 0);
  STHIST_CHECK(domain.Volume() > 0);
  STHIST_CHECK(total_tuples >= 0);
  root_ = std::make_unique<Bucket>();
  root_->box = domain;
  root_->frequency = total_tuples;
  bucket_count_ = 1;
  // The relation cardinality is a permanent constraint: the max-entropy
  // solution must always integrate to the table size.
  constraints_.push_back({domain, total_tuples});
}

IsomerHistogram::~IsomerHistogram() = default;

size_t IsomerHistogram::bucket_count() const { return bucket_count_ - 1; }

double IsomerHistogram::MinVolume() const {
  return 1e-12 * root_->box.Volume();
}

// ---------------------------------------------------------------------------
// Geometry + estimation (as STHoles eq. 1)
// ---------------------------------------------------------------------------

double IsomerHistogram::RegionVolume(const Bucket& b) {
  double v = b.box.Volume();
  for (const auto& child : b.children) v -= child->box.Volume();
  return std::max(v, 0.0);
}

double IsomerHistogram::RegionIntersectionVolume(const Bucket& b,
                                                 const Box& query) {
  double v = b.box.IntersectionVolume(query);
  for (const auto& child : b.children) {
    v -= child->box.IntersectionVolume(query);
  }
  return std::max(v, 0.0);
}

double IsomerHistogram::Estimate(const Box& query) const {
  if (!IsEstimableQuery(root_->box, query)) {
    ++stats_.rejected_queries;
    return 0.0;
  }
  return EstimateNode(*root_, query);
}

double IsomerHistogram::EstimateNode(const Bucket& b, const Box& query) const {
  if (!b.box.Intersects(query)) return 0.0;
  double est = 0.0;
  double region = RegionVolume(b);
  if (region > MinVolume()) {
    double overlap = std::min(RegionIntersectionVolume(b, query), region);
    est += b.frequency * (overlap / region);
  } else if (query.Contains(b.box)) {
    est += b.frequency;
  }
  for (const auto& child : b.children) {
    est += EstimateNode(*child, query);
  }
  return est;
}

double IsomerHistogram::TotalFrequency() const {
  double total = 0.0;
  std::vector<const Bucket*> stack = {root_.get()};
  while (!stack.empty()) {
    const Bucket* b = stack.back();
    stack.pop_back();
    total += b->frequency;
    for (const auto& child : b->children) stack.push_back(child.get());
  }
  return total;
}

// ---------------------------------------------------------------------------
// Structure learning (drilling, as STHoles — but mass-conserving)
// ---------------------------------------------------------------------------

void IsomerHistogram::CollectIntersecting(Bucket* b, const Box& query,
                                          std::vector<Bucket*>* out) {
  if (b->box.IntersectionVolume(query) <= 0.0) return;
  out->push_back(b);
  for (const auto& child : b->children) {
    CollectIntersecting(child.get(), query, out);
  }
}

Box IsomerHistogram::ShrinkCandidate(const Bucket& b, const Box& query) const {
  Box c = b.box.Intersection(query);
  const size_t dim = c.dim();

  while (true) {
    const Bucket* participant = nullptr;
    for (const auto& child : b.children) {
      if (!child->box.Intersects(c)) continue;
      if (child->box.Contains(c)) {
        return Box::Cube(dim, c.lo(0), c.lo(0));
      }
      if (!c.Contains(child->box)) {
        participant = child.get();
        break;
      }
    }
    if (participant == nullptr) return c;

    double best_volume = -1.0;
    size_t best_dim = 0;
    bool best_cut_low = false;
    double best_value = 0.0;
    for (const auto& child : b.children) {
      if (!child->box.Intersects(c) || c.Contains(child->box) ||
          child->box.Contains(c)) {
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        if (child->box.hi(d) > c.lo(d) && child->box.hi(d) < c.hi(d)) {
          double v = c.Volume() / c.Extent(d) * (c.hi(d) - child->box.hi(d));
          if (v > best_volume) {
            best_volume = v;
            best_dim = d;
            best_cut_low = true;
            best_value = child->box.hi(d);
          }
        }
        if (child->box.lo(d) < c.hi(d) && child->box.lo(d) > c.lo(d)) {
          double v = c.Volume() / c.Extent(d) * (child->box.lo(d) - c.lo(d));
          if (v > best_volume) {
            best_volume = v;
            best_dim = d;
            best_cut_low = false;
            best_value = child->box.lo(d);
          }
        }
      }
    }
    if (best_volume < 0.0) {
      return Box::Cube(dim, c.lo(0), c.lo(0));
    }
    if (best_cut_low) {
      c.set_lo(best_dim, best_value);
    } else {
      c.set_hi(best_dim, best_value);
    }
  }
}

void IsomerHistogram::DrillHole(Bucket* b, const Box& candidate,
                                const CardinalityOracle& oracle) {
  double max_extent = 0.0;
  for (size_t d = 0; d < root_->box.dim(); ++d) {
    max_extent = std::max(max_extent, root_->box.Extent(d));
  }
  const double eps = 1e-9 * (1.0 + max_extent);

  // Candidate covers the whole bucket, or coincides with an existing child:
  // the structure already supports the constraint.
  if (candidate.ApproxEquals(b->box, eps)) return;
  for (const auto& child : b->children) {
    if (child->box.ApproxEquals(candidate, eps)) return;
  }

  auto hole = std::make_unique<Bucket>();
  hole->box = candidate;

  double moved_mass = 0.0;
  std::vector<std::unique_ptr<Bucket>> kept;
  kept.reserve(b->children.size());
  for (auto& child : b->children) {
    if (candidate.Contains(child->box)) {
      moved_mass += oracle.Count(child->box);
      hole->children.push_back(std::move(child));
    } else {
      kept.push_back(std::move(child));
    }
  }
  b->children = std::move(kept);

  // Seed the hole with the observed count (as ISOMER's add-hole step does);
  // iterative scaling then reconciles the whole tree with every retained
  // constraint.
  hole->frequency = std::max(oracle.Count(candidate) - moved_mass, 0.0);
  if (!std::isfinite(hole->frequency)) {
    ++stats_.repaired_buckets;
    hole->frequency = 0.0;
  }
  b->frequency = std::max(b->frequency - hole->frequency, 0.0);
  b->children.push_back(std::move(hole));
  ++bucket_count_;
}

// ---------------------------------------------------------------------------
// Maximum-entropy reconciliation (iterative proportional scaling)
// ---------------------------------------------------------------------------

double IsomerHistogram::ScaleOnce() {
  double worst = 0.0;
  for (const Constraint& constraint : constraints_) {
    double est = Estimate(constraint.box);
    double scale_base = std::max(constraint.count, 1.0);
    worst = std::max(worst, std::abs(est - constraint.count) / scale_base);

    std::vector<Bucket*> touched;
    CollectIntersecting(root_.get(), constraint.box, &touched);
    if (touched.empty()) continue;

    if (est > 1e-9) {
      // Multiply each bucket's overlapping portion by count/est.
      double ratio = constraint.count / est;
      for (Bucket* b : touched) {
        double region = RegionVolume(*b);
        if (region <= MinVolume()) continue;
        double portion =
            b->frequency *
            std::min(RegionIntersectionVolume(*b, constraint.box), region) /
            region;
        b->frequency =
            std::max(b->frequency + portion * (ratio - 1.0), 0.0);
      }
    } else if (constraint.count > 0.0) {
      // Nothing to scale: seed mass proportional to overlap volume.
      double total_overlap = 0.0;
      for (Bucket* b : touched) {
        total_overlap += RegionIntersectionVolume(*b, constraint.box);
      }
      if (total_overlap <= 0.0) continue;
      for (Bucket* b : touched) {
        b->frequency += constraint.count *
                        RegionIntersectionVolume(*b, constraint.box) /
                        total_overlap;
      }
    }
  }
  return worst;
}

void IsomerHistogram::Solve() {
  for (size_t round = 0; round < config_.scaling_rounds; ++round) {
    double worst = ScaleOnce();
    if (worst <= config_.tolerance) break;
  }

  // Inconsistency handling: drop retained constraints (never the permanent
  // cardinality constraint at the front) that the current structure cannot
  // satisfy — typically regions whose buckets were merged away under the
  // budget. Keeping them would make every future solve thrash.
  for (size_t i = constraints_.size(); i-- > 1;) {
    double est = Estimate(constraints_[i].box);
    double violation = std::abs(est - constraints_[i].count) /
                       std::max(constraints_[i].count, 1.0);
    if (violation > config_.inconsistency_threshold) {
      constraints_.erase(constraints_.begin() + static_cast<ptrdiff_t>(i));
    }
  }
}

double IsomerHistogram::MaxConstraintViolation() const {
  double worst = 0.0;
  for (const Constraint& constraint : constraints_) {
    double est = Estimate(constraint.box);
    worst = std::max(worst, std::abs(est - constraint.count) /
                                std::max(constraint.count, 1.0));
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Refinement
// ---------------------------------------------------------------------------

void IsomerHistogram::Refine(const Box& query,
                             const CardinalityOracle& oracle) {
  // Query boxes and oracle counts are untrusted: repair what is repairable,
  // drop what is not, and never abort.
  std::optional<Box> sanitized =
      SanitizeFeedbackQuery(root_->box, query, &stats_);
  if (!sanitized.has_value()) return;
  Box q = std::move(*sanitized);
  if (q.Volume() <= MinVolume()) {
    ++stats_.rejected_queries;
    return;
  }
  SanitizingOracle safe(oracle, &stats_);

  // Record the feedback constraint (sliding window; the permanent relation
  // cardinality constraint at the front never ages out). The sanitized count
  // is finite and non-negative, so the scaling passes stay well-defined.
  double count = safe.Count(q);
  constraints_.push_back({q, count});
  while (constraints_.size() > config_.max_constraints) {
    constraints_.erase(constraints_.begin() + 1);
  }

  // Grow structure for the query, as STHoles does.
  std::vector<Bucket*> intersecting;
  CollectIntersecting(root_.get(), q, &intersecting);
  for (Bucket* b : intersecting) {
    Box candidate = ShrinkCandidate(*b, q);
    if (candidate.Volume() <= MinVolume()) continue;
    DrillHole(b, candidate, safe);
  }

  EnforceBudget();
  Solve();
}

// ---------------------------------------------------------------------------
// Budget: parent-child merges of the most redundant child
// ---------------------------------------------------------------------------

void IsomerHistogram::EnforceBudget() {
  while (bucket_count() > config_.max_buckets) {
    // Find the (parent, child) pair with the smallest density disagreement,
    // weighted by the child's region volume: removing it changes the
    // max-entropy solution the least.
    Bucket* best_parent = nullptr;
    size_t best_child = 0;
    double best_penalty = std::numeric_limits<double>::infinity();

    std::vector<Bucket*> stack = {root_.get()};
    while (!stack.empty()) {
      Bucket* parent = stack.back();
      stack.pop_back();
      double vp = RegionVolume(*parent);
      double parent_density = vp > 0.0 ? parent->frequency / vp : 0.0;
      for (size_t i = 0; i < parent->children.size(); ++i) {
        Bucket* child = parent->children[i].get();
        stack.push_back(child);
        double vc = RegionVolume(*child);
        double child_density = vc > 0.0 ? child->frequency / vc : 0.0;
        double penalty = std::abs(child_density - parent_density) * vc;
        if (penalty < best_penalty) {
          best_penalty = penalty;
          best_parent = parent;
          best_child = i;
        }
      }
    }
    if (best_parent == nullptr) return;

    Bucket* child = best_parent->children[best_child].get();
    best_parent->frequency += child->frequency;
    std::unique_ptr<Bucket> owned =
        std::move(best_parent->children[best_child]);
    best_parent->children.erase(best_parent->children.begin() +
                                static_cast<ptrdiff_t>(best_child));
    for (auto& grandchild : owned->children) {
      best_parent->children.push_back(std::move(grandchild));
    }
    --bucket_count_;
  }
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

void IsomerHistogram::CheckInvariants() const {
  size_t counted = 0;
  std::vector<const Bucket*> stack = {root_.get()};
  while (!stack.empty()) {
    const Bucket* b = stack.back();
    stack.pop_back();
    ++counted;
    CheckNode(*b);
    for (const auto& child : b->children) stack.push_back(child.get());
  }
  STHIST_CHECK(counted == bucket_count_);
}

void IsomerHistogram::CheckNode(const Bucket& b) const {
  STHIST_CHECK(b.frequency >= 0.0);
  for (size_t i = 0; i < b.children.size(); ++i) {
    STHIST_CHECK(b.box.Contains(b.children[i]->box));
    for (size_t j = i + 1; j < b.children.size(); ++j) {
      STHIST_CHECK(!b.children[i]->box.Intersects(b.children[j]->box));
    }
  }
}

}  // namespace sthist

#include "histogram/isomer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>

#include "core/check.h"
#include "core/simd.h"
#include "histogram/bucket_index.h"
#include "histogram/robustness.h"
#include "obs/trace.h"

namespace sthist {

struct IsomerHistogram::Bucket {
  Box box;
  double frequency = 0.0;
  std::vector<std::unique_ptr<Bucket>> children;
  /// Region volume as of the last index (re)build; see STHoles::Bucket.
  RegionCache cached_region;
};

/// Spatial index over the bucket tree plus its build/validity state
/// (mirrors STHoles::IndexState; see DESIGN.md §10).
struct IsomerHistogram::IndexState {
  std::mutex mutex;
  BucketTreeIndex<Bucket> index;
  std::atomic<bool> ready{false};
  std::atomic<uint32_t> estimates_since_change{0};
  std::atomic<size_t> rejected_estimates{0};
};

namespace {

// Estimates that must repeat on an unchanged bucket tree before the lazy
// index build triggers (matches STHoles).
constexpr uint32_t kIndexBuildAfter = 2;

}  // namespace

IsomerHistogram::IsomerHistogram(const Box& domain, double total_tuples,
                                 const IsomerConfig& config)
    : config_(config), total_tuples_(total_tuples) {
  STHIST_CHECK(domain.dim() > 0);
  STHIST_CHECK(domain.Volume() > 0);
  STHIST_CHECK(total_tuples >= 0);
  root_ = std::make_unique<Bucket>();
  root_->box = domain;
  root_->frequency = total_tuples;
  bucket_count_ = 1;
  index_ = std::make_unique<IndexState>();

  obs::MetricsRegistry* reg =
      config.metrics != nullptr ? config.metrics : obs::GlobalMetrics();
  metrics_.estimates = reg->counter("histogram.isomer.estimates");
  metrics_.refines = reg->counter("histogram.isomer.refines");
  metrics_.constraints = reg->gauge("histogram.isomer.constraints");
  metrics_.refine_seconds = reg->latency("histogram.isomer.refine_seconds");
  metrics_.solve_seconds = reg->latency("histogram.isomer.solve_seconds");
  metrics_.index_builds = reg->counter("index.bucket_tree.builds");
  metrics_.index_invalidations = reg->counter("index.bucket_tree.invalidations");
  metrics_.index_probes = reg->counter("index.bucket_tree.probes");
  metrics_.index_node_visits = reg->counter("index.bucket_tree.node_visits");
  metrics_.flat_probes = reg->counter("index.flat.probes");
  metrics_.flat_entry_blocks = reg->counter("index.flat.entry_blocks");
  metrics_.flat_simd_level = reg->gauge("index.flat.simd_level");
  metrics_.flat_simd_level.Set(static_cast<double>(simd::ActiveLevel()));
  metrics_.ring = reg->ring();

  // The relation cardinality is a permanent constraint: the max-entropy
  // solution must always integrate to the table size.
  constraints_.push_back({domain, total_tuples});
}

IsomerHistogram::~IsomerHistogram() = default;

size_t IsomerHistogram::bucket_count() const { return bucket_count_ - 1; }

double IsomerHistogram::MinVolume() const {
  return 1e-12 * root_->box.Volume();
}

// ---------------------------------------------------------------------------
// Geometry + estimation (as STHoles eq. 1)
// ---------------------------------------------------------------------------

double IsomerHistogram::RegionVolume(const Bucket& b) {
  double v = b.box.Volume();
  for (const auto& child : b.children) v -= child->box.Volume();
  return std::max(v, 0.0);
}

double IsomerHistogram::RegionIntersectionVolume(const Bucket& b,
                                                 const Box& query) {
  double v = b.box.IntersectionVolume(query);
  for (const auto& child : b.children) {
    v -= child->box.IntersectionVolume(query);
  }
  return std::max(v, 0.0);
}

double IsomerHistogram::Estimate(const Box& query) const {
  metrics_.estimates.Inc();
  if (!IsEstimableQuery(root_->box, query)) {
    index_->rejected_estimates.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  if (!index_->ready.load(std::memory_order_acquire)) {
    const uint32_t repeats = index_->estimates_since_change.fetch_add(
                                 1, std::memory_order_relaxed) +
                             1;
    if (repeats < kIndexBuildAfter) return EstimateNode(*root_, query);
    EnsureIndex();
  }
  // Thread-local scratch: see STHoles::Estimate.
  static thread_local BucketGroups<Bucket> groups;
  const FlatBoxIndex::ProbeStats stats = index_->index.Probe(query, &groups);
  metrics_.index_probes.Inc();
  metrics_.index_node_visits.Inc(stats.node_visits);
  metrics_.flat_probes.Inc();
  metrics_.flat_entry_blocks.Inc(stats.entry_blocks);
  return EstimateIndexed(*root_, query, groups, MinVolume());
}

double IsomerHistogram::EstimateLinear(const Box& query) const {
  if (!IsEstimableQuery(root_->box, query)) {
    index_->rejected_estimates.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  return EstimateNode(*root_, query);
}

void IsomerHistogram::EnsureIndex() const {
  std::lock_guard<std::mutex> lock(index_->mutex);
  if (index_->ready.load(std::memory_order_relaxed)) return;
  index_->index.Rebuild(root_.get());
  metrics_.index_builds.Inc();
  index_->ready.store(true, std::memory_order_release);
}

void IsomerHistogram::InvalidateIndex() {
  if (index_->ready.load(std::memory_order_relaxed)) {
    metrics_.index_invalidations.Inc();
  }
  index_->ready.store(false, std::memory_order_relaxed);
  index_->estimates_since_change.store(0, std::memory_order_relaxed);
}

void IsomerHistogram::NoteStructureChange() { ++structure_epoch_; }

RobustnessStats IsomerHistogram::robustness() const {
  RobustnessStats stats = stats_;
  stats.rejected_queries +=
      index_->rejected_estimates.load(std::memory_order_relaxed);
  return stats;
}

double IsomerHistogram::EstimateNode(const Bucket& b, const Box& query) const {
  if (!b.box.Intersects(query)) return 0.0;
  double est = 0.0;
  double region = RegionVolume(b);
  if (region > MinVolume()) {
    double overlap = std::min(RegionIntersectionVolume(b, query), region);
    est += b.frequency * (overlap / region);
  } else if (query.Contains(b.box)) {
    est += b.frequency;
  }
  for (const auto& child : b.children) {
    est += EstimateNode(*child, query);
  }
  return est;
}

double IsomerHistogram::TotalFrequency() const {
  double total = 0.0;
  std::vector<const Bucket*> stack = {root_.get()};
  while (!stack.empty()) {
    const Bucket* b = stack.back();
    stack.pop_back();
    total += b->frequency;
    for (const auto& child : b->children) stack.push_back(child.get());
  }
  return total;
}

// ---------------------------------------------------------------------------
// Structure learning (drilling, as STHoles — but mass-conserving)
// ---------------------------------------------------------------------------

void IsomerHistogram::CollectIntersecting(Bucket* b, const Box& query,
                                          std::vector<Bucket*>* out) {
  if (b->box.IntersectionVolume(query) <= 0.0) return;
  out->push_back(b);
  for (const auto& child : b->children) {
    CollectIntersecting(child.get(), query, out);
  }
}

Box IsomerHistogram::ShrinkCandidate(const Bucket& b, const Box& query) const {
  Box c = b.box.Intersection(query);
  const size_t dim = c.dim();

  while (true) {
    const Bucket* participant = nullptr;
    for (const auto& child : b.children) {
      if (!child->box.Intersects(c)) continue;
      if (child->box.Contains(c)) {
        return Box::Cube(dim, c.lo(0), c.lo(0));
      }
      if (!c.Contains(child->box)) {
        participant = child.get();
        break;
      }
    }
    if (participant == nullptr) return c;

    double best_volume = -1.0;
    size_t best_dim = 0;
    bool best_cut_low = false;
    double best_value = 0.0;
    for (const auto& child : b.children) {
      if (!child->box.Intersects(c) || c.Contains(child->box) ||
          child->box.Contains(c)) {
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        if (child->box.hi(d) > c.lo(d) && child->box.hi(d) < c.hi(d)) {
          double v = c.Volume() / c.Extent(d) * (c.hi(d) - child->box.hi(d));
          if (v > best_volume) {
            best_volume = v;
            best_dim = d;
            best_cut_low = true;
            best_value = child->box.hi(d);
          }
        }
        if (child->box.lo(d) < c.hi(d) && child->box.lo(d) > c.lo(d)) {
          double v = c.Volume() / c.Extent(d) * (child->box.lo(d) - c.lo(d));
          if (v > best_volume) {
            best_volume = v;
            best_dim = d;
            best_cut_low = false;
            best_value = child->box.lo(d);
          }
        }
      }
    }
    if (best_volume < 0.0) {
      return Box::Cube(dim, c.lo(0), c.lo(0));
    }
    if (best_cut_low) {
      c.set_lo(best_dim, best_value);
    } else {
      c.set_hi(best_dim, best_value);
    }
  }
}

void IsomerHistogram::DrillHole(Bucket* b, const Box& candidate,
                                const CardinalityOracle& oracle) {
  double max_extent = 0.0;
  for (size_t d = 0; d < root_->box.dim(); ++d) {
    max_extent = std::max(max_extent, root_->box.Extent(d));
  }
  const double eps = 1e-9 * (1.0 + max_extent);

  // Candidate covers the whole bucket, or coincides with an existing child:
  // the structure already supports the constraint.
  if (candidate.ApproxEquals(b->box, eps)) return;
  for (const auto& child : b->children) {
    if (child->box.ApproxEquals(candidate, eps)) return;
  }

  auto hole = std::make_unique<Bucket>();
  hole->box = candidate;

  double moved_mass = 0.0;
  std::vector<std::unique_ptr<Bucket>> kept;
  kept.reserve(b->children.size());
  for (auto& child : b->children) {
    if (candidate.Contains(child->box)) {
      moved_mass += oracle.Count(child->box);
      hole->children.push_back(std::move(child));
    } else {
      kept.push_back(std::move(child));
    }
  }
  b->children = std::move(kept);

  // Seed the hole with the observed count (as ISOMER's add-hole step does);
  // iterative scaling then reconciles the whole tree with every retained
  // constraint.
  hole->frequency = std::max(oracle.Count(candidate) - moved_mass, 0.0);
  if (!std::isfinite(hole->frequency)) {
    ++stats_.repaired_buckets;
    hole->frequency = 0.0;
  }
  b->frequency = std::max(b->frequency - hole->frequency, 0.0);
  const bool migrated = !hole->children.empty();
  b->children.push_back(std::move(hole));
  ++bucket_count_;

  // Any drill changes region geometry, so constraint plans must rebuild;
  // the index itself only goes stale when children moved between lists.
  NoteStructureChange();
  if (migrated) {
    InvalidateIndex();
  } else if (index_->ready.load(std::memory_order_relaxed)) {
    index_->index.AppendChild(b);
  } else {
    index_->estimates_since_change.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Maximum-entropy reconciliation (iterative proportional scaling)
// ---------------------------------------------------------------------------

namespace {

// Recursively appends the plan node for `b` (already known to intersect
// `box`) and its intersecting descendants in pre-order; returns the subtree
// size. `kids(b)` enumerates b's intersecting children in child order.
template <typename BucketT, typename NodeT, typename MakeNode,
          typename Kids>
uint32_t AppendPlanNode(BucketT* b, const MakeNode& make_node,
                        const Kids& kids, std::vector<NodeT>* out) {
  const size_t at = out->size();
  out->push_back(make_node(b));
  uint32_t subtree = 1;
  for (const auto& ref : kids(b)) {
    subtree += AppendPlanNode(b->children[ref.slot].get(), make_node, kids,
                              out);
  }
  (*out)[at].subtree = subtree;
  return subtree;
}

}  // namespace

void IsomerHistogram::EnsurePlan(Constraint* constraint) {
  if (constraint->plan_epoch == structure_epoch_) return;
  constraint->plan.clear();
  constraint->plan_epoch = structure_epoch_;
  constraint->plan_estimable = IsEstimableQuery(root_->box, constraint->box);

  // Probe once; the plan then replays CollectIntersecting's pre-order
  // without ever scanning non-intersecting subtrees.
  EnsureIndex();
  BucketGroups<Bucket> groups;
  index_->index.Probe(constraint->box, &groups);

  const Box& box = constraint->box;
  if (root_->box.IntersectionVolume(box) <= 0.0) return;
  auto make_node = [&](Bucket* b) {
    PlanNode node;
    node.bucket = b;
    // cached_region is bitwise-identical to RegionVolume here: EnsureIndex
    // above refreshed it against the current structure.
    node.region = b->cached_region.Get();
    // RegionIntersectionVolume, subtracting only intersecting children (the
    // others subtract exact 0.0 in the uncached loop).
    double v = b->box.IntersectionVolume(box);
    for (const auto& ref : groups.Of(b)) {
      v -= b->children[ref.slot]->box.IntersectionVolume(box);
    }
    node.riv = std::max(v, 0.0);
    node.usable = node.region > MinVolume();
    node.contained = box.Contains(b->box);
    return node;
  };
  auto kids = [&](Bucket* b) { return groups.Of(b); };
  AppendPlanNode(root_.get(), make_node, kids, &constraint->plan);
}

double IsomerHistogram::PlanEstimate(const Constraint& constraint) const {
  STHIST_DCHECK(constraint.plan_epoch == structure_epoch_);
  if (!constraint.plan_estimable) {
    index_->rejected_estimates.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
  }
  // Local recursion over the pre-order plan using the subtree extents.
  struct Eval {
    const std::vector<PlanNode>& nodes;
    double At(size_t i) const {
      const PlanNode& n = nodes[i];
      double est = 0.0;
      if (n.usable) {
        double overlap = std::min(n.riv, n.region);
        est += n.bucket->frequency * (overlap / n.region);
      } else if (n.contained) {
        est += n.bucket->frequency;
      }
      const size_t end = i + n.subtree;
      for (size_t j = i + 1; j < end; j += nodes[j].subtree) {
        est += At(j);
      }
      return est;
    }
  };
  if (constraint.plan.empty()) return 0.0;
  return Eval{constraint.plan}.At(0);
}

double IsomerHistogram::ScaleOnce() {
  double worst = 0.0;
  for (Constraint& constraint : constraints_) {
    // The hot loops below used to recompute Estimate(constraint.box) plus
    // every region/overlap volume from scratch on every round; the plan
    // caches that structure-invariant geometry once per structural epoch and
    // replays it bitwise-identically (only frequencies change per round).
    EnsurePlan(&constraint);
    double est = PlanEstimate(constraint);
    double scale_base = std::max(constraint.count, 1.0);
    worst = std::max(worst, std::abs(est - constraint.count) / scale_base);

    if (constraint.plan.empty()) continue;

    if (est > 1e-9) {
      // Multiply each bucket's overlapping portion by count/est.
      double ratio = constraint.count / est;
      for (const PlanNode& node : constraint.plan) {
        if (!node.usable) continue;
        double portion =
            node.bucket->frequency * std::min(node.riv, node.region) /
            node.region;
        node.bucket->frequency =
            std::max(node.bucket->frequency + portion * (ratio - 1.0), 0.0);
      }
    } else if (constraint.count > 0.0) {
      // Nothing to scale: seed mass proportional to overlap volume.
      double total_overlap = 0.0;
      for (const PlanNode& node : constraint.plan) {
        total_overlap += node.riv;
      }
      if (total_overlap <= 0.0) continue;
      for (const PlanNode& node : constraint.plan) {
        node.bucket->frequency +=
            constraint.count * node.riv / total_overlap;
      }
    }
  }
  return worst;
}

void IsomerHistogram::Solve() {
  obs::ScopedTimer solve_timer(metrics_.solve_seconds);
  for (size_t round = 0; round < config_.scaling_rounds; ++round) {
    double worst = ScaleOnce();
    if (worst <= config_.tolerance) break;
  }

  // Inconsistency handling: drop retained constraints (never the permanent
  // cardinality constraint at the front) that the current structure cannot
  // satisfy — typically regions whose buckets were merged away under the
  // budget. Keeping them would make every future solve thrash.
  for (size_t i = constraints_.size(); i-- > 1;) {
    EnsurePlan(&constraints_[i]);
    double est = PlanEstimate(constraints_[i]);
    double violation = std::abs(est - constraints_[i].count) /
                       std::max(constraints_[i].count, 1.0);
    if (violation > config_.inconsistency_threshold) {
      constraints_.erase(constraints_.begin() + static_cast<ptrdiff_t>(i));
    }
  }
}

double IsomerHistogram::MaxConstraintViolation() const {
  double worst = 0.0;
  for (const Constraint& constraint : constraints_) {
    double est = Estimate(constraint.box);
    worst = std::max(worst, std::abs(est - constraint.count) /
                                std::max(constraint.count, 1.0));
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Refinement
// ---------------------------------------------------------------------------

void IsomerHistogram::Refine(const Box& query,
                             const CardinalityOracle& oracle) {
  metrics_.refines.Inc();
  obs::TraceSpan span("isomer.refine", metrics_.refine_seconds,
                      metrics_.ring);
  // Query boxes and oracle counts are untrusted: repair what is repairable,
  // drop what is not, and never abort.
  std::optional<Box> sanitized =
      SanitizeFeedbackQuery(root_->box, query, &stats_);
  if (!sanitized.has_value()) return;
  Box q = std::move(*sanitized);
  if (q.Volume() <= MinVolume()) {
    ++stats_.rejected_queries;
    return;
  }
  SanitizingOracle safe(oracle, &stats_);

  // Record the feedback constraint (sliding window; the permanent relation
  // cardinality constraint at the front never ages out). The sanitized count
  // is finite and non-negative, so the scaling passes stay well-defined.
  double count = safe.Count(q);
  constraints_.push_back({q, count});
  while (constraints_.size() > config_.max_constraints) {
    constraints_.erase(constraints_.begin() + 1);
  }

  // Grow structure for the query, as STHoles does.
  std::vector<Bucket*> intersecting;
  CollectIntersecting(root_.get(), q, &intersecting);
  for (Bucket* b : intersecting) {
    Box candidate = ShrinkCandidate(*b, q);
    if (candidate.Volume() <= MinVolume()) continue;
    DrillHole(b, candidate, safe);
  }

  EnforceBudget();
  Solve();
  metrics_.constraints.Set(static_cast<double>(constraint_count()));
}

// ---------------------------------------------------------------------------
// Budget: parent-child merges of the most redundant child
// ---------------------------------------------------------------------------

void IsomerHistogram::EnforceBudget() {
  while (bucket_count() > config_.max_buckets) {
    // Find the (parent, child) pair with the smallest density disagreement,
    // weighted by the child's region volume: removing it changes the
    // max-entropy solution the least.
    Bucket* best_parent = nullptr;
    size_t best_child = 0;
    double best_penalty = std::numeric_limits<double>::infinity();

    std::vector<Bucket*> stack = {root_.get()};
    while (!stack.empty()) {
      Bucket* parent = stack.back();
      stack.pop_back();
      double vp = RegionVolume(*parent);
      double parent_density = vp > 0.0 ? parent->frequency / vp : 0.0;
      for (size_t i = 0; i < parent->children.size(); ++i) {
        Bucket* child = parent->children[i].get();
        stack.push_back(child);
        double vc = RegionVolume(*child);
        double child_density = vc > 0.0 ? child->frequency / vc : 0.0;
        double penalty = std::abs(child_density - parent_density) * vc;
        if (penalty < best_penalty) {
          best_penalty = penalty;
          best_parent = parent;
          best_child = i;
        }
      }
    }
    if (best_parent == nullptr) return;

    Bucket* child = best_parent->children[best_child].get();
    best_parent->frequency += child->frequency;
    std::unique_ptr<Bucket> owned =
        std::move(best_parent->children[best_child]);
    best_parent->children.erase(best_parent->children.begin() +
                                static_cast<ptrdiff_t>(best_child));
    for (auto& grandchild : owned->children) {
      best_parent->children.push_back(std::move(grandchild));
    }
    --bucket_count_;
    // The merge moved buckets between children lists and deleted one:
    // index references and plan Bucket pointers are both stale.
    NoteStructureChange();
    InvalidateIndex();
  }
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

void IsomerHistogram::CheckInvariants() const {
  size_t counted = 0;
  std::vector<const Bucket*> stack = {root_.get()};
  while (!stack.empty()) {
    const Bucket* b = stack.back();
    stack.pop_back();
    ++counted;
    CheckNode(*b);
    for (const auto& child : b->children) stack.push_back(child.get());
  }
  STHIST_CHECK(counted == bucket_count_);
}

void IsomerHistogram::CheckNode(const Bucket& b) const {
  STHIST_CHECK(b.frequency >= 0.0);
  for (size_t i = 0; i < b.children.size(); ++i) {
    STHIST_CHECK(b.box.Contains(b.children[i]->box));
    for (size_t j = i + 1; j < b.children.size(); ++j) {
      STHIST_CHECK(!b.children[i]->box.Intersects(b.children[j]->box));
    }
  }
}

}  // namespace sthist

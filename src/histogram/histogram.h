#ifndef STHIST_HISTOGRAM_HISTOGRAM_H_
#define STHIST_HISTOGRAM_HISTOGRAM_H_

#include <cstddef>

#include "core/box.h"

namespace sthist {

/// Exact-count oracle standing in for the database execution engine.
///
/// In a live system, STHoles inspects the result stream of an executed range
/// query and can therefore count the tuples falling into any sub-rectangle of
/// the query. The library abstracts that capability behind this interface;
/// the canonical implementation wraps a KdTree over the dataset.
class CardinalityOracle {
 public:
  virtual ~CardinalityOracle() = default;

  /// Exact number of tuples inside `box`.
  virtual double Count(const Box& box) const = 0;
};

/// A selectivity-estimation histogram over one relation.
class Histogram {
 public:
  virtual ~Histogram() = default;

  /// Estimated number of tuples matching the range predicate `query`.
  virtual double Estimate(const Box& query) const = 0;

  /// Query-feedback refinement hook, invoked after `query` has executed.
  /// `oracle` can count tuples in sub-rectangles of the query (and, for this
  /// simulation substrate, arbitrary rectangles). Static histograms ignore
  /// this.
  virtual void Refine(const Box& query, const CardinalityOracle& oracle) = 0;

  /// Number of buckets currently held.
  virtual size_t bucket_count() const = 0;
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_HISTOGRAM_H_

#ifndef STHIST_HISTOGRAM_HISTOGRAM_H_
#define STHIST_HISTOGRAM_HISTOGRAM_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/box.h"

namespace sthist {

/// Exact-count oracle standing in for the database execution engine.
///
/// In a live system, STHoles inspects the result stream of an executed range
/// query and can therefore count the tuples falling into any sub-rectangle of
/// the query. The library abstracts that capability behind this interface;
/// the canonical implementation wraps a KdTree over the dataset.
class CardinalityOracle {
 public:
  virtual ~CardinalityOracle() = default;

  /// Exact number of tuples inside `box`.
  virtual double Count(const Box& box) const = 0;
};

/// Counters of graceful-degradation events in a self-tuning histogram's
/// feedback loop. Untrusted feedback (an external engine's cardinalities, a
/// client's query boxes) is repaired or skipped instead of aborting; these
/// counters make that degradation observable from the runner and the CLI.
struct RobustnessStats {
  /// Feedback queries dropped entirely (non-finite bounds, dimension
  /// mismatch, zero volume inside the domain).
  size_t rejected_queries = 0;
  /// Feedback queries repaired before use (inverted intervals swapped,
  /// out-of-domain boxes clamped).
  size_t sanitized_queries = 0;
  /// Cardinalities repaired before use (non-finite or negative counts).
  size_t clamped_feedback = 0;
  /// Buckets whose state was fixed up after pathological arithmetic
  /// (non-finite frequencies reset).
  size_t repaired_buckets = 0;

  /// Sum of all counters — nonzero means the histogram degraded somewhere.
  size_t total() const {
    return rejected_queries + sanitized_queries + clamped_feedback +
           repaired_buckets;
  }

  /// Accumulates `other` into this.
  void Add(const RobustnessStats& other) {
    rejected_queries += other.rejected_queries;
    sanitized_queries += other.sanitized_queries;
    clamped_feedback += other.clamped_feedback;
    repaired_buckets += other.repaired_buckets;
  }
};

/// A selectivity-estimation histogram over one relation.
class Histogram {
 public:
  virtual ~Histogram() = default;

  /// Estimated number of tuples matching the range predicate `query`.
  virtual double Estimate(const Box& query) const = 0;

  /// TEST-ONLY differential hook: the plain linear bucket scan, kept
  /// alongside any index-accelerated Estimate so differential tests can
  /// check the two agree bitwise (tests/index_differential_test.cc,
  /// tests/serve_test.cc). Production callers go through Estimate /
  /// EstimateBatch; nothing outside the test and bench verification paths
  /// should call this. The default forwards to Estimate; implementations
  /// with an index-accelerated Estimate override it with the original scan.
  virtual double EstimateLinear(const Box& query) const {
    return Estimate(query);
  }

  /// Estimates every query in `queries`, returned in input order — THE
  /// batched entry point, shared by every implementation (metrics, runner,
  /// serving, benches all route through here; see DESIGN.md §10/§13).
  ///
  /// Deliberately non-virtual: there is exactly one batching policy. The
  /// batch first invokes the PrepareForBatch() hook (index-backed
  /// implementations amortize their bucket-index build there), then fans
  /// independent Estimate calls out over `threads` workers (0 = hardware
  /// concurrency, 1 = inline on the calling thread); small batches always
  /// run inline. Each slot is computed by an independent Estimate call, so
  /// the result is bitwise-identical to a serial Estimate loop at any
  /// thread count.
  ///
  /// Thread safety: Estimate must be const-thread-safe for threads != 1,
  /// which every implementation in this library is; concurrent Refine is not
  /// allowed (same contract as RunSweep — see DESIGN.md §9).
  std::vector<double> EstimateBatch(std::span<const Box> queries,
                                    size_t threads = 0) const;

  /// Deep, independent copy of this histogram, the snapshot primitive of the
  /// serving layer (DESIGN.md §11). The contract: the clone's Estimate /
  /// EstimateLinear are bitwise-identical to the source's at the moment of
  /// cloning, the clone shares no mutable state with the source (refining
  /// either never affects the other), and internal acceleration caches start
  /// cold. Returns nullptr for implementations that do not (yet) support
  /// snapshotting — callers that require clones must check.
  virtual std::unique_ptr<Histogram> Clone() const { return nullptr; }

  /// Immutable snapshot of this histogram, the publish primitive of the
  /// serving layer (DESIGN.md §11, §17). Same observable contract as Clone
  /// — the snapshot's Estimate / EstimateLinear are bitwise-identical to the
  /// source's at the moment of snapshotting, and later refinement of the
  /// source never changes what the snapshot answers — but implementations
  /// with a persistent (copy-on-write) bucket organization may share
  /// immutable structure with the source instead of deep-copying, making a
  /// snapshot O(1) while refinement path-copies only what it touches. The
  /// default wraps Clone(), so every cloneable histogram is snapshottable;
  /// returns nullptr exactly when Clone() does.
  virtual std::shared_ptr<const Histogram> Snapshot() const {
    return std::shared_ptr<const Histogram>(Clone());
  }

  /// Versioned binary snapshot of this histogram's state (magic + version +
  /// checksum framing, DESIGN.md §17), the persistence primitive behind warm
  /// restarts and replica hand-off. Returns the empty string for
  /// implementations without a binary format — callers must treat empty as
  /// "unsupported", never as a zero-length snapshot (every real encoding
  /// begins with a magic tag). Reconstruction is per-implementation (e.g.
  /// STHoles::DeserializeBinary), since the caller chooses the concrete type
  /// it restores into.
  virtual std::string SerializeBinary() const { return std::string(); }

  /// Query-feedback refinement hook, invoked after `query` has executed.
  /// `oracle` can count tuples in sub-rectangles of the query (and, for this
  /// simulation substrate, arbitrary rectangles). Static histograms ignore
  /// this.
  virtual void Refine(const Box& query, const CardinalityOracle& oracle) = 0;

  /// Number of buckets currently held.
  virtual size_t bucket_count() const = 0;

  /// Degradation counters accumulated since construction. Static estimators
  /// never degrade and report all-zero.
  virtual RobustnessStats robustness() const { return {}; }

 protected:
  /// Per-batch amortization hook, invoked once by EstimateBatch before any
  /// estimate of the batch runs. Index-backed implementations (STHoles,
  /// ISOMER) build their bucket index here so the fanned-out workers only
  /// ever probe; the default is a no-op. Must be const-thread-safe and must
  /// not change any estimate's value — only its cost.
  virtual void PrepareForBatch() const {}
};

}  // namespace sthist

#endif  // STHIST_HISTOGRAM_HISTOGRAM_H_

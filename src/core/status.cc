#include "core/status.h"

#include <cstdarg>
#include <cstdio>

namespace sthist {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(StatusCodeName(code_)) + ": " + message_;
}

Status StatusF(StatusCode code, const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return Status(code, buf);
}

}  // namespace sthist

#ifndef STHIST_CORE_SIMD_H_
#define STHIST_CORE_SIMD_H_

#include <cstddef>
#include <cstdint>

/// \file
/// Portable vectorized box-intersection kernels (DESIGN.md §15).
///
/// The flat bucket index stores bounds as structure-of-arrays planes —
/// `plane[d * stride + slot]` — so testing a run of buckets against one
/// query is a pure vertical operation: broadcast the query bound for
/// dimension d, compare it against a contiguous vector of entry bounds, AND
/// the per-dimension masks together. This header wraps that kernel behind
/// one function, `MatchBoxes`, with three implementations:
///
///   * AVX2 (x86-64): 4 doubles per compare, selected at runtime via
///     `__builtin_cpu_supports` so one binary serves any x86-64 machine.
///     The implementation carries `__attribute__((target("avx2")))`, so the
///     translation unit itself needs no -mavx2 flag.
///   * NEON (aarch64): 2 doubles per compare; NEON is baseline on AArch64,
///     so the selection is at compile time.
///   * Scalar: the reference loop, always compiled, used as the tail
///     handler, the no-SIMD-hardware fallback, and the whole kernel when
///     built with -DSTHIST_NO_SIMD.
///
/// All three are comparison-only — no arithmetic, no FMA, no reassociation —
/// so they classify every box identically down to the last ULP and the
/// bitwise-equivalence contract of DESIGN.md §10 survives vectorization
/// untouched. `ForceScalarForTest` lets one test binary run both code paths;
/// tests/flat_index_test.cc and tests/index_differential_test.cc hold them
/// to identical outputs.

#if !defined(STHIST_NO_SIMD) && (defined(__x86_64__) || defined(_M_X64)) && \
    defined(__GNUC__)
#define STHIST_SIMD_X86 1
#include <immintrin.h>
#elif !defined(STHIST_NO_SIMD) && defined(__aarch64__) && defined(__GNUC__)
#define STHIST_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace sthist::simd {

/// Which kernel `MatchBoxes` dispatches to on this process, in this build.
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

inline const char* LevelName(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

namespace internal {
inline bool& ForceScalarFlag() {
  static bool force = false;
  return force;
}
}  // namespace internal

/// Test hook: true forces every subsequent MatchBoxes call onto the scalar
/// kernel, so a single binary can differential-test scalar against the
/// vectorized path. Not thread-safe; flip it only from single-threaded test
/// setup (the flag is read unsynchronized on the hot path).
inline void ForceScalarForTest(bool force) {
  internal::ForceScalarFlag() = force;
}

/// The kernel the next MatchBoxes call will use.
inline Level ActiveLevel() {
  if (internal::ForceScalarFlag()) return Level::kScalar;
#if defined(STHIST_SIMD_X86)
  static const bool have_avx2 = __builtin_cpu_supports("avx2");
  return have_avx2 ? Level::kAvx2 : Level::kScalar;
#elif defined(STHIST_SIMD_NEON)
  return Level::kNeon;
#else
  return Level::kScalar;
#endif
}

/// Reference kernel, and the contract all kernels implement.
///
/// Tests entries `[begin, begin + count)` of the SoA planes against the
/// query box `[qlo, qhi]` and appends each matching slot index to `out`
/// (caller guarantees room for `count` entries). Bounds of slot `s` in
/// dimension `d` live at `lo[d * stride + s]` / `hi[d * stride + s]`.
/// `closed == false` matches Box::Intersects (open interiors overlap,
/// strict compares); `closed == true` matches closed-interval overlap.
/// Returns the number of slots written. Never allocates.
inline size_t MatchBoxesScalar(const double* lo, const double* hi,
                               size_t stride, size_t dim, uint32_t begin,
                               uint32_t count, const double* qlo,
                               const double* qhi, bool closed,
                               uint32_t* out) {
  size_t n = 0;
  const uint32_t end = begin + count;
  for (uint32_t s = begin; s < end; ++s) {
    bool hit = true;
    for (size_t d = 0; d < dim; ++d) {
      const double elo = lo[d * stride + s];
      const double ehi = hi[d * stride + s];
      const bool miss = closed ? (ehi < qlo[d] || qhi[d] < elo)
                               : (ehi <= qlo[d] || elo >= qhi[d]);
      if (miss) {
        hit = false;
        break;
      }
    }
    if (hit) out[n++] = s;
  }
  return n;
}

#if defined(STHIST_SIMD_X86)

/// AVX2 kernel: 4 slots per iteration, per-dimension compare + mask AND
/// with an early exit once a block is all-miss; any sub-block tail falls
/// back to the scalar loop. Comparisons use the ordered-quiet predicates,
/// which agree with the scalar `<`/`<=` on every input the planes can hold.
__attribute__((target("avx2"))) inline size_t MatchBoxesAvx2(
    const double* lo, const double* hi, size_t stride, size_t dim,
    uint32_t begin, uint32_t count, const double* qlo, const double* qhi,
    bool closed, uint32_t* out) {
  size_t n = 0;
  const uint32_t end = begin + count;
  uint32_t s = begin;
  for (; s + 4 <= end; s += 4) {
    __m256d mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    for (size_t d = 0; d < dim; ++d) {
      const __m256d elo = _mm256_loadu_pd(lo + d * stride + s);
      const __m256d ehi = _mm256_loadu_pd(hi + d * stride + s);
      const __m256d ql = _mm256_broadcast_sd(qlo + d);
      const __m256d qh = _mm256_broadcast_sd(qhi + d);
      const __m256d dm =
          closed ? _mm256_and_pd(_mm256_cmp_pd(ehi, ql, _CMP_GE_OQ),
                                 _mm256_cmp_pd(elo, qh, _CMP_LE_OQ))
                 : _mm256_and_pd(_mm256_cmp_pd(ehi, ql, _CMP_GT_OQ),
                                 _mm256_cmp_pd(elo, qh, _CMP_LT_OQ));
      mask = _mm256_and_pd(mask, dm);
      if (_mm256_movemask_pd(mask) == 0) break;
    }
    int bits = _mm256_movemask_pd(mask);
    while (bits != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(bits));
      out[n++] = s + static_cast<uint32_t>(lane);
      bits &= bits - 1;
    }
  }
  n += MatchBoxesScalar(lo, hi, stride, dim, s, end - s, qlo, qhi, closed,
                        out + n);
  return n;
}

#endif  // STHIST_SIMD_X86

#if defined(STHIST_SIMD_NEON)

/// NEON kernel: 2 slots per iteration, same mask-AND structure as AVX2.
inline size_t MatchBoxesNeon(const double* lo, const double* hi,
                             size_t stride, size_t dim, uint32_t begin,
                             uint32_t count, const double* qlo,
                             const double* qhi, bool closed, uint32_t* out) {
  size_t n = 0;
  const uint32_t end = begin + count;
  uint32_t s = begin;
  for (; s + 2 <= end; s += 2) {
    uint64x2_t mask = vdupq_n_u64(~uint64_t{0});
    for (size_t d = 0; d < dim; ++d) {
      const float64x2_t elo = vld1q_f64(lo + d * stride + s);
      const float64x2_t ehi = vld1q_f64(hi + d * stride + s);
      const float64x2_t ql = vdupq_n_f64(qlo[d]);
      const float64x2_t qh = vdupq_n_f64(qhi[d]);
      const uint64x2_t dm =
          closed ? vandq_u64(vcgeq_f64(ehi, ql), vcleq_f64(elo, qh))
                 : vandq_u64(vcgtq_f64(ehi, ql), vcltq_f64(elo, qh));
      mask = vandq_u64(mask, dm);
      if (vmaxvq_u32(vreinterpretq_u32_u64(mask)) == 0) break;
    }
    if (vgetq_lane_u64(mask, 0) != 0) out[n++] = s;
    if (vgetq_lane_u64(mask, 1) != 0) out[n++] = s + 1;
  }
  n += MatchBoxesScalar(lo, hi, stride, dim, s, end - s, qlo, qhi, closed,
                        out + n);
  return n;
}

#endif  // STHIST_SIMD_NEON

/// Dispatched kernel entry point; see MatchBoxesScalar for the contract.
inline size_t MatchBoxes(const double* lo, const double* hi, size_t stride,
                         size_t dim, uint32_t begin, uint32_t count,
                         const double* qlo, const double* qhi, bool closed,
                         uint32_t* out) {
  switch (ActiveLevel()) {
#if defined(STHIST_SIMD_X86)
    case Level::kAvx2:
      return MatchBoxesAvx2(lo, hi, stride, dim, begin, count, qlo, qhi,
                            closed, out);
#endif
#if defined(STHIST_SIMD_NEON)
    case Level::kNeon:
      return MatchBoxesNeon(lo, hi, stride, dim, begin, count, qlo, qhi,
                            closed, out);
#endif
    default:
      return MatchBoxesScalar(lo, hi, stride, dim, begin, count, qlo, qhi,
                              closed, out);
  }
}

}  // namespace sthist::simd

#endif  // STHIST_CORE_SIMD_H_

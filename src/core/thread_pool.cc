#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "obs/trace.h"

namespace sthist {

size_t DefaultThreadCount() {
  size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(size_t threads, obs::MetricsRegistry* metrics) {
  if (threads == 0) threads = DefaultThreadCount();
  obs::MetricsRegistry* reg =
      metrics != nullptr ? metrics : obs::GlobalMetrics();
  tasks_ = reg->counter("pool.thread_pool.tasks");
  queue_wait_seconds_ = reg->latency("pool.thread_pool.queue_wait_seconds");
  task_seconds_ = reg->latency("pool.thread_pool.task_seconds");
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  tasks_.Inc();
  QueuedTask queued{std::move(task)};
  if (queue_wait_seconds_.enabled()) {
    queued.enqueued_seconds = obs::MonotonicSeconds();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(queued));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    if (task.enqueued_seconds >= 0.0) {
      queue_wait_seconds_.Observe(obs::MonotonicSeconds() -
                                  task.enqueued_seconds);
    }
    {
      obs::ScopedTimer task_timer(task_seconds_);
      task.fn();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = pool == nullptr ? 1 : std::min(pool->size(), n);
  if (workers <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<size_t> cursor{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  // One looping task per worker; Wait() below keeps the captured locals
  // alive until every task has returned.
  for (size_t w = 0; w < workers; ++w) {
    pool->Submit([&] {
      for (size_t i = cursor.fetch_add(1); i < n; i = cursor.fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      }
    });
  }
  pool->Wait();
  if (error) std::rethrow_exception(error);
}

void ParallelFor(size_t n, size_t threads,
                 const std::function<void(size_t)>& fn) {
  if (threads == 0) threads = DefaultThreadCount();
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, n));
  ParallelFor(&pool, n, fn);
}

}  // namespace sthist

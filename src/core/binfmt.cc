#include "core/binfmt.h"

#include <cstring>

namespace sthist {
namespace binfmt {

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

double ReadF64(const char* p) {
  const uint64_t bits = ReadU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string Frame(const char* magic, uint32_t version,
                  std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(magic, 4);
  AppendU32(&out, version);
  AppendU64(&out, payload.size());
  AppendU64(&out, Fnv1a(payload));
  out.append(payload);
  return out;
}

StatusOr<std::string_view> Unframe(const char* magic, uint32_t version,
                                   std::string_view bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    return StatusF(StatusCode::kInvalidArgument,
                   "snapshot truncated: %zu bytes, need a %zu-byte header",
                   bytes.size(), kFrameHeaderSize);
  }
  if (std::memcmp(bytes.data(), magic, 4) != 0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "bad snapshot magic (expected \"%.4s\")", magic);
  }
  const uint32_t file_version = ReadU32(bytes.data() + 4);
  if (file_version != version) {
    return StatusF(StatusCode::kInvalidArgument,
                   "unsupported snapshot format version %u "
                   "(this build reads version %u)",
                   file_version, version);
  }
  const uint64_t payload_size = ReadU64(bytes.data() + 8);
  const uint64_t checksum = ReadU64(bytes.data() + 16);
  if (payload_size != bytes.size() - kFrameHeaderSize) {
    return StatusF(StatusCode::kInvalidArgument,
                   "snapshot payload size mismatch: header says %llu, "
                   "file holds %zu",
                   static_cast<unsigned long long>(payload_size),
                   bytes.size() - kFrameHeaderSize);
  }
  const std::string_view payload = bytes.substr(kFrameHeaderSize);
  if (Fnv1a(payload) != checksum) {
    return Status::InvalidArgument("snapshot checksum mismatch");
  }
  return payload;
}

}  // namespace binfmt
}  // namespace sthist

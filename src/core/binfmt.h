#ifndef STHIST_CORE_BINFMT_H_
#define STHIST_CORE_BINFMT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/status.h"

/// \file
/// Shared primitives of the versioned binary snapshot formats (DESIGN.md
/// §17): little-endian integer/double encoding, the FNV-1a payload checksum,
/// and the common 24-byte frame every snapshot layer wraps its payload in —
///
///   magic (4 bytes) | u32 format version | u64 payload size
///   | u64 FNV-1a checksum of the payload
///
/// The encoding is byte-explicit (independent of host endianness), and
/// doubles travel as raw IEEE-754 bit patterns so values round-trip
/// bit-exactly. Unframe fails closed: any framing violation returns an error
/// Status before a single payload byte is trusted.

namespace sthist {
namespace binfmt {

/// Size of the magic + version + payload-size + checksum frame header.
inline constexpr size_t kFrameHeaderSize = 24;

void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
/// Appends the raw IEEE-754 bit pattern of `v` (little-endian).
void AppendF64(std::string* out, double v);

/// Readers assume the caller has bounds-checked `p` for 4/8 readable bytes.
uint32_t ReadU32(const char* p);
uint64_t ReadU64(const char* p);
double ReadF64(const char* p);

/// 64-bit FNV-1a over `bytes` — the frame checksum. Not cryptographic; it
/// guards against truncation and bit rot, not adversaries.
uint64_t Fnv1a(std::string_view bytes);

/// Wraps `payload` in the frame header under `magic` (exactly 4 bytes) and
/// `version`.
std::string Frame(const char* magic, uint32_t version,
                  std::string_view payload);

/// Verifies the frame (length, magic, version, payload size, checksum) and
/// returns a view of the payload. A version mismatch is diagnosed with both
/// the file's version and `version`, so operators can tell a stale file from
/// a stale binary.
StatusOr<std::string_view> Unframe(const char* magic, uint32_t version,
                                   std::string_view bytes);

}  // namespace binfmt
}  // namespace sthist

#endif  // STHIST_CORE_BINFMT_H_

#ifndef STHIST_CORE_RNG_H_
#define STHIST_CORE_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace sthist {

/// SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom
/// number generators"): a bijective 64-bit mixer whose outputs pass
/// BigCrush. Used to derive independent seed streams from structured
/// inputs.
uint64_t SplitMix64(uint64_t x);

/// Derives the seed for one named random stream from a base seed.
///
/// Consumers that need several independent streams per experiment (training
/// workload, simulation workload, ...) must NOT use `seed + k`: a sweep
/// over consecutive base seeds would then alias one cell's training stream
/// with another cell's evaluation stream. Double-mixing keeps every
/// (seed, role) pair far from every other in seed space.
uint64_t DeriveSeed(uint64_t seed, uint64_t role);

/// Deterministic random number generator used across the library.
///
/// Thin wrapper around std::mt19937_64 with the handful of draws the
/// generators, workloads and clustering need. Every component that consumes
/// randomness takes an explicit seed so experiments are reproducible.
class Rng {
 public:
  /// Creates a generator seeded with `seed`.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform real in [0, 1).
  double Uniform01() { return Uniform(0.0, 1.0); }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  size_t Index(size_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Int(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      std::swap((*items)[i], (*items)[Index(i + 1)]);
    }
  }

  /// Draws `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> Sample(size_t n, size_t k);

  /// Access to the underlying engine for std distributions and for
  /// serializing engine state (operator<< / operator>> round-trip exactly).
  std::mt19937_64& engine() { return engine_; }
  const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sthist

#endif  // STHIST_CORE_RNG_H_

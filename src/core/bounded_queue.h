#ifndef STHIST_CORE_BOUNDED_QUEUE_H_
#define STHIST_CORE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "core/check.h"

namespace sthist {

/// Why TryPush refused an item — the two rejection causes call for different
/// reactions (a full queue is transient backpressure, a closed queue is
/// final), so the queue reports which one happened instead of a bare false.
enum class PushResult {
  kAccepted,
  kFull,    // At capacity; retrying later may succeed.
  kClosed,  // Close() was called; no push will ever succeed again.
};

/// Bounded multi-producer queue with batched consumption, the feedback
/// channel of the serving layer (DESIGN.md §11).
///
/// Producers never block: when the queue is at capacity `TryPush` refuses the
/// item and the caller decides what to do with the rejection (the service
/// counts it as a drop — admission control by shedding the newest feedback,
/// never by stalling a query thread). The consumer blocks in `PopBatch` until
/// items arrive or the queue is closed, and drains up to a whole batch per
/// wakeup so a backlogged refiner amortizes its lock traffic.
///
/// Safe for any number of producers and consumers; the serving layer uses it
/// MPSC (many feedback submitters, one refiner).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    STHIST_CHECK(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item` unless the queue is full or closed; never blocks.
  /// Returns kAccepted, or the rejection cause.
  PushResult TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    ready_cv_.notify_one();
    return PushResult::kAccepted;
  }

  /// Moves up to `max_items` into `*out` (appended; existing contents are
  /// cleared first), blocking until at least one item is available or the
  /// queue is closed. Returns the number popped — 0 only when the queue is
  /// closed and fully drained, the consumer's termination signal.
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    STHIST_CHECK(max_items > 0);
    out->clear();
    std::unique_lock<std::mutex> lock(mutex_);
    ready_cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    size_t n = std::min(max_items, items_.size());
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return n;
  }

  /// Timed variant of PopBatch for consumers with periodic side work (the
  /// refiner polling a background rebuild): waits at most `timeout` for an
  /// item. Returns the number popped — 0 on timeout as well as on
  /// closed-and-drained, so such consumers distinguish the two via
  /// closed()/size() before treating 0 as termination.
  template <typename Rep, typename Period>
  size_t PopBatchFor(std::vector<T>* out, size_t max_items,
                     std::chrono::duration<Rep, Period> timeout) {
    STHIST_CHECK(max_items > 0);
    out->clear();
    std::unique_lock<std::mutex> lock(mutex_);
    ready_cv_.wait_for(lock, timeout,
                       [this] { return closed_ || !items_.empty(); });
    size_t n = std::min(max_items, items_.size());
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return n;
  }

  /// Closes the queue: subsequent pushes are refused, and consumers drain
  /// what remains before PopBatch returns 0. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_cv_.notify_all();
  }

  /// Instantaneous item count (advisory under concurrency).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;  // Signals consumers: item or closed.
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace sthist

#endif  // STHIST_CORE_BOUNDED_QUEUE_H_

#include "core/box.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/check.h"

namespace sthist {

Box::Box(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  STHIST_CHECK(lo_.size() == hi_.size());
  for (size_t d = 0; d < lo_.size(); ++d) {
    STHIST_CHECK_MSG(lo_[d] <= hi_[d], "dim %zu: lo=%g hi=%g", d, lo_[d],
                     hi_[d]);
  }
}

Box Box::Cube(size_t dim, double lo, double hi) {
  return Box(std::vector<double>(dim, lo), std::vector<double>(dim, hi));
}

double Box::Volume() const {
  double v = 1.0;
  for (size_t d = 0; d < dim(); ++d) v *= Extent(d);
  return v;
}

bool Box::ContainsPoint(std::span<const double> p) const {
  STHIST_DCHECK(p.size() == dim());
  for (size_t d = 0; d < dim(); ++d) {
    if (p[d] < lo_[d] || p[d] > hi_[d]) return false;
  }
  return true;
}

bool Box::Contains(const Box& other) const {
  STHIST_DCHECK(other.dim() == dim());
  for (size_t d = 0; d < dim(); ++d) {
    if (other.lo_[d] < lo_[d] || other.hi_[d] > hi_[d]) return false;
  }
  return true;
}

bool Box::Intersects(const Box& other) const {
  STHIST_DCHECK(other.dim() == dim());
  for (size_t d = 0; d < dim(); ++d) {
    if (other.hi_[d] <= lo_[d] || other.lo_[d] >= hi_[d]) return false;
  }
  return true;
}

Box Box::Intersection(const Box& other) const {
  STHIST_DCHECK(other.dim() == dim());
  std::vector<double> lo(dim()), hi(dim());
  for (size_t d = 0; d < dim(); ++d) {
    lo[d] = std::max(lo_[d], other.lo_[d]);
    hi[d] = std::min(hi_[d], other.hi_[d]);
    if (hi[d] < lo[d]) hi[d] = lo[d];  // Disjoint: clamp to a degenerate box.
  }
  return Box(std::move(lo), std::move(hi));
}

double Box::IntersectionVolume(const Box& other) const {
  STHIST_DCHECK(other.dim() == dim());
  double v = 1.0;
  for (size_t d = 0; d < dim(); ++d) {
    double lo = std::max(lo_[d], other.lo_[d]);
    double hi = std::min(hi_[d], other.hi_[d]);
    if (hi <= lo) return 0.0;
    v *= hi - lo;
  }
  return v;
}

Box Box::Enclosure(const Box& a, const Box& b) {
  STHIST_CHECK(a.dim() == b.dim());
  std::vector<double> lo(a.dim()), hi(a.dim());
  for (size_t d = 0; d < a.dim(); ++d) {
    lo[d] = std::min(a.lo_[d], b.lo_[d]);
    hi[d] = std::max(a.hi_[d], b.hi_[d]);
  }
  return Box(std::move(lo), std::move(hi));
}

void Box::ExtendToContain(const Box& other) {
  STHIST_CHECK(other.dim() == dim());
  for (size_t d = 0; d < dim(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
}

bool Box::operator==(const Box& other) const {
  return lo_ == other.lo_ && hi_ == other.hi_;
}

bool Box::ApproxEquals(const Box& other, double eps) const {
  if (other.dim() != dim()) return false;
  for (size_t d = 0; d < dim(); ++d) {
    if (std::abs(lo_[d] - other.lo_[d]) > eps) return false;
    if (std::abs(hi_[d] - other.hi_[d]) > eps) return false;
  }
  return true;
}

std::string Box::ToString() const {
  std::string out;
  char buf[64];
  for (size_t d = 0; d < dim(); ++d) {
    std::snprintf(buf, sizeof(buf), "%s[%.4g,%.4g]", d == 0 ? "" : "x", lo_[d],
                  hi_[d]);
    out += buf;
  }
  return out;
}

}  // namespace sthist

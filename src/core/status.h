#ifndef STHIST_CORE_STATUS_H_
#define STHIST_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "core/check.h"

/// \file
/// Lightweight error propagation for untrusted-input boundaries.
///
/// The library does not use exceptions. Internal invariant violations are
/// programming errors and abort via STHIST_CHECK (core/check.h). Everything
/// that can fail because of *input the library does not control* — files,
/// CLI flags, query feedback from an external engine — instead returns a
/// `Status` (or `StatusOr<T>` when there is a value to hand back) carrying a
/// machine-readable code and a human-readable reason.

namespace sthist {

/// Coarse error category, stable across messages. Mirrors the small subset
/// of canonical codes the library needs.
enum class StatusCode {
  kOk = 0,
  /// Malformed input (parse errors, NaN coordinates, inverted boxes).
  kInvalidArgument,
  /// A named resource (file, dataset, subcommand) does not exist.
  kNotFound,
  /// An I/O operation failed after the resource was found.
  kIoError,
  /// Input was well-formed but violates a documented limit (budget, size).
  kOutOfRange,
  /// The operation cannot proceed because the component is shutting down or
  /// otherwise not serving (e.g. Drain on a stopped HistogramService).
  kUnavailable,
};

/// Human-readable name of a code, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

/// An error code plus message. Cheap to move, comparable against OK.
class Status {
 public:
  /// Constructs OK.
  Status() = default;

  /// Constructs a status with `code` and explanatory `message`. Passing
  /// kOk here is a programming error — use the default constructor.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    STHIST_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>", for logs and stderr.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Builds a Status with a printf-formatted message.
Status StatusF(StatusCode code, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

/// Either a value or an error Status. Accessing the value of an error is a
/// programming error and aborts; check ok() first.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: `return dataset;`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// Implicit from an error status: `return Status::InvalidArgument(...)`.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    STHIST_CHECK_MSG(!status_.ok(),
                     "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }

  /// The error (OK when a value is held).
  const Status& status() const { return status_; }

  /// The held value; requires ok().
  const T& value() const& {
    STHIST_CHECK_MSG(ok(), "StatusOr::value() on error: %s",
                     status_.message().c_str());
    return *value_;
  }
  T& value() & {
    STHIST_CHECK_MSG(ok(), "StatusOr::value() on error: %s",
                     status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    STHIST_CHECK_MSG(ok(), "StatusOr::value() on error: %s",
                     status_.message().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Early-returns the argument when it is a non-OK Status. Use inside
/// functions that themselves return Status.
#define STHIST_RETURN_IF_ERROR(expr)               \
  do {                                             \
    ::sthist::Status status_macro_result = (expr); \
    if (!status_macro_result.ok()) {               \
      return status_macro_result;                  \
    }                                              \
  } while (0)

}  // namespace sthist

#endif  // STHIST_CORE_STATUS_H_

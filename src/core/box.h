#ifndef STHIST_CORE_BOX_H_
#define STHIST_CORE_BOX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sthist {

/// A point in d-dimensional attribute-value space.
using Point = std::vector<double>;

/// Axis-aligned d-dimensional rectangle [lo_0,hi_0] x ... x [lo_{d-1},hi_{d-1}].
///
/// Boxes are the universal geometric currency of the library: histogram
/// buckets, range queries, cluster bounding rectangles and the data domain
/// are all boxes. Intervals are closed on both ends for point containment;
/// all volume computations treat the boundary as measure zero, which matches
/// the continuous attribute domains the paper assumes (categorical attributes
/// are mapped to numbers upstream).
class Box {
 public:
  /// Constructs an empty (0-dimensional) box.
  Box() = default;

  /// Constructs a box from per-dimension bounds. Requires lo.size() ==
  /// hi.size() and lo[i] <= hi[i] for all i.
  Box(std::vector<double> lo, std::vector<double> hi);

  /// A box spanning [lo, hi] in every one of `dim` dimensions.
  static Box Cube(size_t dim, double lo, double hi);

  /// Number of dimensions.
  size_t dim() const { return lo_.size(); }

  /// Lower bound in dimension d.
  double lo(size_t d) const { return lo_[d]; }
  /// Upper bound in dimension d.
  double hi(size_t d) const { return hi_[d]; }

  /// Mutable access for in-place shrinking/growing. Callers must keep
  /// lo <= hi.
  void set_lo(size_t d, double v) { lo_[d] = v; }
  void set_hi(size_t d, double v) { hi_[d] = v; }

  /// Side length in dimension d.
  double Extent(size_t d) const { return hi_[d] - lo_[d]; }

  /// Contiguous per-dimension bounds, for kernels that consume raw planes
  /// (core/simd.h). Valid while the box is alive and unmodified.
  const double* lo_data() const { return lo_.data(); }
  const double* hi_data() const { return hi_.data(); }

  /// Product of all side lengths. A degenerate box has volume 0.
  double Volume() const;

  /// True when the point (closed intervals) lies inside the box.
  bool ContainsPoint(std::span<const double> p) const;

  /// True when `other` lies entirely within this box (closed; boundaries may
  /// touch).
  bool Contains(const Box& other) const;

  /// True when the open interiors overlap, i.e. the intersection has positive
  /// extent in every dimension. Boxes that merely share a boundary do not
  /// intersect under this definition.
  bool Intersects(const Box& other) const;

  /// The geometric intersection. Returns a degenerate box (zero extent in at
  /// least one dimension, clamped to be valid) when the interiors do not
  /// overlap.
  Box Intersection(const Box& other) const;

  /// Volume of the intersection with `other` (0 when disjoint).
  double IntersectionVolume(const Box& other) const;

  /// The smallest box containing both inputs. Requires equal dimensionality.
  static Box Enclosure(const Box& a, const Box& b);

  /// Grows this box (in place) to contain `other`.
  void ExtendToContain(const Box& other);

  /// True when all bounds match exactly.
  bool operator==(const Box& other) const;

  /// True when all bounds match within `eps`.
  bool ApproxEquals(const Box& other, double eps) const;

  /// Human-readable form, e.g. "[0,1]x[2,5]".
  std::string ToString() const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace sthist

#endif  // STHIST_CORE_BOX_H_

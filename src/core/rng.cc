#include "core/rng.h"

#include <algorithm>

#include "core/check.h"

namespace sthist {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t DeriveSeed(uint64_t seed, uint64_t role) {
  return SplitMix64(SplitMix64(seed) + role);
}

double Rng::Uniform(double lo, double hi) {
  STHIST_DCHECK(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

size_t Rng::Index(size_t n) {
  STHIST_CHECK(n > 0);
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

int64_t Rng::Int(int64_t lo, int64_t hi) {
  STHIST_CHECK(lo <= hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

std::vector<size_t> Rng::Sample(size_t n, size_t k) {
  STHIST_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector; fine for the sample sizes the
  // library draws (medoid candidates, noise points).
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace sthist

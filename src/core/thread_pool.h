#ifndef STHIST_CORE_THREAD_POOL_H_
#define STHIST_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sthist {

/// Worker count that "auto" (threads = 0) resolves to: the hardware
/// concurrency, or 1 when the runtime cannot determine it.
size_t DefaultThreadCount();

/// Fixed-size pool of worker threads draining one shared FIFO queue.
///
/// Deliberately simple — no work stealing, no priorities: the experiment
/// grid's cells are coarse (each runs a full train/simulate loop), so a
/// single shared queue keeps every worker busy without any of the
/// complexity. Tasks must not throw; use ParallelFor for loops whose body
/// may fail.
class ThreadPool {
 public:
  /// Starts `threads` workers (0 = DefaultThreadCount()). `metrics` receives
  /// the pool.thread_pool.* metrics (DESIGN.md §13); nullptr means the
  /// process-wide GlobalMetrics(). Queue-wait timestamps are only taken when
  /// the latency metric is enabled, so a disabled registry costs one branch
  /// per task.
  explicit ThreadPool(size_t threads = 0,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Waits for queued tasks to finish, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running. With a single
  /// submitting thread this is a completion barrier for everything
  /// submitted so far.
  void Wait();

 private:
  struct QueuedTask {
    std::function<void()> fn;
    // MonotonicSeconds() at enqueue, or a negative sentinel when the
    // queue-wait metric is disabled (no clock read on the disabled path).
    double enqueued_seconds = -1.0;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // Signals workers: task or stop.
  std::condition_variable idle_cv_;  // Signals Wait(): pool drained.
  std::deque<QueuedTask> queue_;
  size_t running_ = 0;  // Tasks currently executing.
  bool stop_ = false;
  obs::Counter tasks_;
  obs::LatencyHistogram queue_wait_seconds_;
  obs::LatencyHistogram task_seconds_;
};

/// Calls `fn(i)` for every i in [0, n), distributing indices across the
/// pool's workers via a shared cursor, and blocks until all calls return.
/// `fn` must be safe to call concurrently from multiple threads; writes to
/// disjoint, index-owned slots need no further synchronization. The first
/// exception thrown by `fn` (if any) is rethrown on the calling thread after
/// the loop drains. Runs inline on the calling thread when the pool has one
/// worker or n <= 1.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Convenience overload with a transient pool of `threads` workers
/// (0 = DefaultThreadCount()).
void ParallelFor(size_t n, size_t threads,
                 const std::function<void(size_t)>& fn);

}  // namespace sthist

#endif  // STHIST_CORE_THREAD_POOL_H_

#ifndef STHIST_CORE_CHECK_H_
#define STHIST_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Lightweight invariant-checking macros.
///
/// The library does not use exceptions across its public API. Internal
/// invariant violations are programming errors and abort the process with a
/// source location, in the spirit of CHECK in other database codebases.

/// Aborts the process when `condition` is false, printing the failing
/// expression and source location. Enabled in all build types.
#define STHIST_CHECK(condition)                                             \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "STHIST_CHECK failed: %s at %s:%d\n", #condition, \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// STHIST_CHECK with a custom printf-style explanation appended.
#define STHIST_CHECK_MSG(condition, ...)                                     \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "STHIST_CHECK failed: %s at %s:%d: ", #condition, \
                   __FILE__, __LINE__);                                      \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Debug-only variant; compiles to nothing in NDEBUG builds.
#ifdef NDEBUG
#define STHIST_DCHECK(condition) \
  do {                           \
  } while (0)
#else
#define STHIST_DCHECK(condition) STHIST_CHECK(condition)
#endif

#endif  // STHIST_CORE_CHECK_H_

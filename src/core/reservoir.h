#ifndef STHIST_CORE_RESERVOIR_H_
#define STHIST_CORE_RESERVOIR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/status.h"

namespace sthist {

/// \file
/// Seed-deterministic reservoir sampling (DESIGN.md §18).
///
/// One Algorithm R implementation shared by every feedback-sample consumer:
/// the serving layer's FeedbackReservoir (re-initialization data), the KDE
/// estimator's point sample, and the static sampling estimator's row sample.
/// The reservoir is deterministic for a fixed (seed, offer sequence) pair —
/// equal streams produce bitwise-equal samples — which is what lets the §9
/// replay contract extend to sample-backed estimators.
///
/// Not thread-safe; owners serialize access (refiner thread, construction).

/// Reservoir sample of up to `capacity` items over an unbounded stream
/// (Vitter's Algorithm R) with optional recency ageing: `AgeHalve()` halves
/// the virtual stream length, boosting the acceptance rate of everything
/// offered afterwards so newer items displace old at an elevated rate.
template <typename T>
class Reservoir {
 public:
  /// Offer() result when Algorithm R passed the item over.
  static constexpr size_t kRejected = std::numeric_limits<size_t>::max();

  Reservoir(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    STHIST_CHECK(capacity > 0);
    items_.reserve(capacity);
  }

  /// Offers one stream item. Returns the slot index the item now occupies,
  /// or kRejected when it was passed over. While the reservoir is below
  /// capacity every item is accepted in arrival order (no RNG draw), so a
  /// stream no longer than the capacity is kept exactly and in order.
  size_t Offer(T item) {
    ++stream_;
    if (items_.size() < capacity_) {
      items_.push_back(std::move(item));
      return items_.size() - 1;
    }
    // Algorithm R: replace slot j with probability capacity / stream.
    const size_t j = rng_.Index(static_cast<size_t>(stream_));
    if (j < capacity_) {
      items_[j] = std::move(item);
      return j;
    }
    return kRejected;
  }

  /// Recency bias: halves the virtual stream length (never below the held
  /// sample size, so acceptance probabilities stay <= 1).
  void AgeHalve() {
    stream_ = std::max<uint64_t>(stream_ / 2, items_.size());
  }

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }

  /// Virtual stream length (aged down by AgeHalve).
  uint64_t stream_length() const { return stream_; }

  /// Held items in internal slot order — deterministic for a fixed stream.
  const std::vector<T>& items() const { return items_; }

  /// Empties the sample and restarts the stream counter. The RNG is NOT
  /// reset: the reservoir stays deterministic over its whole life, not
  /// per-epoch.
  void Clear() {
    items_.clear();
    stream_ = 0;
  }

  /// Replaces the held sample and stream counter wholesale (snapshot
  /// restore). Items beyond capacity are dropped; the stream length is
  /// floored at the held size so acceptance probabilities stay <= 1.
  void Restore(std::vector<T> items, uint64_t stream_length) {
    items_ = std::move(items);
    if (items_.size() > capacity_) items_.resize(capacity_);
    stream_ = std::max<uint64_t>(stream_length, items_.size());
  }

  /// Underlying RNG — exposed so owners can serialize engine state for
  /// bitwise-exact warm restarts.
  Rng& rng() { return rng_; }
  const Rng& rng() const { return rng_; }

 private:
  const size_t capacity_;
  Rng rng_;
  std::vector<T> items_;
  uint64_t stream_ = 0;  // Virtual stream length (aged down).
};

}  // namespace sthist

#endif  // STHIST_CORE_RESERVOIR_H_

#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/rng.h"

namespace sthist {

namespace {

// Appends `n` tuples drawn uniformly from `domain`.
void AppendUniformNoise(const Box& domain, size_t n, Rng* rng, Dataset* data) {
  Point p(domain.dim());
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < domain.dim(); ++d) {
      p[d] = rng->Uniform(domain.lo(d), domain.hi(d));
    }
    data->Append(p);
  }
}

// Draws a Gaussian value clamped into [lo, hi].
double ClampedGaussian(double mean, double sigma, double lo, double hi,
                       Rng* rng) {
  return std::clamp(rng->Gaussian(mean, sigma), lo, hi);
}

// Appends a subspace Gaussian bell: Gaussian around `center[d]` with
// `sigma[d]` in the relevant dimensions, uniform over the domain elsewhere.
// Returns the planted-cluster ground truth (extent = ±3σ clamped).
PlantedCluster AppendSubspaceBell(const Box& domain,
                                  const std::vector<size_t>& relevant_dims,
                                  const std::vector<double>& center,
                                  const std::vector<double>& sigma, size_t n,
                                  Rng* rng, Dataset* data) {
  const size_t dim = domain.dim();
  std::vector<bool> is_relevant(dim, false);
  for (size_t d : relevant_dims) is_relevant[d] = true;

  Point p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      if (is_relevant[d]) {
        p[d] = ClampedGaussian(center[d], sigma[d], domain.lo(d), domain.hi(d),
                               rng);
      } else {
        p[d] = rng->Uniform(domain.lo(d), domain.hi(d));
      }
    }
    data->Append(p);
  }

  std::vector<double> lo(dim), hi(dim);
  for (size_t d = 0; d < dim; ++d) {
    if (is_relevant[d]) {
      lo[d] = std::max(domain.lo(d), center[d] - 3.0 * sigma[d]);
      hi[d] = std::min(domain.hi(d), center[d] + 3.0 * sigma[d]);
    } else {
      lo[d] = domain.lo(d);
      hi[d] = domain.hi(d);
    }
  }
  PlantedCluster cluster;
  cluster.extent = Box(std::move(lo), std::move(hi));
  cluster.relevant_dims = relevant_dims;
  cluster.tuples = n;
  return cluster;
}

}  // namespace

GeneratedData MakeCross(const CrossConfig& config) {
  STHIST_CHECK(config.dim >= 2);
  STHIST_CHECK(config.domain_lo < config.domain_hi);
  const size_t dim = config.dim;
  const Box domain = Box::Cube(dim, config.domain_lo, config.domain_hi);
  const double center = 0.5 * (config.domain_lo + config.domain_hi);
  const double band_lo = center - config.band_halfwidth;
  const double band_hi = center + config.band_halfwidth;
  STHIST_CHECK(band_lo >= config.domain_lo && band_hi <= config.domain_hi);

  Rng rng(config.seed);
  GeneratedData out{Dataset(dim), domain, {}};
  out.data.Reserve(dim * config.tuples_per_cluster + config.noise_tuples);

  // Cluster i: uniform along axis i, narrow uniform band in all other dims.
  Point p(dim);
  for (size_t axis = 0; axis < dim; ++axis) {
    for (size_t i = 0; i < config.tuples_per_cluster; ++i) {
      for (size_t d = 0; d < dim; ++d) {
        p[d] = (d == axis) ? rng.Uniform(config.domain_lo, config.domain_hi)
                           : rng.Uniform(band_lo, band_hi);
      }
      out.data.Append(p);
    }
    std::vector<double> lo(dim, band_lo), hi(dim, band_hi);
    lo[axis] = config.domain_lo;
    hi[axis] = config.domain_hi;
    PlantedCluster cluster;
    cluster.extent = Box(std::move(lo), std::move(hi));
    for (size_t d = 0; d < dim; ++d) {
      if (d != axis) cluster.relevant_dims.push_back(d);
    }
    cluster.tuples = config.tuples_per_cluster;
    out.truth.push_back(std::move(cluster));
  }

  AppendUniformNoise(domain, config.noise_tuples, &rng, &out.data);
  return out;
}

GeneratedData MakeGauss(const GaussConfig& config) {
  STHIST_CHECK(config.dim >= 2);
  STHIST_CHECK(config.num_clusters > 0);
  STHIST_CHECK(config.min_subspace_dims >= 1);
  STHIST_CHECK(config.max_subspace_dims <= config.dim);
  STHIST_CHECK(config.min_subspace_dims <= config.max_subspace_dims);

  const size_t dim = config.dim;
  const Box domain = Box::Cube(dim, config.domain_lo, config.domain_hi);
  const double extent = config.domain_hi - config.domain_lo;

  Rng rng(config.seed);
  GeneratedData out{Dataset(dim), domain, {}};
  out.data.Reserve(config.cluster_tuples + config.noise_tuples);

  // Split the cluster tuple mass into num_clusters shares; keep shares
  // within a factor ~3 of each other so no cluster degenerates.
  std::vector<double> weights(config.num_clusters);
  double total_weight = 0.0;
  for (double& w : weights) {
    w = rng.Uniform(1.0, 3.0);
    total_weight += w;
  }

  size_t assigned = 0;
  for (size_t c = 0; c < config.num_clusters; ++c) {
    size_t n = (c + 1 == config.num_clusters)
                   ? config.cluster_tuples - assigned
                   : static_cast<size_t>(config.cluster_tuples * weights[c] /
                                         total_weight);
    assigned += n;

    size_t k = static_cast<size_t>(rng.Int(
        static_cast<int64_t>(config.min_subspace_dims),
        static_cast<int64_t>(config.max_subspace_dims)));
    std::vector<size_t> dims = rng.Sample(dim, k);
    std::sort(dims.begin(), dims.end());

    std::vector<double> center(dim), sigma(dim, 0.0);
    for (size_t d = 0; d < dim; ++d) {
      // Keep centers away from the border so bells are not heavily clipped.
      center[d] = rng.Uniform(config.domain_lo + 0.15 * extent,
                              config.domain_hi - 0.15 * extent);
    }
    for (size_t d : dims) sigma[d] = config.sigma_fraction * extent;

    out.truth.push_back(AppendSubspaceBell(domain, dims, center, sigma, n,
                                           &rng, &out.data));
  }

  AppendUniformNoise(domain, config.noise_tuples, &rng, &out.data);
  return out;
}

GeneratedData MakeSky(const SkyConfig& config) {
  STHIST_CHECK(config.tuples > 0);
  STHIST_CHECK(config.noise_fraction >= 0.0 && config.noise_fraction < 1.0);

  // Domain: right ascension, declination, then five filter magnitudes
  // (u, g, r, i, z), mirroring the SDSS schema the paper uses.
  const size_t kDim = 7;
  std::vector<double> domain_lo = {0.0, -90.0, 10.0, 10.0, 10.0, 10.0, 10.0};
  std::vector<double> domain_hi = {360.0, 90.0, 25.0, 25.0, 25.0, 25.0, 25.0};
  const Box domain(domain_lo, domain_hi);

  // The cluster skeleton follows Table 4 of the paper: per-cluster unused
  // dimensions (1-indexed there) and tuple counts; counts are rescaled to the
  // requested dataset size.
  struct Skeleton {
    std::vector<size_t> unused_dims;  // 0-indexed.
    double weight;                    // Paper tuple count.
  };
  const std::vector<Skeleton> kSkeletons = {
      {{}, 207377},           {{}, 178394},
      {{}, 153161},           {{}, 121384},
      {{}, 114699},           {{}, 83026},
      {{0}, 218770},          {{}, 54760},
      {{}, 50846},            {{}, 40067},
      {{0}, 98438},           {{}, 21495},
      {{}, 17522},            {{0, 1}, 153311},
      {{0}, 17437},           {{0, 1}, 77112},
      {{0, 1}, 39799},        {{0, 1, 6}, 21913},
      {{0, 1, 2, 6}, 24084},  {{0, 1, 2, 4, 5}, 19236},
  };

  double weight_total = 0.0;
  for (const Skeleton& s : kSkeletons) weight_total += s.weight;

  const size_t noise_tuples =
      static_cast<size_t>(config.tuples * config.noise_fraction);
  const size_t cluster_tuples = config.tuples - noise_tuples;

  Rng rng(config.seed);
  GeneratedData out{Dataset(kDim), domain, {}};
  out.data.Reserve(config.tuples);

  size_t emitted = 0;
  for (size_t c = 0; c < kSkeletons.size(); ++c) {
    const Skeleton& skel = kSkeletons[c];
    size_t n = (c + 1 == kSkeletons.size())
                   ? cluster_tuples - emitted
                   : static_cast<size_t>(cluster_tuples * skel.weight /
                                         weight_total);
    emitted += n;

    std::vector<bool> unused(kDim, false);
    for (size_t d : skel.unused_dims) unused[d] = true;
    std::vector<size_t> relevant;
    for (size_t d = 0; d < kDim; ++d) {
      if (!unused[d]) relevant.push_back(d);
    }

    std::vector<double> center(kDim), sigma(kDim, 0.0);
    for (size_t d = 0; d < kDim; ++d) {
      double extent = domain.Extent(d);
      center[d] = rng.Uniform(domain.lo(d) + 0.1 * extent,
                              domain.hi(d) - 0.1 * extent);
    }
    for (size_t d : relevant) sigma[d] = 0.025 * domain.Extent(d);

    out.truth.push_back(AppendSubspaceBell(domain, relevant, center, sigma, n,
                                           &rng, &out.data));
  }

  AppendUniformNoise(domain, noise_tuples, &rng, &out.data);
  return out;
}

GeneratedData MakeParticle(const ParticleConfig& config) {
  GaussConfig gauss;
  gauss.dim = config.dim;
  gauss.num_clusters = config.num_clusters;
  gauss.cluster_tuples = config.cluster_tuples;
  gauss.noise_tuples = config.noise_tuples;
  gauss.min_subspace_dims = config.min_subspace_dims;
  gauss.max_subspace_dims = config.max_subspace_dims;
  gauss.sigma_fraction = config.sigma_fraction;
  gauss.domain_lo = config.domain_lo;
  gauss.domain_hi = config.domain_hi;
  gauss.seed = config.seed;
  return MakeGauss(gauss);
}

namespace {

// Domain bounds shared by Cross/Gauss/Particle configs.
Status ValidateDomain(double lo, double hi) {
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    return Status::InvalidArgument("domain bounds must be finite");
  }
  if (lo >= hi) {
    return StatusF(StatusCode::kInvalidArgument,
                   "domain is empty: lo=%g >= hi=%g", lo, hi);
  }
  return Status::Ok();
}

Status ValidateSubspaceDims(size_t dim, size_t min_dims, size_t max_dims) {
  if (min_dims < 1) {
    return Status::InvalidArgument("min_subspace_dims must be >= 1");
  }
  if (max_dims > dim) {
    return StatusF(StatusCode::kInvalidArgument,
                   "max_subspace_dims=%zu exceeds dim=%zu", max_dims, dim);
  }
  if (min_dims > max_dims) {
    return StatusF(StatusCode::kInvalidArgument,
                   "min_subspace_dims=%zu > max_subspace_dims=%zu", min_dims,
                   max_dims);
  }
  return Status::Ok();
}

}  // namespace

Status Validate(const CrossConfig& config) {
  if (config.dim < 2) {
    return StatusF(StatusCode::kInvalidArgument,
                   "cross needs dim >= 2, got %zu", config.dim);
  }
  STHIST_RETURN_IF_ERROR(ValidateDomain(config.domain_lo, config.domain_hi));
  if (!std::isfinite(config.band_halfwidth) || config.band_halfwidth <= 0.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "band_halfwidth must be positive and finite, got %g",
                   config.band_halfwidth);
  }
  const double center = 0.5 * (config.domain_lo + config.domain_hi);
  if (center - config.band_halfwidth < config.domain_lo ||
      center + config.band_halfwidth > config.domain_hi) {
    return StatusF(StatusCode::kInvalidArgument,
                   "band_halfwidth=%g does not fit inside the domain [%g,%g]",
                   config.band_halfwidth, config.domain_lo, config.domain_hi);
  }
  return Status::Ok();
}

Status Validate(const GaussConfig& config) {
  if (config.dim < 2) {
    return StatusF(StatusCode::kInvalidArgument,
                   "gauss needs dim >= 2, got %zu", config.dim);
  }
  if (config.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be > 0");
  }
  STHIST_RETURN_IF_ERROR(ValidateDomain(config.domain_lo, config.domain_hi));
  STHIST_RETURN_IF_ERROR(ValidateSubspaceDims(
      config.dim, config.min_subspace_dims, config.max_subspace_dims));
  if (!std::isfinite(config.sigma_fraction) || config.sigma_fraction <= 0.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "sigma_fraction must be positive and finite, got %g",
                   config.sigma_fraction);
  }
  return Status::Ok();
}

Status Validate(const SkyConfig& config) {
  if (config.tuples == 0) {
    return Status::InvalidArgument("sky needs tuples > 0");
  }
  if (!std::isfinite(config.noise_fraction) || config.noise_fraction < 0.0 ||
      config.noise_fraction >= 1.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "noise_fraction must be in [0,1), got %g",
                   config.noise_fraction);
  }
  return Status::Ok();
}

Status Validate(const ParticleConfig& config) {
  GaussConfig gauss;
  gauss.dim = config.dim;
  gauss.num_clusters = config.num_clusters;
  gauss.min_subspace_dims = config.min_subspace_dims;
  gauss.max_subspace_dims = config.max_subspace_dims;
  gauss.sigma_fraction = config.sigma_fraction;
  gauss.domain_lo = config.domain_lo;
  gauss.domain_hi = config.domain_hi;
  return Validate(gauss);
}

}  // namespace sthist

#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"

namespace sthist {

Dataset::Dataset(size_t dim) : dim_(dim) { STHIST_CHECK(dim > 0); }

void Dataset::Append(std::span<const double> p) {
  STHIST_CHECK(p.size() == dim_);
  values_.insert(values_.end(), p.begin(), p.end());
}

Status Dataset::AppendChecked(std::span<const double> p) {
  if (p.size() != dim_) {
    return StatusF(StatusCode::kInvalidArgument,
                   "tuple has %zu attributes, dataset has %zu", p.size(),
                   dim_);
  }
  for (size_t d = 0; d < p.size(); ++d) {
    if (!std::isfinite(p[d])) {
      return StatusF(StatusCode::kInvalidArgument,
                     "attribute %zu is non-finite", d);
    }
  }
  Append(p);
  return Status::Ok();
}

Status Dataset::Validate() const {
  for (size_t i = 0; i < size(); ++i) {
    std::span<const double> p = row(i);
    for (size_t d = 0; d < dim_; ++d) {
      if (!std::isfinite(p[d])) {
        return StatusF(StatusCode::kInvalidArgument,
                       "tuple %zu, attribute %zu is non-finite", i, d);
      }
    }
  }
  return Status::Ok();
}

void Dataset::Reserve(size_t n) { values_.reserve(n * dim_); }

Box Dataset::Bounds() const {
  STHIST_CHECK(size() > 0);
  std::vector<double> lo(dim_, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dim_, -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < size(); ++i) {
    std::span<const double> p = row(i);
    for (size_t d = 0; d < dim_; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  return Box(std::move(lo), std::move(hi));
}

size_t Dataset::CountInBox(const Box& box) const {
  STHIST_CHECK(box.dim() == dim_);
  size_t count = 0;
  for (size_t i = 0; i < size(); ++i) {
    if (box.ContainsPoint(row(i))) ++count;
  }
  return count;
}

Box Dataset::BoundsOf(std::span<const size_t> rows) const {
  STHIST_CHECK(!rows.empty());
  std::vector<double> lo(dim_, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dim_, -std::numeric_limits<double>::infinity());
  for (size_t i : rows) {
    std::span<const double> p = row(i);
    for (size_t d = 0; d < dim_; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  return Box(std::move(lo), std::move(hi));
}

}  // namespace sthist

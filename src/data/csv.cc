#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace sthist {

namespace {

// Splits a CSV line on commas and parses each field as a double. Returns
// false when any field fails to parse.
bool ParseLine(const std::string& line, std::vector<double>* out) {
  out->clear();
  std::stringstream stream(line);
  std::string field;
  while (std::getline(stream, field, ',')) {
    char* end = nullptr;
    double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str()) return false;
    // Allow trailing whitespace only.
    while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
    if (*end != '\0') return false;
    out->push_back(value);
  }
  return !out->empty();
}

}  // namespace

bool WriteCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (size_t i = 0; i < data.size(); ++i) {
    std::span<const double> p = data.row(i);
    for (size_t d = 0; d < p.size(); ++d) {
      if (d > 0) out << ',';
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", p[d]);
      out << buf;
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<Dataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::string line;
  std::vector<double> fields;
  std::optional<Dataset> data;
  bool first_line = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!ParseLine(line, &fields)) {
      if (first_line) {
        first_line = false;  // Tolerate a header row.
        continue;
      }
      return std::nullopt;
    }
    first_line = false;
    if (!data.has_value()) {
      data.emplace(fields.size());
    } else if (fields.size() != data->dim()) {
      return std::nullopt;
    }
    data->Append(fields);
  }
  if (!data.has_value()) return std::nullopt;
  return data;
}

}  // namespace sthist

#include "data/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace sthist {

namespace {

/// Per-field outcome of parsing one CSV line.
enum class LineError {
  kNone,
  kEmpty,        // No fields at all.
  kNotNumeric,   // A field failed to parse as a double.
  kNotFinite,    // A field parsed to NaN or infinity.
};

// Splits a CSV line on commas and parses each field as a finite double. On
// failure reports which (1-based) column broke and why.
LineError ParseLine(const std::string& line, std::vector<double>* out,
                    size_t* bad_column) {
  out->clear();
  std::stringstream stream(line);
  std::string field;
  size_t column = 0;
  while (std::getline(stream, field, ',')) {
    ++column;
    char* end = nullptr;
    double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str()) {
      *bad_column = column;
      return LineError::kNotNumeric;
    }
    // Allow trailing whitespace only.
    while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
    if (*end != '\0') {
      *bad_column = column;
      return LineError::kNotNumeric;
    }
    if (!std::isfinite(value)) {
      *bad_column = column;
      return LineError::kNotFinite;
    }
    out->push_back(value);
  }
  return out->empty() ? LineError::kEmpty : LineError::kNone;
}

}  // namespace

Status WriteCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  for (size_t i = 0; i < data.size(); ++i) {
    std::span<const double> p = data.row(i);
    for (size_t d = 0; d < p.size(); ++d) {
      if (d > 0) out << ',';
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", p[d]);
      out << buf;
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IoError("write to " + path + " failed");
  }
  return Status::Ok();
}

StatusOr<Dataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }

  std::string line;
  std::vector<double> fields;
  std::optional<Dataset> data;
  size_t line_number = 0;
  bool first_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line == "\r") continue;
    size_t bad_column = 0;
    LineError error = ParseLine(line, &fields, &bad_column);
    if (error == LineError::kNotNumeric && first_line) {
      first_line = false;  // Tolerate a header row.
      continue;
    }
    if (error != LineError::kNone) {
      const char* reason =
          error == LineError::kNotFinite ? "non-finite value" :
          error == LineError::kEmpty ? "no fields" : "non-numeric field";
      return StatusF(StatusCode::kInvalidArgument,
                     "%s: line %zu, column %zu: %s", path.c_str(), line_number,
                     bad_column, reason);
    }
    first_line = false;
    if (!data.has_value()) {
      data.emplace(fields.size());
    } else if (fields.size() != data->dim()) {
      return StatusF(StatusCode::kInvalidArgument,
                     "%s: line %zu: expected %zu fields, got %zu",
                     path.c_str(), line_number, data->dim(), fields.size());
    }
    data->Append(fields);
  }
  if (!data.has_value()) {
    return Status::InvalidArgument(path + ": no data rows");
  }
  return *std::move(data);
}

}  // namespace sthist

#ifndef STHIST_DATA_CSV_H_
#define STHIST_DATA_CSV_H_

#include <string>

#include "core/status.h"
#include "data/dataset.h"

namespace sthist {

/// Writes `data` to `path` as comma-separated values, one tuple per line.
/// Returns an IO_ERROR status naming the path on failure.
Status WriteCsv(const Dataset& data, const std::string& path);

/// Reads a CSV file of numeric values into a Dataset. All rows must have the
/// same number of fields; a leading header line of non-numeric fields is
/// skipped. Non-finite literals (nan, inf) are rejected — datasets are
/// untrusted input and every downstream consumer assumes finite coordinates.
/// On failure returns a Status naming the offending line (1-based) and
/// column where applicable.
StatusOr<Dataset> ReadCsv(const std::string& path);

}  // namespace sthist

#endif  // STHIST_DATA_CSV_H_

#ifndef STHIST_DATA_CSV_H_
#define STHIST_DATA_CSV_H_

#include <optional>
#include <string>

#include "data/dataset.h"

namespace sthist {

/// Writes `data` to `path` as comma-separated values, one tuple per line.
/// Returns false on I/O failure.
bool WriteCsv(const Dataset& data, const std::string& path);

/// Reads a CSV file of numeric values into a Dataset. All rows must have the
/// same number of fields; a leading header line of non-numeric fields is
/// skipped. Returns std::nullopt on I/O failure or malformed input.
std::optional<Dataset> ReadCsv(const std::string& path);

}  // namespace sthist

#endif  // STHIST_DATA_CSV_H_

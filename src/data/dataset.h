#ifndef STHIST_DATA_DATASET_H_
#define STHIST_DATA_DATASET_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/box.h"
#include "core/status.h"

namespace sthist {

/// An in-memory relation over numeric attributes.
///
/// Storage is row-major: the library's access patterns (k-d tree bulk load,
/// per-point dimension tests in MineClus) always touch all attributes of a
/// tuple together. Categorical attributes are assumed to be mapped to numbers
/// upstream, as in the paper.
class Dataset {
 public:
  /// Creates an empty dataset with `dim` attributes.
  explicit Dataset(size_t dim);

  /// Number of attributes.
  size_t dim() const { return dim_; }

  /// Number of tuples.
  size_t size() const { return dim_ == 0 ? 0 : values_.size() / dim_; }

  /// The i-th tuple as a contiguous span of `dim()` values.
  std::span<const double> row(size_t i) const {
    return {values_.data() + i * dim_, dim_};
  }

  /// Value of attribute d of tuple i.
  double value(size_t i, size_t d) const { return values_[i * dim_ + d]; }

  /// Appends one tuple. Requires p.size() == dim().
  void Append(std::span<const double> p);

  /// Appends one tuple from untrusted input: rejects wrong arity and
  /// non-finite values with a reason instead of aborting.
  Status AppendChecked(std::span<const double> p);

  /// Scans for non-finite values — the one corruption every downstream
  /// consumer (bounds, k-d tree, clustering) silently mis-handles. Returns
  /// INVALID_ARGUMENT naming the first offending tuple and attribute.
  Status Validate() const;

  /// Reserves storage for `n` tuples.
  void Reserve(size_t n);

  /// The minimal bounding box of all tuples. Requires a non-empty dataset.
  Box Bounds() const;

  /// Counts tuples inside `box` by scanning. O(n * d); prefer KdTree for
  /// repeated counting.
  size_t CountInBox(const Box& box) const;

  /// Minimal bounding rectangle of a subset of tuples (by index). Requires a
  /// non-empty subset.
  Box BoundsOf(std::span<const size_t> rows) const;

 private:
  size_t dim_;
  std::vector<double> values_;
};

}  // namespace sthist

#endif  // STHIST_DATA_DATASET_H_

#ifndef STHIST_DATA_GENERATORS_H_
#define STHIST_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "core/box.h"
#include "core/status.h"
#include "data/dataset.h"

namespace sthist {

/// Ground-truth description of one planted cluster, used by tests and by the
/// cluster-recovery experiments.
struct PlantedCluster {
  /// Extended bounding rectangle of the cluster: tight (≈ ±3σ or band width)
  /// in the relevant dimensions, spanning the full domain elsewhere.
  Box extent;
  /// Dimensions in which the cluster is constrained ("relevant" / "used").
  std::vector<size_t> relevant_dims;
  /// Number of tuples drawn for this cluster.
  size_t tuples = 0;
};

/// A generated dataset plus its ground truth.
struct GeneratedData {
  Dataset data;
  /// The attribute-value domain D.
  Box domain;
  std::vector<PlantedCluster> truth;
};

/// Configuration for the Cross family (paper §5.1, Table 1 and Table 3).
///
/// The n-dimensional Cross contains n clusters; cluster i spans the full
/// domain along dimension i and a narrow band (width 2*band_halfwidth,
/// centered) in every other dimension, so each cluster is (n-1)-dimensional
/// in subspace-clustering terms. Remaining tuples are uniform noise.
struct CrossConfig {
  size_t dim = 2;
  size_t tuples_per_cluster = 10000;
  size_t noise_tuples = 2000;
  double band_halfwidth = 25.0;
  double domain_lo = 0.0;
  double domain_hi = 1000.0;
  uint64_t seed = 1;
};

/// Generates a Cross dataset. The 2-d default matches Table 1 (22,000
/// tuples); pass dim=3..5 with scaled tuple counts for Table 3 variants.
GeneratedData MakeCross(const CrossConfig& config);

/// Configuration for the Gauss dataset (paper §5.1): multi-dimensional
/// Gaussian bells drawn in random k-dimensional subspaces, 2 <= k <= 5,
/// uniform across the domain in the unused dimensions, plus uniform noise.
struct GaussConfig {
  size_t dim = 6;
  size_t num_clusters = 10;
  size_t cluster_tuples = 100000;  // Total across all clusters.
  size_t noise_tuples = 10000;
  size_t min_subspace_dims = 2;
  size_t max_subspace_dims = 5;
  /// Cluster standard deviation as a fraction of the domain extent.
  double sigma_fraction = 0.03;
  double domain_lo = 0.0;
  double domain_hi = 1000.0;
  uint64_t seed = 2;
};

/// Generates the Gauss dataset (paper defaults: 6-d, 110,000 tuples).
GeneratedData MakeGauss(const GaussConfig& config);

/// Configuration for the synthetic Sky dataset.
///
/// Substitution for the Sloan Digital Sky Survey sample the paper uses
/// (≈1.7M tuples, 7-d: two sky coordinates + five filter magnitudes). The
/// generator plants the exact cluster structure the paper reports in
/// Table 4: 20 clusters, 11 full-dimensional and 9 subspace clusters with
/// the listed unused-dimension sets and proportional tuple counts, plus
/// uniform background noise. This preserves the phenomenon under test —
/// local correlations hidden in projections of the data.
struct SkyConfig {
  /// Total tuples including noise. The paper's sample is ≈1.7M; the default
  /// is scaled down for bench runtime and is configurable back up.
  size_t tuples = 200000;
  double noise_fraction = 0.05;
  uint64_t seed = 3;
};

/// Generates the synthetic Sky dataset (always 7-dimensional).
GeneratedData MakeSky(const SkyConfig& config);

/// Configuration for the synthetic particle-physics dataset used by the
/// technical report's high-dimensional experiment (18-d, 5M tuples there;
/// scaled default here). Low-dimensional subspace bells under heavy noise.
struct ParticleConfig {
  size_t dim = 18;
  size_t num_clusters = 12;
  size_t cluster_tuples = 80000;
  size_t noise_tuples = 20000;
  size_t min_subspace_dims = 2;
  size_t max_subspace_dims = 6;
  double sigma_fraction = 0.02;
  double domain_lo = 0.0;
  double domain_hi = 1000.0;
  uint64_t seed = 4;
};

/// Generates the synthetic particle-physics dataset.
GeneratedData MakeParticle(const ParticleConfig& config);

/// Validation of generator parameters arriving from untrusted sources (CLI
/// flags, config files): each returns INVALID_ARGUMENT with a reason for the
/// combinations that would otherwise trip the generators' internal CHECKs.
Status Validate(const CrossConfig& config);
Status Validate(const GaussConfig& config);
Status Validate(const SkyConfig& config);
Status Validate(const ParticleConfig& config);

}  // namespace sthist

#endif  // STHIST_DATA_GENERATORS_H_

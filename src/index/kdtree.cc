#include "index/kdtree.h"

#include <algorithm>
#include <limits>

#include "core/check.h"

namespace sthist {

KdTree::KdTree(const Dataset& data, size_t leaf_size)
    : data_(data), leaf_size_(leaf_size) {
  STHIST_CHECK(leaf_size_ >= 1);
  order_.resize(data.size());
  for (uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (!order_.empty()) {
    nodes_.reserve(2 * order_.size() / leaf_size_ + 2);
    root_ = Build(0, static_cast<uint32_t>(order_.size()), 0);
  }
}

Box KdTree::TightBounds(uint32_t begin, uint32_t end) const {
  std::vector<double> lo(data_.dim(), std::numeric_limits<double>::infinity());
  std::vector<double> hi(data_.dim(),
                         -std::numeric_limits<double>::infinity());
  for (uint32_t i = begin; i < end; ++i) {
    std::span<const double> p = data_.row(order_[i]);
    for (size_t d = 0; d < data_.dim(); ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  return Box(std::move(lo), std::move(hi));
}

int32_t KdTree::Build(uint32_t begin, uint32_t end, size_t depth) {
  Node node;
  node.begin = begin;
  node.end = end;
  node.bounds = TightBounds(begin, end);

  if (end - begin > leaf_size_) {
    // Split on the widest dimension of the tight bounds; this adapts to
    // skewed (clustered) data better than cycling dimensions by depth.
    size_t split_dim = 0;
    double widest = -1.0;
    for (size_t d = 0; d < data_.dim(); ++d) {
      if (node.bounds.Extent(d) > widest) {
        widest = node.bounds.Extent(d);
        split_dim = d;
      }
    }

    uint32_t mid = begin + (end - begin) / 2;
    std::nth_element(order_.begin() + begin, order_.begin() + mid,
                     order_.begin() + end,
                     [&](uint32_t a, uint32_t b) {
                       return data_.value(a, split_dim) <
                              data_.value(b, split_dim);
                     });

    // Degenerate case: all points equal in every dimension (zero-extent
    // bounds). Keep such runs as one (possibly oversized) leaf.
    if (widest > 0.0) {
      int32_t left = Build(begin, mid, depth + 1);
      int32_t right = Build(mid, end, depth + 1);
      node.left = left;
      node.right = right;
    }
  }

  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size() - 1);
}

size_t KdTree::Count(const Box& box) const {
  STHIST_CHECK(box.dim() == data_.dim());
  if (root_ < 0) return 0;
  return CountNode(root_, box);
}

size_t KdTree::CountNode(int32_t node_id, const Box& box) const {
  const Node& node = nodes_[node_id];
  // Closed-interval disjointness test: points on the query boundary count,
  // so prune only when the boxes do not even touch.
  for (size_t d = 0; d < box.dim(); ++d) {
    if (node.bounds.hi(d) < box.lo(d) || node.bounds.lo(d) > box.hi(d)) {
      return 0;
    }
  }
  if (box.Contains(node.bounds)) return node.end - node.begin;
  if (node.left < 0) {
    size_t count = 0;
    for (uint32_t i = node.begin; i < node.end; ++i) {
      if (box.ContainsPoint(data_.row(order_[i]))) ++count;
    }
    return count;
  }
  return CountNode(node.left, box) + CountNode(node.right, box);
}

void KdTree::Collect(const Box& box, std::vector<size_t>* out) const {
  STHIST_CHECK(box.dim() == data_.dim());
  if (root_ >= 0) CollectNode(root_, box, out);
}

void KdTree::CollectNode(int32_t node_id, const Box& box,
                         std::vector<size_t>* out) const {
  const Node& node = nodes_[node_id];
  for (size_t d = 0; d < box.dim(); ++d) {
    if (node.bounds.hi(d) < box.lo(d) || node.bounds.lo(d) > box.hi(d)) {
      return;
    }
  }
  if (box.Contains(node.bounds)) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      out->push_back(order_[i]);
    }
    return;
  }
  if (node.left < 0) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      if (box.ContainsPoint(data_.row(order_[i]))) out->push_back(order_[i]);
    }
    return;
  }
  CollectNode(node.left, box, out);
  CollectNode(node.right, box, out);
}

}  // namespace sthist

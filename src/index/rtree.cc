#include "index/rtree.h"

#include <algorithm>
#include <utility>

#include "core/check.h"

namespace sthist {

void RTree::Clear() {
  nodes_.clear();
  root_ = -1;
  size_ = 0;
}

Box RTree::BoundsOf(const Entry* begin, const Entry* end) {
  STHIST_DCHECK(begin != end);
  Box bounds = begin->box;
  for (const Entry* e = begin + 1; e != end; ++e) {
    bounds.ExtendToContain(e->box);
  }
  return bounds;
}

size_t RTree::WidestCenterDim(const Entry* begin, const Entry* end) {
  const size_t dim = begin->box.dim();
  size_t best_dim = 0;
  double best_spread = -1.0;
  for (size_t d = 0; d < dim; ++d) {
    double lo = begin->box.lo(d) + begin->box.hi(d);
    double hi = lo;
    for (const Entry* e = begin + 1; e != end; ++e) {
      const double center2 = e->box.lo(d) + e->box.hi(d);
      lo = std::min(lo, center2);
      hi = std::max(hi, center2);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_dim = d;
    }
  }
  return best_dim;
}

bool RTree::ClosedOverlap(const Box& a, const Box& b) {
  STHIST_DCHECK(a.dim() == b.dim());
  for (size_t d = 0; d < a.dim(); ++d) {
    if (a.hi(d) < b.lo(d) || b.hi(d) < a.lo(d)) return false;
  }
  return true;
}

double RTree::Enlargement(const Box& bounds, const Box& box) {
  Box grown = bounds;
  grown.ExtendToContain(box);
  return grown.Volume() - bounds.Volume();
}

double RTree::MarginEnlargement(const Box& bounds, const Box& box) {
  double growth = 0.0;
  for (size_t d = 0; d < bounds.dim(); ++d) {
    const double lo = std::min(bounds.lo(d), box.lo(d));
    const double hi = std::max(bounds.hi(d), box.hi(d));
    growth += (hi - lo) - bounds.Extent(d);
  }
  return growth;
}

double RTree::Margin(const Box& bounds) {
  double margin = 0.0;
  for (size_t d = 0; d < bounds.dim(); ++d) margin += bounds.Extent(d);
  return margin;
}

int32_t RTree::BuildNode(Entry* begin, Entry* end) {
  // nodes_ may reallocate during the recursive calls below, so never hold a
  // Node reference across them — address nodes_[id] afresh each time.
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].bounds = BoundsOf(begin, end);

  const size_t n = static_cast<size_t>(end - begin);
  if (n <= kLeafCapacity) {
    nodes_[id].entries.assign(begin, end);
    return id;
  }

  const size_t split_dim = WidestCenterDim(begin, end);
  Entry* mid = begin + n / 2;
  std::nth_element(begin, mid, end, [split_dim](const Entry& a, const Entry& b) {
    return a.box.lo(split_dim) + a.box.hi(split_dim) <
           b.box.lo(split_dim) + b.box.hi(split_dim);
  });
  const int32_t left = BuildNode(begin, mid);
  const int32_t right = BuildNode(mid, end);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

void RTree::Bulk(std::vector<Entry> entries) {
  Clear();
  if (entries.empty()) return;
  size_ = entries.size();
  nodes_.reserve(2 * (entries.size() / kLeafCapacity + 1));
  root_ = BuildNode(entries.data(), entries.data() + entries.size());
}

void RTree::SplitLeaf(int32_t node_id) {
  std::vector<Entry> entries = std::move(nodes_[node_id].entries);
  nodes_[node_id].entries.clear();

  const size_t split_dim =
      WidestCenterDim(entries.data(), entries.data() + entries.size());
  Entry* mid = entries.data() + entries.size() / 2;
  std::nth_element(entries.data(), mid, entries.data() + entries.size(),
                   [split_dim](const Entry& a, const Entry& b) {
                     return a.box.lo(split_dim) + a.box.hi(split_dim) <
                            b.box.lo(split_dim) + b.box.hi(split_dim);
                   });

  const int32_t left = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[left].bounds = BoundsOf(entries.data(), mid);
  nodes_[left].entries.assign(entries.data(), mid);

  const int32_t right = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[right].bounds = BoundsOf(mid, entries.data() + entries.size());
  nodes_[right].entries.assign(mid, entries.data() + entries.size());

  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
}

void RTree::Insert(const Box& box, uint64_t id) {
  ++size_;
  if (root_ < 0) {
    root_ = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[root_].bounds = box;
    nodes_[root_].entries.push_back({box, id});
    return;
  }

  int32_t at = root_;
  while (true) {
    nodes_[at].bounds.ExtendToContain(box);
    if (nodes_[at].leaf()) break;
    const int32_t left = nodes_[at].left;
    const int32_t right = nodes_[at].right;
    const double grow_left = Enlargement(nodes_[left].bounds, box);
    const double grow_right = Enlargement(nodes_[right].bounds, box);
    if (grow_left < grow_right) {
      at = left;
    } else if (grow_right < grow_left) {
      at = right;
    } else {
      // Volume tie. Above ~15 dimensions box volumes underflow toward 0.0,
      // so volume growth ties on *every* descent and the walk degrades to
      // an arbitrary-side chain of badly overlapping leaves. Margin
      // (summed extent) growth is a sum, not a product — it stays finite
      // and discriminating in any dimensionality — so break the tie on it,
      // then fall back to the smaller box (Guttman's tiebreak, but on
      // margin, which cannot underflow).
      const double margin_left = MarginEnlargement(nodes_[left].bounds, box);
      const double margin_right =
          MarginEnlargement(nodes_[right].bounds, box);
      if (margin_left < margin_right) {
        at = left;
      } else if (margin_right < margin_left) {
        at = right;
      } else {
        at = Margin(nodes_[left].bounds) <= Margin(nodes_[right].bounds)
                 ? left
                 : right;
      }
    }
  }
  nodes_[at].entries.push_back({box, id});
  if (nodes_[at].entries.size() > kLeafCapacity) SplitLeaf(at);
}

size_t RTree::Probe(const Box& query, BoxOverlap mode,
                    std::vector<uint64_t>* out) const {
  STHIST_DCHECK(out != nullptr);
  if (root_ < 0) return 0;
  // Iterative DFS; the stack is function-local so concurrent probes never
  // share mutable state.
  size_t visited = 0;
  std::vector<int32_t> stack;
  stack.reserve(64);
  stack.push_back(root_);
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    ++visited;
    // Closed overlap is a superset of open-interior overlap, so it is a
    // valid prune for both modes; the exact predicate runs per entry.
    if (!ClosedOverlap(node.bounds, query)) continue;
    if (node.leaf()) {
      for (const Entry& entry : node.entries) {
        const bool hit = mode == BoxOverlap::kOpenInterior
                             ? entry.box.Intersects(query)
                             : ClosedOverlap(entry.box, query);
        if (hit) out->push_back(entry.id);
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return visited;
}

}  // namespace sthist

#ifndef STHIST_INDEX_KDTREE_H_
#define STHIST_INDEX_KDTREE_H_

#include <cstdint>
#include <vector>

#include "core/box.h"
#include "data/dataset.h"

namespace sthist {

/// Bulk-loaded k-d tree supporting exact range counting.
///
/// This plays the role of the database execution engine in the paper's
/// feedback loop: after a range query "executes", STHoles learns the exact
/// number of tuples in each `query ∩ bucket` region. Counting is accelerated
/// by two prunings: a subtree whose bounding box is disjoint from the query
/// contributes 0, and a subtree whose bounding box lies fully inside the
/// query contributes its cached size without visiting points.
///
/// The tree references the dataset it was built over; the dataset must
/// outlive the tree.
class KdTree {
 public:
  /// Builds the tree over all tuples of `data`. O(n log n).
  /// `leaf_size` bounds the number of points stored per leaf.
  explicit KdTree(const Dataset& data, size_t leaf_size = 32);

  KdTree(const KdTree&) = delete;
  KdTree& operator=(const KdTree&) = delete;

  /// Number of indexed tuples.
  size_t size() const { return order_.size(); }

  /// Exact number of tuples inside `box` (closed intervals).
  size_t Count(const Box& box) const;

  /// Appends the indices (into the underlying dataset) of all tuples inside
  /// `box` to `out`.
  void Collect(const Box& box, std::vector<size_t>* out) const;

 private:
  struct Node {
    Box bounds;          // Tight bounding box of the subtree's points.
    uint32_t begin = 0;  // Range [begin, end) into order_.
    uint32_t end = 0;
    int32_t left = -1;   // Child node ids; -1 for leaves.
    int32_t right = -1;
  };

  // Recursively builds the subtree over order_[begin, end); returns node id.
  int32_t Build(uint32_t begin, uint32_t end, size_t depth);

  size_t CountNode(int32_t node_id, const Box& box) const;
  void CollectNode(int32_t node_id, const Box& box,
                   std::vector<size_t>* out) const;

  Box TightBounds(uint32_t begin, uint32_t end) const;

  const Dataset& data_;
  size_t leaf_size_;
  std::vector<uint32_t> order_;  // Permutation of tuple indices.
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace sthist

#endif  // STHIST_INDEX_KDTREE_H_

#ifndef STHIST_INDEX_FLAT_INDEX_H_
#define STHIST_INDEX_FLAT_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/box.h"
#include "index/rtree.h"  // BoxOverlap

namespace sthist {

/// Flattened, cache-friendly spatial index over (box, id) entries — the
/// structure-of-arrays replacement for the pointer-based RTree on the
/// estimation hot path (DESIGN.md §15).
///
/// Layout. Entry bounds live in contiguous per-dimension planes
/// (`lo[d * stride + slot]`), so a probe touches long runs of doubles
/// instead of chasing per-entry `Box` heap vectors, and box-intersection
/// tests vectorize over 4 (AVX2) or 2 (NEON) entries at a time through
/// core/simd.h. The tree over those entries is a balanced binary partition
/// (median split of entry centers along the widest-spread dimension — the
/// same partitioning RTree::Bulk uses) linearized breadth-first into flat
/// node arrays: node bounds in their own contiguous planes, children
/// addressed by index with the right child always at `left + 1`. Leaves own
/// fixed runs of slots padded to the SIMD block width with never-matching
/// sentinel bounds (`lo = +inf, hi = -inf`), so the kernel always runs full
/// blocks.
///
/// Maintenance. `Bulk` rebuilds from scratch; `Insert` appends to a small
/// overflow tail (scanned contiguously on every probe) and folds the whole
/// index into a fresh bulk build once the tail outgrows its budget — the
/// incremental path a pure-drill append takes, mirroring RTree::Insert's
/// role in the §10 maintenance table.
///
/// Probes are const, allocation-free once `out`'s capacity is warm
/// (fixed-size traversal stack, fixed per-leaf hit buffer), and safe to run
/// concurrently; Bulk/Insert require exclusive access. Like RTree, probes
/// append matching ids in unspecified order without deduplication.
class FlatBoxIndex {
 public:
  /// One indexed element. All boxes in one index share a dimensionality.
  struct Entry {
    Box box;
    uint64_t id = 0;
  };

  /// Work done by one probe, for the index.flat.* metrics (DESIGN.md §13).
  struct ProbeStats {
    /// Tree nodes touched (including pruned ones), plus one for the
    /// overflow tail when it was scanned. Comparable to RTree::Probe's
    /// return value.
    uint32_t node_visits = 0;
    /// SIMD-width entry blocks run through the intersection kernel.
    uint32_t entry_blocks = 0;
  };

  FlatBoxIndex() = default;

  /// Discards all entries and nodes.
  void Clear();

  /// Replaces the contents with `entries`. O(n log n).
  void Bulk(std::vector<Entry> entries);

  /// Appends one entry to the overflow tail; compacts (full rebuild) when
  /// the tail outgrows max(32, size/16) entries.
  void Insert(const Box& box, uint64_t id);

  /// Appends the ids of every entry whose box overlaps `query` under `mode`
  /// to `out` (not cleared first). Order unspecified.
  ProbeStats Probe(const Box& query, BoxOverlap mode,
                   std::vector<uint64_t>* out) const;

  /// Number of entries held (tree + overflow tail).
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Entries currently in the unindexed overflow tail.
  size_t overflow_size() const { return ov_ids_.size(); }

  /// Overflow folds performed since construction (survives Clear is NOT
  /// guaranteed — Clear resets it like everything else).
  uint64_t compactions() const { return compactions_; }

 private:
  // Leaf fan-out before padding. Larger than RTree's 8: the vectorized leaf
  // scan makes wide leaves cheap, and fewer nodes mean fewer prune tests.
  static constexpr uint32_t kLeafCapacity = 16;
  // Slots per SIMD block; leaves are padded to a multiple of this.
  static constexpr uint32_t kBlock = 4;
  // Id marking a padded (sentinel) slot; never emitted.
  static constexpr uint64_t kPadId = ~uint64_t{0};
  // Traversal stack bound: the bulk build median-splits exactly in half, so
  // depth <= ceil(log2(n / kLeafCapacity)) + 1 and a DFS stack holds at
  // most depth + 1 nodes. 64 covers any entry count an uint32 slot space
  // can address, with margin.
  static constexpr int kMaxStack = 64;

  struct Node {
    int32_t left = -1;   // Internal: left child id, right child = left + 1.
    uint32_t first = 0;  // Leaf: first slot of its padded run.
    uint32_t count = 0;  // Leaf: padded slot count (multiple of kBlock).

    bool leaf() const { return left < 0; }
  };

  // Builds nodes_/planes from `entries` (consumed; reordered in place).
  void Build(std::vector<Entry>* entries);
  // Reconstructs every live entry (tree slots minus padding, plus the
  // overflow tail) for a compaction rebuild.
  std::vector<Entry> CollectEntries() const;
  // Folds the overflow tail into a fresh bulk build.
  void Compact();

  size_t dim_ = 0;
  size_t size_ = 0;

  // --- Bulk-built tree ---
  size_t stride_ = 0;            // Padded slot count per plane.
  std::vector<double> lo_, hi_;  // Entry bound planes, [d * stride_ + slot].
  std::vector<uint64_t> ids_;    // slot -> entry id; kPadId on padding.
  std::vector<Node> nodes_;      // BFS order; nodes_[0] is the root.
  std::vector<double> node_lo_, node_hi_;  // Node bounds, [node * dim_ + d].

  // --- Overflow tail (since the last build) ---
  // Entry-major bounds: entry i occupies [i * 2 * dim_, (i + 1) * 2 * dim_),
  // lo first then hi. Contiguous, so the scan stays cache-friendly even
  // though it is scalar.
  std::vector<double> ov_bounds_;
  std::vector<uint64_t> ov_ids_;

  uint64_t compactions_ = 0;
};

}  // namespace sthist

#endif  // STHIST_INDEX_FLAT_INDEX_H_

#ifndef STHIST_INDEX_RTREE_H_
#define STHIST_INDEX_RTREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/box.h"

namespace sthist {

/// Overlap predicate a probe matches entries against.
enum class BoxOverlap {
  /// Open interiors overlap: the intersection has positive extent in every
  /// dimension (Box::Intersects). Boxes merely sharing a boundary miss.
  kOpenInterior,
  /// Closed intervals overlap: touching boundaries and degenerate
  /// (zero-extent) boxes count. A superset of kOpenInterior.
  kClosed,
};

/// Bulk-loaded spatial index over (box, id) entries supporting
/// box-intersection probes.
///
/// Structurally a binary R-tree: internal nodes hold the bounding box of
/// their subtree, leaves hold up to a handful of entries. `Bulk` loads
/// top-down by median-splitting entry centers along the widest-spread
/// dimension (the same partitioning the counting k-d tree uses, generalized
/// from points to boxes); `Insert` descends by least volume enlargement and
/// splits full leaves, so the tree can also be maintained incrementally.
/// Unlike `KdTree`, entries are arbitrary boxes rather than dataset tuples —
/// this is the index the histograms put their *buckets* in.
///
/// Probes never rank or deduplicate: they append the ids of all entries
/// overlapping the query (under the requested predicate) in unspecified
/// order. Thread safety: any number of concurrent probes; Bulk/Insert
/// require exclusive access.
class RTree {
 public:
  /// One indexed element: an axis-aligned box plus a caller-defined id.
  /// All boxes in one tree must share a dimensionality.
  struct Entry {
    Box box;
    uint64_t id = 0;
  };

  RTree() = default;

  /// Discards all entries and nodes.
  void Clear();

  /// Replaces the contents with `entries`, bulk-loading bottom-up tight
  /// bounds. O(n log n).
  void Bulk(std::vector<Entry> entries);

  /// Inserts one entry incrementally (least-enlargement descent, leaves
  /// split at capacity).
  void Insert(const Box& box, uint64_t id);

  /// Number of entries held.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends the ids of every entry whose box overlaps `query` under `mode`
  /// to `out` (not cleared first). Order unspecified. Returns the number of
  /// tree nodes visited — the probe's work, reported through the
  /// index.bucket_tree.node_visits metric (DESIGN.md §13).
  size_t Probe(const Box& query, BoxOverlap mode,
               std::vector<uint64_t>* out) const;

 private:
  // Leaf fan-out. Small enough that a leaf scan stays in one cache line
  // neighborhood, large enough to keep the tree shallow.
  static constexpr size_t kLeafCapacity = 8;

  struct Node {
    Box bounds;          // Bounding box of the subtree's entries.
    int32_t left = -1;   // Child node ids; -1 marks a leaf.
    int32_t right = -1;
    std::vector<Entry> entries;  // Leaf payload; empty for internal nodes.

    bool leaf() const { return left < 0; }
  };

  // Recursively builds the subtree over [begin, end); returns its node id.
  int32_t BuildNode(Entry* begin, Entry* end);

  // Splits the over-full leaf `node_id` into two leaves under it.
  void SplitLeaf(int32_t node_id);

  static Box BoundsOf(const Entry* begin, const Entry* end);
  // Dimension along which the entry centers of [begin, end) spread widest.
  static size_t WidestCenterDim(const Entry* begin, const Entry* end);
  static bool ClosedOverlap(const Box& a, const Box& b);
  // Volume growth of `bounds` if extended to contain `box`.
  static double Enlargement(const Box& bounds, const Box& box);
  // Margin (summed per-dimension extent) growth of `bounds` if extended to
  // contain `box` — the volume-underflow-proof tiebreak for Insert's
  // descent in high dimensions, where products of small extents collapse
  // to 0.0 and volume growth ties on every node.
  static double MarginEnlargement(const Box& bounds, const Box& box);
  // Summed per-dimension extent of `bounds`.
  static double Margin(const Box& bounds);

  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t size_ = 0;
};

}  // namespace sthist

#endif  // STHIST_INDEX_RTREE_H_

#include "index/flat_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/check.h"
#include "core/simd.h"

namespace sthist {

namespace {

// Dimension along which the entry centers of [begin, end) spread widest —
// the same partitioning rule as RTree::WidestCenterDim, so the flat tree
// and the R-tree cut the same planes.
size_t WidestCenterDim(const FlatBoxIndex::Entry* begin,
                       const FlatBoxIndex::Entry* end) {
  const size_t dim = begin->box.dim();
  size_t best_dim = 0;
  double best_spread = -1.0;
  for (size_t d = 0; d < dim; ++d) {
    double lo = begin->box.lo(d) + begin->box.hi(d);
    double hi = lo;
    for (const FlatBoxIndex::Entry* e = begin + 1; e != end; ++e) {
      const double center2 = e->box.lo(d) + e->box.hi(d);
      lo = std::min(lo, center2);
      hi = std::max(hi, center2);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_dim = d;
    }
  }
  return best_dim;
}

}  // namespace

void FlatBoxIndex::Clear() {
  dim_ = 0;
  size_ = 0;
  stride_ = 0;
  lo_.clear();
  hi_.clear();
  ids_.clear();
  nodes_.clear();
  node_lo_.clear();
  node_hi_.clear();
  ov_bounds_.clear();
  ov_ids_.clear();
  compactions_ = 0;
}

void FlatBoxIndex::Build(std::vector<Entry>* entries) {
  const uint32_t n = static_cast<uint32_t>(entries->size());
  Entry* data = entries->data();

  // Pass 1: BFS partition. Ranges are median-split in place; children are
  // created back-to-back so the right child is always left + 1. Bounds are
  // computed at node creation, when the node's entry range is known.
  struct Range {
    int32_t node = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
  };
  struct LeafRange {
    int32_t node = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
  };
  auto create_node = [&](uint32_t begin, uint32_t end) {
    const int32_t id = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    node_lo_.resize(node_lo_.size() + dim_);
    node_hi_.resize(node_hi_.size() + dim_);
    double* nlo = node_lo_.data() + static_cast<size_t>(id) * dim_;
    double* nhi = node_hi_.data() + static_cast<size_t>(id) * dim_;
    for (size_t d = 0; d < dim_; ++d) {
      double lo = data[begin].box.lo(d);
      double hi = data[begin].box.hi(d);
      for (uint32_t i = begin + 1; i < end; ++i) {
        lo = std::min(lo, data[i].box.lo(d));
        hi = std::max(hi, data[i].box.hi(d));
      }
      nlo[d] = lo;
      nhi[d] = hi;
    }
    return id;
  };

  std::vector<Range> queue;
  std::vector<LeafRange> leaves;
  queue.push_back({create_node(0, n), 0, n});
  for (size_t at = 0; at < queue.size(); ++at) {
    const Range range = queue[at];
    const uint32_t count = range.end - range.begin;
    if (count <= kLeafCapacity) {
      leaves.push_back({range.node, range.begin, range.end});
      continue;
    }
    const size_t split_dim =
        WidestCenterDim(data + range.begin, data + range.end);
    const uint32_t mid = range.begin + count / 2;
    std::nth_element(data + range.begin, data + mid, data + range.end,
                     [split_dim](const Entry& a, const Entry& b) {
                       return a.box.lo(split_dim) + a.box.hi(split_dim) <
                              b.box.lo(split_dim) + b.box.hi(split_dim);
                     });
    const int32_t left = create_node(range.begin, mid);
    const int32_t right = create_node(mid, range.end);
    STHIST_DCHECK(right == left + 1);
    nodes_[range.node].left = left;
    queue.push_back({left, range.begin, mid});
    queue.push_back({right, mid, range.end});
  }

  // Pass 2: assign each leaf a padded slot run and fill the bound planes.
  stride_ = 0;
  for (const LeafRange& leaf : leaves) {
    const uint32_t count = leaf.end - leaf.begin;
    stride_ += (count + kBlock - 1) / kBlock * kBlock;
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  lo_.assign(dim_ * stride_, kInf);    // Sentinel: never matches.
  hi_.assign(dim_ * stride_, -kInf);
  ids_.assign(stride_, kPadId);
  uint32_t slot = 0;
  for (const LeafRange& leaf : leaves) {
    const uint32_t count = leaf.end - leaf.begin;
    const uint32_t padded = (count + kBlock - 1) / kBlock * kBlock;
    Node& node = nodes_[leaf.node];
    node.first = slot;
    node.count = padded;
    for (uint32_t i = 0; i < count; ++i) {
      const Entry& e = data[leaf.begin + i];
      for (size_t d = 0; d < dim_; ++d) {
        lo_[d * stride_ + slot + i] = e.box.lo(d);
        hi_[d * stride_ + slot + i] = e.box.hi(d);
      }
      ids_[slot + i] = e.id;
    }
    slot += padded;
  }
  STHIST_DCHECK(slot == stride_);
}

void FlatBoxIndex::Bulk(std::vector<Entry> entries) {
  Clear();
  if (entries.empty()) return;
  dim_ = entries[0].box.dim();
  size_ = entries.size();
  Build(&entries);
}

void FlatBoxIndex::Insert(const Box& box, uint64_t id) {
  if (dim_ == 0) dim_ = box.dim();
  STHIST_DCHECK(box.dim() == dim_);
  const size_t at = ov_bounds_.size();
  ov_bounds_.resize(at + 2 * dim_);
  for (size_t d = 0; d < dim_; ++d) {
    ov_bounds_[at + d] = box.lo(d);
    ov_bounds_[at + dim_ + d] = box.hi(d);
  }
  ov_ids_.push_back(id);
  ++size_;
  // Fold the tail back into the tree before the linear scan starts to eat
  // into the probe's log-time budget. The threshold keeps compactions
  // amortized O(log n) per insert.
  if (ov_ids_.size() > std::max<size_t>(32, size_ / 16)) Compact();
}

std::vector<FlatBoxIndex::Entry> FlatBoxIndex::CollectEntries() const {
  std::vector<Entry> entries;
  entries.reserve(size_);
  std::vector<double> lo(dim_), hi(dim_);
  for (size_t slot = 0; slot < stride_; ++slot) {
    if (ids_[slot] == kPadId) continue;
    for (size_t d = 0; d < dim_; ++d) {
      lo[d] = lo_[d * stride_ + slot];
      hi[d] = hi_[d * stride_ + slot];
    }
    entries.push_back({Box(lo, hi), ids_[slot]});
  }
  for (size_t i = 0; i < ov_ids_.size(); ++i) {
    const double* bounds = ov_bounds_.data() + i * 2 * dim_;
    for (size_t d = 0; d < dim_; ++d) {
      lo[d] = bounds[d];
      hi[d] = bounds[dim_ + d];
    }
    entries.push_back({Box(lo, hi), ov_ids_[i]});
  }
  return entries;
}

void FlatBoxIndex::Compact() {
  const uint64_t compactions = compactions_ + 1;
  Bulk(CollectEntries());
  compactions_ = compactions;
}

FlatBoxIndex::ProbeStats FlatBoxIndex::Probe(
    const Box& query, BoxOverlap mode, std::vector<uint64_t>* out) const {
  STHIST_DCHECK(out != nullptr);
  ProbeStats stats;
  if (size_ == 0) return stats;
  STHIST_DCHECK(query.dim() == dim_);
  const double* qlo = query.lo_data();
  const double* qhi = query.hi_data();
  const bool closed = mode == BoxOverlap::kClosed;

  if (!nodes_.empty()) {
    int32_t stack[kMaxStack];
    int top = 0;
    stack[top++] = 0;
    uint32_t hits[kLeafCapacity];
    while (top > 0) {
      const int32_t id = stack[--top];
      ++stats.node_visits;
      // Closed overlap is a superset of open-interior overlap, so it is a
      // valid prune for both modes (same rule as RTree::Probe).
      const double* nlo = node_lo_.data() + static_cast<size_t>(id) * dim_;
      const double* nhi = node_hi_.data() + static_cast<size_t>(id) * dim_;
      bool overlap = true;
      for (size_t d = 0; d < dim_; ++d) {
        if (nhi[d] < qlo[d] || qhi[d] < nlo[d]) {
          overlap = false;
          break;
        }
      }
      if (!overlap) continue;
      const Node& node = nodes_[id];
      if (!node.leaf()) {
        STHIST_DCHECK(top + 2 <= kMaxStack);
        stack[top++] = node.left + 1;
        stack[top++] = node.left;
        continue;
      }
      stats.entry_blocks += node.count / kBlock;
      const size_t n =
          simd::MatchBoxes(lo_.data(), hi_.data(), stride_, dim_, node.first,
                           node.count, qlo, qhi, closed, hits);
      for (size_t i = 0; i < n; ++i) {
        const uint64_t entry_id = ids_[hits[i]];
        // Sentinel slots cannot match a finite query, but an all-infinite
        // query would see them in closed mode; filter explicitly.
        if (entry_id != kPadId) out->push_back(entry_id);
      }
    }
  }

  if (!ov_ids_.empty()) {
    ++stats.node_visits;
    stats.entry_blocks +=
        static_cast<uint32_t>((ov_ids_.size() + kBlock - 1) / kBlock);
    for (size_t i = 0; i < ov_ids_.size(); ++i) {
      const double* elo = ov_bounds_.data() + i * 2 * dim_;
      const double* ehi = elo + dim_;
      bool hit = true;
      for (size_t d = 0; d < dim_; ++d) {
        const bool miss = closed ? (ehi[d] < qlo[d] || qhi[d] < elo[d])
                                 : (ehi[d] <= qlo[d] || elo[d] >= qhi[d]);
        if (miss) {
          hit = false;
          break;
        }
      }
      if (hit) out->push_back(ov_ids_[i]);
    }
  }
  return stats;
}

}  // namespace sthist

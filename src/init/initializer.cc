#include "init/initializer.h"

#include <algorithm>

#include "core/check.h"
#include "obs/trace.h"

namespace sthist {

Box ExtendedBoundingRectangle(const SubspaceCluster& cluster,
                              const Box& domain) {
  STHIST_CHECK(cluster.core_box.dim() == domain.dim());
  std::vector<bool> relevant(domain.dim(), false);
  for (size_t d : cluster.relevant_dims) relevant[d] = true;

  std::vector<double> lo(domain.dim()), hi(domain.dim());
  for (size_t d = 0; d < domain.dim(); ++d) {
    if (relevant[d]) {
      lo[d] = cluster.core_box.lo(d);
      hi[d] = cluster.core_box.hi(d);
    } else {
      lo[d] = domain.lo(d);
      hi[d] = domain.hi(d);
    }
  }
  return Box(std::move(lo), std::move(hi));
}

size_t InitializeHistogram(const std::vector<SubspaceCluster>& clusters,
                           const Box& domain, const CardinalityOracle& oracle,
                           const InitializerConfig& config, Histogram* hist) {
  STHIST_CHECK(hist != nullptr);

  obs::MetricsRegistry* reg = obs::GlobalMetrics();
  obs::Counter fed_metric = reg->counter("init.initializer.clusters_fed");
  obs::ScopedTimer feed_timer(reg->latency("init.initializer.feed_seconds"));

  // Clusters arrive sorted by descending score from RunMineClus; re-sort
  // defensively so callers can pass arbitrary orderings.
  std::vector<const SubspaceCluster*> ordered;
  ordered.reserve(clusters.size());
  for (const SubspaceCluster& c : clusters) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const SubspaceCluster* a, const SubspaceCluster* b) {
              return a->score > b->score;
            });
  if (config.reversed) std::reverse(ordered.begin(), ordered.end());

  size_t fed = 0;
  for (const SubspaceCluster* cluster : ordered) {
    if (fed >= config.max_clusters) break;
    Box bucket = config.use_extended_br
                     ? ExtendedBoundingRectangle(*cluster, domain)
                     : cluster->core_box;
    if (bucket.Volume() <= 0.0) continue;
    hist->Refine(bucket, oracle);
    ++fed;
    fed_metric.Inc();
  }
  return fed;
}

}  // namespace sthist

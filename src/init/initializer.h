#ifndef STHIST_INIT_INITIALIZER_H_
#define STHIST_INIT_INITIALIZER_H_

#include <cstddef>
#include <vector>

#include "clustering/mineclus.h"
#include "core/box.h"
#include "histogram/histogram.h"

namespace sthist {

/// Controls for subspace-cluster initialization (paper §4.1, Definition 9).
struct InitializerConfig {
  /// Feed clusters in reverse importance order — the control run of Fig. 13
  /// ("Initialized (Reversed)") demonstrating sensitivity to learning order.
  bool reversed = false;

  /// When false, use the plain minimal bounding rectangle instead of the
  /// extended BR (the ablation discussed around Fig. 6: MBRs silently
  /// increase cluster dimensionality and add needless query intersections).
  bool use_extended_br = true;

  /// Cap on how many clusters are fed (most important first).
  size_t max_clusters = static_cast<size_t>(-1);
};

/// The extended bounding rectangle of a cluster (Definition 8): tight member
/// bounds in the cluster's relevant dimensions, the full domain [min, max]
/// in every other dimension.
Box ExtendedBoundingRectangle(const SubspaceCluster& cluster,
                              const Box& domain);

/// Initializes `hist` from subspace clusters: each cluster's (extended)
/// bounding rectangle is replayed as an initial query with exact feedback,
/// in descending importance order (paper: "if we use the important clusters
/// as first queries in the initialization, we have a better estimation
/// quality"). Returns the number of clusters fed.
size_t InitializeHistogram(const std::vector<SubspaceCluster>& clusters,
                           const Box& domain, const CardinalityOracle& oracle,
                           const InitializerConfig& config, Histogram* hist);

}  // namespace sthist

#endif  // STHIST_INIT_INITIALIZER_H_

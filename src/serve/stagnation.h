#ifndef STHIST_SERVE_STAGNATION_H_
#define STHIST_SERVE_STAGNATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/box.h"
#include "core/reservoir.h"
#include "core/rng.h"
#include "core/status.h"
#include "data/dataset.h"

namespace sthist {

/// \file
/// Stagnation detection and the feedback reservoir (DESIGN.md §14).
///
/// The paper's initialization fixes stagnation (Lemmas 1–3) *offline*; under
/// drift the served histogram regresses back into stuck states at runtime.
/// These two pieces close the loop inside HistogramService: the detector
/// watches a rolling NAE of served estimates against the trivial-histogram
/// control (paper eq. 10, windowed), and the reservoir maintains a
/// deterministic sample of recent feedback so a re-initialization has data
/// to cluster when the detector fires. Both are single-threaded by contract
/// — they live on the refiner thread, never on read paths.

/// Knobs for the stagnation detector.
struct StagnationConfig {
  /// Observations in the rolling window. The detector never fires before the
  /// window has filled once (warmup), so the trigger is a sustained-quality
  /// signal, not a single bad estimate.
  size_t window = 256;

  /// Fire when the rolling NAE (windowed MAE / windowed trivial MAE) reaches
  /// this value: 1.0 means "no better than knowing only the row count".
  double trigger_nae = 0.9;

  /// Hysteresis: after a trigger the detector re-arms only once the rolling
  /// NAE has recovered below this (strictly less than trigger_nae), so a
  /// histogram oscillating around the trigger cannot flap rebuilds.
  double rearm_nae = 0.7;

  /// Minimum observations between a trigger and re-arming (the cooldown —
  /// gives the rebuilt histogram time to show up in the window).
  size_t cooldown = 512;

  /// Backstop: re-arm unconditionally after this many post-trigger
  /// observations even if the NAE never recovered below rearm_nae —
  /// otherwise one failed rebuild would disable detection forever.
  size_t retrigger_backstop = 4096;
};

/// Validates a StagnationConfig from an untrusted source (CLI flags).
Status Validate(const StagnationConfig& config);

/// Rolling-NAE stagnation detector with hysteresis (DESIGN.md §14).
///
/// State machine: kWarmup (window filling) → kArmed (may fire) → kCooldown
/// (fired or swapped; waiting for cooldown + recovery below rearm_nae, or
/// the backstop) → kArmed. Purely deterministic: equal observation sequences
/// produce equal trigger sequences. Not thread-safe — refiner-thread only.
class StagnationDetector {
 public:
  enum class State { kWarmup, kArmed, kCooldown };

  explicit StagnationDetector(const StagnationConfig& config);

  /// Records one feedback observation (the served estimate, the trivial
  /// control's estimate, and the observed actual cardinality). Returns true
  /// when this observation fires the trigger — the caller starts a rebuild
  /// and the detector enters cooldown. Non-finite inputs are skipped.
  bool Observe(double estimate, double trivial_estimate, double actual);

  /// Tells the detector a rebuilt histogram was swapped in: the window is
  /// cleared (old estimates say nothing about the new histogram) and the
  /// detector cools down until the window refills and recovery holds.
  void NoteSwap();

  /// Windowed MAE / windowed trivial MAE — the rolling analogue of paper
  /// eq. 10. Returns NAN until the window has at least one observation.
  double RollingNae() const;

  State state() const { return state_; }
  bool window_full() const { return filled_ == config_.window; }
  size_t observations() const { return observations_; }
  size_t triggers() const { return triggers_; }

 private:
  void ClearWindow();

  const StagnationConfig config_;
  State state_ = State::kWarmup;

  // Ring buffers of per-observation absolute errors; sums are recomputed
  // exactly on every wrap so the subtract-add accumulators cannot drift
  // from the window contents.
  std::vector<double> err_;
  std::vector<double> trivial_err_;
  size_t next_ = 0;
  size_t filled_ = 0;
  double err_sum_ = 0.0;
  double trivial_sum_ = 0.0;

  size_t observations_ = 0;
  size_t since_trigger_ = 0;
  size_t triggers_ = 0;
};

/// Knobs for the feedback reservoir.
struct ReservoirConfig {
  /// Points retained. The re-initialization clusters exactly these.
  size_t capacity = 2048;

  /// Each feedback box contributes m = clamp(ceil(actual / tuples_per_point),
  /// 1, max_points_per_feedback) synthetic points drawn uniformly inside it,
  /// so denser regions weigh more in the sample, the way feedback-kde's
  /// maintained sample tracks the workload's data view.
  size_t max_points_per_feedback = 8;
  double tuples_per_point = 64.0;

  /// Recency bias: every age_interval feedback items the virtual stream
  /// length is halved, so newer feedback displaces old at a boosted rate —
  /// a drifted distribution washes stale phases out of the sample.
  /// 0 disables ageing (plain Algorithm R over the whole stream).
  size_t age_interval = 4096;

  uint64_t seed = 4242;
};

/// Validates a ReservoirConfig from an untrusted source (CLI flags).
Status Validate(const ReservoirConfig& config);

/// Deterministic reservoir sample over the feedback stream. Feedback arrives
/// as (box, actual-count) pairs — the service never sees tuples, so this
/// wrapper synthesizes count-weighted points uniformly inside each feedback
/// box and offers them to a shared core Reservoir<Point> (Algorithm R +
/// ageing, DESIGN.md §18). Not thread-safe — refiner-thread only.
class FeedbackReservoir {
 public:
  FeedbackReservoir(size_t dim, const ReservoirConfig& config);

  /// Folds one feedback item into the sample. Non-finite or non-positive
  /// actual counts contribute nothing (the robustness layer clamps them
  /// before refinement; the reservoir just skips).
  void Add(const Box& box, double actual);

  /// Points currently held (<= capacity).
  size_t size() const { return reservoir_.size(); }
  size_t dim() const { return dim_; }
  size_t feedbacks_seen() const { return feedbacks_; }

  /// Materializes the sample for clustering. Row order is the internal slot
  /// order — deterministic for a fixed feedback sequence.
  Dataset ToDataset() const;

  /// Empties the sample and restarts the stream counter (the RNGs are NOT
  /// reset: the reservoir remains deterministic over the whole life of the
  /// service, not per-epoch).
  void Clear();

 private:
  const size_t dim_;
  const ReservoirConfig config_;
  Rng synth_rng_;               // Coordinate synthesis stream.
  Reservoir<Point> reservoir_;  // Slot-selection stream lives inside.
  size_t feedbacks_ = 0;
  Point scratch_;
};

}  // namespace sthist

#endif  // STHIST_SERVE_STAGNATION_H_

#ifndef STHIST_SERVE_SERVICE_FLEET_H_
#define STHIST_SERVE_SERVICE_FLEET_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/bounded_queue.h"
#include "core/box.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "histogram/histogram.h"
#include "obs/metrics.h"

namespace sthist {

/// Tuning knobs for ServiceFleet (DESIGN.md §16).
struct FleetConfig {
  /// Refiner pool size: worker threads shared by every shard. The pool is
  /// the fleet's whole write-side budget — thousands of tenants share these
  /// K threads instead of spawning one refiner thread each.
  size_t refiners = 2;

  /// Per-shard feedback queue capacity. A full shard queue sheds that
  /// shard's newest feedback (kQueueFull) without ever touching any other
  /// shard — overload is isolated to the tenant causing it.
  size_t queue_capacity = 1024;

  /// Maximum feedback items one refiner run applies to a shard before
  /// publishing and releasing the claim. Bounds both snapshot staleness and
  /// how long one backlogged shard can monopolize a pool worker.
  size_t publish_batch = 64;

  /// Threads for EstimateBatch on a shard snapshot (1 = inline).
  size_t estimate_threads = 1;

  /// true: publish deep clones instead of copy-on-write snapshots — same
  /// escape hatch as ServiceConfig::clone_publish; estimates are
  /// bitwise-identical either way.
  bool clone_publish = false;

  /// Base seed of the fleet's deterministic tenant hashing: TenantId(key) is
  /// a pure function of (seed, key), so shard identities — and everything a
  /// driver derives from them (per-tenant workload seeds in fleet-sim and
  /// the tests) — replay bit-identically across runs and refiner counts.
  uint64_t seed = 0;

  /// Cardinality cap for per-shard metric labels (DESIGN.md §13: the name
  /// set must stay small and static). The first `top_k_shard_labels` tenants
  /// ever added get their own `serve.fleet_shard_<label>.*` counters; every
  /// later tenant aggregates into the shared `serve.fleet_shard_other.*`
  /// cells, so the metric count is bounded no matter how many tenants live.
  size_t top_k_shard_labels = 8;

  /// Registry receiving serve.fleet.* (DESIGN.md §13). Null means the
  /// process-wide obs::GlobalMetrics(); a disabled registry is replaced by a
  /// private one so stats() never silently loses counts (same rule as
  /// HistogramService).
  obs::MetricsRegistry* metrics = nullptr;
};

/// What happened to one fleet SubmitFeedback call, mirroring
/// FeedbackOutcome: accepted, shed on a full shard queue, or shed because
/// the shard (or the whole fleet) has stopped accepting feedback.
enum class FleetFeedbackOutcome {
  kAccepted,
  kQueueFull,
  kStopped,
};

/// Fleet counters: the aggregate view over every shard. Same consistency
/// contract as ServiceStats — individually sampled relaxed atomics, exact
/// once the fleet is quiescent (after Drain or Stop).
struct FleetStats {
  /// Tenants currently resident in the shard map.
  size_t tenants = 0;
  /// Lifetime AddTenant / RemoveTenant successes.
  size_t tenants_added = 0;
  size_t tenants_removed = 0;
  /// Queries served from shard snapshots (Estimate + EstimateBatch).
  size_t reads_served = 0;
  /// Feedback admitted to / shed by shard queues, fleet-wide.
  size_t feedback_accepted = 0;
  size_t feedback_dropped_full = 0;
  size_t feedback_dropped_stopped = 0;
  /// Feedback folded into shard working copies.
  size_t feedback_applied = 0;
  /// Snapshot publishes, fleet-wide.
  size_t publishes = 0;
  /// Refiner-pool shard runs (claim → drain batch → publish → release).
  size_t shard_runs = 0;
  /// Feedback currently waiting in shard queues, fleet-wide.
  size_t queue_depth = 0;

  size_t feedback_dropped() const {
    return feedback_dropped_full + feedback_dropped_stopped;
  }
};

/// Sharded multi-tenant histogram serving (DESIGN.md §16): one process,
/// thousands of independently self-tuning histograms.
///
/// Each tenant key owns one shard carrying the full single-service
/// discipline of §11 — lock-free snapshot reads through an
/// `atomic<shared_ptr<const Histogram>>`, a bounded MPSC feedback queue that
/// sheds instead of blocking — but refinement is pooled: K refiner threads
/// (core/thread_pool) drain all shard queues via a work-claiming scheme
/// instead of one thread per histogram.
///
/// The claiming rule: every shard carries an atomic `in_flight` state
/// (idle → queued → running → running-dirty). A shard is enqueued to the
/// pool only by the one thread that wins the idle→queued transition, and
/// only the pool worker that owns the queued→running transition may touch
/// the shard's working histogram — so a shard is never refined by two
/// workers, and each shard's feedback is applied in exact FIFO order.
/// Consequence: after Drain, every shard's snapshot is bitwise-identical to
/// a single-threaded replay of its accepted feedback — independent of the
/// refiner count, of other tenants' traffic, and of scheduling
/// (tests/fleet_test.cc holds this to std::bit_cast equality against both
/// refiners=1 and a standalone HistogramService).
///
/// Map lookups take a shared (reader) lock that is never held across
/// estimation or refinement; AddTenant/RemoveTenant take it exclusively.
/// Tenants are removable during live traffic: readers holding a snapshot
/// keep it; queued feedback of a removed tenant is still drained (applied,
/// never published) so fleet counters stay consistent.
///
/// Every histogram must support Clone(); every oracle must be
/// const-thread-safe and outlive its tenant.
class ServiceFleet {
 public:
  explicit ServiceFleet(const FleetConfig& config = {});

  /// Stops the fleet (drains every shard and joins the refiner pool).
  ~ServiceFleet();

  ServiceFleet(const ServiceFleet&) = delete;
  ServiceFleet& operator=(const ServiceFleet&) = delete;

  /// Registers `key` with `initial` as its working histogram and publishes
  /// its clone as the shard's first snapshot. Errors: kInvalidArgument for
  /// an empty key, a null histogram, or one without Clone() support; a
  /// second Add of a live key is also kInvalidArgument; kUnavailable after
  /// Stop. The oracle must outlive the tenant.
  Status AddTenant(std::string_view key, std::unique_ptr<Histogram> initial,
                   const CardinalityOracle& oracle);

  /// Unregisters `key`: subsequent lookups report kNotFound, queued feedback
  /// is drained off-snapshot, snapshots already held by readers stay valid.
  /// Errors: kNotFound for an unknown key.
  Status RemoveTenant(std::string_view key);

  bool HasTenant(std::string_view key) const;

  /// The keys currently resident, sorted (deterministic iteration order for
  /// drivers and tests).
  std::vector<std::string> TenantKeys() const;

  /// Seed-deterministic shard identity: SplitMix64 over (config.seed, key).
  /// Stable across processes and refiner counts; fleet-sim derives each
  /// tenant's workload seed from it.
  uint64_t TenantId(std::string_view key) const;

  /// Estimated cardinality of `query` against `key`'s current snapshot.
  /// Lock-free with respect to refinement (the map lookup is a shared lock,
  /// dropped before estimating); kNotFound for an unknown tenant.
  StatusOr<double> Estimate(std::string_view key, const Box& query) const;

  /// Batch estimation against one consistent shard snapshot.
  StatusOr<std::vector<double>> EstimateBatch(std::string_view key,
                                              std::span<const Box> queries) const;

  /// The shard's current snapshot, or nullptr for an unknown tenant.
  /// Callers may hold it arbitrarily long, including across RemoveTenant.
  std::shared_ptr<const Histogram> Snapshot(std::string_view key) const;

  /// Submits one executed query's box as refinement feedback for `key`;
  /// never blocks. kNotFound for an unknown tenant, otherwise the shard
  /// queue's verdict. A full queue sheds only this tenant's feedback.
  StatusOr<FleetFeedbackOutcome> SubmitFeedback(std::string_view key,
                                                const Box& query);

  /// Blocks until every feedback item accepted (fleet-wide) before this call
  /// has been applied and its shard's snapshot republished. Same horizon
  /// semantics as HistogramService::Drain; concurrent submitters keep the
  /// horizon moving. Returns OK once reached, kUnavailable only if the pool
  /// can no longer reach it (cannot happen through the public API — Stop
  /// flushes every queue first).
  Status Drain();

  /// Per-tenant drain: blocks until `key`'s feedback accepted before this
  /// call is applied and published. Unlike the fleet-wide Drain this cannot
  /// be held hostage by another tenant's parked oracle. kNotFound for an
  /// unknown tenant.
  Status DrainTenant(std::string_view key);

  /// Closes every shard queue, flushes what they hold through the pool, and
  /// quiesces the refiners. Estimation keeps working against the final
  /// snapshots; subsequent feedback is shed, AddTenant refuses. Idempotent.
  void Stop();

  /// Persists every tenant's current snapshot (plus the fleet seed) to
  /// `path` as a versioned binary "STHF" container, written atomically —
  /// the replica hand-off / warm-restart primitive (DESIGN.md §17). Tenants
  /// are saved in sorted key order, each as its histogram's
  /// SerializeBinary() blob. Each tenant's snapshot is internally consistent
  /// (an atomic epoch), but the cut across tenants is only as consistent as
  /// the caller makes it: call Drain() first for a fleet-wide consistent
  /// cut. Fails with a Status if any tenant's histogram does not support
  /// binary snapshots or the file cannot be written.
  Status SaveSnapshot(const std::string& path) const;

  /// Aggregate counters (see FleetStats for the consistency caveat). Typed
  /// view over the serve.fleet.* registry cells.
  FleetStats stats() const;

  /// The registry holding this fleet's serve.fleet.* metrics.
  const obs::MetricsRegistry& metrics_registry() const { return *registry_; }

 private:
  /// Claim states of one shard, the `in_flight` discipline. Only the thread
  /// that wins kIdle→kQueued may enqueue the shard; only the pool worker
  /// that performs kQueued→kRunning may refine it; a producer that finds it
  /// kRunning marks kRunningDirty and the running worker re-queues on
  /// release instead of going idle.
  enum InFlight : uint32_t {
    kIdle = 0,
    kQueued = 1,
    kRunning = 2,
    kRunningDirty = 3,
  };

  struct Shard {
    Shard(std::string key, uint64_t id, size_t queue_capacity)
        : key(std::move(key)), id(id), queue(queue_capacity) {}

    const std::string key;
    const uint64_t id;  // TenantId(key): seed-deterministic.

    /// Refiner-side working copy; touched only by the worker holding the
    /// kRunning claim.
    std::unique_ptr<Histogram> working;
    std::atomic<std::shared_ptr<const Histogram>> snapshot;
    const CardinalityOracle* oracle = nullptr;

    BoundedQueue<Box> queue;
    std::atomic<uint32_t> in_flight{kIdle};

    /// Set by RemoveTenant: remaining feedback is drained (counters stay
    /// consistent) but no further snapshot is published.
    std::atomic<bool> removed{false};

    /// Per-shard horizon counters for Drain (fleet metric cells are
    /// aggregates and cannot answer per-shard questions).
    std::atomic<size_t> accepted{0};
    std::atomic<size_t> applied{0};
    std::atomic<size_t> published{0};

    /// Label-capped per-shard cells ("serve.fleet_shard_<label>.*", shared
    /// with every other over-cap shard when the label is "other").
    obs::Counter label_reads;
    obs::Counter label_applied;
  };

  std::shared_ptr<Shard> FindShard(std::string_view key) const;

  /// The claiming step: moves `shard` toward execution if no run is already
  /// pending, marking a running shard dirty instead. Safe from any thread;
  /// at most one pool task per shard ever exists.
  void ScheduleShard(std::shared_ptr<Shard> shard);

  /// One refiner run: claim kRunning, drain up to publish_batch items in
  /// FIFO order, publish, release (re-queueing if dirty or backlogged).
  void RunShard(const std::shared_ptr<Shard>& shard);

  void PublishShard(Shard* shard);
  void NotifyDrain();
  Status WaitForShards(
      const std::vector<std::pair<std::shared_ptr<Shard>, size_t>>& targets);

  const FleetConfig config_;

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;

  mutable std::shared_mutex map_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Shard>> shards_;
  size_t labels_assigned_ = 0;  // Guarded by map_mutex_.
  bool stopped_ = false;        // Guarded by map_mutex_.

  // serve.fleet.* handles; stats() reads these same cells back.
  obs::Gauge tenants_;
  obs::Counter tenants_added_;
  obs::Counter tenants_removed_;
  obs::Counter reads_;
  obs::Counter accepted_;
  obs::Counter dropped_full_;
  obs::Counter dropped_stopped_;
  obs::Counter applied_;
  obs::Counter publishes_;
  obs::Counter shard_runs_;
  obs::Gauge queue_depth_;
  obs::LatencyHistogram publish_seconds_;

  // serve.snapshot.* handles (persistence, DESIGN.md §17); same cell names
  // as HistogramService's, so a process saving through both aggregates.
  obs::Counter snapshot_saves_;
  obs::Gauge snapshot_bytes_;
  obs::LatencyHistogram snapshot_save_seconds_;

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  /// Declared last so nothing the workers touch outlives them; explicitly
  /// reset in the destructor after Stop.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace sthist

#endif  // STHIST_SERVE_SERVICE_FLEET_H_

#ifndef STHIST_SERVE_HISTOGRAM_SERVICE_H_
#define STHIST_SERVE_HISTOGRAM_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "clustering/mineclus.h"
#include "core/bounded_queue.h"
#include "core/box.h"
#include "core/status.h"
#include "histogram/histogram.h"
#include "init/initializer.h"
#include "obs/metrics.h"
#include "serve/stagnation.h"
#include "testing/fault_injection.h"

namespace sthist {

class TrivialHistogram;

/// Online re-initialization knobs (DESIGN.md §14). When enabled, the refiner
/// runs a StagnationDetector over its feedback stream and, on trigger,
/// re-clusters a reservoir sample of recent feedback (MineClus + the paper's
/// initializer) into a fresh histogram that hot-swaps through the normal
/// snapshot-publish path — readers never block on the rebuild.
struct ReinitConfig {
  bool enabled = false;

  /// The attribute-value domain D of the rebuilt histograms and the trivial
  /// control. Required when enabled (the service cannot infer it: the
  /// initial histogram's root box is not exposed by the Histogram API).
  Box domain;

  StagnationConfig detector;
  ReservoirConfig reservoir;

  /// Clustering and initialization of the rebuilt histogram (paper §4.1 run
  /// online over the reservoir instead of offline over the relation).
  MineClusConfig mineclus;
  InitializerConfig initializer;

  /// Bucket budget of rebuilt STHoles histograms.
  size_t max_buckets = 100;

  /// true: rebuild on a background thread while the refiner keeps applying
  /// feedback (production mode — reads and refinement never block on the
  /// rebuild). false: rebuild inline on the refiner thread, which makes the
  /// whole trigger→swap sequence deterministic for tests.
  bool background = true;

  /// Feedback applied while a rebuild is in flight is also retained (up to
  /// this many items) and replayed onto the rebuilt histogram before it
  /// swaps in, so the swap does not forget the queries of the rebuild
  /// window. Overflow is shed oldest-kept-first (the reservoir still saw
  /// every item).
  size_t replay_capacity = 4096;

  /// The trivial control's total tuple count is re-read from the oracle
  /// every this many observed feedback items (drift moves the row count;
  /// a stale control skews the NAE). 0 disables refresh.
  size_t trivial_refresh = 1024;

  /// Fault injection on the rebuild path: the oracle feeding the
  /// re-initializer is wrapped in a FaultyOracle with this config when
  /// rate > 0. The rebuild thread gets its own injector instance
  /// (FaultyOracle is stateful and not thread-safe).
  FaultConfig rebuild_faults;

  /// TEST/BENCH hook: replaces MineClus + initializer when set. Receives the
  /// reservoir sample and the domain total; returns the rebuilt histogram
  /// (nullptr = rebuild failure, exercising the abort path).
  std::function<std::unique_ptr<Histogram>(const Dataset& sample,
                                           double total_tuples)>
      rebuild_override;
};

/// Tuning knobs for HistogramService.
struct ServiceConfig {
  /// Feedback queue capacity. A full queue sheds the newest feedback
  /// (SubmitFeedback reports kQueueFull, the drop counter bumps) rather than
  /// ever stalling a query thread — estimation latency is the contract,
  /// feedback is best-effort.
  size_t queue_capacity = 4096;

  /// Maximum feedback items the refiner applies between snapshot publishes
  /// (the staleness/throughput dial). A publish also happens whenever the
  /// queue drains, so a lightly loaded service stays near-fresh and a
  /// backlogged one amortizes the clone cost over up to this many items.
  size_t publish_batch = 64;

  /// Threads for EstimateBatch on the served snapshot (0 = hardware
  /// concurrency, 1 = inline), forwarded to Histogram::EstimateBatch.
  size_t estimate_threads = 1;

  /// true: publish deep clones (Histogram::Clone) instead of copy-on-write
  /// snapshots (Histogram::Snapshot) — the pre-§17 behavior, kept as an
  /// escape hatch and for bench head-to-head comparison. The published
  /// estimates are bitwise-identical either way; only publish cost and
  /// refiner path-copy overhead differ.
  bool clone_publish = false;

  /// Feedback items already baked into the initial histogram by a previous
  /// incarnation of this service (the applied_feedback watermark of the
  /// snapshot it was restored from, 0 for a cold start). SaveSnapshot adds
  /// it to the local applied count, so a save→restore→save chain keeps the
  /// watermark cumulative over the whole feedback history.
  size_t restored_feedback = 0;

  /// Registry receiving the serve.service.* metrics (DESIGN.md §13). Null
  /// means the process-wide obs::GlobalMetrics(). The service's own counters
  /// (stats()) are these same cells, so when the chosen registry is a
  /// disabled null object the service creates a private always-enabled
  /// registry instead of silently losing its stats.
  obs::MetricsRegistry* metrics = nullptr;

  /// Fault injection on the refiner path: when rate > 0 every oracle answer
  /// the refiner consumes (detector observations and Refine feedback counts)
  /// flows through a FaultyOracle — the serving loop's fault coverage.
  /// Readers are unaffected (estimates never consult the oracle).
  FaultConfig faults;

  /// Stagnation detection + online re-initialization (DESIGN.md §14).
  ReinitConfig reinit;
};

/// What happened to one SubmitFeedback call. Both rejection outcomes mean
/// the item was shed (never blocked on); they differ in what the caller can
/// do about it: a full queue is transient backpressure, a stopped service is
/// final.
enum class FeedbackOutcome {
  kAccepted,
  kQueueFull,
  kStopped,
};

/// One queued feedback item: the executed query plus the estimate that was
/// served for it. The stagnation detector grades the *served* estimate — the
/// number production actually acted on, staleness and all — not the refiner's
/// one-step-ahead view, which adapts far too quickly to reveal that readers
/// are being fed garbage under drift.
struct Feedback {
  Box query;
  double served_estimate = 0.0;
};

/// Service counters, the serving-layer sibling of RobustnessStats: one
/// consistent-enough view of what the service has done so far. Counters are
/// sampled individually from relaxed atomics — totals can be one event apart
/// under concurrency, exact once the service is quiescent (after Drain or
/// Stop).
struct ServiceStats {
  /// Queries served from published snapshots (Estimate + EstimateBatch).
  size_t reads_served = 0;
  /// Feedback items admitted to the queue.
  size_t feedback_accepted = 0;
  /// Feedback items shed because the queue was at capacity.
  size_t feedback_dropped_full = 0;
  /// Feedback items shed because they arrived after Stop.
  size_t feedback_dropped_stopped = 0;
  /// Feedback items folded into the refiner's working copy.
  size_t feedback_applied = 0;
  /// Published snapshot generation; the initial snapshot is epoch 0 and
  /// every publish increments it.
  size_t snapshot_epoch = 0;
  /// Publishes performed (snapshot_epoch restated for readability).
  size_t publishes = 0;
  /// Feedback items currently waiting in the queue.
  size_t queue_depth = 0;
  /// Accepted feedback not yet visible to readers (queued, or applied to
  /// the working copy but not yet published). 0 means readers see every
  /// accepted item.
  size_t staleness = 0;
  /// Wall-clock cost of the most recent / the worst snapshot publish
  /// (clone + pointer swap), seconds.
  double last_publish_seconds = 0.0;
  double max_publish_seconds = 0.0;

  /// Stagnation triggers fired by the detector (serve.reinit.triggers).
  size_t reinit_triggers = 0;
  /// Rebuilt histograms swapped in / rebuilds abandoned (validation failure
  /// or a null rebuild), keeping the incumbent serving.
  size_t reinit_swaps_completed = 0;
  size_t reinit_swaps_aborted = 0;
  /// Rebuild-window feedback items replayed onto rebuilt histograms.
  size_t reinit_replayed = 0;
  /// Points currently held by the feedback reservoir.
  size_t reservoir_size = 0;
  /// Most recent rolling NAE the detector computed (NaN before the first
  /// windowed observation).
  double rolling_nae = 0.0;

  /// All feedback items shed, for any reason. Derived from the two split
  /// counters at read time, so dropped == dropped_full + dropped_stopped
  /// holds by construction rather than by a third independently-bumped cell.
  size_t feedback_dropped() const {
    return feedback_dropped_full + feedback_dropped_stopped;
  }
};

/// Snapshot-isolated histogram serving (DESIGN.md §11, §14).
///
/// Concurrent readers estimate against an immutable published snapshot
/// (`std::shared_ptr<const Histogram>` behind an atomic), while one refiner
/// thread drains a bounded feedback queue, applies Refine to a private
/// working copy nothing else can see, and publishes a fresh clone at the
/// configured cadence. Readers never block on refinement and refinement
/// never blocks on readers; a reader holding a snapshot keeps it alive after
/// newer epochs supersede it.
///
/// With ReinitConfig::enabled the refiner additionally runs the drift loop
/// of DESIGN.md §14: a rolling-NAE stagnation detector over the feedback it
/// applies, a reservoir sample of that feedback, and — on trigger — a
/// MineClus + initializer rebuild of the histogram from the reservoir that
/// hot-swaps through the same snapshot-publish path. Reads never block on
/// the rebuild; a failed rebuild degrades back to the incumbent histogram.
///
/// Determinism: feedback is applied in queue (FIFO) order against the same
/// oracle a serial loop would use, so after Drain/Stop the published
/// snapshot's estimates are bitwise-identical to a single-threaded replay of
/// the accepted feedback sequence onto the initial histogram — regardless of
/// reader count, publish cadence, or scheduling (tests/serve_test.cc holds
/// this to std::bit_cast equality). With re-init enabled the same holds in
/// synchronous rebuild mode (background = false, the test configuration);
/// background rebuilds keep every guarantee except *when* the swap lands
/// relative to concurrent feedback.
///
/// The histogram must support Clone() (STHoles does); the oracle must be
/// const-thread-safe and outlive the service.
class HistogramService {
 public:
  /// Takes ownership of `initial` as the refiner's working copy, publishes
  /// its clone as snapshot epoch 0, and starts the refiner thread. Aborts if
  /// `initial` is null, does not support Clone(), or the re-init config is
  /// invalid (enabled with an empty domain or bad detector/reservoir knobs).
  HistogramService(std::unique_ptr<Histogram> initial,
                   const CardinalityOracle& oracle,
                   const ServiceConfig& config = {});

  /// Stops the service (drains and joins the refiner).
  ~HistogramService();

  HistogramService(const HistogramService&) = delete;
  HistogramService& operator=(const HistogramService&) = delete;

  /// Estimated cardinality of `query` against the current snapshot.
  /// Lock-free with respect to refinement; safe from any thread.
  double Estimate(const Box& query) const;

  /// Batch estimation against one consistent snapshot: every query in the
  /// batch is answered by the same epoch even if a publish lands mid-batch.
  std::vector<double> EstimateBatch(std::span<const Box> queries) const;

  /// The current published snapshot. Callers may hold it arbitrarily long;
  /// it stays valid (and frozen) after the service moves on or shuts down.
  std::shared_ptr<const Histogram> snapshot() const;

  /// Submits one executed query's box as refinement feedback; never blocks.
  /// kAccepted means the refiner will eventually apply it; the rejection
  /// outcomes say why it was shed instead (queue at capacity vs. service
  /// stopped).
  ///
  /// `served_estimate` is the estimate the caller served for this query —
  /// what the stagnation detector grades. Callers that did not capture one
  /// pass NaN (the default): with re-init enabled the service then samples
  /// the current snapshot itself, so the detector never silently loses its
  /// signal.
  FeedbackOutcome SubmitFeedback(
      const Box& query,
      double served_estimate = std::numeric_limits<double>::quiet_NaN());

  /// Blocks until every feedback item accepted before this call has been
  /// applied and published, i.e. staleness from the caller's viewpoint is 0.
  /// Concurrent submitters can keep the horizon moving; with quiescent
  /// producers this is a precise barrier. Returns OK once the horizon is
  /// published, or kUnavailable if the refiner exited before reaching it
  /// (cannot happen through the public API — Stop drains the queue — but the
  /// contract is explicit rather than a hang). A background rebuild in
  /// flight does not hold Drain hostage: refinement continues during the
  /// rebuild, so the horizon keeps publishing.
  Status Drain();

  /// Closes the feedback queue, drains what it holds, completes (or aborts)
  /// any in-flight rebuild, publishes the final snapshot, and joins the
  /// refiner. Estimation keeps working against the final snapshot;
  /// subsequent SubmitFeedback calls are shed. Idempotent.
  void Stop();

  /// Persists the current published snapshot and its applied-feedback
  /// watermark to `path` as a versioned binary "STHS" container (DESIGN.md
  /// §17), written atomically (temp file + rename). The pair is read under
  /// the publish lock, so the watermark always describes exactly the
  /// histogram saved — after Drain() this is the full accepted feedback
  /// history, which warm restart (RestoreService / sthist_cli serve-sim
  /// --restore) uses to resume a deterministic feedback stream bit-exactly.
  /// Fails with a Status when the histogram does not support SerializeBinary
  /// or the file cannot be written; never blocks readers or the refiner
  /// beyond the pointer read.
  Status SaveSnapshot(const std::string& path) const;

  /// Current counters (see ServiceStats for the consistency caveat). The
  /// values are read back from the serve.service.* / serve.reinit.* metric
  /// cells — ServiceStats is a typed view over the registry, not a parallel
  /// counting system.
  ServiceStats stats() const;

  /// The registry holding this service's serve.service.* metrics: the one
  /// from ServiceConfig, or the private fallback.
  const obs::MetricsRegistry& metrics_registry() const { return *registry_; }

 private:
  void RefinerLoop();
  void ApplyFeedback(const Feedback& feedback);
  void Publish();

  /// Starts (or, in synchronous mode, runs to completion) a rebuild from the
  /// current reservoir. Refiner thread only; no-op if one is in flight.
  void StartRebuild();
  /// The rebuild body: clusters the sample, initializes a fresh histogram,
  /// validates it. Runs on the builder thread (or inline when background is
  /// off); the only members it touches are the immutable config/oracle and
  /// the rebuild_* slots handed to it.
  void RunRebuild();
  /// Joins the builder, replays the rebuild-window feedback, and swaps the
  /// rebuilt histogram in as the working copy (or aborts to the incumbent).
  /// Returns whether a swap actually landed, so the caller publishes the
  /// rebuilt histogram immediately — an idle queue must not leave readers on
  /// the pre-swap snapshot indefinitely. Refiner thread only.
  bool CompleteSwap();

  const ServiceConfig config_;
  const CardinalityOracle& oracle_;

  /// Refiner-path fault injector (ServiceConfig::faults); refine_oracle_
  /// points at it when active, else at oracle_. FaultyOracle is stateful and
  /// not thread-safe — only the refiner thread consumes refine_oracle_.
  std::unique_ptr<FaultyOracle> refiner_faults_;
  const CardinalityOracle* refine_oracle_ = nullptr;

  /// Private fallback registry (see ServiceConfig::metrics); null when the
  /// config supplied a usable one.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;

  /// The refiner's private working copy; touched only by the refiner thread
  /// after construction.
  std::unique_ptr<Histogram> working_;
  std::atomic<std::shared_ptr<const Histogram>> snapshot_;

  BoundedQueue<Feedback> queue_;

  // Drift loop state (ReinitConfig::enabled); refiner thread only except
  // where noted.
  std::unique_ptr<StagnationDetector> detector_;
  std::unique_ptr<FeedbackReservoir> reservoir_;
  std::unique_ptr<TrivialHistogram> trivial_;
  size_t observed_since_refresh_ = 0;
  std::vector<Feedback> replay_;  // Rebuild-window feedback, FIFO.
  bool rebuild_inflight_ = false;
  std::thread builder_;
  std::atomic<bool> rebuild_ready_{false};
  Dataset rebuild_sample_{1};  // Handed to the builder at StartRebuild.
  std::unique_ptr<Histogram> rebuilt_;  // Builder's result (null = failed).

  // serve.service.* handles; stats() reads these same cells back.
  obs::Counter reads_;
  obs::Counter accepted_;
  obs::Counter dropped_full_;
  obs::Counter dropped_stopped_;
  obs::Counter applied_;
  obs::Counter publishes_;
  obs::Gauge queue_depth_;
  obs::Gauge staleness_;
  obs::LatencyHistogram publish_seconds_;

  // serve.snapshot.* handles (persistence, DESIGN.md §17).
  obs::Counter snapshot_saves_;
  obs::Gauge snapshot_bytes_;
  obs::LatencyHistogram snapshot_save_seconds_;

  // serve.reinit.* handles (registered only when re-init is enabled).
  obs::Counter reinit_triggers_;
  obs::Counter reinit_swaps_completed_;
  obs::Counter reinit_swaps_aborted_;
  obs::Counter reinit_replayed_;
  obs::Gauge reservoir_size_;
  obs::Gauge rolling_nae_;
  obs::LatencyHistogram rebuild_seconds_;

  std::atomic<size_t> published_feedback_{0};  // applied count at last publish.

  /// Guards the publish-latency numbers and refiner_done_, and pairs with
  /// publish_cv_ so Drain's wakeups cannot be missed.
  mutable std::mutex publish_mutex_;
  std::condition_variable publish_cv_;
  double last_publish_seconds_ = 0.0;
  double max_publish_seconds_ = 0.0;
  bool refiner_done_ = false;

  std::mutex stop_mutex_;  // Serializes Stop against itself (idempotence).
  bool stopped_ = false;
  std::thread refiner_;
};

}  // namespace sthist

#endif  // STHIST_SERVE_HISTOGRAM_SERVICE_H_

#ifndef STHIST_SERVE_HISTOGRAM_SERVICE_H_
#define STHIST_SERVE_HISTOGRAM_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/bounded_queue.h"
#include "core/box.h"
#include "core/status.h"
#include "histogram/histogram.h"
#include "obs/metrics.h"

namespace sthist {

/// Tuning knobs for HistogramService.
struct ServiceConfig {
  /// Feedback queue capacity. A full queue sheds the newest feedback
  /// (SubmitFeedback reports kQueueFull, the drop counter bumps) rather than
  /// ever stalling a query thread — estimation latency is the contract,
  /// feedback is best-effort.
  size_t queue_capacity = 4096;

  /// Maximum feedback items the refiner applies between snapshot publishes
  /// (the staleness/throughput dial). A publish also happens whenever the
  /// queue drains, so a lightly loaded service stays near-fresh and a
  /// backlogged one amortizes the clone cost over up to this many items.
  size_t publish_batch = 64;

  /// Threads for EstimateBatch on the served snapshot (0 = hardware
  /// concurrency, 1 = inline), forwarded to Histogram::EstimateBatch.
  size_t estimate_threads = 1;

  /// Registry receiving the serve.service.* metrics (DESIGN.md §13). Null
  /// means the process-wide obs::GlobalMetrics(). The service's own counters
  /// (stats()) are these same cells, so when the chosen registry is a
  /// disabled null object the service creates a private always-enabled
  /// registry instead of silently losing its stats.
  obs::MetricsRegistry* metrics = nullptr;
};

/// What happened to one SubmitFeedback call. Both rejection outcomes mean
/// the item was shed (never blocked on); they differ in what the caller can
/// do about it: a full queue is transient backpressure, a stopped service is
/// final.
enum class FeedbackOutcome {
  kAccepted,
  kQueueFull,
  kStopped,
};

/// Service counters, the serving-layer sibling of RobustnessStats: one
/// consistent-enough view of what the service has done so far. Counters are
/// sampled individually from relaxed atomics — totals can be one event apart
/// under concurrency, exact once the service is quiescent (after Drain or
/// Stop).
struct ServiceStats {
  /// Queries served from published snapshots (Estimate + EstimateBatch).
  size_t reads_served = 0;
  /// Feedback items admitted to the queue.
  size_t feedback_accepted = 0;
  /// Feedback items shed because the queue was at capacity.
  size_t feedback_dropped_full = 0;
  /// Feedback items shed because they arrived after Stop.
  size_t feedback_dropped_stopped = 0;
  /// All feedback items shed, for any reason.
  size_t feedback_dropped = 0;
  /// Feedback items folded into the refiner's working copy.
  size_t feedback_applied = 0;
  /// Published snapshot generation; the initial snapshot is epoch 0 and
  /// every publish increments it.
  size_t snapshot_epoch = 0;
  /// Publishes performed (snapshot_epoch restated for readability).
  size_t publishes = 0;
  /// Feedback items currently waiting in the queue.
  size_t queue_depth = 0;
  /// Accepted feedback not yet visible to readers (queued, or applied to
  /// the working copy but not yet published). 0 means readers see every
  /// accepted item.
  size_t staleness = 0;
  /// Wall-clock cost of the most recent / the worst snapshot publish
  /// (clone + pointer swap), seconds.
  double last_publish_seconds = 0.0;
  double max_publish_seconds = 0.0;
};

/// Snapshot-isolated histogram serving (DESIGN.md §11).
///
/// Concurrent readers estimate against an immutable published snapshot
/// (`std::shared_ptr<const Histogram>` behind an atomic), while one refiner
/// thread drains a bounded feedback queue, applies Refine to a private
/// working copy nothing else can see, and publishes a fresh clone at the
/// configured cadence. Readers never block on refinement and refinement
/// never blocks on readers; a reader holding a snapshot keeps it alive after
/// newer epochs supersede it.
///
/// Determinism: feedback is applied in queue (FIFO) order against the same
/// oracle a serial loop would use, so after Drain/Stop the published
/// snapshot's estimates are bitwise-identical to a single-threaded replay of
/// the accepted feedback sequence onto the initial histogram — regardless of
/// reader count, publish cadence, or scheduling (tests/serve_test.cc holds
/// this to std::bit_cast equality).
///
/// The histogram must support Clone() (STHoles does); the oracle must be
/// const-thread-safe and outlive the service.
class HistogramService {
 public:
  /// Takes ownership of `initial` as the refiner's working copy, publishes
  /// its clone as snapshot epoch 0, and starts the refiner thread. Aborts if
  /// `initial` is null or does not support Clone().
  HistogramService(std::unique_ptr<Histogram> initial,
                   const CardinalityOracle& oracle,
                   const ServiceConfig& config = {});

  /// Stops the service (drains and joins the refiner).
  ~HistogramService();

  HistogramService(const HistogramService&) = delete;
  HistogramService& operator=(const HistogramService&) = delete;

  /// Estimated cardinality of `query` against the current snapshot.
  /// Lock-free with respect to refinement; safe from any thread.
  double Estimate(const Box& query) const;

  /// Batch estimation against one consistent snapshot: every query in the
  /// batch is answered by the same epoch even if a publish lands mid-batch.
  std::vector<double> EstimateBatch(std::span<const Box> queries) const;

  /// The current published snapshot. Callers may hold it arbitrarily long;
  /// it stays valid (and frozen) after the service moves on or shuts down.
  std::shared_ptr<const Histogram> snapshot() const;

  /// Submits one executed query's box as refinement feedback; never blocks.
  /// kAccepted means the refiner will eventually apply it; the rejection
  /// outcomes say why it was shed instead (queue at capacity vs. service
  /// stopped).
  FeedbackOutcome SubmitFeedback(const Box& query);

  /// Blocks until every feedback item accepted before this call has been
  /// applied and published, i.e. staleness from the caller's viewpoint is 0.
  /// Concurrent submitters can keep the horizon moving; with quiescent
  /// producers this is a precise barrier. Returns OK once the horizon is
  /// published, or kUnavailable if the refiner exited before reaching it
  /// (cannot happen through the public API — Stop drains the queue — but the
  /// contract is explicit rather than a hang).
  Status Drain();

  /// Closes the feedback queue, drains what it holds, publishes the final
  /// snapshot, and joins the refiner. Estimation keeps working against the
  /// final snapshot; subsequent SubmitFeedback calls are shed. Idempotent.
  void Stop();

  /// Current counters (see ServiceStats for the consistency caveat). The
  /// values are read back from the serve.service.* metric cells — ServiceStats
  /// is a typed view over the registry, not a parallel counting system.
  ServiceStats stats() const;

  /// The registry holding this service's serve.service.* metrics: the one
  /// from ServiceConfig, or the private fallback.
  const obs::MetricsRegistry& metrics_registry() const { return *registry_; }

 private:
  void RefinerLoop();
  void Publish();

  const ServiceConfig config_;
  const CardinalityOracle& oracle_;

  /// Private fallback registry (see ServiceConfig::metrics); null when the
  /// config supplied a usable one.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;

  /// The refiner's private working copy; touched only by the refiner thread
  /// after construction.
  std::unique_ptr<Histogram> working_;
  std::atomic<std::shared_ptr<const Histogram>> snapshot_;

  BoundedQueue<Box> queue_;

  // serve.service.* handles; stats() reads these same cells back.
  obs::Counter reads_;
  obs::Counter accepted_;
  obs::Counter dropped_full_;
  obs::Counter dropped_stopped_;
  obs::Counter applied_;
  obs::Counter publishes_;
  obs::Gauge queue_depth_;
  obs::Gauge staleness_;
  obs::LatencyHistogram publish_seconds_;

  std::atomic<size_t> published_feedback_{0};  // applied count at last publish.

  /// Guards the publish-latency numbers and refiner_done_, and pairs with
  /// publish_cv_ so Drain's wakeups cannot be missed.
  mutable std::mutex publish_mutex_;
  std::condition_variable publish_cv_;
  double last_publish_seconds_ = 0.0;
  double max_publish_seconds_ = 0.0;
  bool refiner_done_ = false;

  std::mutex stop_mutex_;  // Serializes Stop against itself (idempotence).
  bool stopped_ = false;
  std::thread refiner_;
};

}  // namespace sthist

#endif  // STHIST_SERVE_HISTOGRAM_SERVICE_H_

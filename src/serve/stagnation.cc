#include "serve/stagnation.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sthist {

namespace {

// Floor for the trivial-error denominator: a window where the trivial
// histogram is (near-)exact must still produce a finite ratio, and any real
// error against it should read as stagnation, not divide to infinity.
constexpr double kDenominatorFloor = 1e-9;

}  // namespace

Status Validate(const StagnationConfig& config) {
  if (config.window == 0) {
    return Status::InvalidArgument("stagnation window must be positive");
  }
  if (!std::isfinite(config.trigger_nae) || config.trigger_nae <= 0.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "trigger_nae must be finite and positive, got %g",
                   config.trigger_nae);
  }
  if (!std::isfinite(config.rearm_nae) || config.rearm_nae <= 0.0 ||
      config.rearm_nae >= config.trigger_nae) {
    return StatusF(StatusCode::kInvalidArgument,
                   "rearm_nae must be in (0, trigger_nae=%g), got %g",
                   config.trigger_nae, config.rearm_nae);
  }
  if (config.retrigger_backstop <= config.cooldown) {
    return StatusF(StatusCode::kInvalidArgument,
                   "retrigger_backstop (%zu) must exceed cooldown (%zu)",
                   config.retrigger_backstop, config.cooldown);
  }
  return Status::Ok();
}

StagnationDetector::StagnationDetector(const StagnationConfig& config)
    : config_(config),
      err_(config.window, 0.0),
      trivial_err_(config.window, 0.0) {
  STHIST_CHECK(Validate(config).ok());
}

void StagnationDetector::ClearWindow() {
  std::fill(err_.begin(), err_.end(), 0.0);
  std::fill(trivial_err_.begin(), trivial_err_.end(), 0.0);
  next_ = 0;
  filled_ = 0;
  err_sum_ = 0.0;
  trivial_sum_ = 0.0;
}

double StagnationDetector::RollingNae() const {
  if (filled_ == 0) return NAN;
  return err_sum_ / std::max(trivial_sum_, kDenominatorFloor);
}

bool StagnationDetector::Observe(double estimate, double trivial_estimate,
                                 double actual) {
  if (!std::isfinite(estimate) || !std::isfinite(trivial_estimate) ||
      !std::isfinite(actual)) {
    return false;
  }
  ++observations_;

  err_sum_ -= err_[next_];
  trivial_sum_ -= trivial_err_[next_];
  err_[next_] = std::fabs(estimate - actual);
  trivial_err_[next_] = std::fabs(trivial_estimate - actual);
  err_sum_ += err_[next_];
  trivial_sum_ += trivial_err_[next_];
  next_ = (next_ + 1) % config_.window;
  if (filled_ < config_.window) ++filled_;

  // Every wrap, recompute the sums exactly: the subtract-add accumulators
  // stay bit-deterministic either way, but without this they can drift
  // arbitrarily far from the true window sums over a long run.
  if (next_ == 0 && filled_ == config_.window) {
    err_sum_ = 0.0;
    trivial_sum_ = 0.0;
    for (size_t i = 0; i < config_.window; ++i) {
      err_sum_ += err_[i];
      trivial_sum_ += trivial_err_[i];
    }
  }

  switch (state_) {
    case State::kWarmup:
      if (filled_ == config_.window) state_ = State::kArmed;
      break;
    case State::kCooldown: {
      ++since_trigger_;
      const bool recovered = since_trigger_ >= config_.cooldown &&
                             filled_ == config_.window &&
                             RollingNae() < config_.rearm_nae;
      if (recovered || since_trigger_ >= config_.retrigger_backstop) {
        state_ = State::kArmed;
      }
      break;
    }
    case State::kArmed:
      break;
  }

  if (state_ == State::kArmed && filled_ == config_.window &&
      RollingNae() >= config_.trigger_nae) {
    state_ = State::kCooldown;
    since_trigger_ = 0;
    ++triggers_;
    return true;
  }
  return false;
}

void StagnationDetector::NoteSwap() {
  ClearWindow();
  state_ = State::kCooldown;
  since_trigger_ = 0;
}

Status Validate(const ReservoirConfig& config) {
  if (config.capacity == 0) {
    return Status::InvalidArgument("reservoir capacity must be positive");
  }
  if (config.max_points_per_feedback == 0) {
    return Status::InvalidArgument(
        "reservoir max_points_per_feedback must be positive");
  }
  if (!std::isfinite(config.tuples_per_point) ||
      config.tuples_per_point <= 0.0) {
    return StatusF(StatusCode::kInvalidArgument,
                   "reservoir tuples_per_point must be positive, got %g",
                   config.tuples_per_point);
  }
  return Status::Ok();
}

FeedbackReservoir::FeedbackReservoir(size_t dim, const ReservoirConfig& config)
    : dim_(dim),
      config_(config),
      synth_rng_(DeriveSeed(config.seed, /*role=*/1)),
      reservoir_(config.capacity, DeriveSeed(config.seed, /*role=*/2)),
      scratch_(dim) {
  STHIST_CHECK(dim > 0);
  STHIST_CHECK(Validate(config).ok());
}

void FeedbackReservoir::Add(const Box& box, double actual) {
  if (box.dim() != dim_) return;
  if (!std::isfinite(actual) || actual <= 0.0) return;
  ++feedbacks_;

  const size_t points =
      std::clamp<size_t>(static_cast<size_t>(
                             std::ceil(actual / config_.tuples_per_point)),
                         1, config_.max_points_per_feedback);
  for (size_t k = 0; k < points; ++k) {
    for (size_t d = 0; d < dim_; ++d) {
      scratch_[d] = synth_rng_.Uniform(box.lo(d), box.hi(d));
    }
    reservoir_.Offer(scratch_);
  }

  // Ageing: halving the virtual stream length boosts the acceptance rate of
  // everything after it, biasing the sample toward recent phases.
  if (config_.age_interval > 0 && feedbacks_ % config_.age_interval == 0) {
    reservoir_.AgeHalve();
  }
}

Dataset FeedbackReservoir::ToDataset() const {
  Dataset data(dim_);
  data.Reserve(reservoir_.size());
  for (const Point& p : reservoir_.items()) {
    data.Append({p.data(), dim_});
  }
  return data;
}

void FeedbackReservoir::Clear() { reservoir_.Clear(); }

}  // namespace sthist

#include "serve/histogram_service.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "core/check.h"
#include "histogram/registry.h"
#include "histogram/stholes.h"
#include "histogram/trivial.h"
#include "serve/snapshot_io.h"

namespace sthist {

namespace {

/// How long the refiner waits for feedback per poll while a background
/// rebuild is in flight: short enough that a finished rebuild swaps in
/// promptly on an idle queue, long enough that polling costs nothing.
constexpr auto kRebuildPoll = std::chrono::milliseconds(2);

/// Clamps an oracle-reported domain total into something a root bucket can
/// hold (drift or an injected fault can hand back NaN/negative).
double ClampTotal(double total) {
  if (!std::isfinite(total) || total < 0.0) return 0.0;
  return total;
}

}  // namespace

HistogramService::HistogramService(std::unique_ptr<Histogram> initial,
                                   const CardinalityOracle& oracle,
                                   const ServiceConfig& config)
    : config_(config),
      oracle_(oracle),
      working_(std::move(initial)),
      queue_(config.queue_capacity) {
  STHIST_CHECK(working_ != nullptr);
  STHIST_CHECK(config_.publish_batch > 0);

  // stats() reads the metric cells back, so the service must always have an
  // enabled registry: the configured one, else the process-wide default,
  // else (when both are disabled null objects) a private one — never
  // silently losing its stats.
  obs::MetricsRegistry* candidate =
      config_.metrics != nullptr ? config_.metrics : obs::GlobalMetrics();
  if (candidate->enabled()) {
    registry_ = candidate;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  reads_ = registry_->counter("serve.service.reads");
  accepted_ = registry_->counter("serve.service.feedback_accepted");
  dropped_full_ = registry_->counter("serve.service.feedback_dropped_full");
  dropped_stopped_ =
      registry_->counter("serve.service.feedback_dropped_stopped");
  applied_ = registry_->counter("serve.service.feedback_applied");
  publishes_ = registry_->counter("serve.service.publishes");
  queue_depth_ = registry_->gauge("serve.service.queue_depth");
  staleness_ = registry_->gauge("serve.service.staleness");
  publish_seconds_ = registry_->latency("serve.service.publish_seconds");
  snapshot_saves_ = registry_->counter("serve.snapshot.saves");
  snapshot_bytes_ = registry_->gauge("serve.snapshot.bytes");
  snapshot_save_seconds_ = registry_->latency("serve.snapshot.save_seconds");

  if (config_.faults.rate > 0.0) {
    refiner_faults_ =
        std::make_unique<FaultyOracle>(oracle_, config_.faults);
    refine_oracle_ = refiner_faults_.get();
  } else {
    refine_oracle_ = &oracle_;
  }

  if (config_.reinit.enabled) {
    const ReinitConfig& reinit = config_.reinit;
    STHIST_CHECK_MSG(reinit.domain.dim() > 0,
                     "ReinitConfig::domain is required when re-init is on");
    STHIST_CHECK(Validate(reinit.detector).ok());
    STHIST_CHECK(Validate(reinit.reservoir).ok());
    detector_ = std::make_unique<StagnationDetector>(reinit.detector);
    reservoir_ = std::make_unique<FeedbackReservoir>(reinit.domain.dim(),
                                                     reinit.reservoir);
    // The trivial control always reads the clean oracle: it is the
    // normalization baseline, not part of the faulted feedback path.
    trivial_ = std::make_unique<TrivialHistogram>(
        reinit.domain, ClampTotal(oracle_.Count(reinit.domain)));
    replay_.reserve(
        std::min<size_t>(reinit.replay_capacity, config_.queue_capacity));

    reinit_triggers_ = registry_->counter("serve.reinit.triggers");
    reinit_swaps_completed_ =
        registry_->counter("serve.reinit.swaps_completed");
    reinit_swaps_aborted_ = registry_->counter("serve.reinit.swaps_aborted");
    reinit_replayed_ = registry_->counter("serve.reinit.replayed_feedback");
    reservoir_size_ = registry_->gauge("serve.reinit.reservoir_size");
    rolling_nae_ = registry_->gauge("serve.reinit.rolling_nae");
    rebuild_seconds_ = registry_->latency("serve.reinit.rebuild_seconds");
  }

  std::shared_ptr<const Histogram> first = config_.clone_publish
                                               ? working_->Clone()
                                               : working_->Snapshot();
  STHIST_CHECK_MSG(first != nullptr,
                   "HistogramService needs a histogram supporting Clone()");
  snapshot_.store(std::move(first));
  refiner_ = std::thread([this] { RefinerLoop(); });
}

HistogramService::~HistogramService() { Stop(); }

double HistogramService::Estimate(const Box& query) const {
  reads_.Inc();
  return snapshot_.load()->Estimate(query);
}

std::vector<double> HistogramService::EstimateBatch(
    std::span<const Box> queries) const {
  reads_.Inc(queries.size());
  // One load: the whole batch is answered by a single epoch even if a
  // publish lands while it runs.
  std::shared_ptr<const Histogram> snap = snapshot_.load();
  return snap->EstimateBatch(queries, config_.estimate_threads);
}

std::shared_ptr<const Histogram> HistogramService::snapshot() const {
  return snapshot_.load();
}

FeedbackOutcome HistogramService::SubmitFeedback(const Box& query,
                                                 double served_estimate) {
  // The detector grades served estimates; a caller that did not capture one
  // gets the current snapshot sampled here, at submit time — afterwards the
  // refiner's working copy has already learned this very query and would
  // grade itself on the answer sheet.
  if (detector_ != nullptr && !std::isfinite(served_estimate)) {
    served_estimate = snapshot_.load()->Estimate(query);
  }
  switch (queue_.TryPush(Feedback{query, served_estimate})) {
    case PushResult::kAccepted:
      accepted_.Inc();
      return FeedbackOutcome::kAccepted;
    case PushResult::kFull:
      dropped_full_.Inc();
      return FeedbackOutcome::kQueueFull;
    case PushResult::kClosed:
      break;
  }
  dropped_stopped_.Inc();
  return FeedbackOutcome::kStopped;
}

void HistogramService::RefinerLoop() {
  std::vector<Feedback> batch;
  for (;;) {
    size_t n;
    if (rebuild_inflight_) {
      // Timed pop: keep refining the incumbent while the builder works, but
      // wake often enough to swap a finished rebuild in promptly.
      n = queue_.PopBatchFor(&batch, config_.publish_batch, kRebuildPoll);
      if (rebuild_ready_.load(std::memory_order_acquire)) {
        // Publish a landed swap right here: with an idle queue the batch
        // publish below never runs, and readers would otherwise keep the
        // pre-swap snapshot until the next feedback arrives.
        if (CompleteSwap() && n == 0) Publish();
      }
      if (n == 0) {
        if (queue_.closed() && queue_.size() == 0) break;
        continue;
      }
    } else {
      n = queue_.PopBatch(&batch, config_.publish_batch);
      if (n == 0) break;
    }
    for (const Feedback& feedback : batch) ApplyFeedback(feedback);
    // Publish once per applied batch: under load that is one clone per
    // publish_batch items, when idle one per item — the queue being the
    // batching mechanism means freshness degrades only when throughput
    // actually demands it.
    Publish();
  }
  // Shutdown with a rebuild in flight: finish it rather than leak the
  // builder — the final snapshot is then the rebuilt histogram (or the
  // incumbent if the rebuild failed), same as it would have been one poll
  // later.
  if (rebuild_inflight_) {
    CompleteSwap();
    Publish();
  }
  // Wake any Drain stuck on a horizon this refiner will never publish.
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    refiner_done_ = true;
  }
  publish_cv_.notify_all();
}

void HistogramService::ApplyFeedback(const Feedback& feedback) {
  if (detector_ != nullptr) {
    // The detector grades the estimate that was SERVED for this query
    // (captured at submit time) against what executing it observed. The
    // actual flows through the (possibly faulted) refiner oracle — the
    // detector sees the same feedback the histogram does; the trivial
    // control is deterministic and oracle-free.
    const double actual = refine_oracle_->Count(feedback.query);
    const double trivial_estimate = trivial_->Estimate(feedback.query);
    const bool fired = detector_->Observe(feedback.served_estimate,
                                          trivial_estimate, actual);
    reservoir_->Add(feedback.query, actual);
    reservoir_size_.Set(static_cast<double>(reservoir_->size()));
    const double nae = detector_->RollingNae();
    if (std::isfinite(nae)) rolling_nae_.Set(nae);
    if (fired && !rebuild_inflight_) StartRebuild();

    if (config_.reinit.trivial_refresh > 0 &&
        ++observed_since_refresh_ >= config_.reinit.trivial_refresh) {
      observed_since_refresh_ = 0;
      trivial_ = std::make_unique<TrivialHistogram>(
          config_.reinit.domain,
          ClampTotal(oracle_.Count(config_.reinit.domain)));
    }
  }
  working_->Refine(feedback.query, *refine_oracle_);
  applied_.Inc();
  if (rebuild_inflight_ && replay_.size() < config_.reinit.replay_capacity) {
    replay_.push_back(feedback);
  }
}

void HistogramService::StartRebuild() {
  STHIST_CHECK(!rebuild_inflight_);
  reinit_triggers_.Inc();
  // Materialize the sample on the refiner thread — the builder must never
  // touch the live reservoir (which keeps absorbing feedback mid-rebuild).
  rebuild_sample_ = reservoir_->ToDataset();
  rebuilt_.reset();
  rebuild_ready_.store(false, std::memory_order_release);
  replay_.clear();
  rebuild_inflight_ = true;
  if (config_.reinit.background) {
    builder_ = std::thread([this] {
      RunRebuild();
      rebuild_ready_.store(true, std::memory_order_release);
    });
  } else {
    RunRebuild();
    rebuild_ready_.store(true, std::memory_order_release);
    CompleteSwap();
  }
}

void HistogramService::RunRebuild() {
  const auto start = std::chrono::steady_clock::now();
  const ReinitConfig& reinit = config_.reinit;

  // The rebuild reads the clean oracle through its own fault injector when
  // configured — FaultyOracle is stateful, so the builder thread must not
  // share the refiner's instance.
  std::unique_ptr<FaultyOracle> faults;
  const CardinalityOracle* oracle = &oracle_;
  if (reinit.rebuild_faults.rate > 0.0) {
    faults = std::make_unique<FaultyOracle>(oracle_, reinit.rebuild_faults);
    oracle = faults.get();
  }

  // A corrupted domain total (non-finite or negative — exactly what fault
  // injection produces) fails the rebuild outright: every bucket frequency
  // would inherit the garbage, so degrading to the incumbent is strictly
  // better than clamping and serving a zero-mass histogram.
  const double total = oracle->Count(reinit.domain);
  if (!std::isfinite(total) || total < 0.0) {
    rebuilt_.reset();
    rebuild_seconds_.Observe(std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
    return;
  }
  std::unique_ptr<Histogram> fresh;
  if (reinit.rebuild_override) {
    fresh = reinit.rebuild_override(rebuild_sample_, total);
  } else if (rebuild_sample_.size() > 0) {
    std::vector<SubspaceCluster> clusters =
        RunMineClus(rebuild_sample_, reinit.domain, reinit.mineclus);
    STHolesConfig hist_config;
    hist_config.max_buckets = reinit.max_buckets;
    hist_config.metrics = registry_;
    auto stholes =
        std::make_unique<STHoles>(reinit.domain, total, hist_config);
    InitializeHistogram(clusters, reinit.domain, *oracle, reinit.initializer,
                        stholes.get());
    fresh = std::move(stholes);
  }

  // Validation gate: never swap in a histogram that cannot answer sanely —
  // a faulted rebuild degrades to the incumbent instead of serving a
  // half-built snapshot.
  if (fresh != nullptr) {
    const double probe = fresh->Estimate(reinit.domain);
    if (fresh->bucket_count() < 1 || !std::isfinite(probe) || probe < 0.0 ||
        fresh->Clone() == nullptr) {
      fresh.reset();
    }
  }
  rebuilt_ = std::move(fresh);
  rebuild_seconds_.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
}

bool HistogramService::CompleteSwap() {
  if (builder_.joinable()) builder_.join();
  rebuild_inflight_ = false;
  rebuild_ready_.store(false, std::memory_order_release);
  rebuild_sample_ = Dataset(rebuild_sample_.dim());
  if (rebuilt_ == nullptr) {
    // Rebuild failed (or validation rejected it): the incumbent keeps
    // serving, the detector's cooldown/backstop decides when to try again.
    reinit_swaps_aborted_.Inc();
    replay_.clear();
    return false;
  }
  // Replay the rebuild window so the swap does not forget the feedback that
  // arrived while the builder worked, then make the rebuilt histogram the
  // working copy. The next Publish makes it visible to readers.
  for (const Feedback& feedback : replay_) {
    rebuilt_->Refine(feedback.query, *refine_oracle_);
  }
  reinit_replayed_.Inc(replay_.size());
  replay_.clear();
  working_ = std::move(rebuilt_);
  detector_->NoteSwap();
  reinit_swaps_completed_.Inc();
  return true;
}

void HistogramService::Publish() {
  auto start = std::chrono::steady_clock::now();
  // The COW snapshot is O(touched path) — the per-publish deep clone this
  // replaces was the publish-cadence ceiling (ROADMAP item 1); clone_publish
  // keeps the old path selectable for benches and as an escape hatch.
  std::shared_ptr<const Histogram> snap = config_.clone_publish
                                              ? working_->Clone()
                                              : working_->Snapshot();
  STHIST_CHECK(snap != nullptr);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  publish_seconds_.Observe(seconds);
  {
    // Snapshot pointer and watermark move together under the publish lock:
    // anyone who observes the watermark under this mutex (Drain's predicate,
    // SaveSnapshot's paired read) is therefore guaranteed to also observe
    // the snapshot it describes. Publishing the pointer outside the lock let
    // a post-Drain SaveSnapshot watch the watermark advance yet read the
    // previous epoch's snapshot — the §17 barrier bug.
    std::lock_guard<std::mutex> lock(publish_mutex_);
    snapshot_.store(std::move(snap));
    publishes_.Inc();
    const size_t applied_now = applied_.value();
    published_feedback_.store(applied_now, std::memory_order_relaxed);
    const size_t accepted_now = accepted_.value();
    staleness_.Set(static_cast<double>(
        accepted_now > applied_now ? accepted_now - applied_now : 0));
    queue_depth_.Set(static_cast<double>(queue_.size()));
    last_publish_seconds_ = seconds;
    if (seconds > max_publish_seconds_) max_publish_seconds_ = seconds;
  }
  publish_cv_.notify_all();
}

Status HistogramService::SaveSnapshot(const std::string& path) const {
  const auto start = std::chrono::steady_clock::now();
  snapshot_io::ServiceSnapshot out;
  std::shared_ptr<const Histogram> snap;
  {
    // Paired read: this watermark describes exactly this snapshot (see the
    // publish barrier above). Only the two pointer-sized reads happen under
    // the lock; serialization runs on the caller's thread afterwards.
    std::lock_guard<std::mutex> lock(publish_mutex_);
    snap = snapshot_.load();
    out.applied_feedback = config_.restored_feedback +
                           published_feedback_.load(std::memory_order_relaxed);
  }
  out.histogram = snap->SerializeBinary();
  if (out.histogram.empty()) {
    return Status::InvalidArgument(
        "served histogram does not support binary snapshots "
        "(SerializeBinary returned empty)");
  }
  out.estimator = EstimatorNameForBlob(out.histogram);
  const std::string bytes = snapshot_io::EncodeServiceSnapshot(out);
  STHIST_RETURN_IF_ERROR(snapshot_io::WriteFileAtomic(path, bytes));
  snapshot_saves_.Inc();
  snapshot_bytes_.Set(static_cast<double>(bytes.size()));
  snapshot_save_seconds_.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return Status::Ok();
}

Status HistogramService::Drain() {
  // The horizon is the feedback accepted so far; every accepted item leads
  // to a later publish (each refiner batch ends in one), whose notify
  // re-evaluates the predicate under publish_mutex_. A finished refiner also
  // wakes the wait so a stopped service reports kUnavailable instead of
  // hanging on an unreachable horizon.
  std::unique_lock<std::mutex> lock(publish_mutex_);
  publish_cv_.wait(lock, [this] {
    return refiner_done_ ||
           published_feedback_.load(std::memory_order_relaxed) >=
               accepted_.value();
  });
  if (published_feedback_.load(std::memory_order_relaxed) >=
      accepted_.value()) {
    return Status::Ok();
  }
  return Status::Unavailable(
      "service stopped before the drain horizon was published");
}

void HistogramService::Stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  queue_.Close();
  if (refiner_.joinable()) refiner_.join();
}

ServiceStats HistogramService::stats() const {
  ServiceStats s;
  s.reads_served = reads_.value();
  s.feedback_accepted = accepted_.value();
  s.feedback_dropped_full = dropped_full_.value();
  s.feedback_dropped_stopped = dropped_stopped_.value();
  s.feedback_applied = applied_.value();
  s.publishes = publishes_.value();
  s.snapshot_epoch = s.publishes;
  s.queue_depth = queue_.size();
  size_t published = published_feedback_.load(std::memory_order_relaxed);
  s.staleness =
      s.feedback_accepted > published ? s.feedback_accepted - published : 0;
  s.reinit_triggers = reinit_triggers_.value();
  s.reinit_swaps_completed = reinit_swaps_completed_.value();
  s.reinit_swaps_aborted = reinit_swaps_aborted_.value();
  s.reinit_replayed = reinit_replayed_.value();
  s.reservoir_size = static_cast<size_t>(reservoir_size_.value());
  s.rolling_nae = detector_ != nullptr ? rolling_nae_.value() : 0.0;
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    s.last_publish_seconds = last_publish_seconds_;
    s.max_publish_seconds = max_publish_seconds_;
  }
  return s;
}

}  // namespace sthist

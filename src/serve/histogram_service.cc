#include "serve/histogram_service.h"

#include <chrono>
#include <utility>

#include "core/check.h"

namespace sthist {

HistogramService::HistogramService(std::unique_ptr<Histogram> initial,
                                   const CardinalityOracle& oracle,
                                   const ServiceConfig& config)
    : config_(config),
      oracle_(oracle),
      working_(std::move(initial)),
      queue_(config.queue_capacity) {
  STHIST_CHECK(working_ != nullptr);
  STHIST_CHECK(config_.publish_batch > 0);
  std::shared_ptr<const Histogram> first(working_->Clone());
  STHIST_CHECK_MSG(first != nullptr,
                   "HistogramService needs a histogram supporting Clone()");
  snapshot_.store(std::move(first));
  refiner_ = std::thread([this] { RefinerLoop(); });
}

HistogramService::~HistogramService() { Stop(); }

double HistogramService::Estimate(const Box& query) const {
  reads_.fetch_add(1, std::memory_order_relaxed);
  return snapshot_.load()->Estimate(query);
}

std::vector<double> HistogramService::EstimateBatch(
    std::span<const Box> queries) const {
  reads_.fetch_add(queries.size(), std::memory_order_relaxed);
  // One load: the whole batch is answered by a single epoch even if a
  // publish lands while it runs.
  std::shared_ptr<const Histogram> snap = snapshot_.load();
  return snap->EstimateBatch(queries, config_.estimate_threads);
}

std::shared_ptr<const Histogram> HistogramService::snapshot() const {
  return snapshot_.load();
}

bool HistogramService::SubmitFeedback(const Box& query) {
  if (queue_.TryPush(query)) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void HistogramService::RefinerLoop() {
  std::vector<Box> batch;
  while (queue_.PopBatch(&batch, config_.publish_batch) > 0) {
    for (const Box& feedback : batch) {
      working_->Refine(feedback, oracle_);
      applied_.fetch_add(1, std::memory_order_relaxed);
    }
    // Publish once per applied batch: under load that is one clone per
    // publish_batch items, when idle one per item — the queue being the
    // batching mechanism means freshness degrades only when throughput
    // actually demands it.
    Publish();
  }
}

void HistogramService::Publish() {
  auto start = std::chrono::steady_clock::now();
  std::shared_ptr<const Histogram> snap(working_->Clone());
  STHIST_CHECK(snap != nullptr);
  snapshot_.store(std::move(snap));
  epoch_.fetch_add(1, std::memory_order_relaxed);
  published_feedback_.store(applied_.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    last_publish_seconds_ = seconds;
    if (seconds > max_publish_seconds_) max_publish_seconds_ = seconds;
  }
  publish_cv_.notify_all();
}

void HistogramService::Drain() {
  // The horizon is the feedback accepted so far; every accepted item leads
  // to a later publish (each refiner batch ends in one), whose notify
  // re-evaluates the predicate under publish_mutex_.
  std::unique_lock<std::mutex> lock(publish_mutex_);
  publish_cv_.wait(lock, [this] {
    return published_feedback_.load(std::memory_order_relaxed) >=
           accepted_.load(std::memory_order_relaxed);
  });
}

void HistogramService::Stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  queue_.Close();
  if (refiner_.joinable()) refiner_.join();
}

ServiceStats HistogramService::stats() const {
  ServiceStats s;
  s.reads_served = reads_.load(std::memory_order_relaxed);
  s.feedback_accepted = accepted_.load(std::memory_order_relaxed);
  s.feedback_dropped = dropped_.load(std::memory_order_relaxed);
  s.feedback_applied = applied_.load(std::memory_order_relaxed);
  s.snapshot_epoch = epoch_.load(std::memory_order_relaxed);
  s.publishes = s.snapshot_epoch;
  s.queue_depth = queue_.size();
  size_t published = published_feedback_.load(std::memory_order_relaxed);
  s.staleness =
      s.feedback_accepted > published ? s.feedback_accepted - published : 0;
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    s.last_publish_seconds = last_publish_seconds_;
    s.max_publish_seconds = max_publish_seconds_;
  }
  return s;
}

}  // namespace sthist

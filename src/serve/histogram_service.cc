#include "serve/histogram_service.h"

#include <chrono>
#include <utility>

#include "core/check.h"

namespace sthist {

HistogramService::HistogramService(std::unique_ptr<Histogram> initial,
                                   const CardinalityOracle& oracle,
                                   const ServiceConfig& config)
    : config_(config),
      oracle_(oracle),
      working_(std::move(initial)),
      queue_(config.queue_capacity) {
  STHIST_CHECK(working_ != nullptr);
  STHIST_CHECK(config_.publish_batch > 0);

  // stats() reads the metric cells back, so the service must always have an
  // enabled registry: the configured one, else the process-wide default,
  // else (when both are disabled null objects) a private one — never
  // silently losing its stats.
  obs::MetricsRegistry* candidate =
      config_.metrics != nullptr ? config_.metrics : obs::GlobalMetrics();
  if (candidate->enabled()) {
    registry_ = candidate;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  reads_ = registry_->counter("serve.service.reads");
  accepted_ = registry_->counter("serve.service.feedback_accepted");
  dropped_full_ = registry_->counter("serve.service.feedback_dropped_full");
  dropped_stopped_ =
      registry_->counter("serve.service.feedback_dropped_stopped");
  applied_ = registry_->counter("serve.service.feedback_applied");
  publishes_ = registry_->counter("serve.service.publishes");
  queue_depth_ = registry_->gauge("serve.service.queue_depth");
  staleness_ = registry_->gauge("serve.service.staleness");
  publish_seconds_ = registry_->latency("serve.service.publish_seconds");

  std::shared_ptr<const Histogram> first(working_->Clone());
  STHIST_CHECK_MSG(first != nullptr,
                   "HistogramService needs a histogram supporting Clone()");
  snapshot_.store(std::move(first));
  refiner_ = std::thread([this] { RefinerLoop(); });
}

HistogramService::~HistogramService() { Stop(); }

double HistogramService::Estimate(const Box& query) const {
  reads_.Inc();
  return snapshot_.load()->Estimate(query);
}

std::vector<double> HistogramService::EstimateBatch(
    std::span<const Box> queries) const {
  reads_.Inc(queries.size());
  // One load: the whole batch is answered by a single epoch even if a
  // publish lands while it runs.
  std::shared_ptr<const Histogram> snap = snapshot_.load();
  return snap->EstimateBatch(queries, config_.estimate_threads);
}

std::shared_ptr<const Histogram> HistogramService::snapshot() const {
  return snapshot_.load();
}

FeedbackOutcome HistogramService::SubmitFeedback(const Box& query) {
  switch (queue_.TryPush(query)) {
    case PushResult::kAccepted:
      accepted_.Inc();
      return FeedbackOutcome::kAccepted;
    case PushResult::kFull:
      dropped_full_.Inc();
      return FeedbackOutcome::kQueueFull;
    case PushResult::kClosed:
      break;
  }
  dropped_stopped_.Inc();
  return FeedbackOutcome::kStopped;
}

void HistogramService::RefinerLoop() {
  std::vector<Box> batch;
  while (queue_.PopBatch(&batch, config_.publish_batch) > 0) {
    for (const Box& feedback : batch) {
      working_->Refine(feedback, oracle_);
      applied_.Inc();
    }
    // Publish once per applied batch: under load that is one clone per
    // publish_batch items, when idle one per item — the queue being the
    // batching mechanism means freshness degrades only when throughput
    // actually demands it.
    Publish();
  }
  // Wake any Drain stuck on a horizon this refiner will never publish.
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    refiner_done_ = true;
  }
  publish_cv_.notify_all();
}

void HistogramService::Publish() {
  auto start = std::chrono::steady_clock::now();
  std::shared_ptr<const Histogram> snap(working_->Clone());
  STHIST_CHECK(snap != nullptr);
  snapshot_.store(std::move(snap));
  publishes_.Inc();
  const size_t applied_now = applied_.value();
  published_feedback_.store(applied_now, std::memory_order_relaxed);
  const size_t accepted_now = accepted_.value();
  staleness_.Set(static_cast<double>(
      accepted_now > applied_now ? accepted_now - applied_now : 0));
  queue_depth_.Set(static_cast<double>(queue_.size()));
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  publish_seconds_.Observe(seconds);
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    last_publish_seconds_ = seconds;
    if (seconds > max_publish_seconds_) max_publish_seconds_ = seconds;
  }
  publish_cv_.notify_all();
}

Status HistogramService::Drain() {
  // The horizon is the feedback accepted so far; every accepted item leads
  // to a later publish (each refiner batch ends in one), whose notify
  // re-evaluates the predicate under publish_mutex_. A finished refiner also
  // wakes the wait so a stopped service reports kUnavailable instead of
  // hanging on an unreachable horizon.
  std::unique_lock<std::mutex> lock(publish_mutex_);
  publish_cv_.wait(lock, [this] {
    return refiner_done_ ||
           published_feedback_.load(std::memory_order_relaxed) >=
               accepted_.value();
  });
  if (published_feedback_.load(std::memory_order_relaxed) >=
      accepted_.value()) {
    return Status::Ok();
  }
  return Status::Unavailable(
      "service stopped before the drain horizon was published");
}

void HistogramService::Stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  queue_.Close();
  if (refiner_.joinable()) refiner_.join();
}

ServiceStats HistogramService::stats() const {
  ServiceStats s;
  s.reads_served = reads_.value();
  s.feedback_accepted = accepted_.value();
  s.feedback_dropped_full = dropped_full_.value();
  s.feedback_dropped_stopped = dropped_stopped_.value();
  s.feedback_dropped = s.feedback_dropped_full + s.feedback_dropped_stopped;
  s.feedback_applied = applied_.value();
  s.publishes = publishes_.value();
  s.snapshot_epoch = s.publishes;
  s.queue_depth = queue_.size();
  size_t published = published_feedback_.load(std::memory_order_relaxed);
  s.staleness =
      s.feedback_accepted > published ? s.feedback_accepted - published : 0;
  {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    s.last_publish_seconds = last_publish_seconds_;
    s.max_publish_seconds = max_publish_seconds_;
  }
  return s;
}

}  // namespace sthist

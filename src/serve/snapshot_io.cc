#include "serve/snapshot_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/binfmt.h"

namespace sthist {
namespace snapshot_io {

namespace {

constexpr char kServiceMagic[] = "STHS";
constexpr char kFleetMagic[] = "STHF";

/// Reads a u64-length-prefixed byte string at `*cursor`, bounds-checked
/// against `end`. Advances the cursor past the field on success.
Status ReadLengthPrefixed(const char** cursor, const char* end,
                          const char* what, std::string* out) {
  if (end - *cursor < 8) {
    return StatusF(StatusCode::kInvalidArgument,
                   "snapshot truncated inside the %s length", what);
  }
  const uint64_t size = binfmt::ReadU64(*cursor);
  *cursor += 8;
  if (size > static_cast<uint64_t>(end - *cursor)) {
    return StatusF(StatusCode::kInvalidArgument,
                   "snapshot %s claims %llu bytes but only %zu remain", what,
                   static_cast<unsigned long long>(size),
                   static_cast<size_t>(end - *cursor));
  }
  out->assign(*cursor, size);
  *cursor += size;
  return Status::Ok();
}

}  // namespace

std::string EncodeServiceSnapshot(const ServiceSnapshot& snapshot) {
  std::string payload;
  binfmt::AppendU64(&payload, snapshot.applied_feedback);
  binfmt::AppendU64(&payload, snapshot.estimator.size());
  payload.append(snapshot.estimator);
  binfmt::AppendU64(&payload, snapshot.histogram.size());
  payload.append(snapshot.histogram);
  return binfmt::Frame(kServiceMagic, kFormatVersion, payload);
}

StatusOr<ServiceSnapshot> DecodeServiceSnapshot(std::string_view bytes) {
  StatusOr<std::string_view> framed =
      binfmt::Unframe(kServiceMagic, kFormatVersion, bytes);
  if (!framed.ok()) return framed.status();
  const std::string_view payload = *framed;
  if (payload.size() < 8) {
    return Status::InvalidArgument(
        "service snapshot payload shorter than its feedback watermark");
  }
  ServiceSnapshot snapshot;
  snapshot.applied_feedback = binfmt::ReadU64(payload.data());
  const char* cursor = payload.data() + 8;
  const char* end = payload.data() + payload.size();
  STHIST_RETURN_IF_ERROR(
      ReadLengthPrefixed(&cursor, end, "estimator name", &snapshot.estimator));
  STHIST_RETURN_IF_ERROR(
      ReadLengthPrefixed(&cursor, end, "histogram blob", &snapshot.histogram));
  if (cursor != end) {
    return Status::InvalidArgument(
        "service snapshot has trailing bytes after the histogram blob");
  }
  return snapshot;
}

std::string EncodeFleetSnapshot(const FleetSnapshot& snapshot) {
  std::string payload;
  binfmt::AppendU64(&payload, snapshot.seed);
  binfmt::AppendU64(&payload, snapshot.tenants.size());
  for (const FleetTenant& tenant : snapshot.tenants) {
    binfmt::AppendU64(&payload, tenant.key.size());
    payload.append(tenant.key);
    binfmt::AppendU64(&payload, tenant.estimator.size());
    payload.append(tenant.estimator);
    binfmt::AppendU64(&payload, tenant.histogram.size());
    payload.append(tenant.histogram);
  }
  return binfmt::Frame(kFleetMagic, kFormatVersion, payload);
}

StatusOr<FleetSnapshot> DecodeFleetSnapshot(std::string_view bytes) {
  StatusOr<std::string_view> framed =
      binfmt::Unframe(kFleetMagic, kFormatVersion, bytes);
  if (!framed.ok()) return framed.status();
  const std::string_view payload = *framed;
  if (payload.size() < 16) {
    return Status::InvalidArgument(
        "fleet snapshot payload shorter than its seed/tenant-count preamble");
  }
  FleetSnapshot snapshot;
  snapshot.seed = binfmt::ReadU64(payload.data());
  const uint64_t tenant_count = binfmt::ReadU64(payload.data() + 8);
  // Every tenant carries at least two length prefixes; a count the payload
  // cannot possibly hold is rejected before the reserve scales with it.
  if (tenant_count > payload.size() / 16) {
    return StatusF(StatusCode::kInvalidArgument,
                   "fleet snapshot claims %llu tenants but holds only "
                   "%zu payload bytes",
                   static_cast<unsigned long long>(tenant_count),
                   payload.size());
  }
  snapshot.tenants.reserve(tenant_count);
  const char* cursor = payload.data() + 16;
  const char* end = payload.data() + payload.size();
  for (uint64_t i = 0; i < tenant_count; ++i) {
    FleetTenant tenant;
    STHIST_RETURN_IF_ERROR(
        ReadLengthPrefixed(&cursor, end, "tenant key", &tenant.key));
    STHIST_RETURN_IF_ERROR(ReadLengthPrefixed(&cursor, end,
                                              "tenant estimator name",
                                              &tenant.estimator));
    STHIST_RETURN_IF_ERROR(ReadLengthPrefixed(
        &cursor, end, "tenant histogram blob", &tenant.histogram));
    snapshot.tenants.push_back(std::move(tenant));
  }
  if (cursor != end) {
    return Status::InvalidArgument(
        "fleet snapshot has trailing bytes after the last tenant");
  }
  return snapshot;
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return StatusF(StatusCode::kIoError, "cannot open %s for writing: %s",
                   tmp.c_str(), std::strerror(errno));
  }
  const size_t written = bytes.empty()
                             ? 0
                             : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  if (std::fclose(f) != 0 || written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return StatusF(StatusCode::kIoError, "short write to %s", tmp.c_str());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return StatusF(StatusCode::kIoError, "cannot rename %s over %s: %s",
                   tmp.c_str(), path.c_str(), std::strerror(errno));
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return StatusF(StatusCode::kNotFound, "cannot open %s: %s", path.c_str(),
                   std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return StatusF(StatusCode::kIoError, "read error on %s", path.c_str());
  }
  return out;
}

}  // namespace snapshot_io
}  // namespace sthist

#include "serve/service_fleet.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/check.h"
#include "core/rng.h"
#include "histogram/registry.h"
#include "serve/snapshot_io.h"

namespace sthist {

namespace {

/// FNV-1a over the tenant key's bytes: the structured input DeriveSeed mixes
/// with the fleet seed. FNV alone is too weak for seed independence, but as
/// the `role` of a SplitMix64 double-mix it only has to separate distinct
/// keys, which it does.
uint64_t HashKey(std::string_view key) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Maximum characters of a tenant key carried into a metric label: names
/// must stay short and printable whatever the caller uses as keys.
constexpr size_t kMaxLabelChars = 24;

/// Folds a tenant key into a metric-name-safe label: [A-Za-z0-9_] kept,
/// everything else replaced by '_', truncated, never empty. Distinct keys
/// may collide after sanitization — acceptable, because per-shard cells are
/// a capped debugging aid, not the source of truth (the aggregate
/// serve.fleet.* cells are).
std::string SanitizeLabel(std::string_view key) {
  std::string label;
  label.reserve(std::min(key.size(), kMaxLabelChars));
  for (const char c : key) {
    if (label.size() >= kMaxLabelChars) break;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    label.push_back(ok ? c : '_');
  }
  if (label.empty()) label = "t";
  return label;
}

}  // namespace

ServiceFleet::ServiceFleet(const FleetConfig& config) : config_(config) {
  STHIST_CHECK(config_.refiners > 0);
  STHIST_CHECK(config_.queue_capacity > 0);
  STHIST_CHECK(config_.publish_batch > 0);

  // Same registry fallback as HistogramService: stats() reads the metric
  // cells back, so the fleet must always have an enabled registry.
  obs::MetricsRegistry* candidate =
      config_.metrics != nullptr ? config_.metrics : obs::GlobalMetrics();
  if (candidate->enabled()) {
    registry_ = candidate;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  tenants_ = registry_->gauge("serve.fleet.tenants");
  tenants_added_ = registry_->counter("serve.fleet.tenants_added");
  tenants_removed_ = registry_->counter("serve.fleet.tenants_removed");
  reads_ = registry_->counter("serve.fleet.reads");
  accepted_ = registry_->counter("serve.fleet.feedback_accepted");
  dropped_full_ = registry_->counter("serve.fleet.feedback_dropped_full");
  dropped_stopped_ =
      registry_->counter("serve.fleet.feedback_dropped_stopped");
  applied_ = registry_->counter("serve.fleet.feedback_applied");
  publishes_ = registry_->counter("serve.fleet.publishes");
  shard_runs_ = registry_->counter("serve.fleet.shard_runs");
  queue_depth_ = registry_->gauge("serve.fleet.queue_depth");
  publish_seconds_ = registry_->latency("serve.fleet.publish_seconds");
  snapshot_saves_ = registry_->counter("serve.snapshot.saves");
  snapshot_bytes_ = registry_->gauge("serve.snapshot.bytes");
  snapshot_save_seconds_ = registry_->latency("serve.snapshot.save_seconds");

  pool_ = std::make_unique<ThreadPool>(config_.refiners, registry_);
}

ServiceFleet::~ServiceFleet() {
  Stop();
  // Join the workers before any member they touch is destroyed.
  pool_.reset();
}

Status ServiceFleet::AddTenant(std::string_view key,
                               std::unique_ptr<Histogram> initial,
                               const CardinalityOracle& oracle) {
  if (key.empty()) {
    return Status::InvalidArgument("tenant key must be non-empty");
  }
  if (initial == nullptr) {
    return Status::InvalidArgument("tenant histogram must be non-null");
  }
  std::shared_ptr<const Histogram> first =
      config_.clone_publish
          ? std::shared_ptr<const Histogram>(initial->Clone())
          : initial->Snapshot();
  if (first == nullptr) {
    return StatusF(StatusCode::kInvalidArgument,
                   "tenant '%.*s' needs a histogram supporting Clone()",
                   static_cast<int>(key.size()), key.data());
  }

  auto shard = std::make_shared<Shard>(std::string(key), TenantId(key),
                                       config_.queue_capacity);
  shard->working = std::move(initial);
  shard->snapshot.store(std::move(first));
  shard->oracle = &oracle;

  std::unique_lock<std::shared_mutex> lock(map_mutex_);
  if (stopped_) {
    return Status::Unavailable("fleet is stopped; no tenants can be added");
  }
  auto [it, inserted] = shards_.emplace(shard->key, shard);
  if (!inserted) {
    return StatusF(StatusCode::kInvalidArgument,
                   "tenant '%s' already exists", shard->key.c_str());
  }
  // Per-shard cells, capped: the first top_k tenants ever added get their
  // own label, everyone after shares "other" (DESIGN.md §13 — the name set
  // must stay bounded however many tenants come and go).
  const std::string label = labels_assigned_ < config_.top_k_shard_labels
                                ? SanitizeLabel(shard->key)
                                : std::string("other");
  if (labels_assigned_ < config_.top_k_shard_labels) ++labels_assigned_;
  shard->label_reads =
      registry_->counter("serve.fleet_shard_" + label + ".reads");
  shard->label_applied =
      registry_->counter("serve.fleet_shard_" + label + ".applied");
  tenants_.Set(static_cast<double>(shards_.size()));
  tenants_added_.Inc();
  return Status::Ok();
}

Status ServiceFleet::RemoveTenant(std::string_view key) {
  std::shared_ptr<Shard> shard;
  {
    std::unique_lock<std::shared_mutex> lock(map_mutex_);
    auto it = shards_.find(std::string(key));
    if (it == shards_.end()) {
      return StatusF(StatusCode::kNotFound, "unknown tenant '%.*s'",
                     static_cast<int>(key.size()), key.data());
    }
    shard = std::move(it->second);
    shards_.erase(it);
    tenants_.Set(static_cast<double>(shards_.size()));
    tenants_removed_.Inc();
  }
  // Drain what the queue still holds (counters must converge to
  // applied == accepted) without publishing further snapshots. Readers that
  // already hold the snapshot keep it; the shard itself dies with the last
  // reference.
  shard->removed.store(true, std::memory_order_release);
  shard->queue.Close();
  ScheduleShard(std::move(shard));
  return Status::Ok();
}

bool ServiceFleet::HasTenant(std::string_view key) const {
  return FindShard(key) != nullptr;
}

std::vector<std::string> ServiceFleet::TenantKeys() const {
  std::vector<std::string> keys;
  {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    keys.reserve(shards_.size());
    for (const auto& [key, shard] : shards_) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

uint64_t ServiceFleet::TenantId(std::string_view key) const {
  return DeriveSeed(config_.seed, HashKey(key));
}

std::shared_ptr<ServiceFleet::Shard> ServiceFleet::FindShard(
    std::string_view key) const {
  std::shared_lock<std::shared_mutex> lock(map_mutex_);
  auto it = shards_.find(std::string(key));
  return it == shards_.end() ? nullptr : it->second;
}

StatusOr<double> ServiceFleet::Estimate(std::string_view key,
                                        const Box& query) const {
  std::shared_ptr<Shard> shard = FindShard(key);
  if (shard == nullptr) {
    return StatusF(StatusCode::kNotFound, "unknown tenant '%.*s'",
                   static_cast<int>(key.size()), key.data());
  }
  reads_.Inc();
  shard->label_reads.Inc();
  return shard->snapshot.load()->Estimate(query);
}

StatusOr<std::vector<double>> ServiceFleet::EstimateBatch(
    std::string_view key, std::span<const Box> queries) const {
  std::shared_ptr<Shard> shard = FindShard(key);
  if (shard == nullptr) {
    return StatusF(StatusCode::kNotFound, "unknown tenant '%.*s'",
                   static_cast<int>(key.size()), key.data());
  }
  reads_.Inc(queries.size());
  shard->label_reads.Inc(queries.size());
  // One load: the whole batch is answered by a single snapshot epoch.
  std::shared_ptr<const Histogram> snap = shard->snapshot.load();
  return snap->EstimateBatch(queries, config_.estimate_threads);
}

std::shared_ptr<const Histogram> ServiceFleet::Snapshot(
    std::string_view key) const {
  std::shared_ptr<Shard> shard = FindShard(key);
  return shard == nullptr ? nullptr : shard->snapshot.load();
}

StatusOr<FleetFeedbackOutcome> ServiceFleet::SubmitFeedback(
    std::string_view key, const Box& query) {
  std::shared_ptr<Shard> shard = FindShard(key);
  if (shard == nullptr) {
    return StatusF(StatusCode::kNotFound, "unknown tenant '%.*s'",
                   static_cast<int>(key.size()), key.data());
  }
  switch (shard->queue.TryPush(query)) {
    case PushResult::kAccepted:
      shard->accepted.fetch_add(1, std::memory_order_relaxed);
      accepted_.Inc();
      queue_depth_.Add(1.0);
      ScheduleShard(std::move(shard));
      return FleetFeedbackOutcome::kAccepted;
    case PushResult::kFull:
      dropped_full_.Inc();
      return FleetFeedbackOutcome::kQueueFull;
    case PushResult::kClosed:
      break;
  }
  dropped_stopped_.Inc();
  return FleetFeedbackOutcome::kStopped;
}

void ServiceFleet::ScheduleShard(std::shared_ptr<Shard> shard) {
  // The claiming loop: exactly one thread wins the kIdle→kQueued transition
  // and enqueues the shard; a running shard is marked dirty instead, and the
  // running worker re-queues it on release. Every path either submits one
  // task, records the need for one, or observes that one is already pending
  // — so at most one pool task per shard exists at any moment.
  uint32_t state = shard->in_flight.load(std::memory_order_relaxed);
  for (;;) {
    switch (state) {
      case kIdle:
        if (shard->in_flight.compare_exchange_weak(
                state, kQueued, std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
          pool_->Submit(
              [this, shard = std::move(shard)] { RunShard(shard); });
          return;
        }
        break;  // `state` was reloaded; re-dispatch.
      case kQueued:
      case kRunningDirty:
        return;
      case kRunning:
        if (shard->in_flight.compare_exchange_weak(
                state, kRunningDirty, std::memory_order_acq_rel,
                std::memory_order_relaxed)) {
          return;
        }
        break;
      default:
        STHIST_CHECK_MSG(false, "corrupt shard claim state");
    }
  }
}

void ServiceFleet::RunShard(const std::shared_ptr<Shard>& shard) {
  // kQueued→kRunning: this worker now owns the working histogram. Cross-run
  // visibility of refinements comes from the claim chain — the previous
  // run's release of the claim is acquired by whichever ScheduleShard CAS
  // won kIdle→kQueued, and the pool queue orders that submit before this
  // execution.
  shard->in_flight.store(kRunning, std::memory_order_release);
  shard_runs_.Inc();

  // Non-blocking drain of one batch, strictly FIFO: a pool worker never
  // parks on an empty shard queue (it would starve other shards), and the
  // batch bound keeps one backlogged tenant from monopolizing the worker.
  std::vector<Box> batch;
  const size_t n =
      shard->queue.PopBatchFor(&batch, config_.publish_batch,
                               std::chrono::seconds(0));
  if (n > 0) {
    const bool removed = shard->removed.load(std::memory_order_acquire);
    for (const Box& query : batch) {
      shard->working->Refine(query, *shard->oracle);
    }
    shard->applied.fetch_add(n, std::memory_order_relaxed);
    applied_.Inc(n);
    shard->label_applied.Inc(n);
    queue_depth_.Add(-static_cast<double>(n));
    if (!removed) {
      PublishShard(shard.get());
    }
    // Advance the drain horizon even when removed: a removed tenant's
    // feedback is drained, not published, and Drain must not hang on it.
    shard->published.store(shard->applied.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  }

  // Release the claim. A failed kRunning→kIdle CAS means a producer marked
  // the shard dirty mid-run: go back to kQueued and resubmit ourselves.
  // After a clean release, anything still queued (items beyond the batch
  // bound, or a push that raced the drain) gets a fresh claim — safe to call
  // unconditionally because ScheduleShard itself CASes.
  uint32_t expected = kRunning;
  if (!shard->in_flight.compare_exchange_strong(expected, kIdle,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
    STHIST_CHECK(expected == kRunningDirty);
    shard->in_flight.store(kQueued, std::memory_order_release);
    pool_->Submit([this, shard] { RunShard(shard); });
  } else if (shard->queue.size() > 0) {
    ScheduleShard(shard);
  }
  NotifyDrain();
}

void ServiceFleet::PublishShard(Shard* shard) {
  const auto start = std::chrono::steady_clock::now();
  // COW snapshot by default (O(touched path), DESIGN.md §17); the deep
  // clone stays selectable for benches and as an escape hatch.
  std::shared_ptr<const Histogram> snap = config_.clone_publish
                                              ? shard->working->Clone()
                                              : shard->working->Snapshot();
  STHIST_CHECK(snap != nullptr);
  // Timed like HistogramService::Publish: the latency of *making* the
  // publishable snapshot. The store below also releases the previous
  // epoch's snapshot, and that teardown (the COW path's stale spine copies)
  // is refiner-thread cleanup, not part of the reader-visible handoff.
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  shard->snapshot.store(std::move(snap));
  publishes_.Inc();
  publish_seconds_.Observe(seconds);
}

void ServiceFleet::NotifyDrain() {
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
  }
  drain_cv_.notify_all();
}

Status ServiceFleet::WaitForShards(
    const std::vector<std::pair<std::shared_ptr<Shard>, size_t>>& targets) {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [&targets] {
    for (const auto& [shard, horizon] : targets) {
      if (shard->published.load(std::memory_order_relaxed) < horizon) {
        return false;
      }
    }
    return true;
  });
  return Status::Ok();
}

Status ServiceFleet::Drain() {
  // The horizon is per shard: everything each shard had accepted when Drain
  // was called. Every accepted item is eventually applied by some pool run
  // (Stop flushes closed queues too), and every run ends in a notify — so
  // the wait always terminates. Removed tenants advance their horizon
  // without publishing.
  std::vector<std::pair<std::shared_ptr<Shard>, size_t>> targets;
  {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    targets.reserve(shards_.size());
    for (const auto& [key, shard] : shards_) {
      targets.emplace_back(shard,
                           shard->accepted.load(std::memory_order_relaxed));
    }
  }
  return WaitForShards(targets);
}

Status ServiceFleet::DrainTenant(std::string_view key) {
  std::shared_ptr<Shard> shard = FindShard(key);
  if (shard == nullptr) {
    return StatusF(StatusCode::kNotFound, "unknown tenant '%.*s'",
                   static_cast<int>(key.size()), key.data());
  }
  const size_t horizon = shard->accepted.load(std::memory_order_relaxed);
  return WaitForShards({{std::move(shard), horizon}});
}

void ServiceFleet::Stop() {
  std::vector<std::shared_ptr<Shard>> all;
  {
    std::unique_lock<std::shared_mutex> lock(map_mutex_);
    if (stopped_) return;
    stopped_ = true;
    all.reserve(shards_.size());
    for (const auto& [key, shard] : shards_) all.push_back(shard);
  }
  // Close every queue (new feedback now sheds as kStopped), then flush what
  // they hold through the pool. A run that leaves a queue non-empty
  // reschedules itself, and reschedules happen inside running tasks, so
  // Wait() cannot return before every queue is drained.
  for (const std::shared_ptr<Shard>& shard : all) {
    shard->queue.Close();
    ScheduleShard(shard);
  }
  pool_->Wait();
  NotifyDrain();
}

Status ServiceFleet::SaveSnapshot(const std::string& path) const {
  const auto start = std::chrono::steady_clock::now();
  snapshot_io::FleetSnapshot out;
  out.seed = config_.seed;
  // Grab the snapshot handles under the shared lock (pointer reads only),
  // then serialize lock-free — each handle is a frozen epoch, so readers and
  // refiners keep running while the encode does its O(total buckets) work.
  std::vector<std::pair<std::string, std::shared_ptr<const Histogram>>> snaps;
  {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    snaps.reserve(shards_.size());
    for (const auto& [key, shard] : shards_) {
      snaps.emplace_back(key, shard->snapshot.load());
    }
  }
  std::sort(snaps.begin(), snaps.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.tenants.reserve(snaps.size());
  for (auto& [key, snap] : snaps) {
    snapshot_io::FleetTenant tenant;
    tenant.histogram = snap->SerializeBinary();
    if (tenant.histogram.empty()) {
      return StatusF(StatusCode::kInvalidArgument,
                     "tenant '%s' does not support binary snapshots "
                     "(SerializeBinary returned empty)",
                     key.c_str());
    }
    tenant.estimator = EstimatorNameForBlob(tenant.histogram);
    tenant.key = std::move(key);
    out.tenants.push_back(std::move(tenant));
  }
  const std::string bytes = snapshot_io::EncodeFleetSnapshot(out);
  STHIST_RETURN_IF_ERROR(snapshot_io::WriteFileAtomic(path, bytes));
  snapshot_saves_.Inc();
  snapshot_bytes_.Set(static_cast<double>(bytes.size()));
  snapshot_save_seconds_.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return Status::Ok();
}

FleetStats ServiceFleet::stats() const {
  FleetStats s;
  {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    s.tenants = shards_.size();
  }
  s.tenants_added = tenants_added_.value();
  s.tenants_removed = tenants_removed_.value();
  s.reads_served = reads_.value();
  s.feedback_accepted = accepted_.value();
  s.feedback_dropped_full = dropped_full_.value();
  s.feedback_dropped_stopped = dropped_stopped_.value();
  s.feedback_applied = applied_.value();
  s.publishes = publishes_.value();
  s.shard_runs = shard_runs_.value();
  const double depth = queue_depth_.value();
  s.queue_depth = depth > 0.0 ? static_cast<size_t>(depth) : 0;
  return s;
}

}  // namespace sthist

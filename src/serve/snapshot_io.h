#ifndef STHIST_SERVE_SNAPSHOT_IO_H_
#define STHIST_SERVE_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.h"

/// \file
/// Versioned binary snapshot containers for the serving layer (DESIGN.md
/// §17), layered over the same frame primitive as the STHoles bucket blob
/// (core/binfmt.h):
///
///   "STHS" — one HistogramService: the applied-feedback watermark, the
///            published estimator's registry name, and its histogram blob
///            ("STHB", "STHK", ...). The watermark is what warm restart
///            needs to resume a deterministic feedback stream where the
///            saved run left off.
///   "STHF" — one ServiceFleet: the fleet seed plus every tenant's key,
///            estimator name, and histogram blob, in the iteration order of
///            the save.
///
/// The nested histogram blobs stay opaque here — they carry their own frame
/// and are decoded through the estimator registry (RestoreHistogram
/// dispatches on each blob's own magic), so corruption inside a tenant's
/// payload is caught by that layer even though this one's checksum would
/// already have flagged it. The stored estimator name makes snapshots
/// self-describing for operators and lets restore paths cross-check the
/// blob against what the save claimed. Every decode fails closed with a
/// Status.

namespace sthist {
namespace snapshot_io {

/// Version of the service/fleet container formats. Evolution policy
/// (DESIGN.md §17): any layout change bumps this, old numbers are never
/// reused, and readers reject mismatches naming both versions. Version 2
/// added the estimator registry name (version 1 assumed STHoles).
inline constexpr uint32_t kFormatVersion = 2;

/// One service's persisted state.
struct ServiceSnapshot {
  /// Feedback items the refiner had applied and published when the snapshot
  /// was cut (the Drain barrier makes this exact, DESIGN.md §17).
  uint64_t applied_feedback = 0;
  /// Registry name of the published estimator ("stholes", "kde", ...),
  /// derived from the blob's magic at save time (EstimatorNameForBlob).
  std::string estimator;
  /// The published histogram's SerializeBinary() blob.
  std::string histogram;
};

std::string EncodeServiceSnapshot(const ServiceSnapshot& snapshot);
StatusOr<ServiceSnapshot> DecodeServiceSnapshot(std::string_view bytes);

/// One tenant's persisted state inside a fleet snapshot.
struct FleetTenant {
  /// Caller-visible tenant key.
  std::string key;
  /// Registry name of the tenant's estimator.
  std::string estimator;
  /// The tenant histogram's SerializeBinary() blob.
  std::string histogram;
};

/// One fleet's persisted state: per-tenant histogram blobs keyed by the
/// caller-visible tenant key.
struct FleetSnapshot {
  /// FleetConfig::seed of the saved fleet; restore must reuse it so tenant
  /// ids and shard routing reproduce.
  uint64_t seed = 0;
  std::vector<FleetTenant> tenants;
};

std::string EncodeFleetSnapshot(const FleetSnapshot& snapshot);
StatusOr<FleetSnapshot> DecodeFleetSnapshot(std::string_view bytes);

/// Writes `bytes` to `path` atomically: a unique temp file in the same
/// directory, then rename over the target — a reader (or a crash) sees the
/// old file or the new one, never a torn prefix.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

/// Reads the whole file. kNotFound when it does not exist.
StatusOr<std::string> ReadFile(const std::string& path);

}  // namespace snapshot_io
}  // namespace sthist

#endif  // STHIST_SERVE_SNAPSHOT_IO_H_

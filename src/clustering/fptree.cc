#include "clustering/fptree.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sthist {

FpTree::FpTree(const std::vector<WeightedTransaction>& transactions,
               size_t num_items, double min_support)
    : num_items_(num_items), min_support_(min_support) {
  STHIST_CHECK(num_items > 0);
  item_support_.assign(num_items, 0.0);
  header_heads_.assign(num_items, -1);
  order_rank_.assign(num_items, -1);

  for (const WeightedTransaction& t : transactions) {
    for (int item : t.items) {
      STHIST_DCHECK(item >= 0 && static_cast<size_t>(item) < num_items);
      item_support_[item] += t.weight;
    }
  }

  // Canonical insertion order: descending support. Mining order (ascending
  // support) is the reverse; both exclude infrequent items.
  std::vector<int> by_desc_support;
  for (int i = 0; i < static_cast<int>(num_items); ++i) {
    if (item_support_[i] >= min_support_) by_desc_support.push_back(i);
  }
  std::sort(by_desc_support.begin(), by_desc_support.end(), [this](int a, int b) {
    if (item_support_[a] != item_support_[b]) {
      return item_support_[a] > item_support_[b];
    }
    return a < b;
  });
  for (size_t rank = 0; rank < by_desc_support.size(); ++rank) {
    order_rank_[by_desc_support[rank]] = static_cast<int>(rank);
  }
  frequent_items_.assign(by_desc_support.rbegin(), by_desc_support.rend());

  nodes_.emplace_back();  // Root.

  std::vector<int> filtered;
  for (const WeightedTransaction& t : transactions) {
    filtered.clear();
    for (int item : t.items) {
      if (order_rank_[item] >= 0) filtered.push_back(item);
    }
    if (filtered.empty()) continue;
    std::sort(filtered.begin(), filtered.end(),
              [this](int a, int b) { return order_rank_[a] < order_rank_[b]; });
    Insert(filtered, t.weight);
  }
}

void FpTree::Insert(const std::vector<int>& sorted_items, double weight) {
  int current = 0;  // Root.
  for (int item : sorted_items) {
    int next = -1;
    for (int child : nodes_[current].children) {
      if (nodes_[child].item == item) {
        next = child;
        break;
      }
    }
    if (next < 0) {
      next = static_cast<int>(nodes_.size());
      Node node;
      node.item = item;
      node.parent = current;
      node.header_next = header_heads_[item];
      header_heads_[item] = next;
      nodes_.push_back(std::move(node));
      nodes_[current].children.push_back(next);
    }
    nodes_[next].count += weight;
    current = next;
  }
}

FpTree FpTree::ConditionalTree(int item) const {
  std::vector<WeightedTransaction> base;
  for (int node_id = header_heads_[item]; node_id >= 0;
       node_id = nodes_[node_id].header_next) {
    WeightedTransaction t;
    t.weight = nodes_[node_id].count;
    for (int up = nodes_[node_id].parent; up > 0; up = nodes_[up].parent) {
      t.items.push_back(nodes_[up].item);
    }
    if (!t.items.empty() && t.weight > 0.0) base.push_back(std::move(t));
  }
  return FpTree(base, num_items_, min_support_);
}

BestItemset FpTree::MineBest(double gain, size_t min_items) const {
  STHIST_CHECK(gain >= 1.0);
  BestItemset best;
  std::vector<int> prefix;
  Mine(gain, min_items, &prefix, &best);
  return best;
}

void FpTree::Mine(double gain, size_t min_items, std::vector<int>* prefix,
                  BestItemset* best) const {
  for (int item : frequent_items_) {
    double support = item_support_[item];
    prefix->push_back(item);

    if (prefix->size() >= min_items) {
      double score =
          support * std::pow(gain, static_cast<double>(prefix->size()));
      if (score > best->score) {
        best->items = *prefix;
        std::sort(best->items.begin(), best->items.end());
        best->support = support;
        best->score = score;
      }
    }

    // Branch-and-bound: extensions live in the conditional tree and cannot
    // exceed the current support, so score <= support * gain^(|prefix| + k)
    // where k is the number of frequent items in the conditional tree.
    FpTree conditional = ConditionalTree(item);
    size_t k = conditional.frequent_item_count();
    if (k > 0) {
      double bound = support *
                     std::pow(gain, static_cast<double>(prefix->size() + k));
      if (bound > best->score && prefix->size() + k >= min_items) {
        conditional.Mine(gain, min_items, prefix, best);
      }
    }
    prefix->pop_back();
  }
}

}  // namespace sthist

#ifndef STHIST_CLUSTERING_CLIQUE_H_
#define STHIST_CLUSTERING_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "clustering/clusterer.h"

namespace sthist {

/// CLIQUE parameters (Agrawal, Gehrke, Gunopulos, Raghavan — SIGMOD'98).
struct CliqueConfig {
  /// Grid resolution: each dimension is cut into xi equal intervals.
  size_t xi = 10;

  /// Density floor: a grid unit is dense when it holds at least
  /// max(tau * n, 1.5x the uniform expectation for its level, 8) tuples.
  /// The level-adaptive component is the standard fix for uniform cell mass
  /// shrinking as xi^-k across lattice levels.
  double tau = 0.002;

  /// Cap on the dimensionality of explored subspaces (the apriori lattice
  /// grows combinatorially; real deployments prune it).
  size_t max_dims = 4;

  /// Cap on dense units kept per subspace dimensionality level (safety
  /// valve against degenerate settings).
  size_t max_units_per_level = 200000;

  /// Cap on clusters returned (highest coverage first).
  size_t max_clusters = 64;
};

/// Bottom-up grid-density subspace clustering.
///
/// CLIQUE finds dense axis-parallel grid units level by level: the dense
/// units of a k-dimensional subspace are joined apriori-style from dense
/// (k-1)-dimensional units, pruned by the monotonicity of density. Clusters
/// are the connected components of dense units within each subspace; each
/// component reports its subspace dimensions, member tuples and bounding
/// rectangle. Scores favor higher-dimensional, higher-coverage clusters so
/// initialization feeds the most specific structures first.
class CliqueClusterer : public SubspaceClusterer {
 public:
  explicit CliqueClusterer(CliqueConfig config);

  std::vector<SubspaceCluster> Cluster(const Dataset& data,
                                       const Box& domain) const override;

  std::string name() const override { return "clique"; }

 private:
  CliqueConfig config_;
};

}  // namespace sthist

#endif  // STHIST_CLUSTERING_CLIQUE_H_

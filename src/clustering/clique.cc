#include "clustering/clique.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/check.h"

namespace sthist {

namespace {

// Cell coordinates of one unit within a fixed subspace.
using CellKey = std::vector<uint32_t>;

struct CellKeyHash {
  size_t operator()(const CellKey& key) const {
    size_t h = 1469598103934665603ull;
    for (uint32_t v : key) {
      h ^= v;
      h *= 1099511628211ull;
    }
    return h;
  }
};

using UnitCounts = std::unordered_map<CellKey, size_t, CellKeyHash>;

// All dense units of one subspace.
struct SubspaceLevel {
  std::vector<size_t> dims;  // Sorted.
  UnitCounts dense_units;
  size_t total_mass = 0;
};

// Union-find over unit indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

CliqueClusterer::CliqueClusterer(CliqueConfig config) : config_(config) {
  STHIST_CHECK(config.xi >= 2);
  STHIST_CHECK(config.tau > 0.0);
  STHIST_CHECK(config.max_dims >= 1);
}

std::vector<SubspaceCluster> CliqueClusterer::Cluster(
    const Dataset& data, const Box& domain) const {
  STHIST_CHECK(data.dim() == domain.dim());
  const size_t n = data.size();
  const size_t dim = data.dim();
  if (n == 0) return {};

  // Precompute every tuple's grid cell per dimension.
  std::vector<uint32_t> cells(n * dim);
  for (size_t i = 0; i < n; ++i) {
    std::span<const double> p = data.row(i);
    for (size_t d = 0; d < dim; ++d) {
      double extent = domain.Extent(d);
      double frac = extent > 0.0 ? (p[d] - domain.lo(d)) / extent : 0.0;
      auto cell = static_cast<uint32_t>(
          frac * static_cast<double>(config_.xi));
      cells[i * dim + d] =
          std::min(cell, static_cast<uint32_t>(config_.xi - 1));
    }
  }

  // Density threshold per level: tau times the uniform expectation for a
  // level-k unit, with a small absolute floor. (Plain CLIQUE uses one fixed
  // tau; a level-adaptive threshold is the standard fix for the fact that
  // uniform cell mass shrinks as xi^-k.)
  auto threshold = [&](size_t level) {
    double uniform = static_cast<double>(n) /
                     std::pow(static_cast<double>(config_.xi),
                              static_cast<double>(level));
    return std::max(config_.tau * static_cast<double>(n),
                    std::max(1.5 * uniform, 8.0));
  };

  // Counts the grid units of one subspace in a single pass and keeps the
  // dense ones.
  auto count_subspace = [&](const std::vector<size_t>& dims) {
    SubspaceLevel level;
    level.dims = dims;
    UnitCounts counts;
    CellKey key(dims.size());
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < dims.size(); ++j) {
        key[j] = cells[i * dim + dims[j]];
      }
      ++counts[key];
    }
    double min_count = threshold(dims.size());
    for (auto& [cell, count] : counts) {
      if (static_cast<double>(count) >= min_count) {
        level.dense_units.emplace(cell, count);
        level.total_mass += count;
      }
    }
    return level;
  };

  // Level 1: every single dimension.
  std::vector<std::vector<SubspaceLevel>> levels(1);
  for (size_t d = 0; d < dim; ++d) {
    SubspaceLevel level = count_subspace({d});
    if (!level.dense_units.empty()) levels[0].push_back(std::move(level));
  }

  // Apriori over subspaces: a k-dim subspace is a candidate only when all
  // its (k-1)-dim sub-subspaces had dense units.
  for (size_t k = 2; k <= config_.max_dims && !levels[k - 2].empty(); ++k) {
    const std::vector<SubspaceLevel>& prev = levels[k - 2];
    std::vector<SubspaceLevel> next;

    // Fast membership test for (k-1)-dim subspaces.
    auto has_prev = [&](std::vector<size_t> dims) {
      for (const SubspaceLevel& level : prev) {
        if (level.dims == dims) return true;
      }
      return false;
    };

    std::vector<std::vector<size_t>> candidates;
    for (size_t a = 0; a < prev.size(); ++a) {
      for (size_t b = a + 1; b < prev.size(); ++b) {
        // Join: same first k-2 dims, distinct last dim.
        const std::vector<size_t>& da = prev[a].dims;
        const std::vector<size_t>& db = prev[b].dims;
        bool joinable = true;
        for (size_t j = 0; j + 1 < da.size(); ++j) {
          if (da[j] != db[j]) {
            joinable = false;
            break;
          }
        }
        if (!joinable || da.back() == db.back()) continue;
        std::vector<size_t> merged = da;
        merged.push_back(db.back());
        std::sort(merged.begin(), merged.end());

        // Verify all (k-1)-subsets are dense subspaces.
        bool all_present = true;
        for (size_t skip = 0; skip < merged.size() && all_present; ++skip) {
          std::vector<size_t> subset;
          for (size_t j = 0; j < merged.size(); ++j) {
            if (j != skip) subset.push_back(merged[j]);
          }
          all_present = has_prev(subset);
        }
        if (all_present) candidates.push_back(std::move(merged));
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    for (const std::vector<size_t>& dims : candidates) {
      SubspaceLevel level = count_subspace(dims);
      if (level.dense_units.empty()) continue;
      if (level.dense_units.size() > config_.max_units_per_level) continue;
      next.push_back(std::move(level));
    }
    levels.push_back(std::move(next));
  }

  // Keep only maximal subspaces: drop a subspace if a retained higher-level
  // subspace contains all its dimensions (its structure reappears there).
  std::vector<const SubspaceLevel*> maximal;
  for (size_t k = 0; k < levels.size(); ++k) {
    for (const SubspaceLevel& level : levels[k]) {
      bool covered = false;
      for (size_t k2 = k + 1; k2 < levels.size() && !covered; ++k2) {
        for (const SubspaceLevel& higher : levels[k2]) {
          if (std::includes(higher.dims.begin(), higher.dims.end(),
                            level.dims.begin(), level.dims.end())) {
            covered = true;
            break;
          }
        }
      }
      if (!covered) maximal.push_back(&level);
    }
  }

  // Connected components of dense units per maximal subspace, then member
  // collection.
  std::vector<SubspaceCluster> clusters;
  for (const SubspaceLevel* level : maximal) {
    const std::vector<size_t>& dims = level->dims;
    std::vector<const CellKey*> unit_keys;
    std::unordered_map<CellKey, size_t, CellKeyHash> unit_index;
    for (const auto& [cell, count] : level->dense_units) {
      unit_index.emplace(cell, unit_keys.size());
      unit_keys.push_back(&cell);
    }

    UnionFind components(unit_keys.size());
    for (size_t u = 0; u < unit_keys.size(); ++u) {
      CellKey probe = *unit_keys[u];
      for (size_t j = 0; j < dims.size(); ++j) {
        // Only +1 neighbors: -1 adjacency is found from the other side.
        ++probe[j];
        auto it = unit_index.find(probe);
        if (it != unit_index.end()) components.Union(u, it->second);
        --probe[j];
      }
    }

    // Component id per unit, members per component.
    std::unordered_map<size_t, size_t> component_slot;
    std::vector<SubspaceCluster> local;
    CellKey key(dims.size());
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < dims.size(); ++j) {
        key[j] = cells[i * dim + dims[j]];
      }
      auto it = unit_index.find(key);
      if (it == unit_index.end()) continue;
      size_t root = components.Find(it->second);
      auto [slot_it, inserted] =
          component_slot.emplace(root, local.size());
      if (inserted) {
        SubspaceCluster cluster;
        cluster.relevant_dims = dims;
        local.push_back(std::move(cluster));
      }
      local[slot_it->second].members.push_back(i);
    }

    for (SubspaceCluster& cluster : local) {
      cluster.core_box = data.BoundsOf(cluster.members);
      cluster.medoid = cluster.members.front();
      cluster.score =
          static_cast<double>(cluster.members.size()) *
          std::pow(4.0, static_cast<double>(cluster.relevant_dims.size()));
      clusters.push_back(std::move(cluster));
    }
  }

  std::sort(clusters.begin(), clusters.end(),
            [](const SubspaceCluster& a, const SubspaceCluster& b) {
              return a.score > b.score;
            });
  if (clusters.size() > config_.max_clusters) {
    clusters.resize(config_.max_clusters);
  }
  return clusters;
}

}  // namespace sthist

#ifndef STHIST_CLUSTERING_CLUSTERER_H_
#define STHIST_CLUSTERING_CLUSTERER_H_

#include <memory>
#include <string>
#include <vector>

#include "clustering/mineclus.h"
#include "core/box.h"
#include "data/dataset.h"

namespace sthist {

/// Interface for subspace clustering algorithms usable as histogram
/// initializers. The paper's earlier study (Khachatryan et al., SSDBM'11)
/// compared six subspace clusterers in this role and found MineClus best;
/// the library ships MineClus (the default), CLIQUE and DOC behind this
/// interface so the comparison can be reproduced (`bench_ablation_clusterer`).
class SubspaceClusterer {
 public:
  virtual ~SubspaceClusterer() = default;

  /// Runs the algorithm over `data` within `domain`. Clusters are returned
  /// sorted by descending importance score.
  virtual std::vector<SubspaceCluster> Cluster(const Dataset& data,
                                               const Box& domain) const = 0;

  /// Human-readable algorithm name.
  virtual std::string name() const = 0;
};

/// MineClus behind the common interface.
class MineClusClusterer : public SubspaceClusterer {
 public:
  explicit MineClusClusterer(MineClusConfig config) : config_(config) {}

  std::vector<SubspaceCluster> Cluster(const Dataset& data,
                                       const Box& domain) const override {
    return RunMineClus(data, domain, config_);
  }

  std::string name() const override { return "mineclus"; }

 private:
  MineClusConfig config_;
};

}  // namespace sthist

#endif  // STHIST_CLUSTERING_CLUSTERER_H_

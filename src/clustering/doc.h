#ifndef STHIST_CLUSTERING_DOC_H_
#define STHIST_CLUSTERING_DOC_H_

#include <cstdint>

#include "clustering/clusterer.h"

namespace sthist {

/// DOC parameters (Procopiuc, Jones, Agarwal, Murali — SIGMOD'02).
struct DocConfig {
  /// Minimum cluster size as a fraction of the dataset.
  double alpha = 0.01;

  /// Dimensionality-vs-size tradeoff of mu(|C|, |D|) = |C| * (1/beta)^|D|.
  double beta = 0.25;

  /// Window half-width per dimension, as a fraction of the domain extent.
  double width_fraction = 0.05;

  /// Random (medoid, discriminating-set) trials per greedy round. A trial
  /// only succeeds when the whole discriminating set happens to come from
  /// the medoid's cluster (probability ~ cluster_fraction^|X|), so the trial
  /// count must be large relative to (1/alpha)^|X|.
  size_t trials_per_round = 256;

  /// Size of the discriminating set X drawn per trial. Small sets keep the
  /// success probability workable on datasets with many modest clusters;
  /// the min-size filter rejects the occasional spurious agreement.
  size_t discriminating_set_size = 2;

  /// Stop after this many rounds in a row without a qualifying cluster.
  size_t max_failed_rounds = 4;

  /// Cap on clusters returned.
  size_t max_clusters = 64;

  uint64_t seed = 17;
};

/// Monte-Carlo projected clustering.
///
/// DOC guesses a cluster by sampling a medoid p and a small discriminating
/// set X from the data: the cluster's subspace is the set of dimensions in
/// which *every* point of X lies within the window of p (if X really is a
/// sample of p's cluster, those are exactly the cluster's bounded
/// dimensions). Among many trials the candidate maximizing
/// mu(|C|, |D|) = |C| * (1/beta)^|D| wins; the greedy outer loop removes its
/// members and repeats. MineClus replaces this Monte-Carlo guess with exact
/// FP-tree mining — having both makes the trade-off measurable
/// (`bench_ablation_clusterer`).
class DocClusterer : public SubspaceClusterer {
 public:
  explicit DocClusterer(DocConfig config);

  std::vector<SubspaceCluster> Cluster(const Dataset& data,
                                       const Box& domain) const override;

  std::string name() const override { return "doc"; }

 private:
  DocConfig config_;
};

}  // namespace sthist

#endif  // STHIST_CLUSTERING_DOC_H_

#ifndef STHIST_CLUSTERING_MINECLUS_H_
#define STHIST_CLUSTERING_MINECLUS_H_

#include <cstdint>
#include <vector>

#include "core/box.h"
#include "data/dataset.h"

namespace sthist {

/// MineClus parameters (paper §5.2 "Clustering" and Table 2).
struct MineClusConfig {
  /// Minimum cluster density: a dimension set around a medoid only qualifies
  /// when at least alpha * |dataset| points fall into its window.
  double alpha = 0.01;

  /// Size-vs-dimensionality tradeoff of the quality function
  /// mu(|C|, |D|) = |C| * (1/beta)^|D|. Smaller beta favors more relevant
  /// dimensions.
  double beta = 0.25;

  /// Cluster window half-width per dimension, as a fraction of that
  /// dimension's domain extent: point q is "close" to medoid p in dimension
  /// d when |q_d - p_d| <= width_fraction * extent(d). (The paper quotes
  /// absolute widths on a [0,1000]-style domain; e.g. width=10 there is
  /// width_fraction=0.01 here.)
  double width_fraction = 0.05;

  /// Hard cap on the number of clusters returned.
  size_t max_clusters = 64;

  /// Medoid samples evaluated per greedy round.
  size_t medoids_per_round = 8;

  /// Stop after this many consecutive rounds without a qualifying cluster.
  size_t max_failed_rounds = 4;

  /// Minimum number of relevant dimensions per cluster.
  size_t min_cluster_dims = 1;

  /// Merge clusters that share the same relevant dimensions and whose core
  /// boxes overlap (MineClus's cluster-refinement step).
  bool merge_similar = true;

  uint64_t seed = 11;
};

/// One projected (subspace) cluster found by MineClus.
struct SubspaceCluster {
  /// Dimensions the cluster is defined in ("used"/relevant dimensions).
  std::vector<size_t> relevant_dims;
  /// Row indices of the member tuples.
  std::vector<size_t> members;
  /// Tight minimal bounding rectangle of the members over all dimensions.
  Box core_box;
  /// Quality mu = |members| * (1/beta)^|relevant_dims| — also the cluster's
  /// importance for initialization ordering.
  double score = 0.0;
  /// Row index of the medoid that produced the cluster.
  size_t medoid = 0;
};

/// Runs MineClus over `data` within `domain`.
///
/// Greedy iterative projected clustering: in each round, a handful of medoid
/// candidates are sampled from the not-yet-clustered points; for every
/// candidate, each remaining point contributes the *transaction* of
/// dimensions in which it lies within the window of the medoid, and the
/// FP-tree miner finds the dimension set maximizing mu subject to the alpha
/// support threshold. The best cluster of the round is kept, its members are
/// removed, and the process repeats. Clusters are returned sorted by
/// descending score (importance).
std::vector<SubspaceCluster> RunMineClus(const Dataset& data,
                                         const Box& domain,
                                         const MineClusConfig& config);

}  // namespace sthist

#endif  // STHIST_CLUSTERING_MINECLUS_H_

#include "clustering/mineclus.h"

#include <algorithm>
#include <cmath>

#include "clustering/fptree.h"
#include "core/check.h"
#include "core/rng.h"
#include "obs/trace.h"

namespace sthist {

namespace {

// A candidate cluster produced by one medoid evaluation.
struct Candidate {
  size_t medoid = 0;
  std::vector<int> dims;
  double score = -1.0;
};

// Collects the rows of `remaining` that lie within the medoid's window in
// every dimension of `dims`.
std::vector<size_t> CollectMembers(const Dataset& data,
                                   const std::vector<size_t>& remaining,
                                   size_t medoid,
                                   const std::vector<int>& dims,
                                   const std::vector<double>& window) {
  std::vector<size_t> members;
  std::span<const double> m = data.row(medoid);
  for (size_t row : remaining) {
    std::span<const double> p = data.row(row);
    bool inside = true;
    for (int d : dims) {
      if (std::abs(p[d] - m[d]) > window[d]) {
        inside = false;
        break;
      }
    }
    if (inside) members.push_back(row);
  }
  return members;
}

// Merges clusters that share the same relevant dimensions and whose core
// boxes intersect; member sets are concatenated and the score recomputed.
void MergeSimilar(const Dataset& data, double gain,
                  std::vector<SubspaceCluster>* clusters) {
  bool merged = true;
  while (merged) {
    merged = false;
    for (size_t i = 0; i < clusters->size() && !merged; ++i) {
      for (size_t j = i + 1; j < clusters->size() && !merged; ++j) {
        SubspaceCluster& a = (*clusters)[i];
        SubspaceCluster& b = (*clusters)[j];
        if (a.relevant_dims != b.relevant_dims) continue;
        if (!a.core_box.Intersects(b.core_box)) continue;
        a.members.insert(a.members.end(), b.members.begin(), b.members.end());
        a.core_box = data.BoundsOf(a.members);
        a.score = static_cast<double>(a.members.size()) *
                  std::pow(gain, static_cast<double>(a.relevant_dims.size()));
        clusters->erase(clusters->begin() + static_cast<ptrdiff_t>(j));
        merged = true;
      }
    }
  }
}

}  // namespace

std::vector<SubspaceCluster> RunMineClus(const Dataset& data,
                                         const Box& domain,
                                         const MineClusConfig& config) {
  STHIST_CHECK(data.dim() == domain.dim());
  STHIST_CHECK(config.alpha > 0.0 && config.alpha <= 1.0);
  STHIST_CHECK(config.beta > 0.0 && config.beta <= 1.0);
  STHIST_CHECK(config.width_fraction > 0.0);

  obs::MetricsRegistry* reg = obs::GlobalMetrics();
  obs::Counter rounds_metric = reg->counter("clustering.mineclus.rounds");
  obs::Counter failed_metric =
      reg->counter("clustering.mineclus.failed_rounds");
  obs::Counter clusters_metric = reg->counter("clustering.mineclus.clusters");
  obs::ScopedTimer mine_timer(
      reg->latency("clustering.mineclus.mine_seconds"));

  const size_t n = data.size();
  const size_t dim = data.dim();
  const double min_support = config.alpha * static_cast<double>(n);
  const double gain = 1.0 / config.beta;

  std::vector<double> window(dim);
  for (size_t d = 0; d < dim; ++d) {
    window[d] = config.width_fraction * domain.Extent(d);
  }

  Rng rng(config.seed);
  std::vector<size_t> remaining(n);
  for (size_t i = 0; i < n; ++i) remaining[i] = i;

  std::vector<SubspaceCluster> clusters;
  size_t failed_rounds = 0;

  while (clusters.size() < config.max_clusters &&
         static_cast<double>(remaining.size()) >= min_support &&
         failed_rounds < config.max_failed_rounds) {
    rounds_metric.Inc();
    // Evaluate a sample of medoids; keep the best-quality dimension set.
    Candidate best;
    size_t samples = std::min(config.medoids_per_round, remaining.size());
    std::vector<size_t> medoid_picks = rng.Sample(remaining.size(), samples);

    std::vector<WeightedTransaction> transactions;
    transactions.reserve(remaining.size());
    for (size_t pick : medoid_picks) {
      size_t medoid = remaining[pick];
      std::span<const double> m = data.row(medoid);

      transactions.clear();
      for (size_t row : remaining) {
        std::span<const double> p = data.row(row);
        WeightedTransaction t;
        for (size_t d = 0; d < dim; ++d) {
          if (std::abs(p[d] - m[d]) <= window[d]) {
            t.items.push_back(static_cast<int>(d));
          }
        }
        if (!t.items.empty()) transactions.push_back(std::move(t));
      }

      FpTree tree(transactions, dim, min_support);
      BestItemset found = tree.MineBest(gain, config.min_cluster_dims);
      if (found.score > best.score) {
        best.medoid = medoid;
        best.dims = found.items;
        best.score = found.score;
      }
    }

    if (best.score < 0.0) {
      ++failed_rounds;
      failed_metric.Inc();
      continue;
    }
    failed_rounds = 0;

    SubspaceCluster cluster;
    cluster.medoid = best.medoid;
    cluster.members =
        CollectMembers(data, remaining, best.medoid, best.dims, window);
    STHIST_CHECK(!cluster.members.empty());
    cluster.relevant_dims.assign(best.dims.begin(), best.dims.end());
    cluster.core_box = data.BoundsOf(cluster.members);
    cluster.score =
        static_cast<double>(cluster.members.size()) *
        std::pow(gain, static_cast<double>(cluster.relevant_dims.size()));
    clusters.push_back(std::move(cluster));
    clusters_metric.Inc();

    // Remove the cluster's members from the remaining pool.
    std::vector<bool> taken(n, false);
    for (size_t row : clusters.back().members) taken[row] = true;
    std::erase_if(remaining, [&taken](size_t row) { return taken[row]; });
  }

  if (config.merge_similar) MergeSimilar(data, gain, &clusters);

  std::sort(clusters.begin(), clusters.end(),
            [](const SubspaceCluster& a, const SubspaceCluster& b) {
              return a.score > b.score;
            });
  return clusters;
}

}  // namespace sthist

#include "clustering/doc.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/rng.h"

namespace sthist {

DocClusterer::DocClusterer(DocConfig config) : config_(config) {
  STHIST_CHECK(config.alpha > 0.0 && config.alpha <= 1.0);
  STHIST_CHECK(config.beta > 0.0 && config.beta <= 1.0);
  STHIST_CHECK(config.width_fraction > 0.0);
  STHIST_CHECK(config.discriminating_set_size >= 1);
}

std::vector<SubspaceCluster> DocClusterer::Cluster(const Dataset& data,
                                                   const Box& domain) const {
  STHIST_CHECK(data.dim() == domain.dim());
  const size_t n = data.size();
  const size_t dim = data.dim();
  const double gain = 1.0 / config_.beta;
  const double min_size = config_.alpha * static_cast<double>(n);

  std::vector<double> window(dim);
  for (size_t d = 0; d < dim; ++d) {
    window[d] = config_.width_fraction * domain.Extent(d);
  }

  Rng rng(config_.seed);
  std::vector<size_t> remaining(n);
  for (size_t i = 0; i < n; ++i) remaining[i] = i;

  std::vector<SubspaceCluster> clusters;
  size_t failed_rounds = 0;

  while (clusters.size() < config_.max_clusters &&
         static_cast<double>(remaining.size()) >= min_size &&
         failed_rounds < config_.max_failed_rounds) {
    double best_score = -1.0;
    size_t best_medoid = 0;
    std::vector<size_t> best_dims;
    std::vector<size_t> best_members;

    for (size_t trial = 0; trial < config_.trials_per_round; ++trial) {
      size_t medoid = remaining[rng.Index(remaining.size())];
      std::span<const double> m = data.row(medoid);

      // The discriminating set votes on the bounded dimensions: keep d only
      // when every sampled point is within the window of the medoid in d.
      std::vector<size_t> dims;
      {
        std::vector<bool> bounded(dim, true);
        size_t x_size = std::min(config_.discriminating_set_size,
                                 remaining.size());
        for (size_t j = 0; j < x_size; ++j) {
          std::span<const double> x =
              data.row(remaining[rng.Index(remaining.size())]);
          for (size_t d = 0; d < dim; ++d) {
            if (std::abs(x[d] - m[d]) > window[d]) bounded[d] = false;
          }
        }
        for (size_t d = 0; d < dim; ++d) {
          if (bounded[d]) dims.push_back(d);
        }
      }
      if (dims.empty()) continue;

      // Candidate cluster: everything inside the medoid's window in the
      // voted dimensions.
      std::vector<size_t> members;
      for (size_t row : remaining) {
        std::span<const double> p = data.row(row);
        bool inside = true;
        for (size_t d : dims) {
          if (std::abs(p[d] - m[d]) > window[d]) {
            inside = false;
            break;
          }
        }
        if (inside) members.push_back(row);
      }
      if (static_cast<double>(members.size()) < min_size) continue;

      double score = static_cast<double>(members.size()) *
                     std::pow(gain, static_cast<double>(dims.size()));
      if (score > best_score) {
        best_score = score;
        best_medoid = medoid;
        best_dims = std::move(dims);
        best_members = std::move(members);
      }
    }

    if (best_score < 0.0) {
      ++failed_rounds;
      continue;
    }
    failed_rounds = 0;

    SubspaceCluster cluster;
    cluster.medoid = best_medoid;
    cluster.relevant_dims = std::move(best_dims);
    cluster.members = std::move(best_members);
    cluster.core_box = data.BoundsOf(cluster.members);
    cluster.score = best_score;
    clusters.push_back(std::move(cluster));

    std::vector<bool> taken(n, false);
    for (size_t row : clusters.back().members) taken[row] = true;
    std::erase_if(remaining, [&taken](size_t row) { return taken[row]; });
  }

  std::sort(clusters.begin(), clusters.end(),
            [](const SubspaceCluster& a, const SubspaceCluster& b) {
              return a.score > b.score;
            });
  return clusters;
}

}  // namespace sthist

#ifndef STHIST_CLUSTERING_FPTREE_H_
#define STHIST_CLUSTERING_FPTREE_H_

#include <cstddef>
#include <vector>

namespace sthist {

/// A weighted transaction: a set of item ids plus a multiplicity.
struct WeightedTransaction {
  std::vector<int> items;  // Distinct, unsorted item ids in [0, num_items).
  double weight = 1.0;
};

/// The best itemset found by a mining pass.
struct BestItemset {
  std::vector<int> items;
  double support = 0.0;
  /// The MineClus quality mu = support * gain^|items|; negative when no
  /// itemset met the support threshold.
  double score = -1.0;
};

/// FP-tree with best-itemset mining (FP-growth with branch-and-bound).
///
/// This is the frequent-pattern engine behind MineClus (Yiu & Mamoulis,
/// ICDM'03): transactions are the per-point sets of dimensions that lie
/// within the cluster window of a medoid, and the miner searches for the
/// dimension set maximizing mu(support, |D|) = support * (1/beta)^|D|
/// subject to a minimum support (the alpha density threshold).
class FpTree {
 public:
  /// Builds the tree. Items with support below `min_support` are dropped up
  /// front (they can never appear in a qualifying itemset).
  FpTree(const std::vector<WeightedTransaction>& transactions,
         size_t num_items, double min_support);

  /// Finds the itemset with the highest mu = support * gain^|items| among
  /// itemsets with support >= min_support and at least `min_items` items.
  /// Requires gain >= 1 (beta <= 1), which makes the branch-and-bound upper
  /// bound valid: extending a prefix can multiply its score by at most
  /// gain^(remaining items).
  BestItemset MineBest(double gain, size_t min_items = 1) const;

  /// Total support (weight) of item `i` in this tree.
  double ItemSupport(int item) const { return item_support_[item]; }

  /// Number of distinct frequent items retained.
  size_t frequent_item_count() const { return frequent_items_.size(); }

 private:
  struct Node {
    int item = -1;       // -1 for the root.
    double count = 0.0;
    int parent = -1;
    int header_next = -1;            // Next node holding the same item.
    std::vector<int> children;       // Node indices.
  };

  // Inserts a transaction whose items are already filtered to frequent items
  // and sorted in the tree's canonical (descending-support) order.
  void Insert(const std::vector<int>& sorted_items, double weight);

  // Recursive FP-growth step on this (conditional) tree.
  void Mine(double gain, size_t min_items, std::vector<int>* prefix,
            BestItemset* best) const;

  // Builds the conditional tree for `item` (pattern base of paths above its
  // nodes, weighted by node counts).
  FpTree ConditionalTree(int item) const;

  size_t num_items_;
  double min_support_;
  std::vector<Node> nodes_;
  std::vector<int> header_heads_;     // Per item: first node index or -1.
  std::vector<double> item_support_;  // Per item: total weight.
  std::vector<int> frequent_items_;   // Ascending support order.
  std::vector<int> order_rank_;       // Per item: insertion rank (-1 if rare).
};

}  // namespace sthist

#endif  // STHIST_CLUSTERING_FPTREE_H_

#include "testing/fault_injection.h"

#include <cmath>
#include <limits>
#include <vector>

namespace sthist {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Dataset CorruptDataset(const Dataset& data, const Box& domain,
                       const FaultConfig& config) {
  Dataset out(data.dim());
  out.Reserve(data.size());
  Rng rng(config.seed);
  std::vector<double> tuple(data.dim());
  size_t kind = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    std::span<const double> p = data.row(i);
    tuple.assign(p.begin(), p.end());
    if (config.rate > 0.0 && rng.Bernoulli(config.rate)) {
      size_t d = rng.Index(data.dim());
      switch (kind++ % 4) {
        case 0:
          tuple[d] = kNaN;
          break;
        case 1:
          tuple[d] = kInf;
          break;
        case 2:
          tuple[d] = -kInf;
          break;
        default:
          // Finite but far outside the domain.
          tuple[d] = domain.hi(d) + config.displacement * domain.Extent(d);
          break;
      }
    }
    out.Append(tuple);
  }
  return out;
}

Dataset DropNonFiniteTuples(const Dataset& data, size_t* dropped) {
  Dataset out(data.dim());
  out.Reserve(data.size());
  size_t removed = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    std::span<const double> p = data.row(i);
    bool finite = true;
    for (double v : p) {
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
    }
    if (finite) {
      out.Append(p);
    } else {
      ++removed;
    }
  }
  if (dropped != nullptr) *dropped = removed;
  return out;
}

Workload CorruptWorkload(const Workload& workload, const Box& domain,
                         const FaultConfig& config) {
  Workload out;
  out.reserve(workload.size());
  Rng rng(config.seed + 1);
  size_t kind = 0;
  for (const Box& query : workload) {
    Box q = query;
    if (config.rate > 0.0 && q.dim() > 0 && rng.Bernoulli(config.rate)) {
      size_t d = rng.Index(q.dim());
      switch (kind++ % 4) {
        case 0:
          // Non-finite bound (mutators bypass the constructor invariant).
          q.set_lo(d, kNaN);
          break;
        case 1: {
          // Inverted interval.
          double lo = q.lo(d);
          q.set_lo(d, q.hi(d));
          q.set_hi(d, lo);
          break;
        }
        case 2:
          // Degenerate zero-extent interval.
          q.set_hi(d, q.lo(d));
          break;
        default: {
          // Shift the box entirely outside the domain.
          double shift = config.displacement *
                         std::max(domain.Extent(d), q.hi(d) - q.lo(d));
          q.set_lo(d, domain.hi(d) + shift);
          q.set_hi(d, domain.hi(d) + shift + (query.hi(d) - query.lo(d)));
          break;
        }
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

FaultyOracle::FaultyOracle(const CardinalityOracle& inner,
                           const FaultConfig& config)
    : inner_(inner), config_(config), rng_(config.seed + 2) {}

double FaultyOracle::Count(const Box& box) const {
  double truth = inner_.Count(box);
  ++calls_;
  if (config_.rate <= 0.0 || !rng_.Bernoulli(config_.rate)) {
    stale_count_ = truth;
    return truth;
  }
  ++faults_injected_;
  double answer = truth;
  switch (faults_injected_ % 4) {
    case 0:
      answer = kNaN;
      break;
    case 1:
      answer = -1.0 - truth;
      break;
    case 2: {
      // Multiplicative noise in [1/noise_factor, noise_factor].
      double factor = std::max(config_.noise_factor, 1.0);
      double exponent = rng_.Uniform(-1.0, 1.0);
      answer = truth * std::pow(factor, exponent);
      break;
    }
    default:
      // Stale: replay the previous answer (feedback lag under drift).
      answer = stale_count_;
      break;
  }
  // Deliberately do NOT refresh stale_count_ with the corrupted answer; it
  // tracks the last truthful count so staleness is bounded.
  return answer;
}

}  // namespace sthist

#ifndef STHIST_TESTING_FAULT_INJECTION_H_
#define STHIST_TESTING_FAULT_INJECTION_H_

#include <cstdint>

#include "core/box.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "histogram/histogram.h"
#include "workload/workload.h"

/// \file
/// Deterministic adversarial fault injection for robustness testing.
///
/// Every injector is driven by a seeded RNG so a failing run reproduces
/// exactly. The injectors corrupt the three untrusted inputs of the tuning
/// pipeline: datasets (malformed tuples), workloads (malformed query boxes)
/// and feedback oracles (malformed cardinalities, simulating an engine under
/// drift or partial failure). They are used by tests/robustness_test.cc,
/// bench/bench_robustness.cc, the experiment runner's fault mode, and the
/// CLI's --fault-* flags.

namespace sthist {

/// Knobs for all three injectors. `rate` is the per-item corruption
/// probability; 0 disables injection entirely.
struct FaultConfig {
  double rate = 0.0;
  uint64_t seed = 99;

  /// Multiplicative noise span for noisy cardinalities: a corrupted count is
  /// scaled by a factor drawn from [1/noise_factor, noise_factor].
  double noise_factor = 4.0;

  /// How far out-of-domain tuples and shifted query boxes land, as a
  /// multiple of the domain extent.
  double displacement = 2.0;
};

/// Returns a copy of `data` where ~rate of the tuples are corrupted: one
/// attribute set to NaN, +/-infinity, or displaced far outside `domain`.
/// Corruption kinds cycle deterministically from the seed.
Dataset CorruptDataset(const Dataset& data, const Box& domain,
                       const FaultConfig& config);

/// Returns a copy of `data` with non-finite tuples dropped — the ingestion
/// repair a service applies after Dataset::Validate flags corruption. The
/// number of dropped tuples is written to `dropped` when non-null.
Dataset DropNonFiniteTuples(const Dataset& data, size_t* dropped);

/// Returns a copy of `workload` where ~rate of the query boxes are
/// corrupted: NaN bounds, inverted intervals, zero-extent intervals, or
/// boxes shifted entirely outside `domain`. Inverted and NaN boxes are
/// built through the Box mutators, bypassing the constructor's invariant —
/// exactly what a buggy client could hand a service.
Workload CorruptWorkload(const Workload& workload, const Box& domain,
                         const FaultConfig& config);

/// CardinalityOracle wrapper corrupting ~rate of its answers with, in
/// rotation: NaN, a negative count, multiplicative noise, or a stale answer
/// (the previous query's count — simulating feedback lag under drift).
/// Deterministic from the seed; answers for uncorrupted queries pass
/// through untouched.
class FaultyOracle : public CardinalityOracle {
 public:
  /// `inner` must outlive the wrapper.
  FaultyOracle(const CardinalityOracle& inner, const FaultConfig& config);

  double Count(const Box& box) const override;

  /// Number of corrupted answers handed out so far.
  size_t faults_injected() const { return faults_injected_; }

 private:
  const CardinalityOracle& inner_;
  FaultConfig config_;
  // The oracle interface is const; corruption state is bookkeeping.
  mutable Rng rng_;
  mutable double stale_count_ = 0.0;
  mutable size_t calls_ = 0;
  mutable size_t faults_injected_ = 0;
};

}  // namespace sthist

#endif  // STHIST_TESTING_FAULT_INJECTION_H_

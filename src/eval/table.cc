#include "eval/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/check.h"

namespace sthist {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  STHIST_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  STHIST_CHECK(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += c == 0 ? "| " : " | ";
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };

  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double value, int precision) {
  if (std::isnan(value)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatSize(size_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu", value);
  return buf;
}

}  // namespace sthist

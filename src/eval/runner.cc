#include "eval/runner.h"

#include <chrono>
#include <optional>

#include "core/check.h"
#include "eval/metrics.h"
#include "histogram/census.h"
#include "histogram/trivial.h"

namespace sthist {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Experiment::Experiment(GeneratedData generated)
    : generated_(std::move(generated)), executor_(generated_.data) {}

bool Experiment::SameMineClusConfig(const MineClusConfig& a,
                                    const MineClusConfig& b) {
  return a.alpha == b.alpha && a.beta == b.beta &&
         a.width_fraction == b.width_fraction &&
         a.max_clusters == b.max_clusters &&
         a.medoids_per_round == b.medoids_per_round &&
         a.max_failed_rounds == b.max_failed_rounds &&
         a.min_cluster_dims == b.min_cluster_dims &&
         a.merge_similar == b.merge_similar && a.seed == b.seed;
}

const std::vector<SubspaceCluster>& Experiment::Clusters(
    const MineClusConfig& config) {
  for (const ClusterCacheEntry& entry : cluster_cache_) {
    if (SameMineClusConfig(entry.config, config)) return entry.clusters;
  }
  auto start = std::chrono::steady_clock::now();
  ClusterCacheEntry entry;
  entry.config = config;
  entry.clusters = RunMineClus(generated_.data, generated_.domain, config);
  entry.seconds = SecondsSince(start);
  cluster_cache_.push_back(std::move(entry));
  return cluster_cache_.back().clusters;
}

std::pair<Workload, Workload> Experiment::MakeWorkloads(
    const ExperimentConfig& config) const {
  WorkloadConfig wc;
  wc.volume_fraction = config.volume_fraction;
  wc.centers = config.centers;

  wc.num_queries = config.train_queries;
  wc.seed = config.workload_seed;
  Workload train = MakeWorkload(generated_.domain, wc, &generated_.data);

  wc.num_queries = config.sim_queries;
  wc.seed = config.workload_seed + 1;
  Workload sim = MakeWorkload(generated_.domain, wc, &generated_.data);
  return {std::move(train), std::move(sim)};
}

ExperimentResult Experiment::Run(const ExperimentConfig& config) {
  auto [train, sim] = MakeWorkloads(config);
  return RunWithWorkloads(config, train, sim);
}

ExperimentResult Experiment::RunWithWorkloads(const ExperimentConfig& config,
                                              const Workload& train,
                                              const Workload& sim) {
  STHIST_CHECK(!sim.empty());
  ExperimentResult result;

  STHolesConfig hist_config;
  hist_config.max_buckets = config.buckets;
  STHoles hist(generated_.domain, total_tuples(), hist_config);

  if (config.initialize) {
    const std::vector<SubspaceCluster>& clusters = Clusters(config.mineclus);
    // Clusters are cached; report the cost of the original run.
    for (const ClusterCacheEntry& entry : cluster_cache_) {
      if (SameMineClusConfig(entry.config, config.mineclus)) {
        result.clustering_seconds = entry.seconds;
      }
    }
    result.clusters_found = clusters.size();
    result.clusters_fed = InitializeHistogram(
        clusters, generated_.domain, executor_, config.initializer, &hist);
  }

  // With fault injection on, train on corrupted query boxes and learn from
  // a corrupted feedback oracle; measurement below stays against the true
  // executor on the clean simulation workload.
  const bool inject = config.faults.rate > 0.0;
  Workload faulty_train;
  std::optional<FaultyOracle> faulty_oracle;
  if (inject) {
    faulty_train = CorruptWorkload(train, generated_.domain, config.faults);
    faulty_oracle.emplace(executor_, config.faults);
  }
  const Workload& train_used = inject ? faulty_train : train;
  const CardinalityOracle& feedback =
      inject ? static_cast<const CardinalityOracle&>(*faulty_oracle)
             : static_cast<const CardinalityOracle&>(executor_);

  auto train_start = std::chrono::steady_clock::now();
  if (!train_used.empty()) Train(&hist, train_used, feedback);
  result.train_seconds = SecondsSince(train_start);

  auto sim_start = std::chrono::steady_clock::now();
  result.mae = SimulateAndMeasure(&hist, sim, executor_, feedback,
                                  config.learn_during_sim);
  result.sim_seconds = SecondsSince(sim_start);

  TrivialHistogram trivial(generated_.domain, total_tuples());
  result.trivial_mae = MeanAbsoluteError(trivial, sim, executor_);
  result.nae =
      result.trivial_mae > 0.0 ? result.mae / result.trivial_mae : 0.0;

  result.final_buckets = hist.bucket_count();
  result.subspace_buckets = CensusSubspaceBuckets(hist).subspace_buckets;
  result.robustness = hist.robustness();
  if (faulty_oracle.has_value()) {
    result.faults_injected = faulty_oracle->faults_injected();
  }
  return result;
}

}  // namespace sthist

#include "eval/runner.h"

#include <chrono>
#include <limits>
#include <optional>

#include "core/check.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "obs/trace.h"
#include "eval/metrics.h"
#include "histogram/census.h"
#include "histogram/registry.h"
#include "histogram/trivial.h"

namespace sthist {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Roles for DeriveSeed: each experiment cell owns two independent random
// streams keyed off its single workload_seed.
constexpr uint64_t kTrainStream = 0;
constexpr uint64_t kSimStream = 1;

}  // namespace

Experiment::Experiment(GeneratedData generated)
    : generated_(std::move(generated)), executor_(generated_.data) {}

bool Experiment::SameMineClusConfig(const MineClusConfig& a,
                                    const MineClusConfig& b) {
  return a.alpha == b.alpha && a.beta == b.beta &&
         a.width_fraction == b.width_fraction &&
         a.max_clusters == b.max_clusters &&
         a.medoids_per_round == b.medoids_per_round &&
         a.max_failed_rounds == b.max_failed_rounds &&
         a.min_cluster_dims == b.min_cluster_dims &&
         a.merge_similar == b.merge_similar && a.seed == b.seed;
}

const Experiment::ClusterCacheEntry& Experiment::ClusterEntry(
    const MineClusConfig& config) {
  ClusterCacheEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(cluster_cache_mutex_);
    for (ClusterCacheEntry& candidate : cluster_cache_) {
      if (SameMineClusConfig(candidate.config, config)) {
        entry = &candidate;
        break;
      }
    }
    if (entry == nullptr) {
      entry = &cluster_cache_.emplace_back();
      entry->config = config;
    }
  }
  // Cluster outside the cache-wide lock so distinct configs mine in
  // parallel; the entry's once_flag makes concurrent same-config callers
  // wait for the single clustering run instead of duplicating it. Safe
  // because deque entries never relocate.
  std::call_once(entry->once, [&] {
    auto start = std::chrono::steady_clock::now();
    entry->clusters = RunMineClus(generated_.data, generated_.domain, config);
    entry->seconds = SecondsSince(start);
  });
  return *entry;
}

const std::vector<SubspaceCluster>& Experiment::Clusters(
    const MineClusConfig& config) {
  return ClusterEntry(config).clusters;
}

std::pair<Workload, Workload> Experiment::MakeWorkloads(
    const ExperimentConfig& config) const {
  WorkloadConfig wc;
  wc.volume_fraction = config.volume_fraction;
  wc.centers = config.centers;

  // Train and sim streams are hash-derived from (workload_seed, role), not
  // workload_seed and workload_seed + 1: with the +1 scheme, a sweep over
  // consecutive seeds evaluated one cell on the exact workload another cell
  // trained on (train/test contamination).
  wc.num_queries = config.train_queries;
  wc.seed = DeriveSeed(config.workload_seed, kTrainStream);
  Workload train = MakeWorkload(generated_.domain, wc, &generated_.data);

  wc.num_queries = config.sim_queries;
  wc.seed = DeriveSeed(config.workload_seed, kSimStream);
  Workload sim = MakeWorkload(generated_.domain, wc, &generated_.data);
  return {std::move(train), std::move(sim)};
}

ExperimentResult Experiment::Run(const ExperimentConfig& config) {
  auto [train, sim] = MakeWorkloads(config);
  return RunWithWorkloads(config, train, sim);
}

ExperimentResult Experiment::RunWithWorkloads(const ExperimentConfig& config,
                                              const Workload& train,
                                              const Workload& sim) {
  STHIST_CHECK(!sim.empty());
  ExperimentResult result;

  // Estimator construction goes through the registry (DESIGN.md §18): every
  // registered family runs this pipeline by name. A bad name or missing
  // input is a programming error at this layer — the CLI validates
  // user-supplied names before building configs.
  HistogramConfig hist_config;
  hist_config.domain = generated_.domain;
  hist_config.total_tuples = total_tuples();
  hist_config.data = &generated_.data;
  hist_config.buckets = config.buckets;
  hist_config.seed = config.workload_seed;
  StatusOr<std::unique_ptr<Histogram>> made =
      MakeHistogram(config.estimator, hist_config);
  STHIST_CHECK_MSG(made.ok(), "MakeHistogram(%s): %s",
                   config.estimator.c_str(),
                   made.status().message().c_str());
  Histogram& hist = *made.value();

  if (config.initialize) {
    const ClusterCacheEntry& entry = ClusterEntry(config.mineclus);
    // Clusters are cached; report the cost of the original run.
    result.clustering_seconds = entry.seconds;
    result.clusters_found = entry.clusters.size();
    result.clusters_fed =
        InitializeHistogram(entry.clusters, generated_.domain, executor_,
                            config.initializer, &hist);
  }

  // With fault injection on, train on corrupted query boxes and learn from
  // a corrupted feedback oracle; measurement below stays against the true
  // executor on the clean simulation workload.
  const bool inject = config.faults.rate > 0.0;
  Workload faulty_train;
  std::optional<FaultyOracle> faulty_oracle;
  if (inject) {
    faulty_train = CorruptWorkload(train, generated_.domain, config.faults);
    faulty_oracle.emplace(executor_, config.faults);
  }
  const Workload& train_used = inject ? faulty_train : train;
  const CardinalityOracle& feedback =
      inject ? static_cast<const CardinalityOracle&>(*faulty_oracle)
             : static_cast<const CardinalityOracle&>(executor_);

  auto train_start = std::chrono::steady_clock::now();
  if (!train_used.empty()) Train(&hist, train_used, feedback);
  result.train_seconds = SecondsSince(train_start);

  auto sim_start = std::chrono::steady_clock::now();
  result.mae = SimulateAndMeasure(&hist, sim, executor_, feedback,
                                  config.learn_during_sim,
                                  config.estimate_threads);
  result.sim_seconds = SecondsSince(sim_start);

  TrivialHistogram trivial(generated_.domain, total_tuples());
  result.trivial_mae =
      MeanAbsoluteError(trivial, sim, executor_, config.estimate_threads);
  // A zero-error trivial baseline leaves nothing to normalize against;
  // report NaN (rendered "n/a") rather than a fake perfect 0.0.
  result.nae = result.trivial_mae > 0.0
                   ? result.mae / result.trivial_mae
                   : std::numeric_limits<double>::quiet_NaN();

  result.final_buckets = hist.bucket_count();
  // The subspace census is an STHoles bucket-tree notion; other estimator
  // families report 0.
  if (const auto* stholes = dynamic_cast<const STHoles*>(&hist)) {
    result.subspace_buckets = CensusSubspaceBuckets(*stholes).subspace_buckets;
  }
  result.robustness = hist.robustness();
  if (faulty_oracle.has_value()) {
    result.faults_injected = faulty_oracle->faults_injected();
  }
  return result;
}

std::vector<ExperimentResult> RunSweep(Experiment& experiment,
                                       std::span<const ExperimentConfig> configs,
                                       size_t threads) {
  std::vector<ExperimentResult> results(configs.size());
  obs::MetricsRegistry* reg = obs::GlobalMetrics();
  obs::Counter cells_metric = reg->counter("eval.sweep.cells");
  obs::LatencyHistogram cell_seconds = reg->latency("eval.sweep.cell_seconds");
  // Index-ordered aggregation: worker i writes only slot i, so the output
  // order (and content — see the determinism contract in the header) is
  // independent of scheduling.
  ParallelFor(configs.size(), threads, [&](size_t i) {
    obs::ScopedTimer cell_timer(cell_seconds);
    results[i] = experiment.Run(configs[i]);
    cells_metric.Inc();
  });
  return results;
}

}  // namespace sthist

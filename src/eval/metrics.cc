#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "histogram/trivial.h"

namespace sthist {

double MeanAbsoluteError(const Histogram& hist, const Workload& workload,
                         const CardinalityOracle& oracle, size_t threads) {
  STHIST_CHECK(!workload.empty());
  // Estimates fan out; the |est - real| accumulation stays in workload
  // order, so the sum is bitwise-identical at any thread count.
  std::vector<double> estimates = hist.EstimateBatch(workload, threads);
  double total = 0.0;
  for (size_t i = 0; i < workload.size(); ++i) {
    total += std::abs(estimates[i] - oracle.Count(workload[i]));
  }
  return total / static_cast<double>(workload.size());
}

double SimulateAndMeasure(Histogram* hist, const Workload& workload,
                          const CardinalityOracle& oracle, bool learn,
                          size_t threads) {
  return SimulateAndMeasure(hist, workload, oracle, oracle, learn, threads);
}

double SimulateAndMeasure(Histogram* hist, const Workload& workload,
                          const CardinalityOracle& measure_oracle,
                          const CardinalityOracle& feedback_oracle,
                          bool learn, size_t threads) {
  STHIST_CHECK(hist != nullptr);
  STHIST_CHECK(!workload.empty());
  if (!learn) {
    // Frozen histogram: pure measurement, so the estimates batch cleanly.
    return MeanAbsoluteError(*hist, workload, measure_oracle, threads);
  }
  double total = 0.0;
  for (const Box& q : workload) {
    total += std::abs(hist->Estimate(q) - measure_oracle.Count(q));
    hist->Refine(q, feedback_oracle);
  }
  return total / static_cast<double>(workload.size());
}

void Train(Histogram* hist, const Workload& workload,
           const CardinalityOracle& oracle) {
  STHIST_CHECK(hist != nullptr);
  for (const Box& q : workload) {
    hist->Refine(q, oracle);
  }
}

double NormalizedAbsoluteError(double mean_absolute_error, const Box& domain,
                               double total_tuples, const Workload& workload,
                               const CardinalityOracle& oracle) {
  TrivialHistogram trivial(domain, total_tuples);
  double base = MeanAbsoluteError(trivial, workload, oracle);
  STHIST_CHECK_MSG(base > 0.0, "trivial histogram has zero error");
  return mean_absolute_error / base;
}

SensitivityResult PermutationSensitivity(
    const std::function<std::unique_ptr<Histogram>()>& make_histogram,
    const Workload& train, const Workload& probes,
    const CardinalityOracle& oracle, std::span<const uint64_t> perm_seeds) {
  STHIST_CHECK(!train.empty());
  auto trained_error = [&](const Workload& order) {
    std::unique_ptr<Histogram> hist = make_histogram();
    STHIST_CHECK(hist != nullptr);
    Train(hist.get(), order, oracle);
    return MeanAbsoluteError(*hist, probes, oracle);
  };
  SensitivityResult result;
  result.base_error = trained_error(train);
  for (uint64_t seed : perm_seeds) {
    double err = trained_error(Permuted(train, seed));
    result.max_delta =
        std::max(result.max_delta, std::abs(err - result.base_error));
  }
  return result;
}

}  // namespace sthist

#ifndef STHIST_EVAL_TABLE_H_
#define STHIST_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace sthist {

/// Plain-text table renderer for the benchmark harnesses: fixed-width
/// columns sized to content, one header row, pipe separators.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows abort.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the decimal point.
/// NaN renders as "n/a" (degenerate metrics, e.g. NAE with a zero-error
/// trivial baseline).
std::string FormatDouble(double value, int precision);

/// Formats a size_t.
std::string FormatSize(size_t value);

}  // namespace sthist

#endif  // STHIST_EVAL_TABLE_H_

#ifndef STHIST_EVAL_METRICS_H_
#define STHIST_EVAL_METRICS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "histogram/histogram.h"
#include "workload/workload.h"

namespace sthist {

/// Mean absolute estimation error over a workload (paper eq. 9):
/// E(H, W) = (1/|W|) * sum_q |est(H, q) - real(q)|.
/// Does not refine the histogram.
///
/// Estimates run through Histogram::EstimateBatch over `threads` workers
/// (0 = hardware concurrency); the error accumulates in workload order, so
/// the result is bitwise-identical at any thread count.
double MeanAbsoluteError(const Histogram& hist, const Workload& workload,
                         const CardinalityOracle& oracle, size_t threads = 1);

/// Runs the workload as a simulation: measures |est - real| for each query
/// and, when `learn` is true, refines the histogram with the query's
/// feedback before moving on (the paper's default simulation mode). Returns
/// the mean absolute error across the workload.
double SimulateAndMeasure(Histogram* hist, const Workload& workload,
                          const CardinalityOracle& oracle, bool learn,
                          size_t threads = 1);

/// Variant with distinct oracles for measurement and refinement feedback.
/// Fault-injection runs measure true accuracy against `measure_oracle`
/// (the real engine) while the histogram learns from the possibly-corrupted
/// `feedback_oracle`.
///
/// `threads` applies only when `learn` is false: a frozen histogram's
/// estimates are batched through EstimateBatch (bitwise-identical to the
/// serial loop). Learning simulations are inherently sequential — each
/// refinement must see the estimate before it — and ignore `threads`.
double SimulateAndMeasure(Histogram* hist, const Workload& workload,
                          const CardinalityOracle& measure_oracle,
                          const CardinalityOracle& feedback_oracle,
                          bool learn, size_t threads = 1);

/// Trains the histogram on the workload (refinement only, no measurement).
void Train(Histogram* hist, const Workload& workload,
           const CardinalityOracle& oracle);

/// Normalized absolute error (paper eq. 10): E(H, W) / E(H0, W) where H0 is
/// the trivial one-bucket histogram over `domain` with `total_tuples` mass.
double NormalizedAbsoluteError(double mean_absolute_error, const Box& domain,
                               double total_tuples, const Workload& workload,
                               const CardinalityOracle& oracle);

/// The paper's Definition-1 permutation-sensitivity measurement, packaged so
/// regression tests can pin it: how much a histogram's final error moves when
/// the learning workload is reordered.
struct SensitivityResult {
  /// Error after training on the workload in its given order.
  double base_error = 0.0;
  /// max over the permutations of |error(π(W)) - base_error|.
  double max_delta = 0.0;
  /// max_delta / base_error — the scale-free number to pin in regression
  /// tests (delta-sensitivity relative to the unpermuted error). NaN when
  /// base_error is 0.
  double relative() const { return max_delta / base_error; }
};

/// Trains one independently constructed histogram per ordering — the given
/// `train` plus one Permuted(train, seed) per seed — and measures each with
/// MeanAbsoluteError over `probes` (no refinement during measurement).
/// `make_histogram` must return a fresh histogram in the same initial state
/// on every call; determinism of the result follows from the factory's.
SensitivityResult PermutationSensitivity(
    const std::function<std::unique_ptr<Histogram>()>& make_histogram,
    const Workload& train, const Workload& probes,
    const CardinalityOracle& oracle, std::span<const uint64_t> perm_seeds);

}  // namespace sthist

#endif  // STHIST_EVAL_METRICS_H_

#ifndef STHIST_EVAL_RUNNER_H_
#define STHIST_EVAL_RUNNER_H_

#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "clustering/mineclus.h"
#include "data/generators.h"
#include "histogram/stholes.h"
#include "init/initializer.h"
#include "testing/fault_injection.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {

/// One experiment cell: a histogram variant trained and evaluated on one
/// dataset/workload combination, reproducing the paper's simulation
/// methodology (§5.1: 1,000 training + 1,000 simulation queries; errors are
/// measured over the simulation queries only, with refinement continuing
/// unless disabled).
struct ExperimentConfig {
  /// Registry name of the estimator under test (histogram/registry.h). Every
  /// registered estimator runs through the same train/simulate/measure
  /// pipeline; self-tuning families learn from feedback, static families
  /// are built from the dataset and just measured.
  std::string estimator = "stholes";

  /// Synopsis budget (the paper sweeps 50..250 STHoles buckets; for the
  /// sampled families this is the sample size).
  size_t buckets = 100;

  size_t train_queries = 1000;
  size_t sim_queries = 1000;
  double volume_fraction = 0.01;
  CenterDistribution centers = CenterDistribution::kUniform;
  uint64_t workload_seed = 21;

  /// Whether to initialize from subspace clusters before training.
  bool initialize = false;
  InitializerConfig initializer;
  MineClusConfig mineclus;

  /// The paper's default keeps refining during simulation; Fig. 17 turns
  /// this off to isolate the effect of training volume.
  bool learn_during_sim = true;

  /// Threads for batched estimation (Histogram::EstimateBatch) during the
  /// measurement passes: the trivial-baseline MAE always, and the simulation
  /// MAE when learn_during_sim is false (a learning simulation is inherently
  /// sequential). 0 = hardware concurrency. Results are bitwise-identical at
  /// any value; keep the default 1 inside RunSweep, whose cells are already
  /// parallel.
  size_t estimate_threads = 1;

  /// Fault injection (testing/fault_injection.h); rate 0 disables. When
  /// enabled, the training workload's query boxes and the refinement
  /// feedback oracle are adversarially corrupted, while accuracy is still
  /// measured against the true engine over the clean simulation workload —
  /// so the resulting NAE quantifies robustness, not measurement noise.
  FaultConfig faults;
};

/// Measured outcome of one experiment cell.
struct ExperimentResult {
  double mae = 0.0;          // Mean absolute error over simulation queries.
  double trivial_mae = 0.0;  // Same for the trivial histogram H0.
  /// mae / trivial_mae (paper eq. 10). NaN when the trivial baseline has
  /// zero error (nothing to normalize against) — a degenerate cell must not
  /// masquerade as a perfect histogram. Renderers print it as "n/a".
  double nae = 0.0;
  size_t final_buckets = 0;
  size_t subspace_buckets = 0;  // Census after simulation.
  size_t clusters_found = 0;
  size_t clusters_fed = 0;
  double clustering_seconds = 0.0;
  double train_seconds = 0.0;
  double sim_seconds = 0.0;
  /// Degradation counters the histogram accumulated (all zero on clean
  /// runs with well-formed workloads).
  RobustnessStats robustness;
  /// Corrupted oracle answers actually served during the run (0 when fault
  /// injection is disabled).
  size_t faults_injected = 0;
};

/// Shared state for a family of experiment cells over one dataset: owns the
/// dataset, its executor (k-d tree), and caches MineClus outputs per
/// distinct parameter set so bucket-budget sweeps don't re-cluster.
///
/// Thread safety: Run/RunWithWorkloads/Clusters/MakeWorkloads may be called
/// concurrently from any number of threads. The dataset and executor are
/// read-only after construction; the cluster cache is the only shared
/// mutable state and is mutex-guarded, with deque storage so returned
/// references stay valid for the Experiment's lifetime (RunSweep relies on
/// this).
class Experiment {
 public:
  explicit Experiment(GeneratedData generated);

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  const GeneratedData& generated() const { return generated_; }
  const Dataset& data() const { return generated_.data; }
  const Box& domain() const { return generated_.domain; }
  const Executor& executor() const { return executor_; }
  double total_tuples() const {
    return static_cast<double>(generated_.data.size());
  }

  /// MineClus result for `config`, cached per distinct parameter set.
  /// The accompanying wall-clock cost of the (uncached) run is stored and
  /// reported through ExperimentResult::clustering_seconds. The returned
  /// reference stays valid for the Experiment's lifetime: entries live in a
  /// deque and are never moved or evicted. Concurrent callers with the same
  /// config cluster once; the others block until the entry is ready.
  const std::vector<SubspaceCluster>& Clusters(const MineClusConfig& config);

  /// Builds workloads from the config and runs one cell.
  ExperimentResult Run(const ExperimentConfig& config);

  /// Runs one cell against caller-provided workloads (used by the
  /// permutation / sensitivity experiments).
  ExperimentResult RunWithWorkloads(const ExperimentConfig& config,
                                    const Workload& train,
                                    const Workload& sim);

  /// Convenience: builds the (train, sim) pair the way Run does.
  std::pair<Workload, Workload> MakeWorkloads(
      const ExperimentConfig& config) const;

 private:
  struct ClusterCacheEntry {
    MineClusConfig config;
    std::once_flag once;  // Guards the one-time MineClus run below.
    std::vector<SubspaceCluster> clusters;
    double seconds = 0.0;
  };

  static bool SameMineClusConfig(const MineClusConfig& a,
                                 const MineClusConfig& b);

  /// Finds or creates the cache entry for `config` and ensures its
  /// clustering has run (blocking on a concurrent run if one is in flight).
  const ClusterCacheEntry& ClusterEntry(const MineClusConfig& config);

  GeneratedData generated_;
  Executor executor_;
  /// Deque so entries never relocate: returned references survive later
  /// insertions (a std::vector here dangled them on reallocation). Guarded
  /// by cluster_cache_mutex_; the per-entry once_flag lets distinct configs
  /// cluster concurrently without holding the cache-wide lock.
  std::deque<ClusterCacheEntry> cluster_cache_;
  std::mutex cluster_cache_mutex_;
};

/// Runs every cell of `configs` and returns their results in input order,
/// fanning the cells out over `threads` workers (0 = hardware concurrency,
/// 1 = inline on the calling thread).
///
/// Determinism contract: every cell derives all its randomness from its own
/// config (workload seeds, MineClus seed, fault seed), so each slot of the
/// returned vector is bitwise-identical regardless of thread count or
/// scheduling — except the wall-clock fields (clustering_seconds,
/// train_seconds, sim_seconds), which measure real time and vary run to
/// run. Shared state is the Experiment's read-only dataset/executor plus
/// its mutex-guarded cluster cache.
std::vector<ExperimentResult> RunSweep(Experiment& experiment,
                                       std::span<const ExperimentConfig> configs,
                                       size_t threads = 0);

}  // namespace sthist

#endif  // STHIST_EVAL_RUNNER_H_

// Figure 16: heavy training cannot substitute for initialization. The
// uninitialized histogram gets 18,000 *extra* training queries (paper scale;
// scaled down by default) and still loses to the initialized histogram
// trained on the normal workload — stagnation in action.

#include "bench_common.h"

#include "eval/metrics.h"
#include "eval/table.h"
#include "histogram/stholes.h"
#include "init/initializer.h"

int main() {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale();
  PrintBanner("Figure 16 — heavily-trained uninit vs initialized, Sky[1%]",
              scale);
  std::printf("extra training for the uninitialized histogram: %zu queries\n\n",
              scale.heavy_extra_queries);

  Experiment experiment(BenchSky(scale));
  const Executor& executor = experiment.executor();

  // Shared workloads per the paper's setup.
  ExperimentConfig base;
  base.train_queries = scale.train_queries;
  base.sim_queries = scale.sim_queries;
  base.volume_fraction = 0.01;
  base.mineclus = SkyMineClus();
  auto [train, sim] = experiment.MakeWorkloads(base);

  WorkloadConfig extra_config;
  extra_config.num_queries = scale.heavy_extra_queries;
  extra_config.volume_fraction = 0.01;
  extra_config.seed = 4242;
  Workload extra = MakeWorkload(experiment.domain(), extra_config);

  TablePrinter table({"buckets", "heavy-trained NAE", "heavy (paper)",
                      "init NAE", "init (paper)"});
  const std::vector<double> paper_heavy = {0.660, 0.640, 0.610, 0.580, 0.560};
  const std::vector<double> paper_init = {0.320, 0.280, 0.270, 0.265, 0.260};

  std::vector<size_t> bucket_counts = scale.bucket_sweep;
  const std::vector<size_t> paper_counts = {50, 100, 150, 200, 250};
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    size_t buckets = bucket_counts[i];
    size_t paper_index = paper_counts.size();
    for (size_t j = 0; j < paper_counts.size(); ++j) {
      if (paper_counts[j] == buckets) paper_index = j;
    }

    STHolesConfig hc;
    hc.max_buckets = buckets;

    // Heavily-trained uninitialized histogram.
    STHoles heavy(experiment.domain(), experiment.total_tuples(), hc);
    Train(&heavy, train, executor);
    Train(&heavy, extra, executor);
    double heavy_mae = SimulateAndMeasure(&heavy, sim, executor, true);

    // Initialized histogram with normal training only.
    STHoles init(experiment.domain(), experiment.total_tuples(), hc);
    InitializeHistogram(experiment.Clusters(base.mineclus),
                        experiment.domain(), executor, InitializerConfig{},
                        &init);
    Train(&init, train, executor);
    double init_mae = SimulateAndMeasure(&init, sim, executor, true);

    double heavy_nae = NormalizedAbsoluteError(
        heavy_mae, experiment.domain(), experiment.total_tuples(), sim,
        executor);
    double init_nae = NormalizedAbsoluteError(
        init_mae, experiment.domain(), experiment.total_tuples(), sim,
        executor);
    table.AddRow({FormatSize(buckets), FormatDouble(heavy_nae, 3),
                  paper_index < paper_heavy.size()
                      ? FormatDouble(paper_heavy[paper_index], 3)
                      : "-",
                  FormatDouble(init_nae, 3),
                  paper_index < paper_init.size()
                      ? FormatDouble(paper_init[paper_index], 3)
                      : "-"});
  }
  table.Print();
  std::printf("\nexpected shape: the initialized histogram consistently "
              "outperforms the heavily-trained one — extra training "
              "stagnates instead of closing the gap.\n");
  return 0;
}

// Figure 16: heavy training cannot substitute for initialization. The
// uninitialized histogram gets 18,000 *extra* training queries (paper scale;
// scaled down by default) and still loses to the initialized histogram
// trained on the normal workload — stagnation in action.

#include "bench_common.h"

#include "core/thread_pool.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "histogram/stholes.h"
#include "init/initializer.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Figure 16 — heavily-trained uninit vs initialized, Sky[1%]",
              scale);
  std::printf("extra training for the uninitialized histogram: %zu queries\n\n",
              scale.heavy_extra_queries);

  Experiment experiment(BenchSky(scale));
  const Executor& executor = experiment.executor();

  // Shared workloads per the paper's setup.
  ExperimentConfig base;
  base.train_queries = scale.train_queries;
  base.sim_queries = scale.sim_queries;
  base.volume_fraction = 0.01;
  base.mineclus = SkyMineClus();
  auto [train, sim] = experiment.MakeWorkloads(base);

  WorkloadConfig extra_config;
  extra_config.num_queries = scale.heavy_extra_queries;
  extra_config.volume_fraction = 0.01;
  extra_config.seed = 4242;
  Workload extra = MakeWorkload(experiment.domain(), extra_config);

  TablePrinter table({"buckets", "heavy-trained NAE", "heavy (paper)",
                      "init NAE", "init (paper)"});
  const std::vector<double> paper_heavy = {0.660, 0.640, 0.610, 0.580, 0.560};
  const std::vector<double> paper_init = {0.320, 0.280, 0.270, 0.265, 0.260};

  std::vector<size_t> bucket_counts = scale.bucket_sweep;
  const std::vector<size_t> paper_counts = {50, 100, 150, 200, 250};

  // Mine the clusters once up front, then run the per-budget cells (two
  // independent histograms each) concurrently; rows are emitted in budget
  // order afterwards.
  const std::vector<SubspaceCluster>& clusters =
      experiment.Clusters(base.mineclus);
  std::vector<double> heavy_naes(bucket_counts.size());
  std::vector<double> init_naes(bucket_counts.size());
  ParallelFor(bucket_counts.size(), scale.threads, [&](size_t i) {
    STHolesConfig hc;
    hc.max_buckets = bucket_counts[i];

    // Heavily-trained uninitialized histogram.
    STHoles heavy(experiment.domain(), experiment.total_tuples(), hc);
    Train(&heavy, train, executor);
    Train(&heavy, extra, executor);
    double heavy_mae = SimulateAndMeasure(&heavy, sim, executor, true);

    // Initialized histogram with normal training only.
    STHoles init(experiment.domain(), experiment.total_tuples(), hc);
    InitializeHistogram(clusters, experiment.domain(), executor,
                        InitializerConfig{}, &init);
    Train(&init, train, executor);
    double init_mae = SimulateAndMeasure(&init, sim, executor, true);

    heavy_naes[i] = NormalizedAbsoluteError(
        heavy_mae, experiment.domain(), experiment.total_tuples(), sim,
        executor);
    init_naes[i] = NormalizedAbsoluteError(
        init_mae, experiment.domain(), experiment.total_tuples(), sim,
        executor);
  });

  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    size_t buckets = bucket_counts[i];
    size_t paper_index = paper_counts.size();
    for (size_t j = 0; j < paper_counts.size(); ++j) {
      if (paper_counts[j] == buckets) paper_index = j;
    }
    table.AddRow({FormatSize(buckets), FormatDouble(heavy_naes[i], 3),
                  paper_index < paper_heavy.size()
                      ? FormatDouble(paper_heavy[paper_index], 3)
                      : "-",
                  FormatDouble(init_naes[i], 3),
                  paper_index < paper_init.size()
                      ? FormatDouble(paper_init[paper_index], 3)
                      : "-"});
  }
  table.Print();
  std::printf("\nexpected shape: the initialized histogram consistently "
              "outperforms the heavily-trained one — extra training "
              "stagnates instead of closing the gap.\n");
  return 0;
}

// Figure 13: normalized error on the Sky dataset with 1%-volume queries,
// including the "Initialized (Reversed)" control that feeds the clusters in
// reverse importance order.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Figure 13 — Sky[1%], with reversed-order initialization",
              scale);

  Experiment experiment(BenchSky(scale));

  FigureSpec spec;
  spec.title = "Sky[1%] normalized absolute error";
  spec.bucket_counts = scale.bucket_sweep;
  spec.threads = scale.threads;
  spec.base.train_queries = scale.train_queries;
  spec.base.sim_queries = scale.sim_queries;
  spec.base.volume_fraction = 0.01;
  spec.base.mineclus = SkyMineClus();
  spec.series = {
      {"uninit", false, false, {0.640, 0.620, 0.590, 0.560, 0.540}},
      {"init", true, false, {0.320, 0.280, 0.270, 0.265, 0.260}},
      {"init-rev", true, true, {0.420, 0.390, 0.370, 0.355, 0.340}},
  };
  RunFigure(&experiment, spec);

  std::printf("expected shape: init roughly halves the uninit error; the "
              "reversed feeding order lands in between (sensitivity to the "
              "order of learning).\n");
  return 0;
}

// Ablation: does the *subspace* part of the clustering matter, or would any
// full-dimensional clustering do? Forces MineClus to emit only
// full-dimensional clusters (min_cluster_dims = d) and compares against the
// regular subspace initialization on Gauss and Sky.

#include "bench_common.h"

#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Ablation — subspace vs full-dimensional clustering", scale);

  struct Panel {
    const char* name;
    GeneratedData data;
    MineClusConfig mineclus;
  };
  std::vector<Panel> panels;
  panels.push_back({"Gauss[1%]", BenchGauss(scale), GaussMineClus()});
  panels.push_back({"Sky[1%]", BenchSky(scale), SkyMineClus()});

  for (Panel& panel : panels) {
    size_t dim = panel.data.data.dim();
    Experiment experiment(std::move(panel.data));

    const std::vector<size_t> bucket_counts = {50, 100, 250};
    std::vector<ExperimentConfig> configs;
    for (size_t buckets : bucket_counts) {
      ExperimentConfig config;
      config.buckets = buckets;
      config.train_queries = scale.train_queries;
      config.sim_queries = scale.sim_queries;
      config.volume_fraction = 0.01;
      config.mineclus = panel.mineclus;
      configs.push_back(config);  // Uninitialized.

      config.initialize = true;
      configs.push_back(config);  // Subspace clusters.

      config.mineclus.min_cluster_dims = dim;  // Full-dimensional only.
      configs.push_back(config);
    }
    std::vector<ExperimentResult> results =
        RunSweep(experiment, configs, scale.threads);

    TablePrinter table({"buckets", "subspace-init NAE", "fulldim-init NAE",
                        "uninit NAE"});
    for (size_t b = 0; b < bucket_counts.size(); ++b) {
      const ExperimentResult& uninit = results[3 * b];
      const ExperimentResult& subspace = results[3 * b + 1];
      const ExperimentResult& fulldim = results[3 * b + 2];
      table.AddRow({FormatSize(bucket_counts[b]),
                    FormatDouble(subspace.nae, 3),
                    FormatDouble(fulldim.nae, 3),
                    FormatDouble(uninit.nae, 3)});
    }
    std::printf("%s\n", panel.name);
    table.Print();
    std::printf("\n");
  }

  std::printf("expected shape: full-dimensional clusters help over no "
              "initialization, but the subspace clusters capture the "
              "projected correlations and win on data that has them.\n");
  return 0;
}

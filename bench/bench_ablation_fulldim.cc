// Ablation: does the *subspace* part of the clustering matter, or would any
// full-dimensional clustering do? Forces MineClus to emit only
// full-dimensional clusters (min_cluster_dims = d) and compares against the
// regular subspace initialization on Gauss and Sky.

#include "bench_common.h"

#include "eval/table.h"

int main() {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale();
  PrintBanner("Ablation — subspace vs full-dimensional clustering", scale);

  struct Panel {
    const char* name;
    GeneratedData data;
    MineClusConfig mineclus;
  };
  std::vector<Panel> panels;
  panels.push_back({"Gauss[1%]", BenchGauss(scale), GaussMineClus()});
  panels.push_back({"Sky[1%]", BenchSky(scale), SkyMineClus()});

  for (Panel& panel : panels) {
    size_t dim = panel.data.data.dim();
    Experiment experiment(std::move(panel.data));

    TablePrinter table({"buckets", "subspace-init NAE", "fulldim-init NAE",
                        "uninit NAE"});
    for (size_t buckets : {50u, 100u, 250u}) {
      ExperimentConfig config;
      config.buckets = buckets;
      config.train_queries = scale.train_queries;
      config.sim_queries = scale.sim_queries;
      config.volume_fraction = 0.01;
      config.mineclus = panel.mineclus;

      ExperimentResult uninit = experiment.Run(config);

      config.initialize = true;
      ExperimentResult subspace = experiment.Run(config);

      config.mineclus.min_cluster_dims = dim;  // Full-dimensional only.
      ExperimentResult fulldim = experiment.Run(config);

      table.AddRow({FormatSize(buckets), FormatDouble(subspace.nae, 3),
                    FormatDouble(fulldim.nae, 3),
                    FormatDouble(uninit.nae, 3)});
    }
    std::printf("%s\n", panel.name);
    table.Print();
    std::printf("\n");
  }

  std::printf("expected shape: full-dimensional clusters help over no "
              "initialization, but the subspace clusters capture the "
              "projected correlations and win on data that has them.\n");
  return 0;
}

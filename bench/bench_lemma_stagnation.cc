// Lemmas 1-3 (§3.2): storage vs detectability thresholds, measured. For a
// uniform m x k cluster and for a cluster with a dense core, report the grid
// error of (a) the optimal stored configuration and (b) self-tuning at each
// bucket budget, under unit grid queries.

#include <cmath>

#include "bench_common.h"

#include "eval/table.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace {

using namespace sthist;

void FillCells(const Box& cells, size_t density, Dataset* data) {
  for (int x = static_cast<int>(cells.lo(0)); x < cells.hi(0); ++x) {
    for (int y = static_cast<int>(cells.lo(1)); y < cells.hi(1); ++y) {
      for (size_t k = 0; k < density; ++k) {
        double frac =
            (static_cast<double>(k) + 0.5) / static_cast<double>(density);
        data->Append(Point{x + frac, y + 0.5});
      }
    }
  }
}

double GridError(const STHoles& hist, const Workload& cells,
                 const Executor& executor) {
  double total = 0;
  for (const Box& cell : cells) {
    total += std::abs(hist.Estimate(cell) - executor.Count(cell));
  }
  return total / static_cast<double>(cells.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Lemmas 1-3 — storage vs detectability thresholds", scale);

  const size_t kGrid = 10;
  Box domain = Box::Cube(2, 0, static_cast<double>(kGrid));
  Workload cells = MakeGridWorkload(domain, kGrid, 7);

  // Scenario A: uniform 5x3 cluster (Lemma 2).
  {
    Dataset data(2);
    Box cluster({2.0, 3.0}, {7.0, 6.0});
    FillCells(cluster, 8, &data);
    Executor executor(data);

    TablePrinter table({"budget", "stored error", "self-tuned error",
                        "verdict"});
    for (size_t budget : {1u, 2u, 3u, 5u}) {
      STHolesConfig config;
      config.max_buckets = budget;

      STHoles stored(domain, static_cast<double>(data.size()), config);
      stored.Refine(cluster, executor);
      double stored_err = GridError(stored, cells, executor);

      STHoles tuned(domain, static_cast<double>(data.size()), config);
      for (int epoch = 0; epoch < 6; ++epoch) {
        for (const Box& cell : cells) tuned.Refine(cell, executor);
      }
      double tuned_err = GridError(tuned, cells, executor);

      table.AddRow({FormatSize(budget), FormatDouble(stored_err, 3),
                    FormatDouble(tuned_err, 3),
                    tuned_err > stored_err + 0.3 ? "stagnates"
                                                 : "detects"});
    }
    std::printf("uniform 5x3 cluster, unit grid queries "
                "(sigma = 1, omega = 2):\n");
    table.Print();
    std::printf("\n");
  }

  // Scenario B: 6x6 cluster with a dense unit core, core queried first
  // (Lemma 3).
  {
    Dataset data(2);
    Box cluster({2.0, 2.0}, {8.0, 8.0});
    Box core({4.0, 4.0}, {5.0, 5.0});
    FillCells(cluster, 4, &data);
    FillCells(core, 36, &data);  // Total core density 40 = gamma > 3.
    Executor executor(data);

    TablePrinter table({"budget", "stored error", "self-tuned error",
                        "verdict"});
    for (size_t budget : {2u, 3u, 5u, 10u}) {
      STHolesConfig config;
      config.max_buckets = budget;

      STHoles stored(domain, static_cast<double>(data.size()), config);
      stored.Refine(cluster, executor);
      stored.Refine(core, executor);
      double stored_err = GridError(stored, cells, executor);

      STHoles tuned(domain, static_cast<double>(data.size()), config);
      tuned.Refine(core, executor);  // The lemma's precondition.
      for (int epoch = 0; epoch < 6; ++epoch) {
        for (const Box& cell : cells) tuned.Refine(cell, executor);
      }
      double tuned_err = GridError(tuned, cells, executor);

      table.AddRow({FormatSize(budget), FormatDouble(stored_err, 3),
                    FormatDouble(tuned_err, 3),
                    tuned_err > stored_err + 0.3 ? "stagnates"
                                                 : "detects"});
    }
    std::printf("6x6 cluster with dense core (gamma = 40), core captured "
                "first (sigma = 2, omega > 2):\n");
    table.Print();
  }

  std::printf("\nexpected shape: storing always achieves ~0 error at the "
              "storage threshold; self-tuning needs strictly more budget and "
              "stagnates below it.\n");
  return 0;
}

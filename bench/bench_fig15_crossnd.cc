// Figure 15: dimensionality sweep — Cross3d, Cross4d, Cross5d (Table 3
// variants), initialized vs uninitialized. The uninitialized error climbs
// consistently with dimensionality; the initialized one stays flat until the
// clustering itself gets strained (the paper saw that at 5-d due to memory
// pressure on MineClus).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Figure 15 — Cross3d/4d/5d dimensionality sweep", scale);

  struct Panel {
    size_t dim;
    std::vector<double> paper_uninit;
    std::vector<double> paper_init;
  };
  const std::vector<Panel> panels = {
      {3, {0.300, 0.270, 0.250, 0.230, 0.210}, {0.120, 0.115, 0.110, 0.105, 0.100}},
      {4, {0.380, 0.350, 0.330, 0.310, 0.290}, {0.125, 0.120, 0.115, 0.110, 0.105}},
      {5, {0.460, 0.430, 0.410, 0.390, 0.370}, {0.210, 0.200, 0.190, 0.185, 0.180}},
  };

  for (const Panel& panel : panels) {
    Experiment experiment(BenchCrossNd(panel.dim, scale));

    FigureSpec spec;
    spec.title = "Cross" + std::to_string(panel.dim) + "d[1%] normalized "
                 "absolute error (" +
                 std::to_string(experiment.data().size()) + " tuples)";
    spec.bucket_counts = scale.bucket_sweep;
    spec.threads = scale.threads;
  spec.base.train_queries = scale.train_queries;
    spec.base.sim_queries = scale.sim_queries;
    spec.base.volume_fraction = 0.01;
    spec.base.mineclus = CrossMineClus();
    spec.series = {
        {"uninit", false, false, panel.paper_uninit},
        {"init", true, false, panel.paper_init},
    };
    RunFigure(&experiment, spec);
  }

  std::printf("expected shape: uninit error grows steadily with the "
              "dimension; init stays low and roughly flat for 3d/4d.\n");
  return 0;
}

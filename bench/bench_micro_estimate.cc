// Micro-benchmark: STHoles estimation cost as a function of bucket count.

#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace {

using namespace sthist;

struct Fixture {
  GeneratedData g;
  Executor executor;
  Workload queries;

  explicit Fixture(size_t buckets)
      : g(MakeGauss([] {
          GaussConfig config;
          config.cluster_tuples = 30000;
          config.noise_tuples = 3000;
          return config;
        }())),
        executor(g.data) {
    WorkloadConfig wc;
    wc.num_queries = 200;
    wc.volume_fraction = 0.01;
    queries = MakeWorkload(g.domain, wc);
    STHolesConfig hc;
    hc.max_buckets = buckets;
    hist = std::make_unique<STHoles>(g.domain,
                                     static_cast<double>(g.data.size()), hc);
    for (const Box& q : queries) hist->Refine(q, executor);
  }

  std::unique_ptr<STHoles> hist;
};

void BM_Estimate(benchmark::State& state) {
  static Fixture* fixtures[4] = {nullptr, nullptr, nullptr, nullptr};
  int slot = state.range(0) == 10    ? 0
             : state.range(0) == 50  ? 1
             : state.range(0) == 100 ? 2
                                     : 3;
  if (fixtures[slot] == nullptr) {
    fixtures[slot] = new Fixture(static_cast<size_t>(state.range(0)));
  }
  Fixture& f = *fixtures[slot];
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.hist->Estimate(f.queries[i]));
    i = (i + 1) % f.queries.size();
  }
  state.counters["buckets"] =
      static_cast<double>(f.hist->bucket_count());
}

BENCHMARK(BM_Estimate)->Arg(10)->Arg(50)->Arg(100)->Arg(250);

}  // namespace

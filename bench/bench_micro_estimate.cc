// Micro-benchmark: estimation cost as a function of synopsis budget, for
// STHoles (bucket count) and the KDE estimator (sample capacity) at matched
// budgets.
//
// Supplies its own main (instead of benchmark_main) so the shared bench
// flags — notably --metrics-json for the BENCH_estimate.json artifact — are
// stripped before google-benchmark sees the command line.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "data/generators.h"
#include "histogram/kde.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace {

using namespace sthist;

struct Fixture {
  GeneratedData g;
  Executor executor;
  Workload queries;

  explicit Fixture(size_t buckets)
      : g(MakeGauss([] {
          GaussConfig config;
          config.cluster_tuples = 30000;
          config.noise_tuples = 3000;
          return config;
        }())),
        executor(g.data) {
    WorkloadConfig wc;
    wc.num_queries = 200;
    wc.volume_fraction = 0.01;
    queries = MakeWorkload(g.domain, wc);
    STHolesConfig hc;
    hc.max_buckets = buckets;
    hist = std::make_unique<STHoles>(g.domain,
                                     static_cast<double>(g.data.size()), hc);
    for (const Box& q : queries) hist->Refine(q, executor);
  }

  std::unique_ptr<STHoles> hist;
};

Fixture& FixtureFor(int64_t buckets) {
  static Fixture* fixtures[4] = {nullptr, nullptr, nullptr, nullptr};
  int slot = buckets == 10 ? 0 : buckets == 50 ? 1 : buckets == 100 ? 2 : 3;
  if (fixtures[slot] == nullptr) {
    fixtures[slot] = new Fixture(static_cast<size_t>(buckets));
  }
  return *fixtures[slot];
}

// Indexed path (the production Estimate, served through the bucket R-tree
// after its lazy build).
void BM_Estimate(benchmark::State& state) {
  Fixture& f = FixtureFor(state.range(0));
  (void)f.hist->EstimateBatch(f.queries, 1);  // Force the index build.
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.hist->Estimate(f.queries[i]));
    i = (i + 1) % f.queries.size();
  }
  state.counters["buckets"] =
      static_cast<double>(f.hist->bucket_count());
}

// Retained full-tree scan, the reference the indexed path must match
// bitwise (see tests/index_differential_test.cc).
void BM_EstimateLinear(benchmark::State& state) {
  Fixture& f = FixtureFor(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.hist->EstimateLinear(f.queries[i]));
    i = (i + 1) % f.queries.size();
  }
  state.counters["buckets"] =
      static_cast<double>(f.hist->bucket_count());
}

// Whole-workload batch over hardware threads; reported time covers all 200
// queries, so items_per_second is the comparable throughput number.
void BM_EstimateBatch(benchmark::State& state) {
  Fixture& f = FixtureFor(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.hist->EstimateBatch(f.queries, 0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.queries.size()));
  state.counters["buckets"] =
      static_cast<double>(f.hist->bucket_count());
}

BENCHMARK(BM_Estimate)->Arg(10)->Arg(50)->Arg(100)->Arg(250);
BENCHMARK(BM_EstimateLinear)->Arg(10)->Arg(50)->Arg(100)->Arg(250);
BENCHMARK(BM_EstimateBatch)->Arg(10)->Arg(50)->Arg(100)->Arg(250);

// KDE counterpart at matched budgets: sample_capacity plays the role of the
// bucket count (both are the per-query O(budget · dim) estimation dial).
struct KdeFixture {
  GeneratedData g;
  Executor executor;
  Workload queries;

  explicit KdeFixture(size_t capacity)
      : g(MakeGauss([] {
          GaussConfig config;
          config.cluster_tuples = 30000;
          config.noise_tuples = 3000;
          return config;
        }())),
        executor(g.data) {
    WorkloadConfig wc;
    wc.num_queries = 200;
    wc.volume_fraction = 0.01;
    queries = MakeWorkload(g.domain, wc);
    KdeConfig kc;
    kc.sample_capacity = capacity;
    hist = std::make_unique<KdeHistogram>(
        g.domain, static_cast<double>(g.data.size()), kc);
    for (const Box& q : queries) hist->Refine(q, executor);
  }

  std::unique_ptr<KdeHistogram> hist;
};

KdeFixture& KdeFixtureFor(int64_t capacity) {
  static KdeFixture* fixtures[4] = {nullptr, nullptr, nullptr, nullptr};
  int slot = capacity == 10 ? 0 : capacity == 50 ? 1 : capacity == 100 ? 2 : 3;
  if (fixtures[slot] == nullptr) {
    fixtures[slot] = new KdeFixture(static_cast<size_t>(capacity));
  }
  return *fixtures[slot];
}

// SoA plane path (the production Estimate, after the lazy plane build).
void BM_KdeEstimate(benchmark::State& state) {
  KdeFixture& f = KdeFixtureFor(state.range(0));
  (void)f.hist->EstimateBatch(f.queries, 1);  // Force the plane build.
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.hist->Estimate(f.queries[i]));
    i = (i + 1) % f.queries.size();
  }
  state.counters["buckets"] = static_cast<double>(f.hist->bucket_count());
}

// Row-major reference scan, the differential twin of the plane path.
void BM_KdeEstimateLinear(benchmark::State& state) {
  KdeFixture& f = KdeFixtureFor(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.hist->EstimateLinear(f.queries[i]));
    i = (i + 1) % f.queries.size();
  }
  state.counters["buckets"] = static_cast<double>(f.hist->bucket_count());
}

void BM_KdeEstimateBatch(benchmark::State& state) {
  KdeFixture& f = KdeFixtureFor(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.hist->EstimateBatch(f.queries, 0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.queries.size()));
  state.counters["buckets"] = static_cast<double>(f.hist->bucket_count());
}

BENCHMARK(BM_KdeEstimate)->Arg(10)->Arg(50)->Arg(100)->Arg(250);
BENCHMARK(BM_KdeEstimateLinear)->Arg(10)->Arg(50)->Arg(100)->Arg(250);
BENCHMARK(BM_KdeEstimateBatch)->Arg(10)->Arg(50)->Arg(100)->Arg(250);

}  // namespace

int main(int argc, char** argv) {
  sthist::bench::BenchOptions options =
      sthist::bench::ExtractBenchOptions(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!sthist::bench::WriteBenchArtifact(options, "estimate", {})) return 1;
  return 0;
}

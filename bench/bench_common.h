#ifndef STHIST_BENCH_BENCH_COMMON_H_
#define STHIST_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "eval/runner.h"
#include "obs/metrics.h"

namespace sthist::bench {

/// Approximate p99 from the fixed log-scale latency buckets: the upper bound
/// of the bucket holding the 99th-percentile observation (max for overflow).
inline double ApproxP99Seconds(
    const obs::MetricsSnapshot::LatencyValue& latency) {
  if (latency.count == 0) return 0.0;
  const uint64_t target = (latency.count * 99 + 99) / 100;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < obs::kLatencyBuckets; ++b) {
    cumulative += latency.buckets[b];
    if (cumulative >= target) {
      return b < obs::kLatencyBounds.size() ? obs::kLatencyBounds[b]
                                            : latency.max_seconds;
    }
  }
  return latency.max_seconds;
}

/// Command-line knobs shared by every harness, parsed by one function so the
/// flags mean the same thing everywhere (DESIGN.md §13 for --metrics-json).
struct BenchOptions {
  /// Worker threads for sweeps/batching (0 = hardware concurrency).
  size_t threads = 0;
  /// Offset applied to the harness's workload seeds (0 = harness default),
  /// for cheap run-to-run variation without editing the source.
  uint64_t seed = 0;
  /// Harness-specific primary output file ("" = stdout only).
  std::string out;
  /// Where to write the BENCH_*.json artifact ("" = don't).
  std::string metrics_json;
};

/// Parses the shared flags (--threads N, --seed N, --out PATH,
/// --metrics-json PATH) out of argv, removing each one (and its value) in
/// place and decrementing *argc; anything unrecognized is left for the
/// caller — google-benchmark mains pass the remainder to
/// benchmark::Initialize. Also installs the process-wide metrics registry
/// (obs::GlobalMetrics()), so every instrumented component constructed
/// afterwards records into the artifact.
BenchOptions ExtractBenchOptions(int* argc, char** argv);

/// Strict variant for plain harnesses: anything left over after extraction
/// is a usage error (prints to stderr, exits 2).
BenchOptions ParseBenchOptions(int argc, char** argv);

/// Writes the bench artifact to options.metrics_json:
///   {"bench": <name>, "summary": {...}, "metrics": <registry snapshot>}
/// No-op (returning true) when no path was requested; returns false after
/// printing to stderr when the write fails, so mains can exit non-zero.
bool WriteBenchArtifact(
    const BenchOptions& options, const std::string& name,
    const std::vector<std::pair<std::string, double>>& summary);

/// Bench scale knobs. Defaults run every harness in seconds-to-a-minute;
/// setting the environment variable STHIST_FULL=1 switches to the paper's
/// workload sizes (1,000 training + 1,000 simulation queries, full dataset
/// cardinalities) at correspondingly longer runtimes.
struct Scale {
  bool full = false;
  /// Worker threads for experiment-cell sweeps (--threads N on the bench
  /// command line; 0 = hardware concurrency). Results are identical at any
  /// thread count — see the RunSweep determinism contract.
  size_t threads = 0;
  size_t train_queries = 200;
  size_t sim_queries = 200;
  size_t sky_tuples = 100000;
  size_t gauss_cluster_tuples = 100000;
  size_t gauss_noise_tuples = 10000;
  size_t heavy_extra_queries = 2000;
  size_t crossnd_cluster_tuples_4d = 40000;
  size_t crossnd_cluster_tuples_5d = 60000;
  /// Bucket budgets swept by the figure harnesses; the paper's full
  /// {50,100,150,200,250} under STHIST_FULL=1, a 3-point sweep by default.
  std::vector<size_t> bucket_sweep = {50, 100, 250};
};

/// Reads the scale from the environment (STHIST_FULL=1 for paper scale)
/// and, when argv is provided, the command line via ParseBenchOptions.
Scale GetScale(int argc = 0, char** argv = nullptr);

/// Same, from already-parsed options (harnesses that also need the options
/// themselves call ParseBenchOptions once and use this overload).
Scale GetScale(const BenchOptions& options);

/// Canonical dataset builders at bench scale.
GeneratedData BenchCross();
GeneratedData BenchCrossNd(size_t dim, const Scale& scale);
GeneratedData BenchGauss(const Scale& scale);
GeneratedData BenchSky(const Scale& scale);

/// MineClus parameters tuned per dataset family (the defaults the paper's
/// accuracy experiments effectively use: dense clusters, not too small).
MineClusConfig CrossMineClus();
MineClusConfig GaussMineClus();
MineClusConfig SkyMineClus();

/// One experiment variant within a figure (a line in the plot).
struct Series {
  std::string name;
  bool initialize = false;
  bool reversed = false;
  /// Paper values (approximate, digitized from the figure) for the same
  /// bucket counts, for shape comparison. Empty when the paper gives none.
  std::vector<double> paper_nae;
};

/// A bucket-count sweep reproducing one figure. Each series' `paper_nae`
/// entries are indexed against `paper_bucket_counts`; measured bucket counts
/// not present there print "-" in the paper column.
struct FigureSpec {
  std::string title;
  std::vector<size_t> bucket_counts = {50, 100, 250};
  std::vector<size_t> paper_bucket_counts = {50, 100, 150, 200, 250};
  ExperimentConfig base;
  std::vector<Series> series;
  /// Worker threads for the cell sweep (0 = hardware concurrency).
  /// Callers copy Scale::threads here.
  size_t threads = 0;
};

/// Runs the sweep — all (bucket count x series) cells concurrently via
/// RunSweep — and prints one table: rows = bucket counts, columns =
/// measured NAE per series plus the paper's approximate value.
void RunFigure(Experiment* experiment, const FigureSpec& spec);

/// Prints the standard harness banner (title + scale note).
void PrintBanner(const std::string& title, const Scale& scale);

}  // namespace sthist::bench

#endif  // STHIST_BENCH_BENCH_COMMON_H_

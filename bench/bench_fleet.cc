// Fleet-layer throughput harness: N tenant histograms sharing one K-thread
// refiner pool (serve/service_fleet.h), swept over tenant counts up to 1k+
// shards. Two numbers matter per row: read throughput with the refiner pool
// live relative to idle (snapshot isolation says live refinement costs
// readers almost nothing — the shard map lookup is a shared lock never held
// across estimation, and snapshot reads are shared_ptr refcount swaps), and
// the publish-latency p99 under saturating mixed traffic.
//
// Exits non-zero on a many-core machine if the live/idle ratio at any tenant
// count collapses below the acceptance floor (0.85 — "within 15% of idle"),
// which would mean readers couple to the refiner pool.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/generators.h"
#include "eval/table.h"
#include "histogram/stholes.h"
#include "obs/metrics.h"
#include "serve/service_fleet.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist::bench {
namespace {

/// Shared data shapes: tenants alternate over two cross datasets, the
/// many-histograms-few-tables shape the fleet targets.
struct FleetVariant {
  explicit FleetVariant(GeneratedData generated) : g(std::move(generated)) {}
  GeneratedData g;
  std::unique_ptr<Executor> executor;
  Workload feedback;
  Workload probes;
};

struct FleetBenchSetup {
  std::vector<std::unique_ptr<FleetVariant>> variants;

  const FleetVariant& variant_of(size_t tenant) const {
    return *variants[tenant % variants.size()];
  }
};

FleetBenchSetup MakeFleetSetup(const Scale& scale, uint64_t seed_offset) {
  FleetBenchSetup setup;
  for (size_t v = 0; v < 2; ++v) {
    CrossConfig config;
    config.tuples_per_cluster = (scale.full ? 2000 : 800) - 200 * v;
    config.noise_tuples = config.tuples_per_cluster / 5;
    config.seed = 1 + v + seed_offset;
    auto variant = std::make_unique<FleetVariant>(MakeCross(config));
    variant->executor = std::make_unique<Executor>(variant->g.data);
    WorkloadConfig wc;
    wc.num_queries = 256;
    wc.volume_fraction = 0.01;
    wc.seed = 31 + v + seed_offset;
    variant->feedback = MakeWorkload(variant->g.domain, wc);
    wc.num_queries = 256;
    wc.seed = 97 + v + seed_offset;
    variant->probes = MakeWorkload(variant->g.domain, wc);
    setup.variants.push_back(std::move(variant));
  }
  return setup;
}

struct FleetRow {
  double idle_rps = 0.0;
  double live_rps = 0.0;
  size_t publishes = 0;
  size_t applied = 0;
  size_t shed = 0;
  double publish_p99_ms = 0.0;
  double publish_mean_ms = 0.0;
};

/// One tenant-count row. The fleet records into its own registry so the
/// publish-latency histogram and the counters cover exactly this row. Idle
/// is measured first (pure snapshot reads), then the same readers rerun with
/// feeder threads keeping every shard queue supplied.
FleetRow MeasureFleet(const FleetBenchSetup& setup, size_t tenants,
                      size_t readers, size_t reads_per_thread,
                      uint64_t seed, bool clone_publish = false) {
  obs::MetricsRegistry registry;

  FleetConfig fc;
  fc.refiners = 4;
  fc.queue_capacity = 256;
  fc.publish_batch = 16;
  fc.seed = seed;
  fc.clone_publish = clone_publish;
  fc.metrics = &registry;
  ServiceFleet fleet(fc);

  std::vector<std::string> keys;
  keys.reserve(tenants);
  for (size_t t = 0; t < tenants; ++t) {
    keys.push_back("tenant_" + std::to_string(t));
    const FleetVariant& v = setup.variant_of(t);
    STHolesConfig hc;
    hc.max_buckets = 20;
    auto hist = std::make_unique<STHoles>(
        v.g.domain, static_cast<double>(v.g.data.size()), hc);
    // A light pre-train (offset per tenant) so served snapshots carry a
    // real bucket tree instead of the single root bucket.
    for (size_t i = 0; i < 8; ++i) {
      hist->Refine(v.feedback[(t + i) % v.feedback.size()], *v.executor);
    }
    if (!fleet.AddTenant(keys.back(), std::move(hist), *v.executor).ok()) {
      std::fprintf(stderr, "FAIL: AddTenant(%s)\n", keys.back().c_str());
      std::exit(EXIT_FAILURE);
    }
  }

  // Readers sweep tenant-major over the fleet, each thread phase-shifted.
  auto run_readers = [&]() -> double {
    std::atomic<bool> start{false};
    std::atomic<double> sink{0.0};  // Defeats dead-code elimination.
    std::vector<std::thread> threads;
    threads.reserve(readers);
    for (size_t r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        while (!start.load()) std::this_thread::yield();
        double local = 0.0;
        for (size_t i = 0; i < reads_per_thread; ++i) {
          size_t t = (r * 131 + i) % tenants;
          const Workload& probes = setup.variant_of(t).probes;
          local += *fleet.Estimate(keys[t], probes[i % probes.size()]);
        }
        sink.fetch_add(local);
      });
    }
    auto t0 = std::chrono::steady_clock::now();
    start.store(true);
    for (std::thread& t : threads) t.join();
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return static_cast<double>(readers * reads_per_thread) / seconds;
  };

  FleetRow row;
  row.idle_rps = run_readers();

  // Live: feeders keep shard queues supplied across the whole fleet while
  // the same readers rerun. Shedding on full queues is expected behavior
  // under saturation, not an error.
  std::atomic<bool> stop_feeders{false};
  std::vector<std::thread> feeders;
  for (size_t f = 0; f < 2; ++f) {
    feeders.emplace_back([&, f] {
      size_t i = 0;
      while (!stop_feeders.load()) {
        size_t t = (f * 17 + i) % tenants;
        const Workload& feedback = setup.variant_of(t).feedback;
        (void)fleet.SubmitFeedback(keys[t], feedback[i % feedback.size()]);
        ++i;
      }
    });
  }
  row.live_rps = run_readers();
  stop_feeders.store(true);
  for (std::thread& f : feeders) f.join();
  fleet.Stop();

  FleetStats stats = fleet.stats();
  row.publishes = stats.publishes;
  row.applied = stats.feedback_applied;
  row.shed = stats.feedback_dropped();
  for (const auto& latency : registry.Snapshot().latencies) {
    if (latency.name == "serve.fleet.publish_seconds") {
      row.publish_p99_ms = ApproxP99Seconds(latency) * 1e3;
      row.publish_mean_ms =
          latency.count > 0
              ? latency.sum_seconds / static_cast<double>(latency.count) * 1e3
              : 0.0;
    }
  }
  return row;
}

}  // namespace
}  // namespace sthist::bench

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  BenchOptions options = ParseBenchOptions(argc, argv);
  Scale scale = GetScale(options);
  PrintBanner("Fleet layer: read throughput vs tenant count", scale);

  FleetBenchSetup setup = MakeFleetSetup(scale, options.seed);
  const size_t readers = 4;
  const size_t reads_per_thread = scale.full ? 20000 : 4000;
  std::vector<size_t> tenant_counts = {64, 256, 1024};
  if (scale.full) tenant_counts.push_back(2048);

  std::printf("%zu data variants, 4 refiners, %zu readers x %zu reads\n",
              setup.variants.size(), readers, reads_per_thread);

  TablePrinter table({"tenants", "idle reads/s", "live reads/s", "ratio",
                      "publishes", "applied", "shed", "publish p99 ms"});
  double worst_ratio = 1e300;
  double ratio_1k = 0.0;
  double p99_1k_ms = 0.0;
  size_t publishes_1k = 0;
  for (size_t tenants : tenant_counts) {
    FleetRow row = MeasureFleet(setup, tenants, readers, reads_per_thread,
                                options.seed + tenants);
    double ratio = row.live_rps / row.idle_rps;
    worst_ratio = std::min(worst_ratio, ratio);
    if (tenants >= 1024 && ratio_1k == 0.0) {
      ratio_1k = ratio;
      p99_1k_ms = row.publish_p99_ms;
      publishes_1k = row.publishes;
    }
    table.AddRow({FormatSize(tenants), FormatDouble(row.idle_rps, 0),
                  FormatDouble(row.live_rps, 0), FormatDouble(ratio, 2),
                  FormatSize(row.publishes), FormatSize(row.applied),
                  FormatSize(row.shed), FormatDouble(row.publish_p99_ms, 2)});
  }
  table.Print();

  // COW vs clone-on-publish across a mid-size fleet under the same mixed
  // load: every shard publish must get cheaper when it stops deep-copying
  // its bucket tree. Same-box ratio, so it gates on any hardware.
  const size_t h2h_tenants = 256;
  FleetRow cow = MeasureFleet(setup, h2h_tenants, readers, reads_per_thread,
                              options.seed + 7, false);
  FleetRow clone = MeasureFleet(setup, h2h_tenants, readers, reads_per_thread,
                                options.seed + 7, true);
  const double publish_mean_ratio =
      clone.publish_mean_ms / std::max(cow.publish_mean_ms, 1e-12);
  const double publish_p99_ratio =
      clone.publish_p99_ms / std::max(cow.publish_p99_ms, 1e-12);
  const double cow_live_ratio = cow.live_rps / clone.live_rps;
  std::printf(
      "publish cow vs clone (%zu tenants): mean %.4f ms vs %.4f ms (%.1fx), "
      "p99 %.4f ms vs %.4f ms (%.1fx), live reads %.0f/s vs %.0f/s (%.2fx)\n",
      h2h_tenants, cow.publish_mean_ms, clone.publish_mean_ms,
      publish_mean_ratio, cow.publish_p99_ms, clone.publish_p99_ms,
      publish_p99_ratio, cow.live_rps, clone.live_rps, cow_live_ratio);

  // The ISSUE's acceptance bound: at 1k+ shards, live-refiner read
  // throughput within 15% of the idle baseline — but only where the
  // hardware can show it. On a box with cores to spare the pool runs beside
  // the readers and the ratio sits near 1.0; on 1-2 cores the feeders and
  // refiners legitimately steal reader CPU, so those machines only report.
  const bool many_cores = std::thread::hardware_concurrency() > 4;
  const double floor = many_cores ? 0.85 : 0.0;

  if (!WriteBenchArtifact(options, "fleet",
                          {{"tenants_max", static_cast<double>(
                                               tenant_counts.back())},
                           {"live_idle_ratio_1k", ratio_1k},
                           {"worst_live_idle_ratio", worst_ratio},
                           {"floor", floor},
                           {"publish_p99_ms_1k", p99_1k_ms},
                           {"publishes_1k",
                            static_cast<double>(publishes_1k)},
                           {"publish_mean_ms_cow", cow.publish_mean_ms},
                           {"publish_mean_ms_clone", clone.publish_mean_ms},
                           {"publish_p99_ms_cow", cow.publish_p99_ms},
                           {"publish_p99_ms_clone", clone.publish_p99_ms},
                           {"publish_mean_ratio", publish_mean_ratio},
                           {"publish_p99_ratio", publish_p99_ratio},
                           {"cow_live_ratio", cow_live_ratio}})) {
    return EXIT_FAILURE;
  }

  // COW publish gates, mirroring bench_serve: the mean must be strictly
  // cheaper (continuous, same-box), the bucketed p99 must not regress, and
  // readers must not pay for the zero-copy publish.
  if (cow.publishes == 0 || clone.publishes == 0) {
    std::fprintf(stderr, "FAIL: publish head-to-head never published "
                 "(cow %zu, clone %zu)\n", cow.publishes, clone.publishes);
    return EXIT_FAILURE;
  }
  if (publish_mean_ratio <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: COW shard publish is not strictly cheaper than the "
                 "deep clone (mean %.4f ms vs %.4f ms)\n",
                 cow.publish_mean_ms, clone.publish_mean_ms);
    return EXIT_FAILURE;
  }
  if (publish_p99_ratio < 1.0) {
    std::fprintf(stderr,
                 "FAIL: COW shard publish p99 regressed vs the deep clone "
                 "(%.4f ms vs %.4f ms)\n",
                 cow.publish_p99_ms, clone.publish_p99_ms);
    return EXIT_FAILURE;
  }
  // Report-only on 1-2 cores, same rationale as the live/idle floor: the
  // path-copy work COW moves into refinement competes with readers there.
  if (many_cores && cow_live_ratio < 0.9) {
    std::fprintf(stderr,
                 "FAIL: COW publishing dented live fleet read throughput vs "
                 "the clone path (%.2fx)\n",
                 cow_live_ratio);
    return EXIT_FAILURE;
  }

  if (ratio_1k < floor) {
    std::fprintf(stderr,
                 "FAIL: live refinement dented fleet read throughput at 1k "
                 "shards (live/idle ratio %.2f < %.2f) — readers appear to "
                 "couple to the refiner pool\n",
                 ratio_1k, floor);
    return EXIT_FAILURE;
  }
  std::printf("1k-shard live/idle ratio %.2f (floor %.2f), worst %.2f: "
              "readers stay decoupled from the shared refiner pool\n",
              ratio_1k, floor, worst_ratio);
  return EXIT_SUCCESS;
}

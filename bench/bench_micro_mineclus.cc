// Micro-benchmark: MineClus end-to-end runtime vs dataset size and
// dimensionality, plus the FP-tree miner alone.

#include <benchmark/benchmark.h>

#include "clustering/fptree.h"
#include "clustering/mineclus.h"
#include "core/rng.h"
#include "data/generators.h"

namespace {

using namespace sthist;

void BM_MineClusGauss(benchmark::State& state) {
  GaussConfig config;
  config.cluster_tuples = static_cast<size_t>(state.range(0)) * 9 / 10;
  config.noise_tuples = static_cast<size_t>(state.range(0)) / 10;
  GeneratedData g = MakeGauss(config);
  MineClusConfig mc;
  mc.alpha = 0.02;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunMineClus(g.data, g.domain, mc));
  }
}
BENCHMARK(BM_MineClusGauss)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_MineClusDims(benchmark::State& state) {
  GaussConfig config;
  config.dim = static_cast<size_t>(state.range(0));
  config.max_subspace_dims = std::min<size_t>(5, config.dim);
  config.cluster_tuples = 20000;
  config.noise_tuples = 2000;
  GeneratedData g = MakeGauss(config);
  MineClusConfig mc;
  mc.alpha = 0.02;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunMineClus(g.data, g.domain, mc));
  }
}
BENCHMARK(BM_MineClusDims)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_FpTreeMineBest(benchmark::State& state) {
  Rng rng(5);
  const size_t num_items = static_cast<size_t>(state.range(0));
  std::vector<WeightedTransaction> txs;
  for (int i = 0; i < 20000; ++i) {
    WeightedTransaction t;
    for (size_t item = 0; item < num_items; ++item) {
      if (rng.Bernoulli(0.3)) t.items.push_back(static_cast<int>(item));
    }
    if (!t.items.empty()) txs.push_back(std::move(t));
  }
  for (auto _ : state) {
    FpTree tree(txs, num_items, 200.0);
    benchmark::DoNotOptimize(tree.MineBest(4.0));
  }
}
BENCHMARK(BM_FpTreeMineBest)->Arg(7)->Arg(12)->Arg(18)->Unit(benchmark::kMillisecond);

}  // namespace

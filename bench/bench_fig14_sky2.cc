// Figure 14: the Sky dataset with 2%-volume queries — the initialized
// histogram's error barely moves vs Figure 13 while the uninitialized one
// degrades (robustness to query volume).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Figure 14 — Sky[2%], robustness to query volume", scale);

  Experiment experiment(BenchSky(scale));

  FigureSpec spec;
  spec.title = "Sky[2%] normalized absolute error";
  spec.bucket_counts = scale.bucket_sweep;
  spec.threads = scale.threads;
  spec.base.train_queries = scale.train_queries;
  spec.base.sim_queries = scale.sim_queries;
  spec.base.volume_fraction = 0.02;
  spec.base.mineclus = SkyMineClus();
  spec.series = {
      {"uninit", false, false, {0.720, 0.680, 0.640, 0.610, 0.580}},
      {"init", true, false, {0.400, 0.300, 0.280, 0.270, 0.260}},
  };
  RunFigure(&experiment, spec);

  std::printf("expected shape: except possibly at 50 buckets, the "
              "initialized error matches Figure 13 — the uninitialized one "
              "is clearly worse than at 1%% volume.\n");
  return 0;
}

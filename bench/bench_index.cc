// Demonstrates the bucket-index payoff (DESIGN.md §10): single-thread
// estimation throughput of the indexed STHoles::Estimate versus the linear
// full-tree scan at 1k / 10k / 50k buckets, plus the additional factor from
// batching over all cores. Every indexed estimate is verified bitwise
// against the linear reference while timing, so the reported speedup is for
// *identical* answers.
//
// Large bucket trees are synthesized through STHoles::Deserialize (a root
// over [0,1000]^2 holding a g x g grid of child buckets), which is how a
// deployment would hand a trained histogram to a serving replica.

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/box.h"
#include "histogram/stholes.h"
#include "workload/workload.h"

namespace {

using namespace sthist;

// Serialized STHoles text: root bucket over [0,1000]^2 with a g x g grid of
// children (g*g + 1 buckets total). Frequencies vary so estimates are
// non-trivial.
std::string GridHistogramText(size_t g) {
  const double width = 1000.0 / static_cast<double>(g);
  std::string out = "STHoles v1 dim=2 buckets=" + std::to_string(g * g + 1) +
                    "\n0 0 1000 0 1000 50000\n";
  char buf[160];
  for (size_t i = 0; i < g; ++i) {
    for (size_t j = 0; j < g; ++j) {
      std::snprintf(buf, sizeof(buf), "1 %.17g %.17g %.17g %.17g %.17g\n",
                    static_cast<double>(i) * width,
                    static_cast<double>(i + 1) * width,
                    static_cast<double>(j) * width,
                    static_cast<double>(j + 1) * width,
                    static_cast<double>((i + j) % 7 + 1));
      out += buf;
    }
  }
  return out;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Throughput {
  double queries_per_second = 0.0;
  double checksum = 0.0;  // Defeats dead-code elimination.
};

template <typename EstimateFn>
Throughput Measure(const Workload& queries, size_t reps, EstimateFn&& fn) {
  Throughput t;
  auto start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < reps; ++r) {
    for (const Box& q : queries) t.checksum += fn(q);
  }
  const double seconds = Seconds(start);
  t.queries_per_second =
      static_cast<double>(reps * queries.size()) / seconds;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  sthist::bench::BenchOptions options =
      sthist::bench::ParseBenchOptions(argc, argv);
  // g x g child grids: 1,025 / 10,001 / 50,177 buckets.
  const size_t grids[] = {32, 100, 224};

  std::printf("%9s %14s %14s %8s %14s %8s\n", "buckets", "linear q/s",
              "indexed q/s", "speedup", "batch q/s", "speedup");

  bool ok = true;
  double speedup_10k = 0.0;
  for (size_t g : grids) {
    STHolesConfig config;
    config.max_buckets = g * g + 8;
    std::unique_ptr<STHoles> hist =
        STHoles::Deserialize(GridHistogramText(g), config);
    if (hist == nullptr) {
      std::fprintf(stderr, "failed to deserialize g=%zu histogram\n", g);
      return 1;
    }

    WorkloadConfig wc;
    wc.num_queries = 200;
    wc.volume_fraction = 0.01;
    wc.seed = 13;
    const Workload queries = MakeWorkload(hist->domain(), wc);

    // Warm the lazily built index so the timed region measures steady state.
    (void)hist->EstimateBatch(queries, 1);

    // Bitwise identity check before timing: the speedup below is only
    // meaningful because the answers are exactly the same.
    for (const Box& q : queries) {
      if (std::bit_cast<uint64_t>(hist->Estimate(q)) !=
          std::bit_cast<uint64_t>(hist->EstimateLinear(q))) {
        std::fprintf(stderr, "BITWISE MISMATCH at g=%zu\n", g);
        return 1;
      }
    }

    // Enough repetitions that even the fastest cell runs ~10^7 bucket
    // visits' worth of work on the linear side.
    const size_t reps =
        std::max<size_t>(3, 20'000'000 / (g * g * queries.size()));

    const Throughput linear = Measure(
        queries, reps, [&](const Box& q) { return hist->EstimateLinear(q); });
    const Throughput indexed = Measure(
        queries, reps, [&](const Box& q) { return hist->Estimate(q); });

    // Batch path over all cores; same per-query work, fanned out.
    double batch_checksum = 0.0;
    auto start = std::chrono::steady_clock::now();
    const size_t batch_reps = reps * 4;
    for (size_t r = 0; r < batch_reps; ++r) {
      for (double e : hist->EstimateBatch(queries, 0)) batch_checksum += e;
    }
    const double batch_qps =
        static_cast<double>(batch_reps * queries.size()) / Seconds(start);

    if (linear.checksum != indexed.checksum) {
      std::fprintf(stderr, "checksum drift at g=%zu\n", g);
      return 1;
    }

    const double speedup = indexed.queries_per_second /
                           linear.queries_per_second;
    std::printf("%9zu %14.0f %14.0f %7.1fx %14.0f %7.1fx\n",
                hist->bucket_count(), linear.queries_per_second,
                indexed.queries_per_second, speedup, batch_qps,
                batch_qps / linear.queries_per_second);
    // The acceptance bar from the issue: >= 5x single-thread at 10k buckets.
    if (g == 100) speedup_10k = speedup;
    if (g == 100 && speedup < 5.0) ok = false;
    (void)batch_checksum;
  }

  if (!sthist::bench::WriteBenchArtifact(options, "index",
                                         {{"speedup_10k", speedup_10k}})) {
    return 1;
  }

  if (!ok) {
    std::fprintf(stderr,
                 "indexed speedup below 5x at 10k buckets — regression\n");
    return 1;
  }
  return 0;
}

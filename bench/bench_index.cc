// Demonstrates the bucket-index payoff (DESIGN.md §10, §15): single-thread
// estimation throughput of the indexed STHoles::Estimate versus the linear
// full-tree scan at 1k / 10k / 50k buckets, plus the additional factor from
// batching over all cores. Every indexed estimate is verified bitwise
// against the linear reference while timing, so the reported speedup is for
// *identical* answers.
//
// A second table isolates the probe layer itself: the flat SoA index
// (FlatBoxIndex, the structure the estimators actually serve through)
// head-to-head against the pointer-based RTree it replaced, on identical
// entries and queries with verified-identical hit sets. The flat path must
// hold >= 1.5x at 10k+ buckets — that ratio (and the end-to-end speedup) is
// what the perf-smoke CI leg gates against bench/baselines/BENCH_index.json.
//
// Large bucket trees are synthesized through STHoles::Deserialize (a root
// over [0,1000]^2 holding a g x g grid of child buckets), which is how a
// deployment would hand a trained histogram to a serving replica.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/box.h"
#include "core/simd.h"
#include "histogram/stholes.h"
#include "index/flat_index.h"
#include "index/rtree.h"
#include "workload/workload.h"

namespace {

using namespace sthist;

// Serialized STHoles text: root bucket over [0,1000]^2 with a g x g grid of
// children (g*g + 1 buckets total). Frequencies vary so estimates are
// non-trivial.
std::string GridHistogramText(size_t g) {
  const double width = 1000.0 / static_cast<double>(g);
  std::string out = "STHoles v1 dim=2 buckets=" + std::to_string(g * g + 1) +
                    "\n0 0 1000 0 1000 50000\n";
  char buf[160];
  for (size_t i = 0; i < g; ++i) {
    for (size_t j = 0; j < g; ++j) {
      std::snprintf(buf, sizeof(buf), "1 %.17g %.17g %.17g %.17g %.17g\n",
                    static_cast<double>(i) * width,
                    static_cast<double>(i + 1) * width,
                    static_cast<double>(j) * width,
                    static_cast<double>(j + 1) * width,
                    static_cast<double>((i + j) % 7 + 1));
      out += buf;
    }
  }
  return out;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Throughput {
  double queries_per_second = 0.0;
  double checksum = 0.0;  // Defeats dead-code elimination.
};

template <typename EstimateFn>
Throughput Measure(const Workload& queries, size_t reps, EstimateFn&& fn) {
  Throughput t;
  auto start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < reps; ++r) {
    for (const Box& q : queries) t.checksum += fn(q);
  }
  const double seconds = Seconds(start);
  t.queries_per_second =
      static_cast<double>(reps * queries.size()) / seconds;
  return t;
}

// Raw probe throughput: repeats the workload against `fn(query, &out)` until
// ~0.5s has elapsed, reusing one output vector so steady state is what gets
// timed. Returns probes per second.
template <typename ProbeFn>
double MeasureProbes(const Workload& queries, ProbeFn&& fn) {
  std::vector<uint64_t> out;
  // Warm-up pass grows `out` to steady-state capacity.
  for (const Box& q : queries) {
    out.clear();
    fn(q, &out);
  }
  size_t probes = 0;
  uint64_t sink = 0;  // Defeats dead-code elimination.
  auto start = std::chrono::steady_clock::now();
  double seconds = 0.0;
  do {
    for (const Box& q : queries) {
      out.clear();
      fn(q, &out);
      sink += out.size();
    }
    probes += queries.size();
    seconds = Seconds(start);
  } while (seconds < 0.5);
  if (sink == 0) std::fprintf(stderr, "(empty probe workload?)\n");
  return static_cast<double>(probes) / seconds;
}

std::vector<uint64_t> SortedHits(std::vector<uint64_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  sthist::bench::BenchOptions options =
      sthist::bench::ParseBenchOptions(argc, argv);
  // g x g child grids: 1,025 / 10,001 / 50,177 buckets.
  const size_t grids[] = {32, 100, 224};

  std::printf("%9s %14s %14s %8s %14s %8s\n", "buckets", "linear q/s",
              "indexed q/s", "speedup", "batch q/s", "speedup");

  bool ok = true;
  double speedup_10k = 0.0;
  for (size_t g : grids) {
    STHolesConfig config;
    config.max_buckets = g * g + 8;
    std::unique_ptr<STHoles> hist =
        STHoles::Deserialize(GridHistogramText(g), config);
    if (hist == nullptr) {
      std::fprintf(stderr, "failed to deserialize g=%zu histogram\n", g);
      return 1;
    }

    WorkloadConfig wc;
    wc.num_queries = 200;
    wc.volume_fraction = 0.01;
    wc.seed = 13;
    const Workload queries = MakeWorkload(hist->domain(), wc);

    // Warm the lazily built index so the timed region measures steady state.
    (void)hist->EstimateBatch(queries, 1);

    // Bitwise identity check before timing: the speedup below is only
    // meaningful because the answers are exactly the same.
    for (const Box& q : queries) {
      if (std::bit_cast<uint64_t>(hist->Estimate(q)) !=
          std::bit_cast<uint64_t>(hist->EstimateLinear(q))) {
        std::fprintf(stderr, "BITWISE MISMATCH at g=%zu\n", g);
        return 1;
      }
    }

    // Enough repetitions that even the fastest cell runs ~10^7 bucket
    // visits' worth of work on the linear side.
    const size_t reps =
        std::max<size_t>(3, 20'000'000 / (g * g * queries.size()));

    const Throughput linear = Measure(
        queries, reps, [&](const Box& q) { return hist->EstimateLinear(q); });
    const Throughput indexed = Measure(
        queries, reps, [&](const Box& q) { return hist->Estimate(q); });

    // Batch path over all cores; same per-query work, fanned out.
    double batch_checksum = 0.0;
    auto start = std::chrono::steady_clock::now();
    const size_t batch_reps = reps * 4;
    for (size_t r = 0; r < batch_reps; ++r) {
      for (double e : hist->EstimateBatch(queries, 0)) batch_checksum += e;
    }
    const double batch_qps =
        static_cast<double>(batch_reps * queries.size()) / Seconds(start);

    if (linear.checksum != indexed.checksum) {
      std::fprintf(stderr, "checksum drift at g=%zu\n", g);
      return 1;
    }

    const double speedup = indexed.queries_per_second /
                           linear.queries_per_second;
    std::printf("%9zu %14.0f %14.0f %7.1fx %14.0f %7.1fx\n",
                hist->bucket_count(), linear.queries_per_second,
                indexed.queries_per_second, speedup, batch_qps,
                batch_qps / linear.queries_per_second);
    // The acceptance bar from the issue: >= 5x single-thread at 10k buckets.
    if (g == 100) speedup_10k = speedup;
    if (g == 100 && speedup < 5.0) ok = false;
    (void)batch_checksum;
  }

  // -------------------------------------------------------------------
  // Probe layer head-to-head: FlatBoxIndex (SoA planes + vectorized
  // kernel, DESIGN.md §15) vs the pointer-based RTree it replaced, on the
  // same bucket boxes and the same queries. Hit sets are verified equal
  // before timing.
  std::printf("\nraw probe path (kernel: %s)\n",
              simd::LevelName(simd::ActiveLevel()));
  std::printf("%9s %14s %14s %8s\n", "buckets", "rtree p/s", "flat p/s",
              "ratio");

  double flat_vs_rtree_10k = 0.0;
  double flat_vs_rtree_50k = 0.0;
  for (size_t g : grids) {
    STHolesConfig config;
    config.max_buckets = g * g + 8;
    std::unique_ptr<STHoles> hist =
        STHoles::Deserialize(GridHistogramText(g), config);
    if (hist == nullptr) {
      std::fprintf(stderr, "failed to deserialize g=%zu histogram\n", g);
      return 1;
    }

    // Index the non-root buckets — the same entry set BucketTreeIndex
    // maintains for the estimators.
    std::vector<RTree::Entry> rtree_entries;
    std::vector<FlatBoxIndex::Entry> flat_entries;
    uint64_t id = 0;
    for (const STHoles::BucketInfo& b : hist->Dump()) {
      if (b.depth == 0) continue;
      rtree_entries.push_back({b.box, id});
      flat_entries.push_back({b.box, id});
      ++id;
    }
    RTree rtree;
    rtree.Bulk(std::move(rtree_entries));
    FlatBoxIndex flat;
    flat.Bulk(std::move(flat_entries));

    WorkloadConfig wc;
    wc.num_queries = 200;
    wc.volume_fraction = 0.01;
    wc.seed = 13;
    const Workload queries = MakeWorkload(hist->domain(), wc);

    // Identical hit sets before timing: the ratio is only meaningful
    // because the answers are exactly the same.
    for (const Box& q : queries) {
      std::vector<uint64_t> from_rtree, from_flat;
      rtree.Probe(q, BoxOverlap::kOpenInterior, &from_rtree);
      flat.Probe(q, BoxOverlap::kOpenInterior, &from_flat);
      if (SortedHits(std::move(from_rtree)) !=
          SortedHits(std::move(from_flat))) {
        std::fprintf(stderr, "PROBE HIT-SET MISMATCH at g=%zu\n", g);
        return 1;
      }
    }

    const double rtree_pps =
        MeasureProbes(queries, [&](const Box& q, std::vector<uint64_t>* out) {
          rtree.Probe(q, BoxOverlap::kOpenInterior, out);
        });
    const double flat_pps =
        MeasureProbes(queries, [&](const Box& q, std::vector<uint64_t>* out) {
          flat.Probe(q, BoxOverlap::kOpenInterior, out);
        });
    const double ratio = flat_pps / rtree_pps;
    std::printf("%9zu %14.0f %14.0f %7.2fx\n", id, rtree_pps, flat_pps,
                ratio);

    if (g == 100) flat_vs_rtree_10k = ratio;
    if (g == 224) flat_vs_rtree_50k = ratio;
    // Acceptance bar: >= 1.5x probe throughput over the pointer R-tree at
    // 10k+ buckets.
    if (g >= 100 && ratio < 1.5) {
      std::fprintf(stderr,
                   "flat probe ratio %.2fx below 1.5x at %zu buckets\n",
                   ratio, id);
      ok = false;
    }
  }

  if (!sthist::bench::WriteBenchArtifact(
          options, "index",
          {{"speedup_10k", speedup_10k},
           {"flat_vs_rtree_10k", flat_vs_rtree_10k},
           {"flat_vs_rtree_50k", flat_vs_rtree_50k}})) {
    return 1;
  }

  if (!ok) {
    std::fprintf(stderr, "index bench below its acceptance bars — regression\n");
    return 1;
  }
  return 0;
}

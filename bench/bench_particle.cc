// Technical-report extra: the 18-dimensional particle-physics dataset
// (synthetic substitute). The paper reports initialization cutting the error
// by 30-50% at this dimensionality, with noticeably longer simulations.

#include "bench_common.h"

#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("18-d particle dataset — high-dimensional stress", scale);

  ParticleConfig data_config;
  if (scale.full) {
    data_config.cluster_tuples = 400000;
    data_config.noise_tuples = 100000;
  }
  Experiment experiment(MakeParticle(data_config));
  std::printf("dataset: %zu tuples, %zu dims\n\n", experiment.data().size(),
              experiment.data().dim());

  const std::vector<size_t> bucket_counts = {50, 100, 250};
  std::vector<ExperimentConfig> configs;
  for (size_t buckets : bucket_counts) {
    ExperimentConfig config;
    config.buckets = buckets;
    config.train_queries = scale.train_queries / 2;
    config.sim_queries = scale.sim_queries / 2;
    config.volume_fraction = 0.01;
    config.mineclus.alpha = 0.02;
    config.mineclus.width_fraction = 0.05;
    configs.push_back(config);
    config.initialize = true;
    configs.push_back(config);
  }
  std::vector<ExperimentResult> results =
      RunSweep(experiment, configs, scale.threads);

  TablePrinter table({"buckets", "uninit NAE", "init NAE", "reduction %",
                      "sim s"});
  for (size_t b = 0; b < bucket_counts.size(); ++b) {
    const ExperimentResult& uninit = results[2 * b];
    const ExperimentResult& init = results[2 * b + 1];
    table.AddRow({FormatSize(bucket_counts[b]), FormatDouble(uninit.nae, 3),
                  FormatDouble(init.nae, 3),
                  FormatDouble(100.0 * (1.0 - init.nae / uninit.nae), 1),
                  FormatDouble(init.sim_seconds, 2)});
  }
  table.Print();
  std::printf("\nexpected shape: 30-50%% error reduction from "
              "initialization, as in the technical report's 18-d "
              "experiment.\n");
  return 0;
}

// Ablation: which subspace clusterer initializes best? Reproduces the
// finding of the paper's precursor study (Khachatryan et al., SSDBM'11)
// that MineClus is the strongest initializer, here against CLIQUE and DOC
// on Gauss and Sky.

#include <memory>

#include "bench_common.h"

#include "clustering/clique.h"
#include "clustering/doc.h"
#include "core/thread_pool.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "histogram/stholes.h"
#include "histogram/trivial.h"
#include "init/initializer.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Ablation — MineClus vs CLIQUE vs DOC as initializer", scale);

  struct Panel {
    const char* name;
    GeneratedData data;
    MineClusConfig mineclus;
  };
  std::vector<Panel> panels;
  panels.push_back({"Gauss[1%]", BenchGauss(scale), GaussMineClus()});
  panels.push_back({"Sky[1%]", BenchSky(scale), SkyMineClus()});

  for (Panel& panel : panels) {
    Experiment experiment(std::move(panel.data));
    const Executor& executor = experiment.executor();

    ExperimentConfig base;
    base.train_queries = scale.train_queries;
    base.sim_queries = scale.sim_queries;
    base.volume_fraction = 0.01;
    auto [train, sim] = experiment.MakeWorkloads(base);

    // Clusterers under test.
    DocConfig doc_config;
    doc_config.alpha = panel.mineclus.alpha;
    doc_config.width_fraction = panel.mineclus.width_fraction;
    std::vector<std::unique_ptr<SubspaceClusterer>> clusterers;
    clusterers.push_back(
        std::make_unique<MineClusClusterer>(panel.mineclus));
    clusterers.push_back(std::make_unique<CliqueClusterer>(CliqueConfig{}));
    clusterers.push_back(std::make_unique<DocClusterer>(doc_config));

    TrivialHistogram trivial(experiment.domain(), experiment.total_tuples());
    double trivial_mae = MeanAbsoluteError(trivial, sim, executor);

    TablePrinter table({"initializer", "clusters", "buckets=50 NAE",
                        "buckets=100 NAE", "buckets=250 NAE"});

    const std::vector<size_t> bucket_counts = {50, 100, 250};
    // Each budget cell builds its own histogram against the shared
    // read-only executor and workloads, so the budgets run concurrently.
    auto measure_budgets = [&](const std::vector<SubspaceCluster>* clusters) {
      std::vector<double> nae(bucket_counts.size());
      ParallelFor(bucket_counts.size(), scale.threads, [&](size_t b) {
        STHolesConfig hc;
        hc.max_buckets = bucket_counts[b];
        STHoles hist(experiment.domain(), experiment.total_tuples(), hc);
        if (clusters != nullptr) {
          InitializeHistogram(*clusters, experiment.domain(), executor,
                              InitializerConfig{}, &hist);
        }
        Train(&hist, train, executor);
        double mae = SimulateAndMeasure(&hist, sim, executor, true);
        nae[b] = mae / trivial_mae;
      });
      return nae;
    };

    // The uninitialized reference row.
    {
      std::vector<std::string> row = {"(none)", "0"};
      for (double nae : measure_budgets(nullptr)) {
        row.push_back(FormatDouble(nae, 3));
      }
      table.AddRow(std::move(row));
    }

    for (const auto& clusterer : clusterers) {
      std::vector<SubspaceCluster> clusters =
          clusterer->Cluster(experiment.data(), experiment.domain());
      std::vector<std::string> row = {clusterer->name(),
                                      FormatSize(clusters.size())};
      for (double nae : measure_budgets(&clusters)) {
        row.push_back(FormatDouble(nae, 3));
      }
      table.AddRow(std::move(row));
    }

    std::printf("%s\n", panel.name);
    table.Print();
    std::printf("\n");
  }

  std::printf("expected shape: every initializer beats no initialization; "
              "MineClus is the most reliable across datasets (the SSDBM'11 "
              "finding), with DOC a noisier Monte-Carlo variant and CLIQUE "
              "limited by grid-connectivity cluster shapes.\n");
  return 0;
}

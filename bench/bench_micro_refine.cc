// Micro-benchmark: cost of one Refine (drill + merge) at various budgets.

#include <benchmark/benchmark.h>

#include "data/generators.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace {

using namespace sthist;

void BM_Refine(benchmark::State& state) {
  static GeneratedData* g = nullptr;
  static Executor* executor = nullptr;
  if (g == nullptr) {
    CrossConfig config;
    config.tuples_per_cluster = 20000;
    config.noise_tuples = 4000;
    g = new GeneratedData(MakeCross(config));
    executor = new Executor(g->data);
  }

  WorkloadConfig wc;
  wc.num_queries = 500;
  wc.volume_fraction = 0.01;
  wc.seed = 9;
  Workload queries = MakeWorkload(g->domain, wc);

  STHolesConfig hc;
  hc.max_buckets = static_cast<size_t>(state.range(0));
  STHoles hist(g->domain, static_cast<double>(g->data.size()), hc);

  size_t i = 0;
  for (auto _ : state) {
    hist.Refine(queries[i], *executor);
    i = (i + 1) % queries.size();
  }
  state.counters["buckets"] = static_cast<double>(hist.bucket_count());
}

BENCHMARK(BM_Refine)->Arg(10)->Arg(50)->Arg(100)->Arg(250);

}  // namespace

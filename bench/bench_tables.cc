// Tables 1 and 3: the dataset inventory — dimensionalities and tuple counts
// of every generated dataset, against the paper's numbers.

#include "bench_common.h"

#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Tables 1 and 3 — dataset inventory", scale);

  TablePrinter table({"dataset", "type", "dims", "tuples (bench)",
                      "tuples (paper)", "planted clusters"});

  auto add = [&](const char* name, const char* type, const char* paper,
                 const GeneratedData& g) {
    table.AddRow({name, type, FormatSize(g.data.dim()),
                  FormatSize(g.data.size()), paper,
                  FormatSize(g.truth.size())});
  };

  add("Cross", "synthetic", "22,000", BenchCross());
  add("Gauss", "synthetic", "110,000", BenchGauss(scale));
  add("Sky", "synthetic (SDSS substitute)", "~1,700,000", BenchSky(scale));
  add("Cross3d", "synthetic", "9,000", BenchCrossNd(3, scale));
  add("Cross4d", "synthetic", "360,000", BenchCrossNd(4, scale));
  add("Cross5d", "synthetic", "13,500,000", BenchCrossNd(5, scale));
  add("Particle", "synthetic (18-d substitute)", "5,000,000",
      MakeParticle(ParticleConfig{}));

  table.Print();
  std::printf("\nBench tuple counts are scaled for runtime; STHIST_FULL=1 "
              "restores paper-scale Sky/Cross4d/Cross5d. The Sky and "
              "Particle datasets substitute synthetic generators for the "
              "proprietary SDSS/physics data (see DESIGN.md §3).\n");
  return 0;
}

// Ablation (§4.1, Figure 6 discussion): extended bounding rectangles vs
// plain MBRs as initial buckets. The MBR of a subspace cluster silently
// raises its dimensionality and misdescribes the spanned dimensions; the
// extended BR preserves the subspace information.

#include "bench_common.h"

#include "eval/table.h"
#include "histogram/census.h"
#include "histogram/stholes.h"
#include "init/initializer.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Ablation — extended BR vs plain MBR initialization", scale);

  struct Panel {
    const char* name;
    GeneratedData data;
    MineClusConfig mineclus;
  };
  std::vector<Panel> panels;
  panels.push_back({"Gauss[1%]", BenchGauss(scale), GaussMineClus()});
  panels.push_back({"Sky[1%]", BenchSky(scale), SkyMineClus()});

  for (Panel& panel : panels) {
    Experiment experiment(std::move(panel.data));

    const std::vector<size_t> bucket_counts = {50, 100, 250};
    std::vector<ExperimentConfig> configs;
    for (size_t buckets : bucket_counts) {
      ExperimentConfig config;
      config.buckets = buckets;
      config.train_queries = scale.train_queries;
      config.sim_queries = scale.sim_queries;
      config.volume_fraction = 0.01;
      config.mineclus = panel.mineclus;
      configs.push_back(config);  // Uninitialized.

      config.initialize = true;
      config.initializer.use_extended_br = true;
      configs.push_back(config);  // Extended BR.

      config.initializer.use_extended_br = false;
      configs.push_back(config);  // Plain MBR.
    }
    std::vector<ExperimentResult> results =
        RunSweep(experiment, configs, scale.threads);

    TablePrinter table({"buckets", "extended-BR NAE", "plain-MBR NAE",
                        "uninit NAE"});
    for (size_t b = 0; b < bucket_counts.size(); ++b) {
      const ExperimentResult& uninit = results[3 * b];
      const ExperimentResult& extended = results[3 * b + 1];
      const ExperimentResult& mbr = results[3 * b + 2];
      table.AddRow({FormatSize(bucket_counts[b]),
                    FormatDouble(extended.nae, 3),
                    FormatDouble(mbr.nae, 3), FormatDouble(uninit.nae, 3)});
    }
    std::printf("%s\n", panel.name);
    table.Print();

    // The structural difference: right after initialization, only the
    // extended BRs are exactly-spanning subspace buckets; MBRs stop at the
    // outermost member and are classified as full-dimensional.
    {
      STHolesConfig hc;
      hc.max_buckets = 100;
      const std::vector<SubspaceCluster>& clusters =
          experiment.Clusters(panel.mineclus);

      STHoles extended(experiment.domain(), experiment.total_tuples(), hc);
      InitializerConfig ic;
      InitializeHistogram(clusters, experiment.domain(),
                          experiment.executor(), ic, &extended);
      STHoles mbr(experiment.domain(), experiment.total_tuples(), hc);
      ic.use_extended_br = false;
      InitializeHistogram(clusters, experiment.domain(),
                          experiment.executor(), ic, &mbr);
      std::printf("subspace buckets right after init (100 budget): "
                  "extended-BR %zu, plain-MBR %zu\n\n",
                  CensusSubspaceBuckets(extended).subspace_buckets,
                  CensusSubspaceBuckets(mbr).subspace_buckets);
    }
  }

  std::printf("expected shape: both initializations beat uninit. With dense "
              "member sets the MBR's bounds converge to the extended BR, so "
              "the NAE gap is small — but only the extended BR yields "
              "exactly-spanning subspace buckets (the paper's Fig. 6 "
              "argument applies with full force to small clusters).\n");
  return 0;
}

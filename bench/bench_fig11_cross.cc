// Figure 11: normalized error of initialized vs uninitialized STHoles on the
// Cross dataset, 1%-volume queries, bucket budgets 50..250.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Figure 11 — Cross[1%], initialized vs uninitialized", scale);

  Experiment experiment(BenchCross());

  FigureSpec spec;
  spec.title = "Cross[1%] normalized absolute error";
  spec.bucket_counts = scale.bucket_sweep;
  spec.threads = scale.threads;
  spec.base.train_queries = scale.train_queries;
  spec.base.sim_queries = scale.sim_queries;
  spec.base.volume_fraction = 0.01;
  spec.base.mineclus = CrossMineClus();
  spec.series = {
      {"uninit", false, false, {0.190, 0.145, 0.110, 0.085, 0.066}},
      {"init", true, false, {0.066, 0.060, 0.055, 0.050, 0.047}},
  };
  RunFigure(&experiment, spec);

  std::printf("expected shape: init beats uninit at every budget; only at "
              "250 buckets does uninit approach init@50.\n");
  return 0;
}

// Baseline panorama: for matched synopsis budgets, compare
//   - the trivial histogram H0 (NAE 1 by definition),
//   - AVI: per-attribute equi-depth histograms + independence assumption,
//   - uniform sampling at the same footprint,
//   - a static equi-width grid built by scanning the data,
//   - MHIST-2 (static MaxDiff partitioning, the paper's [23]),
//   - STGrid-style self-tuning (grid + total-cardinality feedback),
//   - uninitialized STHoles (tree + per-region feedback),
//   - MineClus-initialized STHoles (the paper's contribution).
// The paper deliberately skips static baselines (§5, citing [29]); this
// harness adds them back for library users who want the full picture.

#include <cmath>
#include <memory>

#include "bench_common.h"

#include "eval/metrics.h"
#include "eval/table.h"
#include "histogram/avi.h"
#include "histogram/equiwidth.h"
#include "histogram/isomer.h"
#include "histogram/mhist.h"
#include "histogram/sampling.h"
#include "histogram/stgrid.h"
#include "histogram/stholes.h"
#include "histogram/trivial.h"
#include "init/initializer.h"

namespace {

using namespace sthist;

// Largest grid resolution whose cell count stays within `budget`.
size_t CellsForBudget(size_t budget, size_t dim) {
  size_t cells = 2;
  while (std::pow(static_cast<double>(cells + 1),
                  static_cast<double>(dim)) <=
         static_cast<double>(budget)) {
    ++cells;
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Baselines — trivial / static grid / STGrid / STHoles / "
              "STHoles+init",
              scale);

  struct Panel {
    const char* name;
    GeneratedData data;
    MineClusConfig mineclus;
  };
  std::vector<Panel> panels;
  panels.push_back({"Cross[1%]", BenchCross(), CrossMineClus()});
  panels.push_back({"Sky[1%]", BenchSky(scale), SkyMineClus()});

  for (Panel& panel : panels) {
    Experiment experiment(std::move(panel.data));
    const Executor& executor = experiment.executor();
    const size_t dim = experiment.data().dim();

    ExperimentConfig base;
    base.train_queries = scale.train_queries;
    base.sim_queries = scale.sim_queries;
    base.volume_fraction = 0.01;
    auto [train, sim] = experiment.MakeWorkloads(base);

    TrivialHistogram trivial(experiment.domain(), experiment.total_tuples());
    double trivial_mae = MeanAbsoluteError(trivial, sim, executor);

    TablePrinter table({"histogram", "budget used", "NAE"});
    table.AddRow({"trivial (H0)", "1", "1.000"});

    for (size_t budget : {64u, 256u}) {
      size_t cells = CellsForBudget(budget, dim);

      AviHistogram avi(experiment.data(), experiment.domain(),
                       std::max<size_t>(budget / dim, 2));
      double avi_mae = MeanAbsoluteError(avi, sim, executor);
      table.AddRow({"AVI equi-depth (" + FormatSize(budget) + ")",
                    FormatSize(avi.bucket_count()),
                    FormatDouble(avi_mae / trivial_mae, 3)});

      SamplingEstimator sampling(experiment.data(), budget, 31);
      double sampling_mae = MeanAbsoluteError(sampling, sim, executor);
      table.AddRow({"sampling (" + FormatSize(budget) + ")",
                    FormatSize(sampling.bucket_count()),
                    FormatDouble(sampling_mae / trivial_mae, 3)});

      EquiWidthHistogram static_grid(experiment.data(), experiment.domain(),
                                     cells);
      double static_mae = MeanAbsoluteError(static_grid, sim, executor);
      table.AddRow({"static equi-width (" + FormatSize(budget) + ")",
                    FormatSize(static_grid.bucket_count()),
                    FormatDouble(static_mae / trivial_mae, 3)});

      MHistConfig mhist_config;
      mhist_config.max_buckets = budget;
      MHistHistogram mhist(experiment.data(), experiment.domain(),
                           mhist_config);
      double mhist_mae = MeanAbsoluteError(mhist, sim, executor);
      table.AddRow({"MHist MaxDiff (" + FormatSize(budget) + ")",
                    FormatSize(mhist.bucket_count()),
                    FormatDouble(mhist_mae / trivial_mae, 3)});

      STGridConfig grid_config;
      grid_config.cells_per_dim = cells;
      grid_config.restructure_interval = 100;
      STGridHistogram stgrid(experiment.domain(), experiment.total_tuples(),
                             grid_config);
      Train(&stgrid, train, executor);
      double stgrid_mae = SimulateAndMeasure(&stgrid, sim, executor, true);
      table.AddRow({"STGrid (" + FormatSize(budget) + ")",
                    FormatSize(stgrid.bucket_count()),
                    FormatDouble(stgrid_mae / trivial_mae, 3)});

      IsomerConfig isomer_config;
      isomer_config.max_buckets = budget;
      IsomerHistogram isomer(experiment.domain(), experiment.total_tuples(),
                             isomer_config);
      Train(&isomer, train, executor);
      double isomer_mae = SimulateAndMeasure(&isomer, sim, executor, true);
      table.AddRow({"ISOMER (" + FormatSize(budget) + ")",
                    FormatSize(isomer.bucket_count()),
                    FormatDouble(isomer_mae / trivial_mae, 3)});

      STHolesConfig holes_config;
      holes_config.max_buckets = budget;
      STHoles holes(experiment.domain(), experiment.total_tuples(),
                    holes_config);
      Train(&holes, train, executor);
      double holes_mae = SimulateAndMeasure(&holes, sim, executor, true);
      table.AddRow({"STHoles (" + FormatSize(budget) + ")",
                    FormatSize(holes.bucket_count()),
                    FormatDouble(holes_mae / trivial_mae, 3)});

      STHoles init(experiment.domain(), experiment.total_tuples(),
                   holes_config);
      InitializeHistogram(experiment.Clusters(panel.mineclus),
                          experiment.domain(), executor, InitializerConfig{},
                          &init);
      Train(&init, train, executor);
      double init_mae = SimulateAndMeasure(&init, sim, executor, true);
      table.AddRow({"STHoles+init (" + FormatSize(budget) + ")",
                    FormatSize(init.bucket_count()),
                    FormatDouble(init_mae / trivial_mae, 3)});
    }

    std::printf("%s\n", panel.name);
    table.Print();
    std::printf("\n");
  }

  std::printf("expected shape: self-tuning beats the rigid grids at equal "
              "budgets on clustered data, STHoles beats STGrid (richer "
              "feedback), and initialization beats plain STHoles. AVI "
              "collapses where attributes correlate. MHist can win outright "
              "on easy static data — its price is full scans at build time "
              "and staleness on change (see examples/drift_adaptation).\n");
  return 0;
}

// Ablation (§5.1): query-center distribution — uniform vs data-following
// centers. The paper notes the trends are the same across workload
// patterns; this harness verifies that.

#include "bench_common.h"

#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Ablation — query-center distribution, Gauss[1%]", scale);

  Experiment experiment(BenchGauss(scale));

  const std::vector<CenterDistribution> center_kinds = {
      CenterDistribution::kUniform, CenterDistribution::kData};
  const std::vector<size_t> bucket_counts = {50, 100, 250};
  std::vector<ExperimentConfig> configs;
  for (CenterDistribution centers : center_kinds) {
    for (size_t buckets : bucket_counts) {
      ExperimentConfig config;
      config.buckets = buckets;
      config.train_queries = scale.train_queries;
      config.sim_queries = scale.sim_queries;
      config.volume_fraction = 0.01;
      config.centers = centers;
      config.mineclus = GaussMineClus();
      configs.push_back(config);
      config.initialize = true;
      configs.push_back(config);
    }
  }
  std::vector<ExperimentResult> results =
      RunSweep(experiment, configs, scale.threads);

  TablePrinter table({"centers", "buckets", "uninit NAE", "init NAE",
                      "ratio"});
  for (size_t c = 0; c < center_kinds.size(); ++c) {
    for (size_t b = 0; b < bucket_counts.size(); ++b) {
      size_t cell = 2 * (c * bucket_counts.size() + b);
      const ExperimentResult& uninit = results[cell];
      const ExperimentResult& init = results[cell + 1];
      table.AddRow(
          {center_kinds[c] == CenterDistribution::kUniform ? "uniform"
                                                           : "data",
           FormatSize(bucket_counts[b]), FormatDouble(uninit.nae, 3),
           FormatDouble(init.nae, 3),
           FormatDouble(init.nae / uninit.nae, 2)});
    }
  }
  table.Print();
  std::printf("\nexpected shape: the initialized histogram wins under both "
              "center distributions (the paper: \"the trends have been the "
              "same\").\n");
  return 0;
}

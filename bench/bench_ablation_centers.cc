// Ablation (§5.1): query-center distribution — uniform vs data-following
// centers. The paper notes the trends are the same across workload
// patterns; this harness verifies that.

#include "bench_common.h"

#include "eval/table.h"

int main() {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale();
  PrintBanner("Ablation — query-center distribution, Gauss[1%]", scale);

  Experiment experiment(BenchGauss(scale));

  TablePrinter table({"centers", "buckets", "uninit NAE", "init NAE",
                      "ratio"});
  for (CenterDistribution centers :
       {CenterDistribution::kUniform, CenterDistribution::kData}) {
    for (size_t buckets : {50u, 100u, 250u}) {
      ExperimentConfig config;
      config.buckets = buckets;
      config.train_queries = scale.train_queries;
      config.sim_queries = scale.sim_queries;
      config.volume_fraction = 0.01;
      config.centers = centers;
      config.mineclus = GaussMineClus();

      ExperimentResult uninit = experiment.Run(config);
      config.initialize = true;
      ExperimentResult init = experiment.Run(config);

      table.AddRow(
          {centers == CenterDistribution::kUniform ? "uniform" : "data",
           FormatSize(buckets), FormatDouble(uninit.nae, 3),
           FormatDouble(init.nae, 3),
           FormatDouble(init.nae / uninit.nae, 2)});
    }
  }
  table.Print();
  std::printf("\nexpected shape: the initialized histogram wins under both "
              "center distributions (the paper: \"the trends have been the "
              "same\").\n");
  return 0;
}

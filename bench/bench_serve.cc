// Serving-layer throughput harness: read throughput vs reader-thread count,
// with the refiner idle and with it live under a saturating feedback stream.
// The number that matters is the ratio per row: snapshot isolation means a
// publishing refiner costs readers almost nothing (readers never take the
// writer's locks — they only swap shared_ptr refcounts), so throughput keeps
// scaling with reader threads while refinement runs.
//
// Exits non-zero if a read ever blocks long enough to suggest reader/writer
// coupling (concurrent-refinement throughput collapsing far below idle
// throughput at the same thread count).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/generators.h"
#include "eval/table.h"
#include "histogram/stholes.h"
#include "serve/histogram_service.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist::bench {
namespace {

struct ServeBenchSetup {
  GeneratedData g;
  std::unique_ptr<Executor> executor;
  Workload feedback;
  Workload probes;
};

ServeBenchSetup MakeServeSetup(const Scale& scale, uint64_t seed_offset) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = scale.full ? 10000 : 3000;
  data_config.noise_tuples = data_config.tuples_per_cluster / 5;
  ServeBenchSetup setup{MakeCross(data_config), {}, {}, {}};
  setup.executor = std::make_unique<Executor>(setup.g.data);

  WorkloadConfig wc;
  wc.num_queries = scale.full ? 1000 : 300;
  wc.volume_fraction = 0.01;
  wc.seed = 31 + seed_offset;
  setup.feedback = MakeWorkload(setup.g.domain, wc);
  wc.num_queries = 256;
  wc.seed = 97 + seed_offset;
  setup.probes = MakeWorkload(setup.g.domain, wc);
  return setup;
}

std::unique_ptr<STHoles> MakeTrainedHistogram(const ServeBenchSetup& setup,
                                              size_t buckets) {
  STHolesConfig config;
  config.max_buckets = buckets;
  auto hist = std::make_unique<STHoles>(
      setup.g.domain, static_cast<double>(setup.g.data.size()), config);
  // Pre-train so the served snapshot has a realistic bucket tree.
  for (const Box& q : setup.feedback) hist->Refine(q, *setup.executor);
  return hist;
}

struct Throughput {
  double reads_per_second = 0.0;
  size_t publishes = 0;
  size_t feedback_applied = 0;
  double max_publish_ms = 0.0;
};

// Runs `readers` threads, each issuing `reads_per_thread` estimates against
// the service; when `refine` is set, a feeder thread keeps the feedback
// queue saturated for the whole measurement window.
Throughput MeasureReads(const ServeBenchSetup& setup, size_t buckets,
                        size_t readers, size_t reads_per_thread, bool refine) {
  HistogramService service(MakeTrainedHistogram(setup, buckets),
                           *setup.executor);
  ServiceStats before = service.stats();

  std::atomic<bool> start{false};
  std::atomic<bool> stop_feeder{false};
  std::thread feeder;
  if (refine) {
    feeder = std::thread([&] {
      while (!start.load()) std::this_thread::yield();
      size_t i = 0;
      while (!stop_feeder.load()) {
        (void)service.SubmitFeedback(setup.feedback[i % setup.feedback.size()]);
        ++i;
      }
    });
  }

  std::vector<std::thread> threads;
  threads.reserve(readers);
  std::atomic<double> sink{0.0};  // Defeats dead-code elimination.
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      while (!start.load()) std::this_thread::yield();
      double local = 0.0;
      for (size_t i = 0; i < reads_per_thread; ++i) {
        local += service.Estimate(setup.probes[(r + i) % setup.probes.size()]);
      }
      sink.fetch_add(local);
    });
  }

  auto t0 = std::chrono::steady_clock::now();
  start.store(true);
  for (std::thread& t : threads) t.join();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stop_feeder.store(true);
  if (feeder.joinable()) feeder.join();
  service.Stop();

  ServiceStats after = service.stats();
  Throughput result;
  result.reads_per_second =
      static_cast<double>(readers * reads_per_thread) / seconds;
  // Deltas, not absolutes: every measured service shares the process-wide
  // registry, so its cells carry over from the previous rows.
  result.publishes = after.snapshot_epoch - before.snapshot_epoch;
  result.feedback_applied = after.feedback_applied - before.feedback_applied;
  result.max_publish_ms = after.max_publish_seconds * 1e3;
  return result;
}

// COW-vs-clone publish head-to-head. Both services run the identical live
// load (saturating feeder + concurrent readers); the only difference is
// ServiceConfig::clone_publish. Each run records into a private registry so
// the publish-latency histogram covers exactly that run. The COW publish
// hands out the working tree's shared root in O(touched path), so its
// publish cost must be strictly below the deep clone's — that is the whole
// point of the copy-on-write tree, and the gate in main() enforces it.
struct PublishProfile {
  double live_rps = 0.0;
  double publish_p99_ms = 0.0;
  double publish_mean_ms = 0.0;
  size_t publishes = 0;
};

PublishProfile MeasurePublish(const ServeBenchSetup& setup, size_t buckets,
                              size_t readers, size_t reads_per_thread,
                              bool clone_publish) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.clone_publish = clone_publish;
  config.metrics = &registry;
  HistogramService service(MakeTrainedHistogram(setup, buckets),
                           *setup.executor, config);

  std::atomic<bool> start{false};
  std::atomic<bool> stop_feeder{false};
  std::thread feeder([&] {
    while (!start.load()) std::this_thread::yield();
    size_t i = 0;
    while (!stop_feeder.load()) {
      (void)service.SubmitFeedback(setup.feedback[i % setup.feedback.size()]);
      ++i;
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(readers);
  std::atomic<double> sink{0.0};
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      while (!start.load()) std::this_thread::yield();
      double local = 0.0;
      for (size_t i = 0; i < reads_per_thread; ++i) {
        local += service.Estimate(setup.probes[(r + i) % setup.probes.size()]);
      }
      sink.fetch_add(local);
    });
  }
  auto t0 = std::chrono::steady_clock::now();
  start.store(true);
  for (std::thread& t : threads) t.join();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stop_feeder.store(true);
  feeder.join();
  service.Stop();

  PublishProfile profile;
  profile.live_rps = static_cast<double>(readers * reads_per_thread) / seconds;
  for (const auto& latency : registry.Snapshot().latencies) {
    if (latency.name == "serve.service.publish_seconds") {
      profile.publishes = latency.count;
      profile.publish_p99_ms = ApproxP99Seconds(latency) * 1e3;
      profile.publish_mean_ms =
          latency.count > 0
              ? latency.sum_seconds / static_cast<double>(latency.count) * 1e3
              : 0.0;
    }
  }
  return profile;
}

// Read throughput while a background re-initialization is in flight,
// relative to the live steady state at the same reader count. The builder is
// parked inside the rebuild hook (zero CPU, like a rebuild blocked on a slow
// oracle), so any throughput loss would mean readers couple to the rebuild —
// the hot-swap contract says they never do.
double MeasureRebuildWindowRatio(const ServeBenchSetup& setup, size_t buckets,
                                 size_t readers, size_t reads_per_thread) {
  Throughput steady =
      MeasureReads(setup, buckets, readers, reads_per_thread, true);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool builder_entered = false;
  bool release_builder = false;
  std::unique_ptr<STHoles> reference = MakeTrainedHistogram(setup, buckets);
  const STHoles* reference_raw = reference.get();

  ServiceConfig config;
  config.reinit.enabled = true;
  config.reinit.domain = setup.g.domain;
  config.reinit.background = true;
  config.reinit.detector.window = 16;
  config.reinit.detector.trigger_nae = 0.05;
  config.reinit.detector.rearm_nae = 0.01;
  config.reinit.detector.cooldown = 64;
  config.reinit.detector.retrigger_backstop = 1u << 20;  // One rebuild/run.
  config.reinit.rebuild_override = [&](const Dataset&, double) {
    {
      std::unique_lock<std::mutex> lock(gate_mutex);
      builder_entered = true;
      gate_cv.notify_all();
      gate_cv.wait(lock, [&] { return release_builder; });
    }
    return reference_raw->Clone();
  };

  HistogramService service(MakeTrainedHistogram(setup, buckets),
                           *setup.executor, config);

  // Garbage served estimates force the trigger as soon as the window fills.
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    size_t i = 0;
    while (!builder_entered && i < 100000) {
      lock.unlock();
      (void)service.SubmitFeedback(setup.feedback[i % setup.feedback.size()],
                                   1e9);
      ++i;
      lock.lock();
    }
    if (!gate_cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return builder_entered; })) {
      std::fprintf(stderr, "FAIL: stagnation trigger never fired\n");
      std::exit(EXIT_FAILURE);
    }
  }

  // Rebuild parked in flight: measure reads under the same live feedback
  // load as the steady-state row.
  std::atomic<bool> start{false};
  std::atomic<bool> stop_feeder{false};
  std::thread feeder([&] {
    while (!start.load()) std::this_thread::yield();
    size_t i = 0;
    while (!stop_feeder.load()) {
      (void)service.SubmitFeedback(setup.feedback[i % setup.feedback.size()],
                                   1e9);
      ++i;
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(readers);
  std::atomic<double> sink{0.0};
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      while (!start.load()) std::this_thread::yield();
      double local = 0.0;
      for (size_t i = 0; i < reads_per_thread; ++i) {
        local += service.Estimate(setup.probes[(r + i) % setup.probes.size()]);
      }
      sink.fetch_add(local);
    });
  }
  auto t0 = std::chrono::steady_clock::now();
  start.store(true);
  for (std::thread& t : threads) t.join();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stop_feeder.store(true);
  feeder.join();
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release_builder = true;
  }
  gate_cv.notify_all();
  service.Stop();

  double rebuild_rps =
      static_cast<double>(readers * reads_per_thread) / seconds;
  std::printf(
      "rebuild window: %.0f reads/s vs steady %.0f reads/s "
      "(%zu readers, swap %s)\n",
      rebuild_rps, steady.reads_per_second, readers,
      service.stats().reinit_swaps_completed > 0 ? "completed" : "pending");
  return rebuild_rps / steady.reads_per_second;
}

}  // namespace
}  // namespace sthist::bench

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  BenchOptions options = ParseBenchOptions(argc, argv);
  Scale scale = GetScale(options);
  PrintBanner("Serving layer: read throughput vs reader threads", scale);

  ServeBenchSetup setup = MakeServeSetup(scale, options.seed);
  const size_t buckets = 100;
  const size_t reads_per_thread = scale.full ? 20000 : 5000;

  std::printf("cross 2-d, %zu tuples, %zu-bucket STHoles, %zu reads/thread\n",
              setup.g.data.size(), buckets, reads_per_thread);

  TablePrinter table({"readers", "idle refiner reads/s", "live refiner reads/s",
                      "ratio", "publishes", "feedback applied",
                      "max publish ms"});
  double worst_ratio = 1e300;
  for (size_t readers : {1u, 2u, 4u, 8u}) {
    Throughput idle =
        MeasureReads(setup, buckets, readers, reads_per_thread, false);
    Throughput live =
        MeasureReads(setup, buckets, readers, reads_per_thread, true);
    double ratio = live.reads_per_second / idle.reads_per_second;
    worst_ratio = std::min(worst_ratio, ratio);
    table.AddRow({FormatSize(readers), FormatDouble(idle.reads_per_second, 0),
                  FormatDouble(live.reads_per_second, 0),
                  FormatDouble(ratio, 2), FormatSize(live.publishes),
                  FormatSize(live.feedback_applied),
                  FormatDouble(live.max_publish_ms, 2)});
  }
  table.Print();

  // COW vs clone-on-publish under the identical live load. Publish cost is
  // machine-independent in *ratio* form: both runs execute on the same box,
  // so the deep clone's per-publish cost must exceed the COW handoff's
  // regardless of absolute speed.
  PublishProfile cow =
      MeasurePublish(setup, buckets, 2, reads_per_thread, false);
  PublishProfile clone =
      MeasurePublish(setup, buckets, 2, reads_per_thread, true);
  const double publish_mean_ratio =
      clone.publish_mean_ms / std::max(cow.publish_mean_ms, 1e-12);
  const double publish_p99_ratio =
      clone.publish_p99_ms / std::max(cow.publish_p99_ms, 1e-12);
  const double cow_live_ratio = cow.live_rps / clone.live_rps;
  std::printf(
      "publish cow vs clone: mean %.4f ms vs %.4f ms (%.1fx), p99 %.4f ms "
      "vs %.4f ms (%.1fx), live reads %.0f/s vs %.0f/s (%.2fx), "
      "%zu vs %zu publishes\n",
      cow.publish_mean_ms, clone.publish_mean_ms, publish_mean_ratio,
      cow.publish_p99_ms, clone.publish_p99_ms, publish_p99_ratio,
      cow.live_rps, clone.live_rps, cow_live_ratio, cow.publishes,
      clone.publishes);

  // Hot-swap liveness: read throughput with a rebuild parked in flight must
  // stay within 10% of the live steady state (the ISSUE's acceptance bound)
  // on a machine with cores to spare; tighter boxes only report.
  const double rebuild_ratio =
      MeasureRebuildWindowRatio(setup, buckets, 2, reads_per_thread);
  const bool many_cores = std::thread::hardware_concurrency() > 2;
  const double rebuild_floor = many_cores ? 0.9 : 0.0;

  // On a many-core box the live/idle ratio sits near 1.0 (readers never
  // touch the refiner's locks); on a single core the refiner and feeder
  // legitimately steal CPU time from readers — and COW publishing moves
  // the copy work into refinement, so the refiner's share grows with
  // publish cadence there. Flag only a collapse below what CPU sharing
  // can explain — that would mean readers are *blocking* on the writer.
  const double floor = many_cores ? 0.5 : 0.1;
  // The artifact carries the headline number plus the full metrics
  // registry (publish latency histogram, drop counters, ...).
  if (!WriteBenchArtifact(
          options, "serve",
          {{"worst_live_idle_ratio", worst_ratio},
           {"floor", floor},
           {"rebuild_window_ratio", rebuild_ratio},
           {"rebuild_floor", rebuild_floor},
           {"publish_mean_ms_cow", cow.publish_mean_ms},
           {"publish_mean_ms_clone", clone.publish_mean_ms},
           {"publish_p99_ms_cow", cow.publish_p99_ms},
           {"publish_p99_ms_clone", clone.publish_p99_ms},
           {"publish_mean_ratio", publish_mean_ratio},
           {"publish_p99_ratio", publish_p99_ratio},
           {"cow_live_ratio", cow_live_ratio}})) {
    return EXIT_FAILURE;
  }

  // The COW publish gates. The mean is continuous, so "strictly cheaper" is
  // a robust same-box comparison; the p99 comes from log-scale buckets and
  // only has to not regress (both publishes can land in the lowest bucket).
  // Live read throughput under COW must hold the clone path's level — the
  // zero-copy publish exists to make publishes cheaper, never to tax
  // readers; the threshold leaves room for scheduler noise on busy runners.
  if (cow.publishes == 0 || clone.publishes == 0) {
    std::fprintf(stderr, "FAIL: publish head-to-head never published "
                 "(cow %zu, clone %zu)\n", cow.publishes, clone.publishes);
    return EXIT_FAILURE;
  }
  if (publish_mean_ratio <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: COW publish is not strictly cheaper than the deep "
                 "clone (mean %.4f ms vs %.4f ms)\n",
                 cow.publish_mean_ms, clone.publish_mean_ms);
    return EXIT_FAILURE;
  }
  if (publish_p99_ratio < 1.0) {
    std::fprintf(stderr,
                 "FAIL: COW publish p99 regressed vs the deep clone "
                 "(%.4f ms vs %.4f ms)\n",
                 cow.publish_p99_ms, clone.publish_p99_ms);
    return EXIT_FAILURE;
  }
  // On a box with cores to spare, readers must not pay for the zero-copy
  // publish. On 1-2 cores the path-copy work that COW moves from publish
  // into refinement legitimately competes with readers for CPU, so those
  // machines only report the ratio.
  if (many_cores && cow_live_ratio < 0.9) {
    std::fprintf(stderr,
                 "FAIL: COW publishing dented live read throughput vs the "
                 "clone path (%.2fx)\n",
                 cow_live_ratio);
    return EXIT_FAILURE;
  }

  if (worst_ratio < floor) {
    std::fprintf(stderr,
                 "FAIL: concurrent refinement collapsed read throughput "
                 "(worst live/idle ratio %.2f < %.2f) — readers appear to "
                 "block on the writer\n",
                 worst_ratio, floor);
    return EXIT_FAILURE;
  }
  if (rebuild_ratio < rebuild_floor) {
    std::fprintf(stderr,
                 "FAIL: an in-flight rebuild dented read throughput "
                 "(rebuild/steady ratio %.2f < %.2f) — the hot swap "
                 "appears to block readers\n",
                 rebuild_ratio, rebuild_floor);
    return EXIT_FAILURE;
  }
  std::printf("worst live/idle ratio %.2f (floor %.2f), rebuild-window "
              "ratio %.2f (floor %.2f): readers never block on refinement "
              "or rebuilds\n",
              worst_ratio, floor, rebuild_ratio, rebuild_floor);
  return EXIT_SUCCESS;
}

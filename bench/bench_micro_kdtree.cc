// Micro-benchmark: k-d tree range counting vs the naive scan it replaces,
// across dataset sizes and query volumes.

#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "data/generators.h"
#include "index/kdtree.h"
#include "workload/workload.h"

namespace {

using namespace sthist;

GeneratedData MakeData(size_t tuples) {
  GaussConfig config;
  config.cluster_tuples = tuples * 9 / 10;
  config.noise_tuples = tuples / 10;
  return MakeGauss(config);
}

void BM_KdTreeCount(benchmark::State& state) {
  GeneratedData g = MakeData(static_cast<size_t>(state.range(0)));
  KdTree tree(g.data);
  WorkloadConfig wc;
  wc.num_queries = 200;
  wc.volume_fraction = 0.01;
  Workload queries = MakeWorkload(g.domain, wc);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Count(queries[i]));
    i = (i + 1) % queries.size();
  }
}
BENCHMARK(BM_KdTreeCount)->Arg(10000)->Arg(100000)->Arg(500000);

void BM_NaiveScanCount(benchmark::State& state) {
  GeneratedData g = MakeData(static_cast<size_t>(state.range(0)));
  WorkloadConfig wc;
  wc.num_queries = 50;
  wc.volume_fraction = 0.01;
  Workload queries = MakeWorkload(g.domain, wc);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.data.CountInBox(queries[i]));
    i = (i + 1) % queries.size();
  }
}
BENCHMARK(BM_NaiveScanCount)->Arg(10000)->Arg(100000);

void BM_KdTreeBuild(benchmark::State& state) {
  GeneratedData g = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    KdTree tree(g.data);
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_KdTreeBuild)->Arg(10000)->Arg(100000);

}  // namespace

// Figure 17: error vs amount of training, Cross4d[1%], 100 buckets. The
// histogram stops learning after the training phase (unlike the other
// experiments). Initialization renders training almost unnecessary; the
// uninitialized histogram improves with training but even 1,000 queries do
// not find the four large clusters.

#include "bench_common.h"

#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Figure 17 — training-volume sweep, Cross4d[1%], 100 buckets",
              scale);

  Experiment experiment(BenchCrossNd(4, scale));

  const std::vector<size_t> training_sizes = {50, 100, 250, 1000};
  const std::vector<double> paper_uninit = {0.620, 0.550, 0.480, 0.420};
  const std::vector<double> paper_init = {0.120, 0.120, 0.120, 0.120};

  std::vector<ExperimentConfig> configs;
  for (size_t training : training_sizes) {
    ExperimentConfig config;
    config.buckets = 100;
    config.train_queries = training;
    config.sim_queries = scale.sim_queries;
    config.volume_fraction = 0.01;
    config.learn_during_sim = false;  // Refinement frozen after training.
    config.mineclus = CrossMineClus();
    configs.push_back(config);
    config.initialize = true;
    configs.push_back(config);
  }
  std::vector<ExperimentResult> results =
      RunSweep(experiment, configs, scale.threads);

  TablePrinter table({"training queries", "uninit NAE", "uninit (paper)",
                      "init NAE", "init (paper)"});
  for (size_t i = 0; i < training_sizes.size(); ++i) {
    const ExperimentResult& uninit = results[2 * i];
    const ExperimentResult& init = results[2 * i + 1];
    table.AddRow({FormatSize(training_sizes[i]),
                  FormatDouble(uninit.nae, 3), FormatDouble(paper_uninit[i], 3),
                  FormatDouble(init.nae, 3), FormatDouble(paper_init[i], 3)});
  }
  table.Print();
  std::printf("\nexpected shape: init is flat — the clusters are already "
              "found, training adds almost nothing; uninit improves with "
              "training but stays far worse even at 1,000 queries.\n");
  return 0;
}

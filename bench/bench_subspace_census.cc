// §5.3 subspace-bucket census: every 100 queries, count subspace buckets in
// the initialized and uninitialized histograms. The paper reports that the
// uninitialized histogram never creates a single subspace bucket, while the
// initialized one starts with several that survive longer at larger budgets.

#include "bench_common.h"

#include "eval/table.h"
#include "histogram/census.h"
#include "histogram/stholes.h"
#include "init/initializer.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Subspace-bucket census over training, Sky[1%]", scale);

  Experiment experiment(BenchSky(scale));
  const Executor& executor = experiment.executor();

  WorkloadConfig wc;
  wc.num_queries = 2 * scale.train_queries;  // The paper's 2,000 at full.
  wc.volume_fraction = 0.01;
  Workload queries = MakeWorkload(experiment.domain(), wc);

  const std::vector<SubspaceCluster>& clusters =
      experiment.Clusters(SkyMineClus());

  for (size_t buckets : {50u, 100u, 250u}) {
    STHolesConfig config;
    config.max_buckets = buckets;
    STHoles uninit(experiment.domain(), experiment.total_tuples(), config);
    STHoles init(experiment.domain(), experiment.total_tuples(), config);
    InitializeHistogram(clusters, experiment.domain(), executor,
                        InitializerConfig{}, &init);

    TablePrinter table({"queries", "uninit subspace buckets",
                        "init subspace buckets", "init total"});
    table.AddRow({"0", FormatSize(CensusSubspaceBuckets(uninit).subspace_buckets),
                  FormatSize(CensusSubspaceBuckets(init).subspace_buckets),
                  FormatSize(init.bucket_count())});
    for (size_t i = 0; i < queries.size(); ++i) {
      uninit.Refine(queries[i], executor);
      init.Refine(queries[i], executor);
      if ((i + 1) % 100 == 0) {
        table.AddRow({FormatSize(i + 1),
                      FormatSize(CensusSubspaceBuckets(uninit).subspace_buckets),
                      FormatSize(CensusSubspaceBuckets(init).subspace_buckets),
                      FormatSize(init.bucket_count())});
      }
    }
    std::printf("budget = %zu buckets\n", buckets);
    table.Print();
    std::printf("\n");
  }

  std::printf("expected shape: the uninit column is essentially zero — "
              "drilling cannot invent subspace buckets from full-space "
              "feedback (sibling-merge enclosure growth can very rarely "
              "produce a spanning box); init starts with many, and they "
              "survive longer at larger budgets.\n");
  return 0;
}

// Robustness harness: STHoles accuracy as a function of the fault-injection
// rate. The training workload and feedback oracle are corrupted at each rate
// (testing/fault_injection.h) while error is still measured against the true
// engine on the clean simulation workload, so the NAE column isolates how
// much accuracy the degradation machinery gives up — not measurement noise.

#include <cstdio>

#include "bench_common.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Robustness — Cross[1%], error vs injected fault rate", scale);

  Experiment experiment(BenchCross());

  ExperimentConfig base;
  base.buckets = 100;
  base.train_queries = scale.train_queries;
  base.sim_queries = scale.sim_queries;
  base.volume_fraction = 0.01;

  const double rates[] = {0.0, 0.01, 0.05, 0.10, 0.25, 0.50};

  std::vector<ExperimentConfig> configs;
  for (double rate : rates) {
    ExperimentConfig config = base;
    config.faults.rate = rate;
    configs.push_back(config);
  }
  std::vector<ExperimentResult> results =
      RunSweep(experiment, configs, scale.threads);

  TablePrinter table({"fault rate", "NAE", "faults", "rejected", "sanitized",
                      "clamped", "repaired"});
  double clean_nae = 0.0;
  for (size_t i = 0; i < configs.size(); ++i) {
    const ExperimentResult& r = results[i];
    if (configs[i].faults.rate == 0.0) clean_nae = r.nae;
    table.AddRow({FormatDouble(configs[i].faults.rate, 2),
                  FormatDouble(r.nae, 4),
                  FormatSize(r.faults_injected),
                  FormatSize(r.robustness.rejected_queries),
                  FormatSize(r.robustness.sanitized_queries),
                  FormatSize(r.robustness.clamped_feedback),
                  FormatSize(r.robustness.repaired_buckets)});
  }
  table.Print();

  std::printf(
      "expected shape: NAE degrades smoothly with the fault rate (no cliffs, "
      "no aborts); clean NAE here is %.4f and the 5%% point should stay "
      "within ~2x of it.\n",
      clean_nae);
  return 0;
}

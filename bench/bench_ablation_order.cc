// Ablation (§5.3): cluster feeding order — importance order vs reversed vs
// the histogram's sensitivity to it across budgets, on Sky.

#include "bench_common.h"

#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Ablation — cluster feeding order, Sky[1%]", scale);

  Experiment experiment(BenchSky(scale));

  // Two cells (importance order, reversed) per budget, swept concurrently.
  std::vector<ExperimentConfig> configs;
  for (size_t buckets : scale.bucket_sweep) {
    ExperimentConfig config;
    config.buckets = buckets;
    config.train_queries = scale.train_queries;
    config.sim_queries = scale.sim_queries;
    config.volume_fraction = 0.01;
    config.initialize = true;
    config.mineclus = SkyMineClus();
    configs.push_back(config);
    config.initializer.reversed = true;
    configs.push_back(config);
  }
  std::vector<ExperimentResult> results =
      RunSweep(experiment, configs, scale.threads);

  TablePrinter table({"buckets", "importance order NAE", "reversed NAE",
                      "delta"});
  for (size_t i = 0; i < scale.bucket_sweep.size(); ++i) {
    const ExperimentResult& normal = results[2 * i];
    const ExperimentResult& reversed = results[2 * i + 1];
    table.AddRow({FormatSize(scale.bucket_sweep[i]),
                  FormatDouble(normal.nae, 3),
                  FormatDouble(reversed.nae, 3),
                  FormatDouble(reversed.nae - normal.nae, 3)});
  }
  table.Print();
  std::printf("\nexpected shape: importance order is never worse; the gap "
              "demonstrates that initialization itself is sensitive to "
              "feeding order (paper Fig. 13).\n");
  return 0;
}

// Ablation (§5.3): cluster feeding order — importance order vs reversed vs
// the histogram's sensitivity to it across budgets, on Sky.

#include "bench_common.h"

#include "eval/table.h"

int main() {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale();
  PrintBanner("Ablation — cluster feeding order, Sky[1%]", scale);

  Experiment experiment(BenchSky(scale));

  TablePrinter table({"buckets", "importance order NAE", "reversed NAE",
                      "delta"});
  for (size_t buckets : scale.bucket_sweep) {
    ExperimentConfig config;
    config.buckets = buckets;
    config.train_queries = scale.train_queries;
    config.sim_queries = scale.sim_queries;
    config.volume_fraction = 0.01;
    config.initialize = true;
    config.mineclus = SkyMineClus();

    ExperimentResult normal = experiment.Run(config);
    config.initializer.reversed = true;
    ExperimentResult reversed = experiment.Run(config);

    table.AddRow({FormatSize(buckets), FormatDouble(normal.nae, 3),
                  FormatDouble(reversed.nae, 3),
                  FormatDouble(reversed.nae - normal.nae, 3)});
  }
  table.Print();
  std::printf("\nexpected shape: importance order is never worse; the gap "
              "demonstrates that initialization itself is sensitive to "
              "feeding order (paper Fig. 13).\n");
  return 0;
}

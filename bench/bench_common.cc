#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/thread_pool.h"
#include "eval/table.h"

namespace sthist::bench {

Scale GetScale(int argc, char** argv) {
  Scale scale;
  const char* full = std::getenv("STHIST_FULL");
  if (full != nullptr && full[0] == '1') {
    scale.full = true;
    scale.train_queries = 1000;
    scale.sim_queries = 1000;
    scale.sky_tuples = 1700000;
    scale.heavy_extra_queries = 18000;
    scale.crossnd_cluster_tuples_4d = 90000;
    scale.crossnd_cluster_tuples_5d = 2700000;
    scale.bucket_sweep = {50, 100, 150, 200, 250};
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      char* end = nullptr;
      unsigned long value = std::strtoul(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || value == 0) {
        std::fprintf(stderr, "--threads expects a positive integer, got %s\n",
                     argv[i]);
        std::exit(2);
      }
      scale.threads = static_cast<size_t>(value);
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\nusage: %s [--threads N]\n"
                   "(STHIST_FULL=1 in the environment selects paper scale)\n",
                   argv[i], argv[0]);
      std::exit(2);
    }
  }
  return scale;
}

GeneratedData BenchCross() {
  // Paper scale (Table 1): 22,000 tuples, runs fast enough everywhere.
  return MakeCross(CrossConfig{});
}

GeneratedData BenchCrossNd(size_t dim, const Scale& scale) {
  CrossConfig config;
  config.dim = dim;
  switch (dim) {
    case 3:
      config.tuples_per_cluster = 3000;  // Table 3: 9,000 total.
      break;
    case 4:
      config.tuples_per_cluster = scale.crossnd_cluster_tuples_4d;
      break;
    default:
      config.tuples_per_cluster = scale.crossnd_cluster_tuples_5d;
      break;
  }
  config.noise_tuples = config.tuples_per_cluster * dim / 10;
  config.seed = 100 + dim;
  return MakeCross(config);
}

GeneratedData BenchGauss(const Scale& scale) {
  GaussConfig config;
  config.cluster_tuples = scale.gauss_cluster_tuples;
  config.noise_tuples = scale.gauss_noise_tuples;
  return MakeGauss(config);
}

GeneratedData BenchSky(const Scale& scale) {
  SkyConfig config;
  config.tuples = scale.sky_tuples;
  return MakeSky(config);
}

MineClusConfig CrossMineClus() {
  MineClusConfig config;
  config.alpha = 0.05;
  config.width_fraction = 0.05;
  // Favor size over dimensionality: on the higher-dimensional Cross
  // variants, a smaller beta would rank the full-dimensional band-junction
  // artifact above the bands themselves and feed it first.
  config.beta = 0.4;
  return config;
}

MineClusConfig GaussMineClus() {
  MineClusConfig config;
  config.alpha = 0.02;
  config.width_fraction = 0.06;
  return config;
}

MineClusConfig SkyMineClus() {
  MineClusConfig config;
  config.alpha = 0.01;
  config.width_fraction = 0.05;
  return config;
}

void PrintBanner(const std::string& title, const Scale& scale) {
  std::printf("==== %s ====\n", title.c_str());
  std::printf("scale: %s (train=%zu, sim=%zu queries)%s\n",
              scale.full ? "paper (STHIST_FULL=1)" : "bench default",
              scale.train_queries, scale.sim_queries,
              scale.full ? "" : " — set STHIST_FULL=1 for paper scale");
  std::printf("threads: %zu (override with --threads N; results are "
              "identical at any thread count)\n",
              scale.threads == 0 ? DefaultThreadCount() : scale.threads);
  std::printf("paper columns are approximate values digitized from the "
              "figure; compare shapes, not absolutes.\n\n");
}

void RunFigure(Experiment* experiment, const FigureSpec& spec) {
  std::vector<std::string> headers = {"buckets"};
  for (const Series& series : spec.series) {
    headers.push_back(series.name + " NAE");
    if (!series.paper_nae.empty()) {
      headers.push_back(series.name + " (paper)");
    }
  }
  TablePrinter table(headers);

  // Every (bucket count x series) cell is independent; sweep them all
  // concurrently and format afterwards in row-major order.
  std::vector<ExperimentConfig> configs;
  configs.reserve(spec.bucket_counts.size() * spec.series.size());
  for (size_t buckets : spec.bucket_counts) {
    for (const Series& series : spec.series) {
      ExperimentConfig config = spec.base;
      config.buckets = buckets;
      config.initialize = series.initialize;
      config.initializer.reversed = series.reversed;
      configs.push_back(config);
    }
  }
  std::vector<ExperimentResult> results =
      RunSweep(*experiment, configs, spec.threads);

  for (size_t i = 0; i < spec.bucket_counts.size(); ++i) {
    std::vector<std::string> row = {FormatSize(spec.bucket_counts[i])};

    // Position of this bucket count in the paper's sweep, if any.
    size_t paper_index = spec.paper_bucket_counts.size();
    for (size_t j = 0; j < spec.paper_bucket_counts.size(); ++j) {
      if (spec.paper_bucket_counts[j] == spec.bucket_counts[i]) {
        paper_index = j;
        break;
      }
    }

    for (size_t s = 0; s < spec.series.size(); ++s) {
      const Series& series = spec.series[s];
      const ExperimentResult& result = results[i * spec.series.size() + s];
      row.push_back(FormatDouble(result.nae, 3));
      if (!series.paper_nae.empty()) {
        row.push_back(paper_index < series.paper_nae.size()
                          ? FormatDouble(series.paper_nae[paper_index], 3)
                          : "-");
      }
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", spec.title.c_str());
  table.Print();
  std::printf("\n");
}

}  // namespace sthist::bench

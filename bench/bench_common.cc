#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/thread_pool.h"
#include "eval/table.h"
#include "obs/metrics.h"

namespace sthist::bench {

namespace {

// The process-wide registry every harness records into. Installed by
// ExtractBenchOptions, which every main calls first (directly or through
// GetScale), so all instrumented components land here.
obs::MetricsRegistry& BenchRegistry() {
  static obs::MetricsRegistry registry;
  return registry;
}

// Parses argv[i]'s value (argv[i+1]) as a non-negative integer, exiting
// with a usage error otherwise.
uint64_t ParseCount(const char* flag, const char* value) {
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == nullptr || *end != '\0' || value[0] == '\0') {
    std::fprintf(stderr, "%s expects a non-negative integer, got %s\n", flag,
                 value);
    std::exit(2);
  }
  return static_cast<uint64_t>(parsed);
}

// Escapes a string for embedding in a JSON document.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

BenchOptions ExtractBenchOptions(int* argc, char** argv) {
  obs::SetGlobalMetrics(&BenchRegistry());
  BenchOptions options;
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    const char* arg = argv[read];
    const bool has_value = read + 1 < *argc;
    if (std::strcmp(arg, "--threads") == 0 && has_value) {
      uint64_t value = ParseCount(arg, argv[++read]);
      if (value == 0) {
        std::fprintf(stderr, "--threads expects a positive integer\n");
        std::exit(2);
      }
      options.threads = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--seed") == 0 && has_value) {
      options.seed = ParseCount(arg, argv[++read]);
    } else if (std::strcmp(arg, "--out") == 0 && has_value) {
      options.out = argv[++read];
    } else if (std::strcmp(arg, "--metrics-json") == 0 && has_value) {
      options.metrics_json = argv[++read];
    } else {
      argv[write++] = argv[read];  // Not ours; leave for the caller.
    }
  }
  *argc = write;
  return options;
}

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions options = ExtractBenchOptions(&argc, argv);
  if (argc > 1) {
    std::fprintf(stderr,
                 "unknown argument: %s\n"
                 "usage: %s [--threads N] [--seed N] [--out PATH] "
                 "[--metrics-json PATH]\n"
                 "(STHIST_FULL=1 in the environment selects paper scale)\n",
                 argv[1], argv[0]);
    std::exit(2);
  }
  return options;
}

bool WriteBenchArtifact(
    const BenchOptions& options, const std::string& name,
    const std::vector<std::pair<std::string, double>>& summary) {
  if (options.metrics_json.empty()) return true;
  std::string json = "{\n  \"bench\": \"" + JsonEscape(name) + "\",\n";
  json += "  \"summary\": {";
  for (size_t i = 0; i < summary.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", summary[i].second);
    json += (i == 0 ? "\n" : ",\n");
    json += "    \"" + JsonEscape(summary[i].first) + "\": " + buf;
  }
  json += summary.empty() ? "},\n" : "\n  },\n";
  json += "  \"metrics\": " + obs::GlobalMetrics()->ToJson() + "\n}\n";
  FILE* f = std::fopen(options.metrics_json.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", options.metrics_json.c_str());
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_error = std::fclose(f);
  if (written != json.size() || close_error != 0) {
    std::fprintf(stderr, "short write to %s\n", options.metrics_json.c_str());
    return false;
  }
  return true;
}

Scale GetScale(const BenchOptions& options) {
  Scale scale;
  scale.threads = options.threads;
  const char* full = std::getenv("STHIST_FULL");
  if (full != nullptr && full[0] == '1') {
    scale.full = true;
    scale.train_queries = 1000;
    scale.sim_queries = 1000;
    scale.sky_tuples = 1700000;
    scale.heavy_extra_queries = 18000;
    scale.crossnd_cluster_tuples_4d = 90000;
    scale.crossnd_cluster_tuples_5d = 2700000;
    scale.bucket_sweep = {50, 100, 150, 200, 250};
  }
  return scale;
}

namespace {

// Deferred artifact for harnesses that never call WriteBenchArtifact
// themselves (the legacy GetScale(argc, argv) entry point): written at exit
// with an empty summary so --metrics-json works uniformly everywhere.
BenchOptions g_exit_options;   // NOLINT(runtime/global)
std::string g_exit_name;       // NOLINT(runtime/global)

void WriteExitArtifact() {
  (void)WriteBenchArtifact(g_exit_options, g_exit_name, {});
}

}  // namespace

Scale GetScale(int argc, char** argv) {
  if (argc <= 0) return GetScale(BenchOptions{});
  BenchOptions options = ParseBenchOptions(argc, argv);
  if (!options.metrics_json.empty()) {
    g_exit_options = options;
    const char* base = std::strrchr(argv[0], '/');
    g_exit_name = base != nullptr ? base + 1 : argv[0];
    std::atexit(WriteExitArtifact);
  }
  return GetScale(options);
}

GeneratedData BenchCross() {
  // Paper scale (Table 1): 22,000 tuples, runs fast enough everywhere.
  return MakeCross(CrossConfig{});
}

GeneratedData BenchCrossNd(size_t dim, const Scale& scale) {
  CrossConfig config;
  config.dim = dim;
  switch (dim) {
    case 3:
      config.tuples_per_cluster = 3000;  // Table 3: 9,000 total.
      break;
    case 4:
      config.tuples_per_cluster = scale.crossnd_cluster_tuples_4d;
      break;
    default:
      config.tuples_per_cluster = scale.crossnd_cluster_tuples_5d;
      break;
  }
  config.noise_tuples = config.tuples_per_cluster * dim / 10;
  config.seed = 100 + dim;
  return MakeCross(config);
}

GeneratedData BenchGauss(const Scale& scale) {
  GaussConfig config;
  config.cluster_tuples = scale.gauss_cluster_tuples;
  config.noise_tuples = scale.gauss_noise_tuples;
  return MakeGauss(config);
}

GeneratedData BenchSky(const Scale& scale) {
  SkyConfig config;
  config.tuples = scale.sky_tuples;
  return MakeSky(config);
}

MineClusConfig CrossMineClus() {
  MineClusConfig config;
  config.alpha = 0.05;
  config.width_fraction = 0.05;
  // Favor size over dimensionality: on the higher-dimensional Cross
  // variants, a smaller beta would rank the full-dimensional band-junction
  // artifact above the bands themselves and feed it first.
  config.beta = 0.4;
  return config;
}

MineClusConfig GaussMineClus() {
  MineClusConfig config;
  config.alpha = 0.02;
  config.width_fraction = 0.06;
  return config;
}

MineClusConfig SkyMineClus() {
  MineClusConfig config;
  config.alpha = 0.01;
  config.width_fraction = 0.05;
  return config;
}

void PrintBanner(const std::string& title, const Scale& scale) {
  std::printf("==== %s ====\n", title.c_str());
  std::printf("scale: %s (train=%zu, sim=%zu queries)%s\n",
              scale.full ? "paper (STHIST_FULL=1)" : "bench default",
              scale.train_queries, scale.sim_queries,
              scale.full ? "" : " — set STHIST_FULL=1 for paper scale");
  std::printf("threads: %zu (override with --threads N; results are "
              "identical at any thread count)\n",
              scale.threads == 0 ? DefaultThreadCount() : scale.threads);
  std::printf("paper columns are approximate values digitized from the "
              "figure; compare shapes, not absolutes.\n\n");
}

void RunFigure(Experiment* experiment, const FigureSpec& spec) {
  std::vector<std::string> headers = {"buckets"};
  for (const Series& series : spec.series) {
    headers.push_back(series.name + " NAE");
    if (!series.paper_nae.empty()) {
      headers.push_back(series.name + " (paper)");
    }
  }
  TablePrinter table(headers);

  // Every (bucket count x series) cell is independent; sweep them all
  // concurrently and format afterwards in row-major order.
  std::vector<ExperimentConfig> configs;
  configs.reserve(spec.bucket_counts.size() * spec.series.size());
  for (size_t buckets : spec.bucket_counts) {
    for (const Series& series : spec.series) {
      ExperimentConfig config = spec.base;
      config.buckets = buckets;
      config.initialize = series.initialize;
      config.initializer.reversed = series.reversed;
      configs.push_back(config);
    }
  }
  std::vector<ExperimentResult> results =
      RunSweep(*experiment, configs, spec.threads);

  for (size_t i = 0; i < spec.bucket_counts.size(); ++i) {
    std::vector<std::string> row = {FormatSize(spec.bucket_counts[i])};

    // Position of this bucket count in the paper's sweep, if any.
    size_t paper_index = spec.paper_bucket_counts.size();
    for (size_t j = 0; j < spec.paper_bucket_counts.size(); ++j) {
      if (spec.paper_bucket_counts[j] == spec.bucket_counts[i]) {
        paper_index = j;
        break;
      }
    }

    for (size_t s = 0; s < spec.series.size(); ++s) {
      const Series& series = spec.series[s];
      const ExperimentResult& result = results[i * spec.series.size() + s];
      row.push_back(FormatDouble(result.nae, 3));
      if (!series.paper_nae.empty()) {
        row.push_back(paper_index < series.paper_nae.size()
                          ? FormatDouble(series.paper_nae[paper_index], 3)
                          : "-");
      }
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", spec.title.c_str());
  table.Print();
  std::printf("\n");
}

}  // namespace sthist::bench

// Table 4: the clusters MineClus finds in the Sky dataset — per cluster the
// unused (spanned) dimensions and the tuple count, compared against the
// planted ground truth (which mirrors the paper's Table 4 skeleton).

#include <algorithm>

#include "bench_common.h"

#include "eval/table.h"
#include "init/initializer.h"

namespace {

std::string DimsToString(const std::vector<size_t>& dims) {
  if (dims.empty()) return "none";
  std::string out;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(dims[i] + 1);  // 1-indexed like the paper.
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Table 4 — clusters found in Sky", scale);

  Experiment experiment(BenchSky(scale));
  const std::vector<SubspaceCluster>& clusters =
      experiment.Clusters(SkyMineClus());

  size_t full_dim = 0, subspace = 0;
  TablePrinter table({"cluster", "unused dims", "tuples", "score"});
  for (size_t i = 0; i < clusters.size(); ++i) {
    const SubspaceCluster& c = clusters[i];
    std::vector<size_t> unused;
    std::vector<bool> relevant(7, false);
    for (size_t d : c.relevant_dims) relevant[d] = true;
    for (size_t d = 0; d < 7; ++d) {
      if (!relevant[d]) unused.push_back(d);
    }
    if (unused.empty()) {
      ++full_dim;
    } else {
      ++subspace;
    }
    table.AddRow({"C" + std::to_string(i), DimsToString(unused),
                  FormatSize(c.members.size()), FormatDouble(c.score, 0)});
  }
  table.Print();

  std::printf("\nfound: %zu clusters (%zu full-dimensional, %zu subspace)\n",
              clusters.size(), full_dim, subspace);
  std::printf("paper (Table 4): 20 clusters (11 full-dimensional, 9 "
              "subspace; unused-dim sets {1}, {1,2}, {1,2,7}, {1,2,3,7}, "
              "{1,2,3,5,6})\n");

  std::printf("\nplanted ground truth at bench scale:\n");
  TablePrinter truth_table({"cluster", "unused dims", "tuples"});
  const GeneratedData& g = experiment.generated();
  for (size_t i = 0; i < g.truth.size(); ++i) {
    std::vector<size_t> unused;
    std::vector<bool> relevant(7, false);
    for (size_t d : g.truth[i].relevant_dims) relevant[d] = true;
    for (size_t d = 0; d < 7; ++d) {
      if (!relevant[d]) unused.push_back(d);
    }
    truth_table.AddRow({"T" + std::to_string(i), DimsToString(unused),
                        FormatSize(g.truth[i].tuples)});
  }
  truth_table.Print();
  return 0;
}

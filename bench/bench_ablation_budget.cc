// Ablation: how many clusters are worth feeding? Caps the initializer at
// the top-k most important clusters on Sky, 100 buckets.

#include "bench_common.h"

#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Ablation — initialization cluster budget, Sky[1%], "
              "100 buckets",
              scale);

  Experiment experiment(BenchSky(scale));
  size_t available = experiment.Clusters(SkyMineClus()).size();
  std::printf("MineClus found %zu clusters\n\n", available);

  std::vector<ExperimentConfig> configs;
  for (size_t cap : {0u, 1u, 2u, 5u, 10u, 20u, 64u}) {
    ExperimentConfig config;
    config.buckets = 100;
    config.train_queries = scale.train_queries;
    config.sim_queries = scale.sim_queries;
    config.volume_fraction = 0.01;
    config.initialize = cap > 0;
    config.initializer.max_clusters = cap;
    config.mineclus = SkyMineClus();
    configs.push_back(config);
  }
  std::vector<ExperimentResult> results =
      RunSweep(experiment, configs, scale.threads);

  TablePrinter table({"clusters fed", "NAE", "subspace buckets after sim"});
  for (const ExperimentResult& result : results) {
    table.AddRow({FormatSize(result.clusters_fed),
                  FormatDouble(result.nae, 3),
                  FormatSize(result.subspace_buckets)});
  }
  table.Print();
  std::printf("\nexpected shape: error falls steeply with the first few "
              "(most important) clusters and flattens — the importance "
              "ordering front-loads the benefit.\n");
  return 0;
}

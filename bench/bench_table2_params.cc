// Table 2: MineClus parameter sweep on the Sky dataset — error, clustering
// time and simulation time for (alpha, beta, width) combinations, 100
// buckets. The paper's width is absolute on its (undisclosed) domain scale;
// the synthetic Sky's planted clusters have sigma = 2.5% of each extent, so
// the paper's fixed width=10 maps to width_fraction = 0.05 here (a window
// wide enough to capture a cluster from a medoid inside it, as theirs was).

#include <chrono>

#include "bench_common.h"

#include "eval/table.h"

int main() {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale();
  PrintBanner("Table 2 — MineClus parameters on Sky, 100 buckets", scale);

  Experiment experiment(BenchSky(scale));

  struct Row {
    double alpha;
    double beta;
    double width_fraction;
    double paper_error;  // Paper Table 2 (their Sky sample; shape only).
  };
  const std::vector<Row> rows = {
      {0.01, 0.10, 0.05, 0.27},
      {0.05, 0.10, 0.05, 0.37},
      {0.10, 0.10, 0.05, 0.45},
      {0.01, 0.30, 0.05, 0.31},
  };

  TablePrinter table({"alpha", "beta", "width", "NAE", "NAE (paper)",
                      "clusters", "clustering s", "sim s"});
  for (const Row& row : rows) {
    ExperimentConfig config;
    config.buckets = 100;
    config.train_queries = scale.train_queries;
    config.sim_queries = scale.sim_queries;
    config.volume_fraction = 0.01;
    config.initialize = true;
    config.mineclus.alpha = row.alpha;
    config.mineclus.beta = row.beta;
    config.mineclus.width_fraction = row.width_fraction;

    auto start = std::chrono::steady_clock::now();
    ExperimentResult result = experiment.Run(config);
    (void)start;

    table.AddRow({FormatDouble(row.alpha, 2), FormatDouble(row.beta, 2),
                  FormatDouble(row.width_fraction, 3),
                  FormatDouble(result.nae, 3),
                  FormatDouble(row.paper_error, 2),
                  FormatSize(result.clusters_found),
                  FormatDouble(result.clustering_seconds, 2),
                  FormatDouble(result.sim_seconds, 2)});
  }
  table.Print();

  // The paper's reference point: uninitialized STHoles error on Sky.
  ExperimentConfig uninit;
  uninit.buckets = 100;
  uninit.train_queries = scale.train_queries;
  uninit.sim_queries = scale.sim_queries;
  uninit.volume_fraction = 0.01;
  ExperimentResult base = experiment.Run(uninit);
  std::printf("\nuninitialized reference NAE: %.3f (paper: 0.62)\n", base.nae);
  std::printf("expected shape: higher alpha -> faster clustering, worse "
              "error; all initialized rows beat the uninitialized "
              "reference.\n");
  return 0;
}

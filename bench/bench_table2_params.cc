// Table 2: MineClus parameter sweep on the Sky dataset — error, clustering
// time and simulation time for (alpha, beta, width) combinations, 100
// buckets. The paper's width is absolute on its (undisclosed) domain scale;
// the synthetic Sky's planted clusters have sigma = 2.5% of each extent, so
// the paper's fixed width=10 maps to width_fraction = 0.05 here (a window
// wide enough to capture a cluster from a medoid inside it, as theirs was).

#include <chrono>

#include "bench_common.h"

#include "core/thread_pool.h"
#include "eval/table.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Table 2 — MineClus parameters on Sky, 100 buckets", scale);

  Experiment experiment(BenchSky(scale));

  struct Row {
    double alpha;
    double beta;
    double width_fraction;
    double paper_error;  // Paper Table 2 (their Sky sample; shape only).
  };
  const std::vector<Row> rows = {
      {0.01, 0.10, 0.05, 0.27},
      {0.05, 0.10, 0.05, 0.37},
      {0.10, 0.10, 0.05, 0.45},
      {0.01, 0.30, 0.05, 0.31},
  };

  // One cell per parameter row plus the paper's uninitialized reference
  // point, swept concurrently: every row clusters with different MineClus
  // parameters, so the sweep parallelizes the dominant clustering cost.
  std::vector<ExperimentConfig> configs;
  for (const Row& row : rows) {
    ExperimentConfig config;
    config.buckets = 100;
    config.train_queries = scale.train_queries;
    config.sim_queries = scale.sim_queries;
    config.volume_fraction = 0.01;
    config.initialize = true;
    config.mineclus.alpha = row.alpha;
    config.mineclus.beta = row.beta;
    config.mineclus.width_fraction = row.width_fraction;
    configs.push_back(config);
  }
  ExperimentConfig uninit;
  uninit.buckets = 100;
  uninit.train_queries = scale.train_queries;
  uninit.sim_queries = scale.sim_queries;
  uninit.volume_fraction = 0.01;
  configs.push_back(uninit);

  auto sweep_start = std::chrono::steady_clock::now();
  std::vector<ExperimentResult> results =
      RunSweep(experiment, configs, scale.threads);
  double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();

  TablePrinter table({"alpha", "beta", "width", "NAE", "NAE (paper)",
                      "clusters", "clustering s", "sim s"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const ExperimentResult& result = results[i];
    table.AddRow({FormatDouble(row.alpha, 2), FormatDouble(row.beta, 2),
                  FormatDouble(row.width_fraction, 3),
                  FormatDouble(result.nae, 3),
                  FormatDouble(row.paper_error, 2),
                  FormatSize(result.clusters_found),
                  FormatDouble(result.clustering_seconds, 2),
                  FormatDouble(result.sim_seconds, 2)});
  }
  table.Print();

  const ExperimentResult& base = results.back();
  size_t threads = scale.threads == 0 ? DefaultThreadCount() : scale.threads;
  std::printf("\nsweep wall-clock: %.2f s for %zu cells at --threads %zu%s\n",
              sweep_seconds, configs.size(), threads,
              threads == 1 ? " (the serial baseline for speedup runs)"
                           : " (compare against --threads 1 for the speedup)");
  std::printf("uninitialized reference NAE: %.3f (paper: 0.62)\n", base.nae);
  std::printf("expected shape: higher alpha -> faster clustering, worse "
              "error; all initialized rows beat the uninitialized "
              "reference.\n");
  return 0;
}

// Figure 4 / Example 1: two queries, two orders, a 2-bucket budget — the
// resulting histograms differ in structure and accuracy. Batch version of
// examples/order_sensitivity with an error table.

#include <cmath>

#include "bench_common.h"

#include "core/rng.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "histogram/census.h"
#include "histogram/stholes.h"
#include "workload/query.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Figure 4 — query order shapes the 2-bucket histogram", scale);

  Dataset data(2);
  Rng rng(4);
  Point p(2);
  for (int i = 0; i < 2000; ++i) {
    p[0] = rng.Uniform(55, 95);
    p[1] = rng.Uniform(55, 95);
    data.Append(p);
  }
  Executor executor(data);
  Box domain = Box::Cube(2, 0, 100);

  // The tight query captures the cluster exactly; the sloppy one covers only
  // its lower-left corner plus empty space, so drilling it first deforms the
  // informative query (it gets shrunk around the sloppy bucket) and part of
  // the cluster never becomes a bucket.
  Box tight({55.0, 55.0}, {95.0, 95.0});
  Box sloppy({40.0, 40.0}, {75.0, 75.0});
  Workload probes;
  for (int i = 0; i < 100; ++i) {
    double x = rng.Uniform(30, 80), y = rng.Uniform(30, 80);
    probes.push_back(Box({x, y}, {x + 20, y + 20}));
  }

  TablePrinter table({"order", "buckets", "probe MAE"});
  for (int order = 0; order < 2; ++order) {
    STHolesConfig config;
    config.max_buckets = 2;
    STHoles hist(domain, static_cast<double>(data.size()), config);
    hist.Refine(order == 0 ? tight : sloppy, executor);
    hist.Refine(order == 0 ? sloppy : tight, executor);
    table.AddRow({order == 0 ? "tight, then sloppy" : "sloppy, then tight",
                  FormatSize(hist.bucket_count()),
                  FormatDouble(MeanAbsoluteError(hist, probes, executor),
                               1)});
  }
  table.Print();
  std::printf("\nexpected shape: the tight-first order captures the cluster "
              "and has the lower probe error (top row of the paper's "
              "Figure 4); the sloppy-first order deforms the informative "
              "query.\n");
  return 0;
}

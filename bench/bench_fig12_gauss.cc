// Figure 12: normalized error on the Gauss dataset (6-d subspace Gaussian
// bells), 1%-volume queries, bucket budgets 50..250.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sthist;
  using namespace sthist::bench;

  Scale scale = GetScale(argc, argv);
  PrintBanner("Figure 12 — Gauss[1%], initialized vs uninitialized", scale);

  Experiment experiment(BenchGauss(scale));

  FigureSpec spec;
  spec.title = "Gauss[1%] normalized absolute error";
  spec.bucket_counts = scale.bucket_sweep;
  spec.threads = scale.threads;
  spec.base.train_queries = scale.train_queries;
  spec.base.sim_queries = scale.sim_queries;
  spec.base.volume_fraction = 0.01;
  spec.base.mineclus = GaussMineClus();
  spec.series = {
      {"uninit", false, false, {0.390, 0.340, 0.300, 0.270, 0.250}},
      {"init", true, false, {0.190, 0.170, 0.150, 0.140, 0.130}},
  };
  RunFigure(&experiment, spec);

  std::printf("expected shape: larger benefit than on Cross — the subspace "
              "bells are invisible to full-space self-tuning; init@50 beats "
              "uninit@250.\n");
  return 0;
}

# Empty compiler generated dependencies file for isomer_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/isomer_test.dir/isomer_test.cc.o"
  "CMakeFiles/isomer_test.dir/isomer_test.cc.o.d"
  "isomer_test"
  "isomer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isomer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

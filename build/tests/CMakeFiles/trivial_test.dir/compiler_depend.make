# Empty compiler generated dependencies file for trivial_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/trivial_test.dir/trivial_test.cc.o"
  "CMakeFiles/trivial_test.dir/trivial_test.cc.o.d"
  "trivial_test"
  "trivial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trivial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

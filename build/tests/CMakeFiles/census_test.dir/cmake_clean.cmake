file(REMOVE_RECURSE
  "CMakeFiles/census_test.dir/census_test.cc.o"
  "CMakeFiles/census_test.dir/census_test.cc.o.d"
  "census_test"
  "census_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

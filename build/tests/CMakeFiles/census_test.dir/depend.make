# Empty dependencies file for census_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stholes_property_test.dir/stholes_property_test.cc.o"
  "CMakeFiles/stholes_property_test.dir/stholes_property_test.cc.o.d"
  "stholes_property_test"
  "stholes_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stholes_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

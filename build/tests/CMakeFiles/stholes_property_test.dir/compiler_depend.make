# Empty compiler generated dependencies file for stholes_property_test.
# This may be replaced when dependencies are built.

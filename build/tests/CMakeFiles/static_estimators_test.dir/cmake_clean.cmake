file(REMOVE_RECURSE
  "CMakeFiles/static_estimators_test.dir/static_estimators_test.cc.o"
  "CMakeFiles/static_estimators_test.dir/static_estimators_test.cc.o.d"
  "static_estimators_test"
  "static_estimators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_estimators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for static_estimators_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/doc_test.dir/doc_test.cc.o"
  "CMakeFiles/doc_test.dir/doc_test.cc.o.d"
  "doc_test"
  "doc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

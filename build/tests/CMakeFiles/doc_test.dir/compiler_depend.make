# Empty compiler generated dependencies file for doc_test.
# This may be replaced when dependencies are built.

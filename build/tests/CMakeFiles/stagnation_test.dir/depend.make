# Empty dependencies file for stagnation_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stagnation_test.dir/stagnation_test.cc.o"
  "CMakeFiles/stagnation_test.dir/stagnation_test.cc.o.d"
  "stagnation_test"
  "stagnation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stagnation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

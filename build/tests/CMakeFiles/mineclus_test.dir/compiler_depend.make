# Empty compiler generated dependencies file for mineclus_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mineclus_test.dir/mineclus_test.cc.o"
  "CMakeFiles/mineclus_test.dir/mineclus_test.cc.o.d"
  "mineclus_test"
  "mineclus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mineclus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fptree_test.
# This may be replaced when dependencies are built.

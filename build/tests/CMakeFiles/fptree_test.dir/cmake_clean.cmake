file(REMOVE_RECURSE
  "CMakeFiles/fptree_test.dir/fptree_test.cc.o"
  "CMakeFiles/fptree_test.dir/fptree_test.cc.o.d"
  "fptree_test"
  "fptree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fptree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/kdtree_test.dir/kdtree_test.cc.o"
  "CMakeFiles/kdtree_test.dir/kdtree_test.cc.o.d"
  "kdtree_test"
  "kdtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/stgrid_test.dir/stgrid_test.cc.o"
  "CMakeFiles/stgrid_test.dir/stgrid_test.cc.o.d"
  "stgrid_test"
  "stgrid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stgrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for stgrid_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for box_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/box_test.dir/box_test.cc.o"
  "CMakeFiles/box_test.dir/box_test.cc.o.d"
  "box_test"
  "box_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/box_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

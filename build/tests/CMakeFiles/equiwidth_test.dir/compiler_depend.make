# Empty compiler generated dependencies file for equiwidth_test.
# This may be replaced when dependencies are built.

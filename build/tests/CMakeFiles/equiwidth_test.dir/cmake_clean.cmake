file(REMOVE_RECURSE
  "CMakeFiles/equiwidth_test.dir/equiwidth_test.cc.o"
  "CMakeFiles/equiwidth_test.dir/equiwidth_test.cc.o.d"
  "equiwidth_test"
  "equiwidth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equiwidth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for initializer_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/initializer_test.dir/initializer_test.cc.o"
  "CMakeFiles/initializer_test.dir/initializer_test.cc.o.d"
  "initializer_test"
  "initializer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/initializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

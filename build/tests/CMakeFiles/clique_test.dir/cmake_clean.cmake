file(REMOVE_RECURSE
  "CMakeFiles/clique_test.dir/clique_test.cc.o"
  "CMakeFiles/clique_test.dir/clique_test.cc.o.d"
  "clique_test"
  "clique_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clique_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

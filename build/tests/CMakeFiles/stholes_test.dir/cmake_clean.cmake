file(REMOVE_RECURSE
  "CMakeFiles/stholes_test.dir/stholes_test.cc.o"
  "CMakeFiles/stholes_test.dir/stholes_test.cc.o.d"
  "stholes_test"
  "stholes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stholes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for stholes_test.
# This may be replaced when dependencies are built.

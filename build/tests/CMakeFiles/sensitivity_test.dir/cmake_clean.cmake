file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_test.dir/sensitivity_test.cc.o"
  "CMakeFiles/sensitivity_test.dir/sensitivity_test.cc.o.d"
  "sensitivity_test"
  "sensitivity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sthist.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/clique.cc" "src/CMakeFiles/sthist.dir/clustering/clique.cc.o" "gcc" "src/CMakeFiles/sthist.dir/clustering/clique.cc.o.d"
  "/root/repo/src/clustering/doc.cc" "src/CMakeFiles/sthist.dir/clustering/doc.cc.o" "gcc" "src/CMakeFiles/sthist.dir/clustering/doc.cc.o.d"
  "/root/repo/src/clustering/fptree.cc" "src/CMakeFiles/sthist.dir/clustering/fptree.cc.o" "gcc" "src/CMakeFiles/sthist.dir/clustering/fptree.cc.o.d"
  "/root/repo/src/clustering/mineclus.cc" "src/CMakeFiles/sthist.dir/clustering/mineclus.cc.o" "gcc" "src/CMakeFiles/sthist.dir/clustering/mineclus.cc.o.d"
  "/root/repo/src/core/box.cc" "src/CMakeFiles/sthist.dir/core/box.cc.o" "gcc" "src/CMakeFiles/sthist.dir/core/box.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/CMakeFiles/sthist.dir/core/rng.cc.o" "gcc" "src/CMakeFiles/sthist.dir/core/rng.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/sthist.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/sthist.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/sthist.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/sthist.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/sthist.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/sthist.dir/data/generators.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/sthist.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/sthist.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/runner.cc" "src/CMakeFiles/sthist.dir/eval/runner.cc.o" "gcc" "src/CMakeFiles/sthist.dir/eval/runner.cc.o.d"
  "/root/repo/src/eval/table.cc" "src/CMakeFiles/sthist.dir/eval/table.cc.o" "gcc" "src/CMakeFiles/sthist.dir/eval/table.cc.o.d"
  "/root/repo/src/histogram/avi.cc" "src/CMakeFiles/sthist.dir/histogram/avi.cc.o" "gcc" "src/CMakeFiles/sthist.dir/histogram/avi.cc.o.d"
  "/root/repo/src/histogram/census.cc" "src/CMakeFiles/sthist.dir/histogram/census.cc.o" "gcc" "src/CMakeFiles/sthist.dir/histogram/census.cc.o.d"
  "/root/repo/src/histogram/equiwidth.cc" "src/CMakeFiles/sthist.dir/histogram/equiwidth.cc.o" "gcc" "src/CMakeFiles/sthist.dir/histogram/equiwidth.cc.o.d"
  "/root/repo/src/histogram/isomer.cc" "src/CMakeFiles/sthist.dir/histogram/isomer.cc.o" "gcc" "src/CMakeFiles/sthist.dir/histogram/isomer.cc.o.d"
  "/root/repo/src/histogram/mhist.cc" "src/CMakeFiles/sthist.dir/histogram/mhist.cc.o" "gcc" "src/CMakeFiles/sthist.dir/histogram/mhist.cc.o.d"
  "/root/repo/src/histogram/sampling.cc" "src/CMakeFiles/sthist.dir/histogram/sampling.cc.o" "gcc" "src/CMakeFiles/sthist.dir/histogram/sampling.cc.o.d"
  "/root/repo/src/histogram/stgrid.cc" "src/CMakeFiles/sthist.dir/histogram/stgrid.cc.o" "gcc" "src/CMakeFiles/sthist.dir/histogram/stgrid.cc.o.d"
  "/root/repo/src/histogram/stholes.cc" "src/CMakeFiles/sthist.dir/histogram/stholes.cc.o" "gcc" "src/CMakeFiles/sthist.dir/histogram/stholes.cc.o.d"
  "/root/repo/src/histogram/trivial.cc" "src/CMakeFiles/sthist.dir/histogram/trivial.cc.o" "gcc" "src/CMakeFiles/sthist.dir/histogram/trivial.cc.o.d"
  "/root/repo/src/index/kdtree.cc" "src/CMakeFiles/sthist.dir/index/kdtree.cc.o" "gcc" "src/CMakeFiles/sthist.dir/index/kdtree.cc.o.d"
  "/root/repo/src/init/initializer.cc" "src/CMakeFiles/sthist.dir/init/initializer.cc.o" "gcc" "src/CMakeFiles/sthist.dir/init/initializer.cc.o.d"
  "/root/repo/src/workload/query.cc" "src/CMakeFiles/sthist.dir/workload/query.cc.o" "gcc" "src/CMakeFiles/sthist.dir/workload/query.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/sthist.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/sthist.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsthist.a"
)

# Empty compiler generated dependencies file for sky_explorer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/order_sensitivity.dir/order_sensitivity.cc.o"
  "CMakeFiles/order_sensitivity.dir/order_sensitivity.cc.o.d"
  "order_sensitivity"
  "order_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for order_sensitivity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/drift_adaptation.dir/drift_adaptation.cc.o"
  "CMakeFiles/drift_adaptation.dir/drift_adaptation.cc.o.d"
  "drift_adaptation"
  "drift_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

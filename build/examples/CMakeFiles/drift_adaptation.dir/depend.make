# Empty dependencies file for drift_adaptation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_params.dir/bench_common.cc.o"
  "CMakeFiles/bench_table2_params.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_table2_params.dir/bench_table2_params.cc.o"
  "CMakeFiles/bench_table2_params.dir/bench_table2_params.cc.o.d"
  "bench_table2_params"
  "bench_table2_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_mineclus.dir/bench_micro_mineclus.cc.o"
  "CMakeFiles/bench_micro_mineclus.dir/bench_micro_mineclus.cc.o.d"
  "bench_micro_mineclus"
  "bench_micro_mineclus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_mineclus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

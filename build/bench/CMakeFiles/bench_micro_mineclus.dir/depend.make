# Empty dependencies file for bench_micro_mineclus.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_order.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig04_order.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig04_order.dir/bench_fig04_order.cc.o"
  "CMakeFiles/bench_fig04_order.dir/bench_fig04_order.cc.o.d"
  "bench_fig04_order"
  "bench_fig04_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig04_order.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ablation_budget.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_budget.dir/bench_ablation_budget.cc.o"
  "CMakeFiles/bench_ablation_budget.dir/bench_ablation_budget.cc.o.d"
  "CMakeFiles/bench_ablation_budget.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_budget.dir/bench_common.cc.o.d"
  "bench_ablation_budget"
  "bench_ablation_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_training.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig17_training.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig17_training.dir/bench_fig17_training.cc.o"
  "CMakeFiles/bench_fig17_training.dir/bench_fig17_training.cc.o.d"
  "bench_fig17_training"
  "bench_fig17_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

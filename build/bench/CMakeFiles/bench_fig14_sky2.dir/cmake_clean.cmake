file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_sky2.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig14_sky2.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig14_sky2.dir/bench_fig14_sky2.cc.o"
  "CMakeFiles/bench_fig14_sky2.dir/bench_fig14_sky2.cc.o.d"
  "bench_fig14_sky2"
  "bench_fig14_sky2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_sky2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

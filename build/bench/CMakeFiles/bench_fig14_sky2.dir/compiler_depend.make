# Empty compiler generated dependencies file for bench_fig14_sky2.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_ablation_centers.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_centers.dir/bench_ablation_centers.cc.o"
  "CMakeFiles/bench_ablation_centers.dir/bench_ablation_centers.cc.o.d"
  "CMakeFiles/bench_ablation_centers.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_centers.dir/bench_common.cc.o.d"
  "bench_ablation_centers"
  "bench_ablation_centers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_centers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig16_heavy.
# This may be replaced when dependencies are built.

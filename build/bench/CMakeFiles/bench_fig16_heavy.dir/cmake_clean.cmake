file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_heavy.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig16_heavy.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig16_heavy.dir/bench_fig16_heavy.cc.o"
  "CMakeFiles/bench_fig16_heavy.dir/bench_fig16_heavy.cc.o.d"
  "bench_fig16_heavy"
  "bench_fig16_heavy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_heavy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_gauss.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig12_gauss.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig12_gauss.dir/bench_fig12_gauss.cc.o"
  "CMakeFiles/bench_fig12_gauss.dir/bench_fig12_gauss.cc.o.d"
  "bench_fig12_gauss"
  "bench_fig12_gauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

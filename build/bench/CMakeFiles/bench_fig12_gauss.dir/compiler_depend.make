# Empty compiler generated dependencies file for bench_fig12_gauss.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_sky.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig13_sky.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig13_sky.dir/bench_fig13_sky.cc.o"
  "CMakeFiles/bench_fig13_sky.dir/bench_fig13_sky.cc.o.d"
  "bench_fig13_sky"
  "bench_fig13_sky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_sky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

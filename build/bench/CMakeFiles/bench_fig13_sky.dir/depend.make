# Empty dependencies file for bench_fig13_sky.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_clusters.dir/bench_common.cc.o"
  "CMakeFiles/bench_table4_clusters.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_table4_clusters.dir/bench_table4_clusters.cc.o"
  "CMakeFiles/bench_table4_clusters.dir/bench_table4_clusters.cc.o.d"
  "bench_table4_clusters"
  "bench_table4_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

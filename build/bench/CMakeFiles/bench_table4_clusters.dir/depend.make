# Empty dependencies file for bench_table4_clusters.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fulldim.dir/bench_ablation_fulldim.cc.o"
  "CMakeFiles/bench_ablation_fulldim.dir/bench_ablation_fulldim.cc.o.d"
  "CMakeFiles/bench_ablation_fulldim.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_fulldim.dir/bench_common.cc.o.d"
  "bench_ablation_fulldim"
  "bench_ablation_fulldim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fulldim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_fulldim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_refine.dir/bench_micro_refine.cc.o"
  "CMakeFiles/bench_micro_refine.dir/bench_micro_refine.cc.o.d"
  "bench_micro_refine"
  "bench_micro_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

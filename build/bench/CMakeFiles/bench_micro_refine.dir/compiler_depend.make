# Empty compiler generated dependencies file for bench_micro_refine.
# This may be replaced when dependencies are built.

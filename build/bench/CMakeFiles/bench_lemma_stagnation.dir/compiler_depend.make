# Empty compiler generated dependencies file for bench_lemma_stagnation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma_stagnation.dir/bench_common.cc.o"
  "CMakeFiles/bench_lemma_stagnation.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_lemma_stagnation.dir/bench_lemma_stagnation.cc.o"
  "CMakeFiles/bench_lemma_stagnation.dir/bench_lemma_stagnation.cc.o.d"
  "bench_lemma_stagnation"
  "bench_lemma_stagnation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma_stagnation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cross.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig11_cross.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig11_cross.dir/bench_fig11_cross.cc.o"
  "CMakeFiles/bench_fig11_cross.dir/bench_fig11_cross.cc.o.d"
  "bench_fig11_cross"
  "bench_fig11_cross.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

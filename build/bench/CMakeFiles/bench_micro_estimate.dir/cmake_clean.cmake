file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_estimate.dir/bench_micro_estimate.cc.o"
  "CMakeFiles/bench_micro_estimate.dir/bench_micro_estimate.cc.o.d"
  "bench_micro_estimate"
  "bench_micro_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

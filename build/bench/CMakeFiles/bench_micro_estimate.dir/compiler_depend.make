# Empty compiler generated dependencies file for bench_micro_estimate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_kdtree.dir/bench_micro_kdtree.cc.o"
  "CMakeFiles/bench_micro_kdtree.dir/bench_micro_kdtree.cc.o.d"
  "bench_micro_kdtree"
  "bench_micro_kdtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_kdtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_micro_kdtree.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mbr.dir/bench_ablation_mbr.cc.o"
  "CMakeFiles/bench_ablation_mbr.dir/bench_ablation_mbr.cc.o.d"
  "CMakeFiles/bench_ablation_mbr.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_mbr.dir/bench_common.cc.o.d"
  "bench_ablation_mbr"
  "bench_ablation_mbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_mbr.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_clusterer.dir/bench_ablation_clusterer.cc.o"
  "CMakeFiles/bench_ablation_clusterer.dir/bench_ablation_clusterer.cc.o.d"
  "CMakeFiles/bench_ablation_clusterer.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_clusterer.dir/bench_common.cc.o.d"
  "bench_ablation_clusterer"
  "bench_ablation_clusterer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clusterer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

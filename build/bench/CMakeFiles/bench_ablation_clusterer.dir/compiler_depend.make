# Empty compiler generated dependencies file for bench_ablation_clusterer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tables.dir/bench_common.cc.o"
  "CMakeFiles/bench_tables.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_tables.dir/bench_tables.cc.o"
  "CMakeFiles/bench_tables.dir/bench_tables.cc.o.d"
  "bench_tables"
  "bench_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

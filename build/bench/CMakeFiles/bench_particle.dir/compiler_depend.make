# Empty compiler generated dependencies file for bench_particle.
# This may be replaced when dependencies are built.

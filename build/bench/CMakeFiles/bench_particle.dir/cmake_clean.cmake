file(REMOVE_RECURSE
  "CMakeFiles/bench_particle.dir/bench_common.cc.o"
  "CMakeFiles/bench_particle.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_particle.dir/bench_particle.cc.o"
  "CMakeFiles/bench_particle.dir/bench_particle.cc.o.d"
  "bench_particle"
  "bench_particle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_particle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig15_crossnd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_crossnd.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig15_crossnd.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig15_crossnd.dir/bench_fig15_crossnd.cc.o"
  "CMakeFiles/bench_fig15_crossnd.dir/bench_fig15_crossnd.cc.o.d"
  "bench_fig15_crossnd"
  "bench_fig15_crossnd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_crossnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

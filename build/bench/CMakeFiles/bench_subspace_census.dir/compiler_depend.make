# Empty compiler generated dependencies file for bench_subspace_census.
# This may be replaced when dependencies are built.

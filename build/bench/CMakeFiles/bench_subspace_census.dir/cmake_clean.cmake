file(REMOVE_RECURSE
  "CMakeFiles/bench_subspace_census.dir/bench_common.cc.o"
  "CMakeFiles/bench_subspace_census.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_subspace_census.dir/bench_subspace_census.cc.o"
  "CMakeFiles/bench_subspace_census.dir/bench_subspace_census.cc.o.d"
  "bench_subspace_census"
  "bench_subspace_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subspace_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sthist_cli.dir/sthist_cli.cc.o"
  "CMakeFiles/sthist_cli.dir/sthist_cli.cc.o.d"
  "sthist_cli"
  "sthist_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sthist_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

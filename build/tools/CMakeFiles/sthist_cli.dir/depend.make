# Empty dependencies file for sthist_cli.
# This may be replaced when dependencies are built.

// Self-tuning histograms stay up to date when the data changes — static
// histograms must be rebuilt (paper §1). This example streams queries
// against a dataset whose clusters move halfway through the run: the static
// equi-width grid goes stale, while STHoles keeps refining from feedback and
// recovers within a few hundred queries.
//
//   ./drift_adaptation

#include <cmath>
#include <cstdio>

#include "data/generators.h"
#include "histogram/equiwidth.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

int main() {
  using namespace sthist;

  // Two snapshots of the "same" relation: after the drift, the Gaussian
  // clusters sit in different subspaces and positions.
  GaussConfig before_config;
  before_config.cluster_tuples = 50000;
  before_config.noise_tuples = 5000;
  before_config.seed = 2;
  GeneratedData before = MakeGauss(before_config);

  GaussConfig after_config = before_config;
  after_config.seed = 77;  // Different cluster placement, same schema.
  GeneratedData after = MakeGauss(after_config);

  Executor exec_before(before.data);
  Executor exec_after(after.data);
  const double n = static_cast<double>(before.data.size());

  // Both histograms are built/trained against the pre-drift data.
  EquiWidthHistogram static_grid(before.data, before.domain, 4);  // 4^6 cells.
  STHolesConfig config;
  config.max_buckets = 150;
  STHoles adaptive(before.domain, n, config);

  WorkloadConfig wc;
  wc.num_queries = 1500;
  wc.volume_fraction = 0.01;
  Workload stream = MakeWorkload(before.domain, wc);
  const size_t drift_at = stream.size() / 2;

  std::printf("query stream: %zu queries, data drifts after query %zu\n",
              stream.size(), drift_at);
  std::printf("static grid: %zu cells (built pre-drift); adaptive STHoles: "
              "%zu-bucket budget\n\n",
              static_grid.bucket_count(), config.max_buckets);
  std::printf("%-12s %16s %16s\n", "window", "static MAE", "adaptive MAE");

  const size_t kWindow = 150;
  double static_err = 0, adaptive_err = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    const Executor& executor = i < drift_at ? exec_before : exec_after;
    double real = executor.Count(stream[i]);
    static_err += std::abs(static_grid.Estimate(stream[i]) - real);
    adaptive_err += std::abs(adaptive.Estimate(stream[i]) - real);
    adaptive.Refine(stream[i], executor);

    if ((i + 1) % kWindow == 0) {
      char label[64];
      std::snprintf(label, sizeof(label), "%zu-%zu%s", i + 1 - kWindow,
                    i + 1, i + 1 == drift_at + kWindow ? "  <- drift" : "");
      std::printf("%-12s %16.1f %16.1f\n", label,
                  static_err / static_cast<double>(kWindow),
                  adaptive_err / static_cast<double>(kWindow));
      static_err = adaptive_err = 0;
    }
  }

  std::printf(
      "\nexpected: comparable errors before the drift; afterwards the static "
      "grid's error jumps and stays high, while the self-tuning histogram "
      "recovers as feedback about the new distribution arrives.\n");
  return 0;
}

// Quickstart: build a dataset, run MineClus-initialized STHoles against the
// plain self-tuning baseline, and print estimates for a few queries.
//
//   ./quickstart
//
// This walks through the library's whole public API in ~80 lines:
//   1. generate (or load) a dataset,
//   2. build the execution substrate (Executor = counting k-d tree),
//   3. cluster with MineClus and initialize an STHoles histogram,
//   4. train on query feedback,
//   5. compare estimates against exact counts.

#include <cstdio>

#include "clustering/mineclus.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "histogram/stholes.h"
#include "init/initializer.h"
#include "workload/query.h"
#include "workload/workload.h"

int main() {
  using namespace sthist;

  // 1. A 6-dimensional dataset with Gaussian bells hidden in random
  //    subspaces plus uniform noise (the paper's "Gauss" dataset, scaled).
  GaussConfig data_config;
  data_config.cluster_tuples = 50000;
  data_config.noise_tuples = 5000;
  GeneratedData g = MakeGauss(data_config);
  std::printf("dataset: %zu tuples, %zu dims, %zu planted clusters\n",
              g.data.size(), g.data.dim(), g.truth.size());

  // 2. The execution engine: exact range counts, also used as the
  //    query-feedback oracle.
  Executor executor(g.data);

  // 3. Subspace clustering + initialization.
  MineClusConfig mineclus;
  mineclus.alpha = 0.02;
  std::vector<SubspaceCluster> clusters =
      RunMineClus(g.data, g.domain, mineclus);
  std::printf("MineClus found %zu clusters\n", clusters.size());

  STHolesConfig hist_config;
  hist_config.max_buckets = 100;
  STHoles initialized(g.domain, static_cast<double>(g.data.size()),
                      hist_config);
  size_t fed = InitializeHistogram(clusters, g.domain, executor,
                                   InitializerConfig{}, &initialized);
  std::printf("initialized histogram with %zu cluster buckets\n", fed);

  STHoles baseline(g.domain, static_cast<double>(g.data.size()), hist_config);

  // 4. Train both on the same 500-query feedback stream.
  WorkloadConfig wc;
  wc.num_queries = 500;
  wc.volume_fraction = 0.01;
  Workload training = MakeWorkload(g.domain, wc);
  Train(&initialized, training, executor);
  Train(&baseline, training, executor);

  // 5. Evaluate on fresh queries.
  wc.num_queries = 500;
  wc.seed = 99;
  Workload evaluation = MakeWorkload(g.domain, wc);
  double mae_init = MeanAbsoluteError(initialized, evaluation, executor);
  double mae_base = MeanAbsoluteError(baseline, evaluation, executor);
  double nae_init = NormalizedAbsoluteError(
      mae_init, g.domain, static_cast<double>(g.data.size()), evaluation,
      executor);
  double nae_base = NormalizedAbsoluteError(
      mae_base, g.domain, static_cast<double>(g.data.size()), evaluation,
      executor);

  std::printf("\n%-28s %10s %10s\n", "histogram", "MAE", "NAE");
  std::printf("%-28s %10.2f %10.4f\n", "STHoles (uninitialized)", mae_base,
              nae_base);
  std::printf("%-28s %10.2f %10.4f\n", "STHoles + MineClus init", mae_init,
              nae_init);

  std::printf("\nsample estimates (initialized histogram):\n");
  for (size_t i = 0; i < 5; ++i) {
    const Box& q = evaluation[i];
    std::printf("  query %zu: est=%8.1f real=%8.0f\n", i,
                initialized.Estimate(q), executor.Count(q));
  }
  return 0;
}

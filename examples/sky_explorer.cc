// Approximate query processing over the synthetic sky survey: answer
// COUNT(*) range aggregates from the histogram alone (no data access) and
// report the accuracy/latency trade-off against exact execution.
//
//   ./sky_explorer

#include <chrono>
#include <cmath>
#include <cstdio>

#include "clustering/mineclus.h"
#include "data/generators.h"
#include "histogram/census.h"
#include "histogram/stholes.h"
#include "init/initializer.h"
#include "workload/query.h"
#include "workload/workload.h"

int main() {
  using namespace sthist;
  using Clock = std::chrono::steady_clock;

  SkyConfig data_config;
  data_config.tuples = 200000;
  GeneratedData g = MakeSky(data_config);
  Executor executor(g.data);
  const double n = static_cast<double>(g.data.size());
  std::printf("sky catalog: %zu observations, 7 attributes "
              "(ra, dec, u, g, r, i, z)\n",
              g.data.size());

  // Build the summary: MineClus subspace clusters + STHoles refinement.
  auto t0 = Clock::now();
  MineClusConfig mineclus;
  std::vector<SubspaceCluster> clusters =
      RunMineClus(g.data, g.domain, mineclus);
  STHolesConfig hist_config;
  hist_config.max_buckets = 150;
  STHoles summary(g.domain, n, hist_config);
  InitializeHistogram(clusters, g.domain, executor, InitializerConfig{},
                      &summary);

  WorkloadConfig wc;
  wc.num_queries = 500;
  wc.volume_fraction = 0.01;
  Workload history = MakeWorkload(g.domain, wc);
  for (const Box& q : history) summary.Refine(q, executor);
  double build_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();

  CensusResult census = CensusSubspaceBuckets(summary);
  std::printf("summary: %zu buckets (%zu subspace), built in %.2fs\n",
              summary.bucket_count(), census.subspace_buckets, build_seconds);

  // Analyst session: region-and-magnitude range counts.
  wc.num_queries = 2000;
  wc.volume_fraction = 0.02;
  wc.seed = 5151;
  Workload session = MakeWorkload(g.domain, wc);

  auto t1 = Clock::now();
  double exact_sum = 0;
  for (const Box& q : session) exact_sum += executor.Count(q);
  double exact_seconds =
      std::chrono::duration<double>(Clock::now() - t1).count();

  auto t2 = Clock::now();
  double approx_sum = 0;
  for (const Box& q : session) approx_sum += summary.Estimate(q);
  double approx_seconds =
      std::chrono::duration<double>(Clock::now() - t2).count();

  double mae = 0, rel_sum = 0;
  size_t rel_count = 0;
  for (const Box& q : session) {
    double real = executor.Count(q);
    double est = summary.Estimate(q);
    mae += std::abs(est - real);
    if (real >= 10) {
      rel_sum += std::abs(est - real) / real;
      ++rel_count;
    }
  }
  mae /= static_cast<double>(session.size());

  std::printf("\n%zu aggregate queries:\n", session.size());
  std::printf("  exact execution: %.3fs total (%.1f us/query)\n",
              exact_seconds, 1e6 * exact_seconds / session.size());
  std::printf("  histogram only:  %.4fs total (%.1f us/query, %.0fx faster)\n",
              approx_seconds, 1e6 * approx_seconds / session.size(),
              exact_seconds / approx_seconds);
  std::printf("  mean abs error: %.1f tuples (dataset: %.0f)\n", mae, n);
  if (rel_count > 0) {
    std::printf("  mean relative error on selective queries (real>=10): "
                "%.1f%%\n",
                100.0 * rel_sum / static_cast<double>(rel_count));
  }

  // A few named drill-downs an astronomer might run.
  std::printf("\nsample drill-downs (est vs exact):\n");
  struct Probe {
    const char* name;
    Box box;
  };
  std::vector<Probe> probes = {
      {"bright band (r in [12,14])",
       Box({0.0, -90.0, 10.0, 10.0, 12.0, 10.0, 10.0},
           {360.0, 90.0, 25.0, 25.0, 14.0, 25.0, 25.0})},
      {"northern cap (dec > 60)",
       Box({0.0, 60.0, 10.0, 10.0, 10.0, 10.0, 10.0},
           {360.0, 90.0, 25.0, 25.0, 25.0, 25.0, 25.0})},
      {"red objects (g-r window)",
       Box({0.0, -90.0, 10.0, 18.0, 16.0, 10.0, 10.0},
           {360.0, 90.0, 25.0, 22.0, 19.0, 25.0, 25.0})},
  };
  for (const Probe& probe : probes) {
    std::printf("  %-28s est=%9.0f exact=%9.0f\n", probe.name,
                summary.Estimate(probe.box), executor.Count(probe.box));
  }
  return 0;
}

// Reproduces the paper's Example 1 / Figure 4: two queries over a small
// cluster, learned in both orders under a 2-bucket budget, end in visibly
// different bucket trees — the order of learning queries shapes the
// histogram.
//
//   ./order_sensitivity

#include <cstdio>

#include "core/rng.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "histogram/census.h"
#include "histogram/stholes.h"
#include "workload/query.h"

int main() {
  using namespace sthist;

  // A dense square cluster in the upper-right quadrant, nothing elsewhere —
  // the Figure 4 setting.
  Dataset data(2);
  Rng rng(4);
  Point p(2);
  for (int i = 0; i < 2000; ++i) {
    p[0] = rng.Uniform(55, 95);
    p[1] = rng.Uniform(55, 95);
    data.Append(p);
  }
  Executor executor(data);
  Box domain = Box::Cube(2, 0, 100);

  // Query A captures the cluster tightly; query B is a sloppy rectangle
  // covering only the cluster's lower-left corner plus empty space.
  Box query_a({55.0, 55.0}, {95.0, 95.0});
  Box query_b({40.0, 40.0}, {75.0, 75.0});

  STHolesConfig config;
  config.max_buckets = 2;

  auto run_order = [&](const Box& first, const Box& second,
                       const char* label) {
    STHoles hist(domain, static_cast<double>(data.size()), config);
    hist.Refine(first, executor);
    hist.Refine(second, executor);
    std::printf("---- order: %s ----\n%s", label,
                FormatBucketTree(hist).c_str());
    Workload probes = {query_a, query_b, Box({60.0, 60.0}, {90.0, 90.0}),
                       Box({10.0, 10.0}, {40.0, 40.0})};
    std::printf("mean abs error over probe queries: %.1f\n\n",
                MeanAbsoluteError(hist, probes, executor));
  };

  std::printf("Two queries, two orders, budget = 2 buckets (Figure 4).\n");
  std::printf("Query A (tight): %s\n", query_a.ToString().c_str());
  std::printf("Query B (sloppy): %s\n\n", query_b.ToString().c_str());

  run_order(query_a, query_b, "A then B (good: tight bucket first)");
  run_order(query_b, query_a, "B then A (bad: sloppy bucket first)");

  std::printf(
      "The histogram favors existing buckets over new ones: when the sloppy\n"
      "rectangle arrives first, the informative second query is shrunk\n"
      "around it, and the final 2-bucket layout misses part of the cluster.\n");
  return 0;
}

// A miniature query optimizer making scan-vs-index decisions from histogram
// selectivity estimates — the paper's motivating scenario.
//
// The access-path rule of thumb: a secondary-index lookup costs roughly one
// random I/O per qualifying tuple, a full scan one sequential pass. With a
// 10x sequential/random advantage, the index wins only when selectivity is
// below ~10%. A histogram that misestimates selectivity picks the wrong
// path; this example counts wrong decisions and the total simulated I/O cost
// with (a) exact counts, (b) uninitialized STHoles, (c) MineClus-initialized
// STHoles.
//
//   ./query_optimizer

#include <cstdio>

#include "clustering/mineclus.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "histogram/stholes.h"
#include "init/initializer.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace {

using namespace sthist;

// Simulated cost model (arbitrary units): scanning reads every tuple
// sequentially; the index pays a random-access premium per result tuple.
constexpr double kSequentialCostPerTuple = 1.0;
constexpr double kRandomCostPerTuple = 10.0;

struct PlanStats {
  size_t index_picks = 0;
  size_t wrong_picks = 0;
  double total_cost = 0.0;
};

// Decides scan vs index from `estimate`, then pays the cost implied by the
// *real* cardinality.
void Decide(double estimate, double real, double table_tuples,
            PlanStats* stats) {
  double scan_cost = table_tuples * kSequentialCostPerTuple;
  bool pick_index = estimate * kRandomCostPerTuple < scan_cost;
  bool index_is_right = real * kRandomCostPerTuple < scan_cost;
  stats->index_picks += pick_index;
  stats->wrong_picks += pick_index != index_is_right;
  stats->total_cost +=
      pick_index ? real * kRandomCostPerTuple : scan_cost;
}

}  // namespace

int main() {
  using namespace sthist;

  SkyConfig data_config;
  data_config.tuples = 100000;
  GeneratedData g = MakeSky(data_config);
  Executor executor(g.data);
  const double n = static_cast<double>(g.data.size());
  std::printf("catalog: %zu tuples, %zu attributes (synthetic sky survey)\n",
              g.data.size(), g.data.dim());

  STHolesConfig hist_config;
  hist_config.max_buckets = 100;

  STHoles baseline(g.domain, n, hist_config);
  STHoles initialized(g.domain, n, hist_config);

  MineClusConfig mineclus;
  std::vector<SubspaceCluster> clusters =
      RunMineClus(g.data, g.domain, mineclus);
  InitializeHistogram(clusters, g.domain, executor, InitializerConfig{},
                      &initialized);
  std::printf("MineClus: %zu clusters fed to the initialized optimizer\n",
              clusters.size());

  // Both optimizers learn from the same 400 executed queries.
  WorkloadConfig wc;
  wc.num_queries = 400;
  wc.volume_fraction = 0.01;
  wc.centers = CenterDistribution::kData;  // Users query where the data is.
  Workload history = MakeWorkload(g.domain, wc, &g.data);
  Train(&baseline, history, executor);
  Train(&initialized, history, executor);

  // Fresh ad-hoc queries arrive; each one needs an access-path decision.
  wc.num_queries = 400;
  wc.seed = 1234;
  Workload adhoc = MakeWorkload(g.domain, wc, &g.data);

  PlanStats oracle_stats, baseline_stats, init_stats;
  for (const Box& q : adhoc) {
    double real = executor.Count(q);
    Decide(real, real, n, &oracle_stats);
    Decide(baseline.Estimate(q), real, n, &baseline_stats);
    Decide(initialized.Estimate(q), real, n, &init_stats);
  }

  std::printf("\n%-26s %12s %12s %16s\n", "optimizer", "index picks",
              "wrong picks", "total I/O cost");
  auto report = [&](const char* name, const PlanStats& stats) {
    std::printf("%-26s %12zu %12zu %16.0f\n", name, stats.index_picks,
                stats.wrong_picks, stats.total_cost);
  };
  report("exact selectivities", oracle_stats);
  report("STHoles (uninitialized)", baseline_stats);
  report("STHoles + MineClus init", init_stats);

  double overhead_base =
      100.0 * (baseline_stats.total_cost / oracle_stats.total_cost - 1.0);
  double overhead_init =
      100.0 * (init_stats.total_cost / oracle_stats.total_cost - 1.0);
  std::printf(
      "\ncost overhead vs exact: %.1f%% uninitialized, %.1f%% initialized\n",
      overhead_base, overhead_init);
  return 0;
}

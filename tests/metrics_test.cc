#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "histogram/stholes.h"
#include "histogram/trivial.h"
#include "workload/query.h"

namespace sthist {
namespace {

TEST(MetricsTest, MeanAbsoluteErrorByHand) {
  // One point at (5,5); trivial histogram with the wrong total so errors are
  // predictable.
  Dataset data(2);
  data.Append(Point{5.0, 5.0});
  Executor executor(data);
  Box domain = Box::Cube(2, 0, 10);
  TrivialHistogram h(domain, 100.0);

  Workload w = {Box::Cube(2, 0, 10), Box::Cube(2, 0, 5)};
  // Query 1: est 100, real 1 -> error 99.
  // Query 2: est 25, real 1 (the point sits on the closed boundary) -> 24.
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(h, w, executor), (99.0 + 24.0) / 2.0);
}

TEST(MetricsTest, PerfectHistogramHasZeroError) {
  Dataset data(2);
  for (int i = 0; i < 16; ++i) {
    data.Append(Point{1.0 + (i % 4) * 2.0, 1.0 + (i / 4) * 2.0});
  }
  Executor executor(data);
  Box domain = Box::Cube(2, 0, 8);
  TrivialHistogram h(domain, 16.0);
  // Uniform grid data and the aligned full-domain query: exact.
  Workload w = {domain};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(h, w, executor), 0.0);
}

TEST(MetricsTest, NormalizedErrorDividesByTrivial) {
  Dataset data(2);
  data.Append(Point{5.0, 5.0});
  Executor executor(data);
  Box domain = Box::Cube(2, 0, 10);
  Workload w = {Box::Cube(2, 0, 5)};

  TrivialHistogram trivial(domain, 1.0);
  double trivial_mae = MeanAbsoluteError(trivial, w, executor);
  ASSERT_GT(trivial_mae, 0.0);
  EXPECT_DOUBLE_EQ(
      NormalizedAbsoluteError(trivial_mae, domain, 1.0, w, executor), 1.0)
      << "the trivial histogram's own NAE is 1 by definition";
  EXPECT_DOUBLE_EQ(
      NormalizedAbsoluteError(0.5 * trivial_mae, domain, 1.0, w, executor),
      0.5);
}

TEST(MetricsTest, SimulateWithoutLearningLeavesHistogramUnchanged) {
  CrossConfig config;
  config.tuples_per_cluster = 1000;
  config.noise_tuples = 200;
  GeneratedData g = MakeCross(config);
  Executor executor(g.data);

  STHolesConfig hc;
  hc.max_buckets = 20;
  STHoles h(g.domain, static_cast<double>(g.data.size()), hc);

  WorkloadConfig wc;
  wc.num_queries = 30;
  Workload w = MakeWorkload(g.domain, wc);

  double mae = SimulateAndMeasure(&h, w, executor, /*learn=*/false);
  EXPECT_EQ(h.bucket_count(), 0u);
  EXPECT_DOUBLE_EQ(mae, MeanAbsoluteError(h, w, executor))
      << "without learning, simulation equals plain measurement";
}

TEST(MetricsTest, SimulateWithLearningImprovesOverTime) {
  CrossConfig config;
  config.tuples_per_cluster = 3000;
  config.noise_tuples = 600;
  GeneratedData g = MakeCross(config);
  Executor executor(g.data);

  STHolesConfig hc;
  hc.max_buckets = 50;
  STHoles h(g.domain, static_cast<double>(g.data.size()), hc);

  WorkloadConfig wc;
  wc.num_queries = 300;
  Workload w = MakeWorkload(g.domain, wc);

  double first_pass = SimulateAndMeasure(&h, w, executor, /*learn=*/true);
  double second_pass = MeanAbsoluteError(h, w, executor);
  EXPECT_LT(second_pass, first_pass)
      << "after seeing the workload once, it estimates better";
}

TEST(MetricsTest, TrainOnlyRefines) {
  CrossConfig config;
  config.tuples_per_cluster = 1000;
  config.noise_tuples = 100;
  GeneratedData g = MakeCross(config);
  Executor executor(g.data);

  STHolesConfig hc;
  hc.max_buckets = 20;
  STHoles h(g.domain, static_cast<double>(g.data.size()), hc);
  WorkloadConfig wc;
  wc.num_queries = 50;
  Workload w = MakeWorkload(g.domain, wc);
  Train(&h, w, executor);
  EXPECT_GT(h.bucket_count(), 0u);
}

}  // namespace
}  // namespace sthist

#include "clustering/clique.h"

#include <gtest/gtest.h>

#include <set>

#include "core/rng.h"
#include "data/generators.h"

namespace sthist {
namespace {

TEST(CliqueTest, EmptyDatasetYieldsNoClusters) {
  Dataset data(2);
  CliqueClusterer clique((CliqueConfig()));
  EXPECT_TRUE(clique.Cluster(data, Box::Cube(2, 0, 100)).empty());
}

TEST(CliqueTest, FindsASingleDenseBlock) {
  // 80% of the mass in one square block, the rest uniform.
  Dataset data(2);
  Rng rng(3);
  Point p(2);
  for (int i = 0; i < 8000; ++i) {
    p[0] = rng.Uniform(200, 400);
    p[1] = rng.Uniform(600, 800);
    data.Append(p);
  }
  for (int i = 0; i < 2000; ++i) {
    p[0] = rng.Uniform(0, 1000);
    p[1] = rng.Uniform(0, 1000);
    data.Append(p);
  }
  CliqueClusterer clique((CliqueConfig()));
  std::vector<SubspaceCluster> clusters =
      clique.Cluster(data, Box::Cube(2, 0, 1000));
  ASSERT_FALSE(clusters.empty());
  const SubspaceCluster& top = clusters.front();
  EXPECT_EQ(top.relevant_dims, (std::vector<size_t>{0, 1}));
  EXPECT_GT(top.members.size(), 6000u);
  EXPECT_TRUE(Box({150.0, 550.0}, {450.0, 850.0}).Contains(top.core_box));
}

TEST(CliqueTest, CrossBecomesOneConnectedComponent) {
  // Grid-connectivity clustering sees the cross as a single connected dense
  // region in the full 2-d space: the arms meet in the middle. (This is the
  // structural difference to MineClus, whose rectangular clusters separate
  // the bands — and one reason MineClus initializes histograms better.)
  CrossConfig config;
  config.tuples_per_cluster = 5000;
  config.noise_tuples = 1000;
  GeneratedData g = MakeCross(config);
  CliqueClusterer clique((CliqueConfig()));
  std::vector<SubspaceCluster> clusters = clique.Cluster(g.data, g.domain);

  ASSERT_FALSE(clusters.empty());
  const SubspaceCluster& top = clusters.front();
  EXPECT_EQ(top.relevant_dims, (std::vector<size_t>{0, 1}));
  EXPECT_GT(top.members.size(), 9000u) << "both bands plus the crossing";
}

TEST(CliqueTest, ParallelBandsSeparateIntoComponents) {
  // Two parallel horizontal bands: disconnected in the grid, so CLIQUE
  // reports two clusters whose bounding boxes span the full x range.
  Dataset data(2);
  Rng rng(7);
  Point p(2);
  for (int band = 0; band < 2; ++band) {
    double y_lo = band == 0 ? 150.0 : 750.0;
    for (int i = 0; i < 4000; ++i) {
      p[0] = rng.Uniform(0, 1000);
      p[1] = rng.Uniform(y_lo, y_lo + 60.0);
      data.Append(p);
    }
  }
  Box domain = Box::Cube(2, 0, 1000);
  CliqueClusterer clique((CliqueConfig()));
  std::vector<SubspaceCluster> clusters = clique.Cluster(data, domain);

  size_t band_like = 0;
  for (const SubspaceCluster& c : clusters) {
    if (c.members.size() > 3000 &&
        c.core_box.Extent(0) > 0.9 * domain.Extent(0) &&
        c.core_box.Extent(1) < 0.2 * domain.Extent(1)) {
      ++band_like;
    }
  }
  EXPECT_EQ(band_like, 2u);
}

TEST(CliqueTest, MembersLieInTheCoreBox) {
  GaussConfig config;
  config.cluster_tuples = 10000;
  config.noise_tuples = 1000;
  GeneratedData g = MakeGauss(config);
  CliqueClusterer clique((CliqueConfig()));
  std::vector<SubspaceCluster> clusters = clique.Cluster(g.data, g.domain);
  ASSERT_FALSE(clusters.empty());
  for (const SubspaceCluster& c : clusters) {
    for (size_t row : c.members) {
      EXPECT_TRUE(c.core_box.ContainsPoint(g.data.row(row)));
    }
  }
}

TEST(CliqueTest, ScoresAreSortedDescending) {
  GaussConfig config;
  config.cluster_tuples = 8000;
  config.noise_tuples = 800;
  GeneratedData g = MakeGauss(config);
  CliqueClusterer clique((CliqueConfig()));
  std::vector<SubspaceCluster> clusters = clique.Cluster(g.data, g.domain);
  for (size_t i = 1; i < clusters.size(); ++i) {
    EXPECT_GE(clusters[i - 1].score, clusters[i].score);
  }
}

TEST(CliqueTest, MaxDimsCapsSubspaceSize) {
  GaussConfig config;
  config.cluster_tuples = 6000;
  config.noise_tuples = 600;
  GeneratedData g = MakeGauss(config);
  CliqueConfig cc;
  cc.max_dims = 2;
  CliqueClusterer clique(cc);
  for (const SubspaceCluster& c : clique.Cluster(g.data, g.domain)) {
    EXPECT_LE(c.relevant_dims.size(), 2u);
  }
}

TEST(CliqueTest, MaxClustersCapIsHonored) {
  GaussConfig config;
  config.cluster_tuples = 6000;
  config.noise_tuples = 600;
  GeneratedData g = MakeGauss(config);
  CliqueConfig cc;
  cc.max_clusters = 2;
  CliqueClusterer clique(cc);
  EXPECT_LE(clique.Cluster(g.data, g.domain).size(), 2u);
}

TEST(CliqueTest, PureNoiseYieldsNothingHuge) {
  Dataset data(3);
  Rng rng(9);
  Point p(3);
  for (int i = 0; i < 5000; ++i) {
    for (size_t d = 0; d < 3; ++d) p[d] = rng.Uniform(0, 1000);
    data.Append(p);
  }
  CliqueClusterer clique((CliqueConfig()));
  std::vector<SubspaceCluster> clusters =
      clique.Cluster(data, Box::Cube(3, 0, 1000));
  // Uniform data sits right at the uniform expectation; the 1.5x adaptive
  // threshold admits at most borderline fluctuations, never most of the
  // data as one cluster.
  for (const SubspaceCluster& c : clusters) {
    EXPECT_LT(c.members.size(), 2500u);
  }
}

}  // namespace
}  // namespace sthist

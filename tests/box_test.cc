#include "core/box.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace sthist {
namespace {

TEST(BoxTest, CubeConstruction) {
  Box b = Box::Cube(3, 0.0, 10.0);
  EXPECT_EQ(b.dim(), 3u);
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_DOUBLE_EQ(b.lo(d), 0.0);
    EXPECT_DOUBLE_EQ(b.hi(d), 10.0);
    EXPECT_DOUBLE_EQ(b.Extent(d), 10.0);
  }
  EXPECT_DOUBLE_EQ(b.Volume(), 1000.0);
}

TEST(BoxTest, VolumeOfDegenerateBoxIsZero) {
  Box b({0.0, 1.0}, {5.0, 1.0});
  EXPECT_DOUBLE_EQ(b.Volume(), 0.0);
}

TEST(BoxTest, ContainsPointClosedIntervals) {
  Box b({0.0, 0.0}, {1.0, 1.0});
  EXPECT_TRUE(b.ContainsPoint(Point{0.0, 0.0}));
  EXPECT_TRUE(b.ContainsPoint(Point{1.0, 1.0}));
  EXPECT_TRUE(b.ContainsPoint(Point{0.5, 0.5}));
  EXPECT_FALSE(b.ContainsPoint(Point{1.0001, 0.5}));
  EXPECT_FALSE(b.ContainsPoint(Point{0.5, -0.0001}));
}

TEST(BoxTest, ContainsBoxAllowsTouchingBoundaries) {
  Box outer({0.0, 0.0}, {10.0, 10.0});
  Box inner({0.0, 2.0}, {10.0, 3.0});
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Contains(outer));
}

TEST(BoxTest, IntersectsIsOpenOverlap) {
  Box a({0.0, 0.0}, {1.0, 1.0});
  Box touching({1.0, 0.0}, {2.0, 1.0});
  Box overlapping({0.5, 0.5}, {2.0, 2.0});
  Box disjoint({3.0, 3.0}, {4.0, 4.0});
  EXPECT_FALSE(a.Intersects(touching)) << "shared face is not an overlap";
  EXPECT_TRUE(a.Intersects(overlapping));
  EXPECT_FALSE(a.Intersects(disjoint));
}

TEST(BoxTest, IntersectionGeometry) {
  Box a({0.0, 0.0}, {4.0, 4.0});
  Box b({2.0, 1.0}, {6.0, 3.0});
  Box i = a.Intersection(b);
  EXPECT_EQ(i, Box({2.0, 1.0}, {4.0, 3.0}));
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(b), 4.0);
}

TEST(BoxTest, IntersectionOfDisjointBoxesIsDegenerate) {
  Box a({0.0, 0.0}, {1.0, 1.0});
  Box b({2.0, 2.0}, {3.0, 3.0});
  EXPECT_DOUBLE_EQ(a.Intersection(b).Volume(), 0.0);
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(b), 0.0);
}

TEST(BoxTest, EnclosureCoversBoth) {
  Box a({0.0, 5.0}, {1.0, 6.0});
  Box b({3.0, 0.0}, {4.0, 1.0});
  Box e = Box::Enclosure(a, b);
  EXPECT_TRUE(e.Contains(a));
  EXPECT_TRUE(e.Contains(b));
  EXPECT_EQ(e, Box({0.0, 0.0}, {4.0, 6.0}));
}

TEST(BoxTest, ExtendToContainGrowsInPlace) {
  Box a({0.0, 0.0}, {1.0, 1.0});
  a.ExtendToContain(Box({-1.0, 0.5}, {0.5, 3.0}));
  EXPECT_EQ(a, Box({-1.0, 0.0}, {1.0, 3.0}));
}

TEST(BoxTest, ApproxEquals) {
  Box a({0.0, 0.0}, {1.0, 1.0});
  Box b({0.0, 1e-12}, {1.0, 1.0});
  EXPECT_TRUE(a.ApproxEquals(b, 1e-9));
  EXPECT_FALSE(a.ApproxEquals(b, 1e-15));
  EXPECT_FALSE(a.ApproxEquals(Box::Cube(3, 0.0, 1.0), 1.0));
}

TEST(BoxTest, ToStringMentionsEveryDimension) {
  Box b({0.0, 2.0}, {1.0, 5.0});
  EXPECT_EQ(b.ToString(), "[0,1]x[2,5]");
}

// Property sweep: intersection volume is symmetric, bounded by each operand's
// volume, and consistent with Intersects.
class BoxPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoxPropertyTest, IntersectionVolumeInvariants) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    size_t dim = 1 + rng.Index(5);
    std::vector<double> alo(dim), ahi(dim), blo(dim), bhi(dim);
    for (size_t d = 0; d < dim; ++d) {
      double a1 = rng.Uniform(-10, 10), a2 = rng.Uniform(-10, 10);
      double b1 = rng.Uniform(-10, 10), b2 = rng.Uniform(-10, 10);
      alo[d] = std::min(a1, a2);
      ahi[d] = std::max(a1, a2);
      blo[d] = std::min(b1, b2);
      bhi[d] = std::max(b1, b2);
    }
    Box a(alo, ahi), b(blo, bhi);
    double vab = a.IntersectionVolume(b);
    double vba = b.IntersectionVolume(a);
    EXPECT_DOUBLE_EQ(vab, vba);
    EXPECT_LE(vab, a.Volume() + 1e-12);
    EXPECT_LE(vab, b.Volume() + 1e-12);
    EXPECT_EQ(vab > 0.0, a.Intersects(b));
    // Intersection box volume agrees with IntersectionVolume.
    EXPECT_NEAR(a.Intersection(b).Volume(), vab, 1e-9);
    // Enclosure contains both.
    Box e = Box::Enclosure(a, b);
    EXPECT_TRUE(e.Contains(a));
    EXPECT_TRUE(e.Contains(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sthist

// Concurrency battery for the snapshot-isolated serving layer
// (serve/histogram_service.h). The heavyweight test runs 8 reader threads
// against a live refiner for >10k reads — the structural race detector for
// the TSan CI job — and then holds the service to the determinism contract:
// after draining, the published snapshot's estimates are bitwise-identical
// (std::bit_cast) to a single-threaded replay of the identical feedback
// sequence.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/bounded_queue.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "histogram/stholes.h"
#include "serve/histogram_service.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

struct ServeSetup {
  GeneratedData g;
  std::unique_ptr<Executor> executor;
  Workload train;
  Workload probes;
};

ServeSetup MakeSetup(size_t tuples_per_cluster, size_t train_queries,
                     size_t probe_queries) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = tuples_per_cluster;
  data_config.noise_tuples = tuples_per_cluster / 5;
  ServeSetup setup{MakeCross(data_config), {}, {}, {}};
  setup.executor = std::make_unique<Executor>(setup.g.data);

  WorkloadConfig wc;
  wc.num_queries = train_queries;
  wc.volume_fraction = 0.01;
  wc.seed = 31;
  setup.train = MakeWorkload(setup.g.domain, wc);
  wc.num_queries = probe_queries;
  wc.seed = 97;
  setup.probes = MakeWorkload(setup.g.domain, wc);
  return setup;
}

std::unique_ptr<STHoles> MakeHistogram(const ServeSetup& setup,
                                       size_t buckets) {
  STHolesConfig config;
  config.max_buckets = buckets;
  return std::make_unique<STHoles>(
      setup.g.domain, static_cast<double>(setup.g.data.size()), config);
}

// Replays `feedback` serially onto a fresh histogram and asserts the
// service's final snapshot matches it bit for bit over the probe workload.
void ExpectBitwiseReplayMatch(const ServeSetup& setup, size_t buckets,
                              const std::vector<Box>& feedback,
                              const Histogram& snapshot) {
  std::unique_ptr<STHoles> replay = MakeHistogram(setup, buckets);
  for (const Box& q : feedback) replay->Refine(q, *setup.executor);
  for (const Box& probe : setup.probes) {
    double expected = replay->EstimateLinear(probe);
    EXPECT_TRUE(BitEqual(snapshot.EstimateLinear(probe), expected))
        << "linear estimate diverged on " << probe.ToString();
    EXPECT_TRUE(BitEqual(snapshot.Estimate(probe), expected))
        << "indexed estimate diverged on " << probe.ToString();
  }
}

TEST(ServeTest, InitialSnapshotServesTheSeededHistogram) {
  ServeSetup setup = MakeSetup(800, 20, 30);
  std::unique_ptr<STHoles> hist = MakeHistogram(setup, 30);
  Train(hist.get(), setup.train, *setup.executor);
  // Reference estimates before the service takes ownership.
  std::vector<double> expected;
  for (const Box& probe : setup.probes) {
    expected.push_back(hist->Estimate(probe));
  }

  HistogramService service(std::move(hist), *setup.executor);
  for (size_t i = 0; i < setup.probes.size(); ++i) {
    EXPECT_TRUE(BitEqual(service.Estimate(setup.probes[i]), expected[i]));
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.reads_served, setup.probes.size());
  EXPECT_EQ(stats.snapshot_epoch, 0u);
  EXPECT_EQ(stats.feedback_accepted, 0u);
  EXPECT_EQ(stats.staleness, 0u);
}

TEST(ServeTest, DrainMakesEveryAcceptedFeedbackVisible) {
  ServeSetup setup = MakeSetup(800, 60, 30);
  HistogramService service(MakeHistogram(setup, 40), *setup.executor);

  std::vector<Box> accepted;
  for (const Box& q : setup.train) {
    if (service.SubmitFeedback(q) == FeedbackOutcome::kAccepted) {
      accepted.push_back(q);
    }
  }
  EXPECT_TRUE(service.Drain().ok());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.feedback_accepted, accepted.size());
  EXPECT_EQ(stats.feedback_applied, accepted.size());
  EXPECT_EQ(stats.staleness, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GT(stats.snapshot_epoch, 0u);

  ExpectBitwiseReplayMatch(setup, 40, accepted, *service.snapshot());
}

TEST(ServeTest, PublishCadenceNeverChangesTheDrainedSnapshot) {
  ServeSetup setup = MakeSetup(600, 50, 25);
  for (size_t publish_batch : {1u, 7u, 64u}) {
    ServiceConfig config;
    config.publish_batch = publish_batch;
    HistogramService service(MakeHistogram(setup, 30), *setup.executor,
                             config);
    std::vector<Box> accepted;
    for (const Box& q : setup.train) {
      if (service.SubmitFeedback(q) == FeedbackOutcome::kAccepted) {
        accepted.push_back(q);
      }
    }
    service.Stop();
    ExpectBitwiseReplayMatch(setup, 30, accepted, *service.snapshot());
  }
}

TEST(ServeTest, StopShedsLateFeedbackAndKeepsServing) {
  ServeSetup setup = MakeSetup(600, 20, 20);
  HistogramService service(MakeHistogram(setup, 30), *setup.executor);
  for (const Box& q : setup.train) service.SubmitFeedback(q);
  service.Stop();
  service.Stop();  // Idempotent.

  EXPECT_EQ(service.SubmitFeedback(setup.train.front()),
            FeedbackOutcome::kStopped);
  EXPECT_GE(service.stats().feedback_dropped(), 1u);
  EXPECT_GE(service.stats().feedback_dropped_stopped, 1u);
  // A drain on the stopped service must not hang: the horizon was published
  // by Stop, so it reports OK immediately.
  EXPECT_TRUE(service.Drain().ok());
  // The final snapshot still answers.
  double est = service.Estimate(setup.probes.front());
  EXPECT_TRUE(std::isfinite(est));
}

// A feedback oracle that parks the refiner inside its first Count call until
// released, making queue-full backpressure deterministic to provoke.
class GateOracle : public CardinalityOracle {
 public:
  explicit GateOracle(const CardinalityOracle& inner) : inner_(inner) {}

  double Count(const Box& box) const override {
    entered_.Open();
    release_.Wait();
    return inner_.Count(box);
  }

  void WaitUntilEntered() const { entered_.Wait(); }
  void Release() const { release_.Open(); }

 private:
  // One-shot latch, openable/awaitable from any thread.
  class Flag {
   public:
    void Open() {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        open_ = true;
      }
      cv_.notify_all();
    }
    void Wait() {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return open_; });
    }

   private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool open_ = false;
  };

  const CardinalityOracle& inner_;
  mutable Flag entered_;
  mutable Flag release_;
};

TEST(ServeTest, FullQueueShedsFeedbackInsteadOfBlocking) {
  ServeSetup setup = MakeSetup(400, 20, 10);
  GateOracle gate(*setup.executor);

  ServiceConfig config;
  config.queue_capacity = 4;
  HistogramService service(MakeHistogram(setup, 20), gate, config);

  // First item: the refiner pops it and parks inside the gated oracle.
  ASSERT_EQ(service.SubmitFeedback(setup.train[0]),
            FeedbackOutcome::kAccepted);
  gate.WaitUntilEntered();

  // Now the queue fills to capacity, then sheds.
  size_t accepted = 0, shed = 0;
  for (size_t i = 0; i < 8; ++i) {
    FeedbackOutcome outcome =
        service.SubmitFeedback(setup.train[i % setup.train.size()]);
    if (outcome == FeedbackOutcome::kAccepted) {
      ++accepted;
    } else {
      EXPECT_EQ(outcome, FeedbackOutcome::kQueueFull)
          << "a live service sheds only on backpressure";
      ++shed;
    }
  }
  EXPECT_EQ(accepted, config.queue_capacity);
  EXPECT_EQ(shed, 8 - config.queue_capacity);
  EXPECT_EQ(service.stats().feedback_dropped(), shed);
  EXPECT_EQ(service.stats().feedback_dropped_full, shed);

  gate.Release();
  service.Stop();
  EXPECT_EQ(service.stats().feedback_applied, accepted + 1);
}

// The battery's centerpiece: 8 reader threads hammer Estimate while the
// refiner folds in live feedback. Every read must be finite and internally
// consistent — the indexed estimate bitwise-equal to the linear scan on the
// *same* snapshot — and the drained end state must equal the serial replay.
TEST(ServeTest, ConcurrentReadersSeeConsistentSnapshots) {
  constexpr size_t kReaders = 8;
  constexpr size_t kReadsPerReader = 1500;  // > 10k reads in total.
  constexpr size_t kBuckets = 40;

  ServeSetup setup = MakeSetup(800, 250, 40);
  HistogramService service(MakeHistogram(setup, kBuckets), *setup.executor);

  std::atomic<bool> start{false};
  std::atomic<size_t> inconsistent{0};
  std::atomic<size_t> nonfinite{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!start.load()) std::this_thread::yield();
      for (size_t i = 0; i < kReadsPerReader; ++i) {
        const Box& q = setup.probes[(r + i) % setup.probes.size()];
        // Pin one snapshot: both paths must agree on it bit for bit even
        // while newer epochs are being published underneath.
        std::shared_ptr<const Histogram> snap = service.snapshot();
        double indexed = snap->Estimate(q);
        double linear = snap->EstimateLinear(q);
        if (!std::isfinite(indexed) || !std::isfinite(linear)) {
          nonfinite.fetch_add(1);
        }
        if (!BitEqual(indexed, linear)) inconsistent.fetch_add(1);
      }
    });
  }

  start.store(true);
  // Feed the refiner from this thread while the readers run; the single
  // producer makes the accepted sequence the submission order.
  std::vector<Box> accepted;
  for (const Box& q : setup.train) {
    if (service.SubmitFeedback(q) == FeedbackOutcome::kAccepted) {
      accepted.push_back(q);
    }
  }
  for (std::thread& t : readers) t.join();
  service.Stop();

  EXPECT_EQ(nonfinite.load(), 0u);
  EXPECT_EQ(inconsistent.load(), 0u);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.feedback_applied, accepted.size());
  EXPECT_EQ(stats.staleness, 0u);

  ExpectBitwiseReplayMatch(setup, kBuckets, accepted, *service.snapshot());
}

TEST(ServeTest, EstimateBatchAnswersFromOneEpoch) {
  ServeSetup setup = MakeSetup(600, 80, 40);
  HistogramService service(MakeHistogram(setup, 30), *setup.executor);

  // Concurrent refinement runs while batches are served; each batch is
  // internally consistent because it holds one snapshot.
  std::thread feeder([&] {
    for (const Box& q : setup.train) (void)service.SubmitFeedback(q);
  });
  for (int round = 0; round < 30; ++round) {
    std::vector<double> batch = service.EstimateBatch(setup.probes);
    ASSERT_EQ(batch.size(), setup.probes.size());
    for (double est : batch) EXPECT_TRUE(std::isfinite(est));
  }
  feeder.join();
  EXPECT_TRUE(service.Drain().ok());

  // Quiescent: one more batch must match the snapshot exactly.
  std::shared_ptr<const Histogram> snap = service.snapshot();
  std::vector<double> batch = service.EstimateBatch(setup.probes);
  for (size_t i = 0; i < setup.probes.size(); ++i) {
    EXPECT_TRUE(BitEqual(batch[i], snap->Estimate(setup.probes[i])));
  }
  EXPECT_GE(service.stats().reads_served,
            31u * setup.probes.size());
}

TEST(BoundedQueueTest, PushPopAndCloseSemantics) {
  BoundedQueue<int> queue(3);
  EXPECT_EQ(queue.TryPush(1), PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(2), PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(3), PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(4), PushResult::kFull) << "capacity reached";
  EXPECT_EQ(queue.size(), 3u);

  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 2), 2u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.TryPush(4), PushResult::kAccepted);

  queue.Close();
  EXPECT_EQ(queue.TryPush(5), PushResult::kClosed)
      << "closed queue refuses items";
  EXPECT_EQ(queue.PopBatch(&batch, 10), 2u) << "drains the remainder";
  EXPECT_EQ(batch, (std::vector<int>{3, 4}));
  EXPECT_EQ(queue.PopBatch(&batch, 10), 0u) << "terminal signal";
}

TEST(BoundedQueueTest, ManyProducersOneConsumerLosesNothing) {
  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 2000;
  BoundedQueue<size_t> queue(64);

  std::atomic<size_t> accepted{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        if (queue.TryPush(p * kPerProducer + i) == PushResult::kAccepted) {
          accepted.fetch_add(1);
        }
      }
    });
  }

  size_t consumed = 0;
  std::thread consumer([&] {
    std::vector<size_t> batch;
    while (queue.PopBatch(&batch, 32) > 0) consumed += batch.size();
  });

  for (std::thread& t : producers) t.join();
  queue.Close();
  consumer.join();
  EXPECT_EQ(consumed, accepted.load());
}

}  // namespace
}  // namespace sthist

// Snapshot persistence battery (DESIGN.md §17): binary round-trips are
// bit-exact, a service restored from a snapshot replays the rest of its
// feedback stream to the same final estimates as the uninterrupted run, a
// file truncated at *every* byte boundary fails closed with a Status (the
// kill-at-every-byte sweep — crashes during WriteFileAtomic can only leave
// the old or the new file, but a torn read must still never crash a reader),
// and Drain followed immediately by SaveSnapshot observes the full accepted
// history (regression for the publish-barrier bug).

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/box.h"
#include "data/generators.h"
#include "histogram/stholes.h"
#include "serve/histogram_service.h"
#include "serve/service_fleet.h"
#include "serve/snapshot_io.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

STHolesConfig Budget(size_t buckets) {
  STHolesConfig config;
  config.max_buckets = buckets;
  return config;
}

struct Rig {
  Rig() : g(MakeData()), executor(std::make_unique<Executor>(g.data)) {}

  static GeneratedData MakeData() {
    CrossConfig config;
    config.tuples_per_cluster = 1000;
    config.noise_tuples = 200;
    return MakeCross(config);
  }

  Workload Queries(size_t n, uint64_t seed) const {
    WorkloadConfig wc;
    wc.num_queries = n;
    wc.seed = seed;
    return MakeWorkload(g.domain, wc);
  }

  std::unique_ptr<STHoles> Trained(size_t buckets, size_t queries,
                                   uint64_t seed = 7) const {
    auto hist = std::make_unique<STHoles>(
        g.domain, static_cast<double>(g.data.size()), Budget(buckets));
    for (const Box& q : Queries(queries, seed)) {
      hist->Refine(q, *executor);
    }
    return hist;
  }

  std::string TempPath(const std::string& name) const {
    return testing::TempDir() + name;
  }

  GeneratedData g;
  std::unique_ptr<Executor> executor;
};

void ExpectBitIdentical(const Histogram& a, const Histogram& b,
                        const Workload& probes) {
  for (const Box& q : probes) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a.Estimate(q)),
              std::bit_cast<uint64_t>(b.Estimate(q)));
  }
}

TEST(SnapshotPersistTest, BinaryRoundTripIsBitExact) {
  Rig rig;
  std::unique_ptr<STHoles> hist = rig.Trained(40, 120);
  const std::string blob = hist->SerializeBinary();
  ASSERT_FALSE(blob.empty());

  StatusOr<std::unique_ptr<STHoles>> restored =
      STHoles::DeserializeBinary(blob, Budget(40));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  (*restored)->CheckInvariants();
  EXPECT_EQ((*restored)->bucket_count(), hist->bucket_count());
  ExpectBitIdentical(**restored, *hist, rig.Queries(200, 31));
  // Save → load → save is byte-stable.
  EXPECT_EQ((*restored)->SerializeBinary(), blob);
}

TEST(SnapshotPersistTest, AtomicWriteRoundTripsThroughDisk) {
  Rig rig;
  std::unique_ptr<STHoles> hist = rig.Trained(25, 80);
  const std::string blob = hist->SerializeBinary();
  const std::string path = rig.TempPath("sthist_blob.snap");

  ASSERT_TRUE(snapshot_io::WriteFileAtomic(path, blob).ok());
  StatusOr<std::string> read_back = snapshot_io::ReadFile(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, blob);
  // Overwrite with different contents: readers see old or new, and after
  // the rename definitely the new.
  const std::string blob2 = rig.Trained(25, 81)->SerializeBinary();
  ASSERT_TRUE(snapshot_io::WriteFileAtomic(path, blob2).ok());
  EXPECT_EQ(*snapshot_io::ReadFile(path), blob2);
  std::remove(path.c_str());

  EXPECT_EQ(snapshot_io::ReadFile(rig.TempPath("does_not_exist.snap"))
                .status()
                .code(),
            StatusCode::kNotFound);
}

// The warm-restart differential: run A streams feedback deterministically
// and saves mid-run; run B restores from the file and streams only the
// remainder. Their final published snapshots must be bit-identical.
TEST(SnapshotPersistTest, RestoredServiceReplaysToIdenticalSnapshot) {
  Rig rig;
  const Workload stream = rig.Queries(300, 17);
  const Workload probes = rig.Queries(120, 71);
  const std::string path = rig.TempPath("sthist_service.snap");
  const size_t cut = 140;  // Where the "crash" snapshot is taken.

  ServiceConfig sc;
  HistogramService run_a(rig.Trained(30, 60), *rig.executor, sc);
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(run_a.SubmitFeedback(stream[i]), FeedbackOutcome::kAccepted);
    if (i + 1 == cut) {
      ASSERT_TRUE(run_a.Drain().ok());
      ASSERT_TRUE(run_a.SaveSnapshot(path).ok());
    }
  }
  ASSERT_TRUE(run_a.Drain().ok());
  run_a.Stop();

  StatusOr<std::string> bytes = snapshot_io::ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  StatusOr<snapshot_io::ServiceSnapshot> saved =
      snapshot_io::DecodeServiceSnapshot(*bytes);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  ASSERT_EQ(saved->applied_feedback, cut);

  StatusOr<std::unique_ptr<STHoles>> restored =
      STHoles::DeserializeBinary(saved->histogram, Budget(30));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ServiceConfig sc_b;
  sc_b.restored_feedback = static_cast<size_t>(saved->applied_feedback);
  HistogramService run_b(*std::move(restored), *rig.executor, sc_b);
  for (size_t i = cut; i < stream.size(); ++i) {
    ASSERT_EQ(run_b.SubmitFeedback(stream[i]), FeedbackOutcome::kAccepted);
  }
  ASSERT_TRUE(run_b.Drain().ok());
  run_b.Stop();

  ExpectBitIdentical(*run_a.snapshot(), *run_b.snapshot(), probes);

  // A save from the restored service carries the cumulative watermark, so a
  // second restore would skip the right prefix too.
  const std::string path_b = rig.TempPath("sthist_service_b.snap");
  ASSERT_TRUE(run_b.SaveSnapshot(path_b).ok());
  StatusOr<std::string> bytes_b = snapshot_io::ReadFile(path_b);
  ASSERT_TRUE(bytes_b.ok());
  StatusOr<snapshot_io::ServiceSnapshot> saved_b =
      snapshot_io::DecodeServiceSnapshot(*bytes_b);
  ASSERT_TRUE(saved_b.ok());
  EXPECT_EQ(saved_b->applied_feedback, stream.size());
  std::remove(path.c_str());
  std::remove(path_b.c_str());
}

// Publishing with clones and publishing with COW snapshots are the same
// observable service: identical estimates for identical feedback.
TEST(SnapshotPersistTest, ClonePublishAndCowPublishAreBitIdentical) {
  Rig rig;
  const Workload stream = rig.Queries(200, 23);
  const Workload probes = rig.Queries(80, 91);

  ServiceConfig cow;
  cow.clone_publish = false;
  ServiceConfig clone;
  clone.clone_publish = true;
  HistogramService service_cow(rig.Trained(28, 50), *rig.executor, cow);
  HistogramService service_clone(rig.Trained(28, 50), *rig.executor, clone);
  for (const Box& q : stream) {
    ASSERT_EQ(service_cow.SubmitFeedback(q), FeedbackOutcome::kAccepted);
    ASSERT_EQ(service_clone.SubmitFeedback(q), FeedbackOutcome::kAccepted);
  }
  ASSERT_TRUE(service_cow.Drain().ok());
  ASSERT_TRUE(service_clone.Drain().ok());
  ExpectBitIdentical(*service_cow.snapshot(), *service_clone.snapshot(),
                     probes);
}

// Kill-at-every-byte: every strict prefix of a valid snapshot file decodes
// to an error Status — the payload-size pin makes torn tails unambiguous —
// and never crashes, for both container layers and the histogram blob.
TEST(SnapshotPersistTest, EveryTruncationFailsClosed) {
  Rig rig;
  ServiceConfig sc;
  HistogramService service(rig.Trained(20, 60), *rig.executor, sc);
  for (const Box& q : rig.Queries(40, 3)) {
    ASSERT_EQ(service.SubmitFeedback(q), FeedbackOutcome::kAccepted);
  }
  ASSERT_TRUE(service.Drain().ok());
  const std::string path = rig.TempPath("sthist_torn.snap");
  ASSERT_TRUE(service.SaveSnapshot(path).ok());
  StatusOr<std::string> whole = snapshot_io::ReadFile(path);
  ASSERT_TRUE(whole.ok());
  std::remove(path.c_str());

  for (size_t len = 0; len < whole->size(); ++len) {
    const std::string_view prefix(whole->data(), len);
    StatusOr<snapshot_io::ServiceSnapshot> decoded =
        snapshot_io::DecodeServiceSnapshot(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes accepted";
  }
  StatusOr<snapshot_io::ServiceSnapshot> full =
      snapshot_io::DecodeServiceSnapshot(*whole);
  ASSERT_TRUE(full.ok());

  // The nested histogram blob fails closed the same way.
  for (size_t len = 0; len < full->histogram.size(); ++len) {
    StatusOr<std::unique_ptr<STHoles>> decoded = STHoles::DeserializeBinary(
        std::string_view(full->histogram.data(), len), Budget(20));
    EXPECT_FALSE(decoded.ok()) << "blob prefix of " << len << " accepted";
  }
}

// Regression for the §17 publish-barrier bug: Drain followed immediately by
// SaveSnapshot must persist a watermark equal to everything accepted so far
// AND the histogram that watermark describes. Before the fix, the watermark
// could advance ahead of the snapshot pointer, so the saved file paired a
// new watermark with an old epoch's histogram.
TEST(SnapshotPersistTest, DrainThenSaveObservesPublishedHistory) {
  Rig rig;
  const Workload stream = rig.Queries(240, 29);
  ServiceConfig sc;
  sc.publish_batch = 64;  // Publishes lag submissions: the racy window.
  HistogramService service(rig.Trained(24, 40), *rig.executor, sc);
  const std::string path = rig.TempPath("sthist_barrier.snap");

  size_t accepted = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(service.SubmitFeedback(stream[i]), FeedbackOutcome::kAccepted);
    ++accepted;
    if ((i + 1) % 30 != 0) continue;
    ASSERT_TRUE(service.Drain().ok());
    ASSERT_TRUE(service.SaveSnapshot(path).ok());
    StatusOr<std::string> bytes = snapshot_io::ReadFile(path);
    ASSERT_TRUE(bytes.ok());
    StatusOr<snapshot_io::ServiceSnapshot> saved =
        snapshot_io::DecodeServiceSnapshot(*bytes);
    ASSERT_TRUE(saved.ok());
    // The watermark covers every accepted item...
    EXPECT_EQ(saved->applied_feedback, accepted);
    // ...and the histogram is the one the watermark describes: byte-equal
    // to the currently published snapshot.
    EXPECT_EQ(saved->histogram, service.snapshot()->SerializeBinary());
  }
  std::remove(path.c_str());
}

// Fleet hand-off: the STHF snapshot restores every tenant to estimates
// bit-identical to the snapshots the saving fleet served.
TEST(SnapshotPersistTest, FleetSnapshotRestoresEveryTenantBitExactly) {
  Rig rig;
  FleetConfig fc;
  fc.refiners = 2;
  fc.seed = 99;
  ServiceFleet fleet(fc);
  const std::vector<std::string> keys = {"alpha", "bravo", "charlie"};
  for (const std::string& key : keys) {
    ASSERT_TRUE(
        fleet
            .AddTenant(key,
                       std::make_unique<STHoles>(
                           rig.g.domain,
                           static_cast<double>(rig.g.data.size()), Budget(18)),
                       *rig.executor)
            .ok());
  }
  for (size_t t = 0; t < keys.size(); ++t) {
    for (const Box& q : rig.Queries(50, 100 + t)) {
      ASSERT_TRUE(fleet.SubmitFeedback(keys[t], q).ok());
    }
  }
  ASSERT_TRUE(fleet.Drain().ok());

  const std::string path = rig.TempPath("sthist_fleet.snap");
  ASSERT_TRUE(fleet.SaveSnapshot(path).ok());
  StatusOr<std::string> bytes = snapshot_io::ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  StatusOr<snapshot_io::FleetSnapshot> saved =
      snapshot_io::DecodeFleetSnapshot(*bytes);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  std::remove(path.c_str());

  EXPECT_EQ(saved->seed, fc.seed);
  ASSERT_EQ(saved->tenants.size(), keys.size());
  const Workload probes = rig.Queries(60, 555);
  for (const snapshot_io::FleetTenant& tenant : saved->tenants) {
    SCOPED_TRACE("tenant " + tenant.key);
    EXPECT_EQ(tenant.estimator, "stholes");
    std::shared_ptr<const Histogram> live = fleet.Snapshot(tenant.key);
    ASSERT_NE(live, nullptr);
    StatusOr<std::unique_ptr<STHoles>> restored =
        STHoles::DeserializeBinary(tenant.histogram, Budget(18));
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    ExpectBitIdentical(**restored, *live, probes);
  }

  // Keys arrive sorted, so two saves of the same fleet are byte-identical.
  std::vector<std::string> saved_keys;
  for (const snapshot_io::FleetTenant& tenant : saved->tenants) {
    saved_keys.push_back(tenant.key);
  }
  EXPECT_TRUE(std::is_sorted(saved_keys.begin(), saved_keys.end()));
}

}  // namespace
}  // namespace sthist

#include "histogram/stgrid.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "data/generators.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

STGridConfig Config(size_t cells, size_t restructure_interval = 0) {
  STGridConfig config;
  config.cells_per_dim = cells;
  config.restructure_interval = restructure_interval;
  return config;
}

TEST(STGridTest, FreshGridIsUniform) {
  STGridHistogram h(Box::Cube(2, 0, 100), 1000, Config(4));
  EXPECT_EQ(h.bucket_count(), 16u);
  EXPECT_NEAR(h.Estimate(Box::Cube(2, 0, 100)), 1000.0, 1e-9);
  EXPECT_NEAR(h.Estimate(Box::Cube(2, 0, 50)), 250.0, 1e-9);
  EXPECT_NEAR(h.TotalFrequency(), 1000.0, 1e-9);
}

TEST(STGridTest, DeltaRuleMovesTowardTruth) {
  Dataset data(2);
  Rng rng(5);
  Point p(2);
  for (int i = 0; i < 1000; ++i) {
    p[0] = rng.Uniform(0, 25);  // All mass in the left-most column.
    p[1] = rng.Uniform(0, 100);
    data.Append(p);
  }
  Executor executor(data);

  STGridHistogram h(Box::Cube(2, 0, 100), 1000, Config(4));
  Box q({0.0, 0.0}, {25.0, 100.0});
  double err_before = std::abs(h.Estimate(q) - executor.Count(q));
  for (int i = 0; i < 20; ++i) h.Refine(q, executor);
  double err_after = std::abs(h.Estimate(q) - executor.Count(q));
  EXPECT_LT(err_after, 0.1 * err_before);
}

TEST(STGridTest, RefinementKeepsFrequenciesNonNegative) {
  Dataset data(2);
  data.Append(Point{99.0, 99.0});  // Nearly empty relation.
  Executor executor(data);

  STGridHistogram h(Box::Cube(2, 0, 100), 10000, Config(4));
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    double x = rng.Uniform(0, 60), y = rng.Uniform(0, 60);
    h.Refine(Box({x, y}, {x + 40, y + 40}), executor);
  }
  EXPECT_GE(h.TotalFrequency(), 0.0);
  EXPECT_GE(h.Estimate(Box::Cube(2, 0, 100)), 0.0);
}

TEST(STGridTest, RestructureKeepsBudgetAndMass) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 400;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  STGridConfig config = Config(8, /*restructure_interval=*/50);
  STGridHistogram h(g.domain, static_cast<double>(g.data.size()), config);
  size_t buckets = h.bucket_count();

  WorkloadConfig wc;
  wc.num_queries = 300;
  Workload w = MakeWorkload(g.domain, wc);
  double before_mass = h.TotalFrequency();
  for (const Box& q : w) h.Refine(q, executor);
  EXPECT_EQ(h.bucket_count(), buckets) << "restructuring holds the budget";
  // Mass changes through the delta rule, but must stay in a sane range.
  EXPECT_GT(h.TotalFrequency(), 0.1 * before_mass);
  EXPECT_LT(h.TotalFrequency(), 10.0 * before_mass);
  // Boundaries stay sorted and within the domain.
  for (size_t d = 0; d < 2; ++d) {
    const std::vector<double>& bounds = h.boundaries(d);
    EXPECT_DOUBLE_EQ(bounds.front(), g.domain.lo(d));
    EXPECT_DOUBLE_EQ(bounds.back(), g.domain.hi(d));
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LE(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(STGridTest, TrainingReducesWorkloadError) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 3000;
  data_config.noise_tuples = 600;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  STGridHistogram h(g.domain, static_cast<double>(g.data.size()),
                    Config(8, 100));
  WorkloadConfig wc;
  wc.num_queries = 400;
  Workload w = MakeWorkload(g.domain, wc);

  auto workload_error = [&]() {
    double total = 0;
    for (const Box& q : w) {
      total += std::abs(h.Estimate(q) - executor.Count(q));
    }
    return total / static_cast<double>(w.size());
  };

  double untrained = workload_error();
  for (const Box& q : w) h.Refine(q, executor);
  EXPECT_LT(workload_error(), untrained);
}

TEST(STGridTest, WeakerFeedbackLosesToSTHoles) {
  // The reason STHoles is the paper's self-tuning representative: with the
  // same budget and workload, grid + total-cardinality feedback cannot keep
  // up with tree + per-region feedback.
  CrossConfig data_config;
  data_config.tuples_per_cluster = 4000;
  data_config.noise_tuples = 800;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  WorkloadConfig wc;
  wc.num_queries = 500;
  Workload train = MakeWorkload(g.domain, wc);
  wc.seed = 42;
  Workload eval = MakeWorkload(g.domain, wc);

  STGridHistogram grid(g.domain, static_cast<double>(g.data.size()),
                       Config(8, 100));  // 64 buckets.
  for (const Box& q : train) grid.Refine(q, executor);

  STHolesConfig sc;
  sc.max_buckets = 64;
  STHoles holes(g.domain, static_cast<double>(g.data.size()), sc);
  for (const Box& q : train) holes.Refine(q, executor);

  auto mae = [&](const Histogram& h) {
    double total = 0;
    for (const Box& q : eval) {
      total += std::abs(h.Estimate(q) - executor.Count(q));
    }
    return total / static_cast<double>(eval.size());
  };
  EXPECT_LT(mae(holes), mae(grid));
}

}  // namespace
}  // namespace sthist

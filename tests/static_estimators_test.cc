// Tests for the static estimator baselines: AVI (per-attribute equi-depth
// histograms under the independence assumption), uniform sampling, and the
// MHIST-2 MaxDiff multidimensional histogram.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "data/generators.h"
#include "histogram/avi.h"
#include "histogram/equiwidth.h"
#include "histogram/mhist.h"
#include "histogram/sampling.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

Dataset UniformData(size_t n, size_t dim, uint64_t seed) {
  Dataset data(dim);
  Rng rng(seed);
  Point p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) p[d] = rng.Uniform(0, 100);
    data.Append(p);
  }
  return data;
}

// ---------------------------------------------------------------------------
// AVI
// ---------------------------------------------------------------------------

TEST(AviTest, FullDomainSelectivityIsOne) {
  Dataset data = UniformData(2000, 2, 1);
  Box domain = Box::Cube(2, 0, 100);
  AviHistogram h(data, domain, 10);
  EXPECT_NEAR(h.Estimate(domain), 2000.0, 1.0);
  EXPECT_EQ(h.bucket_count(), 20u) << "10 buckets in each of 2 dims";
}

TEST(AviTest, IndependentDataEstimatesWell) {
  Dataset data = UniformData(20000, 2, 2);
  Box domain = Box::Cube(2, 0, 100);
  AviHistogram h(data, domain, 20);
  Executor executor(data);
  Box q({10.0, 30.0}, {60.0, 80.0});
  double real = executor.Count(q);
  EXPECT_NEAR(h.Estimate(q), real, 0.05 * real)
      << "independence holds on uniform data";
}

TEST(AviTest, EquiDepthAdaptsToSkewPerDimension) {
  // Strongly skewed in x, uniform in y; a 1-d range in x must still be
  // estimated accurately thanks to equi-depth boundaries.
  Dataset data(2);
  Rng rng(3);
  Point p(2);
  for (int i = 0; i < 20000; ++i) {
    p[0] = std::pow(rng.Uniform01(), 4.0) * 100.0;  // Mass near 0.
    p[1] = rng.Uniform(0, 100);
    data.Append(p);
  }
  Box domain = Box::Cube(2, 0, 100);
  AviHistogram h(data, domain, 50);
  Executor executor(data);
  Box q({0.0, 0.0}, {5.0, 100.0});
  double real = executor.Count(q);
  EXPECT_NEAR(h.Estimate(q), real, 0.1 * real);
}

TEST(AviTest, CorrelationBreaksIndependence) {
  // The paper's motivating failure: perfectly correlated attributes. Points
  // on the diagonal; AVI estimates sel_x * sel_y and is off by ~10x on a
  // diagonal block.
  Dataset data(2);
  Rng rng(4);
  Point p(2);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform(0, 100);
    p[0] = v;
    p[1] = v;
    data.Append(p);
  }
  Box domain = Box::Cube(2, 0, 100);
  AviHistogram h(data, domain, 50);
  Executor executor(data);

  Box diag_block({10.0, 10.0}, {20.0, 20.0});  // Real: ~10% of tuples.
  double real = executor.Count(diag_block);
  double est = h.Estimate(diag_block);
  EXPECT_LT(est, 0.2 * real)
      << "AVI underestimates correlated blocks by ~sel_x (10x here)";
}

TEST(AviTest, DisjointQueryEstimatesZero) {
  Dataset data = UniformData(100, 2, 5);
  AviHistogram h(data, Box::Cube(2, 0, 100), 4);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 200, 300)), 0.0);
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

TEST(SamplingTest, FullSampleIsExact) {
  Dataset data = UniformData(1000, 2, 6);
  Executor executor(data);
  SamplingEstimator h(data, 1000, 7);
  Box q = Box::Cube(2, 20, 70);
  EXPECT_DOUBLE_EQ(h.Estimate(q), executor.Count(q));
}

TEST(SamplingTest, ScaleIsUnbiasedOnLargeRanges) {
  Dataset data = UniformData(50000, 2, 8);
  Executor executor(data);
  SamplingEstimator h(data, 5000, 9);
  Box q = Box::Cube(2, 10, 90);
  double real = executor.Count(q);
  EXPECT_NEAR(h.Estimate(q), real, 0.05 * real);
}

TEST(SamplingTest, SelectiveQueriesAreNoisy) {
  // The known weakness: a range holding 10 tuples out of 50k is estimated
  // from ~1 sampled tuple; the estimate is a coarse multiple of the scale.
  Dataset data = UniformData(50000, 2, 10);
  SamplingEstimator h(data, 500, 11);
  double scale = 50000.0 / 500.0;
  Box q = Box::Cube(2, 50, 51.5);
  double est = h.Estimate(q);
  EXPECT_NEAR(std::fmod(est, scale), 0.0, 1e-9)
      << "estimates are multiples of the inverse sampling rate";
}

TEST(SamplingTest, OversizedSampleRequestClamps) {
  Dataset data = UniformData(100, 2, 12);
  SamplingEstimator h(data, 1000, 13);
  EXPECT_EQ(h.bucket_count(), 100u);
}

// ---------------------------------------------------------------------------
// MHist
// ---------------------------------------------------------------------------

TEST(MHistTest, SingleBucketIsTrivial) {
  Dataset data = UniformData(1000, 2, 14);
  MHistConfig config;
  config.max_buckets = 1;
  MHistHistogram h(data, Box::Cube(2, 0, 100), config);
  EXPECT_EQ(h.bucket_count(), 1u);
  EXPECT_NEAR(h.Estimate(Box::Cube(2, 0, 100)), 1000.0, 1e-9);
}

TEST(MHistTest, BucketsPartitionTheDomain) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 400;
  GeneratedData g = MakeCross(data_config);
  MHistConfig config;
  config.max_buckets = 60;
  MHistHistogram h(g.data, g.domain, config);
  EXPECT_LE(h.bucket_count(), 60u);

  // Volumes add up to the domain volume, mass to the tuple count.
  double volume = 0.0, mass = 0.0;
  for (const MHistHistogram::BucketInfo& b : h.Dump()) {
    volume += b.box.Volume();
    mass += b.frequency;
  }
  EXPECT_NEAR(volume, g.domain.Volume(), 1e-6 * g.domain.Volume());
  EXPECT_NEAR(mass, static_cast<double>(g.data.size()), 1e-9);
  // And buckets are pairwise non-overlapping.
  std::vector<MHistHistogram::BucketInfo> dump = h.Dump();
  for (size_t i = 0; i < dump.size(); ++i) {
    for (size_t j = i + 1; j < dump.size(); ++j) {
      EXPECT_FALSE(dump[i].box.Intersects(dump[j].box));
    }
  }
}

TEST(MHistTest, SplitsChaseTheDensityJumps) {
  // A sharp block on uniform background: MaxDiff splits should isolate the
  // block and estimate queries around it much better than one bucket.
  Dataset data(2);
  Rng rng(15);
  Point p(2);
  for (int i = 0; i < 8000; ++i) {
    p[0] = rng.Uniform(40, 60);
    p[1] = rng.Uniform(40, 60);
    data.Append(p);
  }
  for (int i = 0; i < 2000; ++i) {
    p[0] = rng.Uniform(0, 100);
    p[1] = rng.Uniform(0, 100);
    data.Append(p);
  }
  Box domain = Box::Cube(2, 0, 100);
  Executor executor(data);

  MHistConfig config;
  config.max_buckets = 40;
  MHistHistogram h(data, domain, config);

  Box block({40.0, 40.0}, {60.0, 60.0});
  double real = executor.Count(block);
  EXPECT_NEAR(h.Estimate(block), real, 0.1 * real);
  Box empty({0.0, 0.0}, {30.0, 30.0});
  EXPECT_LT(h.Estimate(empty), 0.15 * real);
}

TEST(MHistTest, BeatsEquiWidthOnSkewedDataAtEqualBudget) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 4000;
  data_config.noise_tuples = 800;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  MHistConfig config;
  config.max_buckets = 64;
  MHistHistogram mhist(g.data, g.domain, config);

  WorkloadConfig wc;
  wc.num_queries = 200;
  wc.volume_fraction = 0.01;
  Workload w = MakeWorkload(g.domain, wc);

  double mhist_err = 0.0;
  for (const Box& q : w) {
    mhist_err += std::abs(mhist.Estimate(q) - executor.Count(q));
  }

  // 8x8 equi-width grid = the same 64-bucket budget.
  EquiWidthHistogram grid(g.data, g.domain, 8);
  double grid_err = 0.0;
  for (const Box& q : w) {
    grid_err += std::abs(grid.Estimate(q) - executor.Count(q));
  }

  EXPECT_LT(mhist_err, grid_err)
      << "MaxDiff splits follow the density jumps; the rigid grid cannot";
}

}  // namespace
}  // namespace sthist

// Differential suite for the indexed estimation paths (DESIGN.md §10): for
// every histogram with a spatial bucket index, the indexed Estimate and the
// batched EstimateBatch must be BITWISE identical to the retained linear-scan
// reference (EstimateLinear) — across dimensionalities, seeds, and
// drill/merge histories, and after serialization round-trips. Comparisons go
// through std::bit_cast so even a sign-of-zero or last-ulp divergence fails.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/box.h"
#include "core/rng.h"
#include "core/simd.h"
#include "data/generators.h"
#include "core/status.h"
#include "histogram/histogram.h"
#include "histogram/isomer.h"
#include "histogram/kde.h"
#include "histogram/mhist.h"
#include "histogram/stgrid.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

::testing::AssertionResult BitEqual(double indexed, double linear) {
  if (Bits(indexed) == Bits(linear)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "indexed=" << indexed << " (0x" << std::hex << Bits(indexed)
         << ") linear=" << linear << " (0x" << Bits(linear) << ")";
}

// Indexed scalar path, indexed batch path (serial and threaded), and the
// linear reference must all agree bitwise on every probe.
void ExpectAllPathsBitEqual(const Histogram& h, const Workload& probes) {
  const std::vector<double> batch1 = h.EstimateBatch(probes, 1);
  const std::vector<double> batch8 = h.EstimateBatch(probes, 8);
  ASSERT_EQ(batch1.size(), probes.size());
  ASSERT_EQ(batch8.size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    const double linear = h.EstimateLinear(probes[i]);
    EXPECT_TRUE(BitEqual(h.Estimate(probes[i]), linear))
        << "scalar, probe " << i << ": " << probes[i].ToString();
    EXPECT_TRUE(BitEqual(batch1[i], linear))
        << "batch(1), probe " << i << ": " << probes[i].ToString();
    EXPECT_TRUE(BitEqual(batch8[i], linear))
        << "batch(8), probe " << i << ": " << probes[i].ToString();
  }
}

GeneratedData MakeCrossData(size_t dim, uint64_t seed) {
  CrossConfig config;
  config.dim = dim;
  config.tuples_per_cluster = dim <= 2 ? 1500 : 600;
  config.noise_tuples = 300;
  config.seed = seed;
  return MakeCross(config);
}

// Probes include training-scale boxes, larger boxes, and the full domain.
Workload MakeProbes(const Box& domain, uint64_t seed, size_t count = 40) {
  WorkloadConfig wc;
  wc.num_queries = count;
  wc.volume_fraction = 0.01;
  wc.seed = DeriveSeed(seed, 0);
  Workload probes = MakeWorkload(domain, wc);
  wc.num_queries = count / 4;
  wc.volume_fraction = 0.2;
  wc.seed = DeriveSeed(seed, 1);
  Workload big = MakeWorkload(domain, wc);
  probes.insert(probes.end(), big.begin(), big.end());
  probes.push_back(domain);
  return probes;
}

// ---------------------------------------------------------------------------
// STHoles

class STHolesDifferentialTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t, size_t>> {};

// Drives a full refinement history and checks indexed-vs-linear identity as
// the bucket tree evolves. The small budget forces merges (index rebuilds);
// the large one keeps drills pure appends (incremental index inserts).
TEST_P(STHolesDifferentialTest, IndexedMatchesLinearAcrossHistory) {
  const auto [dim, seed, budget] = GetParam();
  GeneratedData g = MakeCrossData(dim, seed);
  Executor executor(g.data);

  STHolesConfig config;
  config.max_buckets = budget;
  STHoles h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 80;
  wc.seed = DeriveSeed(seed, 10);
  Workload train = MakeWorkload(g.domain, wc);
  Workload probes = MakeProbes(g.domain, seed + 1, 20);

  for (size_t i = 0; i < train.size(); ++i) {
    h.Refine(train[i], executor);
    // Cheap spot-check after every structural change; rotate through the
    // probe set so each probe is exercised against many tree shapes.
    for (size_t k = 0; k < 3; ++k) {
      const Box& q = probes[(3 * i + k) % probes.size()];
      EXPECT_TRUE(BitEqual(h.Estimate(q), h.EstimateLinear(q)))
          << "refine " << i << ", probe " << q.ToString();
    }
  }
  h.CheckInvariants();
  ExpectAllPathsBitEqual(h, probes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, STHolesDifferentialTest,
    ::testing::Combine(::testing::Values<size_t>(2, 3, 5, 8),
                       ::testing::Values<uint64_t>(21, 77),
                       ::testing::Values<size_t>(12, 500)),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param)) + "_budget" +
             std::to_string(std::get<2>(info.param));
    });

// The §10 contract must hold regardless of which box-matching kernel the
// probe dispatches to (DESIGN.md §15): under the forced-scalar kernel, the
// indexed paths still reproduce the linear reference bit for bit, and agree
// with the natively dispatched result. The CI scalar-fallback leg
// (-DSTHIST_NO_SIMD) re-runs the whole suite with the vector kernels
// compiled out; this test covers the runtime-dispatch seam in SIMD builds.
TEST(STHolesDifferentialTest, ScalarKernelPreservesIdentity) {
  GeneratedData g = MakeCrossData(3, 33);
  Executor executor(g.data);

  STHolesConfig config;
  config.max_buckets = 40;
  STHoles h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 80;
  wc.seed = 35;
  for (const Box& q : MakeWorkload(g.domain, wc)) h.Refine(q, executor);

  Workload probes = MakeProbes(g.domain, 37);
  std::vector<double> native;
  native.reserve(probes.size());
  for (const Box& q : probes) native.push_back(h.Estimate(q));

  simd::ForceScalarForTest(true);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_TRUE(BitEqual(h.Estimate(probes[i]), h.EstimateLinear(probes[i])))
        << "scalar kernel vs linear, probe " << probes[i].ToString();
    EXPECT_TRUE(BitEqual(h.Estimate(probes[i]), native[i]))
        << "scalar kernel vs dispatched, probe " << probes[i].ToString();
  }
  ExpectAllPathsBitEqual(h, probes);
  simd::ForceScalarForTest(false);
}

TEST(STHolesDifferentialTest, SerializationRoundTripPreservesIdentity) {
  GeneratedData g = MakeCrossData(3, 5);
  Executor executor(g.data);

  STHolesConfig config;
  config.max_buckets = 40;
  STHoles h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 120;
  wc.seed = 9;
  for (const Box& q : MakeWorkload(g.domain, wc)) h.Refine(q, executor);

  auto loaded = STHoles::Deserialize(h.Serialize(), config);
  ASSERT_NE(loaded, nullptr);
  loaded->CheckInvariants();

  Workload probes = MakeProbes(g.domain, 13);
  // The reconstructed histogram estimates bit-exactly like the original,
  // and its freshly built index matches its own linear scan — under the
  // dispatched kernel and the forced-scalar one alike.
  for (const Box& q : probes) {
    EXPECT_TRUE(BitEqual(loaded->Estimate(q), h.Estimate(q))) << q.ToString();
  }
  ExpectAllPathsBitEqual(*loaded, probes);
  simd::ForceScalarForTest(true);
  for (const Box& q : probes) {
    EXPECT_TRUE(BitEqual(loaded->Estimate(q), h.EstimateLinear(q)))
        << "scalar kernel, probe " << q.ToString();
  }
  simd::ForceScalarForTest(false);
}

// ---------------------------------------------------------------------------
// ISOMER

class IsomerDifferentialTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t, size_t>> {};

TEST_P(IsomerDifferentialTest, IndexedMatchesLinearAcrossHistory) {
  const auto [dim, seed, budget] = GetParam();
  GeneratedData g = MakeCrossData(dim, seed);
  Executor executor(g.data);

  IsomerConfig config;
  config.max_buckets = budget;
  IsomerHistogram h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 50;
  wc.seed = DeriveSeed(seed, 20);
  Workload train = MakeWorkload(g.domain, wc);
  Workload probes = MakeProbes(g.domain, seed + 2, 20);

  for (size_t i = 0; i < train.size(); ++i) {
    h.Refine(train[i], executor);
    for (size_t k = 0; k < 3; ++k) {
      const Box& q = probes[(3 * i + k) % probes.size()];
      EXPECT_TRUE(BitEqual(h.Estimate(q), h.EstimateLinear(q)))
          << "refine " << i << ", probe " << q.ToString();
    }
  }
  ExpectAllPathsBitEqual(h, probes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IsomerDifferentialTest,
    ::testing::Combine(::testing::Values<size_t>(2, 3),
                       ::testing::Values<uint64_t>(21, 77),
                       ::testing::Values<size_t>(15, 300)),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param)) + "_budget" +
             std::to_string(std::get<2>(info.param));
    });

// Const estimation (scalar or batched) must not perturb the learning
// trajectory: a histogram hammered with estimates between refinements ends
// bitwise identical to an untouched twin fed the same refinement sequence.
TEST(IsomerDifferentialTest, ConstEstimationDoesNotPerturbLearning) {
  GeneratedData g = MakeCrossData(2, 31);
  Executor executor(g.data);

  IsomerConfig config;
  config.max_buckets = 40;
  const double n = static_cast<double>(g.data.size());
  IsomerHistogram queried(g.domain, n, config);
  IsomerHistogram untouched(g.domain, n, config);

  WorkloadConfig wc;
  wc.num_queries = 40;
  wc.seed = 41;
  Workload train = MakeWorkload(g.domain, wc);
  Workload probes = MakeProbes(g.domain, 43, 12);

  for (size_t i = 0; i < train.size(); ++i) {
    for (size_t k = 0; k < 4; ++k) {
      (void)queried.Estimate(probes[(4 * i + k) % probes.size()]);
    }
    if (i % 5 == 0) (void)queried.EstimateBatch(probes, 4);
    queried.Refine(train[i], executor);
    untouched.Refine(train[i], executor);
  }
  for (const Box& q : probes) {
    EXPECT_TRUE(BitEqual(queried.Estimate(q), untouched.Estimate(q)))
        << q.ToString();
  }
}

// ---------------------------------------------------------------------------
// MHist

TEST(MHistDifferentialTest, IndexedMatchesLinear) {
  for (size_t dim : {2, 3, 5, 8}) {
    SCOPED_TRACE(dim);
    GeneratedData g = MakeCrossData(dim, 15);
    MHistConfig config;
    MHistHistogram h(g.data, g.domain, config);

    Workload probes = MakeProbes(g.domain, 17);
    // Degenerate probes (zero extent in one dimension) and probes whose
    // boundaries touch bucket edges exercise the closed-overlap probe mode.
    Rng rng(19);
    for (size_t i = 0; i < 20; ++i) {
      Box q = Box::Cube(dim, 0.0, 1.0);
      for (size_t d = 0; d < dim; ++d) {
        const double lo = rng.Uniform(g.domain.lo(d), g.domain.hi(d));
        const double extent =
            rng.Bernoulli(0.4) ? 0.0
                               : rng.Uniform(0.0, g.domain.Extent(d) * 0.3);
        q.set_lo(d, lo);
        q.set_hi(d, lo + extent);
      }
      probes.push_back(q);
    }
    ExpectAllPathsBitEqual(h, probes);
  }
}

// ---------------------------------------------------------------------------
// STGrid

TEST(STGridDifferentialTest, GridProbeMatchesFullTensorScan) {
  GeneratedData g = MakeCrossData(2, 25);
  Executor executor(g.data);

  STGridConfig config;
  STGridHistogram h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 100;
  wc.seed = 27;
  Workload train = MakeWorkload(g.domain, wc);
  Workload probes = MakeProbes(g.domain, 29);
  // Probes reaching beyond the domain boundary: the out-of-domain portion
  // must contribute exactly zero on both paths.
  for (size_t d = 0; d < 2; ++d) {
    Box beyond = g.domain;
    beyond.set_hi(d, g.domain.hi(d) + g.domain.Extent(d));
    probes.push_back(beyond);
    Box below = g.domain;
    below.set_lo(d, g.domain.lo(d) - g.domain.Extent(d));
    probes.push_back(below);
  }

  for (size_t i = 0; i < train.size(); ++i) {
    h.Refine(train[i], executor);
    if (i % 10 == 0) {
      for (const Box& q : probes) {
        EXPECT_TRUE(BitEqual(h.Estimate(q), h.EstimateLinear(q)))
            << "refine " << i << ", probe " << q.ToString();
      }
    }
  }
  ExpectAllPathsBitEqual(h, probes);
}

// ---------------------------------------------------------------------------
// KDE

class KdeDifferentialTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

// The SoA plane probe (Estimate / EstimateBatch) against the retained
// row-major AoS scan (EstimateLinear) as the sample and bandwidths evolve
// under feedback. Same bit-identity bar as the bucket-tree indexes: the two
// layouts share one kernel-factor function and one summation order.
TEST_P(KdeDifferentialTest, PlanesMatchLinearAcrossHistory) {
  const auto [dim, seed] = GetParam();
  GeneratedData g = MakeCrossData(dim, seed);
  Executor executor(g.data);

  KdeConfig config;
  config.sample_capacity = 256;
  KdeHistogram h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 80;
  wc.seed = DeriveSeed(seed, 30);
  Workload train = MakeWorkload(g.domain, wc);
  Workload probes = MakeProbes(g.domain, seed + 3, 20);

  for (size_t i = 0; i < train.size(); ++i) {
    h.Refine(train[i], executor);
    for (size_t k = 0; k < 3; ++k) {
      const Box& q = probes[(3 * i + k) % probes.size()];
      EXPECT_TRUE(BitEqual(h.Estimate(q), h.EstimateLinear(q)))
          << "refine " << i << ", probe " << q.ToString();
    }
  }
  ExpectAllPathsBitEqual(h, probes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdeDifferentialTest,
    ::testing::Combine(::testing::Values<size_t>(2, 3),
                       ::testing::Values<uint64_t>(21, 77)),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// An STHK round-trip reproduces every estimation path bit-exactly: the
// restored sample, bandwidths, and engines are the originals.
TEST(KdeDifferentialTest, SerializationRoundTripPreservesIdentity) {
  GeneratedData g = MakeCrossData(3, 5);
  Executor executor(g.data);

  KdeConfig config;
  config.sample_capacity = 200;
  KdeHistogram h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 120;
  wc.seed = 9;
  for (const Box& q : MakeWorkload(g.domain, wc)) h.Refine(q, executor);

  StatusOr<std::unique_ptr<KdeHistogram>> loaded =
      KdeHistogram::DeserializeBinary(h.SerializeBinary(), config);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  Workload probes = MakeProbes(g.domain, 13);
  for (const Box& q : probes) {
    EXPECT_TRUE(BitEqual((*loaded)->Estimate(q), h.Estimate(q)))
        << q.ToString();
  }
  ExpectAllPathsBitEqual(**loaded, probes);
}

}  // namespace
}  // namespace sthist

// Structural-sharing property battery for the copy-on-write bucket tree
// (DESIGN.md §17). The contract under test:
//
//   1. Snapshot() is observationally a deep clone: published estimates are
//      std::bit_cast-identical to Clone()'s across arbitrary refinement
//      histories (drills, merges, child migrations).
//   2. Snapshots are frozen: refining the source never changes a previously
//      taken snapshot's estimates, no matter how many epochs pass.
//   3. Sharing is real and bounded: a refine after a snapshot path-copies at
//      most the buckets the query intersects (the touched spine), and the
//      rest of the tree stays physically shared between the working tree and
//      the snapshot — the O(touched path) publish cost the serving layer
//      depends on.
//
// The bound in (3) is checked against an *independently computed* count: the
// number of buckets whose box intersects the query, recovered by parsing the
// canonical text serialization rather than by asking the COW machinery.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/box.h"
#include "data/generators.h"
#include "histogram/stholes.h"
#include "obs/metrics.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

STHolesConfig Budget(size_t buckets, obs::MetricsRegistry* metrics = nullptr) {
  STHolesConfig config;
  config.max_buckets = buckets;
  config.metrics = metrics;
  return config;
}

struct TrainingRig {
  explicit TrainingRig(size_t tuples_per_cluster = 1200)
      : g(MakeData(tuples_per_cluster)),
        executor(std::make_unique<Executor>(g.data)) {}

  static GeneratedData MakeData(size_t tuples_per_cluster) {
    CrossConfig config;
    config.tuples_per_cluster = tuples_per_cluster;
    config.noise_tuples = tuples_per_cluster / 5;
    return MakeCross(config);
  }

  Workload Queries(size_t n, uint64_t seed,
                   double volume_fraction = 0.01) const {
    WorkloadConfig wc;
    wc.num_queries = n;
    wc.seed = seed;
    wc.volume_fraction = volume_fraction;
    return MakeWorkload(g.domain, wc);
  }

  GeneratedData g;
  std::unique_ptr<Executor> executor;
};

// Parses the bucket boxes out of the canonical text serialization
// ("depth lo hi ... freq" per line after the header) — an oracle for the
// touched-path bound that shares no code with the COW implementation.
std::vector<Box> BucketBoxes(const STHoles& hist, size_t dim) {
  std::vector<Box> boxes;
  const std::string text = hist.Serialize();
  size_t pos = text.find('\n');  // Skip the header line.
  EXPECT_NE(pos, std::string::npos);
  ++pos;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const char* cursor = line.c_str();
    char* end = nullptr;
    (void)std::strtoul(cursor, &end, 10);  // depth
    cursor = end;
    std::vector<double> lo(dim), hi(dim);
    for (size_t d = 0; d < dim; ++d) {
      lo[d] = std::strtod(cursor, &end);
      cursor = end;
      hi[d] = std::strtod(cursor, &end);
      cursor = end;
    }
    boxes.emplace_back(std::move(lo), std::move(hi));
  }
  return boxes;
}

size_t IntersectingBuckets(const std::vector<Box>& boxes, const Box& query) {
  size_t n = 0;
  for (const Box& b : boxes) {
    if (b.IntersectionVolume(query) > 0.0) ++n;
  }
  return n;
}

void ExpectBitIdentical(const Histogram& a, const Histogram& b,
                        const Workload& probes) {
  for (const Box& q : probes) {
    EXPECT_EQ(std::bit_cast<uint64_t>(a.Estimate(q)),
              std::bit_cast<uint64_t>(b.Estimate(q)));
  }
}

// (1): after every single refine of a history long enough to exercise
// drills, merges under a tight budget, and child migrations, the snapshot's
// estimates equal a deep clone's bit for bit.
TEST(CowTreeTest, SnapshotMatchesCloneAfterEveryRefine) {
  TrainingRig rig;
  obs::MetricsRegistry metrics;
  STHoles hist(rig.g.domain, static_cast<double>(rig.g.data.size()),
               Budget(24, &metrics));  // Tight budget: merges guaranteed.
  // Small queries first to grow depth, then large ones whose drilled holes
  // swallow earlier children — that is what exercises child migration.
  Workload train = rig.Queries(120, 21);
  for (const Box& q : rig.Queries(40, 22, 0.15)) train.push_back(q);
  Workload probes = rig.Queries(64, 99);

  // The previous epoch's snapshot stays alive across the next Refine, so
  // every refine mutates a genuinely shared tree — the COW-vs-clone
  // differential below covers the path-copy machinery, not a trivially
  // exclusive tree.
  std::shared_ptr<const Histogram> prev;
  for (const Box& q : train) {
    hist.Refine(q, *rig.executor);
    std::shared_ptr<const Histogram> snap = hist.Snapshot();
    std::unique_ptr<Histogram> clone = hist.Clone();
    ASSERT_NE(snap, nullptr);
    ASSERT_NE(clone, nullptr);
    EXPECT_EQ(snap->bucket_count(), hist.bucket_count());
    ExpectBitIdentical(*snap, *clone, probes);
    prev = std::move(snap);
  }

  // The history must actually have covered all three mutation kinds, or the
  // differential above proved less than it claims.
  EXPECT_GT(metrics.counter("histogram.stholes.drills").value(), 0u);
  EXPECT_GT(metrics.counter("histogram.stholes.merges").value(), 0u);
  EXPECT_GT(metrics.counter("histogram.stholes.migrated_children").value(),
            0u);
  EXPECT_GT(metrics.counter("histogram.cow.copied_nodes").value(), 0u);
}

// (2): snapshots taken at every epoch stay frozen while the source keeps
// refining — each one still reproduces the estimates recorded the moment it
// was taken, and CheckInvariants still passes on the shared structure.
TEST(CowTreeTest, SnapshotsAreImmutableWhileSourceRefines) {
  TrainingRig rig;
  STHoles hist(rig.g.domain, static_cast<double>(rig.g.data.size()),
               Budget(20));
  Workload train = rig.Queries(120, 5);
  Workload probes = rig.Queries(40, 77);

  std::vector<std::shared_ptr<const Histogram>> epochs;
  std::vector<std::vector<uint64_t>> expected;  // Per-epoch probe bits.
  for (const Box& q : train) {
    hist.Refine(q, *rig.executor);
    std::shared_ptr<const Histogram> snap = hist.Snapshot();
    std::vector<uint64_t> bits;
    bits.reserve(probes.size());
    for (const Box& p : probes) {
      bits.push_back(std::bit_cast<uint64_t>(snap->Estimate(p)));
    }
    epochs.push_back(std::move(snap));
    expected.push_back(std::move(bits));
  }

  hist.CheckInvariants();
  for (size_t e = 0; e < epochs.size(); ++e) {
    SCOPED_TRACE("epoch " + std::to_string(e));
    for (size_t i = 0; i < probes.size(); ++i) {
      EXPECT_EQ(std::bit_cast<uint64_t>(epochs[e]->Estimate(probes[i])),
                expected[e][i]);
    }
  }
}

// Dropping every snapshot hands exclusive ownership back to the working
// tree: nothing is shared afterwards, and refinement stops path-copying.
TEST(CowTreeTest, DroppedSnapshotsReturnExclusiveOwnership) {
  TrainingRig rig;
  STHoles hist(rig.g.domain, static_cast<double>(rig.g.data.size()),
               Budget(32));
  Workload train = rig.Queries(60, 3);
  for (const Box& q : train) hist.Refine(q, *rig.executor);

  {
    std::shared_ptr<const Histogram> snap = hist.Snapshot();
    EXPECT_GT(hist.SharedNodeCount(), 0u);
  }
  EXPECT_EQ(hist.SharedNodeCount(), 0u);

  const size_t copied_before = hist.CowCopiedNodes();
  for (const Box& q : rig.Queries(20, 4)) hist.Refine(q, *rig.executor);
  EXPECT_EQ(hist.CowCopiedNodes(), copied_before);
}

// (3): with a huge budget (no merges), each refine after a snapshot copies
// at most the buckets the query intersects, and everything else stays
// shared. The bound is computed from the serialized geometry, not the COW
// counters.
TEST(CowTreeTest, PathCopiesAreBoundedByTouchedBuckets) {
  TrainingRig rig;
  const size_t dim = rig.g.domain.dim();
  STHoles hist(rig.g.domain, static_cast<double>(rig.g.data.size()),
               Budget(100000));  // Effectively unbounded: drills only.
  Workload train = rig.Queries(150, 11);

  // Warm up so the tree has depth before the bounded phase.
  size_t i = 0;
  for (; i < 50; ++i) hist.Refine(train[i], *rig.executor);

  std::vector<std::shared_ptr<const Histogram>> keep_alive;
  for (; i < train.size(); ++i) {
    const Box& q = train[i];
    keep_alive.push_back(hist.Snapshot());  // Everything shared again.
    const std::vector<Box> boxes = BucketBoxes(hist, dim);
    // Serialize emits every node including the root; bucket_count() is the
    // hole count (root excluded). The root's box is the domain, so it is
    // counted in `touched` for every query — exactly right, since the root
    // is path-copied on every descent.
    ASSERT_EQ(boxes.size(), hist.bucket_count() + 1);
    const size_t touched = IntersectingBuckets(boxes, q);
    const size_t pre_total = boxes.size();
    const size_t copied_before = hist.CowCopiedNodes();

    hist.Refine(q, *rig.executor);

    const size_t copied = hist.CowCopiedNodes() - copied_before;
    EXPECT_LE(copied, touched)
        << "refine " << i << " copied " << copied << " nodes but the query "
        << "only intersects " << touched << " of " << pre_total;
    // Un-touched buckets stay physically shared with the live snapshot.
    EXPECT_GE(hist.SharedNodeCount() + copied, pre_total - touched);
  }
}

// The histogram.cow.* metrics account for publishes the way DESIGN.md §17
// specifies: shared_nodes after a snapshot is the bucket count minus the
// nodes freshened since the previous snapshot, and back-to-back snapshots
// share the entire tree.
TEST(CowTreeTest, SharingMetricsTrackPublishes) {
  TrainingRig rig;
  obs::MetricsRegistry metrics;
  STHoles hist(rig.g.domain, static_cast<double>(rig.g.data.size()),
               Budget(40, &metrics));
  for (const Box& q : rig.Queries(80, 13)) hist.Refine(q, *rig.executor);

  std::shared_ptr<const Histogram> first = hist.Snapshot();
  EXPECT_EQ(metrics.counter("histogram.cow.snapshots").value(), 1u);

  // No refinement in between: the second snapshot shares every node — all
  // bucket_count() holes plus the root.
  std::shared_ptr<const Histogram> second = hist.Snapshot();
  EXPECT_EQ(metrics.counter("histogram.cow.snapshots").value(), 2u);
  EXPECT_EQ(static_cast<size_t>(
                metrics.gauge("histogram.cow.shared_nodes").value()),
            hist.bucket_count() + 1);

  // One refine, then a third snapshot: the freshened spine is not shared,
  // the rest is. The live snapshots force at least the root to be
  // path-copied, so shared drops below the full node count.
  Workload one = rig.Queries(1, 55);
  hist.Refine(one[0], *rig.executor);
  std::shared_ptr<const Histogram> third = hist.Snapshot();
  const size_t shared = static_cast<size_t>(
      metrics.gauge("histogram.cow.shared_nodes").value());
  EXPECT_LE(shared, hist.bucket_count());  // At least the root freshened.
  EXPECT_GT(shared, 0u);
}

// Serialization is part of the observational contract too: a snapshot's
// binary blob is byte-identical to the working tree's at the moment of the
// snapshot, so persistence can run off the published snapshot without a
// deep copy.
TEST(CowTreeTest, SnapshotSerializesIdenticallyToSource) {
  TrainingRig rig;
  STHoles hist(rig.g.domain, static_cast<double>(rig.g.data.size()),
               Budget(28));
  for (const Box& q : rig.Queries(90, 42)) hist.Refine(q, *rig.executor);

  std::shared_ptr<const Histogram> snap = hist.Snapshot();
  EXPECT_EQ(snap->SerializeBinary(), hist.SerializeBinary());

  // And it stays byte-stable while the source moves on.
  const std::string frozen = snap->SerializeBinary();
  for (const Box& q : rig.Queries(30, 43)) hist.Refine(q, *rig.executor);
  EXPECT_EQ(snap->SerializeBinary(), frozen);
  EXPECT_NE(hist.SerializeBinary(), frozen);  // The source did change.
}

}  // namespace
}  // namespace sthist

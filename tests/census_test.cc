#include "histogram/census.h"

#include <gtest/gtest.h>

#include "workload/query.h"

namespace sthist {
namespace {

// Oracle with a fixed answer, enough to drive drilling in these tests.
class ConstantOracle : public CardinalityOracle {
 public:
  explicit ConstantOracle(double count) : count_(count) {}
  double Count(const Box& /*box*/) const override { return count_; }

 private:
  double count_;
};

STHolesConfig Budget(size_t buckets) {
  STHolesConfig config;
  config.max_buckets = buckets;
  return config;
}

TEST(CensusTest, EmptyHistogramHasNoBuckets) {
  STHoles h(Box::Cube(3, 0, 100), 1000, Budget(10));
  CensusResult census = CensusSubspaceBuckets(h);
  EXPECT_EQ(census.total_buckets, 0u);
  EXPECT_EQ(census.subspace_buckets, 0u);
}

TEST(CensusTest, FullDimensionalBucketIsNotSubspace) {
  STHoles h(Box::Cube(3, 0, 100), 1000, Budget(10));
  ConstantOracle oracle(10);
  h.Refine(Box::Cube(3, 10, 20), oracle);
  CensusResult census = CensusSubspaceBuckets(h);
  EXPECT_EQ(census.total_buckets, 1u);
  EXPECT_EQ(census.subspace_buckets, 0u);
  EXPECT_EQ(census.max_unused_dims, 0u);
}

TEST(CensusTest, DomainSpanningBucketIsSubspace) {
  STHoles h(Box::Cube(3, 0, 100), 1000, Budget(10));
  ConstantOracle oracle(10);
  // Spans the full domain in dimensions 0 and 2.
  h.Refine(Box({0.0, 40.0, 0.0}, {100.0, 60.0, 100.0}), oracle);
  CensusResult census = CensusSubspaceBuckets(h);
  EXPECT_EQ(census.total_buckets, 1u);
  EXPECT_EQ(census.subspace_buckets, 1u);
  EXPECT_EQ(census.max_unused_dims, 2u);
  ASSERT_EQ(census.unused_dims_per_bucket.size(), 1u);
  EXPECT_EQ(census.unused_dims_per_bucket[0], 2u);
}

TEST(CensusTest, MixedTreeCountsOnlySpanningBuckets) {
  STHoles h(Box::Cube(2, 0, 100), 1000, Budget(10));
  ConstantOracle oracle(10);
  // Disjoint drill targets, so no candidate shrinking kicks in.
  h.Refine(Box({0.0, 10.0}, {100.0, 20.0}), oracle);   // Subspace (dim 0).
  h.Refine(Box({0.0, 50.0}, {100.0, 60.0}), oracle);   // Subspace (dim 0).
  h.Refine(Box({30.0, 70.0}, {50.0, 90.0}), oracle);   // Full-dimensional.
  CensusResult census = CensusSubspaceBuckets(h);
  EXPECT_EQ(census.total_buckets, 3u);
  EXPECT_EQ(census.subspace_buckets, 2u);
}

TEST(CensusTest, ToleranceWidensTheNet) {
  STHoles h(Box::Cube(2, 0, 100), 1000, Budget(10));
  ConstantOracle oracle(10);
  // Spans 99% of dimension 0.
  h.Refine(Box({0.5, 10.0}, {99.5, 20.0}), oracle);
  EXPECT_EQ(CensusSubspaceBuckets(h, 1e-9).subspace_buckets, 0u);
  EXPECT_EQ(CensusSubspaceBuckets(h, 0.02).subspace_buckets, 1u);
}

TEST(CensusTest, FormatBucketTreeShowsHierarchy) {
  STHoles h(Box::Cube(2, 0, 100), 1000, Budget(10));
  ConstantOracle oracle(10);
  h.Refine(Box::Cube(2, 10, 90), oracle);
  h.Refine(Box::Cube(2, 30, 60), oracle);
  std::string text = FormatBucketTree(h);
  EXPECT_NE(text.find("[0,100]x[0,100]"), std::string::npos);
  EXPECT_NE(text.find("  [10,90]x[10,90]"), std::string::npos);
  EXPECT_NE(text.find("    [30,60]x[30,60]"), std::string::npos);
}

}  // namespace
}  // namespace sthist

#include "data/generators.h"

#include <gtest/gtest.h>

#include <set>

namespace sthist {
namespace {

TEST(CrossTest, PaperDefaultsMatchTable1) {
  GeneratedData g = MakeCross(CrossConfig{});
  EXPECT_EQ(g.data.dim(), 2u);
  EXPECT_EQ(g.data.size(), 22000u) << "2 clusters x 10k + 2k noise";
  EXPECT_EQ(g.truth.size(), 2u);
}

TEST(CrossTest, ClustersAreOneDimensionalBands) {
  GeneratedData g = MakeCross(CrossConfig{});
  for (const PlantedCluster& c : g.truth) {
    EXPECT_EQ(c.relevant_dims.size(), 1u)
        << "2-d cross clusters are (n-1)=1 dimensional";
    EXPECT_EQ(c.tuples, 10000u);
    // The cluster spans the full domain in its irrelevant dimension.
    size_t relevant = c.relevant_dims[0];
    size_t spanning = 1 - relevant;
    EXPECT_DOUBLE_EQ(c.extent.lo(spanning), g.domain.lo(spanning));
    EXPECT_DOUBLE_EQ(c.extent.hi(spanning), g.domain.hi(spanning));
    EXPECT_LT(c.extent.Extent(relevant), 0.1 * g.domain.Extent(relevant));
  }
}

TEST(CrossTest, ClusterTuplesActuallyFallInsideBands) {
  GeneratedData g = MakeCross(CrossConfig{});
  for (const PlantedCluster& c : g.truth) {
    size_t count = g.data.CountInBox(c.extent);
    // The band contains its own 10k tuples, tuples from the other band
    // where they cross, plus a little noise.
    EXPECT_GE(count, c.tuples);
  }
}

TEST(CrossTest, HigherDimensionalVariants) {
  for (size_t dim : {3u, 4u, 5u}) {
    CrossConfig config;
    config.dim = dim;
    config.tuples_per_cluster = 3000;
    config.noise_tuples = 500;
    GeneratedData g = MakeCross(config);
    EXPECT_EQ(g.data.dim(), dim);
    EXPECT_EQ(g.truth.size(), dim) << "n clusters in n dimensions";
    EXPECT_EQ(g.data.size(), dim * 3000 + 500);
    for (const PlantedCluster& c : g.truth) {
      EXPECT_EQ(c.relevant_dims.size(), dim - 1)
          << "each cluster is (n-1)-dimensional";
    }
  }
}

TEST(CrossTest, DeterministicForSameSeed) {
  GeneratedData a = MakeCross(CrossConfig{});
  GeneratedData b = MakeCross(CrossConfig{});
  ASSERT_EQ(a.data.size(), b.data.size());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.data.value(i, 0), b.data.value(i, 0));
  }
}

TEST(GaussTest, PaperDefaultsMatchTable1) {
  GaussConfig config;
  config.cluster_tuples = 20000;  // Scaled for test runtime.
  config.noise_tuples = 2000;
  GeneratedData g = MakeGauss(config);
  EXPECT_EQ(g.data.dim(), 6u);
  EXPECT_EQ(g.data.size(), 22000u);
  EXPECT_EQ(g.truth.size(), 10u);
}

TEST(GaussTest, SubspaceDimensionalityWithinConfiguredRange) {
  GaussConfig config;
  config.cluster_tuples = 5000;
  config.noise_tuples = 500;
  GeneratedData g = MakeGauss(config);
  for (const PlantedCluster& c : g.truth) {
    EXPECT_GE(c.relevant_dims.size(), config.min_subspace_dims);
    EXPECT_LE(c.relevant_dims.size(), config.max_subspace_dims);
  }
}

TEST(GaussTest, ClusterMassLandsInsideExtent) {
  GaussConfig config;
  config.cluster_tuples = 20000;
  config.noise_tuples = 0;
  GeneratedData g = MakeGauss(config);
  size_t total_truth = 0;
  for (const PlantedCluster& c : g.truth) {
    total_truth += c.tuples;
    size_t inside = g.data.CountInBox(c.extent);
    // ±3σ captures ≈99.7% of a bell; allow other clusters' overlap to only
    // increase the count.
    EXPECT_GE(inside, static_cast<size_t>(0.95 * c.tuples));
  }
  EXPECT_EQ(total_truth, config.cluster_tuples);
}

TEST(SkyTest, SevenDimensionsAndTwentyClusters) {
  SkyConfig config;
  config.tuples = 30000;
  GeneratedData g = MakeSky(config);
  EXPECT_EQ(g.data.dim(), 7u);
  EXPECT_EQ(g.data.size(), 30000u);
  EXPECT_EQ(g.truth.size(), 20u) << "Table 4 lists 20 clusters";
}

TEST(SkyTest, SubspaceStructureMatchesTable4) {
  SkyConfig config;
  config.tuples = 20000;
  GeneratedData g = MakeSky(config);
  size_t full_dimensional = 0, subspace = 0;
  std::multiset<size_t> unused_counts;
  for (const PlantedCluster& c : g.truth) {
    size_t unused = 7 - c.relevant_dims.size();
    unused_counts.insert(unused);
    if (unused == 0) {
      ++full_dimensional;
    } else {
      ++subspace;
    }
  }
  EXPECT_EQ(full_dimensional, 11u) << "Table 4: 11 full-dimensional clusters";
  EXPECT_EQ(subspace, 9u) << "Table 4: 9 subspace clusters";
  EXPECT_EQ(unused_counts.count(1), 3u)
      << "Table 4: C6, C10, C14 have one unused dim";
  EXPECT_EQ(unused_counts.count(2), 3u);
  EXPECT_EQ(unused_counts.count(3), 1u);
  EXPECT_EQ(unused_counts.count(4), 1u);
  EXPECT_EQ(unused_counts.count(5), 1u);
}

TEST(SkyTest, DomainIsAstronomical) {
  SkyConfig config;
  config.tuples = 1000;
  GeneratedData g = MakeSky(config);
  EXPECT_DOUBLE_EQ(g.domain.lo(0), 0.0);
  EXPECT_DOUBLE_EQ(g.domain.hi(0), 360.0);
  EXPECT_DOUBLE_EQ(g.domain.lo(1), -90.0);
  EXPECT_DOUBLE_EQ(g.domain.hi(1), 90.0);
  for (size_t d = 2; d < 7; ++d) {
    EXPECT_DOUBLE_EQ(g.domain.lo(d), 10.0);
    EXPECT_DOUBLE_EQ(g.domain.hi(d), 25.0);
  }
  // Every tuple lies in the domain.
  for (size_t i = 0; i < g.data.size(); ++i) {
    EXPECT_TRUE(g.domain.ContainsPoint(g.data.row(i)));
  }
}

TEST(ParticleTest, HighDimensionalStress) {
  ParticleConfig config;
  config.cluster_tuples = 5000;
  config.noise_tuples = 1000;
  GeneratedData g = MakeParticle(config);
  EXPECT_EQ(g.data.dim(), 18u);
  EXPECT_EQ(g.data.size(), 6000u);
  for (const PlantedCluster& c : g.truth) {
    EXPECT_LE(c.relevant_dims.size(), config.max_subspace_dims);
  }
}

}  // namespace
}  // namespace sthist

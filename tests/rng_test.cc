#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace sthist {
namespace {

TEST(RngTest, SplitMix64MatchesReferenceVectors) {
  // Reference outputs of the canonical SplitMix64 (state 0, 1, 2 advanced
  // once), e.g. from the Vigna reference implementation.
  EXPECT_EQ(SplitMix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(SplitMix64(1), 0x910A2DEC89025CC1ull);
  EXPECT_EQ(SplitMix64(2), 0x975835DE1C9756CEull);
}

TEST(RngTest, DeriveSeedSeparatesRolesAndSeeds) {
  // No (seed, role) pair in a realistic sweep range may collide — in
  // particular DeriveSeed(s, 1) != DeriveSeed(s + 1, 0), the aliasing that
  // `seed + 1` stream derivation suffered from.
  std::set<uint64_t> seen;
  for (uint64_t seed = 0; seed < 500; ++seed) {
    for (uint64_t role = 0; role < 4; ++role) {
      EXPECT_TRUE(seen.insert(DeriveSeed(seed, role)).second)
          << "collision at seed=" << seed << " role=" << role;
    }
  }
}

TEST(RngTest, DeriveSeedIsDeterministic) {
  EXPECT_EQ(DeriveSeed(21, 0), DeriveSeed(21, 0));
  EXPECT_NE(DeriveSeed(21, 0), DeriveSeed(21, 1));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform01() != b.Uniform01()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, IndexStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(13), 13u);
  }
}

TEST(RngTest, IntIsInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Int(2, 4);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u) << "all values of a small range should appear";
}

TEST(RngTest, GaussianRoughMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleOfEmptyVectorIsNoop) {
  Rng rng(5);
  std::vector<int> v;
  rng.Shuffle(&v);
  EXPECT_TRUE(v.empty());
}

TEST(RngTest, SampleReturnsDistinctIndices) {
  Rng rng(9);
  std::vector<size_t> s = rng.Sample(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t i : s) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleAllReturnsPermutation) {
  Rng rng(9);
  std::vector<size_t> s = rng.Sample(10, 10);
  std::sort(s.begin(), s.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace sthist

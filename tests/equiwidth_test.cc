#include "histogram/equiwidth.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/generators.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

TEST(EquiWidthTest, SingleCellIsTrivialHistogram) {
  Dataset data(2);
  data.Append(Point{5.0, 5.0});
  data.Append(Point{7.0, 2.0});
  Box domain = Box::Cube(2, 0, 10);
  EquiWidthHistogram h(data, domain, 1);
  EXPECT_EQ(h.bucket_count(), 1u);
  EXPECT_DOUBLE_EQ(h.Estimate(domain), 2.0);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 0, 5)), 0.5);
}

TEST(EquiWidthTest, CellAlignedQueriesAreExact) {
  // Points placed so each 2x2 grid cell of [0,10]^2 with 5 cells/dim holds a
  // known count.
  Dataset data(2);
  data.Append(Point{1.0, 1.0});   // Cell (0,0).
  data.Append(Point{1.5, 1.5});   // Cell (0,0).
  data.Append(Point{9.0, 9.0});   // Cell (4,4).
  Box domain = Box::Cube(2, 0, 10);
  EquiWidthHistogram h(data, domain, 5);
  EXPECT_EQ(h.bucket_count(), 25u);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 0, 2)), 2.0);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 8, 10)), 1.0);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 2, 8)), 0.0);
  EXPECT_DOUBLE_EQ(h.Estimate(domain), 3.0);
}

TEST(EquiWidthTest, PartialCellUsesUniformityFraction) {
  Dataset data(1);
  data.Append(Point{1.0});  // The only cell [0,10) with 1 cell/dim... use 2.
  Box domain = Box::Cube(1, 0, 10);
  EquiWidthHistogram h(data, domain, 2);
  // Point is in cell [0,5); querying [0,2.5] covers half that cell.
  EXPECT_DOUBLE_EQ(h.Estimate(Box({0.0}, {2.5})), 0.5);
}

TEST(EquiWidthTest, QueryOutsideDomainIsZero) {
  Dataset data(2);
  data.Append(Point{5.0, 5.0});
  EquiWidthHistogram h(data, Box::Cube(2, 0, 10), 4);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 20, 30)), 0.0);
}

TEST(EquiWidthTest, BoundaryPointGoesToLastCell) {
  Dataset data(1);
  data.Append(Point{10.0});  // Exactly the domain max.
  EquiWidthHistogram h(data, Box::Cube(1, 0, 10), 5);
  EXPECT_DOUBLE_EQ(h.Estimate(Box({8.0}, {10.0})), 1.0);
}

TEST(EquiWidthTest, PointsOutsideDomainAreDropped) {
  Dataset data(1);
  data.Append(Point{5.0});
  data.Append(Point{15.0});  // Outside.
  EquiWidthHistogram h(data, Box::Cube(1, 0, 10), 2);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(1, 0, 10)), 1.0);
}

TEST(EquiWidthTest, RefineIsANoop) {
  GeneratedData g = MakeCross(CrossConfig{.tuples_per_cluster = 500,
                                          .noise_tuples = 100});
  Executor executor(g.data);
  EquiWidthHistogram h(g.data, g.domain, 8);
  Box q = Box::Cube(2, 100, 300);
  double before = h.Estimate(q);
  h.Refine(q, executor);
  EXPECT_DOUBLE_EQ(h.Estimate(q), before);
}

// Property sweep: on any data, a fine grid's estimate converges toward the
// true count as resolution increases, and full-domain estimates equal the
// in-domain tuple count exactly.
class EquiWidthPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EquiWidthPropertyTest, FullDomainMassIsExact) {
  CrossConfig config;
  config.tuples_per_cluster = 1000;
  config.noise_tuples = 200;
  config.seed = GetParam();
  GeneratedData g = MakeCross(config);
  EquiWidthHistogram h(g.data, g.domain, GetParam() % 7 + 2);
  EXPECT_NEAR(h.Estimate(g.domain), static_cast<double>(g.data.size()),
              1e-6);
}

TEST_P(EquiWidthPropertyTest, FinerGridsReduceWorkloadError) {
  CrossConfig config;
  config.tuples_per_cluster = 2000;
  config.noise_tuples = 400;
  config.seed = GetParam();
  GeneratedData g = MakeCross(config);
  Executor executor(g.data);

  WorkloadConfig wc;
  wc.num_queries = 100;
  wc.volume_fraction = 0.01;
  wc.seed = GetParam();
  Workload w = MakeWorkload(g.domain, wc);

  auto mae = [&](size_t cells) {
    EquiWidthHistogram h(g.data, g.domain, cells);
    double total = 0;
    for (const Box& q : w) {
      total += std::abs(h.Estimate(q) - executor.Count(q));
    }
    return total / static_cast<double>(w.size());
  };

  EXPECT_LT(mae(32), mae(2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquiWidthPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace sthist

#include "clustering/fptree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace sthist {
namespace {

WeightedTransaction T(std::vector<int> items, double weight = 1.0) {
  WeightedTransaction t;
  t.items = std::move(items);
  t.weight = weight;
  return t;
}

TEST(FpTreeTest, SingleItemSupport) {
  std::vector<WeightedTransaction> txs = {T({0}), T({0}), T({1})};
  FpTree tree(txs, 2, 1.0);
  EXPECT_DOUBLE_EQ(tree.ItemSupport(0), 2.0);
  EXPECT_DOUBLE_EQ(tree.ItemSupport(1), 1.0);
  EXPECT_EQ(tree.frequent_item_count(), 2u);
}

TEST(FpTreeTest, MinSupportFiltersItems) {
  std::vector<WeightedTransaction> txs = {T({0}), T({0}), T({1})};
  FpTree tree(txs, 2, 2.0);
  EXPECT_EQ(tree.frequent_item_count(), 1u);
  BestItemset best = tree.MineBest(2.0);
  EXPECT_EQ(best.items, std::vector<int>{0});
  EXPECT_DOUBLE_EQ(best.support, 2.0);
}

TEST(FpTreeTest, NoQualifyingItemsetGivesNegativeScore) {
  std::vector<WeightedTransaction> txs = {T({0})};
  FpTree tree(txs, 2, 5.0);
  BestItemset best = tree.MineBest(2.0);
  EXPECT_LT(best.score, 0.0);
  EXPECT_TRUE(best.items.empty());
}

TEST(FpTreeTest, GainTradesSupportForSize) {
  // {0,1} together in 4 transactions; {2} alone in 10.
  std::vector<WeightedTransaction> txs;
  for (int i = 0; i < 4; ++i) txs.push_back(T({0, 1}));
  for (int i = 0; i < 10; ++i) txs.push_back(T({2}));
  FpTree tree(txs, 3, 2.0);

  // Low gain: the big singleton wins (10*2 = 20 vs 4*2*2 = 16).
  BestItemset low = tree.MineBest(2.0);
  EXPECT_EQ(low.items, std::vector<int>{2});
  EXPECT_DOUBLE_EQ(low.score, 20.0);

  // High gain: the pair wins (4*16 = 64 vs 10*4 = 40).
  BestItemset high = tree.MineBest(4.0);
  EXPECT_EQ(high.items, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(high.support, 4.0);
  EXPECT_DOUBLE_EQ(high.score, 64.0);
}

TEST(FpTreeTest, MinItemsExcludesSingletons) {
  std::vector<WeightedTransaction> txs;
  for (int i = 0; i < 10; ++i) txs.push_back(T({0}));
  for (int i = 0; i < 3; ++i) txs.push_back(T({1, 2}));
  FpTree tree(txs, 3, 2.0);
  BestItemset best = tree.MineBest(2.0, /*min_items=*/2);
  EXPECT_EQ(best.items, (std::vector<int>{1, 2}));
}

TEST(FpTreeTest, WeightedTransactionsAccumulate) {
  std::vector<WeightedTransaction> txs = {T({0, 1}, 5.0), T({0}, 2.0)};
  FpTree tree(txs, 2, 1.0);
  EXPECT_DOUBLE_EQ(tree.ItemSupport(0), 7.0);
  EXPECT_DOUBLE_EQ(tree.ItemSupport(1), 5.0);
  BestItemset best = tree.MineBest(3.0);
  // {0,1}: 5*9 = 45 beats {0}: 7*3 = 21.
  EXPECT_EQ(best.items, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(best.score, 45.0);
}

TEST(FpTreeTest, SharedPrefixesCompress) {
  // All transactions share item 0; subsets beyond differ.
  std::vector<WeightedTransaction> txs = {T({0, 1, 2}), T({0, 1}), T({0, 2}),
                                          T({0})};
  FpTree tree(txs, 3, 1.0);
  EXPECT_DOUBLE_EQ(tree.ItemSupport(0), 4.0);
  BestItemset best = tree.MineBest(1.0);
  // gain 1: maximize raw support -> singleton {0} with support 4.
  EXPECT_EQ(best.items, std::vector<int>{0});
  EXPECT_DOUBLE_EQ(best.support, 4.0);
}

// Exhaustive reference: enumerate all itemsets over a small universe and
// compare against the FP-tree miner across random instances.
class FpTreeExhaustiveTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FpTreeExhaustiveTest, AgreesWithBruteForce) {
  Rng rng(GetParam());
  const int kItems = 7;
  const double kMinSupport = 3.0;

  std::vector<WeightedTransaction> txs;
  int n = 40 + static_cast<int>(rng.Index(40));
  for (int i = 0; i < n; ++i) {
    WeightedTransaction t;
    for (int item = 0; item < kItems; ++item) {
      if (rng.Bernoulli(0.4)) t.items.push_back(item);
    }
    if (!t.items.empty()) txs.push_back(std::move(t));
  }

  for (double gain : {1.0, 2.0, 5.0}) {
    FpTree tree(txs, kItems, kMinSupport);
    BestItemset mined = tree.MineBest(gain);

    double best_score = -1.0;
    for (int mask = 1; mask < (1 << kItems); ++mask) {
      double support = 0.0;
      for (const WeightedTransaction& t : txs) {
        int tmask = 0;
        for (int item : t.items) tmask |= 1 << item;
        if ((tmask & mask) == mask) support += t.weight;
      }
      if (support < kMinSupport) continue;
      double score = support * std::pow(gain, __builtin_popcount(mask));
      if (score > best_score) best_score = score;
    }

    if (best_score < 0.0) {
      EXPECT_LT(mined.score, 0.0);
    } else {
      EXPECT_NEAR(mined.score, best_score, 1e-9)
          << "gain=" << gain << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FpTreeExhaustiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sthist

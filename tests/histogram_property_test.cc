// Property suite run against EVERY Histogram implementation through the
// shared interface: estimates are finite and non-negative, the full-domain
// estimate recovers the dataset size (within per-implementation tolerance),
// estimation is monotone under query containment, and repeated calls —
// scalar or batched, at any thread count — are bitwise deterministic.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <map>

#include "core/box.h"
#include "core/check.h"
#include "core/rng.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "histogram/histogram.h"
#include "histogram/registry.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

// One dataset + executor + training workload shared by every implementation.
struct Scenario {
  Scenario(std::string name_in, GeneratedData g_in)
      : name(std::move(name_in)), g(std::move(g_in)) {}

  std::string name;
  GeneratedData g;
  std::unique_ptr<Executor> executor;
  Workload train;
  Workload eval;
};

std::unique_ptr<Scenario> MakeScenario(std::string name, GeneratedData g,
                                       uint64_t seed) {
  auto s = std::make_unique<Scenario>(std::move(name), std::move(g));
  s->executor = std::make_unique<Executor>(s->g.data);

  WorkloadConfig wc;
  wc.num_queries = 100;
  wc.volume_fraction = 0.01;
  wc.seed = DeriveSeed(seed, 0);
  s->train = MakeWorkload(s->g.domain, wc);

  // Evaluation probes mix the small training-sized queries with larger ones
  // so properties are checked across scales.
  wc.num_queries = 60;
  wc.seed = DeriveSeed(seed, 1);
  s->eval = MakeWorkload(s->g.domain, wc);
  wc.num_queries = 20;
  wc.volume_fraction = 0.15;
  wc.seed = DeriveSeed(seed, 2);
  Workload big = MakeWorkload(s->g.domain, wc);
  s->eval.insert(s->eval.end(), big.begin(), big.end());
  s->eval.push_back(s->g.domain);
  return s;
}

const std::vector<const Scenario*>& Scenarios() {
  static const std::vector<const Scenario*>* scenarios = [] {
    auto* out = new std::vector<const Scenario*>();

    CrossConfig cross;
    cross.tuples_per_cluster = 1500;
    cross.noise_tuples = 300;
    cross.seed = 11;
    out->push_back(MakeScenario("cross2d", MakeCross(cross), 101).release());

    GaussConfig gauss;
    gauss.dim = 4;
    gauss.num_clusters = 4;
    gauss.cluster_tuples = 4000;
    gauss.noise_tuples = 800;
    gauss.max_subspace_dims = 3;
    gauss.seed = 12;
    out->push_back(MakeScenario("gauss4d", MakeGauss(gauss), 202).release());
    return out;
  }();
  return *scenarios;
}

// One histogram implementation under test: a registry name, the relative
// tolerance for the full-domain-mass property, and a factory that builds
// (and, for self-tuning variants, trains) an instance for a scenario.
struct Impl {
  std::string name;
  double mass_rtol;
  std::function<std::unique_ptr<Histogram>(const Scenario&)> make;
};

// Per-family battery knobs. Every name in RegisteredNames() MUST have an
// entry here — the CHECK below turns "registered a new estimator but forgot
// the property battery" into an immediate test-binary failure rather than a
// silent coverage gap.
struct ImplTraits {
  double mass_rtol;     // Tolerance for the full-domain-mass property.
  size_t buckets;       // Generic synopsis budget (HistogramConfig::buckets).
  size_t cells_per_dim; // 0 = derive from buckets.
  size_t buckets_per_dim;
  bool train;           // Self-tuning families learn the scenario workload.
};

std::vector<Impl> AllImplementations() {
  // Self-tuning histograms (train=true) learn on the scenario workload with
  // true feedback; their full-domain mass tracks the dataset only
  // approximately. KDE is the exception: its domain-truncated kernels are
  // renormalized, so the full-domain estimate recovers the dataset size to
  // rounding however the bandwidths adapt.
  const std::map<std::string, ImplTraits> traits = {
      {"trivial", {1e-9, 100, 0, 0, false}},
      {"equiwidth", {1e-9, 100, 8, 0, false}},
      {"avi", {1e-9, 100, 0, 16, false}},
      {"sampling", {1e-9, 1000, 0, 0, false}},
      {"mhist", {1e-9, 100, 0, 0, false}},
      {"stgrid", {0.35, 100, 8, 0, true}},
      {"isomer", {0.25, 60, 0, 0, true}},
      {"stholes", {0.25, 60, 0, 0, true}},
      {"kde", {1e-6, 512, 0, 0, true}},
  };
  std::vector<Impl> impls;
  for (const std::string& name : RegisteredNames()) {
    auto it = traits.find(name);
    STHIST_CHECK_MSG(it != traits.end(),
                     "estimator '%s' is registered but has no property-test "
                     "traits; add it to the battery",
                     name.c_str());
    const ImplTraits t = it->second;
    impls.push_back(
        {name, t.mass_rtol, [name, t](const Scenario& s) {
           HistogramConfig hc;
           hc.domain = s.g.domain;
           hc.total_tuples = static_cast<double>(s.g.data.size());
           hc.data = &s.g.data;
           hc.buckets = t.buckets;
           hc.seed = 5;
           hc.cells_per_dim = t.cells_per_dim;
           hc.buckets_per_dim = t.buckets_per_dim;
           StatusOr<std::unique_ptr<Histogram>> made = MakeHistogram(name, hc);
           STHIST_CHECK_MSG(made.ok(), "MakeHistogram(%s): %s", name.c_str(),
                            made.status().message().c_str());
           std::unique_ptr<Histogram> h = *std::move(made);
           if (t.train) Train(h.get(), s.train, *s.executor);
           return h;
         }});
  }
  return impls;
}

class HistogramPropertyTest : public ::testing::TestWithParam<Impl> {};

TEST_P(HistogramPropertyTest, EstimatesAreFiniteAndNonNegative) {
  for (const Scenario* s : Scenarios()) {
    SCOPED_TRACE(s->name);
    std::unique_ptr<Histogram> h = GetParam().make(*s);
    for (const Box& q : s->eval) {
      const double est = h->Estimate(q);
      EXPECT_TRUE(std::isfinite(est)) << q.ToString();
      EXPECT_GE(est, 0.0) << q.ToString();
    }
  }
}

TEST_P(HistogramPropertyTest, FullDomainMassApproximatesDatasetSize) {
  for (const Scenario* s : Scenarios()) {
    SCOPED_TRACE(s->name);
    std::unique_ptr<Histogram> h = GetParam().make(*s);
    const double n = static_cast<double>(s->g.data.size());
    EXPECT_NEAR(h->Estimate(s->g.domain), n, GetParam().mass_rtol * n);
  }
}

// q1 ⊆ q2 ⇒ Estimate(q1) <= Estimate(q2) + eps. Every implementation here
// estimates as a non-negative-weighted sum of per-cell (or per-bucket-region,
// or per-sample-point) coverage terms, each individually monotone in the
// query box, so containment monotonicity is guaranteed up to rounding.
TEST_P(HistogramPropertyTest, ContainmentMonotonicity) {
  for (const Scenario* s : Scenarios()) {
    SCOPED_TRACE(s->name);
    std::unique_ptr<Histogram> h = GetParam().make(*s);
    Rng rng(DeriveSeed(77, s->g.data.dim()));
    for (const Box& q2 : s->eval) {
      // Random shrink: each bound moves inward by at most 40% of the width,
      // so q1 keeps positive volume and q1 ⊆ q2 holds by construction.
      Box q1 = q2;
      for (size_t d = 0; d < q2.dim(); ++d) {
        const double width = q2.hi(d) - q2.lo(d);
        const double lo = q2.lo(d) + rng.Uniform(0.0, 0.4) * width;
        const double hi = q2.hi(d) - rng.Uniform(0.0, 0.4) * width;
        q1.set_lo(d, lo);
        q1.set_hi(d, std::max(hi, lo));
      }
      const double est2 = h->Estimate(q2);
      const double est1 = h->Estimate(q1);
      EXPECT_LE(est1, est2 + 1e-6 * (1.0 + est2))
          << "q1=" << q1.ToString() << " q2=" << q2.ToString();
    }
  }
}

TEST_P(HistogramPropertyTest, EstimatesAreBitwiseDeterministic) {
  for (const Scenario* s : Scenarios()) {
    SCOPED_TRACE(s->name);
    std::unique_ptr<Histogram> h = GetParam().make(*s);

    // Scalar repeatability: a const Estimate must not drift call to call
    // (lazy index builds and rejection counters may not perturb results).
    std::vector<double> first;
    first.reserve(s->eval.size());
    for (const Box& q : s->eval) first.push_back(h->Estimate(q));
    for (size_t i = 0; i < s->eval.size(); ++i) {
      EXPECT_EQ(Bits(h->Estimate(s->eval[i])), Bits(first[i]))
          << s->eval[i].ToString();
    }

    // Batched paths agree bitwise with the scalar path at any thread count.
    const std::vector<double> serial = h->EstimateBatch(s->eval, 1);
    const std::vector<double> threaded = h->EstimateBatch(s->eval, 4);
    ASSERT_EQ(serial.size(), s->eval.size());
    ASSERT_EQ(threaded.size(), s->eval.size());
    for (size_t i = 0; i < s->eval.size(); ++i) {
      EXPECT_EQ(Bits(serial[i]), Bits(first[i])) << s->eval[i].ToString();
      EXPECT_EQ(Bits(threaded[i]), Bits(first[i])) << s->eval[i].ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllHistograms, HistogramPropertyTest,
                         ::testing::ValuesIn(AllImplementations()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace sthist

#include "histogram/stholes.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/dataset.h"
#include "workload/query.h"

namespace sthist {
namespace {

// A uniform block of points laid out deterministically on a sub-grid, so
// counts inside aligned boxes are exactly predictable.
void FillUniformBlock(const Box& block, size_t per_dim, Dataset* data) {
  const size_t dim = block.dim();
  size_t total = 1;
  for (size_t d = 0; d < dim; ++d) total *= per_dim;
  Point p(dim);
  for (size_t index = 0; index < total; ++index) {
    size_t rest = index;
    for (size_t d = 0; d < dim; ++d) {
      size_t cell = rest % per_dim;
      rest /= per_dim;
      double step = block.Extent(d) / static_cast<double>(per_dim);
      p[d] = block.lo(d) + (static_cast<double>(cell) + 0.5) * step;
    }
    data->Append(p);
  }
}

STHolesConfig Budget(size_t buckets) {
  STHolesConfig config;
  config.max_buckets = buckets;
  return config;
}

TEST(STHolesTest, FreshHistogramIsUniform) {
  Box domain = Box::Cube(2, 0, 100);
  STHoles h(domain, 1000, Budget(10));
  EXPECT_EQ(h.bucket_count(), 0u) << "root is not counted";
  EXPECT_EQ(h.total_bucket_count(), 1u);
  EXPECT_DOUBLE_EQ(h.Estimate(domain), 1000.0);
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 0, 50)), 250.0);
}

TEST(STHolesTest, RefineMakesLearnedQueryExact) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 10, 20), 10, &data);  // 100 points.
  Executor executor(data);

  Box domain = Box::Cube(2, 0, 100);
  STHoles h(domain, 100, Budget(10));
  Box q = Box::Cube(2, 5, 25);
  double before = h.Estimate(q);
  EXPECT_NE(before, 100.0) << "uniformity assumption is wrong here";

  h.Refine(q, executor);
  EXPECT_NEAR(h.Estimate(q), 100.0, 1e-9)
      << "a just-learned query must estimate exactly";
  EXPECT_EQ(h.bucket_count(), 1u);
  h.CheckInvariants();
}

TEST(STHolesTest, QueryCoveringWholeDomainUpdatesRootOnly) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 0, 100), 10, &data);
  Executor executor(data);

  Box domain = Box::Cube(2, 0, 100);
  STHoles h(domain, 500, Budget(10));  // Deliberately wrong total.
  h.Refine(domain, executor);
  EXPECT_EQ(h.bucket_count(), 0u) << "no hole for a full-domain query";
  EXPECT_DOUBLE_EQ(h.Estimate(domain), 100.0) << "frequency corrected";
}

TEST(STHolesTest, QueryOutsideDomainIsIgnored) {
  Dataset data(2);
  data.Append(Point{50.0, 50.0});
  Executor executor(data);
  STHoles h(Box::Cube(2, 0, 100), 1, Budget(10));
  h.Refine(Box::Cube(2, 500, 600), executor);
  EXPECT_EQ(h.bucket_count(), 0u);
  h.CheckInvariants();
}

TEST(STHolesTest, DrilledHoleBecomesChildAndMassMovesDown) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 40, 60), 10, &data);  // 100 pts in center.
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 100, Budget(10));
  h.Refine(Box::Cube(2, 40, 60), executor);

  std::vector<STHoles::BucketInfo> dump = h.Dump();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[0].depth, 0u);
  EXPECT_DOUBLE_EQ(dump[0].frequency, 0.0) << "all mass is in the hole";
  EXPECT_EQ(dump[1].depth, 1u);
  EXPECT_DOUBLE_EQ(dump[1].frequency, 100.0);
  EXPECT_EQ(dump[1].box, Box::Cube(2, 40, 60));
  EXPECT_NEAR(h.TotalFrequency(), 100.0, 1e-9);
}

TEST(STHolesTest, CandidateShrinksAwayFromExistingChild) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 0, 100), 20, &data);  // 400 uniform points.
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 400, Budget(10));
  // First hole.
  h.Refine(Box({10.0, 10.0}, {30.0, 30.0}), executor);
  // Overlapping query: its candidate in the root must shrink off the child.
  h.Refine(Box({20.0, 20.0}, {50.0, 50.0}), executor);
  h.CheckInvariants();

  std::vector<STHoles::BucketInfo> dump = h.Dump();
  // Root + first hole + shrunken second hole (+ a hole drilled inside the
  // first child where the query overlapped it).
  EXPECT_GE(dump.size(), 3u);
  for (size_t i = 1; i < dump.size(); ++i) {
    for (size_t j = i + 1; j < dump.size(); ++j) {
      if (dump[i].depth == dump[j].depth) {
        EXPECT_FALSE(dump[i].box.Intersects(dump[j].box));
      }
    }
  }
}

TEST(STHolesTest, BudgetIsEnforcedByMerging) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 0, 100), 30, &data);
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 900, Budget(3));
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    double x = rng.Uniform(0, 90), y = rng.Uniform(0, 90);
    h.Refine(Box({x, y}, {x + 10, y + 10}), executor);
    EXPECT_LE(h.bucket_count(), 3u);
    h.CheckInvariants();
  }
}

TEST(STHolesTest, MergesConserveTotalFrequency) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 0, 100), 30, &data);
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 900, Budget(2));
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    double x = rng.Uniform(0, 85), y = rng.Uniform(0, 85);
    h.Refine(Box({x, y}, {x + 15, y + 15}), executor);
    // Exact feedback + mass-conserving merges keep the total at 900.
    EXPECT_NEAR(h.TotalFrequency(), 900.0, 1e-6);
  }
}

TEST(STHolesTest, EstimateOfDomainEqualsTotalFrequency) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 20, 80), 25, &data);
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 625, Budget(5));
  Rng rng(9);
  for (int i = 0; i < 25; ++i) {
    double x = rng.Uniform(0, 80), y = rng.Uniform(0, 80);
    h.Refine(Box({x, y}, {x + 20, y + 20}), executor);
    EXPECT_NEAR(h.Estimate(h.domain()), h.TotalFrequency(), 1e-6)
        << "eq. 1 over the whole domain sums all bucket frequencies";
  }
}

TEST(STHolesTest, RepeatedIdenticalQueriesAreStable) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 10, 30), 10, &data);
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 100, Budget(5));
  Box q = Box::Cube(2, 5, 35);
  h.Refine(q, executor);
  size_t buckets = h.bucket_count();
  for (int i = 0; i < 5; ++i) {
    h.Refine(q, executor);
    EXPECT_EQ(h.bucket_count(), buckets)
        << "re-learning an identical query must not add buckets";
  }
  EXPECT_NEAR(h.Estimate(q), 100.0, 1e-9);
}

TEST(STHolesTest, NestedQueriesBuildNestedBuckets) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 0, 100), 20, &data);
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 400, Budget(10));
  h.Refine(Box::Cube(2, 10, 90), executor);
  h.Refine(Box::Cube(2, 30, 70), executor);
  h.Refine(Box::Cube(2, 45, 55), executor);
  h.CheckInvariants();

  std::vector<STHoles::BucketInfo> dump = h.Dump();
  ASSERT_EQ(dump.size(), 4u);
  EXPECT_EQ(dump[1].depth, 1u);
  EXPECT_EQ(dump[2].depth, 2u);
  EXPECT_EQ(dump[3].depth, 3u);
}

TEST(STHolesTest, EstimateIsMonotoneInQueryNesting) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 25, 75), 20, &data);
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 400, Budget(8));
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    double x = rng.Uniform(0, 70), y = rng.Uniform(0, 70);
    h.Refine(Box({x, y}, {x + 30, y + 30}), executor);
  }
  for (int i = 0; i < 50; ++i) {
    double x = rng.Uniform(0, 60), y = rng.Uniform(0, 60);
    Box inner({x + 10, y + 10}, {x + 30, y + 30});
    Box outer({x, y}, {x + 40, y + 40});
    EXPECT_LE(h.Estimate(inner), h.Estimate(outer) + 1e-9);
  }
}

TEST(STHolesTest, AdjacentEqualDensitySiblingsMergeSeamlessly) {
  // Two adjacent boxes with identical density: the sibling merge has zero
  // penalty and zero swallowed parent region, so the merged bucket is their
  // exact union carrying their combined mass.
  Dataset data(2);
  FillUniformBlock(Box({10.0, 10.0}, {20.0, 20.0}), 10, &data);  // 100 pts.
  FillUniformBlock(Box({20.0, 10.0}, {30.0, 20.0}), 10, &data);  // 100 pts.
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 200, Budget(1));
  h.Refine(Box({10.0, 10.0}, {20.0, 20.0}), executor);
  h.Refine(Box({20.0, 10.0}, {30.0, 20.0}), executor);  // Forces a merge.
  h.CheckInvariants();

  ASSERT_EQ(h.bucket_count(), 1u);
  std::vector<STHoles::BucketInfo> dump = h.Dump();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[1].box, Box({10.0, 10.0}, {30.0, 20.0}));
  EXPECT_NEAR(dump[1].frequency, 200.0, 1e-9);
  EXPECT_NEAR(h.TotalFrequency(), 200.0, 1e-9);
}

TEST(STHolesTest, NestedBucketsCollapseViaParentChildMerge) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 10, 50), 20, &data);  // 400 points.
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 400, Budget(1));
  h.Refine(Box::Cube(2, 10, 50), executor);
  h.Refine(Box::Cube(2, 20, 40), executor);  // Nested hole, then merge.
  h.CheckInvariants();

  ASSERT_EQ(h.bucket_count(), 1u);
  EXPECT_NEAR(h.TotalFrequency(), 400.0, 1e-9);
  // Whatever pair merged, the remaining bucket plus root still answer the
  // outer region exactly (both candidate merges conserve its mass).
  EXPECT_NEAR(h.Estimate(Box::Cube(2, 10, 50)), 400.0, 1e-6);
}

TEST(STHolesTest, MergePicksTheCheaperVictim) {
  // A dense bucket and a sparse bucket: with budget 1, the merge must keep
  // the dense cluster distinct and fold the near-empty bucket into the root
  // (absorbing it costs almost nothing).
  Dataset data(2);
  FillUniformBlock(Box({10.0, 10.0}, {20.0, 20.0}), 20, &data);  // 400 pts.
  data.Append(Point{75.0, 75.0});  // One lonely point elsewhere.
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 401, Budget(1));
  h.Refine(Box({10.0, 10.0}, {20.0, 20.0}), executor);
  h.Refine(Box({70.0, 70.0}, {80.0, 80.0}), executor);
  h.CheckInvariants();

  ASSERT_EQ(h.bucket_count(), 1u);
  std::vector<STHoles::BucketInfo> dump = h.Dump();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[1].box, Box({10.0, 10.0}, {20.0, 20.0}))
      << "the dense bucket survives; the sparse one was absorbed";
  EXPECT_NEAR(dump[1].frequency, 400.0, 1e-9);
}

TEST(STHolesTest, ThreeWayMergeKeepsInvariantsAndMass) {
  Dataset data(2);
  FillUniformBlock(Box::Cube(2, 0, 100), 30, &data);  // 900 uniform points.
  Executor executor(data);

  STHoles h(Box::Cube(2, 0, 100), 900, Budget(2));
  h.Refine(Box({10.0, 10.0}, {20.0, 20.0}), executor);
  h.Refine(Box({40.0, 10.0}, {50.0, 20.0}), executor);
  h.Refine(Box({25.0, 5.0}, {35.0, 15.0}), executor);
  h.CheckInvariants();
  EXPECT_EQ(h.bucket_count(), 2u);
  EXPECT_NEAR(h.TotalFrequency(), 900.0, 1e-6);
}

TEST(STHolesTest, ZeroTotalTuplesIsValid) {
  STHoles h(Box::Cube(2, 0, 100), 0, Budget(5));
  EXPECT_DOUBLE_EQ(h.Estimate(Box::Cube(2, 0, 100)), 0.0);
}

}  // namespace
}  // namespace sthist

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/rng.h"
#include "data/generators.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

// Fuzzed structural invariants: arbitrary query sequences on real generated
// data must keep the bucket tree valid, the budget respected, estimates
// non-negative, and eq. (1) over the whole domain equal to the tracked mass.
struct FuzzParam {
  size_t buckets;
  double volume_fraction;
  uint64_t seed;
};

class STHolesFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(STHolesFuzzTest, InvariantsSurviveRandomWorkloads) {
  const FuzzParam param = GetParam();
  CrossConfig data_config;
  data_config.tuples_per_cluster = 2000;
  data_config.noise_tuples = 400;
  data_config.seed = param.seed;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  STHolesConfig config;
  config.max_buckets = param.buckets;
  STHoles h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 120;
  wc.volume_fraction = param.volume_fraction;
  wc.seed = param.seed + 100;
  Workload w = MakeWorkload(g.domain, wc);

  for (const Box& q : w) {
    h.Refine(q, executor);
    h.CheckInvariants();
    ASSERT_LE(h.bucket_count(), param.buckets);
    double est = h.Estimate(q);
    ASSERT_GE(est, -1e-9);
    ASSERT_NEAR(h.Estimate(h.domain()), h.TotalFrequency(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, STHolesFuzzTest,
    ::testing::Values(FuzzParam{1, 0.01, 1}, FuzzParam{3, 0.01, 2},
                      FuzzParam{10, 0.005, 3}, FuzzParam{25, 0.02, 4},
                      FuzzParam{50, 0.05, 5}, FuzzParam{100, 0.01, 6},
                      FuzzParam{5, 0.10, 7}, FuzzParam{2, 0.001, 8}));

// The same invariants in higher-dimensional spaces, where shrinking and
// merging exercise many more geometric cases.
struct HighDimFuzzParam {
  size_t dim;
  size_t buckets;
  double volume_fraction;
  uint64_t seed;
};

class STHolesHighDimFuzzTest
    : public ::testing::TestWithParam<HighDimFuzzParam> {};

TEST_P(STHolesHighDimFuzzTest, InvariantsSurviveRandomWorkloads) {
  const HighDimFuzzParam param = GetParam();
  GaussConfig data_config;
  data_config.dim = param.dim;
  data_config.max_subspace_dims = std::min<size_t>(param.dim, 5);
  data_config.cluster_tuples = 3000;
  data_config.noise_tuples = 600;
  data_config.seed = param.seed;
  GeneratedData g = MakeGauss(data_config);
  Executor executor(g.data);

  STHolesConfig config;
  config.max_buckets = param.buckets;
  STHoles h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 60;
  wc.volume_fraction = param.volume_fraction;
  wc.seed = param.seed + 1000;
  Workload w = MakeWorkload(g.domain, wc);

  for (const Box& q : w) {
    h.Refine(q, executor);
    h.CheckInvariants();
    ASSERT_LE(h.bucket_count(), param.buckets);
    ASSERT_GE(h.Estimate(q), -1e-9);
    ASSERT_NEAR(h.Estimate(h.domain()), h.TotalFrequency(), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, STHolesHighDimFuzzTest,
    ::testing::Values(HighDimFuzzParam{3, 10, 0.01, 21},
                      HighDimFuzzParam{4, 20, 0.02, 22},
                      HighDimFuzzParam{5, 15, 0.01, 23},
                      HighDimFuzzParam{6, 30, 0.02, 24},
                      HighDimFuzzParam{7, 25, 0.01, 25},
                      HighDimFuzzParam{10, 20, 0.05, 26}));

// With an unlimited budget (no merges ever run) and exact feedback, every
// frequency in the tree stays exact, so any learned query estimates exactly
// and the total mass equals the relation size at all times.
class STHolesExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(STHolesExactnessTest, UnlimitedBudgetKeepsFrequenciesExact) {
  GaussConfig data_config;
  data_config.dim = 3;
  data_config.cluster_tuples = 4000;
  data_config.noise_tuples = 400;
  data_config.max_subspace_dims = 3;
  data_config.seed = GetParam();
  GeneratedData g = MakeGauss(data_config);
  Executor executor(g.data);

  STHolesConfig config;
  config.max_buckets = 1000000;  // Never merge.
  STHoles h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 60;
  wc.volume_fraction = 0.02;
  wc.seed = GetParam() + 7;
  Workload w = MakeWorkload(g.domain, wc);

  // Without merges, every bucket frequency stays an exact region count, so
  // the tracked mass equals the relation size after every refinement. (Note
  // that even exact frequencies do not make every learned query estimate
  // exactly: the greedy shrink can permanently cut query parts away — the
  // very "stagnation" behaviour §3.2 analyzes.)
  const double total = static_cast<double>(g.data.size());
  double untrained_mae = 0.0;
  for (const Box& q : w) {
    untrained_mae += std::abs(h.Estimate(q) - executor.Count(q));
  }
  untrained_mae /= static_cast<double>(w.size());

  for (const Box& q : w) {
    h.Refine(q, executor);
    ASSERT_NEAR(h.TotalFrequency(), total, 1e-6)
        << "exact feedback without merges conserves mass exactly";
    h.CheckInvariants();
  }

  // A second pass over the same queries refines the leftovers; with an
  // unlimited budget the workload error collapses far below the untrained
  // level.
  for (const Box& q : w) h.Refine(q, executor);
  double trained_mae = 0.0;
  for (const Box& q : w) {
    trained_mae += std::abs(h.Estimate(q) - executor.Count(q));
  }
  trained_mae /= static_cast<double>(w.size());
  EXPECT_LT(trained_mae, 0.2 * untrained_mae);
}

INSTANTIATE_TEST_SUITE_P(Seeds, STHolesExactnessTest,
                         ::testing::Values(11, 12, 13));

// Learning must not make the histogram worse on the workload it has seen:
// after training, workload error is far below the untrained uniform error.
TEST(STHolesLearningTest, TrainingReducesWorkloadError) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 4000;
  data_config.noise_tuples = 800;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  STHolesConfig config;
  config.max_buckets = 50;
  STHoles h(g.domain, static_cast<double>(g.data.size()), config);

  WorkloadConfig wc;
  wc.num_queries = 200;
  wc.volume_fraction = 0.01;
  Workload w = MakeWorkload(g.domain, wc);

  auto workload_error = [&](const STHoles& hist) {
    double total = 0;
    for (const Box& q : w) {
      total += std::abs(hist.Estimate(q) - executor.Count(q));
    }
    return total / static_cast<double>(w.size());
  };

  double untrained = workload_error(h);
  for (const Box& q : w) h.Refine(q, executor);
  double trained = workload_error(h);
  EXPECT_LT(trained, 0.5 * untrained);
}

// Degenerate inputs: queries with zero volume must be ignored gracefully.
TEST(STHolesEdgeTest, ZeroVolumeQueryIsIgnored) {
  Dataset data(2);
  data.Append(Point{50.0, 50.0});
  Executor executor(data);
  STHolesConfig config;
  config.max_buckets = 5;
  STHoles h(Box::Cube(2, 0, 100), 1, config);
  h.Refine(Box({10.0, 10.0}, {10.0, 90.0}), executor);  // A line.
  EXPECT_EQ(h.bucket_count(), 0u);
  h.CheckInvariants();
}

TEST(STHolesEdgeTest, TinySliverQueriesDoNotCorruptTree) {
  Dataset data(2);
  Rng rng(3);
  Point p(2);
  for (int i = 0; i < 1000; ++i) {
    p[0] = rng.Uniform(0, 100);
    p[1] = rng.Uniform(0, 100);
    data.Append(p);
  }
  Executor executor(data);
  STHolesConfig config;
  config.max_buckets = 10;
  STHoles h(Box::Cube(2, 0, 100), 1000, config);
  for (int i = 0; i < 50; ++i) {
    double x = rng.Uniform(0, 99);
    // Extremely thin but positive-volume slivers.
    h.Refine(Box({x, 0.0}, {x + 1e-7, 100.0}), executor);
    h.CheckInvariants();
  }
}

}  // namespace
}  // namespace sthist

// Observability layer battery (src/obs/, DESIGN.md §13):
//  - concurrency: 8 writer threads per metric kind, totals exact after join
//    (and TSan-clean under the sanitizer CI jobs);
//  - export: the JSON snapshot round-trips through a minimal flat parser,
//    and text/JSON agree on every value;
//  - disabled registry: handle updates through the null object perform no
//    heap allocation (counted via a global operator new hook);
//  - non-perturbation: an instrumented STHoles produces bitwise-identical
//    estimates to an uninstrumented twin fed the identical refinement
//    sequence — instrumentation must never feed back into computation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "histogram/stholes.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/service_fleet.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace {

// Global allocation counter fed by the replaced operator new (below); used
// to prove the disabled path allocates nothing.
std::atomic<uint64_t> g_allocations{0};

}  // namespace

// The replacement pair is malloc/free-consistent; GCC's
// -Wmismatched-new-delete can't see that across the replaced functions and
// warns on every delete in the binary.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace sthist {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;

constexpr size_t kWriters = 8;
constexpr uint64_t kIncrementsPerWriter = 20000;

// Runs `fn(writer_index)` on kWriters threads and joins.
template <typename Fn>
void RunWriters(Fn fn) {
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([fn, w] { fn(w); });
  }
  for (std::thread& t : threads) t.join();
}

TEST(MetricsConcurrencyTest, CounterTotalsExactAcrossWriters) {
  MetricsRegistry registry;
  obs::Counter counter = registry.counter("test.obs.counter");
  RunWriters([&](size_t) {
    for (uint64_t i = 0; i < kIncrementsPerWriter; ++i) counter.Inc();
  });
  EXPECT_EQ(counter.value(), kWriters * kIncrementsPerWriter);
}

TEST(MetricsConcurrencyTest, CounterHandlesShareOneCell) {
  MetricsRegistry registry;
  // Each writer resolves its own handle for the same name; all increments
  // must land in one cell (this is how histogram clones aggregate).
  RunWriters([&](size_t) {
    obs::Counter counter = registry.counter("test.obs.shared");
    for (uint64_t i = 0; i < kIncrementsPerWriter; ++i) counter.Inc(2);
  });
  EXPECT_EQ(registry.counter("test.obs.shared").value(),
            2 * kWriters * kIncrementsPerWriter);
}

TEST(MetricsConcurrencyTest, GaugeAddTotalsExactAcrossWriters) {
  MetricsRegistry registry;
  obs::Gauge gauge = registry.gauge("test.obs.gauge");
  // 1.0 is exactly representable and the total stays far below 2^53, so
  // floating-point addition is associative here and the sum is exact.
  RunWriters([&](size_t) {
    for (uint64_t i = 0; i < kIncrementsPerWriter; ++i) gauge.Add(1.0);
  });
  EXPECT_EQ(gauge.value(),
            static_cast<double>(kWriters * kIncrementsPerWriter));
}

TEST(MetricsConcurrencyTest, LatencyCountsExactAcrossWriters) {
  MetricsRegistry registry;
  obs::LatencyHistogram latency = registry.latency("test.obs.latency");
  RunWriters([&](size_t w) {
    // Writer w observes a constant duration that lands in bucket w, so
    // per-bucket counts are checkable exactly, not just the grand total.
    double seconds = w == 0 ? 0.5e-6 : obs::kLatencyBounds[w - 1] * 1.5;
    for (uint64_t i = 0; i < kIncrementsPerWriter; ++i) {
      latency.Observe(seconds);
    }
  });
  EXPECT_EQ(latency.count(), kWriters * kIncrementsPerWriter);
  std::array<uint64_t, obs::kLatencyBuckets> buckets =
      latency.bucket_counts();
  for (size_t b = 0; b < kWriters; ++b) {
    EXPECT_EQ(buckets[b], kIncrementsPerWriter) << "bucket " << b;
  }
  EXPECT_GT(latency.max_seconds(), obs::kLatencyBounds[kWriters - 2]);
}

TEST(MetricsConcurrencyTest, TraceRingKeepsMostRecentSpans) {
  obs::TraceRing ring(8);
  for (int i = 0; i < 20; ++i) {
    ring.Record("span", static_cast<double>(i), 1.0);
  }
  std::vector<obs::SpanRecord> recent = ring.Recent();
  ASSERT_EQ(recent.size(), 8u);
  // Oldest first, and only the last 8 of the 20 recorded survive.
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].start_seconds, static_cast<double>(12 + i));
  }
}

// ---------------------------------------------------------------------------
// JSON snapshot round-trip. The exporter writes a small, known subset of
// JSON; this flat parser handles exactly that subset (no nesting beyond the
// fixed schema, no escapes in metric names — DESIGN.md §13 forbids them).
// ---------------------------------------------------------------------------

// Minimal recursive-descent JSON reader covering exactly what the exporter
// emits (objects, arrays, numbers, null, unescaped strings — DESIGN.md §13
// forbids exotic characters in metric names). Flattens every number to a
// path key: {"a": {"b": [[1, 2]]}} -> {"a/b/0/0": 1, "a/b/0/1": 2}.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(std::string text) : text_(std::move(text)) {}

  std::map<std::string, double> Flatten() {
    ParseValue("");
    SkipWhitespace();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage after JSON document";
    return numbers_;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' ||
                                   text_[pos_] == '\n' ||
                                   text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  void Expect(char c) {
    ASSERT_LT(pos_, text_.size());
    ASSERT_EQ(text_[pos_], c) << "at offset " << pos_;
    ++pos_;
  }

  std::string ParseString() {
    Expect('"');
    size_t end = text_.find('"', pos_);
    EXPECT_NE(end, std::string::npos);
    std::string s = text_.substr(pos_, end - pos_);
    pos_ = end + 1;
    return s;
  }

  void ParseValue(const std::string& path) {
    SkipWhitespace();
    ASSERT_LT(pos_, text_.size());
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      SkipWhitespace();
      if (text_[pos_] == '}') {
        ++pos_;
        return;
      }
      while (true) {
        std::string key = ParseString();
        SkipWhitespace();
        Expect(':');
        ParseValue(path.empty() ? key : path + "/" + key);
        SkipWhitespace();
        if (text_[pos_] == ',') {
          ++pos_;
          SkipWhitespace();
          continue;
        }
        Expect('}');
        break;
      }
    } else if (c == '[') {
      ++pos_;
      SkipWhitespace();
      if (text_[pos_] == ']') {
        ++pos_;
        return;
      }
      size_t index = 0;
      while (true) {
        ParseValue(path + "/" + std::to_string(index++));
        SkipWhitespace();
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        Expect(']');
        break;
      }
    } else if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;  // Overflow-bucket bound marker; carries no number.
    } else {
      char* end = nullptr;
      double value = std::strtod(text_.c_str() + pos_, &end);
      ASSERT_NE(end, text_.c_str() + pos_) << "bad number at offset " << pos_;
      numbers_[path] = value;
      pos_ = static_cast<size_t>(end - text_.c_str());
    }
  }

  std::string text_;
  size_t pos_ = 0;
  std::map<std::string, double> numbers_;
};

TEST(MetricsExportTest, JsonSnapshotRoundTrips) {
  MetricsRegistry registry;
  registry.counter("histogram.test.drills").Inc(41);
  registry.gauge("histogram.test.buckets").Set(17.5);
  obs::LatencyHistogram latency = registry.latency("serve.test.seconds");
  latency.Observe(2e-6);   // bucket 1 (1e-6, 4e-6]
  latency.Observe(2e-6);
  latency.Observe(100.0);  // overflow bucket

  std::map<std::string, double> parsed =
      MiniJsonParser(registry.ToJson()).Flatten();
  EXPECT_EQ(parsed.at("counters/histogram.test.drills"), 41.0);
  EXPECT_EQ(parsed.at("gauges/histogram.test.buckets"), 17.5);
  EXPECT_EQ(parsed.at("latencies/serve.test.seconds/count"), 3.0);
  EXPECT_EQ(parsed.at("latencies/serve.test.seconds/max_seconds"), 100.0);
  EXPECT_EQ(parsed.at("latencies/serve.test.seconds/sum_seconds"),
            100.0 + 4e-6);
  // Bucket b's count is element 1 of inner pair b; bucket 1 covers
  // (1e-6, 4e-6] and the overflow bucket is last.
  EXPECT_EQ(parsed.at("latencies/serve.test.seconds/buckets/1/1"), 2.0);
  EXPECT_EQ(parsed.at("latencies/serve.test.seconds/buckets/" +
                      std::to_string(obs::kLatencyBuckets - 1) + "/1"),
            1.0);
  // Bucket bounds round-trip too (element 0 of each pair).
  EXPECT_EQ(parsed.at("latencies/serve.test.seconds/buckets/1/0"), 4e-6);
}

TEST(MetricsExportTest, SnapshotSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("b.second.counter");
  registry.counter("a.first.counter").Inc(7);
  registry.gauge("z.gauge.depth").Set(-3.0);
  registry.latency("m.middle.seconds");

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.total_metrics(), 4u);
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.first.counter");
  EXPECT_EQ(snapshot.counters[0].value, 7u);
  EXPECT_EQ(snapshot.counters[1].name, "b.second.counter");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, -3.0);

  // The text export mentions every metric by name.
  std::string text = registry.ToText();
  EXPECT_NE(text.find("a.first.counter 7"), std::string::npos);
  EXPECT_NE(text.find("z.gauge.depth"), std::string::npos);
  EXPECT_NE(text.find("m.middle.seconds_count 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Disabled registry: null-object handles must not allocate.
// ---------------------------------------------------------------------------

TEST(MetricsDisabledTest, DisabledHandlesDoNotAllocate) {
  MetricsRegistry* disabled = MetricsRegistry::Disabled();
  ASSERT_FALSE(disabled->enabled());

  // Resolve handles once (string_view lookup on the disabled registry must
  // itself be allocation-free) and hammer them; the allocation counter must
  // not move at all.
  uint64_t before = g_allocations.load();
  obs::Counter counter = disabled->counter("layer.component.counter");
  obs::Gauge gauge = disabled->gauge("layer.component.gauge");
  obs::LatencyHistogram latency = disabled->latency("layer.component.lat");
  for (int i = 0; i < 1000; ++i) {
    counter.Inc();
    gauge.Set(static_cast<double>(i));
    latency.Observe(1e-3);
    obs::ScopedTimer timer(latency);  // Disabled: no clock read, no alloc.
  }
  uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before);

  EXPECT_FALSE(counter.enabled());
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(latency.count(), 0u);
  EXPECT_EQ(disabled->ring(), nullptr);
}

TEST(MetricsDisabledTest, GlobalDefaultIsDisabledNullObject) {
  // The process-wide default must be installed-nothing safe. (gtest runs
  // tests in one process; restore whatever was set when we're done.)
  obs::SetGlobalMetrics(nullptr);
  EXPECT_FALSE(obs::GlobalMetrics()->enabled());

  MetricsRegistry registry;
  obs::SetGlobalMetrics(&registry);
  EXPECT_TRUE(obs::GlobalMetrics()->enabled());
  obs::GlobalMetrics()->counter("test.global.counter").Inc();
  EXPECT_EQ(registry.counter("test.global.counter").value(), 1u);
  obs::SetGlobalMetrics(nullptr);
}

// ---------------------------------------------------------------------------
// Non-perturbation: instrumentation must never change computed results.
// ---------------------------------------------------------------------------

TEST(MetricsDifferentialTest, InstrumentedEstimatesBitwiseIdentical) {
  GaussConfig data_config;
  data_config.cluster_tuples = 4000;
  data_config.noise_tuples = 400;
  GeneratedData g = MakeGauss(data_config);
  Executor executor(g.data);

  WorkloadConfig wc;
  wc.num_queries = 150;
  wc.volume_fraction = 0.01;
  wc.seed = 23;
  Workload workload = MakeWorkload(g.domain, wc);

  MetricsRegistry registry;
  registry.EnableTracing();

  STHolesConfig instrumented_config;
  instrumented_config.max_buckets = 60;
  instrumented_config.metrics = &registry;
  STHoles instrumented(g.domain, static_cast<double>(g.data.size()),
                       instrumented_config);

  STHolesConfig plain_config;
  plain_config.max_buckets = 60;
  STHoles plain(g.domain, static_cast<double>(g.data.size()), plain_config);

  for (const Box& q : workload) {
    instrumented.Refine(q, executor);
    plain.Refine(q, executor);
  }

  ASSERT_EQ(instrumented.bucket_count(), plain.bucket_count());
  for (const Box& q : workload) {
    EXPECT_EQ(std::bit_cast<uint64_t>(instrumented.Estimate(q)),
              std::bit_cast<uint64_t>(plain.Estimate(q)));
  }

  // And the instrumentation did observe the work: refinement counters,
  // stage latencies, and ring spans are all populated.
  EXPECT_EQ(registry.counter("histogram.stholes.refines").value(),
            workload.size());
  EXPECT_GT(registry.counter("histogram.stholes.drills").value(), 0u);
  MetricsSnapshot snapshot = registry.Snapshot();
  bool found_refine_latency = false;
  for (const auto& latency : snapshot.latencies) {
    if (latency.name == "histogram.stholes.refine_seconds") {
      found_refine_latency = true;
      EXPECT_EQ(latency.count, workload.size());
    }
  }
  EXPECT_TRUE(found_refine_latency);
  ASSERT_NE(registry.ring(), nullptr);
  EXPECT_FALSE(registry.ring()->Recent().empty());
}

TEST(MetricsDifferentialTest, BatchMatchesSerialOnInstrumentedHistogram) {
  GaussConfig data_config;
  data_config.cluster_tuples = 3000;
  GeneratedData g = MakeGauss(data_config);
  Executor executor(g.data);

  WorkloadConfig wc;
  wc.num_queries = 100;
  wc.seed = 5;
  Workload workload = MakeWorkload(g.domain, wc);

  MetricsRegistry registry;
  STHolesConfig config;
  config.max_buckets = 40;
  config.metrics = &registry;
  STHoles hist(g.domain, static_cast<double>(g.data.size()), config);
  for (const Box& q : workload) hist.Refine(q, executor);

  // The unified entry point (EstimateBatch + PrepareForBatch hook) must
  // agree bitwise with per-query Estimate at any thread count.
  std::vector<double> serial = hist.EstimateBatch(workload, 1);
  std::vector<double> threaded = hist.EstimateBatch(workload, 4);
  ASSERT_EQ(serial.size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(serial[i]),
              std::bit_cast<uint64_t>(hist.Estimate(workload[i])));
    EXPECT_EQ(std::bit_cast<uint64_t>(serial[i]),
              std::bit_cast<uint64_t>(threaded[i]));
  }
}

// ---------------------------------------------------------------------------
// ServiceFleet naming/cardinality: serve.fleet.* follows the §13 rules and
// the per-shard label cap bounds the metric count however many tenants live.
// ---------------------------------------------------------------------------

TEST(FleetMetricsTest, NamesFollowLayerComponentNameScheme) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 200;
  data_config.noise_tuples = 40;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);

  MetricsRegistry registry;
  FleetConfig config;
  config.refiners = 1;
  config.top_k_shard_labels = 3;
  config.metrics = &registry;
  ServiceFleet fleet(config);

  STHolesConfig hc;
  hc.max_buckets = 8;
  ASSERT_TRUE(fleet
                  .AddTenant("weird key/with:chars",
                             std::make_unique<STHoles>(
                                 g.domain, static_cast<double>(g.data.size()),
                                 hc),
                             executor)
                  .ok());
  (void)fleet.SubmitFeedback("weird key/with:chars", g.domain);
  ASSERT_TRUE(fleet.Drain().ok());

  MetricsSnapshot snapshot = registry.Snapshot();
  std::vector<std::string> names;
  for (const auto& c : snapshot.counters) names.push_back(c.name);
  for (const auto& gauge : snapshot.gauges) names.push_back(gauge.name);
  for (const auto& l : snapshot.latencies) names.push_back(l.name);
  ASSERT_FALSE(names.empty());
  bool saw_fleet = false;
  for (const std::string& name : names) {
    if (name.rfind("serve.fleet", 0) != 0) continue;
    saw_fleet = true;
    // Exactly three dot-separated segments, every char from the safe set:
    // tenant keys must never leak raw into metric names.
    EXPECT_EQ(std::count(name.begin(), name.end(), '.'), 2) << name;
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.';
      EXPECT_TRUE(ok) << "unsafe char in metric name: " << name;
    }
  }
  EXPECT_TRUE(saw_fleet);
}

TEST(FleetMetricsTest, MetricCountBoundedPastTheTopKLabelCap) {
  CrossConfig data_config;
  data_config.tuples_per_cluster = 200;
  data_config.noise_tuples = 40;
  GeneratedData g = MakeCross(data_config);
  Executor executor(g.data);
  STHolesConfig hc;
  hc.max_buckets = 8;
  auto make_hist = [&] {
    return std::make_unique<STHoles>(g.domain,
                                     static_cast<double>(g.data.size()), hc);
  };

  MetricsRegistry registry;
  FleetConfig config;
  config.refiners = 2;
  config.top_k_shard_labels = 3;
  config.metrics = &registry;
  ServiceFleet fleet(config);

  auto shard_label_metrics = [&registry] {
    size_t n = 0;
    for (const auto& c : registry.Snapshot().counters) {
      if (c.name.rfind("serve.fleet_shard_", 0) == 0) ++n;
    }
    return n;
  };

  for (int t = 0; t < 12; ++t) {
    ASSERT_TRUE(
        fleet.AddTenant("tenant_" + std::to_string(t), make_hist(), executor)
            .ok());
  }
  // 3 labeled shards × 2 cells + the shared "other" pair.
  const size_t capped = shard_label_metrics();
  EXPECT_EQ(capped, 2u * (config.top_k_shard_labels + 1));
  const size_t total_at_12 = registry.Snapshot().total_metrics();

  // Growing the fleet well past the cap must not add a single metric; churn
  // (remove + re-add) must not either — a re-added tenant lands in "other".
  for (int t = 12; t < 60; ++t) {
    ASSERT_TRUE(
        fleet.AddTenant("tenant_" + std::to_string(t), make_hist(), executor)
            .ok());
  }
  ASSERT_TRUE(fleet.RemoveTenant("tenant_1").ok());
  ASSERT_TRUE(fleet.AddTenant("tenant_1", make_hist(), executor).ok());
  EXPECT_EQ(shard_label_metrics(), capped);
  EXPECT_EQ(registry.Snapshot().total_metrics(), total_at_12)
      << "metric cardinality must stay bounded as tenants grow";
  EXPECT_EQ(fleet.stats().tenants, fleet.TenantKeys().size());
}

}  // namespace
}  // namespace sthist

// Empirical verification of the paper's stagnation analysis (§3.2):
// detecting a cluster is never cheaper than storing it (Lemma 1), a uniform
// m x k cluster (m, k >= 2) is storable with one bucket but not detectable
// with one bucket under unit grid queries (Lemma 2), and a dense core that
// gets captured first blocks detection of the surrounding cluster (Lemma 3).

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "histogram/stholes.h"
#include "workload/query.h"
#include "workload/workload.h"

namespace sthist {
namespace {

// Builds a dataset on the integer grid [0,N)^2: `density` points per unit
// cell inside `cells` (a box in cell coordinates), laid out at deterministic
// offsets so every unit cell holds exactly `density` points.
void FillCells(const Box& cells, size_t density, Dataset* data) {
  for (int x = static_cast<int>(cells.lo(0)); x < cells.hi(0); ++x) {
    for (int y = static_cast<int>(cells.lo(1)); y < cells.hi(1); ++y) {
      for (size_t k = 0; k < density; ++k) {
        double frac = (static_cast<double>(k) + 0.5) /
                      static_cast<double>(density);
        data->Append(Point{x + frac, y + 0.5});
      }
    }
  }
}

// Mean absolute error of the histogram over all unit cells of the grid.
double GridError(const STHoles& hist, const Workload& cells,
                 const Executor& executor) {
  double total = 0;
  for (const Box& cell : cells) {
    total += std::abs(hist.Estimate(cell) - executor.Count(cell));
  }
  return total / static_cast<double>(cells.size());
}

struct GridSetup {
  Dataset data{2};
  Box domain;
  Workload cells;
};

GridSetup MakeUniformClusterSetup(const Box& cluster_cells, size_t grid_n,
                                  size_t density, uint64_t seed) {
  GridSetup setup;
  setup.domain = Box::Cube(2, 0, static_cast<double>(grid_n));
  FillCells(cluster_cells, density, &setup.data);
  setup.cells = MakeGridWorkload(setup.domain, grid_n, seed);
  return setup;
}

// Lemma 2(1): one bucket suffices to *store* an m x k uniform cluster: the
// histogram initialized with exactly the cluster box has zero error.
TEST(StagnationTest, OneBucketStoresUniformCluster) {
  Box cluster_cells({2.0, 3.0}, {7.0, 6.0});  // 5 x 3 cells.
  GridSetup setup = MakeUniformClusterSetup(cluster_cells, 10, 8, 1);
  Executor executor(setup.data);

  STHolesConfig config;
  config.max_buckets = 1;
  STHoles hist(setup.domain, static_cast<double>(setup.data.size()), config);
  hist.Refine(cluster_cells, executor);  // The storing configuration.
  EXPECT_NEAR(GridError(hist, setup.cells, executor), 0.0, 1e-9)
      << "sigma(C, 0) = 1 for a uniform rectangular cluster";
}

// Lemma 2(3): with a budget of one bucket, unit queries cannot assemble an
// m x k cluster (m, k >= 2) — the histogram stagnates at high error even
// after many epochs of full grid coverage.
TEST(StagnationTest, OneBucketCannotDetectTwoDimensionalCluster) {
  Box cluster_cells({2.0, 3.0}, {7.0, 6.0});  // 5 x 3 cells, unit density 8.
  GridSetup setup = MakeUniformClusterSetup(cluster_cells, 10, 8, 2);
  Executor executor(setup.data);

  STHolesConfig config;
  config.max_buckets = 1;
  STHoles hist(setup.domain, static_cast<double>(setup.data.size()), config);

  double err = 0;
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (const Box& cell : setup.cells) hist.Refine(cell, executor);
    err = GridError(hist, setup.cells, executor);
  }
  // The storing configuration has error 0; one bucket can capture at most a
  // single row/column worth of the cluster, leaving substantial error.
  EXPECT_GT(err, 1.0) << "omega(C, 0) > 1 for a 2-d cluster";
}

// Lemma 2(3), second half: a 1 x k cluster *is* detectable with one bucket.
TEST(StagnationTest, OneBucketDetectsOneRowCluster) {
  Box cluster_cells({2.0, 3.0}, {7.0, 4.0});  // 5 x 1 cells.
  GridSetup setup = MakeUniformClusterSetup(cluster_cells, 10, 8, 3);
  Executor executor(setup.data);

  STHolesConfig config;
  config.max_buckets = 1;
  STHoles hist(setup.domain, static_cast<double>(setup.data.size()), config);

  double err = 1e9;
  for (int epoch = 0; epoch < 6 && err > 0.5; ++epoch) {
    for (const Box& cell : setup.cells) hist.Refine(cell, executor);
    err = GridError(hist, setup.cells, executor);
  }
  EXPECT_LT(err, 0.5) << "a single row merges cell-by-cell into one bucket";
}

// Detectability needs more memory than storage (omega >= sigma, and here
// omega > sigma): the same 2-d cluster that one bucket cannot assemble is
// learned once a second bucket is available.
TEST(StagnationTest, TwoBucketsDetectWithAFriendlyWorkload) {
  // Lemma 2(2) is existential: *some* workload detects the cluster with two
  // buckets. The friendly workload walks the cluster's cells in row-major
  // order, so adjacent same-density buckets merge at zero penalty and
  // assemble the cluster; a second pass corrects the frequencies.
  Box cluster_cells({2.0, 3.0}, {7.0, 6.0});
  GridSetup setup = MakeUniformClusterSetup(cluster_cells, 10, 8, 4);
  Executor executor(setup.data);

  auto crafted_error = [&](size_t buckets) {
    STHolesConfig config;
    config.max_buckets = buckets;
    STHoles hist(setup.domain, static_cast<double>(setup.data.size()),
                 config);
    for (int pass = 0; pass < 2; ++pass) {
      for (int y = 3; y < 6; ++y) {
        for (int x = 2; x < 7; ++x) {
          hist.Refine(Box({static_cast<double>(x), static_cast<double>(y)},
                          {x + 1.0, y + 1.0}),
                      executor);
        }
      }
    }
    return GridError(hist, setup.cells, executor);
  };

  // Even the friendly workload cannot beat the one-bucket limit (Lemma
  // 2(3)), but two buckets detect the cluster exactly: omega(C, 0) = 2.
  double err_one = crafted_error(1);
  double err_two = crafted_error(2);
  EXPECT_GT(err_one, 1.0);
  EXPECT_NEAR(err_two, 0.0, 1e-9);
}

// Lemma 3: once a bucket captures the dense core, a budget of two buckets
// cannot detect the surrounding cluster any more — the core bucket never
// merges with cluster fragments (the density gap is too expensive), so the
// fragments fight over a single remaining slot.
TEST(StagnationTest, DenseCoreBlocksClusterDetection) {
  const size_t kGrid = 10;
  Box cluster_cells({2.0, 2.0}, {8.0, 8.0});  // 6 x 6 cluster, density 4.
  Box core_cell({4.0, 4.0}, {5.0, 5.0});      // Unit core, density gamma=40.

  GridSetup setup;
  setup.domain = Box::Cube(2, 0, static_cast<double>(kGrid));
  FillCells(cluster_cells, 4, &setup.data);
  FillCells(core_cell, 36, &setup.data);  // 4 + 36 = 40 = gamma > 3.
  setup.cells = MakeGridWorkload(setup.domain, kGrid, 5);
  Executor executor(setup.data);

  STHolesConfig config;
  config.max_buckets = 2;
  STHoles hist(setup.domain, static_cast<double>(setup.data.size()), config);
  // The workload queries the core first (the lemma's precondition).
  hist.Refine(core_cell, executor);

  double err = 0;
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (const Box& cell : setup.cells) hist.Refine(cell, executor);
    err = GridError(hist, setup.cells, executor);
  }

  // A histogram that stores core + cluster exactly (2 buckets) has ~0 error;
  // the stagnated self-tuned one keeps a large reducible error.
  STHoles stored(setup.domain, static_cast<double>(setup.data.size()),
                 config);
  stored.Refine(Box({2.0, 2.0}, {8.0, 8.0}), executor);
  stored.Refine(core_cell, executor);
  double stored_err = GridError(stored, setup.cells, executor);

  EXPECT_LT(stored_err, 0.1) << "sigma(C, ~0) = 2 including the core";
  EXPECT_GT(err, 5.0 * (stored_err + 0.1))
      << "self-tuning stagnates with reducible error";
}

}  // namespace
}  // namespace sthist
